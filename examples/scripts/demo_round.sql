SELECT COUNT(*) FROM emp;
SELECT COUNT(*) FROM dept;
BEGIN;
INSERT INTO dept VALUES (999, 'ci', 'CI');
ROLLBACK;
SELECT COUNT(*) FROM dept;
OUT OF xdept AS (SELECT * FROM dept WHERE loc = 'ARC'),
       xemp AS emp,
       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
TAKE *;
