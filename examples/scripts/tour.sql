-- xnfdb tour: run with
--   dune exec bin/xnfdb.exe -- run examples/scripts/tour.sql

CREATE TABLE dept (dno INT NOT NULL, dname STRING, loc STRING, PRIMARY KEY (dno));
CREATE TABLE emp (eno INT NOT NULL, ename STRING, sal INT, edno INT, PRIMARY KEY (eno));

INSERT INTO dept VALUES (1, 'tools', 'ARC'), (2, 'db', 'ARC'), (3, 'remote', 'HAW');
INSERT INTO emp VALUES (10, 'anna', 100, 1), (11, 'ben', 90, 1), (12, 'carol', 120, 2), (13, 'dave', 80, 3);

-- a plain SQL query
SELECT dname, COUNT(*) FROM dept, emp WHERE dno = edno GROUP BY dname ORDER BY dname;

-- a composite-object view (XNF): extract departments at ARC with their staff
OUT OF xdept AS (SELECT * FROM dept WHERE loc = 'ARC'),
       xemp AS emp,
       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
TAKE *;

-- store it as a view; its components are tables to SQL
CREATE VIEW deps_arc AS
OUT OF xdept AS (SELECT * FROM dept WHERE loc = 'ARC'),
       xemp AS emp,
       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = xemp.edno)
TAKE *;

SELECT ename, sal FROM deps_arc.xemp ORDER BY sal DESC;

-- updatable-view translation with transactional safety
BEGIN;
UPDATE deps_arc.xemp SET sal = sal + 10 WHERE ename = 'anna';
COMMIT;

SELECT ename, sal FROM emp WHERE eno = 10;
