(** Timing and reporting helpers for the reproduction benches. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, t1 -. t0)

(** Median wall-clock seconds over [repeat] runs (after one warmup). *)
let time_median ?(repeat = 5) f =
  ignore (f ());
  let samples =
    List.init repeat (fun _ ->
        let _, dt = time_once f in
        dt)
    |> List.sort compare
  in
  List.nth samples (repeat / 2)

let ms dt = dt *. 1000.0

(* -- run metadata -------------------------------------------------------- *)

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    ignore (Unix.close_process_in ic : Unix.process_status);
    line
  with _ -> "unknown"

(** Peak resident set size of this process in kB (VmHWM from
    /proc/self/status); 0 where the proc interface is unavailable. *)
let peak_rss_kb () =
  try
    In_channel.with_open_text "/proc/self/status" @@ fun ic ->
    let rec scan () =
      match In_channel.input_line ic with
      | None -> 0
      | Some line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
            Fun.id
        else scan ()
    in
    scan ()
  with _ -> 0

(** JSON fragment recording the run environment — git revision, batch
    size, configured domain count, the host's core count, peak RSS, the
    colstore's tier occupancy at write time, and the cost profile in
    force (calibrated constants + the host they were measured on) — so
    a committed BENCH_*.json is interpretable across hosts later. *)
let metadata_json () =
  let module C = Optimizer.Cost.Calibrate in
  let prof = C.active () in
  let source =
    if not (C.enabled ()) then "defaults (XNFDB_CALIBRATION=0)"
    else
      match C.profile_path () with
      | Some p -> p
      | None -> "defaults (no XNFDB_COST_PROFILE)"
  in
  Printf.sprintf
    "\"meta\": { \"git_rev\": %S, \"batch_size\": %d, \"domains\": %d, \
     \"host_cores\": %d, \"peak_rss_kb\": %d, \"colstore_resident_bytes\": \
     %d, \"colstore_spilled_bytes\": %d, \"cost_profile\": { \"source\": \
     %S, \"batch_overhead\": %g, \"cold_chunk_penalty\": %g, \
     \"parallel_overhead\": %g, \"parallel_threshold_rows\": %d, \
     \"jf_drop_threshold\": %g, \"jf_adaptive_sample\": %d, \
     \"profile_host_cores\": %d, \"tuple_ns\": %g } }"
    (git_rev ())
    (Relcore.Batch.default_capacity ())
    (Relcore.Pool.default_domains ())
    (Domain.recommended_domain_count ())
    (peak_rss_kb ())
    (Relcore.Colstore.global_resident_bytes ())
    (Relcore.Colstore.global_spilled_bytes ())
    source prof.C.batch_overhead prof.C.cold_chunk_penalty
    prof.C.parallel_overhead prof.C.parallel_threshold_rows
    prof.C.jf_drop_threshold prof.C.jf_adaptive_sample prof.C.host_cores
    prof.C.tuple_ns

(* -- baseline artifacts -------------------------------------------------- *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

(** Read the numeric [field] of the entry named [name] from a committed
    BENCH_*.json artifact (the writers' fixed formatting doubles as the
    reader's grammar).  [None] when the file or entry is missing. *)
let baseline_field ~file ~name ~field =
  match
    (try Some (In_channel.with_open_text file In_channel.input_all)
     with _ -> None)
  with
  | None -> None
  | Some s ->
    Option.bind (find_sub s (Printf.sprintf "\"name\": %S" name) 0) (fun i ->
        Option.bind (find_sub s (Printf.sprintf "%S: " field) i) (fun j ->
            let k = j + String.length field + 4 in
            let e = ref k in
            let n = String.length s in
            while
              !e < n
              && (match s.[!e] with
                 | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
                 | _ -> false)
            do
              incr e
            done;
            float_of_string_opt (String.sub s k (!e - k))))

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* -- bechamel ------------------------------------------------------------ *)

open Bechamel

let bechamel_tests : Test.t list ref = ref []

(** Register a micro-benchmark (one per reproduced table/figure). *)
let register_bechamel ~name f =
  bechamel_tests :=
    !bechamel_tests @ [ Test.make ~name (Staged.stage f) ]

let run_bechamel () =
  header "Bechamel micro-benchmarks (one per table/figure)";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            let unit_str, v =
              if est > 1e9 then ("s ", est /. 1e9)
              else if est > 1e6 then ("ms", est /. 1e6)
              else if est > 1e3 then ("us", est /. 1e3)
              else ("ns", est)
            in
            Printf.printf "  %-28s %10.2f %s/run\n" name v unit_str
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        results)
    !bechamel_tests
