(* Reproduction benches: one section per table/figure/quantified claim of
   the paper (see DESIGN.md per-experiment index and EXPERIMENTS.md for
   recorded results).

     T1   Table 1: SQL vs XNF derivation, common subexpressions
     F3   Fig. 3 / Sect. 3.2: existential-subquery-to-join rewrite
     F56  Fig. 5/6: cross-output common-subexpression sharing (ablation)
     E1   Sect. 1: set-oriented extraction vs navigational N+1 queries
     E2   Sect. 5.2/6: OO1 traversal in the pre-loaded CO cache
     E3   Sect. 5: bulk shipping vs one-tuple-at-a-time interface

   Run with: dune exec bench/main.exe *)

module Db = Engine.Database
module Ws = Cocache.Workspace
module H = Xnf.Hetstream
open Bench_util

(* Dataset scale multiplier: --scale N / --scale=N on the command line,
   else XNFDB_BENCH_SCALE, else 1.  Applied to every section's default
   dataset size so one knob grows the whole run (E11 uses 10x). *)
let bench_scale =
  let of_string s = max 0.01 (float_of_string (String.trim s)) in
  let from_argv = ref None in
  Array.iteri
    (fun i a ->
      if a = "--scale" && i + 1 < Array.length Sys.argv then
        from_argv := Some (of_string Sys.argv.(i + 1))
      else if String.length a > 8 && String.sub a 0 8 = "--scale=" then
        from_argv := Some (of_string (String.sub a 8 (String.length a - 8))))
    Sys.argv;
  match !from_argv with
  | Some s -> s
  | None -> (
    match Sys.getenv_opt "XNFDB_BENCH_SCALE" with
    | Some s -> ( try of_string s with _ -> 1.0)
    | None -> 1.0)

(** [scaled n] is [n] rows at the configured [bench_scale]. *)
let scaled n = int_of_float (ceil (float_of_int n *. bench_scale))

(* --only NAME / --only=NAME: run a single artifact-writing section
   (exec, parallel, cache, colstore, joinfilter, ivm, spill, server) —
   for CI legs and for re-running one flaky timing gate in isolation. *)
let only =
  let v = ref None in
  Array.iteri
    (fun i a ->
      if a = "--only" && i + 1 < Array.length Sys.argv then
        v := Some Sys.argv.(i + 1)
      else if String.length a > 7 && String.sub a 0 7 = "--only=" then
        v := Some (String.sub a 7 (String.length a - 7)))
    Sys.argv;
  !v

let want name = match only with None -> true | Some o -> o = name

(* ---------------------------------------------------------------- T1 --- *)

let paper_table1 =
  (* component, SQL ops, replicated, XNF ops — as printed in the paper *)
  [
    ("xdept", 1, 0, 1);
    ("xemp", 2, 1, 1);
    ("xproj", 2, 1, 1);
    ("employment", 3, 3, 0);
    ("ownership", 3, 3, 0);
    ("xskills", 6, 4, 4);
    ("empproperty", 3, 2, 0);
    ("projproperty", 3, 2, 0);
  ]

let reorder order rows =
  List.map (fun name -> (name, List.assoc name rows)) order

let bench_table1 () =
  header "T1. Table 1 — SQL derivation vs XNF derivation (operation counts)";
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 10 } in
  let ast = Xnf.Xnf_parser.parse Workloads.Org.deps_arc_query in
  (* SQL baseline: one standalone rewritten query graph per component *)
  let sql_graphs =
    Xnf.Sql_derivation.component_graphs db ast
    |> reorder Workloads.Org.table1_order
  in
  let sql_rows = Starq.Opcount.analyze sql_graphs in
  (* XNF: the shared multi-output graph *)
  let compiled = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let xnf_outputs =
    Xnf.Xnf_rewrite.output_boxes compiled.Xnf.Xnf_compile.rewritten
    |> List.map (fun (n, b) -> (n, [ b ]))
    |> reorder Workloads.Org.table1_order
  in
  let xnf_rows = Starq.Opcount.analyze xnf_outputs in
  row "%-14s | %-20s | %-7s || %-22s\n" "Component" "SQL ops (replicated)"
    "XNF ops" "paper: SQL (repl) XNF";
  row "%s\n" (String.make 76 '-');
  List.iter2
    (fun (s : Starq.Opcount.row) (x : Starq.Opcount.row) ->
      let p_ops, p_rep, p_xnf =
        let _, a, b, c =
          List.find
            (fun (n, _, _, _) -> n = s.Starq.Opcount.component)
            paper_table1
        in
        (a, b, c)
      in
      row "%-14s | %12d (%d)     | %-7d || %10d (%d) %d\n"
        s.Starq.Opcount.component s.Starq.Opcount.ops s.Starq.Opcount.replicated
        x.Starq.Opcount.ops p_ops p_rep p_xnf)
    sql_rows xnf_rows;
  row "%s\n" (String.make 76 '-');
  row "%-14s | %12d (%d)     | %-7d || %10d (%d) %d\n" "Summary"
    (Starq.Opcount.total sql_rows)
    (Starq.Opcount.total_replicated sql_rows)
    (Starq.Opcount.total xnf_rows)
    23 16 7;
  row
    "\nshape check: 'best we can do in SQL' (SQL ops - replicated = %d) vs \
     XNF ops (%d); XNF introduces no redundant operations\n"
    (Starq.Opcount.total sql_rows - Starq.Opcount.total_replicated sql_rows)
    (Starq.Opcount.total xnf_rows);
  register_bechamel ~name:"T1.opcount" (fun () ->
      ignore (Starq.Opcount.analyze xnf_outputs))

(* ---------------------------------------------------------------- F3 --- *)

let exists_query =
  "SELECT eno FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.loc = \
   'ARC' AND d.dno = e.edno)"

let bench_fig3 () =
  header
    "F3. Fig. 3 / Sect. 3.2 — existential subquery: naive evaluation vs \
     E-to-F join rewrite";
  row "%-24s | %9s | %12s | %12s | %8s\n" "org size (depts, emps)" "rows out"
    "naive (ms)" "rewrite (ms)" "speedup";
  row "%s\n" (String.make 78 '-');
  List.iter
    (fun n_depts ->
      let db =
        Workloads.Org.generate
          {
            Workloads.Org.default with
            n_depts;
            emps_per_dept = 20;
            indexes = false;
          }
      in
      let naive_plan = Db.compile_query ~rewrite:false db exists_query in
      let fast_plan = Db.compile_query ~rewrite:true db exists_query in
      let out = List.length (Executor.Exec.run fast_plan) in
      let out' = List.length (Executor.Exec.run naive_plan) in
      assert (out = out');
      let t_naive =
        time_median ~repeat:3 (fun () -> Executor.Exec.run naive_plan)
      in
      let t_fast =
        time_median ~repeat:3 (fun () -> Executor.Exec.run fast_plan)
      in
      row "%6d, %-16d | %9d | %12.2f | %12.3f | %7.1fx\n" n_depts
        (n_depts * 20) out (ms t_naive) (ms t_fast) (t_naive /. t_fast))
    [ 20; 50; 100; 200 ];
  row
    "\npaper: 'orders of magnitude improvement in performance of queries \
     with existential predicates'\n";
  let db =
    Workloads.Org.generate
      {
        Workloads.Org.default with
        n_depts = 50;
        emps_per_dept = 20;
        indexes = false;
      }
  in
  let naive_plan = Db.compile_query ~rewrite:false db exists_query in
  let fast_plan = Db.compile_query ~rewrite:true db exists_query in
  register_bechamel ~name:"F3.naive_exists" (fun () ->
      ignore (Executor.Exec.run naive_plan));
  register_bechamel ~name:"F3.rewritten_join" (fun () ->
      ignore (Executor.Exec.run fast_plan))

(* --------------------------------------------------------------- F56 --- *)

let bench_fig56 () =
  header
    "F56. Fig. 5/6 — common-subexpression sharing across the multi-table \
     query (ablation)";
  row "%-10s | %12s | %12s | %16s | %16s\n" "depts" "shared (ms)" "no-CSE (ms)"
    "rows read (CSE)" "rows read (no)";
  row "%s\n" (String.make 78 '-');
  List.iter
    (fun n_depts ->
      let db = Workloads.Org.generate { Workloads.Org.default with n_depts } in
      (* ~cache:false everywhere in this section: the ablation measures
         executor work, which cross-query caching would short-circuit *)
      let run ~share () =
        let ctx = Executor.Exec.make_ctx ~result_cache:false () in
        let c = Xnf.Xnf_compile.compile ~share db Workloads.Org.deps_arc_query in
        let s = Xnf.Xnf_compile.extract ~ctx ~cache:false c in
        (ctx.Executor.Exec.rows_scanned, H.total_items s)
      in
      let scans_on, _ = run ~share:true () in
      let scans_off, _ = run ~share:false () in
      let t_on = time_median ~repeat:3 (fun () -> run ~share:true ()) in
      let t_off = time_median ~repeat:3 (fun () -> run ~share:false ()) in
      row "%-10d | %12.2f | %12.2f | %16d | %16d\n" n_depts (ms t_on)
        (ms t_off) scans_on scans_off)
    [ 25; 50; 100 ];
  row
    "\npaper: one QGM graph per XNF query installs common subexpressions \
     once (Table 1: 16 of 23 single-query ops are redundant)\n";
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 25 } in
  register_bechamel ~name:"F56.extract_cse_on" (fun () ->
      ignore
        (Xnf.Xnf_compile.run ~share:true ~cache:false db
           Workloads.Org.deps_arc_query));
  register_bechamel ~name:"F56.extract_cse_off" (fun () ->
      ignore
        (Xnf.Xnf_compile.run ~share:false ~cache:false db
           Workloads.Org.deps_arc_query))

(* ---------------------------------------------------------------- E1 --- *)

let bench_extraction () =
  header
    "E1. Sect. 1 — set-oriented XNF extraction vs navigational N+1 queries \
     vs per-component SQL";
  row "%-8s | %-24s | %12s | %10s\n" "depts" "strategy" "time (ms)" "queries";
  row "%s\n" (String.make 64 '-');
  List.iter
    (fun n_depts ->
      let db = Workloads.Org.generate { Workloads.Org.default with n_depts } in
      let ast = Xnf.Xnf_parser.parse Workloads.Org.deps_arc_query in
      let t_xnf =
        (* ~cache:false: E1 measures extraction work, not cache hits *)
        time_median ~repeat:3 (fun () ->
            Xnf.Xnf_compile.run ~cache:false db Workloads.Org.deps_arc_query)
      in
      row "%-8d | %-24s | %12.2f | %10d\n" n_depts "XNF (one query)" (ms t_xnf)
        1;
      let t_sql =
        time_median ~repeat:3 (fun () -> Xnf.Sql_derivation.extract db ast)
      in
      row "%-8s | %-24s | %12.2f | %10d\n" "" "SQL per component" (ms t_sql) 8;
      let stats = Xnf.Navigational.extract ~mode:`Prepared db ast in
      let t_nav_p =
        time_median ~repeat:3 (fun () ->
            Xnf.Navigational.extract ~mode:`Prepared db ast)
      in
      row "%-8s | %-24s | %12.2f | %10d\n" "" "navigational (prepared)"
        (ms t_nav_p) stats.Xnf.Navigational.queries_executed;
      let t_nav =
        time_median ~repeat:3 (fun () ->
            Xnf.Navigational.extract ~mode:`Sql_text db ast)
      in
      row "%-8s | %-24s | %12.2f | %10d\n" "" "navigational (SQL text)"
        (ms t_nav) stats.Xnf.Navigational.queries_executed)
    [ 10; 30; 100 ];
  row
    "\npaper: 'the process of data extraction is broken into fragmented \
     queries where the number of fragments is in the order of number of \
     instances of parent components [...] set-oriented processing could \
     lead to significant improvement in performance, even in orders of \
     magnitude'\n";
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 10 } in
  let ast = Xnf.Xnf_parser.parse Workloads.Org.deps_arc_query in
  register_bechamel ~name:"E1.xnf_extract" (fun () ->
      ignore (Xnf.Xnf_compile.run ~cache:false db Workloads.Org.deps_arc_query));
  register_bechamel ~name:"E1.navigational" (fun () ->
      ignore (Xnf.Navigational.extract ~mode:`Sql_text db ast))

(* ---------------------------------------------------------------- E2 --- *)

let bench_oo1 () =
  header "E2. Sect. 5.2/6 — OO1 (Cattell) operations on the pre-loaded cache";
  let p = { Workloads.Oo1.default with n_parts = scaled 20_000 } in
  let db = Workloads.Oo1.generate p in
  let (ws : Ws.t), t_load =
    time_once (fun () ->
        Ws.of_stream (Xnf.Xnf_compile.run db Workloads.Oo1.parts_graph_query))
  in
  row "database: %d parts, %d connections\n" p.Workloads.Oo1.n_parts
    (Ws.connection_count ws);
  row "cache pre-load (extract + build): %.1f ms\n" (ms t_load);
  let index = Workloads.Oo1.build_pid_index ws in
  let rng = Workloads.Rng.create 123 in
  (* Traversal: depth 7 from random roots *)
  let n_trav = 50 in
  let visits = ref 0 in
  let t_trav =
    time_median ~repeat:3 (fun () ->
        visits := 0;
        for _ = 1 to n_trav do
          let start =
            Hashtbl.find index
              (1 + Workloads.Rng.int rng p.Workloads.Oo1.n_parts)
          in
          visits := !visits + Workloads.Oo1.traverse start ~depth:7
        done)
  in
  row
    "traversal (depth 7, %d random roots): %d tuple visits in %.1f ms = \
     %.0f tuples/second\n"
    n_trav !visits (ms t_trav)
    (float_of_int !visits /. t_trav);
  row "paper: 'more than 100,000 tuples per second' (1993 hardware)\n";
  (* Lookup: 1000 random parts *)
  let t_lookup =
    time_median ~repeat:3 (fun () ->
        ignore
          (Workloads.Oo1.lookup ~index ~rng ~n_parts:p.Workloads.Oo1.n_parts
             ~n:1000))
  in
  row "lookup (1000 random parts): %.2f ms = %.0f lookups/second\n"
    (ms t_lookup)
    (1000.0 /. t_lookup);
  (* contrast: the same navigation against the DBMS, one query per node *)
  let sql_visits = ref 0 in
  let rec sql_traverse pid depth =
    incr sql_visits;
    if depth > 0 then
      List.iter
        (fun r ->
          match r with
          | [| Relcore.Value.Int target |] -> sql_traverse target (depth - 1)
          | _ -> ())
        (Db.query_rows db
           (Printf.sprintf "SELECT cto FROM conns WHERE cfrom = %d" pid))
  in
  let t_sql_trav =
    time_median ~repeat:3 (fun () ->
        sql_visits := 0;
        sql_traverse (1 + Workloads.Rng.int rng p.Workloads.Oo1.n_parts) 5)
  in
  row
    "same navigation via per-node SQL (depth 5): %d visits in %.1f ms = \
     %.0f tuples/second\n"
    !sql_visits (ms t_sql_trav)
    (float_of_int !sql_visits /. t_sql_trav);
  let start = Hashtbl.find index 1 in
  register_bechamel ~name:"E2.oo1_traversal_d7" (fun () ->
      ignore (Workloads.Oo1.traverse start ~depth:7))

(* ---------------------------------------------------------------- E3 --- *)

let bench_shipping () =
  header
    "E3. Sect. 5 — result shipping: one bulk call vs one-tuple-at-a-time \
     interface";
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 100 } in
  let stream = Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query in
  let n = H.total_items stream in
  let bulk_bytes = String.length (H.serialize stream) in
  let t_bulk = time_median ~repeat:5 (fun () -> H.serialize stream) in
  (* one-at-a-time: each item shipped as its own message *)
  let per_tuple () =
    List.map
      (fun item -> H.serialize { H.header = stream.H.header; items = [ item ] })
      stream.H.items
  in
  let msgs = per_tuple () in
  let tuple_bytes = List.fold_left (fun a m -> a + String.length m) 0 msgs in
  let t_tuple = time_median ~repeat:5 (fun () -> per_tuple ()) in
  let crossing_cost = 50e-6 (* simulated 50us process-boundary crossing *) in
  row "%-28s | %9s | %10s | %12s | %15s\n" "strategy" "messages" "bytes"
    "encode (ms)" "+boundary (ms)";
  row "%s\n" (String.make 84 '-');
  row "%-28s | %9d | %10d | %12.2f | %15.2f\n" "bulk (whole CO, one call)" 1
    bulk_bytes (ms t_bulk)
    (ms (t_bulk +. crossing_cost));
  row "%-28s | %9d | %10d | %12.2f | %15.2f\n" "one tuple at a time" n
    tuple_bytes (ms t_tuple)
    (ms (t_tuple +. (crossing_cost *. float_of_int n)));
  row
    "\npaper: 'there is only one call (or only few calls) instead of a call \
     for each tuple of the CO, thereby avoiding unnecessary crossing of \
     process boundaries' (crossing modeled at 50us here; E12 measures the \
     real thing over the daemon's wire)\n";
  register_bechamel ~name:"E3.bulk_serialize" (fun () ->
      ignore (H.serialize stream))

(* ---------------------------------------------------------------- E4 --- *)

let bench_parallel () =
  header
    "E4. Sect. 6 outlook — parallel extraction over OCaml domains \
     (extension)";
  row "%-8s | %16s | %16s | %18s\n" "depts" "sequential (CSE)" "parallel (CSE)"
    "parallel (no CSE)";
  row "%s\n" (String.make 68 '-');
  List.iter
    (fun n_depts ->
      let db =
        Workloads.Org.generate
          { Workloads.Org.default with n_depts; emps_per_dept = 20 }
      in
      let shared = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
      let unshared =
        Xnf.Xnf_compile.compile ~share:false db Workloads.Org.deps_arc_query
      in
      (* ~cache:false: E4 compares executors on repeat runs *)
      let t_seq =
        time_median ~repeat:3 (fun () ->
            Xnf.Xnf_compile.extract ~cache:false shared)
      in
      let t_par =
        time_median ~repeat:3 (fun () ->
            Xnf.Xnf_compile.extract_parallel ~domains:4 ~cache:false shared)
      in
      let t_par_nocse =
        time_median ~repeat:3 (fun () ->
            Xnf.Xnf_compile.extract_parallel ~domains:4 ~cache:false unshared)
      in
      row "%-8d | %13.2f ms | %13.2f ms | %15.2f ms\n" n_depts (ms t_seq)
        (ms t_par) (ms t_par_nocse))
    [ 50; 150; 400 ];
  row
    "\npaper: 'set-oriented specification of COs as done in XNF \
     particularly lends itself to exploitation of parallelism technology'.\n\
     Finding on this substrate (2 cores, in-memory): common-subexpression \
     sharing serializes the dominant work, so inter-plan parallelism does \
     not pay at these scales — CSE itself is the bigger lever, and the two \
     compete.  The parallel path exists and is verified equivalent; its \
     benefit needs either more cores or CO extractions whose outputs do \
     not share derivations.\n"

(* ---------------------------------------------------------------- E5 --- *)

(** Batched table-queue execution vs the tuple-at-a-time reference
    interpreter ([Executor.Exec_scalar]), on the OO1 database.  Results
    are also recorded as a machine-readable [BENCH_exec.json] artifact
    (one entry per query; `oo1_traversal` is the acceptance gate). *)
let bench_exec_batching ?n_parts () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 20_000 in
  header
    "E5. Batched table-queue execution vs tuple-at-a-time (rows/sec, OO1)";
  let p = { Workloads.Oo1.default with n_parts } in
  let db = Workloads.Oo1.generate p in
  row "database: %d parts, %d connections; batch size %d\n"
    p.Workloads.Oo1.n_parts (3 * p.Workloads.Oo1.n_parts)
    (Relcore.Batch.default_capacity ());
  row "%-18s | %8s | %12s | %12s | %12s | %8s\n" "query" "rows" "scalar (ms)"
    "batched (ms)" "rows/s batch" "speedup";
  row "%s\n" (String.make 84 '-');
  let entries = ref [] in
  let measure name (c : Optimizer.Plan.compiled) =
    (* equivalence gate: both executors must agree, in order *)
    let rows_scalar = Executor.Exec_scalar.run c in
    let rows_batched = Executor.Exec.run c in
    assert (rows_scalar = rows_batched);
    let n = List.length rows_batched in
    (* each side delivers results in its native form — a row list for
       the tuple-at-a-time pipeline, table-queue batches for the batched
       one (downstream consumers take batches directly) *)
    let t_scalar =
      time_median ~repeat:5 (fun () -> Executor.Exec_scalar.run c)
    in
    let t_batched =
      time_median ~repeat:5 (fun () -> Executor.Exec.run_batches c)
    in
    let speedup = t_scalar /. t_batched in
    row "%-18s | %8d | %12.2f | %12.2f | %12.0f | %7.2fx\n" name n
      (ms t_scalar) (ms t_batched)
      (float_of_int n /. t_batched)
      speedup;
    entries :=
      Printf.sprintf
        "    { \"name\": %S, \"rows\": %d, \"scalar_ms\": %.3f, \
         \"batched_ms\": %.3f, \"rows_per_sec_scalar\": %.0f, \
         \"rows_per_sec_batched\": %.0f, \"speedup\": %.3f }"
        name n (ms t_scalar) (ms t_batched)
        (float_of_int n /. t_scalar)
        (float_of_int n /. t_batched)
        speedup
      :: !entries;
    (speedup, float_of_int n /. t_batched)
  in
  (* OO1 traversal: one-hop frontier expansion over the whole graph —
     parts joined to their outgoing connections *)
  let traversal =
    Db.compile_query ~join_method:`Hash db
      "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build \
       < 5000"
  in
  let trav_speedup, trav_rps = measure "oo1_traversal" traversal in
  ignore
    (measure "oo1_scan_filter"
       (Db.compile_query db
          "SELECT cto, clength FROM conns WHERE clength < 500")
      : float * float);
  ignore
    (measure "oo1_fanout_agg"
       (Db.compile_query db
          "SELECT cfrom, COUNT(*) FROM conns GROUP BY cfrom")
      : float * float);
  row
    "\ngate: oo1_traversal speedup %.2fx (acceptance: >= 1.5x rows/sec over \
     the tuple-at-a-time pipeline)\n"
    trav_speedup;
  let oc = open_out "BENCH_exec.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"exec_batching\",\n  %s,\n  \"n_parts\": %d,\n  \
     \"batch_size\": %d,\n  \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ()) n_parts
    (Relcore.Batch.default_capacity ())
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_exec.json\n";
  (* regression gate against a committed baseline artifact: CI points
     XNFDB_BASELINE at the in-repo BENCH_exec.json and fails the smoke
     run if batched throughput dropped by more than 20%. *)
  (match Sys.getenv_opt "XNFDB_BASELINE" with
  | None -> ()
  | Some file -> (
    match baseline_field ~file ~name:"oo1_traversal" ~field:"rows_per_sec_batched" with
    | None ->
      row "baseline %s: no oo1_traversal entry (gate skipped)\n" file
    | Some base ->
      let ratio = trav_rps /. base in
      row "baseline gate: %.0f rows/s vs committed %.0f rows/s (%.2fx)\n"
        trav_rps base ratio;
      if ratio < 0.8 then begin
        row
          "FAIL: batched oo1_traversal throughput regressed more than 20%% \
           vs %s\n"
          file;
        exit 1
      end));
  register_bechamel ~name:"E5.exec_scalar" (fun () ->
      ignore (Executor.Exec_scalar.run traversal));
  register_bechamel ~name:"E5.exec_batched" (fun () ->
      ignore (Executor.Exec.run traversal))

(* ---------------------------------------------------------------- E6 --- *)

(** Parallel table queues: the OO1 traversal join and the four CO-view
    extractions swept over domain counts, every parallel result checked
    identical (row lists) or byte-identical (streams) to the sequential
    executor.  Results land in [BENCH_parallel.json]. *)
let bench_parallel_queues ?n_parts
    ?(domain_counts = [ 1; 2; 4; 8 ]) () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 20_000 in
  header
    "E6. Parallel table queues — domain sweep, bit-identical to sequential";
  row "host cores: %d (speedup beyond 1 core cannot manifest on a smaller \
       host; numbers are honest wall-clock)\n"
    (Domain.recommended_domain_count ());
  row "%-22s | %7s | %8s | %12s | %12s | %10s\n" "workload" "domains" "rows"
    "seq (ms)" "par (ms)" "vs 1 dom";
  row "%s\n" (String.make 84 '-');
  let entries = ref [] in
  let oo1_speedup4 = ref 1.0 in
  let sweep name ~rows ~t_seq run =
    let t1 = ref nan in
    List.iter
      (fun domains ->
        let t = time_median ~repeat:3 (fun () -> run ~domains) in
        if Float.is_nan !t1 then t1 := t;
        let vs1 = !t1 /. t in
        if name = "oo1_traversal" && domains = 4 then oo1_speedup4 := vs1;
        row "%-22s | %7d | %8d | %12.2f | %12.2f | %9.2fx\n" name domains rows
          (ms t_seq) (ms t) vs1;
        entries :=
          Printf.sprintf
            "    { \"name\": %S, \"domains\": %d, \"rows\": %d, \
             \"seq_ms\": %.3f, \"par_ms\": %.3f, \"rows_per_sec\": %.0f, \
             \"speedup_vs_1\": %.3f }"
            name domains rows (ms t_seq) (ms t)
            (float_of_int rows /. t)
            vs1
          :: !entries)
      domain_counts
  in
  (* flat traversal join: the morsel-parallel executor proper *)
  let p = { Workloads.Oo1.default with n_parts } in
  let oo1 = Workloads.Oo1.generate p in
  let traversal =
    Db.compile_query ~join_method:`Hash oo1
      "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build \
       < 5000"
  in
  let expected = Executor.Exec.run traversal in
  List.iter
    (fun domains ->
      assert (Executor.Exec_par.run ~domains traversal = expected))
    domain_counts;
  let t_seq = time_median ~repeat:3 (fun () -> Executor.Exec.run_batches traversal) in
  sweep "oo1_traversal" ~rows:(List.length expected) ~t_seq (fun ~domains ->
      Executor.Exec_par.run_batches ~domains traversal);
  (* CO-view extraction: component plans in parallel on the same pool *)
  let extractions =
    [
      ("co_oo1_parts_graph", oo1, Workloads.Oo1.parts_graph_query);
      ( "co_bom_assembly",
        Workloads.Bom.generate Workloads.Bom.default,
        Workloads.Bom.assembly_query );
      ( "co_org_deps_arc",
        Workloads.Org.generate Workloads.Org.default,
        Workloads.Org.deps_arc_query );
      ( "co_shop_region",
        Workloads.Shop.generate Workloads.Shop.default,
        Workloads.Shop.region_query "EMEA" );
    ]
  in
  List.iter
    (fun (name, db, q) ->
      (* ~cache:false: E6 measures (and equivalence-checks) the two
         executors; warm stream-cache hits would void both *)
      let compiled = Xnf.Xnf_compile.compile db q in
      let seq = Xnf.Xnf_compile.extract ~cache:false compiled in
      List.iter
        (fun domains ->
          assert
            (H.equal seq
               (Xnf.Xnf_compile.extract_parallel ~domains ~cache:false compiled)))
        domain_counts;
      let t_seq =
        time_median ~repeat:3 (fun () ->
            Xnf.Xnf_compile.extract ~cache:false compiled)
      in
      sweep name ~rows:(H.total_items seq) ~t_seq (fun ~domains ->
          Xnf.Xnf_compile.extract_parallel ~domains ~cache:false compiled))
    extractions;
  row
    "\ngate: oo1_traversal %.2fx at 4 domains (target >= 2.5x on a >= 4-core \
     host; every parallel run above was verified identical to sequential)\n"
    !oo1_speedup4;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"parallel_queues\",\n  %s,\n  \"n_parts\": %d,\n  \
     \"domain_counts\": [%s],\n  \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ()) n_parts
    (String.concat ", " (List.map string_of_int domain_counts))
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_parallel.json\n";
  register_bechamel ~name:"E6.par_traversal_d4" (fun () ->
      ignore (Executor.Exec_par.run_batches ~domains:4 traversal))

(* ---------------------------------------------------------------- E7 --- *)

(** Plan + CO-view result caching (repeat extraction): cold vs warm
    extraction over the four CO workloads, then invalidation by targeted
    DML and by a rolled-back transaction.  Every cache-enabled stream is
    checked byte-identical to a cache-bypassing extraction, and warm
    compiles must hit the plan cache.  Results land in
    [BENCH_cache.json]. *)
let bench_cache () =
  header "E7. Plan + result caching — cold / warm / after-DML / after-rollback";
  Executor.Result_cache.clear ();
  Executor.Result_cache.reset_stats ();
  let workloads =
    [
      ( "co_oo1_parts_graph",
        Workloads.Oo1.generate Workloads.Oo1.default,
        Workloads.Oo1.parts_graph_query,
        "UPDATE parts SET x = x + 1 WHERE pid < 10" );
      (* recursive CO: the result cache must decline it (fixpoint plans
         are rebuilt per iteration), so warm == cold here by design *)
      ( "co_bom_assembly",
        Workloads.Bom.generate Workloads.Bom.default,
        Workloads.Bom.assembly_query,
        "UPDATE contains SET qty = qty + 1 WHERE parent < 10" );
      ( "co_org_deps_arc",
        Workloads.Org.generate Workloads.Org.default,
        Workloads.Org.deps_arc_query,
        "UPDATE emp SET sal = sal + 1 WHERE eno < 10" );
      ( "co_shop_region",
        Workloads.Shop.generate Workloads.Shop.default,
        Workloads.Shop.region_query "EMEA",
        "UPDATE orders SET total = total + 1 WHERE oid < 10" );
    ]
  in
  row "%-22s | %9s | %9s | %8s | %9s | %9s | %9s | %9s\n" "workload"
    "cold(ms)" "warm(ms)" "speedup" "dml(ms)" "maint(ms)" "rlbk(ms)"
    "compile x";
  row "%s\n" (String.make 104 '-');
  let entries = ref [] in
  let best = ref ("-", 0.0) in
  let worst_post_dml = ref ("-", 0.0) in
  List.iter
    (fun (name, db, q, dml) ->
      (* plan cache: the first compile populates, repeats must hit the
         normalized-text x flags key and return the same compiled value *)
      let c, t_comp_cold = time_once (fun () -> Xnf.Xnf_compile.compile db q) in
      let t_comp_warm =
        time_median ~repeat:5 (fun () ->
            ignore (Xnf.Xnf_compile.compile db q : Xnf.Xnf_compile.compiled))
      in
      if Db.plan_cache_enabled () then begin
        assert ((Db.cache_stats db).Db.plan_hits > 0);
        assert (Xnf.Xnf_compile.compile db q == c)
      end;
      let cacheable = Xnf.Xnf_compile.stream_cache_key c <> None in
      let fresh () = Xnf.Xnf_compile.extract ~cache:false c in
      let reference = fresh () in
      (* cold: the first cache-enabled extraction does the work and
         stores the assembled stream *)
      let cold, t_cold = time_once (fun () -> Xnf.Xnf_compile.extract c) in
      assert (H.equal reference cold);
      (* warm: repeats must serve the stored stream, byte-identical *)
      let t_warm =
        time_median ~repeat:5 (fun () ->
            ignore (Xnf.Xnf_compile.extract c : H.t))
      in
      assert (H.equal reference (Xnf.Xnf_compile.extract c));
      let speedup = t_cold /. t_warm in
      if cacheable && speedup > snd !best then best := (name, speedup);
      (* targeted DML: the per-table version counters drift the cache
         key, so the stale entry must not be served *)
      ignore (Db.exec db dml);
      let misses0 = (Executor.Result_cache.stats ()).misses in
      let post_dml, t_dml = time_once (fun () -> Xnf.Xnf_compile.extract c) in
      assert (H.equal (fresh ()) post_dml);
      if cacheable && Executor.Result_cache.enabled () then
        assert ((Executor.Result_cache.stats ()).misses > misses0);
      (* steady state: the read above paid the one-time instrumented
         refill; further DML rounds are served by delta maintenance.
         Median of three so a stray GC major cannot fail the gate. *)
      let t_maint =
        let ts =
          List.init 3 (fun _ ->
              ignore (Db.exec db dml);
              let m, t = time_once (fun () -> Xnf.Xnf_compile.extract c) in
              assert (H.equal (fresh ()) m);
              t)
        in
        List.nth (List.sort compare ts) 1
      in
      if cacheable && t_maint /. t_cold > snd !worst_post_dml then
        worst_post_dml := (name, t_maint /. t_cold);
      (* rolled-back txn: the in-txn extraction caches uncommitted state
         under the in-txn versions; ROLLBACK's undo and boundary bumps
         move the monotonic counters past that key forever *)
      ignore (Db.exec db "BEGIN");
      ignore (Db.exec db dml);
      ignore (Xnf.Xnf_compile.extract c : H.t);
      ignore (Db.exec db "ROLLBACK");
      let post_rb, t_rb = time_once (fun () -> Xnf.Xnf_compile.extract c) in
      assert (H.equal (fresh ()) post_rb);
      let compile_x = t_comp_cold /. t_comp_warm in
      row "%-22s | %9.2f | %9.3f | %7.1fx | %9.2f | %9.3f | %9.2f | %8.1fx%s\n"
        name (ms t_cold) (ms t_warm) speedup (ms t_dml) (ms t_maint) (ms t_rb)
        compile_x
        (if cacheable then "" else "  (recursive: uncached)");
      entries :=
        Printf.sprintf
          "    { \"name\": %S, \"cacheable\": %b, \"cold_ms\": %.3f, \
           \"warm_ms\": %.4f, \"speedup\": %.2f, \"post_dml_ms\": %.3f, \
           \"maintained_ms\": %.4f, \"post_rollback_ms\": %.3f, \
           \"compile_cold_ms\": %.3f, \"compile_warm_ms\": %.4f }"
          name cacheable (ms t_cold) (ms t_warm) speedup (ms t_dml)
          (ms t_maint) (ms t_rb) (ms t_comp_cold) (ms t_comp_warm)
        :: !entries)
    workloads;
  let s = Executor.Result_cache.stats () in
  row
    "\nresult cache: %d hits / %d misses / %d evictions; %d entries, %d \
     bytes resident\n"
    s.hits s.misses s.evictions s.entries s.bytes;
  let best_name, best_speedup = !best in
  row
    "gate: warm repeat extraction %.1fx over cold on %s (acceptance: >= 5x \
     on at least one CO workload; every cached stream was byte-identical to \
     an uncached extraction, including after DML and after rollback)\n"
    best_speedup best_name;
  let oc = open_out "BENCH_cache.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"cache\",\n  %s,\n  \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ())
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_cache.json\n";
  if Executor.Result_cache.enabled () && best_speedup < 5.0 then begin
    row "FAIL: no CO workload reached the 5x warm-over-cold gate\n";
    exit 1
  end;
  (* steady-state maintenance gate: once the one-time instrumented
     refill has been paid (the dml(ms) column reports it), every further
     post-DML read must be served by delta maintenance, far below a cold
     recompute.  The refill itself is not gated — it is a single
     measurement of recompute-sized work, too exposed to GC timing. *)
  let pd_name, pd_x = !worst_post_dml in
  row
    "gate: worst cacheable maintained post-DML read %.2fx of cold on %s \
     (acceptance: <= 1.5x cold — maintained reads patch deltas in place \
     instead of recomputing)\n"
    pd_x pd_name;
  if Executor.Result_cache.enabled () && Xnf.Xnf_ivm.enabled () && pd_x > 1.5
  then begin
    row "FAIL: maintained post-DML read exceeded 1.5x cold (maintenance \
         regression)\n";
    exit 1
  end

(* ---------------------------------------------------------------- E8 --- *)

module Cs = Relcore.Colstore

(** Columnar chunk storage: unboxed column scans with zone-map pruning
    vs the row store, on identical plans.  The [XNFDB_COLSTORE] knob is
    flipped around each timed run; every columnar result is verified
    against the row-store result in the same run (ordered row lists for
    SQL, byte-identical streams for CO extraction).  Results land in
    [BENCH_colstore.json]; `oo1_scan_filter` is the acceptance gate. *)
let bench_colstore ?n_parts () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 20_000 in
  header "E8. Columnar chunk storage — zone-pruned unboxed scans vs row store";
  (* drop the previous section's resident result cache and compact, so
     the scan timings below are not taxed with GC majors over another
     workload's live heap *)
  Executor.Result_cache.clear ();
  Gc.compact ();
  let p = { Workloads.Oo1.default with n_parts } in
  let db = Workloads.Oo1.generate p in
  let with_knob v f =
    let old = Sys.getenv_opt "XNFDB_COLSTORE" in
    Unix.putenv "XNFDB_COLSTORE" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "XNFDB_COLSTORE" (Option.value old ~default:""))
      f
  in
  row "database: %d parts, %d connections; batch size %d, chunk rows %s\n"
    p.Workloads.Oo1.n_parts (3 * p.Workloads.Oo1.n_parts)
    (Relcore.Batch.default_capacity ())
    (Option.value (Sys.getenv_opt "XNFDB_CHUNK_ROWS") ~default:"1024");
  row "%-18s | %8s | %11s | %11s | %8s | %7s/%-3s | %9s\n" "query" "rows"
    "row st (ms)" "colstore(ms)" "speedup" "scanned" "skip" "matzd";
  row "%s\n" (String.make 88 '-');
  let entries = ref [] in
  let measure name ?join_method sql =
    let c = Db.compile_query ?join_method db sql in
    (* equivalence gate: both storage paths must agree, in order *)
    let rows_off = with_knob "0" (fun () -> Executor.Exec.run c) in
    let s0, k0, m0 =
      (Cs.totals.Cs.chunks_scanned, Cs.totals.Cs.chunks_skipped,
       Cs.totals.Cs.rows_materialized)
    in
    let rows_on = with_knob "1" (fun () -> Executor.Exec.run c) in
    assert (rows_off = rows_on);
    let scanned = Cs.totals.Cs.chunks_scanned - s0
    and skipped = Cs.totals.Cs.chunks_skipped - k0
    and materialized = Cs.totals.Cs.rows_materialized - m0 in
    let n = List.length rows_on in
    let t_off =
      with_knob "0" (fun () ->
          time_median ~repeat:5 (fun () -> Executor.Exec.run_batches c))
    in
    let t_on =
      with_knob "1" (fun () ->
          time_median ~repeat:5 (fun () -> Executor.Exec.run_batches c))
    in
    let speedup = t_off /. t_on in
    row "%-18s | %8d | %11.2f | %11.2f | %7.2fx | %7d/%-3d | %9d\n" name n
      (ms t_off) (ms t_on) speedup scanned skipped materialized;
    entries :=
      Printf.sprintf
        "    { \"name\": %S, \"rows\": %d, \"rowstore_ms\": %.3f, \
         \"colstore_ms\": %.3f, \"speedup\": %.3f, \"chunks_scanned\": %d, \
         \"chunks_skipped\": %d, \"rows_materialized\": %d }"
        name n (ms t_off) (ms t_on) speedup scanned skipped materialized
      :: !entries;
    speedup
  in
  let gate =
    measure "oo1_scan_filter"
      "SELECT cto, clength FROM conns WHERE clength < 500"
  in
  (* cfrom is clustered by generation order: zone maps prune nearly
     every chunk *)
  ignore
    (measure "oo1_pruned_scan" "SELECT cfrom, cto FROM conns WHERE cfrom < 100"
      : float);
  ignore
    (measure "oo1_traversal" ~join_method:`Hash
       "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build \
        < 5000"
      : float);
  (* CO extraction: the full multi-output pipeline, byte-identical
     streams under both storage paths *)
  let compiled = Xnf.Xnf_compile.compile db Workloads.Oo1.parts_graph_query in
  let stream_off =
    with_knob "0" (fun () -> Xnf.Xnf_compile.extract ~cache:false compiled)
  in
  let stream_on =
    with_knob "1" (fun () -> Xnf.Xnf_compile.extract ~cache:false compiled)
  in
  assert (H.equal stream_off stream_on);
  let t_x_off =
    with_knob "0" (fun () ->
        time_median ~repeat:3 (fun () ->
            Xnf.Xnf_compile.extract ~cache:false compiled))
  in
  let t_x_on =
    with_knob "1" (fun () ->
        time_median ~repeat:3 (fun () ->
            Xnf.Xnf_compile.extract ~cache:false compiled))
  in
  row "%-18s | %8d | %11.2f | %11.2f | %7.2fx | (Hetstream.equal verified)\n"
    "co_parts_graph"
    (H.total_items stream_on)
    (ms t_x_off) (ms t_x_on) (t_x_off /. t_x_on);
  entries :=
    Printf.sprintf
      "    { \"name\": \"co_oo1_parts_graph\", \"rows\": %d, \
       \"rowstore_ms\": %.3f, \"colstore_ms\": %.3f, \"speedup\": %.3f, \
       \"hetstream_equal\": true }"
      (H.total_items stream_on)
      (ms t_x_off) (ms t_x_on) (t_x_off /. t_x_on)
    :: !entries;
  row
    "\ngate: oo1_scan_filter speedup %.2fx (acceptance: >= 1.3x over the row \
     store; every columnar result above was verified identical to the row \
     store in this run)\n"
    gate;
  let oc = open_out "BENCH_colstore.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"colstore\",\n  %s,\n  \"n_parts\": %d,\n  \
     \"chunk_rows\": %s,\n  \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ()) n_parts
    (Option.value (Sys.getenv_opt "XNFDB_CHUNK_ROWS") ~default:"1024")
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_colstore.json\n";
  if gate < 1.3 then begin
    row "FAIL: oo1_scan_filter did not reach the 1.3x columnar-scan gate\n";
    exit 1
  end;
  let scan =
    Db.compile_query db "SELECT cto, clength FROM conns WHERE clength < 500"
  in
  register_bechamel ~name:"E8.colstore_scan" (fun () ->
      ignore (Executor.Exec.run_batches scan))

(* ---------------------------------------------------------------- E9 --- *)

module Bl = Relcore.Bloom

(** Sideways information passing: build-side join filters (Bloom +
    min/max) pushed into probe scans.  The [XNFDB_JOINFILTER] knob is
    flipped around each timed run; every filtered result is verified
    against the unfiltered one in the same run (ordered row lists for
    SQL, byte-identical streams for CO extraction).

    The gated case is the shape the filter targets: the join order
    streams the cheaper side as the hash join's probe (its estimated
    cardinality after the payload predicate sits below the build's), so
    the probe here is a big clustered scan while the build side covers
    only a narrow key band.  The OO1 traversal rides along as a
    declined case (the estimator predicts a useless filter and attaches
    none), and the four CO extractions confirm output invariance on
    real workloads.  Results land in [BENCH_joinfilter.json];
    `probe_bandjoin` is the acceptance gate. *)
let bench_joinfilter ?n_probe () =
  let n_probe = match n_probe with Some n -> n | None -> scaled 200_000 in
  header
    "E9. Sideways information passing — build-side join filters (Bloom + \
     min/max) in probe scans";
  Executor.Result_cache.clear ();
  Gc.compact ();
  let module Bt = Relcore.Base_table in
  let module Sc = Relcore.Schema in
  let with_knob v f =
    let old = Sys.getenv_opt "XNFDB_JOINFILTER" in
    Unix.putenv "XNFDB_JOINFILTER" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "XNFDB_JOINFILTER" (Option.value old ~default:""))
      f
  in
  let totals () =
    ( Bl.totals.Bl.filters_built,
      Bl.totals.Bl.chunks_skipped,
      Bl.totals.Bl.rows_skipped,
      Bl.totals.Bl.filters_dropped )
  in
  (* timing drift in a long-lived bench process (pools, resident caches)
     can dwarf the effect under test when the two knob settings are
     measured in separate blocks — so every comparison below interleaves
     its samples: one off-run then one on-run per round, medians of
     each.  [repeat] odd keeps the median a real sample. *)
  let time_pair ?(repeat = 7) f =
    ignore (with_knob "0" f);
    ignore (with_knob "1" f);
    let offs = ref [] and ons = ref [] in
    for _ = 1 to repeat do
      let _, t0 = time_once (fun () -> with_knob "0" f) in
      let _, t1 = time_once (fun () -> with_knob "1" f) in
      offs := t0 :: !offs;
      ons := t1 :: !ons
    done;
    let med l = List.nth (List.sort compare l) (repeat / 2) in
    (med !offs, med !ons)
  in
  (* crafted band-join: probe n_probe rows, fk clustered 0..n-1, with a
     payload predicate the scan evaluates per chunk; build n/5 rows
     confined to a 100-key band in the middle.  The filter's key range
     prunes every probe chunk but the band's own *)
  let db = Db.create () in
  let cat = Db.catalog db in
  let probe_t =
    Bt.create ~name:"probe_t"
      (Sc.make
         [
           Sc.column ~nullable:false "fk" Relcore.Dtype.Tint;
           Sc.column "payload" Relcore.Dtype.Tint;
         ])
  in
  let build_t =
    Bt.create ~name:"build_t"
      (Sc.make
         [
           Sc.column ~nullable:false "k" Relcore.Dtype.Tint;
           Sc.column "tag" Relcore.Dtype.Tint;
         ])
  in
  Relcore.Catalog.add_table cat probe_t;
  Relcore.Catalog.add_table cat build_t;
  for i = 0 to n_probe - 1 do
    ignore
      (Bt.insert probe_t [| Relcore.Value.Int i; Relcore.Value.Int (i mod 7) |])
  done;
  let n_build = n_probe / 5 and band = 100 in
  let band_lo = n_probe / 2 in
  for i = 0 to n_build - 1 do
    ignore
      (Bt.insert build_t
         [| Relcore.Value.Int (band_lo + (i mod band)); Relcore.Value.Int i |])
  done;
  row
    "database: probe_t %d rows (fk clustered), build_t %d rows (keys \
     %d..%d)\n"
    n_probe n_build band_lo
    (band_lo + band - 1);
  row "%-22s | %8s | %12s | %12s | %8s | %s\n" "case" "rows" "off (ms)"
    "on (ms)" "speedup" "filter counters (delta)";
  row "%s\n" (String.make 100 '-');
  let entries = ref [] in
  let measure name c =
    (* equivalence gate: filtered and unfiltered must agree, in order *)
    let rows_off = with_knob "0" (fun () -> Executor.Exec.run c) in
    let b0, c0, r0, d0 = totals () in
    let rows_on = with_knob "1" (fun () -> Executor.Exec.run c) in
    assert (rows_off = rows_on);
    let b1, c1, r1, d1 = totals () in
    let built = b1 - b0
    and chunks = c1 - c0
    and rskip = r1 - r0
    and dropped = d1 - d0 in
    let n = List.length rows_on in
    let t_off, t_on = time_pair (fun () -> Executor.Exec.run_batches c) in
    let speedup = t_off /. t_on in
    row "%-22s | %8d | %12.2f | %12.2f | %7.2fx | built %d, chunks %d, rows \
         %d, dropped %d\n"
      name n (ms t_off) (ms t_on) speedup built chunks rskip dropped;
    entries :=
      Printf.sprintf
        "    { \"name\": %S, \"rows\": %d, \"unfiltered_ms\": %.3f, \
         \"filtered_ms\": %.3f, \"speedup\": %.3f, \"filters_built\": %d, \
         \"chunks_skipped\": %d, \"rows_skipped\": %d, \"filters_dropped\": \
         %d }"
        name n (ms t_off) (ms t_on) speedup built chunks rskip dropped
      :: !entries;
    speedup
  in
  let band_sql =
    "SELECT COUNT(*) FROM probe_t p, build_t b WHERE b.k = p.fk AND \
     p.payload = 3"
  in
  let band_join = Db.compile_query ~join_method:`Hash db band_sql in
  let gate = measure "probe_bandjoin" band_join in
  (* the same plan on the morsel-parallel executor: per-worker partial
     filters OR-merged, result and counters verified against serial *)
  let expected = with_knob "0" (fun () -> Executor.Exec.run band_join) in
  assert (
    with_knob "1" (fun () -> Executor.Exec_par.run ~domains:4 band_join)
    = expected);
  let t_par_off, t_par_on =
    time_pair (fun () -> Executor.Exec_par.run_batches ~domains:4 band_join)
  in
  row "%-22s | %8d | %12.2f | %12.2f | %7.2fx | (verified = serial)\n"
    "probe_bandjoin_par4" (List.length expected) (ms t_par_off) (ms t_par_on)
    (t_par_off /. t_par_on);
  entries :=
    Printf.sprintf
      "    { \"name\": \"probe_bandjoin_par4\", \"rows\": %d, \
       \"unfiltered_ms\": %.3f, \"filtered_ms\": %.3f, \"speedup\": %.3f }"
      (List.length expected) (ms t_par_off) (ms t_par_on)
      (t_par_off /. t_par_on)
    :: !entries;
  (* declined case: conns.cfrom spans every probe key, so the estimated
     pass rate is ~1.0 and the planner attaches no filter *)
  let oo1 = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 5_000 } in
  let traversal =
    Db.compile_query ~join_method:`Hash oo1
      "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build \
       < 5000"
  in
  ignore (measure "oo1_traversal_declined" traversal : float);
  (* CO extraction: the four workloads, byte-identical streams under
     both knob settings (filters fire only where the planner predicts a
     benefit; the point here is output invariance, not speedup) *)
  let extractions =
    [
      ("co_oo1_parts_graph", oo1, Workloads.Oo1.parts_graph_query);
      ( "co_bom_assembly",
        Workloads.Bom.generate Workloads.Bom.default,
        Workloads.Bom.assembly_query );
      ( "co_org_deps_arc",
        Workloads.Org.generate Workloads.Org.default,
        Workloads.Org.deps_arc_query );
      ( "co_shop_region",
        Workloads.Shop.generate Workloads.Shop.default,
        Workloads.Shop.region_query "EMEA" );
    ]
  in
  List.iter
    (fun (name, wdb, q) ->
      let compiled = Xnf.Xnf_compile.compile wdb q in
      let off =
        with_knob "0" (fun () -> Xnf.Xnf_compile.extract ~cache:false compiled)
      in
      let b0 = Bl.totals.Bl.filters_built in
      let on =
        with_knob "1" (fun () -> Xnf.Xnf_compile.extract ~cache:false compiled)
      in
      assert (H.equal off on);
      let built = Bl.totals.Bl.filters_built - b0 in
      let t_off, t_on =
        time_pair ~repeat:3 (fun () ->
            Xnf.Xnf_compile.extract ~cache:false compiled)
      in
      row "%-22s | %8d | %12.2f | %12.2f | %7.2fx | built %d \
           (Hetstream.equal verified)\n"
        name (H.total_items on) (ms t_off) (ms t_on) (t_off /. t_on) built;
      entries :=
        Printf.sprintf
          "    { \"name\": %S, \"rows\": %d, \"unfiltered_ms\": %.3f, \
           \"filtered_ms\": %.3f, \"speedup\": %.3f, \"filters_built\": %d, \
           \"hetstream_equal\": true }"
          name (H.total_items on) (ms t_off) (ms t_on) (t_off /. t_on) built
        :: !entries)
    extractions;
  row
    "\ngate: probe_bandjoin speedup %.2fx (acceptance: >= 1.2x over the \
     unfiltered probe; every filtered result above was verified identical \
     to its unfiltered run)\n"
    gate;
  let oc = open_out "BENCH_joinfilter.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"joinfilter\",\n  %s,\n  \"n_probe\": %d,\n  \
     \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ()) n_probe
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_joinfilter.json\n";
  if gate < 1.2 then begin
    row "FAIL: probe_bandjoin did not reach the 1.2x join-filter gate\n";
    exit 1
  end;
  register_bechamel ~name:"E9.jf_probe_filtered" (fun () ->
      ignore (Executor.Exec.run_batches band_join))

(* --------------------------------------------------------------- E10 --- *)

(** Incremental CO-view maintenance: single-row and small-batch DML
    against a warm OO1 parts-graph cache.  Each round executes the DML
    and times the next cache-enabled read — with [XNFDB_IVM] on (the
    default) that read is served by pushing the table deltas through the
    compiled plans and patching the cached stream in place, verified
    byte-identical to a cold recompute of the same state in the same
    run.  Gate: the MEDIAN maintained read across all rounds is >= 50x
    faster than cold recompute (median, because a stray GC major can
    spike any single round), and [XNFDB_IVM=0] reproduces plain
    invalidate-on-write exactly.  Results land in [BENCH_ivm.json]. *)
let bench_ivm ?n_parts () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 20_000 in
  header "E10. Incremental CO-view maintenance — post-DML reads on warm OO1";
  Executor.Result_cache.clear ();
  Xnf.Xnf_ivm.reset ();
  Xnf.Xnf_ivm.reset_stats ();
  Gc.compact ();
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts } in
  let c = Xnf.Xnf_compile.compile db Workloads.Oo1.parts_graph_query in
  let fresh () = Xnf.Xnf_compile.extract ~cache:false c in
  let t_cold = time_median ~repeat:3 (fun () -> ignore (fresh () : H.t)) in
  (* the first cache-enabled read is a plain store; the first miss
     after DML is the one-time instrumented refill that builds the
     maintenance mirrors — pay both here so every round below measures
     a maintained read *)
  ignore (Xnf.Xnf_compile.extract c : H.t);
  ignore (Db.exec db "UPDATE parts SET x = x + 1 WHERE pid = 50");
  let _, t_fill = time_once (fun () -> Xnf.Xnf_compile.extract c) in
  let next_pid = ref (2 * n_parts) in
  let dml_rounds =
    List.concat
      [
        List.init 10 (fun i ->
            ( "update_1row",
              [
                Printf.sprintf "UPDATE parts SET x = x + 1 WHERE pid = %d"
                  (101 + (977 * i)) ;
              ] ));
        List.init 5 (fun i ->
            ( "update_batch8",
              [
                Printf.sprintf
                  "UPDATE parts SET y = y + 1 WHERE pid >= %d AND pid < %d"
                  (500 + (1000 * i))
                  (508 + (1000 * i));
              ] ));
        List.init 5 (fun i ->
            incr next_pid;
            let pid = !next_pid in
            ( "insert_part+conn",
              [
                Printf.sprintf
                  "INSERT INTO parts VALUES (%d, 'part-type0', %d, %d, 7)" pid
                  (pid mod 1000) (pid mod 997);
                Printf.sprintf "INSERT INTO conns VALUES (%d, %d, 'link', %d)"
                  (1 + i) pid
                  (1 + (pid mod 9));
              ] ));
      ]
  in
  row "%-18s | %9s | %9s | %9s\n" "round" "cold(ms)" "ivm(ms)" "speedup";
  row "%s\n" (String.make 54 '-');
  let entries = ref [] in
  let times = ref [] in
  List.iter
    (fun (label, stmts) ->
      List.iter (fun s -> ignore (Db.exec db s)) stmts;
      let maintained, t_m = time_once (fun () -> Xnf.Xnf_compile.extract c) in
      (* byte-identity against a cold recompute of the same state *)
      assert (H.equal (fresh ()) maintained);
      times := t_m :: !times;
      row "%-18s | %9.2f | %9.3f | %8.0fx\n" label (ms t_cold) (ms t_m)
        (t_cold /. t_m);
      entries :=
        Printf.sprintf
          "    { \"round\": %S, \"maintained_ms\": %.4f, \"speedup\": %.1f }"
          label (ms t_m) (t_cold /. t_m)
        :: !entries)
    dml_rounds;
  let sorted = List.sort compare !times in
  let t_median = List.nth sorted (List.length sorted / 2) in
  let gate = t_cold /. t_median in
  let s = Xnf.Xnf_ivm.stats in
  row
    "\nivm: %d fills, %d maintained (%d patched / %d reassembled), %d \
     fallbacks, %d mismatches; instrumented refill %.1f ms (%.1fx cold)\n"
    s.Xnf.Xnf_ivm.fills s.Xnf.Xnf_ivm.maintained s.Xnf.Xnf_ivm.patched
    s.Xnf.Xnf_ivm.reassembled s.Xnf.Xnf_ivm.fallbacks
    s.Xnf.Xnf_ivm.mismatches (ms t_fill) (t_fill /. t_cold);
  (* XNFDB_IVM=0 must reproduce plain invalidate-on-write: same
     answers, no maintained reads *)
  let old_ivm = Sys.getenv_opt "XNFDB_IVM" in
  Unix.putenv "XNFDB_IVM" "0";
  let off_ok =
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "XNFDB_IVM" (Option.value old_ivm ~default:""))
      (fun () ->
        let maintained0 = Xnf.Xnf_ivm.stats.Xnf.Xnf_ivm.maintained in
        ignore (Db.exec db "UPDATE parts SET x = x + 1 WHERE pid = 42");
        let off = Xnf.Xnf_compile.extract c in
        let warm_off = Xnf.Xnf_compile.extract c in
        H.equal (fresh ()) off
        && H.equal off warm_off
        && Xnf.Xnf_ivm.stats.Xnf.Xnf_ivm.maintained = maintained0)
  in
  row
    "gate: median maintained post-DML read %.0fx over cold recompute \
     (acceptance: >= 50x; every maintained stream was byte-identical to a \
     cold recompute of the same state; XNFDB_IVM=0 equivalence %s)\n"
    gate
    (if off_ok then "verified" else "FAILED");
  let oc = open_out "BENCH_ivm.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"ivm\",\n  %s,\n  \"n_parts\": %d,\n  \"cold_ms\": \
     %.3f,\n  \"refill_ms\": %.3f,\n  \"median_maintained_ms\": %.4f,\n  \
     \"median_speedup\": %.1f,\n  \"ivm_off_equivalent\": %b,\n  \
     \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ()) n_parts (ms t_cold) (ms t_fill) (ms t_median) gate
    off_ok
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_ivm.json\n";
  if Executor.Result_cache.enabled () && Xnf.Xnf_ivm.enabled () then begin
    if gate < 50.0 then begin
      row "FAIL: median maintained read did not reach the 50x gate\n";
      exit 1
    end;
    if s.Xnf.Xnf_ivm.mismatches > 0 then begin
      row "FAIL: instrumented refill detected mirror mismatches\n";
      exit 1
    end;
    if not off_ok then begin
      row "FAIL: XNFDB_IVM=0 did not reproduce invalidate-on-write\n";
      exit 1
    end
  end

(* --------------------------------------------------------------- E11 --- *)

(** Compressed, larger-than-RAM chunk store: OO1 at 10x the E8 scale
    with the per-table hot-tier budget far below the total column
    footprint.  Two databases are generated under the same budget: one
    with the lightweight encodings (FOR/bit-pack, RLE, packed nulls)
    and one naive-spill baseline (raw cold blocks, zone maps not used
    as a block index).  Gates, all verified in this run:
    every query completes with total column bytes >= 5x the budget;
    zone- and join-filter-pruned scans fault in 0 spilled chunks;
    encoded footprint <= 0.6x raw column bytes; the pruned scan runs
    >= 1.3x faster than the naive-spill baseline; CO extraction streams
    byte-identical to the row store.  Results land in
    [BENCH_spill.json]. *)
let bench_spill ?n_parts ?(budget_mb = 2) () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 200_000 in
  header "E11. Compressed larger-than-RAM chunk store — encodings + mmap spill";
  Executor.Result_cache.clear ();
  Gc.compact ();
  let with_env var v f =
    let old = Sys.getenv_opt var in
    Unix.putenv var v;
    Fun.protect
      ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
      f
  in
  with_env "XNFDB_COLSTORE_MB" (string_of_int budget_mb) @@ fun () ->
  let p = { Workloads.Oo1.default with n_parts } in
  (* the encoding decision is made at eviction time, so the encoded
     store and the raw baseline are two separately generated databases *)
  let db = Workloads.Oo1.generate p in
  let db_raw =
    with_env "XNFDB_COLSTORE_ENC" "0" (fun () -> Workloads.Oo1.generate p)
  in
  let cs_of d name =
    (Relcore.Catalog.find_table (Db.catalog d) name).Relcore.Base_table.colstore
  in
  let budget = Cs.budget_bytes () in
  let column_bytes d =
    List.fold_left
      (fun acc name ->
        let cs = cs_of d name in
        acc + (Cs.n_chunks cs * Cs.hot_chunk_bytes cs))
      0 [ "parts"; "conns" ]
  in
  let raw_cold_bytes d =
    List.fold_left
      (fun acc name ->
        let cs = cs_of d name in
        acc + (Cs.cold_chunks cs * Cs.hot_chunk_bytes cs))
      0 [ "parts"; "conns" ]
  in
  let spilled d =
    List.fold_left
      (fun acc name -> acc + Cs.spilled_bytes (cs_of d name))
      0 [ "parts"; "conns" ]
  in
  let colbytes = column_bytes db in
  row
    "database: %d parts, %d connections (x2: encoded + raw baseline)\n\
     budget: %d MB/table; total column bytes %.1f MB (%.1fx budget); \
     encoded spill %.1f MB, raw-baseline spill %.1f MB\n"
    n_parts (3 * n_parts) budget_mb
    (float_of_int colbytes /. 1048576.0)
    (float_of_int colbytes /. float_of_int budget)
    (float_of_int (spilled db) /. 1048576.0)
    (float_of_int (spilled db_raw) /. 1048576.0);
  (* gate: the dataset genuinely exceeds the resident budget *)
  let scale_ok = colbytes >= 5 * budget in
  (* encoded footprint vs the raw bytes of the same cold chunks *)
  let footprint =
    float_of_int (spilled db) /. float_of_int (max 1 (raw_cold_bytes db))
  in
  let with_knob v f = with_env "XNFDB_COLSTORE" v f in
  let entries = ref [] in
  let all_ok = ref true in
  row "%-18s | %8s | %11s | %7s | %7s\n" "query" "rows" "spill (ms)" "faulted"
    "fbytes";
  row "%s\n" (String.make 62 '-');
  let measure name ?join_method sql =
    let c = Db.compile_query ?join_method db sql in
    let rows_off = with_knob "0" (fun () -> Executor.Exec.run c) in
    let f0 = (Cs.totals.Cs.chunks_faulted, Cs.totals.Cs.bytes_faulted) in
    let rows_on = with_knob "1" (fun () -> Executor.Exec.run c) in
    if rows_off <> rows_on then begin
      row "FAIL: %s differs between spill store and row store\n" name;
      all_ok := false
    end;
    let faulted = Cs.totals.Cs.chunks_faulted - fst f0
    and fbytes = Cs.totals.Cs.bytes_faulted - snd f0 in
    let t =
      with_knob "1" (fun () ->
          time_median ~repeat:5 (fun () -> Executor.Exec.run_batches c))
    in
    row "%-18s | %8d | %11.2f | %7d | %7d\n" name (List.length rows_on)
      (ms t) faulted fbytes;
    entries :=
      Printf.sprintf
        "    { \"name\": %S, \"rows\": %d, \"spill_ms\": %.3f, \
         \"chunks_faulted\": %d, \"bytes_faulted\": %d }"
        name (List.length rows_on) (ms t) faulted fbytes
      :: !entries;
    (t, faulted)
  in
  ignore
    (measure "oo1_scan_filter"
       "SELECT cto, clength FROM conns WHERE clength < 500"
      : float * int);
  let t_pruned, _ =
    measure "oo1_pruned_scan" "SELECT cfrom, cto FROM conns WHERE cfrom < 100"
  in
  ignore
    (measure "oo1_traversal" ~join_method:`Hash
       "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build \
        < 5000"
      : float * int);
  (* zone maps as block index: a statically empty range faults nothing *)
  let _, zero_faults =
    measure "oo1_zone_empty"
      (Printf.sprintf "SELECT pid FROM parts WHERE pid > %d" (2 * n_parts))
  in
  (* a join filter built over a narrow key range prunes probe chunks
     before they are decoded or faulted in *)
  let _, jf_faults =
    with_env "XNFDB_JOINFILTER" "1" (fun () ->
        measure "oo1_jf_probe" ~join_method:`Hash
          "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND \
           p.pid <= 64")
  in
  (* the naive-spill baseline: raw cold blocks, no block index — every
     cold chunk is faulted back on each run of the pruned scan *)
  let t_base =
    with_env "XNFDB_COLSTORE_BLOCKIDX" "0" (fun () ->
        let c =
          Db.compile_query db_raw
            "SELECT cfrom, cto FROM conns WHERE cfrom < 100"
        in
        time_median ~repeat:5 (fun () -> Executor.Exec.run_batches c))
  in
  let speedup = t_base /. t_pruned in
  row "%-18s | %8s | %11.2f | (raw blocks, no block index)\n"
    "oo1_pruned_base" "" (ms t_base);
  (* CO extraction over the spilled store, byte-identical to the row
     store (Hetstream.equal) *)
  let compiled = Xnf.Xnf_compile.compile db Workloads.Oo1.parts_graph_query in
  let stream_off =
    with_knob "0" (fun () -> Xnf.Xnf_compile.extract ~cache:false compiled)
  in
  let stream_on =
    with_knob "1" (fun () -> Xnf.Xnf_compile.extract ~cache:false compiled)
  in
  let streams_ok = H.equal stream_off stream_on in
  row "%-18s | %8d | (Hetstream.equal %s)\n" "co_parts_graph"
    (H.total_items stream_on)
    (if streams_ok then "verified" else "FAILED");
  row
    "\ngates: column bytes >= 5x budget: %b; zone-pruned faults = 0: %b (%d); \
     jf-pruned faults <= 4: %b (%d); footprint %.2fx <= 0.6x: %b; pruned-scan \
     speedup %.2fx >= 1.3x: %b; streams byte-identical: %b\n"
    scale_ok (zero_faults = 0) zero_faults (jf_faults <= 4) jf_faults
    footprint (footprint <= 0.6) speedup (speedup >= 1.3) streams_ok;
  let oc = open_out "BENCH_spill.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"spill\",\n  %s,\n  \"n_parts\": %d,\n  \
     \"budget_mb\": %d,\n  \"column_bytes\": %d,\n  \"spilled_bytes\": %d,\n  \
     \"raw_baseline_spilled_bytes\": %d,\n  \"footprint_ratio\": %.4f,\n  \
     \"zone_empty_faults\": %d,\n  \"jf_probe_faults\": %d,\n  \
     \"pruned_ms\": %.3f,\n  \"pruned_baseline_ms\": %.3f,\n  \
     \"pruned_speedup\": %.3f,\n  \"hetstream_equal\": %b,\n  \
     \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ()) n_parts budget_mb colbytes (spilled db)
    (spilled db_raw) footprint zero_faults jf_faults (ms t_pruned)
    (ms t_base) speedup streams_ok
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_spill.json\n";
  if
    not
      (!all_ok && scale_ok && zero_faults = 0 && jf_faults <= 4
     && footprint <= 0.6 && speedup >= 1.3 && streams_ok)
  then begin
    row "FAIL: a spill gate did not hold (see above)\n";
    exit 1
  end

(* --------------------------------------------------------------- E12 --- *)

(** Client/server shipping over the real wire (Sect. 5's process
    boundary, measured rather than modeled — this supersedes E3's
    simulated 50us crossing): concurrent OO1 traversal / extraction
    sessions against the [xnfdb serve] daemon on a unix socket.  Every
    response is verified byte-identical to in-process execution while
    the run is under way.  Results land in [BENCH_server.json];
    `bulk_vs_tuple` is the acceptance gate (bulk shipping must be at
    least 2x tuple-at-a-time on the same stream). *)

let percentile (sorted : float array) p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let json_escape s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let bench_server ?n_parts ?(n_sessions = 120) ?(rounds = 2) () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 2_000 in
  header
    "E12. Sect. 5 — bulk shipping across a real process boundary: \
     concurrent sessions against the xnfdb daemon";
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts } in
  ignore
    (Db.exec db ("CREATE VIEW parts_co AS " ^ Workloads.Oo1.parts_graph_query));
  (* the request mix of one OO1 session: point lookups, a one-hop
     traversal join, and a CO extraction of the whole parts graph *)
  let traversal_sql =
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000"
  in
  let lookup_sql k =
    Printf.sprintf "SELECT pid, ptype, build FROM parts WHERE pid = %d"
      (1 + (k mod 32))
  in
  let statements =
    List.init 32 lookup_sql @ [ traversal_sql ] @ [ "@extract parts_co" ]
  in
  (* in-process reference: canonical response bytes per statement,
     computed on the same database before the daemon starts.  Queries
     re-encode as one header + one batch frame on both sides; extracts
     compare Hetstream wire bytes. *)
  let encode_rows schema rows =
    Net.Wire.encode_response (Net.Wire.Row_header schema)
    ^ Net.Wire.encode_response (Net.Wire.Row_batch rows)
  in
  let reference =
    List.map
      (fun stmt ->
        if stmt = "@extract parts_co" then
          (stmt, H.serialize (Xnf.Xnf_compile.run_view db "parts_co"))
        else
          match Db.exec db stmt with
          | Db.Rows (schema, rows) -> (stmt, encode_rows schema rows)
          | _ -> failwith "reference statement returned no rows")
      statements
  in
  let ref_bytes stmt = List.assoc stmt reference in
  (* start the daemon in-process on a private unix socket *)
  let sock =
    Printf.sprintf "%s/xnfdb_bench_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let server =
    Net.Server.create
      ~config:(Net.Server.default_config ~addr:(Unix.ADDR_UNIX sock) ())
      db
  in
  let server_domain = Domain.spawn (fun () -> Net.Server.serve server) in
  let n_drivers = 8 in
  let per_driver = max 1 (n_sessions / n_drivers) in
  let n_sessions = n_drivers * per_driver in
  let stmt_arr = Array.of_list statements in
  let n_stmts = Array.length stmt_arr in
  (* each driver domain owns [per_driver] live connections and walks
     them round-robin, so all sessions are open concurrently while
     [n_drivers] requests are in flight at any instant *)
  let driver d () =
    let clients =
      Array.init per_driver (fun i ->
          Net.Client.connect
            ~client_name:(Printf.sprintf "bench-%d-%d" d i)
            (Unix.ADDR_UNIX sock))
    in
    let lats = ref [] and rows = ref 0 and mismatches = ref 0 in
    for r = 0 to rounds - 1 do
      Array.iteri
        (fun i cl ->
          let stmt = stmt_arr.((d + (i * n_drivers) + r) mod n_stmts) in
          let t0 = Unix.gettimeofday () in
          let got, nrows =
            if stmt = "@extract parts_co" then begin
              let s = Net.Client.extract cl "parts_co" in
              (H.serialize s, H.total_items s)
            end
            else begin
              let schema, rs = Net.Client.query cl stmt in
              (encode_rows schema rs, List.length rs)
            end
          in
          lats := (Unix.gettimeofday () -. t0) :: !lats;
          rows := !rows + nrows;
          if not (String.equal got (ref_bytes stmt)) then incr mismatches)
        clients
    done;
    let bytes =
      Array.fold_left
        (fun a cl -> a + Net.Client.bytes_in cl + Net.Client.bytes_out cl)
        0 clients
    in
    Array.iter Net.Client.close clients;
    (!lats, !rows, bytes, !mismatches)
  in
  let t0 = Unix.gettimeofday () in
  let handles = List.init n_drivers (fun d -> Domain.spawn (driver d)) in
  let results = List.map Domain.join handles in
  let wall = Unix.gettimeofday () -. t0 in
  let lats =
    List.concat_map (fun (l, _, _, _) -> l) results |> Array.of_list
  in
  Array.sort compare lats;
  let total_rows = List.fold_left (fun a (_, r, _, _) -> a + r) 0 results in
  let total_bytes = List.fold_left (fun a (_, _, b, _) -> a + b) 0 results in
  let mismatches = List.fold_left (fun a (_, _, _, m) -> a + m) 0 results in
  let n_requests = Array.length lats in
  let qps = float_of_int n_requests /. wall in
  let p50 = ms (percentile lats 50.0)
  and p95 = ms (percentile lats 95.0)
  and p99 = ms (percentile lats 99.0) in
  row
    "concurrent phase: %d sessions on %d drivers, %d requests in %.2f s\n"
    n_sessions n_drivers n_requests wall;
  row "%-24s | %12s | %12s | %10s\n" "throughput" "rows/s" "MB/s" "q/s";
  row "%s\n" (String.make 68 '-');
  row "%-24s | %12.0f | %12.2f | %10.1f\n" "all sessions"
    (float_of_int total_rows /. wall)
    (float_of_int total_bytes /. 1e6 /. wall)
    qps;
  row "tail latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n" p50 p95 p99;
  row "byte-identity vs in-process execution: %s (%d / %d requests)\n"
    (if mismatches = 0 then "verified" else "FAILED")
    (n_requests - mismatches) n_requests;
  (* bulk ship vs tuple-at-a-time, over the same wire: the paper's
     "only one call instead of a call for each tuple of the CO" *)
  let cl = Net.Client.connect ~client_name:"bench-ship" (Unix.ADDR_UNIX sock) in
  let stream_ref = ref_bytes "@extract parts_co" in
  let items = H.total_items (Xnf.Xnf_compile.run_view db "parts_co") in
  let t_bulk =
    time_median ~repeat:3 (fun () -> Net.Client.extract cl "parts_co")
  in
  let t_tuple =
    time_median ~repeat:3 (fun () -> Net.Client.extract ~chunk:1 cl "parts_co")
  in
  let ship_ok =
    String.equal (H.serialize (Net.Client.extract cl "parts_co")) stream_ref
    && String.equal
         (H.serialize (Net.Client.extract ~chunk:1 cl "parts_co"))
         stream_ref
  in
  let speedup = t_tuple /. t_bulk in
  row "\n%-28s | %9s | %12s | %12s\n" "strategy" "frames" "wire (ms)"
    "items/s";
  row "%s\n" (String.make 70 '-');
  row "%-28s | %9s | %12.2f | %12.0f\n" "bulk (chunked stream)" "~few"
    (ms t_bulk)
    (float_of_int items /. t_bulk);
  row "%-28s | %9d | %12.2f | %12.0f\n" "one tuple per frame" items
    (ms t_tuple)
    (float_of_int items /. t_tuple);
  row
    "\ngate: bulk shipping %.2fx over tuple-at-a-time on the real wire \
     (acceptance: >= 2x; E3's modeled 50us crossing is now measured)\n"
    speedup;
  let stats_text = Net.Client.stats cl in
  Net.Client.close cl;
  Net.Server.stop server;
  Domain.join server_domain;
  (try Sys.remove sock with Sys_error _ -> ());
  let oc = open_out "BENCH_server.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"server\",\n\
    \  %s,\n\
    \  \"n_parts\": %d,\n\
    \  \"n_sessions\": %d,\n\
    \  \"results\": [\n\
    \    { \"name\": \"concurrent_oo1\", \"requests\": %d, \"wall_s\": %.4f, \
     \"qps\": %.1f, \"rows_per_sec\": %.0f, \"bytes_per_sec\": %.0f, \
     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"identical\": \
     %b },\n\
    \    { \"name\": \"bulk_vs_tuple\", \"items\": %d, \"bulk_ms\": %.3f, \
     \"tuple_ms\": %.3f, \"speedup\": %.2f, \"identical\": %b }\n\
    \  ],\n\
    \  \"server_stats\": \"%s\"\n\
     }\n"
    (metadata_json ()) n_parts n_sessions n_requests wall qps
    (float_of_int total_rows /. wall)
    (float_of_int total_bytes /. wall)
    p50 p95 p99 (mismatches = 0) items (ms t_bulk) (ms t_tuple) speedup
    ship_ok
    (json_escape stats_text);
  close_out oc;
  row "wrote BENCH_server.json\n";
  if mismatches > 0 || not ship_ok then begin
    row "FAIL: a daemon response differed from in-process execution\n";
    exit 1
  end;
  if speedup < 2.0 then begin
    row "FAIL: bulk shipping did not reach the 2x over-the-wire gate\n";
    exit 1
  end

(* ----------------------------------------------------- mixed r/w ------- *)

(** E13: the write path racing the read path — MVCC-lite snapshot reads
    under concurrent DML ([XNFDB_SNAPSHOT]), group commit
    ([XNFDB_GROUP_COMMIT]), and batched UPDATE/DELETE against
    one-DML-per-op.  Results land in [BENCH_mixedrw.json].  In-run
    gates: every stream observed while a writer races is byte-identical
    to some committed reference state; reader p95 with writers running
    is at most 2x the read-only p95; batched DML is at least 1.5x the
    per-op loop; and the knob-off paths reproduce identical bytes. *)
let bench_mixedrw ?n_parts ?(readers = 4) ?(rounds = 25) () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 2_000 in
  header
    "E13. Mixed read/write: snapshot reads, group commit, and batched DML \
     racing extractions";
  (* Level the read path for the latency comparison: the result cache
     and IVM are keyed to live table versions, which the snapshot path
     bypasses by design — with them on, the read-only baseline would
     measure cache hits against the writers' phase cache misses. *)
  let saved_env =
    List.map
      (fun k -> (k, Sys.getenv_opt k))
      [ "XNFDB_RESULT_CACHE_MB"; "XNFDB_IVM" ]
  in
  let restore_env () =
    List.iter
      (fun (k, v) ->
        match v with
        | Some v -> Unix.putenv k v
        | None ->
          (* no unsetenv: re-set the built-in default *)
          Unix.putenv k (if k = "XNFDB_IVM" then "1" else "64"))
      saved_env
  in
  Unix.putenv "XNFDB_RESULT_CACHE_MB" "0";
  Unix.putenv "XNFDB_IVM" "0";
  Fun.protect ~finally:restore_env @@ fun () ->
  let params = { Workloads.Oo1.default with Workloads.Oo1.n_parts } in
  let mkdb ps =
    let db = Workloads.Oo1.generate ps in
    ignore
      (Db.exec db ("CREATE VIEW parts_co AS " ^ Workloads.Oo1.parts_graph_query));
    db
  in
  let db = mkdb params in
  (* the seeded generator is deterministic, so a second generate is a
     byte-identical reference database the writer can run ahead on *)
  let refdb = mkdb params in
  let serialize d = H.serialize (Xnf.Xnf_compile.run_view d "parts_co") in
  let initial = serialize refdb in
  if not (String.equal initial (serialize db)) then
    failwith "OO1 generator is expected to be seed-deterministic";
  let sock =
    Printf.sprintf "%s/xnfdb_mixedrw_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let server =
    Net.Server.create
      ~config:(Net.Server.default_config ~addr:(Unix.ADDR_UNIX sock) ())
      db
  in
  let server_domain = Domain.spawn (fun () -> Net.Server.serve server) in
  (* every extract uses a fresh chunk size so the encoded-frame memo
     (keyed by text x chunk) never short-circuits the measurement *)
  let chunk_ctr = Atomic.make 0 in
  let extract_once cl =
    let chunk = 64 + (Atomic.fetch_and_add chunk_ctr 1 mod 4096) in
    let t0 = Unix.gettimeofday () in
    let s = Net.Client.extract ~chunk cl "parts_co" in
    (Unix.gettimeofday () -. t0, H.serialize s)
  in
  (* [readers] domains, [rounds] extractions each; [check] returns false
     on a stream that matches no committed state *)
  let run_readers ~check =
    let worker _d () =
      let cl = Net.Client.connect (Unix.ADDR_UNIX sock) in
      let lats = ref [] and bad = ref 0 in
      Fun.protect
        ~finally:(fun () -> Net.Client.close cl)
        (fun () ->
          for _ = 1 to rounds do
            let dt, bytes = extract_once cl in
            lats := dt :: !lats;
            match check with
            | Some chk -> if not (chk bytes) then incr bad
            | None -> ()
          done;
          (!lats, !bad))
    in
    let hs = List.init readers (fun d -> Domain.spawn (worker d)) in
    let rs = List.map Domain.join hs in
    let lats = List.concat_map fst rs |> Array.of_list in
    Array.sort compare lats;
    (lats, List.fold_left (fun a (_, b) -> a + b) 0 rs)
  in
  (* -- phase A: read-only baseline ------------------------------------- *)
  let t0 = Unix.gettimeofday () in
  let lats_ro, bad_ro = run_readers ~check:(Some (String.equal initial)) in
  let wall_ro = Unix.gettimeofday () -. t0 in
  let p95_ro = percentile lats_ro 95.0 in
  row "read-only: %d extractions, p50 %.2f ms, p95 %.2f ms (%.1f/s)\n"
    (Array.length lats_ro)
    (ms (percentile lats_ro 50.0))
    (ms p95_ro)
    (float_of_int (Array.length lats_ro) /. wall_ro);
  (* -- phase B: single writer, byte-identity under race ---------------- *)
  (* The writer applies each transaction to [refdb] and records the
     serialized stream BEFORE shipping it to the daemon, so the daemon
     can only lag the reference list: any stream a reader observes that
     is in no reference state is a torn or dirty read.  Rolled-back
     transactions never produce a reference entry. *)
  let refs_mu = Mutex.create () in
  let refs = ref [ initial ] in
  let wrounds = 12 in
  let single_writer () =
    let cl = Net.Client.connect (Unix.ADDR_UNIX sock) in
    Fun.protect
      ~finally:(fun () -> Net.Client.close cl)
      (fun () ->
        for r = 1 to wrounds do
          if r mod 4 = 0 then begin
            ignore (Net.Client.exec cl "BEGIN");
            ignore
              (Net.Client.exec cl
                 "UPDATE parts SET build = build + 999 WHERE pid <= 32");
            ignore (Net.Client.exec cl "ROLLBACK")
          end
          else begin
            let lo = (r mod 4) * 16 in
            let sql =
              Printf.sprintf
                "UPDATE parts SET build = build + 1 WHERE pid > %d AND pid \
                 <= %d"
                lo (lo + 16)
            in
            ignore (Db.exec refdb sql);
            let snap = serialize refdb in
            Mutex.protect refs_mu (fun () -> refs := snap :: !refs);
            ignore (Net.Client.exec cl "BEGIN");
            ignore (Net.Client.exec cl sql);
            ignore (Net.Client.exec cl "COMMIT")
          end
        done)
  in
  let wd = Domain.spawn single_writer in
  let _, bad_b =
    run_readers
      ~check:
        (Some
           (fun bytes -> Mutex.protect refs_mu (fun () -> List.mem bytes !refs)))
  in
  Domain.join wd;
  row "single-writer race: %d streams checked, %d not a committed state\n"
    (readers * rounds) bad_b;
  (* -- phase C: paced multi-writer, reader tail latency ----------------- *)
  let n_writers = 4 in
  let stop = Atomic.make false in
  let paced_writer w () =
    let cl = Net.Client.connect (Unix.ADDR_UNIX sock) in
    let txns = ref 0 in
    Fun.protect
      ~finally:(fun () -> Net.Client.close cl)
      (fun () ->
        while not (Atomic.get stop) do
          let lo = (w * 53 + (!txns * 29)) mod (max 1 (n_parts - 25)) in
          let sql =
            Printf.sprintf
              "UPDATE parts SET x = x + 1 WHERE pid > %d AND pid <= %d" lo
              (lo + 25)
          in
          let t1 = Unix.gettimeofday () in
          ignore (Net.Client.exec cl "BEGIN");
          ignore (Net.Client.exec cl sql);
          ignore (Net.Client.exec cl "COMMIT");
          incr txns;
          (* ~30% write duty cycle: contention without saturation *)
          Unix.sleepf (min 0.05 ((Unix.gettimeofday () -. t1) *. 2.3))
        done;
        !txns)
  in
  let whs = List.init n_writers (fun w -> Domain.spawn (paced_writer w)) in
  let lats_rw, _ = run_readers ~check:None in
  Atomic.set stop true;
  let txns = List.fold_left (fun a h -> a + Domain.join h) 0 whs in
  let p95_rw = percentile lats_rw 95.0 in
  let ratio = p95_rw /. p95_ro in
  row
    "with %d paced writers (%d txns): reader p50 %.2f ms, p95 %.2f ms — \
     %.2fx the read-only p95 (acceptance: <= 2x)\n"
    n_writers txns
    (ms (percentile lats_rw 50.0))
    (ms p95_rw) ratio;
  (* quiesced convergence + server-side counters *)
  let cl = Net.Client.connect (Unix.ADDR_UNIX sock) in
  let final_ok =
    String.equal (H.serialize (Net.Client.extract cl "parts_co")) (serialize db)
  in
  let stats_text = Net.Client.stats cl in
  Net.Client.close cl;
  let c = Net.Server.counters server in
  row
    "snapshot reads %d (fallbacks %d), group commit %d batches / %d \
     commits, max batch %d\n"
    c.Net.Server.snap_reads c.Net.Server.snap_fallbacks
    c.Net.Server.gc_batches c.Net.Server.gc_commits c.Net.Server.gc_max_batch;
  Net.Server.stop server;
  Domain.join server_domain;
  (try Sys.remove sock with Sys_error _ -> ());
  (* -- phase D: batched DML vs one statement per row -------------------- *)
  let dml_db = Db.create () in
  ignore
    (Db.exec dml_db
       "CREATE TABLE w (pid INT NOT NULL, val INT, PRIMARY KEY (pid))");
  let n_rows = 2_000 in
  let insert_all () =
    let b = ref 1 in
    while !b <= n_rows do
      let hi = min n_rows (!b + 199) in
      let vals =
        List.init
          (hi - !b + 1)
          (fun i -> Printf.sprintf "(%d, %d)" (!b + i) (!b + i))
      in
      ignore (Db.exec dml_db ("INSERT INTO w VALUES " ^ String.concat ", " vals));
      b := hi + 1
    done
  in
  insert_all ();
  let t_upd_batched =
    time_median ~repeat:3 (fun () ->
        ignore (Db.exec dml_db "UPDATE w SET val = val + 1"))
  in
  let t_upd_per_op =
    time_median ~repeat:3 (fun () ->
        for pid = 1 to n_rows do
          ignore
            (Db.exec dml_db
               (Printf.sprintf "UPDATE w SET val = val + 1 WHERE pid = %d" pid))
        done)
  in
  let upd_speedup = t_upd_per_op /. t_upd_batched in
  let t_del_batched =
    let t1 = Unix.gettimeofday () in
    ignore (Db.exec dml_db "DELETE FROM w WHERE pid > 0");
    Unix.gettimeofday () -. t1
  in
  insert_all ();
  let t_del_per_op =
    let t1 = Unix.gettimeofday () in
    for pid = 1 to n_rows do
      ignore (Db.exec dml_db (Printf.sprintf "DELETE FROM w WHERE pid = %d" pid))
    done;
    Unix.gettimeofday () -. t1
  in
  let del_speedup = t_del_per_op /. t_del_batched in
  row "\n%-28s | %12s | %12s | %9s\n" "statement shape" "batched (ms)"
    "per-op (ms)" "speedup";
  row "%s\n" (String.make 70 '-');
  row "%-28s | %12.2f | %12.2f | %8.1fx\n"
    (Printf.sprintf "UPDATE %d rows" n_rows)
    (ms t_upd_batched) (ms t_upd_per_op) upd_speedup;
  row "%-28s | %12.2f | %12.2f | %8.1fx\n"
    (Printf.sprintf "DELETE %d rows" n_rows)
    (ms t_del_batched) (ms t_del_per_op) del_speedup;
  (* -- phase E: knob-off paths are byte-identical ----------------------- *)
  let small = { params with Workloads.Oo1.n_parts = min n_parts 500 } in
  let run_script () =
    let sdb = mkdb small in
    let ssock =
      Printf.sprintf "%s/xnfdb_mixedrw_e_%d_%d.sock"
        (Filename.get_temp_dir_name ())
        (Unix.getpid ())
        (Atomic.fetch_and_add chunk_ctr 1)
    in
    let sv =
      Net.Server.create
        ~config:(Net.Server.default_config ~addr:(Unix.ADDR_UNIX ssock) ())
        sdb
    in
    let sd = Domain.spawn (fun () -> Net.Server.serve sv) in
    Fun.protect
      ~finally:(fun () ->
        Net.Server.stop sv;
        Domain.join sd;
        try Sys.remove ssock with Sys_error _ -> ())
      (fun () ->
        let cl = Net.Client.connect (Unix.ADDR_UNIX ssock) in
        Fun.protect
          ~finally:(fun () -> Net.Client.close cl)
          (fun () ->
            List.iter
              (fun sql -> ignore (Net.Client.exec cl sql))
              [
                "UPDATE parts SET build = build + 1 WHERE pid <= 40";
                "BEGIN";
                "UPDATE parts SET x = x + 5 WHERE pid <= 20";
                "COMMIT";
                "BEGIN";
                "UPDATE parts SET build = 0 WHERE pid <= 99999";
                "ROLLBACK";
              ];
            H.serialize (Net.Client.extract cl "parts_co")))
  in
  let bytes_on = run_script () in
  Unix.putenv "XNFDB_SNAPSHOT" "0";
  Unix.putenv "XNFDB_GROUP_COMMIT" "0";
  let bytes_off =
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "XNFDB_SNAPSHOT" "1";
        Unix.putenv "XNFDB_GROUP_COMMIT" "1")
      run_script
  in
  let knobs_ok = String.equal bytes_on bytes_off in
  row
    "\nbyte-identity: read-only %s, single-writer race %s, quiesced final \
     %s, knob-off %s\n"
    (if bad_ro = 0 then "verified" else "FAILED")
    (if bad_b = 0 then "verified" else "FAILED")
    (if final_ok then "verified" else "FAILED")
    (if knobs_ok then "verified" else "FAILED");
  let oc = open_out "BENCH_mixedrw.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"mixedrw\",\n\
    \  %s,\n\
    \  \"n_parts\": %d,\n\
    \  \"readers\": %d,\n\
    \  \"writers\": %d,\n\
    \  \"results\": [\n\
    \    { \"name\": \"read_only\", \"extracts\": %d, \"p50_ms\": %.3f, \
     \"p95_ms\": %.3f, \"identical\": %b },\n\
    \    { \"name\": \"single_writer_race\", \"streams\": %d, \
     \"non_committed_states\": %d, \"identical\": %b },\n\
    \    { \"name\": \"multi_writer\", \"txns\": %d, \"p50_ms\": %.3f, \
     \"p95_ms\": %.3f, \"p95_ratio\": %.3f, \"final_identical\": %b, \
     \"snap_reads\": %d, \"snap_fallbacks\": %d, \"gc_batches\": %d, \
     \"gc_commits\": %d, \"gc_max_batch\": %d },\n\
    \    { \"name\": \"batched_dml\", \"rows\": %d, \"update_batched_ms\": \
     %.3f, \"update_per_op_ms\": %.3f, \"update_speedup\": %.2f, \
     \"delete_batched_ms\": %.3f, \"delete_per_op_ms\": %.3f, \
     \"delete_speedup\": %.2f },\n\
    \    { \"name\": \"knobs_off\", \"identical\": %b }\n\
    \  ],\n\
    \  \"server_stats\": \"%s\"\n\
     }\n"
    (metadata_json ()) n_parts readers n_writers (Array.length lats_ro)
    (ms (percentile lats_ro 50.0))
    (ms p95_ro) (bad_ro = 0) (readers * rounds) bad_b (bad_b = 0) txns
    (ms (percentile lats_rw 50.0))
    (ms p95_rw) ratio final_ok c.Net.Server.snap_reads
    c.Net.Server.snap_fallbacks c.Net.Server.gc_batches
    c.Net.Server.gc_commits c.Net.Server.gc_max_batch n_rows
    (ms t_upd_batched) (ms t_upd_per_op) upd_speedup (ms t_del_batched)
    (ms t_del_per_op) del_speedup knobs_ok (json_escape stats_text);
  close_out oc;
  row "wrote BENCH_mixedrw.json\n";
  if bad_ro > 0 || bad_b > 0 || not final_ok then begin
    row "FAIL: a reader observed a stream matching no committed state\n";
    exit 1
  end;
  if not knobs_ok then begin
    row "FAIL: knob-off paths are not byte-identical\n";
    exit 1
  end;
  if upd_speedup < 1.5 || del_speedup < 1.5 then begin
    row "FAIL: batched DML did not reach the 1.5x per-op gate\n";
    exit 1
  end;
  if ratio > 2.0 then begin
    row
      "FAIL: reader p95 under concurrent writers exceeded 2x the read-only \
       p95\n";
    exit 1
  end

(* --------------------------------------------------------------- E14 --- *)

(** E14: self-tuning execution.  Three claims measured on one run:

    1. the EXPLAIN ANALYZE attribution layer is effectively free when
       off (same binary, hooks compiled in, accumulator absent) and
       boundedly cheap when on — gated at <= 3% off-path drift against
       a committed [BENCH_analyze.json] baseline and <= 50% on-path;
    2. plans compiled under a host-calibrated cost profile are no worse
       than plans compiled under the hand-set defaults on OO1 / bom /
       org / shop (identical rows always; identical plans or within
       25% wall time);
    3. the per-operator profile of the gate query is embedded in the
       artifact, so a CI regression is diagnosable from the JSON alone.

    Results land in [BENCH_analyze.json]. *)
let bench_analyze ?n_parts () =
  let n_parts = match n_parts with Some n -> n | None -> scaled 20_000 in
  header
    "E14. Self-tuning execution — EXPLAIN ANALYZE overhead + calibrated \
     cost model";
  let module C = Optimizer.Cost.Calibrate in
  let prev_calibration = Sys.getenv_opt "XNFDB_CALIBRATION" in
  let prev_profile = Sys.getenv_opt "XNFDB_COST_PROFILE" in
  let restore () =
    Unix.putenv "XNFDB_CALIBRATION"
      (Option.value prev_calibration ~default:"1");
    Unix.putenv "XNFDB_COST_PROFILE" (Option.value prev_profile ~default:"")
  in
  Fun.protect ~finally:restore @@ fun () ->
  (* one micro-probe suite for the whole section *)
  let profile_file =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xnfdb_bench_profile_%d.txt" (Unix.getpid ()))
  in
  let prof = C.measure () in
  C.save profile_file prof;
  row "calibrated on this host (tuple_ns %.1f, %d cores):\n" prof.C.tuple_ns
    prof.C.host_cores;
  row
    "  batch_overhead %.1f (default %.1f), cold_chunk_penalty %.2f (%.2f), \
     parallel_threshold %d (%d), jf_drop %.2f (%.2f)\n"
    prof.C.batch_overhead C.defaults.C.batch_overhead
    prof.C.cold_chunk_penalty C.defaults.C.cold_chunk_penalty
    prof.C.parallel_threshold_rows C.defaults.C.parallel_threshold_rows
    prof.C.jf_drop_threshold C.defaults.C.jf_drop_threshold;
  let use_defaults () =
    Unix.putenv "XNFDB_CALIBRATION" "0";
    Unix.putenv "XNFDB_COST_PROFILE" ""
  in
  let use_calibrated () =
    Unix.putenv "XNFDB_CALIBRATION" "1";
    Unix.putenv "XNFDB_COST_PROFILE" profile_file
  in
  (* -- calibrated vs default plan quality on the four workloads -- *)
  let oo1_db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts } in
  let bom_db = Workloads.Bom.generate Workloads.Bom.default in
  let org_db = Workloads.Org.generate Workloads.Org.default in
  let shop_db = Workloads.Shop.generate Workloads.Shop.default in
  let traversal_sql =
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000"
  in
  let cases =
    [
      ("oo1", oo1_db, traversal_sql);
      ("bom", bom_db,
       "SELECT parent, COUNT(*), SUM(qty) FROM contains GROUP BY parent");
      ("org", org_db,
       "SELECT e.eno, d.dname FROM emp e, dept d WHERE e.edno = d.dno AND \
        d.loc = 'ARC' ORDER BY e.eno");
      ("shop", shop_db,
       "SELECT c.cid, o.oid FROM customer c, orders o WHERE o.ocid = c.cid \
        AND c.region = 'EMEA'");
    ]
  in
  row "\n%-8s | %8s | %12s | %12s | %12s | %s\n" "workload" "rows"
    "default (ms)" "calib. (ms)" "ratio" "plan";
  row "%s\n" (String.make 72 '-');
  let entries = ref [] in
  let quality_ok = ref true in
  List.iter
    (fun (name, db, sql) ->
      let fresh_ctx () =
        Executor.Exec.make_ctx ~result_cache:false ()
      in
      use_defaults ();
      Db.invalidate_plans db;
      let c_def = Db.compile_query db sql in
      let rows_def = Executor.Exec.run ~ctx:(fresh_ctx ()) c_def in
      let t_def =
        time_median ~repeat:5 (fun () ->
            Executor.Exec.run_batches ~ctx:(fresh_ctx ()) c_def)
      in
      use_calibrated ();
      Db.invalidate_plans db;
      let c_cal = Db.compile_query db sql in
      let rows_cal = Executor.Exec.run ~ctx:(fresh_ctx ()) c_cal in
      (* correctness first: calibration may only reshape plans *)
      assert (rows_def = rows_cal);
      let t_cal =
        time_median ~repeat:5 (fun () ->
            Executor.Exec.run_batches ~ctx:(fresh_ctx ()) c_cal)
      in
      let plan_changed =
        Optimizer.Plan.explain c_def.Optimizer.Plan.plan
        <> Optimizer.Plan.explain c_cal.Optimizer.Plan.plan
      in
      let ratio = t_cal /. t_def in
      (* an identical plan cannot be worse — wall-time jitter on it is
         noise; a changed plan must hold the line *)
      let ok = (not plan_changed) || ratio <= 1.25 in
      if not ok then quality_ok := false;
      row "%-8s | %8d | %12.2f | %12.2f | %11.2fx | %s%s\n" name
        (List.length rows_def) (ms t_def) (ms t_cal) ratio
        (if plan_changed then "changed" else "same")
        (if ok then "" else "  <- REGRESSION");
      entries :=
        Printf.sprintf
          "    { \"name\": %S, \"rows\": %d, \"default_ms\": %.3f, \
           \"calibrated_ms\": %.3f, \"ratio\": %.3f, \"plan_changed\": %b }"
          name (List.length rows_def) (ms t_def) (ms t_cal) ratio plan_changed
        :: !entries)
    cases;
  restore ();
  (* -- attribution overhead: off must be free, on must be bounded -- *)
  subheader "EXPLAIN ANALYZE attribution overhead (OO1 traversal)";
  Db.invalidate_plans oo1_db;
  let c = Db.compile_query oo1_db traversal_sql in
  let plain_ctx () = Executor.Exec.make_ctx ~result_cache:false () in
  let analyzed_ctx () =
    let ctx = plain_ctx () in
    ctx.Executor.Exec.analyze <- Some (Executor.Opstats.create1 c.Optimizer.Plan.plan);
    ctx
  in
  let t_off =
    time_median ~repeat:7 (fun () ->
        Executor.Exec.run_batches ~ctx:(plain_ctx ()) c)
  in
  let t_on =
    time_median ~repeat:7 (fun () ->
        Executor.Exec.run_batches ~ctx:(analyzed_ctx ()) c)
  in
  let t_on4 =
    time_median ~repeat:7 (fun () ->
        Executor.Exec_par.run_batches ~ctx:(analyzed_ctx ()) ~domains:4 c)
  in
  let n_rows =
    Relcore.Batch.list_length (Executor.Exec.run_batches ~ctx:(plain_ctx ()) c)
  in
  let rps_off = float_of_int n_rows /. t_off in
  let on_overhead_pct = (t_on /. t_off -. 1.0) *. 100.0 in
  row "analyze off:        %10.2f ms  (%.0f rows/s)\n" (ms t_off) rps_off;
  row "analyze on (1 dom): %10.2f ms  (%+.1f%% vs off)\n" (ms t_on)
    on_overhead_pct;
  row "analyze on (4 dom): %10.2f ms\n" (ms t_on4);
  (* per-operator profile of the gate query, embedded in the artifact *)
  let report_ctx = analyzed_ctx () in
  let t0 = Executor.Opstats.now () in
  ignore (Executor.Exec.run_batches ~ctx:report_ctx c : Relcore.Batch.t list);
  let op_profile =
    match report_ctx.Executor.Exec.analyze with
    | Some acc ->
      acc.Executor.Opstats.total_wall <- Executor.Opstats.now () -. t0;
      Executor.Opstats.render acc
    | None -> ""
  in
  row "\nper-operator profile:\n%s" op_profile;
  let oc = open_out "BENCH_analyze.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"analyze\",\n  %s,\n  \"n_parts\": %d,\n  \"overhead\": \
     { \"name\": \"oo1_traversal_off\", \"rows\": %d, \"off_ms\": %.3f, \
     \"on_ms\": %.3f, \"on4_ms\": %.3f, \"rows_per_sec\": %.0f, \
     \"on_overhead_pct\": %.2f },\n  \"calibrated_profile\": %S,\n  \
     \"op_profile\": %S,\n  \"entries\": [\n%s\n  ]\n}\n"
    (metadata_json ()) n_parts n_rows (ms t_off) (ms t_on) (ms t_on4) rps_off
    on_overhead_pct (C.render prof) op_profile
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  row "wrote BENCH_analyze.json\n";
  (try Sys.remove profile_file with Sys_error _ -> ());
  (* gates *)
  if not !quality_ok then begin
    row
      "FAIL: a calibrated plan regressed more than 25%% against the default \
       constants\n";
    exit 1
  end;
  if on_overhead_pct > 50.0 then begin
    row "FAIL: analyze-on overhead exceeded 50%% (%.1f%%)\n" on_overhead_pct;
    exit 1
  end;
  (* off-path drift gate: the attribution hooks must stay free when the
     accumulator is absent.  Compared against the committed
     BENCH_analyze.json (stashed by CI like the E5 baseline); first run
     has no baseline and the gate is skipped. *)
  (match Sys.getenv_opt "XNFDB_BASELINE_ANALYZE" with
  | None -> ()
  | Some file -> (
    match
      baseline_field ~file ~name:"oo1_traversal_off" ~field:"rows_per_sec"
    with
    | None -> row "baseline %s: no off entry (gate skipped)\n" file
    | Some base ->
      let ratio = rps_off /. base in
      row "off-path baseline gate: %.0f rows/s vs committed %.0f (%.3fx)\n"
        rps_off base ratio;
      if ratio < 0.97 then begin
        row
          "FAIL: analyze-off throughput drifted more than 3%% below the \
           committed baseline\n";
        exit 1
      end))

(* ------------------------------------------------------------ summary --- *)

(** Merge every BENCH_*.json artifact in the working directory into one
    consolidated BENCH_summary.json (raw reports inlined under their
    file stem, plus this run's metadata). *)
let write_summary () =
  let reports =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json"
           && f <> "BENCH_summary.json")
    |> List.sort compare
  in
  let oc = open_out "BENCH_summary.json" in
  Printf.fprintf oc "{\n  \"bench\": \"summary\",\n  %s,\n  \"reports\": {\n"
    (metadata_json ());
  let first = ref true in
  List.iter
    (fun file ->
      match
        (try Some (In_channel.with_open_text file In_channel.input_all)
         with _ -> None)
      with
      | None -> ()
      | Some content ->
        if not !first then output_string oc ",\n";
        first := false;
        Printf.fprintf oc "    %S: %s"
          (Filename.chop_suffix file ".json")
          (String.trim content))
    reports;
  output_string oc "\n  }\n}\n";
  close_out oc;
  row "\nwrote BENCH_summary.json (%d reports merged)\n" (List.length reports)

(* -------------------------------------------------------------- main --- *)

let () =
  (* reproducibility: committed BENCH numbers must not silently shift
     with the shell — pin the batch size to the default unless the
     caller overrode it *)
  if Sys.getenv_opt "XNFDB_BATCH_SIZE" = None then
    Unix.putenv "XNFDB_BATCH_SIZE" "256";
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  print_endline
    "XNF reproduction benches (Pirahesh et al., Information Systems 19(1), \
     1994)";
  if smoke then begin
    (* CI smoke mode: the executor-batching and parallel sections only,
       smaller DB *)
    let n_parts =
      match Sys.getenv_opt "XNFDB_BENCH_PARTS" with
      | Some s -> int_of_string s
      | None -> scaled 5_000
    in
    if want "exec" then bench_exec_batching ~n_parts ();
    if want "parallel" then
      bench_parallel_queues ~n_parts ~domain_counts:[ 1; 2; 4 ] ();
    if want "cache" then bench_cache ();
    if want "colstore" then bench_colstore ~n_parts ();
    if want "joinfilter" then bench_joinfilter ~n_probe:(scaled 50_000) ();
    if want "ivm" then bench_ivm ();
    if want "spill" then bench_spill ~n_parts:(10 * n_parts) ~budget_mb:1 ();
    if want "server" then bench_server ~n_parts:(min n_parts 2_000) ~rounds:1 ();
    if want "mixedrw" then
      bench_mixedrw ~n_parts:(min n_parts 1_000) ~rounds:10 ();
    if want "analyze" then bench_analyze ~n_parts:(min n_parts 5_000) ();
    write_summary ();
    print_endline "\nsmoke bench complete."
  end
  else begin
    if only = None then begin
      bench_table1 ();
      bench_fig3 ();
      bench_fig56 ();
      bench_extraction ();
      bench_oo1 ();
      bench_shipping ();
      bench_parallel ()
    end;
    if want "exec" then bench_exec_batching ();
    if want "parallel" then bench_parallel_queues ();
    if want "cache" then bench_cache ();
    if want "colstore" then bench_colstore ();
    if want "joinfilter" then bench_joinfilter ();
    if want "ivm" then bench_ivm ();
    if want "spill" then bench_spill ();
    if want "server" then bench_server ();
    if want "mixedrw" then bench_mixedrw ();
    if want "analyze" then bench_analyze ();
    write_summary ();
    if only = None then run_bechamel ();
    print_endline "\nall benches complete."
  end
