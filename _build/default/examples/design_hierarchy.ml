(* Design-application example: a CAD-style bill of materials as a
   recursive composite object, plus the OO1-style traversal the paper
   benchmarks its cache with.

   Run with: dune exec examples/design_hierarchy.exe *)

module Db = Engine.Database
module Ws = Cocache.Workspace

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "1. generate an assembly hierarchy (recursive CO substrate)";
  let params =
    { Workloads.Bom.default with n_assemblies = 3; levels = 4; children_per_part = 3 }
  in
  let db = Workloads.Bom.generate params in
  let n_parts =
    match Db.query_rows db "SELECT COUNT(*) FROM part" with
    | [ [| Relcore.Value.Int n |] ] -> n
    | _ -> assert false
  in
  Printf.printf "parts: %d, containment edges: %d\n" n_parts
    (match Db.query_rows db "SELECT COUNT(*) FROM contains" with
    | [ [| Relcore.Value.Int n |] ] -> n
    | _ -> 0);

  section "2. recursive XNF view (cycle in the schema graph => fixpoint)";
  print_endline Workloads.Bom.assembly_query;
  let stream = Xnf.Xnf_compile.run db Workloads.Bom.assembly_query in
  List.iter
    (fun (comp, n) -> Printf.printf "  %-10s %d\n" comp n)
    (Xnf.Hetstream.counts stream);

  section "3. walk one assembly from the cache";
  let ws = Ws.of_stream stream in
  let root = List.hd (Ws.nodes ws "asmroot") in
  let rec show node indent =
    Printf.printf "%s%s (level %s)\n" indent
      (Relcore.Value.to_string (Ws.get ws node "pname"))
      (Relcore.Value.to_string (Ws.get ws node "level"));
    if String.length indent < 6 then
      List.iter
        (fun child -> show child (indent ^ "  "))
        (Cocache.Conode.children node
           ~rel:(if node.Cocache.Conode.comp = "asmroot" then "topconn" else "subconn"))
  in
  show root "";

  section "4. OO1-style pre-loaded cache traversal (paper Sect. 5.2)";
  let oo1 = { Workloads.Oo1.default with n_parts = 5_000 } in
  let db1 = Workloads.Oo1.generate oo1 in
  let t0 = Unix.gettimeofday () in
  let ws1 = Ws.of_stream (Xnf.Xnf_compile.run db1 Workloads.Oo1.parts_graph_query) in
  let t1 = Unix.gettimeofday () in
  Printf.printf "cache loaded: %d parts, %d connections in %.3fs\n"
    (Ws.node_count ws1 "xpart")
    (Ws.connection_count ws1) (t1 -. t0);
  let index = Workloads.Oo1.build_pid_index ws1 in
  let rng = Workloads.Rng.create 99 in
  let visits = ref 0 in
  let t2 = Unix.gettimeofday () in
  for _ = 1 to 20 do
    let start = Hashtbl.find index (1 + Workloads.Rng.int rng oo1.Workloads.Oo1.n_parts) in
    visits := !visits + Workloads.Oo1.traverse start ~depth:7
  done;
  let t3 = Unix.gettimeofday () in
  Printf.printf
    "traversal: %d tuple visits in %.3fs = %.0f tuples/second (paper: \
     >100,000/s)\n"
    !visits (t3 -. t2)
    (float_of_int !visits /. (t3 -. t2));
  print_endline "\ndone."
