(* Business-application example: a customer/order/line-item/product CO
   with typed OCaml binding (the paper's "seamless C++ interface"),
   TAKE projection, connect/disconnect write-back and cache persistence
   for long transactions.

   Run with: dune exec examples/order_catalog.exe *)

module Db = Engine.Database
module Ws = Cocache.Workspace
module V = Relcore.Value

let section title = Printf.printf "\n=== %s ===\n" title

(* typed record mapping: the "generated classes" of Sect. 5.2 *)
module Customer = struct
  type t = { cid : int; cname : string; region : string }

  let component = "xcust"

  let of_row (r : V.t array) =
    { cid = V.as_int r.(0); cname = V.as_string r.(1); region = V.as_string r.(2) }

  let to_row c = [| V.Int c.cid; V.Str c.cname; V.Str c.region |]
end

module Order = struct
  type t = { oid : int; ocid : int; status : string; total : float }

  let component = "xorder"

  let of_row (r : V.t array) =
    {
      oid = V.as_int r.(0);
      ocid = V.as_int r.(1);
      status = V.as_string r.(2);
      total = V.as_float r.(3);
    }

  let to_row o = [| V.Int o.oid; V.Int o.ocid; V.Str o.status; V.Float o.total |]
end

module Customers = Cocache.Binding.Make (Customer)
module Orders = Cocache.Binding.Make (Order)

let () =
  section "1. generate the shop database";
  let params = { Workloads.Shop.default with n_customers = 30 } in
  let db = Workloads.Shop.generate params in
  let q = Workloads.Shop.region_query "EMEA" in
  Printf.printf "CO view:\n%s\n" q;

  section "2. extract the EMEA region CO and load the cache";
  let stream = Xnf.Xnf_compile.run db q in
  let ws = Ws.of_stream stream in
  List.iter
    (fun (comp, n) -> Printf.printf "  %-10s %d\n" comp n)
    (Xnf.Hetstream.counts stream);

  section "3. typed navigation (seamless host-language interface)";
  let emea = Customers.all ws in
  Printf.printf "EMEA customers: %d\n" (List.length emea);
  let first = List.hd emea in
  Printf.printf "orders of %s:\n" first.Customer.cname;
  List.iter
    (fun (o : Order.t) ->
      Printf.printf "  order %d [%s] total %.2f\n" o.Order.oid o.Order.status
        o.Order.total)
    (Customers.children ws (module Order) ~rel:"placed" first);

  section "4. object sharing: products referenced by several line items";
  let shared =
    List.filter
      (fun (p : Cocache.Conode.t) ->
        List.length (Cocache.Conode.parents p ~rel:"itemref") > 1)
      (Ws.nodes ws "xproduct")
  in
  Printf.printf "%d of %d products are shared between line items\n"
    (List.length shared)
    (Ws.node_count ws "xproduct");

  section "5. update through the cache and write back";
  let ast = Xnf.Xnf_parser.parse q in
  let some_order = List.hd (Ws.nodes ws "xorder") in
  Ws.update ws some_order [ ("status", V.Str "audited") ];
  let sqls = Cocache.Update.flush db ast ws in
  List.iter (fun s -> Printf.printf "executed: %s\n" s) sqls;

  section "6. long transaction: persist the cache, reload, keep working";
  let file = Filename.temp_file "order_cache" ".xnf" in
  Ws.update ws some_order [ ("status", V.Str "archived") ];
  Cocache.Persist.save ws file;
  Printf.printf "cache saved to %s (%d bytes) with 1 pending op\n" file
    (let ic = open_in_bin file in
     let n = in_channel_length ic in
     close_in ic;
     n);
  let ws' = Cocache.Persist.load file in
  Sys.remove file;
  Printf.printf "reloaded: %d nodes, %d pending ops\n" (Ws.size ws')
    (List.length (Ws.pending_ops ws'));
  let sqls = Cocache.Update.flush db ast ws' in
  List.iter (fun s -> Printf.printf "executed after reload: %s\n" s) sqls;

  section "7. TAKE projection ships only what the tool needs";
  let thin =
    "OUT OF xcust AS (SELECT * FROM customer WHERE region = 'EMEA'),\n\
     xorder AS orders,\n\
     placed AS (RELATE xcust VIA PLACED, xorder WHERE xcust.cid = \
     xorder.ocid)\n\
     TAKE xcust(cname), placed"
  in
  let thin_stream = Xnf.Xnf_compile.run db thin in
  Printf.printf "full stream: %d bytes; projected stream: %d bytes\n"
    (String.length (Xnf.Hetstream.serialize stream))
    (String.length (Xnf.Hetstream.serialize thin_stream));
  print_endline "\ndone."
