(* Quickstart: the paper's Fig. 1 example end to end.

   - create the org database (plain SQL DDL/DML),
   - define the deps_ARC composite-object view in XNF,
   - extract it with one set-oriented query,
   - load the CO cache and navigate it with cursors and paths,
   - update through the cache and write back.

   Run with: dune exec examples/quickstart.exe *)

module Db = Engine.Database
module Ws = Cocache.Workspace
module Cur = Cocache.Cursor

let section title = Printf.printf "\n=== %s ===\n" title

let deps_arc =
  "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),\n\
  \       xemp AS EMP,\n\
  \       xproj AS PROJ,\n\
  \       xskills AS SKILLS,\n\
  \       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = \
   xemp.edno),\n\
  \       ownership AS (RELATE xdept VIA HAS, xproj WHERE xdept.dno = \
   xproj.pdno),\n\
  \       empproperty AS (RELATE xemp VIA POSSESSES, xskills USING EMPSKILLS \
   es WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),\n\
  \       projproperty AS (RELATE xproj VIA NEEDS, xskills USING PROJSKILLS \
   ps WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)\n\
   TAKE *"

let () =
  section "1. relational database (plain SQL)";
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE dept (dno INT NOT NULL, dname STRING, loc STRING, \
        PRIMARY KEY (dno));\n\
        CREATE TABLE emp (eno INT NOT NULL, ename STRING, sal INT, edno INT, \
        PRIMARY KEY (eno));\n\
        CREATE TABLE proj (pno INT NOT NULL, pname STRING, budget INT, pdno \
        INT, PRIMARY KEY (pno));\n\
        CREATE TABLE skills (sno INT NOT NULL, sname STRING, PRIMARY KEY \
        (sno));\n\
        CREATE TABLE empskills (eseno INT NOT NULL, essno INT NOT NULL);\n\
        CREATE TABLE projskills (pspno INT NOT NULL, pssno INT NOT NULL);\n\
        INSERT INTO dept VALUES (1, 'tools', 'ARC'), (2, 'db', 'ARC'), (3, \
        'remote', 'HAW');\n\
        INSERT INTO emp VALUES (10, 'anna', 100, 1), (11, 'ben', 90, 1), \
        (12, 'carol', 120, 2), (13, 'dave', 80, 3);\n\
        INSERT INTO proj VALUES (20, 'p1', 1000, 1), (21, 'p2', 2000, 2), \
        (22, 'p3', 500, 3);\n\
        INSERT INTO skills VALUES (30, 'ml'), (31, 'db'), (32, 'os'), (33, \
        'ui'), (34, 'hw');\n\
        INSERT INTO empskills VALUES (10, 30), (10, 31), (11, 31), (12, 33), \
        (13, 32);\n\
        INSERT INTO projskills VALUES (20, 31), (21, 33), (21, 34), (22, 32)");
  let schema, rows = Db.query db "SELECT dno, dname, loc FROM dept ORDER BY dno" in
  print_endline (Db.render schema rows);

  section "2. the deps_ARC composite-object view (XNF)";
  ignore (Db.exec db ("CREATE VIEW deps_arc AS " ^ deps_arc));
  print_endline "view stored; extracting with one set-oriented query...";
  let stream = Xnf.Xnf_compile.run_view db "deps_arc" in
  List.iter
    (fun (comp, n) -> Printf.printf "  %-14s %d tuples\n" comp n)
    (Xnf.Hetstream.counts stream);
  Printf.printf "  (one bulk message: %d bytes on the wire)\n"
    (String.length (Xnf.Hetstream.serialize stream));

  section "3. CO cache: navigation via cursors";
  let ws = Ws.of_stream stream in
  let depts = Cur.open_component ws "xdept" in
  Cur.iter
    (fun dept ->
      Printf.printf "department %s\n"
        (Relcore.Value.to_string (Ws.get ws dept "dname"));
      let emps = Cur.open_children dept ~rel:"employment" in
      Cur.iter
        (fun emp ->
          let skills =
            Cocache.Conode.children emp ~rel:"empproperty"
            |> List.map (fun s -> Relcore.Value.to_string (Ws.get ws s "sname"))
          in
          Printf.printf "  emp %-6s sal=%-4s skills={%s}\n"
            (Relcore.Value.to_string (Ws.get ws emp "ename"))
            (Relcore.Value.to_string (Ws.get ws emp "sal"))
            (String.concat ", " skills))
        emps;
      let projs = Cur.open_children dept ~rel:"ownership" in
      Cur.iter
        (fun p ->
          Printf.printf "  proj %-6s budget=%s\n"
            (Relcore.Value.to_string (Ws.get ws p "pname"))
            (Relcore.Value.to_string (Ws.get ws p "budget")))
        projs)
    depts;

  section "4. path expressions";
  let skills = Cocache.Path.eval ws "xdept.employment.xemp.empproperty.xskills" in
  Printf.printf "skills reachable through ARC employees: %s\n"
    (String.concat ", "
       (List.map
          (fun n -> Relcore.Value.to_string (Ws.get ws n "sname"))
          skills));

  section "5. update through the cache, write back";
  let ast = Xnf.Xnf_parser.parse deps_arc in
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  Ws.update ws anna [ ("sal", Relcore.Value.Int 130) ];
  let sqls = Cocache.Update.flush db ast ws in
  List.iter (fun s -> Printf.printf "executed: %s\n" s) sqls;
  let schema, rows = Db.query db "SELECT ename, sal FROM emp WHERE eno = 10" in
  print_endline (Db.render schema rows);
  print_endline "\ndone."
