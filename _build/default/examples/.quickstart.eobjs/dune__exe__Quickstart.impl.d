examples/quickstart.ml: Cocache Engine List Printf Relcore String Xnf
