examples/order_catalog.mli:
