examples/order_catalog.ml: Array Cocache Engine Filename List Printf Relcore String Sys Workloads Xnf
