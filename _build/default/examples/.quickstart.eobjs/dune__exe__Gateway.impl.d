examples/gateway.ml: Array Cocache Engine List Printf Relcore String Workloads Xnf
