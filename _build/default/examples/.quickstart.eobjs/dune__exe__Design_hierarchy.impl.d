examples/design_hierarchy.ml: Cocache Engine Hashtbl List Printf Relcore String Unix Workloads Xnf
