examples/gateway.mli:
