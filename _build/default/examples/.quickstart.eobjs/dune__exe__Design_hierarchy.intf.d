examples/design_hierarchy.mli:
