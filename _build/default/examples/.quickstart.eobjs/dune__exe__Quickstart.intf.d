examples/quickstart.mli:
