(* Object/SQL Gateway example (paper Sect. 6): "this gateway connects
   the object-oriented DBMS ObjectStore to the Starburst relational DBMS
   exploiting XNF technology [...] providing an integrated access to
   both types of DBMS using a uniform object-oriented interface."

   Here the two directions of the gateway are:
   - object world -> relational: typed OCaml records navigate a CO cache
     fed by one set-oriented XNF extraction;
   - relational world -> objects: plain SQL queries (and further XNF
     views) run directly over CO components (view composition).

   Run with: dune exec examples/gateway.exe *)

module Db = Engine.Database
module Ws = Cocache.Workspace
module V = Relcore.Value

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  section "1. the relational repository";
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 6 } in
  ignore
    (Db.exec db ("CREATE VIEW deps_arc AS " ^ Workloads.Org.deps_arc_query));
  Printf.printf "base tables: %s\nXNF view: deps_arc\n"
    (String.concat ", "
       (List.map Relcore.Base_table.name (Relcore.Catalog.tables (Db.catalog db))));

  section "2. object world: one extraction feeds an object cache";
  let stream = Xnf.Xnf_compile.run_view db "deps_arc" in
  let ws = Ws.of_stream stream in
  let module Dept = struct
    type t = { dno : int; dname : string; loc : string }

    let component = "xdept"

    let of_row (r : V.t array) =
      {
        dno = V.as_int r.(0);
        dname = V.as_string r.(1);
        loc = V.as_string r.(2);
      }

    let to_row d = [| V.Int d.dno; V.Str d.dname; V.Str d.loc |]
  end in
  let module Emp = struct
    type t = { eno : int; ename : string; sal : int }

    let component = "xemp"

    let of_row (r : V.t array) =
      { eno = V.as_int r.(0); ename = V.as_string r.(1); sal = V.as_int r.(2) }

    let to_row e = [| V.Int e.eno; V.Str e.ename; V.Int e.sal; V.Null |]
  end in
  let module Depts = Cocache.Binding.Make (Dept) in
  List.iter
    (fun (d : Dept.t) ->
      let staff = Depts.children ws (module Emp) ~rel:"employment" d in
      Printf.printf "  %s employs %d people, payroll %d\n" d.Dept.dname
        (List.length staff)
        (List.fold_left (fun a (e : Emp.t) -> a + e.Emp.sal) 0 staff))
    (Depts.all ws);

  section "3. relational world: SQL directly over CO components";
  let schema, rows =
    Db.query db
      "SELECT d.dname, COUNT(*) AS headcount FROM deps_arc.xdept d, \
       deps_arc.xemp e WHERE e.edno = d.dno GROUP BY d.dname ORDER BY d.dname"
  in
  print_endline (Db.render schema rows);

  section "4. composing a new CO from an existing one";
  let wanted =
    "OUT OF hotdept AS (SELECT * FROM deps_arc.xdept),\n\
     rare AS (SELECT * FROM deps_arc.xskills WHERE sno < 20),\n\
     demand AS (RELATE hotdept VIA NEEDS, rare USING deps_arc.xproj p, \
     projskills ps WHERE hotdept.dno = p.pdno AND p.pno = ps.pspno AND \
     ps.pssno = rare.sno)\n\
     TAKE *"
  in
  let s2 = Xnf.Xnf_compile.run db wanted in
  List.iter
    (fun (c, n) -> Printf.printf "  %-10s %d\n" c n)
    (Xnf.Hetstream.counts s2);

  section "5. round trip: object-side change lands in the repository";
  let ast =
    Xnf.Xnf_parser.parse
      (match
         Relcore.Catalog.find_view_opt (Db.catalog db) "deps_arc"
       with
      | Some v -> v.Relcore.Catalog.text
      | None -> assert false)
  in
  let some_emp = List.hd (Ws.nodes ws "xemp") in
  let old_sal = Ws.get ws some_emp "sal" in
  Ws.update ws some_emp [ ("sal", V.Int (V.as_int old_sal + 5)) ];
  let sqls = Cocache.Update.flush_atomic db ast ws in
  List.iter (fun s -> Printf.printf "gateway executed: %s\n" s) sqls;
  print_endline "\ndone."
