(** Unit tests for the relational kernel: values, schemas, heap storage,
    indexes, base tables, catalog. *)

open Relcore
open Helpers

(* -- values -------------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check int) "int order" (-1) (Value.compare (vi 1) (vi 2));
  Alcotest.(check int) "mixed numeric" 0 (Value.compare (vi 3) (vf 3.0));
  Alcotest.(check bool) "null below all" true (Value.compare vnull (vi 0) < 0);
  Alcotest.(check bool) "str after num" true (Value.compare (vs "a") (vi 9) > 0)

let test_value_sql_semantics () =
  Alcotest.(check (option bool)) "null = null is unknown" None
    (Value.sql_eq vnull vnull);
  Alcotest.(check (option bool)) "1 = 1" (Some true) (Value.sql_eq (vi 1) (vi 1));
  Alcotest.(check (option int)) "null cmp" None (Value.sql_compare vnull (vi 1))

let test_value_hash_consistent () =
  Alcotest.(check bool) "equal values hash equal" true
    (Value.hash (vi 3) = Value.hash (vf 3.0))

let test_value_literals () =
  Alcotest.(check string) "string escaping" "'it''s'"
    (Value.to_literal (vs "it's"));
  Alcotest.(check string) "null" "NULL" (Value.to_literal vnull)

(* -- dtype ---------------------------------------------------------------- *)

let test_dtype_coerce () =
  Alcotest.(check value_testable) "int to float" (vf 3.0)
    (Dtype.coerce Dtype.Tfloat (vi 3));
  Alcotest.(check value_testable) "null passes" vnull
    (Dtype.coerce Dtype.Tint vnull);
  Alcotest.check_raises "str to int rejected"
    (Errors.Db_error (Errors.Type_error, "value x does not fit type INT"))
    (fun () -> ignore (Dtype.coerce Dtype.Tint (vs "x")))

(* -- schema ---------------------------------------------------------------- *)

let test_schema_lookup () =
  let s =
    Schema.make [ Schema.column "A" Dtype.Tint; Schema.column "b" Dtype.Tstr ]
  in
  Alcotest.(check int) "case-insensitive" 0 (Schema.find s "a");
  Alcotest.(check int) "second" 1 (Schema.find s "B");
  Alcotest.(check (option int)) "missing" None (Schema.find_opt s "c")

let test_schema_validate () =
  let s =
    Schema.make
      [ Schema.column ~nullable:false "k" Dtype.Tint; Schema.column "v" Dtype.Tstr ]
  in
  let r = Schema.validate_row s [| vi 1; vnull |] in
  Alcotest.(check value_testable) "nullable ok" vnull r.(1);
  Alcotest.(check bool) "not-null enforced" true
    (try
       ignore (Schema.validate_row s [| vnull; vs "x" |]);
       false
     with Errors.Db_error (Errors.Constraint_error, _) -> true);
  Alcotest.(check bool) "arity enforced" true
    (try
       ignore (Schema.validate_row s [| vi 1 |]);
       false
     with Errors.Db_error (Errors.Constraint_error, _) -> true)

(* -- heap ------------------------------------------------------------------ *)

let test_heap_rid_stability () =
  let h = Heap.create () in
  let r0 = Heap.insert h [| vi 0 |] in
  let r1 = Heap.insert h [| vi 1 |] in
  let r2 = Heap.insert h [| vi 2 |] in
  Heap.delete h r1;
  Alcotest.(check int) "live count" 2 (Heap.cardinality h);
  (* deleted slot recycled, others stable *)
  let r3 = Heap.insert h [| vi 3 |] in
  Alcotest.(check int) "slot reuse" r1 r3;
  Alcotest.(check value_testable) "r0 untouched" (vi 0) (Heap.get_exn h r0).(0);
  Alcotest.(check value_testable) "r2 untouched" (vi 2) (Heap.get_exn h r2).(0)

let test_heap_scan_skips_tombstones () =
  let h = Heap.create () in
  let rids = List.init 5 (fun i -> Heap.insert h [| vi i |]) in
  Heap.delete h (List.nth rids 2);
  let scan = Heap.scan h in
  let rec drain acc =
    match scan () with None -> List.rev acc | Some (_, t) -> drain (t.(0) :: acc)
  in
  Alcotest.(check (list value_testable)) "scan order"
    [ vi 0; vi 1; vi 3; vi 4 ] (drain [])

(* -- index / base table ----------------------------------------------------- *)

let test_unique_index () =
  let t =
    Base_table.create ~primary_key:[ "k" ] ~name:"t"
      (Schema.make [ Schema.column ~nullable:false "k" Dtype.Tint ])
  in
  ignore (Base_table.insert t [| vi 1 |]);
  Alcotest.(check bool) "dup rejected" true
    (try
       ignore (Base_table.insert t [| vi 1 |]);
       false
     with Errors.Db_error (Errors.Constraint_error, _) -> true);
  Alcotest.(check int) "still one row" 1 (Base_table.cardinality t)

let test_secondary_index_maintenance () =
  let t =
    Base_table.create ~name:"t"
      (Schema.make [ Schema.column "k" Dtype.Tint; Schema.column "v" Dtype.Tint ])
  in
  let idx = Base_table.create_index t ~idx_name:"t_k" ~columns:[ "k" ] ~unique:false in
  let r1 = Base_table.insert t [| vi 1; vi 10 |] in
  let _r2 = Base_table.insert t [| vi 1; vi 20 |] in
  let r3 = Base_table.insert t [| vi 2; vi 30 |] in
  Alcotest.(check int) "two rows under k=1" 2
    (List.length (Index.lookup idx [| vi 1 |]));
  Base_table.update t r1 [| vi 2; vi 10 |];
  Alcotest.(check int) "k=1 after update" 1
    (List.length (Index.lookup idx [| vi 1 |]));
  Alcotest.(check int) "k=2 after update" 2
    (List.length (Index.lookup idx [| vi 2 |]));
  Base_table.delete t r3;
  Alcotest.(check int) "k=2 after delete" 1
    (List.length (Index.lookup idx [| vi 2 |]))

let test_index_built_over_existing_rows () =
  let t =
    Base_table.create ~name:"t" (Schema.make [ Schema.column "k" Dtype.Tint ])
  in
  ignore (Base_table.insert t [| vi 5 |]);
  ignore (Base_table.insert t [| vi 5 |]);
  let idx = Base_table.create_index t ~idx_name:"late" ~columns:[ "k" ] ~unique:false in
  Alcotest.(check int) "backfilled" 2 (List.length (Index.lookup idx [| vi 5 |]))

(* -- catalog ---------------------------------------------------------------- *)

let test_catalog_namespace () =
  let cat = Catalog.create () in
  let t =
    Base_table.create ~name:"T1" (Schema.make [ Schema.column "a" Dtype.Tint ])
  in
  Catalog.add_table cat t;
  Alcotest.(check bool) "case-insensitive lookup" true
    (Catalog.find_table_opt cat "t1" <> None);
  Alcotest.(check bool) "name clash rejected" true
    (try
       Catalog.add_view cat { Catalog.view_name = "T1"; language = `Sql; text = "" };
       false
     with Errors.Db_error (Errors.Catalog_error, _) -> true);
  Catalog.drop_table cat "T1";
  Alcotest.(check bool) "dropped" true (Catalog.find_table_opt cat "t1" = None)

(* -- vec ---------------------------------------------------------------------- *)

let test_vec () =
  let v = Vec.create ~dummy:0 in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "len" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Vec.set v 0 7;
  Alcotest.(check int) "set" 7 (Vec.get v 0);
  Alcotest.(check int) "fold" (7 + List.fold_left ( + ) 0 (List.init 98 (fun i -> i + 1)))
    (Vec.fold_left ( + ) 0 v)

let suite =
  [
    Alcotest.test_case "value compare" `Quick test_value_compare;
    Alcotest.test_case "value sql 3vl" `Quick test_value_sql_semantics;
    Alcotest.test_case "value hash" `Quick test_value_hash_consistent;
    Alcotest.test_case "value literals" `Quick test_value_literals;
    Alcotest.test_case "dtype coerce" `Quick test_dtype_coerce;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "schema validate" `Quick test_schema_validate;
    Alcotest.test_case "heap rid stability" `Quick test_heap_rid_stability;
    Alcotest.test_case "heap scan tombstones" `Quick test_heap_scan_skips_tombstones;
    Alcotest.test_case "unique index" `Quick test_unique_index;
    Alcotest.test_case "secondary index maintenance" `Quick
      test_secondary_index_maintenance;
    Alcotest.test_case "index backfill" `Quick test_index_built_over_existing_rows;
    Alcotest.test_case "catalog namespace" `Quick test_catalog_namespace;
    Alcotest.test_case "vec" `Quick test_vec;
  ]

(* -- txn (engine) and rng (workloads) unit coverage ------------------- *)

let test_txn_unit () =
  let t =
    Relcore.Base_table.create ~name:"t"
      (Relcore.Schema.make [ Relcore.Schema.column "a" Relcore.Dtype.Tint ])
  in
  let txn = Engine.Txn.create () in
  Alcotest.(check bool) "inactive" false (Engine.Txn.is_active txn);
  Engine.Txn.begin_txn txn;
  let r1 = Relcore.Base_table.insert t [| vi 1 |] in
  Engine.Txn.record txn (Engine.Txn.U_insert (t, r1));
  Alcotest.(check bool) "nested begin rejected" true
    (try
       Engine.Txn.begin_txn txn;
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Execution_error, _) -> true);
  Engine.Txn.rollback txn;
  Alcotest.(check int) "insert rolled back" 0 (Relcore.Base_table.cardinality t);
  Alcotest.(check bool) "commit without begin rejected" true
    (try
       Engine.Txn.commit txn;
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Execution_error, _) -> true)

let test_rng_determinism () =
  let a = Workloads.Rng.create 7 and b = Workloads.Rng.create 7 in
  let xs = List.init 50 (fun _ -> Workloads.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Workloads.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  List.iter
    (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 1000))
    xs;
  let c = Workloads.Rng.create 8 in
  let zs = List.init 50 (fun _ -> Workloads.Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let suite =
  suite
  @ [
      Alcotest.test_case "txn module unit" `Quick test_txn_unit;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    ]
