(** Plan optimization tests: join ordering, access-method selection,
    sharing, and the cost model. *)

open Helpers
module Db = Engine.Database
module Plan = Optimizer.Plan

let compile db sql = (Db.compile_query db sql).Plan.plan

let rec plan_has pred (p : Plan.t) =
  pred p
  ||
  match p with
  | Plan.Scan _ | Plan.Values _ -> false
  | Plan.Filter (i, _)
  | Plan.Project (i, _)
  | Plan.Distinct i
  | Plan.Sort (i, _)
  | Plan.Limit (i, _)
  | Plan.Shared (_, i) ->
    plan_has pred i
  | Plan.Nl_join { outer; inner; _ } -> plan_has pred outer || plan_has pred inner
  | Plan.Hash_join { build; probe; _ } ->
    plan_has pred build || plan_has pred probe
  | Plan.Index_join { outer; _ } -> plan_has pred outer
  | Plan.Merge_join { left; right; _ } -> plan_has pred left || plan_has pred right
  | Plan.Aggregate { input; _ } -> plan_has pred input
  | Plan.Union_all is -> List.exists (plan_has pred) is

let is_hash_join = function Plan.Hash_join _ -> true | _ -> false
let is_index_join = function Plan.Index_join _ -> true | _ -> false
let is_nl_join = function Plan.Nl_join _ -> true | _ -> false

let test_equi_join_uses_hash_or_index () =
  let db = org_db () in
  let p = compile db "SELECT e.eno FROM emp e, dept d WHERE e.edno = d.dno" in
  Alcotest.(check bool) "hash or index join" true
    (plan_has is_hash_join p || plan_has is_index_join p);
  Alcotest.(check bool) "no nested loop" false (plan_has is_nl_join p)

let test_index_join_selected_on_indexed_column () =
  (* emp.edno carries an index in the org fixture *)
  let db = org_db () in
  let p =
    compile db
      "SELECT e.eno FROM dept d, emp e WHERE d.dno = e.edno AND d.loc = 'ARC'"
  in
  Alcotest.(check bool) "index join chosen" true (plan_has is_index_join p)

let test_cross_join_falls_back_to_nl () =
  let db = org_db () in
  let p = compile db "SELECT e.eno FROM emp e, dept d WHERE e.sal > d.dno" in
  Alcotest.(check bool) "nested loop for theta join" true (plan_has is_nl_join p)

let test_join_order_small_first () =
  (* dept (3 rows, filtered further) should be planned before the larger
     empskills (5 rows) chain; verify via explain text ordering *)
  let db = org_db () in
  let text =
    Db.explain db
      "SELECT es.essno FROM dept d, emp e, empskills es WHERE d.dno = e.edno \
       AND e.eno = es.eseno AND d.loc = 'ARC'"
  in
  (* the plan must run to completion and contain two joins *)
  let count_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else go (i + 1) (if String.sub s i m = sub then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "two joins" 2 (count_sub text "Join")

let test_shared_nodes_in_multi_output () =
  let db = org_db () in
  let compiled = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let shared_count =
    List.fold_left
      (fun acc (_, (c : Plan.compiled)) ->
        let n = ref 0 in
        let rec walk p =
          (match p with Plan.Shared _ -> incr n | _ -> ());
          match p with
          | Plan.Scan _ | Plan.Values _ -> ()
          | Plan.Filter (i, _)
          | Plan.Project (i, _)
          | Plan.Distinct i
          | Plan.Sort (i, _)
          | Plan.Limit (i, _)
          | Plan.Shared (_, i) ->
            walk i
          | Plan.Nl_join { outer; inner; _ } ->
            walk outer;
            walk inner
          | Plan.Hash_join { build; probe; _ } ->
            walk build;
            walk probe
          | Plan.Index_join { outer; _ } -> walk outer
          | Plan.Merge_join { left; right; _ } ->
            walk left;
            walk right
          | Plan.Aggregate { input; _ } -> walk input
          | Plan.Union_all is -> List.iter walk is
        in
        walk c.Plan.plan;
        acc + !n)
      0 compiled.Xnf.Xnf_compile.plans
  in
  Alcotest.(check bool) "multiple Shared CSE nodes" true (shared_count >= 4)

let test_share_flag_disables_cse () =
  let db = org_db () in
  let compiled =
    Xnf.Xnf_compile.compile ~share:false db Workloads.Org.deps_arc_query
  in
  List.iter
    (fun (_, (c : Plan.compiled)) ->
      Alcotest.(check bool) "no Shared nodes" false
        (plan_has (function Plan.Shared _ -> true | _ -> false) c.Plan.plan))
    compiled.Xnf.Xnf_compile.plans

let test_cost_model_cardinalities () =
  let db = org_db () in
  let g =
    Starq.Build.build_query (Db.catalog db)
      (Sqlkit.Parser.parse_query_string "SELECT * FROM emp")
  in
  Alcotest.(check (float 0.01)) "base cardinality" 4.0
    (Optimizer.Cost.box_cardinality g.Starq.Qgm.top);
  let g2 =
    Starq.Build.build_query (Db.catalog db)
      (Sqlkit.Parser.parse_query_string "SELECT * FROM emp, dept")
  in
  Alcotest.(check (float 0.01)) "cross product" 12.0
    (Optimizer.Cost.box_cardinality g2.Starq.Qgm.top)

let test_join_order_dp_connected () =
  (* the DP must prefer connected orders: chain a-b-c with cards 1,100,100 *)
  let mk name card =
    let t =
      Relcore.Base_table.create ~name
        (Relcore.Schema.make [ Relcore.Schema.column "k" Relcore.Dtype.Tint ])
    in
    for i = 1 to card do
      ignore (Relcore.Base_table.insert t [| Relcore.Value.Int i |])
    done;
    Starq.Qgm.make_quant (Starq.Qgm.base_box t)
  in
  let qa = mk "a" 1 and qb = mk "b" 100 and qc = mk "c" 100 in
  let inp =
    {
      Optimizer.Join_order.quants = [| qa; qb; qc |];
      cards = [| 1.0; 100.0; 100.0 |];
      preds =
        [
          (Starq.Qgm.Btrue, [ 0; 1 ]) (* a-b join edge *);
          (Starq.Qgm.Btrue, [ 1; 2 ]) (* b-c join edge *);
        ];
    }
  in
  match Optimizer.Join_order.choose inp with
  | 0 :: rest ->
    (* must start from the singleton 'a' and stay connected: a, b, c *)
    Alcotest.(check (list int)) "connected order" [ 1; 2 ] rest
  | other ->
    Alcotest.failf "unexpected order: %s"
      (String.concat "," (List.map string_of_int other))

let test_explain_structure () =
  let db = org_db () in
  let text =
    Optimizer.Plan.explain (compile db "SELECT eno FROM emp ORDER BY sal LIMIT 1")
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (let n = String.length text and m = String.length needle in
         let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
         go 0))
    [ "Limit"; "Sort"; "Project"; "Scan emp" ]

let suite =
  [
    Alcotest.test_case "equi join method" `Quick test_equi_join_uses_hash_or_index;
    Alcotest.test_case "index join selection" `Quick
      test_index_join_selected_on_indexed_column;
    Alcotest.test_case "theta join fallback" `Quick test_cross_join_falls_back_to_nl;
    Alcotest.test_case "three-way join plans" `Quick test_join_order_small_first;
    Alcotest.test_case "shared cse nodes" `Quick test_shared_nodes_in_multi_output;
    Alcotest.test_case "share flag ablation" `Quick test_share_flag_disables_cse;
    Alcotest.test_case "cost cardinalities" `Quick test_cost_model_cardinalities;
    Alcotest.test_case "dp prefers connected orders" `Quick
      test_join_order_dp_connected;
    Alcotest.test_case "explain structure" `Quick test_explain_structure;
  ]

let test_merge_join_forced () =
  let db = org_db () in
  let p =
    (Db.compile_query ~join_method:`Merge db
       "SELECT e.eno FROM emp e, dept d WHERE e.edno = d.dno")
      .Plan.plan
  in
  Alcotest.(check bool) "merge join chosen" true
    (plan_has (function Plan.Merge_join _ -> true | _ -> false) p)

let test_merge_join_same_results () =
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 15 } in
  let sql =
    "SELECT e.eno, d.dname, es.essno FROM emp e, dept d, empskills es WHERE \
     e.edno = d.dno AND es.eseno = e.eno AND d.loc = 'ARC' ORDER BY e.eno, \
     es.essno"
  in
  let hash = Executor.Exec.run (Db.compile_query ~join_method:`Hash db sql) in
  let merge = Executor.Exec.run (Db.compile_query ~join_method:`Merge db sql) in
  check_rows "hash = merge" hash merge

let test_merge_join_duplicate_keys () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE l (k INT, v INT); CREATE TABLE r (k INT, w INT);\n\
        INSERT INTO l VALUES (1, 10), (1, 11), (2, 20), (NULL, 0);\n\
        INSERT INTO r VALUES (1, 100), (1, 101), (3, 300), (NULL, 1)");
  let sql =
    "SELECT l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY l.v, r.w"
  in
  let merge = Executor.Exec.run (Db.compile_query ~join_method:`Merge db sql) in
  (* 2x2 cross product for k=1; nulls never join *)
  check_rows_unordered "duplicate-key groups"
    (rows_of_ints [ [ 10; 100 ]; [ 10; 101 ]; [ 11; 100 ]; [ 11; 101 ] ])
    merge

let test_stats_ndv () =
  let db = org_db () in
  let emp = Db.find_table db "emp" in
  Alcotest.(check int) "distinct edno" 3 (Optimizer.Stats.column_ndv emp 3);
  Alcotest.(check int) "distinct eno" 4 (Optimizer.Stats.column_ndv emp 0);
  (* cache invalidation on cardinality change *)
  ignore (Db.exec db "INSERT INTO emp VALUES (50, 'new', 1, 9)");
  Alcotest.(check int) "ndv after insert" 4 (Optimizer.Stats.column_ndv emp 3)

let test_ndv_selectivity_in_cost () =
  let db = org_db () in
  let g =
    Starq.Build.build_query (Db.catalog db)
      (Sqlkit.Parser.parse_query_string
         "SELECT * FROM emp e, dept d WHERE e.edno = d.dno")
  in
  (* fk join: |emp| * |dept| / max(ndv) = 4 * 3 / 3 = 4 *)
  Alcotest.(check (float 0.5)) "fk join cardinality" 4.0
    (Optimizer.Cost.box_cardinality g.Starq.Qgm.top)

let suite =
  suite
  @ [
      Alcotest.test_case "merge join forced" `Quick test_merge_join_forced;
      Alcotest.test_case "merge = hash results" `Quick
        test_merge_join_same_results;
      Alcotest.test_case "merge join duplicate keys" `Quick
        test_merge_join_duplicate_keys;
      Alcotest.test_case "stats ndv" `Quick test_stats_ndv;
      Alcotest.test_case "ndv-based cost" `Quick test_ndv_selectivity_in_cost;
    ]
