(** Workload generator tests: determinism, scale invariants, and
    end-to-end extraction over generated data. *)

module Db = Engine.Database
module H = Xnf.Hetstream
module Ws = Cocache.Workspace

let count db sql =
  match Db.query_rows db sql with
  | [ [| Relcore.Value.Int n |] ] -> n
  | _ -> Alcotest.fail ("bad count result for " ^ sql)

let test_org_generator () =
  let p = { Workloads.Org.default with n_depts = 20; seed = 1 } in
  let db = Workloads.Org.generate p in
  Alcotest.(check int) "depts" 20 (count db "SELECT COUNT(*) FROM dept");
  Alcotest.(check int) "emps" (20 * p.Workloads.Org.emps_per_dept)
    (count db "SELECT COUNT(*) FROM emp");
  Alcotest.(check int) "empskills"
    (20 * p.Workloads.Org.emps_per_dept * p.Workloads.Org.skills_per_emp)
    (count db "SELECT COUNT(*) FROM empskills");
  (* arc fraction respected *)
  Alcotest.(check int) "arc depts" 6
    (count db "SELECT COUNT(*) FROM dept WHERE loc = 'ARC'")

let test_org_determinism () =
  let p = { Workloads.Org.default with n_depts = 10 } in
  let a = Workloads.Org.generate p and b = Workloads.Org.generate p in
  let q = "SELECT eno, ename, sal, edno FROM emp ORDER BY eno" in
  Helpers.check_rows "same data" (Db.query_rows a q) (Db.query_rows b q)

let test_org_extraction_scales () =
  let p = { Workloads.Org.default with n_depts = 10; arc_fraction = 0.5 } in
  let db = Workloads.Org.generate p in
  let stream = Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query in
  let counts = H.counts stream in
  Alcotest.(check int) "xdept = arc depts" 5 (List.assoc "xdept" counts);
  Alcotest.(check int) "xemp" (5 * p.Workloads.Org.emps_per_dept)
    (List.assoc "xemp" counts);
  Alcotest.(check int) "employment connections" (5 * p.Workloads.Org.emps_per_dept)
    (List.assoc "employment" counts);
  Alcotest.(check int) "empproperty connections"
    (5 * p.Workloads.Org.emps_per_dept * p.Workloads.Org.skills_per_emp)
    (List.assoc "empproperty" counts)

let test_oo1_generator () =
  let p = { Workloads.Oo1.default with n_parts = 500 } in
  let db = Workloads.Oo1.generate p in
  Alcotest.(check int) "parts" 500 (count db "SELECT COUNT(*) FROM parts");
  Alcotest.(check int) "conns" (500 * 3) (count db "SELECT COUNT(*) FROM conns");
  (* every connection target is a valid part *)
  Alcotest.(check int) "dangling targets" 0
    (count db
       "SELECT COUNT(*) FROM conns WHERE NOT EXISTS (SELECT 1 FROM parts \
        WHERE pid = cto)")

let test_oo1_cache_and_traversal () =
  let p = { Workloads.Oo1.default with n_parts = 300 } in
  let db = Workloads.Oo1.generate p in
  let stream = Xnf.Xnf_compile.run db Workloads.Oo1.parts_graph_query in
  let ws = Ws.of_stream stream in
  Alcotest.(check int) "all parts cached" 300 (Ws.node_count ws "xpart");
  Alcotest.(check int) "all connections cached" (300 * 3)
    (Ws.connection_count ws);
  let index = Workloads.Oo1.build_pid_index ws in
  let start = Hashtbl.find index 1 in
  let visited = Workloads.Oo1.traverse start ~depth:3 in
  (* depth-3 fanout-3 traversal visits 1 + 3 + 9 + 27 = 40 nodes *)
  Alcotest.(check int) "traversal visit count" 40 visited

let test_bom_recursive_extraction () =
  let p = { Workloads.Bom.default with n_assemblies = 2; levels = 3 } in
  let db = Workloads.Bom.generate p in
  let stream = Xnf.Xnf_compile.run db Workloads.Bom.assembly_query in
  let counts = H.counts stream in
  Alcotest.(check int) "roots" 2 (List.assoc "asmroot" counts);
  let total_parts = count db "SELECT COUNT(*) FROM part" in
  (* everything except the top-level assemblies is reachable *)
  Alcotest.(check int) "parts reachable" (total_parts - 2)
    (List.assoc "xpart" counts)

let test_shop_extraction () =
  let p = { Workloads.Shop.default with n_customers = 20 } in
  let db = Workloads.Shop.generate p in
  let q = Workloads.Shop.region_query "EMEA" in
  let stream = Xnf.Xnf_compile.run db q in
  let ws = Ws.of_stream stream in
  let n_cust = Ws.node_count ws "xcust" in
  Alcotest.(check int) "emea customers match sql" n_cust
    (count db "SELECT COUNT(*) FROM customer WHERE region = 'EMEA'");
  Alcotest.(check int) "orders = customers * opc"
    (n_cust * p.Workloads.Shop.orders_per_customer)
    (Ws.node_count ws "xorder");
  (* products are shared: strictly fewer product nodes than line items *)
  Alcotest.(check bool) "object sharing on products" true
    (Ws.node_count ws "xproduct" <= Ws.node_count ws "xitem")

let suite =
  [
    Alcotest.test_case "org generator invariants" `Quick test_org_generator;
    Alcotest.test_case "org determinism" `Quick test_org_determinism;
    Alcotest.test_case "org extraction scales" `Quick test_org_extraction_scales;
    Alcotest.test_case "oo1 generator invariants" `Quick test_oo1_generator;
    Alcotest.test_case "oo1 cache + traversal" `Quick test_oo1_cache_and_traversal;
    Alcotest.test_case "bom recursive extraction" `Quick
      test_bom_recursive_extraction;
    Alcotest.test_case "shop extraction" `Quick test_shop_extraction;
  ]

(* -- scale smoke tests (still fast enough for CI) ----------------------- *)

let test_extraction_at_scale () =
  let p =
    {
      Workloads.Org.default with
      n_depts = 300;
      arc_fraction = 0.3;
      emps_per_dept = 12;
      projs_per_dept = 4;
      n_skills = 400;
    }
  in
  let db = Workloads.Org.generate p in
  let stream = Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query in
  let counts = H.counts stream in
  Alcotest.(check int) "xdept" 90 (List.assoc "xdept" counts);
  Alcotest.(check int) "xemp" (90 * 12) (List.assoc "xemp" counts);
  Alcotest.(check int) "empproperty" (90 * 12 * 3)
    (List.assoc "empproperty" counts);
  (* and the cache builds cleanly at this size *)
  let ws = Ws.of_stream stream in
  Alcotest.(check int) "cache connections"
    ((90 * 12) + (90 * 4) + (90 * 12 * 3) + (90 * 4 * 2))
    (Ws.connection_count ws)

let test_deep_recursion () =
  let p =
    {
      Workloads.Bom.default with
      n_assemblies = 1;
      levels = 9;
      children_per_part = 2;
      share_prob = 0.0;
    }
  in
  let db = Workloads.Bom.generate p in
  let counts =
    H.counts (Xnf.Xnf_compile.run db Workloads.Bom.assembly_query)
  in
  (* a full binary tree: 2^9 - 2 descendants of the root *)
  Alcotest.(check int) "deep tree parts" 510 (List.assoc "xpart" counts);
  Alcotest.(check int) "deep tree edges" 508 (List.assoc "subconn" counts)

let suite =
  suite
  @ [
      Alcotest.test_case "extraction at scale" `Slow test_extraction_at_scale;
      Alcotest.test_case "deep recursion" `Slow test_deep_recursion;
    ]
