(** Shared fixtures and assertion helpers for the test suites. *)

open Relcore

let value_testable : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Value.pp fmt v) Value.equal

let tuple_testable : Tuple.t Alcotest.testable =
  Alcotest.testable (fun fmt t -> Tuple.pp fmt t) Tuple.equal

let check_rows msg expected actual =
  Alcotest.(check (list tuple_testable)) msg expected actual

(** Compare row multisets ignoring order. *)
let check_rows_unordered msg expected actual =
  let sort = List.sort Tuple.compare in
  Alcotest.(check (list tuple_testable)) msg (sort expected) (sort actual)

let row vals = Tuple.of_list vals
let vi i = Value.Int i
let vs s = Value.Str s
let vf f = Value.Float f
let vb b = Value.Bool b
let vnull = Value.Null

let rows_of_ints rows = List.map (fun r -> row (List.map vi r)) rows

(** The paper's running example database (Fig. 1): departments,
    employees, projects, skills, and the two M:N mapping tables.
    Instance follows the paper's instance graph: two ARC departments
    d1, d2; employees e1..e3 (e2, e3 shared via projects is modelled by
    skills sharing); projects p1, p2; skills s1..s5 with s2 unreachable. *)
let org_db () =
  let db = Engine.Database.create () in
  let ddl =
    [
      "CREATE TABLE dept (dno INT NOT NULL, dname STRING, loc STRING, PRIMARY \
       KEY (dno))";
      "CREATE TABLE emp (eno INT NOT NULL, ename STRING, sal INT, edno INT, \
       PRIMARY KEY (eno))";
      "CREATE TABLE proj (pno INT NOT NULL, pname STRING, budget INT, pdno \
       INT, PRIMARY KEY (pno))";
      "CREATE TABLE skills (sno INT NOT NULL, sname STRING, PRIMARY KEY (sno))";
      "CREATE TABLE empskills (eseno INT NOT NULL, essno INT NOT NULL)";
      "CREATE TABLE projskills (pspno INT NOT NULL, pssno INT NOT NULL)";
      "CREATE INDEX emp_edno ON emp (edno)";
      "CREATE INDEX proj_pdno ON proj (pdno)";
      "CREATE INDEX es_eno ON empskills (eseno)";
      "CREATE INDEX ps_pno ON projskills (pspno)";
      (* data *)
      "INSERT INTO dept VALUES (1, 'tools', 'ARC'), (2, 'db', 'ARC'), (3, \
       'remote', 'HAW')";
      "INSERT INTO emp VALUES (10, 'anna', 100, 1), (11, 'ben', 90, 1), (12, \
       'carol', 120, 2), (13, 'dave', 80, 3)";
      "INSERT INTO proj VALUES (20, 'p1', 1000, 1), (21, 'p2', 2000, 2), (22, \
       'p3', 500, 3)";
      "INSERT INTO skills VALUES (30, 'ml'), (31, 'db'), (32, 'os'), (33, \
       'ui'), (34, 'hw')";
      (* s32 ('os') belongs only to the dave/remote world: unreachable from ARC *)
      "INSERT INTO empskills VALUES (10, 30), (10, 31), (11, 31), (12, 33), \
       (13, 32)";
      "INSERT INTO projskills VALUES (20, 31), (21, 33), (21, 34), (22, 32)";
    ]
  in
  List.iter (fun s -> ignore (Engine.Database.exec db s)) ddl;
  db
