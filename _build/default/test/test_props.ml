(** Property-based tests (qcheck): algebraic invariants of the kernel
    data structures and end-to-end equivalence of the three CO
    derivation strategies on randomized databases. *)

open Relcore

let value_gen : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.Null);
        (2, map (fun b -> Value.Bool b) bool);
        (4, map (fun i -> Value.Int i) (int_range (-1000) 1000));
        (3, map (fun f -> Value.Float (float_of_int f /. 8.0)) (int_range (-800) 800));
        (4, map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 6)));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_value_compare_total_order =
  QCheck.Test.make ~name:"Value.compare antisymmetric + transitive" ~count:500
    (QCheck.triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let ab = Value.compare a b and ba = Value.compare b a in
      let anti = compare ab 0 = compare 0 ba in
      let trans =
        if Value.compare a b <= 0 && Value.compare b c <= 0 then
          Value.compare a c <= 0
        else true
      in
      anti && trans)

let prop_value_hash_respects_equal =
  QCheck.Test.make ~name:"Value equal implies same hash" ~count:500
    (QCheck.pair value_arb value_arb)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* reference LIKE matcher: expand to position sets *)
let like_reference ~pattern s =
  let n = String.length s in
  let step positions c =
    match c with
    | '%' ->
      let reachable = Array.make (n + 1) false in
      List.iter
        (fun p ->
          for i = p to n do
            reachable.(i) <- true
          done)
        positions;
      List.filter (fun i -> reachable.(i)) (List.init (n + 1) Fun.id)
    | '_' -> List.filter_map (fun p -> if p < n then Some (p + 1) else None) positions
    | c ->
      List.filter_map
        (fun p -> if p < n && s.[p] = c then Some (p + 1) else None)
        positions
  in
  let final = String.fold_left step [ 0 ] pattern in
  List.mem n final

let pattern_gen =
  QCheck.Gen.(
    string_size ~gen:(oneof [ char_range 'a' 'c'; return '%'; return '_' ])
      (int_range 0 8))

let prop_like_matches_reference =
  QCheck.Test.make ~name:"LIKE agrees with reference matcher" ~count:1000
    (QCheck.pair
       (QCheck.make ~print:Fun.id pattern_gen)
       (QCheck.make ~print:Fun.id
          QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 0 10))))
    (fun (pattern, s) ->
      Executor.Eval.like_match ~pattern s = like_reference ~pattern s)

(* model-based heap test *)
type heap_op = Ins of int | Del of int | Upd of int * int

let heap_ops_gen =
  QCheck.Gen.(
    list_size (int_range 0 60)
      (frequency
         [
           (4, map (fun v -> Ins v) (int_range 0 100));
           (2, map (fun i -> Del i) (int_range 0 30));
           (2, map (fun (i, v) -> Upd (i, v)) (pair (int_range 0 30) (int_range 0 100)));
         ]))

let prop_heap_model =
  QCheck.Test.make ~name:"Heap behaves like a map" ~count:300
    (QCheck.make heap_ops_gen)
    (fun ops ->
      let h = Heap.create () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let live_rids () = Hashtbl.fold (fun r _ acc -> r :: acc) model [] in
      List.iter
        (fun op ->
          match op with
          | Ins v ->
            let rid = Heap.insert h [| Value.Int v |] in
            Hashtbl.replace model rid v
          | Del i -> begin
            match List.nth_opt (List.sort compare (live_rids ())) i with
            | Some rid ->
              Heap.delete h rid;
              Hashtbl.remove model rid
            | None -> ()
          end
          | Upd (i, v) -> begin
            match List.nth_opt (List.sort compare (live_rids ())) i with
            | Some rid ->
              Heap.update h rid [| Value.Int v |];
              Hashtbl.replace model rid v
            | None -> ()
          end)
        ops;
      Heap.cardinality h = Hashtbl.length model
      && Hashtbl.fold
           (fun rid v acc ->
             acc
             &&
             match Heap.get h rid with
             | Some t -> Value.equal t.(0) (Value.Int v)
             | None -> false)
           model true)

(* vec model *)
let prop_vec_model =
  QCheck.Test.make ~name:"Vec behaves like a list" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 200) QCheck.small_int)
    (fun xs ->
      let v = Vec.create ~dummy:(-1) in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && List.for_all (fun i -> Vec.get v i = List.nth xs i)
           (List.init (min 5 (List.length xs)) Fun.id))

(* tuple ordering *)
let tuple_arb =
  QCheck.make
    ~print:(fun t -> Tuple.to_string t)
    QCheck.Gen.(map Array.of_list (list_size (int_range 0 4) value_gen))

let prop_tuple_compare_consistent =
  QCheck.Test.make ~name:"Tuple compare/equal/hash consistent" ~count:500
    (QCheck.pair tuple_arb tuple_arb)
    (fun (a, b) ->
      let eq = Tuple.equal a b in
      (eq = (Tuple.compare a b = 0)) && ((not eq) || Tuple.hash a = Tuple.hash b))

(* -- end-to-end equivalence on random databases -------------------------- *)

let org_params_gen =
  QCheck.Gen.(
    map
      (fun (n_depts, emps, projs, seed) ->
        {
          Workloads.Org.default with
          n_depts;
          emps_per_dept = emps;
          projs_per_dept = projs;
          n_skills = 12;
          skills_per_emp = 2;
          skills_per_proj = 2;
          seed;
        })
      (quad (int_range 2 8) (int_range 1 5) (int_range 1 3) (int_range 0 10_000)))

let org_params_arb =
  QCheck.make
    ~print:(fun (p : Workloads.Org.params) ->
      Printf.sprintf "depts=%d emps=%d projs=%d seed=%d" p.Workloads.Org.n_depts
        p.Workloads.Org.emps_per_dept p.Workloads.Org.projs_per_dept
        p.Workloads.Org.seed)
    org_params_gen

(** The three derivation strategies must agree on every component
    cardinality: XNF multi-table extraction, per-component SQL queries,
    and the navigational walk. *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"XNF = SQL-derivation = navigational (counts)"
    ~count:25 org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      let ast = Xnf.Xnf_parser.parse Workloads.Org.deps_arc_query in
      let xnf = Xnf.Hetstream.counts (Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query) in
      let sql =
        List.map
          (fun (n, rows) -> (n, List.length rows))
          (Xnf.Sql_derivation.extract db ast)
      in
      let nav = (Xnf.Navigational.extract ~mode:`Prepared db ast).Xnf.Navigational.counts in
      let sorted l = List.sort compare l in
      sorted xnf = sorted sql && sorted xnf = sorted nav)

(** CSE on/off and NF-rewrite on/off must not change extraction results. *)
let prop_ablations_preserve_semantics =
  QCheck.Test.make ~name:"share/rewrite ablations preserve extraction"
    ~count:20 org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      let c ~share ~nf_rewrite =
        Xnf.Hetstream.counts
          (Xnf.Xnf_compile.run ~share ~nf_rewrite db Workloads.Org.deps_arc_query)
      in
      let base = c ~share:true ~nf_rewrite:true in
      base = c ~share:false ~nf_rewrite:true
      && base = c ~share:true ~nf_rewrite:false
      && base = c ~share:false ~nf_rewrite:false)

(** Stream serialization roundtrips on random extractions. *)
let prop_stream_roundtrip =
  QCheck.Test.make ~name:"hetstream serialize/deserialize roundtrip" ~count:20
    org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      let s = Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query in
      let s' = Xnf.Hetstream.deserialize (Xnf.Hetstream.serialize s) in
      Xnf.Hetstream.counts s = Xnf.Hetstream.counts s'
      && s.Xnf.Hetstream.items = s'.Xnf.Hetstream.items)

(** Every connection in every random extraction resolves to shipped rows
    (referential integrity of the heterogeneous stream). *)
let prop_connections_resolve =
  QCheck.Test.make ~name:"connections reference shipped tuples" ~count:20
    org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      let s = Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query in
      let ids = Hashtbl.create 256 in
      List.iter
        (function
          | Xnf.Hetstream.Row { id; _ } -> Hashtbl.replace ids id ()
          | Xnf.Hetstream.Conn _ -> ())
        s.Xnf.Hetstream.items;
      List.for_all
        (function
          | Xnf.Hetstream.Conn { parent; children; _ } ->
            Hashtbl.mem ids parent
            && Array.for_all (fun c -> Hashtbl.mem ids c) children
          | Xnf.Hetstream.Row _ -> true)
        s.Xnf.Hetstream.items)

(** The recursive fixpoint evaluator agrees with the navigational walk
    (which handles cycles through its dedup maps) on random BOMs. *)
let bom_params_gen =
  QCheck.Gen.(
    map
      (fun (n, levels, k, seed) ->
        {
          Workloads.Bom.default with
          n_assemblies = n;
          levels;
          children_per_part = k;
          seed;
        })
      (quad (int_range 1 3) (int_range 1 4) (int_range 1 3) (int_range 0 10_000)))

let prop_recursive_agrees_with_navigational =
  QCheck.Test.make ~name:"recursive fixpoint = navigational walk" ~count:15
    (QCheck.make
       ~print:(fun (p : Workloads.Bom.params) ->
         Printf.sprintf "asm=%d levels=%d k=%d seed=%d" p.Workloads.Bom.n_assemblies
           p.Workloads.Bom.levels p.Workloads.Bom.children_per_part
           p.Workloads.Bom.seed)
       bom_params_gen)
    (fun params ->
      let db = Workloads.Bom.generate params in
      let ast = Xnf.Xnf_parser.parse Workloads.Bom.assembly_query in
      let fixpoint =
        Xnf.Hetstream.counts (Xnf.Xnf_compile.run db Workloads.Bom.assembly_query)
      in
      let nav = (Xnf.Navigational.extract ~mode:`Prepared db ast).Xnf.Navigational.counts in
      List.sort compare fixpoint = List.sort compare nav)

(** Cache persistence roundtrips: save/load preserves structure. *)
let prop_persist_roundtrip =
  QCheck.Test.make ~name:"cache persist/load roundtrip" ~count:10 org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      let ws =
        Cocache.Workspace.of_stream
          (Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query)
      in
      let file = Filename.temp_file "prop_cache" ".xnf" in
      Cocache.Persist.save ws file;
      let ws' = Cocache.Persist.load file in
      Sys.remove file;
      Cocache.Workspace.size ws = Cocache.Workspace.size ws'
      && Cocache.Workspace.connection_count ws
         = Cocache.Workspace.connection_count ws')

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_value_compare_total_order;
      prop_value_hash_respects_equal;
      prop_like_matches_reference;
      prop_heap_model;
      prop_vec_model;
      prop_tuple_compare_consistent;
      prop_strategies_agree;
      prop_ablations_preserve_semantics;
      prop_stream_roundtrip;
      prop_connections_resolve;
      prop_recursive_agrees_with_navigational;
      prop_persist_roundtrip;
    ]

(** Hash and merge join must produce identical multisets on randomized
    databases. *)
let prop_join_methods_agree =
  QCheck.Test.make ~name:"hash join = merge join (results)" ~count:20
    org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      let queries =
        [
          "SELECT e.eno, d.dname FROM emp e, dept d WHERE e.edno = d.dno";
          "SELECT e.eno, es.essno FROM emp e, empskills es, dept d WHERE \
           e.edno = d.dno AND es.eseno = e.eno AND d.loc = 'ARC'";
          "SELECT d.dno, COUNT(*) FROM dept d, proj p WHERE p.pdno = d.dno \
           GROUP BY d.dno";
        ]
      in
      List.for_all
        (fun sql ->
          let run jm =
            Executor.Exec.run
              (Engine.Database.compile_query ~join_method:jm db sql)
            |> List.sort Tuple.compare
          in
          run `Hash = run `Merge)
        queries)

let suite = suite @ List.map QCheck_alcotest.to_alcotest [ prop_join_methods_agree ]

(** The parser must never crash with anything but a [Db_error] on
    arbitrary input. *)
let prop_parser_total =
  let token_gen =
    QCheck.Gen.(
      oneofl
        [
          "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "("; ")"; ","; "*";
          "="; "<"; "3"; "'s'"; "t"; "a"; "GROUP"; "BY"; "EXISTS"; "IN";
          "OUT"; "OF"; "RELATE"; "VIA"; "TAKE"; "USING"; ";"; "."; "INSERT";
          "UPDATE"; "NULL"; "LIKE"; "BETWEEN"; "AS"; "ORDER"; "LIMIT";
        ])
  in
  let input_gen =
    QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 25) token_gen))
  in
  QCheck.Test.make ~name:"parser totality (Db_error only)" ~count:2000
    (QCheck.make ~print:Fun.id input_gen)
    (fun src ->
      (try ignore (Sqlkit.Parser.parse_stmt src)
       with Relcore.Errors.Db_error _ -> ());
      (try ignore (Xnf.Xnf_parser.parse src)
       with Relcore.Errors.Db_error _ -> ());
      true)

(** DML through a view component must match updating the base table
    directly. *)
let prop_component_dml_equiv =
  QCheck.Test.make ~name:"DML on view.component = DML on base (ARC rows)"
    ~count:15 org_params_arb
    (fun params ->
      let db1 = Workloads.Org.generate params in
      let db2 = Workloads.Org.generate params in
      ignore
        (Engine.Database.exec db1
           ("CREATE VIEW v AS " ^ Workloads.Org.deps_arc_query));
      ignore
        (Engine.Database.exec db1 "UPDATE v.xemp SET sal = sal + 7 WHERE sal > 80");
      (* equivalent direct statement: view predicate is TRUE for xemp
         (its table expression is SELECT * FROM EMP) *)
      ignore
        (Engine.Database.exec db2 "UPDATE emp SET sal = sal + 7 WHERE sal > 80");
      let q = "SELECT eno, sal FROM emp ORDER BY eno" in
      Engine.Database.query_rows db1 q = Engine.Database.query_rows db2 q)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_parser_total; prop_component_dml_equiv ]

(** SQL over a composed component must agree with the extraction: the
    component table seen through view.component has exactly the rows the
    heterogeneous stream ships. *)
let prop_composition_agrees_with_extraction =
  QCheck.Test.make ~name:"SELECT FROM view.component = extraction rows"
    ~count:15 org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      ignore
        (Engine.Database.exec db
           ("CREATE VIEW v AS " ^ Workloads.Org.deps_arc_query));
      let stream = Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query in
      List.for_all
        (fun comp ->
          let info = Xnf.Hetstream.find_comp stream.Xnf.Hetstream.header comp in
          let shipped =
            List.filter_map
              (function
                | Xnf.Hetstream.Row { comp = c; values; _ }
                  when c = info.Xnf.Hetstream.comp_no ->
                  Some values
                | _ -> None)
              stream.Xnf.Hetstream.items
            |> List.sort Tuple.compare
          in
          let queried =
            Engine.Database.query_rows db
              (Printf.sprintf "SELECT * FROM v.%s" comp)
            |> List.sort Tuple.compare
          in
          shipped = queried)
        [ "xdept"; "xemp"; "xproj"; "xskills" ])

(** Path expressions must agree with manual pointer navigation. *)
let prop_path_agrees_with_navigation =
  QCheck.Test.make ~name:"path expression = manual navigation" ~count:15
    org_params_arb
    (fun params ->
      let db = Workloads.Org.generate params in
      let ws =
        Cocache.Workspace.of_stream
          (Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query)
      in
      let by_path =
        Cocache.Path.eval ws "xdept.employment.xemp.empproperty.xskills"
        |> List.map (fun (n : Cocache.Conode.t) -> n.Cocache.Conode.id)
        |> List.sort_uniq compare
      in
      let manual =
        Cocache.Workspace.nodes ws "xdept"
        |> List.concat_map (fun d -> Cocache.Conode.children d ~rel:"employment")
        |> List.concat_map (fun e -> Cocache.Conode.children e ~rel:"empproperty")
        |> List.map (fun (n : Cocache.Conode.t) -> n.Cocache.Conode.id)
        |> List.sort_uniq compare
      in
      by_path = manual)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_composition_agrees_with_extraction; prop_path_agrees_with_navigation ]
