test/test_planner.ml: Alcotest Engine Executor Helpers List Optimizer Relcore Sqlkit Starq String Workloads Xnf
