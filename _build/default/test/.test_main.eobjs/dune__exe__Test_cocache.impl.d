test/test_cocache.ml: Alcotest Array Cocache Engine Filename Helpers List Option Printf Relcore String Sys Xnf
