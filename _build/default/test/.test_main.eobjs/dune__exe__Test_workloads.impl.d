test/test_workloads.ml: Alcotest Cocache Engine Hashtbl Helpers List Relcore Workloads Xnf
