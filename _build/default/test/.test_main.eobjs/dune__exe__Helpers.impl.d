test/helpers.ml: Alcotest Engine List Relcore Tuple Value
