test/test_qgm.ml: Alcotest Engine Helpers List Optimizer Sqlkit Starq String Workloads Xnf
