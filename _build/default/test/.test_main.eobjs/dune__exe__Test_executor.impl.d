test/test_executor.ml: Alcotest Engine Executor Helpers List Relcore Workloads Xnf
