test/test_xnf.ml: Alcotest Array Cocache Engine Filename Helpers List Relcore String Sys Workloads Xnf
