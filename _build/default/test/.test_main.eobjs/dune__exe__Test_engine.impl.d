test/test_engine.ml: Alcotest Engine Helpers List Relcore String
