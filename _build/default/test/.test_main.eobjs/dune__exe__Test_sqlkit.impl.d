test/test_sqlkit.ml: Alcotest Array Ast Lexer List Parser Pretty Printf Relcore Sqlkit String Token
