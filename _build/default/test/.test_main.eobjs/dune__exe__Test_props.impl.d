test/test_props.ml: Array Cocache Engine Executor Filename Fun Hashtbl Heap List Printf QCheck QCheck_alcotest Relcore Sqlkit String Sys Tuple Value Vec Workloads Xnf
