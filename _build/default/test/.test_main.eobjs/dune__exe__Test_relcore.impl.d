test/test_relcore.ml: Alcotest Array Base_table Catalog Dtype Engine Errors Heap Helpers Index List Relcore Schema Value Vec Workloads
