(** CO cache tests: workspace construction, cursors, path expressions,
    updates with write-back, persistence, typed binding. *)

open Helpers
module H = Xnf.Hetstream
module Ws = Cocache.Workspace
module Cur = Cocache.Cursor

let deps_arc_text =
  "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),\n\
  \       xemp AS EMP,\n\
  \       xproj AS PROJ,\n\
  \       xskills AS SKILLS,\n\
  \       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = \
   xemp.edno),\n\
  \       ownership AS (RELATE xdept VIA HAS, xproj WHERE xdept.dno = \
   xproj.pdno),\n\
  \       empproperty AS (RELATE xemp VIA POSSESSES, xskills USING \
   EMPSKILLS es WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),\n\
  \       projproperty AS (RELATE xproj VIA NEEDS, xskills USING \
   PROJSKILLS ps WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)\n\
   TAKE *"

let load_workspace db = Ws.of_stream (Xnf.Xnf_compile.run db deps_arc_text)

let test_build () =
  let db = org_db () in
  let ws = load_workspace db in
  Alcotest.(check int) "xdept nodes" 2 (Ws.node_count ws "xdept");
  Alcotest.(check int) "xemp nodes" 3 (Ws.node_count ws "xemp");
  Alcotest.(check int) "total nodes" 11 (Ws.size ws);
  Alcotest.(check int) "connections" 12 (Ws.connection_count ws)

let test_independent_cursor () =
  let db = org_db () in
  let ws = load_workspace db in
  let cur = Cur.open_component ws "xemp" in
  let names =
    Cur.to_list cur
    |> List.map (fun n -> Relcore.Value.to_string (Ws.get ws n "ename"))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "all emps" [ "anna"; "ben"; "carol" ] names

let test_dependent_cursor () =
  let db = org_db () in
  let ws = load_workspace db in
  let tools =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "dname") = "tools")
      (Ws.nodes ws "xdept")
  in
  let cur = Cur.open_children tools ~rel:"employment" in
  let names =
    Cur.to_list cur
    |> List.map (fun n -> Relcore.Value.to_string (Ws.get ws n "ename"))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "tools emps" [ "anna"; "ben" ] names;
  (* reverse navigation *)
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  let parents = Cur.to_list (Cur.open_parents anna ~rel:"employment") in
  Alcotest.(check int) "anna has one dept" 1 (List.length parents);
  Alcotest.(check string) "it is tools" "tools"
    (Relcore.Value.to_string (Ws.get ws (List.hd parents) "dname"))

let test_cursor_reset_count () =
  let db = org_db () in
  let ws = load_workspace db in
  let cur = Cur.open_component ws "xskills" in
  Alcotest.(check int) "count" 4 (Cur.count cur);
  ignore (Cur.next cur);
  ignore (Cur.next cur);
  Cur.reset cur;
  Alcotest.(check int) "after reset all visible" 4 (List.length (Cur.to_list cur))

let test_path_expressions () =
  let db = org_db () in
  let ws = load_workspace db in
  let skills = Cocache.Path.eval ws "xdept.employment.xemp.empproperty.xskills" in
  let names =
    List.map (fun n -> Relcore.Value.to_string (Ws.get ws n "sname")) skills
    |> List.sort compare
  in
  Alcotest.(check (list string)) "skills via employees" [ "db"; "ml"; "ui" ] names;
  (* implicit relationship names *)
  let skills' = Cocache.Path.eval ws "xdept.xemp.xskills" in
  Alcotest.(check int) "implicit path same size" (List.length skills)
    (List.length skills');
  (* sharing: dedup means no duplicates even though 'db' reachable twice *)
  let ids = List.map (fun (n : Cocache.Conode.t) -> n.Cocache.Conode.id) skills in
  Alcotest.(check int) "distinct" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_update_writeback () =
  let db = org_db () in
  let ws = load_workspace db in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  Ws.update ws anna [ ("sal", vi 150) ];
  let sqls = Cocache.Update.flush db ast ws in
  Alcotest.(check int) "one statement" 1 (List.length sqls);
  check_rows "salary written back" (rows_of_ints [ [ 150 ] ])
    (Engine.Database.query_rows db "SELECT sal FROM emp WHERE eno = 10")

let test_insert_delete_writeback () =
  let db = org_db () in
  let ws = load_workspace db in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  ignore (Ws.insert ws "xemp" [ vi 99; vs "zoe"; vi 70; vi 2 ]);
  let carol =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "carol")
      (Ws.nodes ws "xemp")
  in
  Ws.delete ws carol;
  ignore (Cocache.Update.flush db ast ws);
  check_rows "insert + delete applied"
    [ row [ vs "zoe" ] ]
    (Engine.Database.query_rows db
       "SELECT ename FROM emp WHERE eno = 99 OR eno = 12")

let test_connect_disconnect_fk () =
  let db = org_db () in
  let ws = load_workspace db in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  let dbdept =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "dname") = "db")
      (Ws.nodes ws "xdept")
  in
  let ben =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "ben")
      (Ws.nodes ws "xemp")
  in
  (* move ben from tools to db: disconnect then connect *)
  let tools = List.hd (Cocache.Conode.parents ben ~rel:"employment") in
  Ws.disconnect ws ~rel:"employment" tools ben;
  ignore (Ws.connect ws ~rel:"employment" dbdept ben);
  let sqls = Cocache.Update.flush db ast ws in
  Alcotest.(check int) "two updates" 2 (List.length sqls);
  check_rows "fk updated" (rows_of_ints [ [ 2 ] ])
    (Engine.Database.query_rows db "SELECT edno FROM emp WHERE eno = 11");
  (* cache topology reflects the change *)
  Alcotest.(check int) "ben under db dept" 2
    (List.length (Cocache.Conode.children dbdept ~rel:"employment"))

let test_connect_disconnect_connect_table () =
  let db = org_db () in
  let ws = load_workspace db in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  let ui =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "sname") = "ui")
      (Ws.nodes ws "xskills")
  in
  ignore (Ws.connect ws ~rel:"empproperty" anna ui);
  let sqls = Cocache.Update.flush db ast ws in
  Alcotest.(check bool) "insert into connect table" true
    (match sqls with
    | [ s ] ->
      String.length s >= 21 && String.sub s 0 21 = "INSERT INTO empskills"
    | _ -> false);
  check_rows "mapping row added" (rows_of_ints [ [ 10; 33 ] ])
    (Engine.Database.query_rows db
       "SELECT eseno, essno FROM empskills WHERE eseno = 10 AND essno = 33");
  (* and back out *)
  Ws.disconnect ws ~rel:"empproperty" anna ui;
  ignore (Cocache.Update.flush db ast ws);
  check_rows "mapping row removed" []
    (Engine.Database.query_rows db
       "SELECT eseno FROM empskills WHERE eseno = 10 AND essno = 33")

let test_persistence_roundtrip () =
  let db = org_db () in
  let ws = load_workspace db in
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  Ws.update ws anna [ ("sal", vi 175) ];
  let path = Filename.temp_file "xnfcache" ".bin" in
  Cocache.Persist.save ws path;
  let ws' = Cocache.Persist.load path in
  Sys.remove path;
  Alcotest.(check int) "nodes preserved" (Ws.size ws) (Ws.size ws');
  Alcotest.(check int) "connections preserved" (Ws.connection_count ws)
    (Ws.connection_count ws');
  Alcotest.(check int) "pending ops preserved" 1
    (List.length (Ws.pending_ops ws'));
  (* the pending update still flushes after reload *)
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  ignore (Cocache.Update.flush db ast ws');
  check_rows "flushed after reload" (rows_of_ints [ [ 175 ] ])
    (Engine.Database.query_rows db "SELECT sal FROM emp WHERE eno = 10")

let test_typed_binding () =
  let db = org_db () in
  let ws = load_workspace db in
  let module Emp = struct
    type t = { eno : int; ename : string; sal : int; edno : int }

    let component = "xemp"

    let of_row (r : Relcore.Value.t array) =
      {
        eno = Relcore.Value.as_int r.(0);
        ename = Relcore.Value.as_string r.(1);
        sal = Relcore.Value.as_int r.(2);
        edno = Relcore.Value.as_int r.(3);
      }

    let to_row v =
      [|
        Relcore.Value.Int v.eno;
        Relcore.Value.Str v.ename;
        Relcore.Value.Int v.sal;
        Relcore.Value.Int v.edno;
      |]
  end in
  let module Skill = struct
    type t = { sno : int; sname : string }

    let component = "xskills"

    let of_row (r : Relcore.Value.t array) =
      { sno = Relcore.Value.as_int r.(0); sname = Relcore.Value.as_string r.(1) }

    let to_row v = [| Relcore.Value.Int v.sno; Relcore.Value.Str v.sname |]
  end in
  let module Emps = Cocache.Binding.Make (Emp) in
  let emps = Emps.all ws in
  Alcotest.(check int) "typed container" 3 (List.length emps);
  let anna = Option.get (Emps.find ws (fun e -> e.Emp.ename = "anna")) in
  Alcotest.(check int) "typed field" 100 anna.Emp.sal;
  let skills =
    Emps.children ws (module Skill) ~rel:"empproperty" anna
    |> List.map (fun s -> s.Skill.sname)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "typed navigation" [ "db"; "ml" ] skills

let test_non_updatable_rejected () =
  let db = org_db () in
  let text =
    "OUT OF xd AS (SELECT dno, COUNT(*) AS n FROM DEPT, EMP WHERE dno = \
     edno GROUP BY dno) TAKE *"
  in
  let ws = Ws.of_stream (Xnf.Xnf_compile.run db text) in
  let ast = Xnf.Xnf_parser.parse text in
  let n = List.hd (Ws.nodes ws "xd") in
  Ws.update ws n [ ("n", vi 0) ];
  Alcotest.(check bool) "flush rejects aggregate view" true
    (try
       ignore (Cocache.Update.flush db ast ws);
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let suite =
  [
    Alcotest.test_case "workspace build" `Quick test_build;
    Alcotest.test_case "independent cursor" `Quick test_independent_cursor;
    Alcotest.test_case "dependent cursor" `Quick test_dependent_cursor;
    Alcotest.test_case "cursor reset/count" `Quick test_cursor_reset_count;
    Alcotest.test_case "path expressions" `Quick test_path_expressions;
    Alcotest.test_case "update write-back" `Quick test_update_writeback;
    Alcotest.test_case "insert/delete write-back" `Quick
      test_insert_delete_writeback;
    Alcotest.test_case "connect/disconnect via fk" `Quick
      test_connect_disconnect_fk;
    Alcotest.test_case "connect/disconnect via connect table" `Quick
      test_connect_disconnect_connect_table;
    Alcotest.test_case "persistence roundtrip" `Quick test_persistence_roundtrip;
    Alcotest.test_case "typed binding" `Quick test_typed_binding;
    Alcotest.test_case "non-updatable view rejected" `Quick
      test_non_updatable_rejected;
  ]

let test_atomic_flush_rolls_back () =
  let db = org_db () in
  let ws = load_workspace db in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  (* a good op followed by one violating the primary key *)
  Ws.update ws anna [ ("sal", vi 1) ];
  ignore (Ws.insert ws "xemp" [ vi 10; vs "dup-pk"; vi 1; vi 1 ]);
  Alcotest.(check bool) "flush fails" true
    (try
       ignore (Cocache.Update.flush_atomic db ast ws);
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Constraint_error, _) -> true);
  (* the first statement was rolled back with the failed one *)
  check_rows "no partial write-back" (rows_of_ints [ [ 100 ] ])
    (Engine.Database.query_rows db "SELECT sal FROM emp WHERE eno = 10");
  Alcotest.(check int) "pending preserved for retry" 2
    (List.length (Ws.pending_ops ws))

let suite =
  suite
  @ [
      Alcotest.test_case "atomic flush rollback" `Quick
        test_atomic_flush_rolls_back;
    ]

let test_path_errors () =
  let db = org_db () in
  let ws = load_workspace db in
  let bad path =
    Alcotest.(check bool)
      (Printf.sprintf "reject %S" path)
      true
      (try
         ignore (Cocache.Path.eval ws path);
         false
       with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)
  in
  bad "";
  bad "nosuch.xemp";
  bad "employment.xemp" (* must start at a node *);
  bad "xdept.nosuch";
  bad "xdept.xskills" (* no direct relationship *);
  bad "xdept.employment" (* rel must be followed by a node *)

let test_conode_rels_and_positions () =
  let db = org_db () in
  let ws = load_workspace db in
  let tools =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "dname") = "tools")
      (Ws.nodes ws "xdept")
  in
  Alcotest.(check (list string)) "out rels" [ "employment"; "ownership" ]
    (Cocache.Conode.out_rels tools);
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  Alcotest.(check (list string)) "in rels" [ "employment" ]
    (Cocache.Conode.in_rels anna);
  (* positional dependent cursor on a binary relationship = position 0 *)
  let c0 = Cur.open_children ~position:0 tools ~rel:"employment" in
  Alcotest.(check int) "position 0" 2 (Cur.count c0)

let test_find_comp_unknown () =
  let db = org_db () in
  let stream = Xnf.Xnf_compile.run db deps_arc_text in
  Alcotest.(check bool) "unknown component" true
    (try
       ignore (H.find_comp stream.H.header "nosuch");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let test_corrupt_cache_file_rejected () =
  let file = Filename.temp_file "bad_cache" ".xnf" in
  let oc = open_out file in
  output_string oc "not a cache";
  close_out oc;
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Cocache.Persist.load file);
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Execution_error, _) -> true);
  Sys.remove file

let suite =
  suite
  @ [
      Alcotest.test_case "path errors" `Quick test_path_errors;
      Alcotest.test_case "conode rels/positions" `Quick
        test_conode_rels_and_positions;
      Alcotest.test_case "find_comp unknown" `Quick test_find_comp_unknown;
      Alcotest.test_case "corrupt cache rejected" `Quick
        test_corrupt_cache_file_rejected;
    ]

let test_delete_removes_connections () =
  let db = org_db () in
  let ws = load_workspace db in
  let before = Ws.connection_count ws in
  ignore before;
  let anna =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "ename") = "anna")
      (Ws.nodes ws "xemp")
  in
  let tools = List.hd (Cocache.Conode.parents anna ~rel:"employment") in
  let tools_emps_before =
    List.length (Cocache.Conode.children tools ~rel:"employment")
  in
  Ws.delete ws anna;
  Alcotest.(check int) "parent lost a child" (tools_emps_before - 1)
    (List.length (Cocache.Conode.children tools ~rel:"employment"));
  Alcotest.(check int) "node count dropped" 2 (Ws.node_count ws "xemp")

let test_insert_connect_flush_order () =
  let db = org_db () in
  let ws = load_workspace db in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  let zoe = Ws.insert ws "xemp" [ vi 88; vs "zoe"; vi 70; vnull ] in
  let tools =
    List.find
      (fun n -> Relcore.Value.to_string (Ws.get ws n "dname") = "tools")
      (Ws.nodes ws "xdept")
  in
  ignore (Ws.connect ws ~rel:"employment" tools zoe);
  let sqls = Cocache.Update.flush_atomic db ast ws in
  Alcotest.(check int) "two statements in order" 2 (List.length sqls);
  check_rows "inserted then connected" (rows_of_ints [ [ 88; 1 ] ])
    (Engine.Database.query_rows db "SELECT eno, edno FROM emp WHERE eno = 88")

let test_get_unknown_column () =
  let db = org_db () in
  let ws = load_workspace db in
  let n = List.hd (Ws.nodes ws "xemp") in
  Alcotest.(check bool) "unknown column" true
    (try
       ignore (Ws.get ws n "nosuch");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let test_binding_insert_roundtrip () =
  let db = org_db () in
  let ws = load_workspace db in
  let module Emp = struct
    type t = { eno : int; ename : string; sal : int; edno : int }

    let component = "xemp"

    let of_row (r : Relcore.Value.t array) =
      {
        eno = Relcore.Value.as_int r.(0);
        ename = Relcore.Value.as_string r.(1);
        sal = Relcore.Value.as_int r.(2);
        edno = Relcore.Value.as_int r.(3);
      }

    let to_row v =
      [|
        Relcore.Value.Int v.eno; Relcore.Value.Str v.ename;
        Relcore.Value.Int v.sal; Relcore.Value.Int v.edno;
      |]
  end in
  let module Emps = Cocache.Binding.Make (Emp) in
  ignore (Emps.insert ws { Emp.eno = 77; ename = "gil"; sal = 60; edno = 1 });
  Alcotest.(check int) "typed insert visible" 4 (Emps.count ws);
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  ignore (Cocache.Update.flush db ast ws);
  check_rows "typed insert flushed" [ row [ vs "gil" ] ]
    (Engine.Database.query_rows db "SELECT ename FROM emp WHERE eno = 77")

let suite =
  suite
  @ [
      Alcotest.test_case "delete removes connections" `Quick
        test_delete_removes_connections;
      Alcotest.test_case "insert+connect flush order" `Quick
        test_insert_connect_flush_order;
      Alcotest.test_case "get unknown column" `Quick test_get_unknown_column;
      Alcotest.test_case "binding insert roundtrip" `Quick
        test_binding_insert_roundtrip;
    ]
