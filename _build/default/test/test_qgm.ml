(** QGM construction, rewrite rules and operation counting. *)

open Helpers
module Qgm = Starq.Qgm
module Db = Engine.Database

let build db sql =
  Starq.Build.build_query (Db.catalog db) (Sqlkit.Parser.parse_query_string sql)

let rewrite g = Starq.Engine.rewrite_graph g

let count_kind g kind =
  List.length
    (List.filter (fun b -> b.Qgm.kind = kind) (Qgm.reachable_boxes [ g.Qgm.top ]))

let count_equants g =
  List.fold_left
    (fun acc b ->
      acc + List.length (List.filter (fun q -> q.Qgm.qkind = Qgm.E) b.Qgm.quants))
    0
    (Qgm.reachable_boxes [ g.Qgm.top ])

let test_build_shape () =
  let db = org_db () in
  let g = build db "SELECT e.eno FROM emp e, dept d WHERE e.edno = d.dno" in
  Alcotest.(check int) "one select box" 1 (count_kind g Qgm.Select);
  Alcotest.(check int) "two quants" 2 (List.length g.Qgm.top.Qgm.quants);
  Alcotest.(check int) "one pred" 1 (List.length g.Qgm.top.Qgm.preds)

let test_exists_becomes_e_quant () =
  let db = org_db () in
  let g =
    build db
      "SELECT eno FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.dno \
       = e.edno)"
  in
  Alcotest.(check int) "E quant before rewrite" 1 (count_equants g);
  ignore (rewrite g);
  Alcotest.(check int) "no E quant after rewrite" 0 (count_equants g)

let test_or_exists_stays_predicate () =
  let db = org_db () in
  let g =
    build db
      "SELECT sno FROM skills s WHERE EXISTS (SELECT 1 FROM empskills es \
       WHERE es.essno = s.sno) OR sno = 0"
  in
  Alcotest.(check int) "no E quant (under OR)" 0 (count_equants g);
  let has_bexists =
    List.exists
      (fun b ->
        List.exists
          (fun p -> Qgm.pred_subqueries p <> [])
          b.Qgm.preds)
      (Qgm.reachable_boxes [ g.Qgm.top ])
  in
  Alcotest.(check bool) "predicate-level subquery" true has_bexists

let test_e_to_f_produces_distinct_keys () =
  let db = org_db () in
  let g =
    build db
      "SELECT eno FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.loc \
       = 'ARC' AND d.dno = e.edno)"
  in
  let stats = rewrite g in
  Alcotest.(check bool) "e_to_f fired" true
    (List.mem_assoc "e_to_f_conversion" stats);
  (* semantics: the rewritten query must not duplicate employees even if
     several ARC departments existed with the same dno (impossible here,
     but the distinct key box guarantees it structurally) *)
  let has_distinct =
    List.exists (fun b -> b.Qgm.distinct) (Qgm.reachable_boxes [ g.Qgm.top ])
  in
  Alcotest.(check bool) "distinct key box present" true has_distinct

let test_select_merge_collapses_derived () =
  let db = org_db () in
  let g =
    build db "SELECT a.eno FROM (SELECT eno FROM emp WHERE sal > 0) AS a"
  in
  let before = List.length (Qgm.reachable_boxes [ g.Qgm.top ]) in
  let stats = rewrite g in
  let after = List.length (Qgm.reachable_boxes [ g.Qgm.top ]) in
  Alcotest.(check bool) "select_merge fired" true
    (List.mem_assoc "select_merge" stats);
  Alcotest.(check bool) "fewer boxes" true (after < before)

let test_constant_folding () =
  let db = org_db () in
  let g = build db "SELECT eno FROM emp WHERE 1 = 1 AND 2 + 3 = 5" in
  ignore (rewrite g);
  Alcotest.(check int) "all constant preds eliminated" 0
    (List.length g.Qgm.top.Qgm.preds)

let test_rewrite_ablation_flag () =
  let db = org_db () in
  let sql =
    "SELECT eno FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.dno = \
     e.edno)"
  in
  let naive = Db.compile_query ~rewrite:false db sql in
  let fast = Db.compile_query ~rewrite:true db sql in
  (* the naive plan interprets the existential per tuple *)
  let rec has_exists (p : Optimizer.Plan.t) =
    match p with
    | Optimizer.Plan.Filter (i, pred) -> pred_has pred || has_exists i
    | Optimizer.Plan.Scan _ | Optimizer.Plan.Values _ -> false
    | Optimizer.Plan.Project (i, _)
    | Optimizer.Plan.Distinct i
    | Optimizer.Plan.Sort (i, _)
    | Optimizer.Plan.Limit (i, _)
    | Optimizer.Plan.Shared (_, i) ->
      has_exists i
    | Optimizer.Plan.Nl_join { outer; inner; _ } ->
      has_exists outer || has_exists inner
    | Optimizer.Plan.Hash_join { build; probe; _ } ->
      has_exists build || has_exists probe
    | Optimizer.Plan.Index_join { outer; _ } -> has_exists outer
    | Optimizer.Plan.Merge_join { left; right; _ } ->
      has_exists left || has_exists right
    | Optimizer.Plan.Aggregate { input; _ } -> has_exists input
    | Optimizer.Plan.Union_all is -> List.exists has_exists is
  and pred_has = function
    | Optimizer.Plan.P_exists _ | Optimizer.Plan.P_in _ -> true
    | Optimizer.Plan.P_and (a, b) | Optimizer.Plan.P_or (a, b) ->
      pred_has a || pred_has b
    | Optimizer.Plan.P_not a -> pred_has a
    | _ -> false
  in
  Alcotest.(check bool) "naive keeps subquery probe" true
    (has_exists naive.Optimizer.Plan.plan);
  Alcotest.(check bool) "rewrite removes it" false
    (has_exists fast.Optimizer.Plan.plan)

let test_opcount_table1 () =
  (* lock in the Table-1 reproduction: totals must match the paper *)
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 5 } in
  let ast = Xnf.Xnf_parser.parse Workloads.Org.deps_arc_query in
  let reorder order rows = List.map (fun n -> (n, List.assoc n rows)) order in
  let sql_rows =
    Starq.Opcount.analyze
      (Xnf.Sql_derivation.component_graphs db ast
      |> reorder Workloads.Org.table1_order)
  in
  let compiled = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let xnf_rows =
    Starq.Opcount.analyze
      (Xnf.Xnf_rewrite.output_boxes compiled.Xnf.Xnf_compile.rewritten
      |> List.map (fun (n, b) -> (n, [ b ]))
      |> reorder Workloads.Org.table1_order)
  in
  Alcotest.(check int) "SQL total ops (paper: 23)" 23
    (Starq.Opcount.total sql_rows);
  Alcotest.(check int) "SQL replicated ops (paper: 16)" 16
    (Starq.Opcount.total_replicated sql_rows);
  Alcotest.(check int) "XNF total ops (paper: 7)" 7
    (Starq.Opcount.total xnf_rows);
  Alcotest.(check int) "XNF replicated ops" 0
    (Starq.Opcount.total_replicated xnf_rows);
  (* the XNF per-component column matches the paper exactly *)
  Alcotest.(check (list (pair string int)))
    "XNF ops per component"
    [
      ("xdept", 1); ("xemp", 1); ("xproj", 1); ("employment", 0);
      ("ownership", 0); ("xskills", 4); ("empproperty", 0); ("projproperty", 0);
    ]
    (List.map
       (fun (r : Starq.Opcount.row) -> (r.Starq.Opcount.component, r.Starq.Opcount.ops))
       xnf_rows)

let test_dump_readable () =
  let db = org_db () in
  let g = build db "SELECT eno FROM emp WHERE sal > 10" in
  let dump = Qgm.dump_graph g in
  Alcotest.(check bool) "mentions base table" true
    (let has s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has dump "Base(emp)")

let suite =
  [
    Alcotest.test_case "build shape" `Quick test_build_shape;
    Alcotest.test_case "exists -> E quant" `Quick test_exists_becomes_e_quant;
    Alcotest.test_case "or-exists stays predicate" `Quick
      test_or_exists_stays_predicate;
    Alcotest.test_case "e_to_f distinct keys" `Quick
      test_e_to_f_produces_distinct_keys;
    Alcotest.test_case "select merge" `Quick test_select_merge_collapses_derived;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "rewrite ablation flag" `Quick test_rewrite_ablation_flag;
    Alcotest.test_case "opcount reproduces Table 1" `Quick test_opcount_table1;
    Alcotest.test_case "qgm dump" `Quick test_dump_readable;
  ]

let test_opcount_describe () =
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 5 } in
  let compiled = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let descrs =
    Starq.Opcount.describe
      (Xnf.Xnf_rewrite.output_boxes compiled.Xnf.Xnf_compile.rewritten
      |> List.map (fun (n, b) -> (n, [ b ])))
  in
  (* the xdept derivation is one selection; relationship outputs add no
     new operations (shared boxes visited earlier) *)
  Alcotest.(check int) "xdept one op" 1 (List.length (List.assoc "xdept" descrs));
  Alcotest.(check int) "employment piggy-backed" 0
    (List.length (List.assoc "employment" descrs));
  List.iter
    (fun d ->
      Alcotest.(check bool) "descriptor names a kind" true
        (String.length d > 4
        && (String.sub d 0 3 = "sel" || String.sub d 0 4 = "join"
          || String.sub d 0 4 = "semi")))
    (List.concat_map snd descrs)

let test_rule_engine_budget () =
  (* a rule that always reports change must stop at the budget *)
  let fired = ref 0 in
  let noisy =
    {
      Starq.Engine.rule_name = "noisy";
      apply =
        (fun _ ->
          incr fired;
          true);
    }
  in
  let db = org_db () in
  let g = build db "SELECT eno FROM emp" in
  let stats = Starq.Engine.run ~rules:[ noisy ] ~budget:7 [ g.Qgm.top ] in
  Alcotest.(check int) "stopped at budget" 7 !fired;
  Alcotest.(check (option int)) "stats recorded" (Some 7)
    (List.assoc_opt "noisy" stats)

let suite =
  suite
  @ [
      Alcotest.test_case "opcount describe" `Quick test_opcount_describe;
      Alcotest.test_case "rule engine budget" `Quick test_rule_engine_budget;
    ]
