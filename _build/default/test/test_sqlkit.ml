(** Lexer / parser / pretty-printer tests for the SQL front end. *)

open Sqlkit

let tokens_of s =
  Array.to_list (Lexer.tokenize s) |> List.map (fun t -> t.Token.token)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 7
    (List.length (tokens_of "SELECT a FROM t WHERE b"));
  (* includes Eof *)
  match tokens_of "x <= 3.5 <> 'o''k' -- comment\n y" with
  | [ Token.Ident "x"; Token.Punct "<="; Token.Float_lit f; Token.Punct "<>";
      Token.Str_lit s; Token.Ident "y"; Token.Eof ] ->
    Alcotest.(check (float 0.001)) "float" 3.5 f;
    Alcotest.(check string) "escaped quote" "o'k" s
  | ts ->
    Alcotest.failf "unexpected tokens: %s"
      (String.concat " " (List.map Token.to_string ts))

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Lexer.tokenize "SELECT 'oops");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Parse_error _, _) -> true);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "SELECT @");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Parse_error _, _) -> true)

let parse_q = Parser.parse_query_string

let test_parse_select_shapes () =
  let q = parse_q "SELECT DISTINCT a, t.b AS x, t.* FROM t, u v WHERE a = 1" in
  Alcotest.(check bool) "distinct" true q.Ast.distinct;
  Alcotest.(check int) "select items" 3 (List.length q.Ast.select);
  Alcotest.(check int) "from items" 2 (List.length q.Ast.from);
  match q.Ast.from with
  | [ Ast.Table_name { name = "t"; alias = None };
      Ast.Table_name { name = "u"; alias = Some "v" } ] ->
    ()
  | _ -> Alcotest.fail "from shape"

let test_parse_precedence () =
  let q = parse_q "SELECT a + b * 2 - c FROM t" in
  match q.Ast.select with
  | [ Ast.Sel_expr
        ( Ast.Binop
            ( Ast.Sub,
              Ast.Binop (Ast.Add, Ast.Col _, Ast.Binop (Ast.Mul, Ast.Col _, _)),
              Ast.Col _ ),
          None ) ] ->
    ()
  | _ -> Alcotest.fail "arith precedence"

let test_parse_pred_precedence () =
  let p = Parser.parse_pred_string "a = 1 OR b = 2 AND NOT c = 3" in
  match p with
  | Ast.Or (Ast.Cmp _, Ast.And (Ast.Cmp _, Ast.Not (Ast.Cmp _))) -> ()
  | _ -> Alcotest.fail "bool precedence (OR < AND < NOT)"

let test_parse_subqueries () =
  let q =
    parse_q
      "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a) AND b \
       IN (SELECT y FROM w)"
  in
  match Ast.conjuncts q.Ast.where with
  | [ Ast.Exists _; Ast.In_query _ ] -> ()
  | _ -> Alcotest.fail "subquery shapes"

let test_parse_between_like_in () =
  let p =
    Parser.parse_pred_string
      "a BETWEEN 1 AND 5 AND name LIKE 'ab%' AND k IN (1, 2, 3) AND v IS NOT \
       NULL"
  in
  Alcotest.(check int) "conjuncts" 4 (List.length (Ast.conjuncts p))

let test_parse_group_order () =
  let q =
    parse_q
      "SELECT dno, COUNT(*) FROM emp GROUP BY dno HAVING COUNT(*) > 2 ORDER \
       BY dno DESC LIMIT 5"
  in
  Alcotest.(check int) "group by" 1 (List.length q.Ast.group_by);
  Alcotest.(check bool) "having" true (q.Ast.having <> None);
  Alcotest.(check int) "order by" 1 (List.length q.Ast.order_by);
  Alcotest.(check (option int)) "limit" (Some 5) q.Ast.limit

let test_parse_stmts () =
  (match Parser.parse_stmt "CREATE TABLE t (a INT NOT NULL, b STRING, PRIMARY KEY (a))" with
  | Ast.Create_table { columns = [ c1; _ ]; primary_key = Some [ "a" ]; _ } ->
    Alcotest.(check bool) "not null" false c1.Ast.col_nullable
  | _ -> Alcotest.fail "create table");
  (match Parser.parse_stmt "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Ast.Insert { rows; columns = Some [ "a"; "b" ]; _ } ->
    Alcotest.(check int) "rows" 2 (List.length rows)
  | _ -> Alcotest.fail "insert");
  (match Parser.parse_stmt "UPDATE t SET a = a + 1 WHERE b = 'x'" with
  | Ast.Update { sets = [ ("a", _) ]; _ } -> ()
  | _ -> Alcotest.fail "update");
  match Parser.parse_stmt "CREATE VIEW v AS SELECT * FROM t" with
  | Ast.Create_view { view_name = "v"; body_text } ->
    Alcotest.(check string) "body preserved" "SELECT * FROM t" body_text
  | _ -> Alcotest.fail "create view"

let test_parse_errors () =
  let bad sql =
    Alcotest.(check bool)
      (Printf.sprintf "reject %S" sql)
      true
      (try
         ignore (Parser.parse_stmt sql);
         false
       with Relcore.Errors.Db_error (Relcore.Errors.Parse_error _, _) -> true)
  in
  bad "SELECT a FROM t WHERE (b = 1";
  bad "SELECT a FROM";
  bad "SELECT a FROM t WHERE";
  bad "SELECT a FROM t GROUP";
  bad "INSERT INTO t VALUES";
  bad "SELECT a FROM t extra garbage here"

let test_pretty_roundtrip () =
  let cases =
    [
      "SELECT DISTINCT a, b FROM t WHERE (a = 1 AND b < 2) OR c IS NULL";
      "SELECT t.a FROM t, u WHERE t.x = u.y AND u.z BETWEEN 1 AND 9";
      "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)";
      "SELECT dno, SUM(sal) FROM emp GROUP BY dno HAVING SUM(sal) > 10";
      "SELECT a FROM (SELECT a FROM t WHERE a > 0) AS s ORDER BY a DESC LIMIT 3";
    ]
  in
  List.iter
    (fun sql ->
      let q1 = parse_q sql in
      let printed = Pretty.query_to_string q1 in
      let q2 = parse_q printed in
      let printed2 = Pretty.query_to_string q2 in
      Alcotest.(check string)
        (Printf.sprintf "fixpoint for %S" sql)
        printed printed2)
    cases

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "select shapes" `Quick test_parse_select_shapes;
    Alcotest.test_case "arith precedence" `Quick test_parse_precedence;
    Alcotest.test_case "bool precedence" `Quick test_parse_pred_precedence;
    Alcotest.test_case "subqueries" `Quick test_parse_subqueries;
    Alcotest.test_case "between/like/in" `Quick test_parse_between_like_in;
    Alcotest.test_case "group/order/limit" `Quick test_parse_group_order;
    Alcotest.test_case "statements" `Quick test_parse_stmts;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
  ]
