(** XNF compiler and extraction tests, centred on the paper's running
    example (Fig. 1 deps_ARC) and its stated semantics: reachability,
    object sharing, TAKE projection, recursion, and sharing (CSE). *)

open Helpers
module H = Xnf.Hetstream

let deps_arc_text =
  "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),\n\
  \       xemp AS EMP,\n\
  \       xproj AS PROJ,\n\
  \       xskills AS SKILLS,\n\
  \       employment AS (RELATE xdept VIA EMPLOYS, xemp\n\
  \                      WHERE xdept.dno = xemp.edno),\n\
  \       ownership AS (RELATE xdept VIA HAS, xproj\n\
  \                     WHERE xdept.dno = xproj.pdno),\n\
  \       empproperty AS (RELATE xemp VIA POSSESSES, xskills\n\
  \                       USING EMPSKILLS es\n\
  \                       WHERE xemp.eno = es.eseno AND es.essno = \
   xskills.sno),\n\
  \       projproperty AS (RELATE xproj VIA NEEDS, xskills\n\
  \                        USING PROJSKILLS ps\n\
  \                        WHERE xproj.pno = ps.pspno AND ps.pssno = \
   xskills.sno)\n\
   TAKE *"

let extract_counts ?share db text =
  let stream = Xnf.Xnf_compile.run ?share db text in
  H.counts stream

let test_parse () =
  let q = Xnf.Xnf_parser.parse deps_arc_text in
  Alcotest.(check int) "tables" 4 (List.length q.Xnf.Xnf_ast.tables);
  Alcotest.(check int) "relates" 4 (List.length q.Xnf.Xnf_ast.relates);
  Alcotest.(check (list string)) "roots" [ "xdept" ] (Xnf.Xnf_ast.roots q);
  Alcotest.(check bool) "not recursive" false (Xnf.Xnf_ast.is_recursive q)

let test_deps_arc_counts () =
  let db = org_db () in
  let counts = extract_counts db deps_arc_text in
  (* departments at ARC: d1 d2; their emps: anna ben carol; projects p1 p2;
     reachable skills: ml db ui hw (os unreachable) *)
  Alcotest.(check (list (pair string int)))
    "component cardinalities"
    [
      ("xdept", 2);
      ("xemp", 3);
      ("xproj", 2);
      ("xskills", 4);
      ("employment", 3);
      ("ownership", 2);
      ("empproperty", 4);
      ("projproperty", 3);
    ]
    counts

let test_reachability_excludes_s2 () =
  let db = org_db () in
  let stream = Xnf.Xnf_compile.run db deps_arc_text in
  let skills_info = H.find_comp stream.H.header "xskills" in
  let skill_names =
    List.filter_map
      (function
        | H.Row { comp; values; _ } when comp = skills_info.H.comp_no ->
          Some (Relcore.Value.to_string values.(1))
        | _ -> None)
      stream.H.items
    |> List.sort compare
  in
  Alcotest.(check (list string)) "only reachable skills"
    [ "db"; "hw"; "ml"; "ui" ] skill_names

let test_object_sharing () =
  (* skill 'db' (31) is possessed by anna and ben and needed by p1: one
     tuple, multiple connections *)
  let db = org_db () in
  let stream = Xnf.Xnf_compile.run db deps_arc_text in
  let skills_info = H.find_comp stream.H.header "xskills" in
  let db_skill_ids =
    List.filter_map
      (function
        | H.Row { comp; id; values } when comp = skills_info.H.comp_no ->
          if Relcore.Value.to_string values.(1) = "db" then Some id else None
        | _ -> None)
      stream.H.items
  in
  Alcotest.(check int) "db skill appears once" 1 (List.length db_skill_ids);
  let db_id = List.hd db_skill_ids in
  let empprop = H.find_comp stream.H.header "empproperty" in
  let projprop = H.find_comp stream.H.header "projproperty" in
  let conns_to_db =
    List.filter
      (function
        | H.Conn { rel; children; _ } when rel = empprop.H.comp_no || rel = projprop.H.comp_no ->
          Array.exists (fun c -> c = db_id) children
        | _ -> false)
      stream.H.items
  in
  (* anna possesses db, ben possesses db, p1 needs db *)
  Alcotest.(check int) "three connections to shared skill" 3
    (List.length conns_to_db)

let test_connection_ids_resolve () =
  let db = org_db () in
  let stream = Xnf.Xnf_compile.run db deps_arc_text in
  let row_ids =
    List.filter_map
      (function H.Row { id; _ } -> Some id | H.Conn _ -> None)
      stream.H.items
  in
  List.iter
    (function
      | H.Conn { parent; children; _ } ->
        Alcotest.(check bool) "parent id resolves" true (List.mem parent row_ids);
        Array.iter
          (fun c ->
            Alcotest.(check bool) "child id resolves" true (List.mem c row_ids))
          children
      | H.Row _ -> ())
    stream.H.items

let test_take_projection () =
  let db = org_db () in
  let text =
    "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),\n\
    \       xemp AS EMP,\n\
    \       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = \
     xemp.edno)\n\
     TAKE xdept(dname), employment"
  in
  let stream = Xnf.Xnf_compile.run db text in
  let counts = H.counts stream in
  Alcotest.(check (list (pair string int)))
    "xemp rows suppressed, connections kept"
    [ ("xdept", 2); ("xemp", 0); ("employment", 3) ]
    counts;
  let xdept = H.find_comp stream.H.header "xdept" in
  Alcotest.(check (option (list string))) "projection recorded"
    (Some [ "dname" ]) xdept.H.take_cols

let test_share_vs_noshare_same_result () =
  let db = org_db () in
  let a = extract_counts ~share:true db deps_arc_text in
  let b = extract_counts ~share:false db deps_arc_text in
  Alcotest.(check (list (pair string int))) "sharing preserves semantics" a b

let test_serialization_roundtrip () =
  let db = org_db () in
  let stream = Xnf.Xnf_compile.run db deps_arc_text in
  let data = H.serialize stream in
  let stream' = H.deserialize data in
  Alcotest.(check int) "item count" (H.total_items stream) (H.total_items stream');
  Alcotest.(check (list (pair string int))) "counts" (H.counts stream)
    (H.counts stream')

let test_recursive_bom () =
  (* a recursive CO: assemblies containing sub-assemblies *)
  let db = Engine.Database.create () in
  List.iter
    (fun s -> ignore (Engine.Database.exec db s))
    [
      "CREATE TABLE part (pid INT NOT NULL, pname STRING, PRIMARY KEY (pid))";
      "CREATE TABLE contains (parent INT NOT NULL, child INT NOT NULL, qty INT)";
      "INSERT INTO part VALUES (1, 'engine'), (2, 'piston'), (3, 'ring'), (4, \
       'bolt'), (5, 'unrelated')";
      "INSERT INTO contains VALUES (1, 2, 4), (2, 3, 2), (2, 4, 8), (3, 4, 1)";
    ];
  let text =
    "OUT OF root AS (SELECT * FROM part WHERE pid = 1),\n\
    \       xpart AS part,\n\
    \       top AS (RELATE root VIA CONTAINS, xpart USING contains c WHERE \
     root.pid = c.parent AND c.child = xpart.pid),\n\
    \       sub AS (RELATE xpart VIA ASM, xpart USING contains c WHERE \
     asm.pid = c.parent AND c.child = xpart.pid)\n\
     TAKE *"
  in
  let q = Xnf.Xnf_parser.parse text in
  Alcotest.(check bool) "recursive" true (Xnf.Xnf_ast.is_recursive q);
  let stream = Xnf.Xnf_compile.run db text in
  let counts = H.counts stream in
  (* reachable parts: 2,3,4; root: 1. 'unrelated' (5) excluded *)
  Alcotest.(check (list (pair string int)))
    "fixpoint cardinalities"
    [ ("root", 1); ("xpart", 3); ("top", 1); ("sub", 3) ]
    counts

let test_nary_relationship () =
  let db = org_db () in
  (* ternary: a department with one of its employees and one of its
     projects when the employee has a skill the project needs *)
  let text =
    "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),\n\
    \       xemp AS EMP,\n\
    \       xproj AS PROJ,\n\
    \       staffing AS (RELATE xdept VIA STAFFS, xemp, xproj\n\
    \                    USING EMPSKILLS es, PROJSKILLS ps\n\
    \                    WHERE xdept.dno = xemp.edno AND xdept.dno = \
     xproj.pdno AND xemp.eno = es.eseno AND xproj.pno = ps.pspno AND \
     es.essno = ps.pssno)\n\
     TAKE *"
  in
  let stream = Xnf.Xnf_compile.run db text in
  let counts = H.counts stream in
  (* matches: anna(db skill)-p1(needs db) in dept 1; carol(ui)-p2(needs ui)
     in dept 2 *)
  Alcotest.(check (list (pair string int)))
    "ternary connections"
    [ ("xdept", 2); ("xemp", 3); ("xproj", 2); ("staffing", 3) ]
    counts

let test_explain () =
  let db = org_db () in
  let text = Xnf.Xnf_compile.explain db deps_arc_text in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions XNF operator" true (contains text "XNF operator");
  Alcotest.(check bool) "has shared CSE nodes" true (contains text "Shared")

let test_rel_against_unknown_component () =
  let db = org_db () in
  let text =
    "OUT OF xdept AS DEPT, r AS (RELATE xdept VIA X, nosuch WHERE 1 = 1) TAKE *"
  in
  Alcotest.(check bool) "semantic error raised" true
    (try
       ignore (Xnf.Xnf_compile.compile db text);
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let suite =
  [
    Alcotest.test_case "parse deps_ARC" `Quick test_parse;
    Alcotest.test_case "deps_ARC extraction counts" `Quick test_deps_arc_counts;
    Alcotest.test_case "reachability excludes s2" `Quick
      test_reachability_excludes_s2;
    Alcotest.test_case "object sharing" `Quick test_object_sharing;
    Alcotest.test_case "connection ids resolve" `Quick test_connection_ids_resolve;
    Alcotest.test_case "take projection" `Quick test_take_projection;
    Alcotest.test_case "share ablation equivalence" `Quick
      test_share_vs_noshare_same_result;
    Alcotest.test_case "stream serialization roundtrip" `Quick
      test_serialization_roundtrip;
    Alcotest.test_case "recursive BOM fixpoint" `Quick test_recursive_bom;
    Alcotest.test_case "n-ary relationship" `Quick test_nary_relationship;
    Alcotest.test_case "xnf explain" `Quick test_explain;
    Alcotest.test_case "unknown partner rejected" `Quick
      test_rel_against_unknown_component;
  ]

(* -- view composition (model closure, Sect. 2) ------------------------- *)

let test_sql_over_xnf_component () =
  let db = org_db () in
  ignore
    (Engine.Database.exec db ("CREATE VIEW deps_arc AS " ^ deps_arc_text));
  (* plain SQL over a CO component: reachability applies (dave, dept 3,
     is not an ARC employee) *)
  let rows =
    Engine.Database.query_rows db
      "SELECT ename FROM deps_arc.xemp ORDER BY ename"
  in
  check_rows "reachable employees only"
    [ row [ vs "anna" ]; row [ vs "ben" ]; row [ vs "carol" ] ]
    rows;
  (* aggregation over a component *)
  check_rows "count reachable skills" (rows_of_ints [ [ 4 ] ])
    (Engine.Database.query_rows db "SELECT COUNT(*) FROM deps_arc.xskills")

let test_xnf_over_xnf_view () =
  let db = org_db () in
  ignore
    (Engine.Database.exec db ("CREATE VIEW deps_arc AS " ^ deps_arc_text));
  (* a second CO built from the first one's components *)
  let text =
    "OUT OF bigdept AS (SELECT * FROM deps_arc.xdept WHERE dno = 1),\n\
     staff AS (SELECT * FROM deps_arc.xemp),\n\
     works AS (RELATE bigdept VIA EMPLOYS, staff WHERE bigdept.dno = \
     staff.edno)\n\
     TAKE *"
  in
  let stream = Xnf.Xnf_compile.run db text in
  Alcotest.(check (list (pair string int)))
    "composed CO"
    [ ("bigdept", 1); ("staff", 2); ("works", 2) ]
    (H.counts stream)

let test_cyclic_view_rejected () =
  let db = org_db () in
  ignore
    (Engine.Database.exec db
       "CREATE VIEW v1 AS OUT OF a AS (SELECT * FROM v2.b) TAKE *");
  ignore
    (Engine.Database.exec db
       "CREATE VIEW v2 AS OUT OF b AS (SELECT * FROM v1.a) TAKE *");
  Alcotest.(check bool) "cycle detected" true
    (try
       ignore (Xnf.Xnf_compile.run_view db "v1");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let composition_suite =
  [
    Alcotest.test_case "sql over xnf component" `Quick test_sql_over_xnf_component;
    Alcotest.test_case "xnf over xnf view" `Quick test_xnf_over_xnf_view;
    Alcotest.test_case "cyclic views rejected" `Quick test_cyclic_view_rejected;
  ]

let suite = suite @ composition_suite

let test_parallel_extraction_equivalent () =
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 20 } in
  let c = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let seq = Xnf.Xnf_compile.extract c in
  let par = Xnf.Xnf_compile.extract_parallel ~domains:4 c in
  Alcotest.(check (list (pair string int)))
    "parallel extraction agrees with sequential" (H.counts seq) (H.counts par);
  Alcotest.(check int) "same item count" (H.total_items seq) (H.total_items par)

let suite =
  suite
  @ [
      Alcotest.test_case "parallel extraction" `Quick
        test_parallel_extraction_equivalent;
    ]

let test_aggregate_over_component_join () =
  (* regression: column pruning must not narrow a DISTINCT derivation *)
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 6 } in
  ignore
    (Engine.Database.exec db
       ("CREATE VIEW deps_arc AS " ^ Workloads.Org.deps_arc_query));
  let rows =
    Engine.Database.query_rows db
      "SELECT d.dname, COUNT(*) FROM deps_arc.xdept d, deps_arc.xemp e \
       WHERE e.edno = d.dno GROUP BY d.dname ORDER BY d.dname"
  in
  check_rows "headcount through composed components"
    [ row [ vs "dept1"; vi 10 ]; row [ vs "dept2"; vi 10 ] ]
    rows

let suite =
  suite
  @ [
      Alcotest.test_case "aggregate over composed components" `Quick
        test_aggregate_over_component_join;
    ]

let test_sql_dml_on_component () =
  (* updatable-view translation: DML against view.component *)
  let db = org_db () in
  ignore
    (Engine.Database.exec db ("CREATE VIEW deps_arc AS " ^ deps_arc_text));
  (match
     Engine.Database.exec db
       "UPDATE deps_arc.xemp SET sal = sal + 1 WHERE ename = 'anna'"
   with
  | Engine.Database.Affected 1 -> ()
  | _ -> Alcotest.fail "expected one row updated");
  check_rows "written through to base table" (rows_of_ints [ [ 101 ] ])
    (Engine.Database.query_rows db "SELECT sal FROM emp WHERE eno = 10");
  (* the view predicate is conjoined: xdept only covers ARC depts *)
  (match
     Engine.Database.exec db "UPDATE deps_arc.xdept SET dname = 'renamed'"
   with
  | Engine.Database.Affected 2 -> ()
  | Engine.Database.Affected n -> Alcotest.failf "affected %d, expected 2" n
  | _ -> Alcotest.fail "expected Affected");
  check_rows "non-ARC dept untouched" [ row [ vs "remote" ] ]
    (Engine.Database.query_rows db "SELECT dname FROM dept WHERE dno = 3");
  (* insert through the component *)
  ignore
    (Engine.Database.exec db
       "INSERT INTO deps_arc.xemp (eno, ename, sal, edno) VALUES (77, \
        'gina', 95, 2)");
  check_rows "insert landed" [ row [ vs "gina" ] ]
    (Engine.Database.query_rows db "SELECT ename FROM emp WHERE eno = 77");
  (* delete through the component *)
  (match Engine.Database.exec db "DELETE FROM deps_arc.xemp WHERE eno = 77" with
  | Engine.Database.Affected 1 -> ()
  | _ -> Alcotest.fail "expected one row deleted");
  (* non-updatable component rejected *)
  ignore
    (Engine.Database.exec db
       "CREATE VIEW agg_view AS OUT OF x AS (SELECT edno, COUNT(*) AS n \
        FROM EMP GROUP BY edno) TAKE *");
  Alcotest.(check bool) "aggregate component rejected" true
    (try
       ignore (Engine.Database.exec db "UPDATE agg_view.x SET n = 0");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "sql dml on view component" `Quick
        test_sql_dml_on_component;
    ]

let test_relationship_attributes () =
  (* connections may carry attributes (paper Sect. 2: "connections are
     tuples that might have some relationship attributes") *)
  let db = Engine.Database.create () in
  ignore
    (Engine.Database.exec_script db
       "CREATE TABLE part (pid INT NOT NULL, pname STRING, PRIMARY KEY \
        (pid)); CREATE TABLE sub (parent INT, child INT, qty INT);\n\
        INSERT INTO part VALUES (1, 'engine'), (2, 'piston'), (3, 'bolt');\n\
        INSERT INTO sub VALUES (1, 2, 4), (2, 3, 8)");
  let text =
    "OUT OF root AS (SELECT * FROM part WHERE pid = 1),\n\
     xpart AS part,\n\
     holds AS (RELATE root VIA OWNER, xpart USING sub m WITH (m.qty AS \
     qty) WHERE owner.pid = m.parent AND m.child = xpart.pid),\n\
     deep AS (RELATE xpart VIA ASM, xpart USING sub m WITH (m.qty AS qty) \
     WHERE asm.pid = m.parent AND m.child = xpart.pid)\n\
     TAKE *"
  in
  let stream = Xnf.Xnf_compile.run db text in
  let ws = Cocache.Workspace.of_stream stream in
  (* the attribute rides on the connection, visible from the cache *)
  let root = List.hd (Cocache.Workspace.nodes ws "root") in
  (match Cocache.Conode.conns_out root ~rel:"holds" with
  | [ c ] ->
    Alcotest.(check Helpers.value_testable) "qty attribute" (Helpers.vi 4)
      c.Cocache.Conode.attrs.(0)
  | _ -> Alcotest.fail "expected one holds connection");
  (* attribute schema recorded in the header *)
  let info = H.find_comp stream.H.header "holds" in
  Alcotest.(check (list string)) "attr schema" [ "qty" ]
    (Relcore.Schema.column_names info.H.comp_schema);
  (* recursive evaluator path carries them too *)
  let piston =
    List.find
      (fun n ->
        Relcore.Value.to_string (Cocache.Workspace.get ws n "pname") = "piston")
      (Cocache.Workspace.nodes ws "xpart")
  in
  (match Cocache.Conode.conns_out piston ~rel:"deep" with
  | [ c ] ->
    Alcotest.(check Helpers.value_testable) "recursive qty" (Helpers.vi 8)
      c.Cocache.Conode.attrs.(0)
  | _ -> Alcotest.fail "expected one deep connection");
  (* attributes survive persistence *)
  let file = Filename.temp_file "attr_cache" ".xnf" in
  Cocache.Persist.save ws file;
  let ws' = Cocache.Persist.load file in
  Sys.remove file;
  let root' = List.hd (Cocache.Workspace.nodes ws' "root") in
  match Cocache.Conode.conns_out root' ~rel:"holds" with
  | [ c ] ->
    Alcotest.(check Helpers.value_testable) "persisted qty" (Helpers.vi 4)
      c.Cocache.Conode.attrs.(0)
  | _ -> Alcotest.fail "expected one holds connection after reload"

let suite =
  suite
  @ [
      Alcotest.test_case "relationship attributes" `Quick
        test_relationship_attributes;
    ]

(* -- error-path coverage ------------------------------------------------ *)

let expect_semantic f =
  try
    ignore (f ());
    false
  with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true

let test_xnf_error_paths () =
  let db = org_db () in
  let bad text = Alcotest.(check bool) text true (expect_semantic (fun () -> Xnf.Xnf_compile.compile db text)) in
  (* duplicate component names *)
  bad "OUT OF a AS DEPT, a AS EMP TAKE *";
  (* TAKE of unknown component *)
  bad "OUT OF a AS DEPT TAKE nosuch";
  (* relationship predicate referencing a non-partner *)
  bad
    "OUT OF a AS DEPT, b AS EMP, c AS PROJ, r AS (RELATE a VIA X, b WHERE \
     c.pno = b.eno) TAKE *";
  (* no root: every component is a child and none marked ROOT *)
  bad
    "OUT OF a AS DEPT, b AS EMP, r1 AS (RELATE a VIA X, b WHERE a.dno = \
     b.edno), r2 AS (RELATE b VIA Y, a WHERE b.edno = a.dno) TAKE *";
  (* empty CO *)
  Alcotest.(check bool) "no components rejected" true
    (try
       ignore (Xnf.Xnf_parser.parse "OUT OF TAKE *");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Parse_error _, _) -> true)

let test_take_unknown_cols_rejected () =
  let db = org_db () in
  Alcotest.(check bool) "unknown TAKE column" true
    (try
       ignore
         (Xnf.Xnf_compile.run db
            "OUT OF a AS (SELECT * FROM DEPT) TAKE a(nosuchcol)");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "xnf error paths" `Quick test_xnf_error_paths;
      Alcotest.test_case "take unknown columns" `Quick
        test_take_unknown_cols_rejected;
    ]

(* -- additional xnf coverage --------------------------------------------- *)

let test_shorthand_equivalence () =
  (* [xemp AS EMP] is shorthand for [xemp AS (SELECT * FROM EMP)] *)
  let db = org_db () in
  let a =
    Xnf.Xnf_compile.run db
      "OUT OF d AS (SELECT * FROM DEPT WHERE loc = 'ARC'), e AS EMP, r AS \
       (RELATE d VIA X, e WHERE d.dno = e.edno) TAKE *"
  in
  let b =
    Xnf.Xnf_compile.run db
      "OUT OF d AS (SELECT * FROM DEPT WHERE loc = 'ARC'), e AS (SELECT * \
       FROM EMP), r AS (RELATE d VIA X, e WHERE d.dno = e.edno) TAKE *"
  in
  Alcotest.(check (list (pair string int))) "shorthand = explicit"
    (H.counts a) (H.counts b)

let test_take_rel_only () =
  let db = org_db () in
  let stream =
    Xnf.Xnf_compile.run db
      "OUT OF d AS (SELECT * FROM DEPT WHERE loc = 'ARC'), e AS EMP, r AS \
       (RELATE d VIA X, e WHERE d.dno = e.edno) TAKE r"
  in
  Alcotest.(check (list (pair string int)))
    "only connections shipped"
    [ ("d", 0); ("e", 0); ("r", 3) ]
    (H.counts stream);
  (* partner rows were suppressed by TAKE: the cache builds stub nodes
     so the topology stays navigable, but their values are not
     accessible *)
  let ws = Cocache.Workspace.of_stream stream in
  Alcotest.(check int) "stub parents" 2
    (Cocache.Workspace.node_count ws "d");
  Alcotest.(check int) "stub children" 3
    (Cocache.Workspace.node_count ws "e");
  Alcotest.(check int) "connections navigable" 3
    (Cocache.Workspace.connection_count ws);
  let stub = List.hd (Cocache.Workspace.nodes ws "d") in
  Alcotest.(check bool) "stub detected" true (Cocache.Workspace.is_stub ws stub);
  Alcotest.(check bool) "stub values rejected" true
    (try
       ignore (Cocache.Workspace.get ws stub "dno");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let test_extraction_formulas_at_scale () =
  (* closed-form expectations on a deterministic generated org *)
  let p =
    {
      Workloads.Org.default with
      n_depts = 40;
      arc_fraction = 0.25;
      emps_per_dept = 7;
      projs_per_dept = 2;
      skills_per_emp = 2;
      skills_per_proj = 1;
    }
  in
  let db = Workloads.Org.generate p in
  let counts =
    H.counts (Xnf.Xnf_compile.run db Workloads.Org.deps_arc_query)
  in
  let arc = 10 in
  Alcotest.(check int) "xdept" arc (List.assoc "xdept" counts);
  Alcotest.(check int) "xemp" (arc * 7) (List.assoc "xemp" counts);
  Alcotest.(check int) "xproj" (arc * 2) (List.assoc "xproj" counts);
  Alcotest.(check int) "employment" (arc * 7) (List.assoc "employment" counts);
  Alcotest.(check int) "empproperty" (arc * 7 * 2)
    (List.assoc "empproperty" counts);
  Alcotest.(check int) "projproperty" (arc * 2 * 1)
    (List.assoc "projproperty" counts);
  (* skills are sampled without replacement per emp: reachable set is
     bounded by distinct skills drawn *)
  Alcotest.(check bool) "xskills bounded" true
    (List.assoc "xskills" counts <= p.Workloads.Org.n_skills)

let test_explain_recursive () =
  let db = Workloads.Bom.generate { Workloads.Bom.default with levels = 2 } in
  let text = Xnf.Xnf_compile.explain db Workloads.Bom.assembly_query in
  Alcotest.(check bool) "mentions fixpoint" true
    (let has s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has text "fixpoint")

let suite =
  suite
  @ [
      Alcotest.test_case "shorthand equivalence" `Quick test_shorthand_equivalence;
      Alcotest.test_case "take relationship only" `Quick test_take_rel_only;
      Alcotest.test_case "extraction formulas at scale" `Quick
        test_extraction_formulas_at_scale;
      Alcotest.test_case "explain recursive" `Quick test_explain_recursive;
    ]
