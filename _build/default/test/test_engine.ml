(** End-to-end SQL engine tests: DDL, DML, queries, rewrite, EXPLAIN. *)

open Helpers
module Db = Engine.Database

let q db sql = Db.query_rows db sql

let test_simple_select () =
  let db = org_db () in
  let rows = q db "SELECT dno FROM dept WHERE loc = 'ARC' ORDER BY dno" in
  check_rows "ARC departments" (rows_of_ints [ [ 1 ]; [ 2 ] ]) rows

let test_projection_arith () =
  let db = org_db () in
  let rows = q db "SELECT eno, sal * 2 FROM emp WHERE eno = 10" in
  check_rows "doubled salary" (rows_of_ints [ [ 10; 200 ] ]) rows

let test_join () =
  let db = org_db () in
  let rows =
    q db
      "SELECT e.eno, d.dname FROM emp e, dept d WHERE e.edno = d.dno AND \
       d.loc = 'ARC' ORDER BY e.eno"
  in
  check_rows "emp-dept join"
    [ row [ vi 10; vs "tools" ]; row [ vi 11; vs "tools" ]; row [ vi 12; vs "db" ] ]
    rows

let test_exists_subquery () =
  let db = org_db () in
  let rows =
    q db
      "SELECT eno FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.loc \
       = 'ARC' AND d.dno = e.edno) ORDER BY eno"
  in
  check_rows "exists" (rows_of_ints [ [ 10 ]; [ 11 ]; [ 12 ] ]) rows

let test_exists_no_rewrite_same_result () =
  let db = org_db () in
  let sql =
    "SELECT eno FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.loc = \
     'ARC' AND d.dno = e.edno) ORDER BY eno"
  in
  let fast = Db.query_rows ~rewrite:true db sql in
  let naive = Db.query_rows ~rewrite:false db sql in
  check_rows "rewrite preserves semantics" naive fast

let test_in_subquery () =
  let db = org_db () in
  let rows =
    q db
      "SELECT ename FROM emp WHERE edno IN (SELECT dno FROM dept WHERE loc = \
       'ARC') ORDER BY ename"
  in
  check_rows "in subquery" [ row [ vs "anna" ]; row [ vs "ben" ]; row [ vs "carol" ] ] rows

let test_or_exists () =
  (* the xskills-style disjunctive reachability query: EXISTS under OR
     must NOT be converted to a join *)
  let db = org_db () in
  let rows =
    q db
      "SELECT s.sno FROM skills s WHERE EXISTS (SELECT 1 FROM empskills es, \
       emp e, dept d WHERE es.essno = s.sno AND es.eseno = e.eno AND e.edno \
       = d.dno AND d.loc = 'ARC') OR EXISTS (SELECT 1 FROM projskills ps, \
       proj p, dept d WHERE ps.pssno = s.sno AND ps.pspno = p.pno AND p.pdno \
       = d.dno AND d.loc = 'ARC') ORDER BY s.sno"
  in
  (* reachable skills: ml(30), db(31), ui(33), hw(34); os(32) only via HAW *)
  check_rows "disjunctive reachability"
    (rows_of_ints [ [ 30 ]; [ 31 ]; [ 33 ]; [ 34 ] ])
    rows

let test_group_by () =
  let db = org_db () in
  let rows =
    q db
      "SELECT edno, COUNT(*), SUM(sal) FROM emp GROUP BY edno ORDER BY edno"
  in
  check_rows "group by"
    (rows_of_ints [ [ 1; 2; 190 ]; [ 2; 1; 120 ]; [ 3; 1; 80 ] ])
    rows

let test_having () =
  let db = org_db () in
  let rows =
    q db
      "SELECT edno, COUNT(*) FROM emp GROUP BY edno HAVING COUNT(*) > 1"
  in
  check_rows "having" (rows_of_ints [ [ 1; 2 ] ]) rows

let test_global_aggregate () =
  let db = org_db () in
  check_rows "count" (rows_of_ints [ [ 4 ] ]) (q db "SELECT COUNT(*) FROM emp");
  check_rows "empty sum"
    [ row [ vnull ] ]
    (q db "SELECT SUM(sal) FROM emp WHERE sal > 1000")

let test_distinct () =
  let db = org_db () in
  let rows = q db "SELECT DISTINCT loc FROM dept ORDER BY loc" in
  check_rows "distinct" [ row [ vs "ARC" ]; row [ vs "HAW" ] ] rows

let test_derived_table () =
  let db = org_db () in
  let rows =
    q db
      "SELECT t.dname FROM (SELECT dname, loc FROM dept WHERE loc = 'HAW') \
       AS t"
  in
  check_rows "derived table" [ row [ vs "remote" ] ] rows

let test_order_limit () =
  let db = org_db () in
  let rows = q db "SELECT eno FROM emp ORDER BY sal DESC LIMIT 2" in
  check_rows "top 2 salaries" (rows_of_ints [ [ 12 ]; [ 10 ] ]) rows

let test_update_delete () =
  let db = org_db () in
  (match Db.exec db "UPDATE emp SET sal = sal + 10 WHERE edno = 1" with
  | Db.Affected 2 -> ()
  | _ -> Alcotest.fail "expected 2 rows updated");
  check_rows "updated" (rows_of_ints [ [ 110 ]; [ 100 ] ])
    (q db "SELECT sal FROM emp WHERE edno = 1 ORDER BY eno");
  (match Db.exec db "DELETE FROM emp WHERE sal < 105" with
  | Db.Affected n -> Alcotest.(check int) "deleted" 2 n
  | _ -> Alcotest.fail "expected Affected");
  check_rows "remaining" (rows_of_ints [ [ 10 ]; [ 12 ] ])
    (q db "SELECT eno FROM emp ORDER BY eno")

let test_update_with_subquery () =
  let db = org_db () in
  (match
     Db.exec db
       "UPDATE emp SET sal = 0 WHERE edno IN (SELECT dno FROM dept WHERE loc \
        = 'HAW')"
   with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "expected 1 row updated");
  check_rows "zeroed" (rows_of_ints [ [ 13; 0 ] ])
    (q db "SELECT eno, sal FROM emp WHERE sal = 0")

let test_insert_nulls_and_constraints () =
  let db = org_db () in
  ignore (Db.exec db "INSERT INTO emp (eno, ename) VALUES (99, 'zed')");
  check_rows "null dept" [ row [ vnull ] ] (q db "SELECT edno FROM emp WHERE eno = 99");
  Alcotest.check_raises "duplicate pk"
    (Relcore.Errors.Db_error
       ( Relcore.Errors.Constraint_error,
         "unique index \"emp_pkey\" violated in table \"emp\"" ))
    (fun () -> ignore (Db.exec db "INSERT INTO emp VALUES (99, 'dup', 1, 1)"))

let test_sql_view () =
  let db = org_db () in
  ignore
    (Db.exec db "CREATE VIEW arc_dept AS SELECT * FROM dept WHERE loc = 'ARC'");
  let rows = q db "SELECT dno FROM arc_dept ORDER BY dno" in
  check_rows "view" (rows_of_ints [ [ 1 ]; [ 2 ] ]) rows

let test_explain_mentions_join () =
  let db = org_db () in
  let text =
    Db.explain db "SELECT e.eno FROM emp e, dept d WHERE e.edno = d.dno"
  in
  Alcotest.(check bool) "has a join" true
    (let re_has s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     re_has text "Join")

let test_script () =
  let db = Db.create () in
  let results =
    Db.exec_script db
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT a FROM \
       t ORDER BY a"
  in
  match List.rev results with
  | Db.Rows (_, rows) :: _ -> check_rows "script" (rows_of_ints [ [ 1 ]; [ 2 ] ]) rows
  | _ -> Alcotest.fail "expected rows"

let suite =
  [
    Alcotest.test_case "simple select" `Quick test_simple_select;
    Alcotest.test_case "projection arithmetic" `Quick test_projection_arith;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "exists subquery" `Quick test_exists_subquery;
    Alcotest.test_case "rewrite preserves exists" `Quick
      test_exists_no_rewrite_same_result;
    Alcotest.test_case "in subquery" `Quick test_in_subquery;
    Alcotest.test_case "exists under or" `Quick test_or_exists;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "having" `Quick test_having;
    Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "derived table" `Quick test_derived_table;
    Alcotest.test_case "order by / limit" `Quick test_order_limit;
    Alcotest.test_case "update / delete" `Quick test_update_delete;
    Alcotest.test_case "update with subquery" `Quick test_update_with_subquery;
    Alcotest.test_case "insert nulls + constraints" `Quick
      test_insert_nulls_and_constraints;
    Alcotest.test_case "sql view" `Quick test_sql_view;
    Alcotest.test_case "explain mentions join" `Quick test_explain_mentions_join;
    Alcotest.test_case "script runner" `Quick test_script;
  ]

(* -- transactions ------------------------------------------------------ *)

let test_txn_commit_rollback () =
  let db = org_db () in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE emp SET sal = 0 WHERE eno = 10");
  ignore (Db.exec db "INSERT INTO emp VALUES (99, 'tmp', 1, 1)");
  ignore (Db.exec db "DELETE FROM emp WHERE eno = 11");
  ignore (Db.exec db "ROLLBACK");
  check_rows "update undone" (rows_of_ints [ [ 100 ] ])
    (q db "SELECT sal FROM emp WHERE eno = 10");
  check_rows "insert undone" [] (q db "SELECT eno FROM emp WHERE eno = 99");
  check_rows "delete undone" (rows_of_ints [ [ 11 ] ])
    (q db "SELECT eno FROM emp WHERE eno = 11");
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE emp SET sal = 7 WHERE eno = 10");
  ignore (Db.exec db "COMMIT");
  check_rows "commit sticks" (rows_of_ints [ [ 7 ] ])
    (q db "SELECT sal FROM emp WHERE eno = 10")

let test_txn_ddl_rejected () =
  let db = org_db () in
  ignore (Db.exec db "BEGIN");
  Alcotest.(check bool) "ddl rejected in txn" true
    (try
       ignore (Db.exec db "CREATE TABLE zz (a INT)");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Execution_error, _) -> true);
  ignore (Db.exec db "ROLLBACK")

let test_atomically_rolls_back_on_exception () =
  let db = org_db () in
  (try
     Db.atomically db (fun () ->
         ignore (Db.exec db "UPDATE emp SET sal = 0 WHERE eno = 10");
         failwith "boom")
   with Failure _ -> ());
  check_rows "rolled back" (rows_of_ints [ [ 100 ] ])
    (q db "SELECT sal FROM emp WHERE eno = 10")

let txn_suite =
  [
    Alcotest.test_case "txn commit/rollback" `Quick test_txn_commit_rollback;
    Alcotest.test_case "txn rejects ddl" `Quick test_txn_ddl_rejected;
    Alcotest.test_case "atomically" `Quick test_atomically_rolls_back_on_exception;
  ]

let suite = suite @ txn_suite

(* -- additional engine coverage ----------------------------------------- *)

let test_self_join () =
  let db = org_db () in
  (* colleagues: pairs of distinct employees in the same department *)
  let rows =
    q db
      "SELECT a.eno, b.eno FROM emp a, emp b WHERE a.edno = b.edno AND a.eno \
       < b.eno ORDER BY a.eno, b.eno"
  in
  check_rows "self join" (rows_of_ints [ [ 10; 11 ] ]) rows

let test_cross_join () =
  let db = org_db () in
  check_rows "cross product count" (rows_of_ints [ [ 12 ] ])
    (q db "SELECT COUNT(*) FROM emp, dept")

let test_multi_key_order_by () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (2, 1), (1, 2), \
        (1, 1), (2, 2)");
  check_rows "two sort keys"
    (rows_of_ints [ [ 1; 2 ]; [ 1; 1 ]; [ 2; 2 ]; [ 2; 1 ] ])
    (q db "SELECT a, b FROM t ORDER BY a, b DESC")

let test_order_by_position () =
  let db = org_db () in
  check_rows "positional order" (rows_of_ints [ [ 13 ]; [ 12 ] ])
    (q db "SELECT eno FROM emp ORDER BY 1 DESC LIMIT 2")

let test_script_with_semicolons_in_strings () =
  let db = Db.create () in
  let results =
    Db.exec_script db
      "CREATE TABLE t (s STRING); INSERT INTO t VALUES ('a;b'); SELECT s \
       FROM t"
  in
  match List.rev results with
  | Db.Rows (_, rows) :: _ ->
    check_rows "semicolon inside string" [ row [ vs "a;b" ] ] rows
  | _ -> Alcotest.fail "expected rows"

let test_render_empty () =
  let db = org_db () in
  let schema, rows = Db.query db "SELECT eno FROM emp WHERE eno = 0" in
  let text = Db.render schema rows in
  Alcotest.(check bool) "header only" true (String.length text > 0);
  Alcotest.(check int) "no data lines" 2
    (List.length (String.split_on_char '\n' text))

let test_drop_table_and_view () =
  let db = org_db () in
  ignore (Db.exec db "CREATE VIEW v AS SELECT * FROM dept");
  ignore (Db.exec db "DROP VIEW v");
  ignore (Db.exec db "DROP TABLE skills");
  Alcotest.(check bool) "table gone" true
    (try
       ignore (q db "SELECT * FROM skills");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Catalog_error, _) -> true)

let test_insert_with_function_values () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (s STRING)");
  ignore (Db.exec db "INSERT INTO t VALUES (UPPER('abc'))");
  check_rows "computed insert" [ row [ vs "ABC" ] ] (q db "SELECT s FROM t")

let suite =
  suite
  @ [
      Alcotest.test_case "self join" `Quick test_self_join;
      Alcotest.test_case "cross join" `Quick test_cross_join;
      Alcotest.test_case "multi-key order by" `Quick test_multi_key_order_by;
      Alcotest.test_case "order by position" `Quick test_order_by_position;
      Alcotest.test_case "script semicolons in strings" `Quick
        test_script_with_semicolons_in_strings;
      Alcotest.test_case "render empty result" `Quick test_render_empty;
      Alcotest.test_case "drop table/view" `Quick test_drop_table_and_view;
      Alcotest.test_case "insert computed values" `Quick
        test_insert_with_function_values;
    ]
