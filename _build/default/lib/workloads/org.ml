(** Parameterized generator for the paper's running-example schema
    (Fig. 1): departments, employees, projects, skills, and the two M:N
    mapping tables.  Drives the extraction and Table-1 experiments. *)

open Relcore
module Db = Engine.Database

type params = {
  n_depts : int;
  arc_fraction : float; (* share of departments located at 'ARC' *)
  emps_per_dept : int;
  projs_per_dept : int;
  n_skills : int;
  skills_per_emp : int;
  skills_per_proj : int;
  indexes : bool;
  seed : int;
}

let default =
  {
    n_depts = 50;
    arc_fraction = 0.3;
    emps_per_dept = 10;
    projs_per_dept = 3;
    n_skills = 100;
    skills_per_emp = 3;
    skills_per_proj = 2;
    indexes = true;
    seed = 42;
  }

let other_locations = [| "HAW"; "YKT"; "SJC" |]

let vi i = Value.Int i
let vs s = Value.Str s

let generate (p : params) : Db.t =
  let db = Db.create () in
  let cat = Db.catalog db in
  let dept =
    Base_table.create ~primary_key:[ "dno" ] ~name:"dept"
      (Schema.make
         [
           Schema.column ~nullable:false "dno" Dtype.Tint;
           Schema.column "dname" Dtype.Tstr;
           Schema.column "loc" Dtype.Tstr;
         ])
  in
  let emp =
    Base_table.create ~primary_key:[ "eno" ] ~name:"emp"
      (Schema.make
         [
           Schema.column ~nullable:false "eno" Dtype.Tint;
           Schema.column "ename" Dtype.Tstr;
           Schema.column "sal" Dtype.Tint;
           Schema.column "edno" Dtype.Tint;
         ])
  in
  let proj =
    Base_table.create ~primary_key:[ "pno" ] ~name:"proj"
      (Schema.make
         [
           Schema.column ~nullable:false "pno" Dtype.Tint;
           Schema.column "pname" Dtype.Tstr;
           Schema.column "budget" Dtype.Tint;
           Schema.column "pdno" Dtype.Tint;
         ])
  in
  let skills =
    Base_table.create ~primary_key:[ "sno" ] ~name:"skills"
      (Schema.make
         [
           Schema.column ~nullable:false "sno" Dtype.Tint;
           Schema.column "sname" Dtype.Tstr;
         ])
  in
  let empskills =
    Base_table.create ~name:"empskills"
      (Schema.make
         [
           Schema.column ~nullable:false "eseno" Dtype.Tint;
           Schema.column ~nullable:false "essno" Dtype.Tint;
         ])
  in
  let projskills =
    Base_table.create ~name:"projskills"
      (Schema.make
         [
           Schema.column ~nullable:false "pspno" Dtype.Tint;
           Schema.column ~nullable:false "pssno" Dtype.Tint;
         ])
  in
  List.iter (Catalog.add_table cat)
    [ dept; emp; proj; skills; empskills; projskills ];
  let rng = Rng.create p.seed in
  let n_arc =
    max 1 (int_of_float (Float.round (float_of_int p.n_depts *. p.arc_fraction)))
  in
  for d = 1 to p.n_depts do
    let loc = if d <= n_arc then "ARC" else Rng.choose rng other_locations in
    ignore
      (Base_table.insert dept
         [| vi d; vs (Printf.sprintf "dept%d" d); vs loc |])
  done;
  for s = 1 to p.n_skills do
    ignore (Base_table.insert skills [| vi s; vs (Printf.sprintf "skill%d" s) |])
  done;
  let eno = ref 0 and pno = ref 0 in
  (* avoid duplicate mapping rows per owner *)
  let pick_skills k =
    let chosen = Hashtbl.create 8 in
    let rec go n acc =
      if n = 0 || Hashtbl.length chosen >= p.n_skills then acc
      else begin
        let s = 1 + Rng.int rng p.n_skills in
        if Hashtbl.mem chosen s then go n acc
        else begin
          Hashtbl.add chosen s ();
          go (n - 1) (s :: acc)
        end
      end
    in
    go k []
  in
  for d = 1 to p.n_depts do
    for _ = 1 to p.emps_per_dept do
      incr eno;
      ignore
        (Base_table.insert emp
           [|
             vi !eno;
             vs (Printf.sprintf "emp%d" !eno);
             vi (50 + Rng.int rng 100);
             vi d;
           |]);
      List.iter
        (fun s -> ignore (Base_table.insert empskills [| vi !eno; vi s |]))
        (pick_skills p.skills_per_emp)
    done;
    for _ = 1 to p.projs_per_dept do
      incr pno;
      ignore
        (Base_table.insert proj
           [|
             vi !pno;
             vs (Printf.sprintf "proj%d" !pno);
             vi (100 + Rng.int rng 10_000);
             vi d;
           |]);
      List.iter
        (fun s -> ignore (Base_table.insert projskills [| vi !pno; vi s |]))
        (pick_skills p.skills_per_proj)
    done
  done;
  if p.indexes then begin
    ignore (Base_table.create_index emp ~idx_name:"emp_edno" ~columns:[ "edno" ] ~unique:false);
    ignore (Base_table.create_index proj ~idx_name:"proj_pdno" ~columns:[ "pdno" ] ~unique:false);
    ignore
      (Base_table.create_index empskills ~idx_name:"es_eno" ~columns:[ "eseno" ]
         ~unique:false);
    ignore
      (Base_table.create_index projskills ~idx_name:"ps_pno" ~columns:[ "pspno" ]
         ~unique:false)
  end;
  db

(** The Fig. 1 CO view over this schema. *)
let deps_arc_query =
  "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),\n\
  \       xemp AS EMP,\n\
  \       xproj AS PROJ,\n\
  \       xskills AS SKILLS,\n\
  \       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = \
   xemp.edno),\n\
  \       ownership AS (RELATE xdept VIA HAS, xproj WHERE xdept.dno = \
   xproj.pdno),\n\
  \       empproperty AS (RELATE xemp VIA POSSESSES, xskills USING EMPSKILLS \
   es WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),\n\
  \       projproperty AS (RELATE xproj VIA NEEDS, xskills USING PROJSKILLS \
   ps WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)\n\
   TAKE *"

(** Table-1 component order as printed in the paper. *)
let table1_order =
  [
    "xdept"; "xemp"; "xproj"; "employment"; "ownership"; "xskills";
    "empproperty"; "projproperty";
  ]
