(** Business workload: customers, orders, line items and products — the
    "advanced business applications" motivation of the paper's intro,
    used by the order-catalog example. *)

open Relcore
module Db = Engine.Database

type params = {
  n_customers : int;
  orders_per_customer : int;
  items_per_order : int;
  n_products : int;
  region : string; (* region anchoring the CO view *)
  seed : int;
}

let default =
  {
    n_customers = 50;
    orders_per_customer = 4;
    items_per_order = 5;
    n_products = 200;
    region = "EMEA";
    seed = 11;
  }

let regions = [| "EMEA"; "AMER"; "APAC" |]

let vi i = Value.Int i
let vs s = Value.Str s
let vf f = Value.Float f

let generate (p : params) : Db.t =
  let db = Db.create () in
  let cat = Db.catalog db in
  let customer =
    Base_table.create ~primary_key:[ "cid" ] ~name:"customer"
      (Schema.make
         [
           Schema.column ~nullable:false "cid" Dtype.Tint;
           Schema.column "cname" Dtype.Tstr;
           Schema.column "region" Dtype.Tstr;
         ])
  in
  let orders =
    Base_table.create ~primary_key:[ "oid" ] ~name:"orders"
      (Schema.make
         [
           Schema.column ~nullable:false "oid" Dtype.Tint;
           Schema.column "ocid" Dtype.Tint;
           Schema.column "status" Dtype.Tstr;
           Schema.column "total" Dtype.Tfloat;
         ])
  in
  let lineitem =
    Base_table.create ~name:"lineitem"
      (Schema.make
         [
           Schema.column ~nullable:false "lioid" Dtype.Tint;
           Schema.column ~nullable:false "lipid" Dtype.Tint;
           Schema.column "qty" Dtype.Tint;
           Schema.column "price" Dtype.Tfloat;
         ])
  in
  let product =
    Base_table.create ~primary_key:[ "pid" ] ~name:"product"
      (Schema.make
         [
           Schema.column ~nullable:false "pid" Dtype.Tint;
           Schema.column "pname" Dtype.Tstr;
           Schema.column "listprice" Dtype.Tfloat;
         ])
  in
  List.iter (Catalog.add_table cat) [ customer; orders; lineitem; product ];
  let rng = Rng.create p.seed in
  for pid = 1 to p.n_products do
    ignore
      (Base_table.insert product
         [|
           vi pid;
           vs (Printf.sprintf "product%d" pid);
           vf (float_of_int (100 + Rng.int rng 900) /. 10.0);
         |])
  done;
  let oid = ref 0 in
  for cid = 1 to p.n_customers do
    ignore
      (Base_table.insert customer
         [| vi cid; vs (Printf.sprintf "customer%d" cid); vs (Rng.choose rng regions) |]);
    for _ = 1 to p.orders_per_customer do
      incr oid;
      let total = ref 0.0 in
      let items =
        List.init p.items_per_order (fun _ ->
            let pid = 1 + Rng.int rng p.n_products in
            let qty = 1 + Rng.int rng 5 in
            let price = float_of_int (100 + Rng.int rng 900) /. 10.0 in
            total := !total +. (float_of_int qty *. price);
            (pid, qty, price))
      in
      ignore
        (Base_table.insert orders
           [|
             vi !oid;
             vi cid;
             vs (if Rng.chance rng 0.8 then "shipped" else "open");
             vf !total;
           |]);
      List.iter
        (fun (pid, qty, price) ->
          ignore
            (Base_table.insert lineitem [| vi !oid; vi pid; vi qty; vf price |]))
        items
    done
  done;
  ignore
    (Base_table.create_index orders ~idx_name:"orders_cid" ~columns:[ "ocid" ]
       ~unique:false);
  ignore
    (Base_table.create_index lineitem ~idx_name:"li_oid" ~columns:[ "lioid" ]
       ~unique:false);
  db

(** CO view: the customers of one region with their orders, line items
    and the products those items refer to (products shared between
    items: object sharing). *)
let region_query region =
  Printf.sprintf
    "OUT OF xcust AS (SELECT * FROM customer WHERE region = '%s'),\n\
    \       xorder AS orders,\n\
    \       xitem AS lineitem,\n\
    \       xproduct AS product,\n\
    \       placed AS (RELATE xcust VIA PLACED, xorder WHERE xcust.cid = \
     xorder.ocid),\n\
    \       orderline AS (RELATE xorder VIA CONTAINS, xitem WHERE xorder.oid \
     = xitem.lioid),\n\
    \       itemref AS (RELATE xitem VIA REFERS_TO, xproduct WHERE \
     xitem.lipid = xproduct.pid)\n\
     TAKE *"
    region
