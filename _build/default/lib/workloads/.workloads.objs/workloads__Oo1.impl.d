lib/workloads/oo1.ml: Array Base_table Catalog Cocache Dtype Engine Hashtbl List Relcore Rng Schema Value
