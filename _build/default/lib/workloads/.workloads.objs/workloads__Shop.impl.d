lib/workloads/shop.ml: Base_table Catalog Dtype Engine List Printf Relcore Rng Schema Value
