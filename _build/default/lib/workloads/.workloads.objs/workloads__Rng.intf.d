lib/workloads/rng.mli:
