lib/workloads/oo1.mli: Cocache Engine Hashtbl Rng
