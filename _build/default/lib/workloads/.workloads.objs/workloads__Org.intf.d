lib/workloads/org.mli: Engine
