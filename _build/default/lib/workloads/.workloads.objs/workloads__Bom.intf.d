lib/workloads/bom.mli: Engine
