lib/workloads/shop.mli: Engine
