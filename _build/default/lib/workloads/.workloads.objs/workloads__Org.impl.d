lib/workloads/org.ml: Base_table Catalog Dtype Engine Float Hashtbl List Printf Relcore Rng Schema Value
