(** OO1 ("Cattell") benchmark database and operations (paper Sect. 5.2):
    N parts, 3 connections per part, 90% locality of reference. *)

type params = {
  n_parts : int;
  fanout : int;
  locality_window : int;
  locality_prob : float;
  seed : int;
}

val default : params
(** 20,000 parts, fanout 3, locality 90% within ±100. *)

val generate : params -> Engine.Database.t

val parts_graph_query : string
(** The whole parts graph as one CO: every part an explicit ROOT, the
    connections as a self-relationship (pre-loaded cache). *)

val traverse : Cocache.Conode.t -> depth:int -> int
(** OO1 traversal: depth-first over all 'link' children; returns the
    number of part visits (with repetition, as OO1 specifies). *)

val build_pid_index : Cocache.Workspace.t -> (int, Cocache.Conode.t) Hashtbl.t

val lookup :
  index:(int, Cocache.Conode.t) Hashtbl.t -> rng:Rng.t -> n_parts:int ->
  n:int -> int
(** OO1 lookup: fetch [n] random parts by id, touching one field. *)
