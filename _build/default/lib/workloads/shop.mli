(** Business workload: customers, orders, line items, products. *)

type params = {
  n_customers : int;
  orders_per_customer : int;
  items_per_order : int;
  n_products : int;
  region : string;
  seed : int;
}

val default : params
val generate : params -> Engine.Database.t

val region_query : string -> string
(** CO view: one region's customers with their orders, line items and
    the (shared) products those items reference. *)
