(** Deterministic pseudo-random generator (splitmix64-style): every
    workload is reproducible from its seed. *)

type t

val create : int -> t
val int : t -> int -> int
(** Uniform in [0, bound). *)

val float : t -> float
(** Uniform in [0, 1). *)

val chance : t -> float -> bool
val choose : t -> 'a array -> 'a
