(** Recursive bill-of-materials workload: a layered assembly hierarchy
    (CAD-style), used by the recursive-CO example and benches. *)

open Relcore
module Db = Engine.Database

type params = {
  n_assemblies : int; (* top-level assemblies *)
  levels : int;
  children_per_part : int;
  share_prob : float; (* chance a child is shared with a sibling (DAG) *)
  seed : int;
}

let default =
  { n_assemblies = 5; levels = 4; children_per_part = 3; share_prob = 0.15; seed = 3 }

let vi i = Value.Int i
let vs s = Value.Str s

let generate (p : params) : Db.t =
  let db = Db.create () in
  let cat = Db.catalog db in
  let part =
    Base_table.create ~primary_key:[ "pid" ] ~name:"part"
      (Schema.make
         [
           Schema.column ~nullable:false "pid" Dtype.Tint;
           Schema.column "pname" Dtype.Tstr;
           Schema.column "level" Dtype.Tint;
         ])
  in
  let contains =
    Base_table.create ~name:"contains"
      (Schema.make
         [
           Schema.column ~nullable:false "parent" Dtype.Tint;
           Schema.column ~nullable:false "child" Dtype.Tint;
           Schema.column "qty" Dtype.Tint;
         ])
  in
  Catalog.add_table cat part;
  Catalog.add_table cat contains;
  let rng = Rng.create p.seed in
  let next_pid = ref 0 in
  let new_part level =
    incr next_pid;
    ignore
      (Base_table.insert part
         [| vi !next_pid; vs (Printf.sprintf "part%d" !next_pid); vi level |]);
    !next_pid
  in
  (* build level by level; sharing links some children to two parents *)
  let rec expand parents level =
    if level < p.levels then begin
      let children = ref [] in
      List.iter
        (fun parent ->
          for _ = 1 to p.children_per_part do
            let child =
              if !children <> [] && Rng.chance rng p.share_prob then
                List.nth !children (Rng.int rng (List.length !children))
              else begin
                let c = new_part level in
                children := c :: !children;
                c
              end
            in
            ignore
              (Base_table.insert contains
                 [| vi parent; vi child; vi (1 + Rng.int rng 10) |])
          done)
        parents;
      expand !children (level + 1)
    end
  in
  let tops = List.init p.n_assemblies (fun _ -> new_part 0) in
  expand tops 1;
  ignore
    (Base_table.create_index contains ~idx_name:"contains_parent"
       ~columns:[ "parent" ] ~unique:false);
  db

(** Recursive CO: the assemblies with their whole substructure. *)
let assembly_query =
  "OUT OF asmroot AS (SELECT * FROM part WHERE level = 0),\n\
  \       xpart AS part,\n\
  \       topconn AS (RELATE asmroot VIA HOLDS, xpart USING contains c WHERE \
   holds.pid = c.parent AND c.child = xpart.pid),\n\
  \       subconn AS (RELATE xpart VIA SUB, xpart USING contains c WHERE \
   sub.pid = c.parent AND c.child = xpart.pid)\n\
   TAKE *"
