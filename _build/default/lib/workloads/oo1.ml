(** OO1 ("Cattell") benchmark database and operations (paper Sect. 5.2:
    "Using the traversal operation from that benchmark, we could access
    in a pre-loaded XNF cache more than 100,000 tuples per second").

    Standard OO1 shape: N parts; exactly 3 outgoing connections per
    part; 90% of connections go to one of the "closest" parts (locality
    of reference), 10% to a uniformly random part. *)

open Relcore
module Db = Engine.Database

type params = {
  n_parts : int;
  fanout : int;
  locality_window : int; (* |to - from| bound for local connections *)
  locality_prob : float;
  seed : int;
}

let default =
  { n_parts = 20_000; fanout = 3; locality_window = 100; locality_prob = 0.9; seed = 7 }

let vi i = Value.Int i
let vs s = Value.Str s

let part_types = [| "part-type0"; "part-type1"; "part-type2" |]
let conn_types = [| "conn-type0"; "conn-type1" |]

let generate (p : params) : Db.t =
  let db = Db.create () in
  let cat = Db.catalog db in
  let parts =
    Base_table.create ~primary_key:[ "pid" ] ~name:"parts"
      (Schema.make
         [
           Schema.column ~nullable:false "pid" Dtype.Tint;
           Schema.column "ptype" Dtype.Tstr;
           Schema.column "x" Dtype.Tint;
           Schema.column "y" Dtype.Tint;
           Schema.column "build" Dtype.Tint;
         ])
  in
  let conns =
    Base_table.create ~name:"conns"
      (Schema.make
         [
           Schema.column ~nullable:false "cfrom" Dtype.Tint;
           Schema.column ~nullable:false "cto" Dtype.Tint;
           Schema.column "ctype" Dtype.Tstr;
           Schema.column "clength" Dtype.Tint;
         ])
  in
  Catalog.add_table cat parts;
  Catalog.add_table cat conns;
  let rng = Rng.create p.seed in
  for pid = 1 to p.n_parts do
    ignore
      (Base_table.insert parts
         [|
           vi pid;
           vs (Rng.choose rng part_types);
           vi (Rng.int rng 100_000);
           vi (Rng.int rng 100_000);
           vi (Rng.int rng 10_000);
         |])
  done;
  for pid = 1 to p.n_parts do
    (* exactly [fanout] distinct targets per part (connections are
       set-level facts) *)
    let chosen = Hashtbl.create 4 in
    while Hashtbl.length chosen < min p.fanout (p.n_parts - 1) do
      let target =
        if Rng.chance rng p.locality_prob then begin
          (* one of the closest parts *)
          let delta = 1 + Rng.int rng p.locality_window in
          let t = if Rng.chance rng 0.5 then pid + delta else pid - delta in
          let t = if t < 1 then t + p.n_parts else t in
          if t > p.n_parts then t - p.n_parts else t
        end
        else 1 + Rng.int rng p.n_parts
      in
      if target <> pid && not (Hashtbl.mem chosen target) then begin
        Hashtbl.add chosen target ();
        ignore
          (Base_table.insert conns
             [|
               vi pid;
               vi target;
               vs (Rng.choose rng conn_types);
               vi (Rng.int rng 1000);
             |])
      end
    done
  done;
  ignore
    (Base_table.create_index conns ~idx_name:"conns_from" ~columns:[ "cfrom" ]
       ~unique:false);
  ignore
    (Base_table.create_index conns ~idx_name:"conns_to" ~columns:[ "cto" ]
       ~unique:false);
  db

(** The CO view of the whole parts graph: every part is an explicit root
    (pre-loaded cache) and 'link' carries the connections as pointers. *)
let parts_graph_query =
  "OUT OF ROOT xpart AS parts,\n\
  \       link AS (RELATE xpart VIA SRC, xpart USING conns c\n\
  \                WHERE src.pid = c.cfrom AND c.cto = xpart.pid)\n\
   TAKE *"

(* -- OO1 operations over the cache -------------------------------------- *)

(** Depth-first traversal from [start], following all 'link' children to
    [depth] levels (OO1 uses depth 7 => up to 3^7 visits).  Returns the
    number of part tuples visited (with repetition, as OO1 specifies). *)
let rec traverse (node : Cocache.Conode.t) ~depth : int =
  if depth = 0 then 1
  else
    List.fold_left
      (fun acc child -> acc + traverse child ~depth:(depth - 1))
      1
      (Cocache.Conode.children node ~rel:"link")

(** Application-side part index (pid -> cache node), built once after
    loading the cache. *)
let build_pid_index ws : (int, Cocache.Conode.t) Hashtbl.t =
  let tbl = Hashtbl.create 4096 in
  List.iter
    (fun (n : Cocache.Conode.t) ->
      Hashtbl.replace tbl (Value.as_int n.Cocache.Conode.values.(0)) n)
    (Cocache.Workspace.nodes ws "xpart");
  tbl

(** OO1 Lookup: fetch [n] random parts by id and touch their x field. *)
let lookup ~index ~(rng : Rng.t) ~n_parts ~n : int =
  let acc = ref 0 in
  for _ = 1 to n do
    let pid = 1 + Rng.int rng n_parts in
    match Hashtbl.find_opt index pid with
    | Some node -> acc := !acc + Value.as_int node.Cocache.Conode.values.(2)
    | None -> ()
  done;
  !acc
