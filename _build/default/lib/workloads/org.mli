(** Parameterized generator for the paper's running-example schema
    (Fig. 1): departments, employees, projects, skills and the two M:N
    mapping tables. *)

type params = {
  n_depts : int;
  arc_fraction : float; (* share of departments located at 'ARC' *)
  emps_per_dept : int;
  projs_per_dept : int;
  n_skills : int;
  skills_per_emp : int;
  skills_per_proj : int;
  indexes : bool;
  seed : int;
}

val default : params
val generate : params -> Engine.Database.t

val deps_arc_query : string
(** The Fig. 1 CO view over this schema. *)

val table1_order : string list
(** Component order as printed in the paper's Table 1. *)
