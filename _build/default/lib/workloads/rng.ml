(** Deterministic pseudo-random generator (splitmix64-style) so every
    workload is reproducible from its seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let float t =
  float_of_int (int t 1_000_000) /. 1_000_000.0

(** Bernoulli draw. *)
let chance t p = float t < p

(** Pick a uniform element. *)
let choose t arr = arr.(int t (Array.length arr))
