(** Recursive bill-of-materials workload: a layered assembly hierarchy
    with optional sharing (a DAG), used by the recursive-CO example,
    benches and property tests. *)

type params = {
  n_assemblies : int;
  levels : int;
  children_per_part : int;
  share_prob : float;
  seed : int;
}

val default : params
val generate : params -> Engine.Database.t

val assembly_query : string
(** Recursive CO: the assemblies with their whole substructure. *)
