(** Scalar and predicate evaluation with SQL three-valued logic. *)

open Relcore
module Ast = Sqlkit.Ast
module Plan = Optimizer.Plan

type frames = Tuple.t list
(** Correlation frames: enclosing tuples, innermost first. *)

val frame_get : frames -> int -> int -> Value.t

val arith : Ast.binop -> Value.t -> Value.t -> Value.t
(** Null-propagating arithmetic; [+] concatenates strings. *)

val negate : Value.t -> Value.t

val apply_fn : string -> Value.t list -> Value.t
(** Scalar function dispatch (UPPER, LOWER, LENGTH, SUBSTR, TRIM, ABS,
    COALESCE); null-propagating except COALESCE. *)

val scalar : frames -> Tuple.t -> Plan.scalar -> Value.t

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_]. *)

val compare3 : Ast.cmpop -> Value.t -> Value.t -> bool option
(** Three-valued comparison: [None] when either side is null. *)

val and3 : bool option -> bool option -> bool option
val or3 : bool option -> bool option -> bool option
val not3 : bool option -> bool option
