lib/executor/exec.mli: Eval Hashtbl Optimizer Relcore Tuple
