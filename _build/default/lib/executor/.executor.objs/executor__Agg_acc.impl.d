lib/executor/agg_acc.ml: Errors Relcore Sqlkit Value
