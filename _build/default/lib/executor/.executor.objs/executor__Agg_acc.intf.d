lib/executor/agg_acc.mli: Relcore Sqlkit Value
