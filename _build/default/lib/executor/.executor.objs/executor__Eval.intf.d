lib/executor/eval.mli: Optimizer Relcore Sqlkit Tuple Value
