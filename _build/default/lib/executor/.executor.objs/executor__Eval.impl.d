lib/executor/eval.ml: Array Errors Float Hashtbl List Optimizer Option Relcore Sqlkit String Tuple Value
