lib/executor/exec.ml: Agg_acc Array Base_table Errors Eval Hashtbl Index Lazy List Optimizer Option Relcore Sqlkit Tuple Value
