(** The query evaluation system: demand-driven pipelined interpretation
    of QEPs ("table queue evaluation", paper Sect. 3.1). *)

open Relcore
module Plan = Optimizer.Plan

(** Execution context shared across the (possibly many) plans of one
    multi-output query: the CSE cache and instrumentation counters. *)
type ctx = {
  shared : (int, Tuple.t array) Hashtbl.t;
  mutable rows_scanned : int; (* base-table tuples fetched *)
  mutable subqueries_run : int; (* correlated subplan executions *)
}

val make_ctx : unit -> ctx

type iter = unit -> Tuple.t option

val iter_of_list : Tuple.t list -> iter
val iter_of_array : Tuple.t array -> iter
val drain : iter -> Tuple.t list

val open_plan : ctx -> Eval.frames -> Plan.t -> iter
val eval_pred : ctx -> Eval.frames -> Tuple.t -> Plan.ppred -> bool option

val force_shared : ctx -> Plan.t -> unit
(** Materialize every [Shared] node reachable in the plan (bottom-up);
    afterwards executing it — even from several domains sharing the
    context — only reads the CSE cache. *)

val sibling_ctx : ctx -> ctx
(** A context for another domain sharing this one's CSE cache. *)

val run : ?ctx:ctx -> Plan.compiled -> Tuple.t list
val cursor : ?ctx:ctx -> Plan.compiled -> iter
