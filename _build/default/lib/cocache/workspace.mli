(** The XNF cache: client-side main-memory representation of an
    extracted CO (paper Sect. 5, Fig. 7).

    Built in one pass over the heterogeneous stream; connection tuples
    become pointers.  Update operators record pending operations for
    write-back (see {!Update}). *)

open Relcore
module H = Xnf.Hetstream

type pending_op =
  | P_insert of { comp : string; values : Tuple.t }
  | P_update of { comp : string; old_values : Tuple.t; new_values : Tuple.t }
  | P_delete of { comp : string; values : Tuple.t }
  | P_connect of { rel : string; parent : Tuple.t; child : Tuple.t }
  | P_disconnect of { rel : string; parent : Tuple.t; child : Tuple.t }

type component_store = {
  info : H.comp_info;
  mutable nodes : Conode.t list;
  mutable count : int;
}

type t = {
  header : H.header;
  stores : (string, component_store) Hashtbl.t;
  by_id : (int, Conode.t) Hashtbl.t;
  mutable next_local_id : int;
  mutable pending : pending_op list; (* reverse order *)
  mutable conn_count : int;
}

val find_store : t -> string -> component_store
val schema : t -> string -> Schema.t
val rel_meta : t -> string -> H.rel_meta

val of_stream : H.t -> t

val nodes : t -> string -> Conode.t list
(** Live nodes of a component, arrival order. *)

val node_count : t -> string -> int
val connection_count : t -> int
val find_by_id : t -> int -> Conode.t option

val is_stub : t -> Conode.t -> bool
(** A value-less stub: partner of a shipped connection whose component
    was not in TAKE. *)

val get : t -> Conode.t -> string -> Value.t
(** Column access by name; rejects stubs with a clear error. *)

val size : t -> int
val node_component_names : t -> string list
val rel_component_names : t -> string list

(** {2 Update operators} (paper Sect. 2) *)

val insert : t -> string -> Value.t list -> Conode.t
val update : t -> Conode.t -> (string * Value.t) list -> unit
val delete : t -> Conode.t -> unit

val connect : t -> rel:string -> Conode.t -> Conode.t -> Conode.conn
(** Binary relationships only. *)

val disconnect : t -> rel:string -> Conode.t -> Conode.t -> unit

val pending_ops : t -> pending_op list
(** In application order. *)

val clear_pending : t -> unit
