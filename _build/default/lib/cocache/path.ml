(** Path expressions over the CO structure (paper Sect. 2): a dotted
    sequence of component tables and relationships denoting the set of
    target tuples reachable from the start component along the path,
    e.g. ["xdept.employment.xemp.empproperty.xskills"].

    Relationship names may be omitted when exactly one relationship
    connects two adjacent node components: ["xdept.xemp.xskills"]. *)

open Relcore
module H = Xnf.Hetstream

type step =
  | Via of string (* explicit relationship name *)
  | To of string (* node component; relationship inferred *)

let parse (path : string) : string * step list =
  match String.split_on_char '.' (String.trim path) with
  | [] | [ "" ] -> Errors.semantic_error "empty path expression"
  | start :: rest -> (start, List.map (fun s -> To s) rest)

(** Distinct preserving first-arrival order. *)
let dedup nodes =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (n : Conode.t) ->
      if Hashtbl.mem seen n.Conode.id then false
      else begin
        Hashtbl.add seen n.Conode.id ();
        true
      end)
    nodes

let is_rel ws name =
  match Hashtbl.find_opt ws.Workspace.stores name with
  | Some s -> (match s.Workspace.info.H.comp_kind with `Rel _ -> true | `Node -> false)
  | None -> false

let is_node ws name =
  match Hashtbl.find_opt ws.Workspace.stores name with
  | Some s -> (match s.Workspace.info.H.comp_kind with `Node -> true | `Rel _ -> false)
  | None -> false

(** The unique relationship from node component [a] to node component
    [b], if any. *)
let rel_between ws a b =
  let hits =
    List.filter
      (fun r ->
        let m = Workspace.rel_meta ws r in
        m.H.rm_parent = a && List.mem b m.H.rm_children)
      (Workspace.rel_component_names ws)
  in
  match hits with
  | [ r ] -> Some r
  | [] -> None
  | _ :: _ ->
    Errors.semantic_error
      "ambiguous path step %s.%s: several relationships apply; name one" a b

(** Evaluate a path expression: the set of target tuples reachable from
    the start component's tuples along the named steps. *)
let eval ws (path : string) : Conode.t list =
  let start, steps = parse path in
  if not (is_node ws start) then
    Errors.semantic_error "path must start at a node component, got %S" start;
  let rec go (current_comp : string) (frontier : Conode.t list) = function
    | [] -> frontier
    | To name :: rest when is_rel ws name -> begin
      (* explicit relationship step: must be followed by the target *)
      match rest with
      | To target :: rest' when is_node ws target ->
        let next =
          List.concat_map
            (fun (n : Conode.t) ->
              List.filter
                (fun (c : Conode.t) -> c.Conode.comp = target)
                (Conode.children n ~rel:name))
            frontier
        in
        go target (dedup next) rest'
      | _ ->
        Errors.semantic_error
          "path: relationship %S must be followed by a node component" name
    end
    | To name :: rest when is_node ws name -> begin
      match rel_between ws current_comp name with
      | Some r ->
        let next =
          List.concat_map
            (fun (n : Conode.t) ->
              List.filter
                (fun (c : Conode.t) -> c.Conode.comp = name)
                (Conode.children n ~rel:r))
            frontier
        in
        go name (dedup next) rest
      | None ->
        Errors.semantic_error "path: no relationship from %S to %S"
          current_comp name
    end
    | To name :: _ ->
      Errors.semantic_error "path references unknown component %S" name
    | Via _ :: _ -> assert false (* parse produces To only *)
  in
  let frontier =
    List.filter
      (fun (n : Conode.t) -> not (Conode.is_deleted n))
      (Workspace.nodes ws start)
  in
  go start frontier steps
