(** XNF API cursors (paper Sect. 2/5.2): {e independent} cursors over a
    node table, {e dependent} cursors from a parent along a
    relationship. *)

type t

val of_list : Conode.t list -> t
val open_component : Workspace.t -> string -> t
val open_children : ?position:int -> Conode.t -> rel:string -> t
val open_parents : Conode.t -> rel:string -> t

val next : t -> Conode.t option
val reset : t -> unit
val count : t -> int
val is_exhausted : t -> bool
val fold : ('a -> Conode.t -> 'a) -> 'a -> t -> 'a
val iter : (Conode.t -> unit) -> t -> unit
val to_list : t -> Conode.t list
