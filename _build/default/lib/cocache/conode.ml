(** Nodes of the client-side CO cache.

    "The workspace is constructed from the output tuples of the XNF
    query by converting connections into pointers which allow traversing
    the structure in any direction" (paper Sect. 5.1).  Connections are
    plain OCaml record references — following one is a pointer chase,
    no table lookup. *)

open Relcore

type dirty = Clean | Inserted | Updated | Deleted

type t = {
  id : int; (* system-generated tuple identifier *)
  comp : string; (* component (node table) name *)
  mutable values : Tuple.t;
  mutable original : Tuple.t; (* values as shipped (for write-back) *)
  mutable out_conns : conn list; (* connections where this node is parent *)
  mutable in_conns : conn list; (* connections where this node is a child *)
  mutable dirty : dirty;
}

and conn = {
  conn_id : int;
  rel : string;
  role : string;
  parent : t;
  children : t array;
  attrs : Relcore.Tuple.t; (* relationship attributes, [||] when none *)
}

let make ~id ~comp ~values =
  {
    id;
    comp;
    values;
    original = Array.copy values;
    out_conns = [];
    in_conns = [];
    dirty = Clean;
  }

(** Connections of [node] under relationship [rel] where it is the
    parent, in arrival order. *)
let conns_out node ~rel = List.filter (fun c -> c.rel = rel) node.out_conns

let conns_in node ~rel = List.filter (fun c -> c.rel = rel) node.in_conns

(** Children of [node] via [rel] (all partner positions, arrival order). *)
let children node ~rel =
  List.concat_map (fun c -> Array.to_list c.children) (conns_out node ~rel)

(** Parents of [node] via [rel]. *)
let parents node ~rel = List.map (fun c -> c.parent) (conns_in node ~rel)

(** All distinct relationship names leaving (entering) this node. *)
let out_rels node =
  List.sort_uniq compare (List.map (fun c -> c.rel) node.out_conns)

let in_rels node =
  List.sort_uniq compare (List.map (fun c -> c.rel) node.in_conns)

let is_deleted node = node.dirty = Deleted

let to_string node =
  Printf.sprintf "%s#%d%s" node.comp node.id (Tuple.to_string node.values)
