(** Path expressions over the CO structure (paper Sect. 2):
    ["xdept.employment.xemp.empproperty.xskills"].  Relationship names
    may be omitted when exactly one relationship connects two adjacent
    node components. *)

type step = Via of string | To of string

val parse : string -> string * step list
val eval : Workspace.t -> string -> Conode.t list
(** The distinct target tuples reachable from the start component's
    tuples along the path, first-arrival order. *)
