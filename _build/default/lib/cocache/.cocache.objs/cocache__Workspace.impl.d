lib/cocache/workspace.ml: Array Conode Errors Hashtbl List Relcore Schema Tuple Value Xnf
