lib/cocache/workspace.mli: Conode Hashtbl Relcore Schema Tuple Value Xnf
