lib/cocache/binding.ml: Array Conode List Relcore Tuple Value Workspace
