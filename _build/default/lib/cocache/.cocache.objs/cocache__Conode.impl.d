lib/cocache/conode.ml: Array List Printf Relcore Tuple
