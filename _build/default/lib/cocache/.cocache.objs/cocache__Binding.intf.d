lib/cocache/binding.mli: Conode Relcore Value Workspace
