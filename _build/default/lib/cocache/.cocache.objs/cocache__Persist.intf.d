lib/cocache/persist.mli: Workspace Xnf
