lib/cocache/cursor.ml: Array Conode List Workspace
