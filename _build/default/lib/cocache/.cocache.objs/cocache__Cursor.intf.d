lib/cocache/cursor.mli: Conode Workspace
