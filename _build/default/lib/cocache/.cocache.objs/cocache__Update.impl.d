lib/cocache/update.ml: Array Base_table Catalog Engine Errors Index List Relcore Schema Sqlkit Tuple Value Workspace Xnf
