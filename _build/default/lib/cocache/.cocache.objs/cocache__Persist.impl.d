lib/cocache/persist.ml: Array Buffer Conode Errors Fun List Relcore String Workspace Xnf
