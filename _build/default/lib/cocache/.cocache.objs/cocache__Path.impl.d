lib/cocache/path.ml: Conode Errors Hashtbl List Relcore String Workspace Xnf
