lib/cocache/update.mli: Engine Sqlkit Workspace Xnf
