lib/cocache/path.mli: Conode Workspace
