lib/cocache/conode.mli: Relcore Tuple
