(** Disk persistence of the XNF cache for long transactions (paper
    Sect. 5): state plus pending (unflushed) update operations. *)

val stream_of_workspace : Workspace.t -> Xnf.Hetstream.t
(** Rebuild a heterogeneous stream from the cache's current state
    (local inserts/updates included; deleted nodes dropped). *)

val save : Workspace.t -> string -> unit
val load : string -> Workspace.t
