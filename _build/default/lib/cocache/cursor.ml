(** XNF API cursors (paper Sect. 2/5.2): {e independent} cursors iterate
    the tuples of a node table; {e dependent} cursors navigate from a
    parent tuple to its children along a relationship edge.  Both run
    entirely on cache pointers. *)

type t = {
  items : Conode.t array;
  mutable pos : int; (* next position to deliver *)
}

let of_list nodes = { items = Array.of_list nodes; pos = 0 }

(** Independent cursor over all (live) tuples of a component table. *)
let open_component ws comp : t = of_list (Workspace.nodes ws comp)

(** Dependent cursor over the children of [parent] via [rel].  For
    n-ary relationships, [position] selects the partner slot. *)
let open_children ?position (parent : Conode.t) ~rel : t =
  let nodes =
    match position with
    | None -> Conode.children parent ~rel
    | Some i ->
      List.filter_map
        (fun (c : Conode.conn) ->
          if i < Array.length c.Conode.children then Some c.Conode.children.(i)
          else None)
        (Conode.conns_out parent ~rel)
  in
  of_list (List.filter (fun n -> not (Conode.is_deleted n)) nodes)

(** Dependent cursor in the other direction: parents of [child]. *)
let open_parents (child : Conode.t) ~rel : t =
  of_list
    (List.filter
       (fun n -> not (Conode.is_deleted n))
       (Conode.parents child ~rel))

let next (c : t) : Conode.t option =
  if c.pos >= Array.length c.items then None
  else begin
    let n = c.items.(c.pos) in
    c.pos <- c.pos + 1;
    Some n
  end

let reset (c : t) = c.pos <- 0
let count (c : t) = Array.length c.items
let is_exhausted (c : t) = c.pos >= Array.length c.items

let fold f acc (c : t) =
  let acc = ref acc in
  let rec go () =
    match next c with
    | None -> !acc
    | Some n ->
      acc := f !acc n;
      go ()
  in
  go ()

let iter f c = fold (fun () n -> f n) () c
let to_list c = List.rev (fold (fun acc n -> n :: acc) [] c)
