(** Nodes of the client-side CO cache; connections are plain record
    references (pointer navigation, paper Sect. 5.1). *)

open Relcore

type dirty = Clean | Inserted | Updated | Deleted

type t = {
  id : int; (* system-generated tuple identifier *)
  comp : string; (* component (node table) name *)
  mutable values : Tuple.t;
  mutable original : Tuple.t; (* values as shipped *)
  mutable out_conns : conn list; (* connections where this node is parent *)
  mutable in_conns : conn list; (* connections where this node is a child *)
  mutable dirty : dirty;
}

and conn = {
  conn_id : int;
  rel : string;
  role : string;
  parent : t;
  children : t array;
  attrs : Relcore.Tuple.t; (* relationship attributes, [||] when none *)
}

val make : id:int -> comp:string -> values:Tuple.t -> t

val conns_out : t -> rel:string -> conn list
val conns_in : t -> rel:string -> conn list

val children : t -> rel:string -> t list
(** Children via [rel], all partner positions, arrival order. *)

val parents : t -> rel:string -> t list

val out_rels : t -> string list
val in_rels : t -> string list

val is_deleted : t -> bool
val to_string : t -> string
