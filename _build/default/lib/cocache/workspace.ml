(** The XNF cache: the client-side main-memory representation of an
    extracted CO (paper Sect. 5, Fig. 7).

    Built in one pass over the heterogeneous stream; connection tuples
    become pointers (see {!Conode}).  Update operators record pending
    operations for later write-back (see {!Update}). *)

open Relcore
module H = Xnf.Hetstream

(** Pending write-back operations, in application order. *)
type pending_op =
  | P_insert of { comp : string; values : Tuple.t }
  | P_update of { comp : string; old_values : Tuple.t; new_values : Tuple.t }
  | P_delete of { comp : string; values : Tuple.t }
  | P_connect of { rel : string; parent : Tuple.t; child : Tuple.t }
  | P_disconnect of { rel : string; parent : Tuple.t; child : Tuple.t }

type component_store = {
  info : H.comp_info;
  mutable nodes : Conode.t list; (* reverse arrival order *)
  mutable count : int;
}

type t = {
  header : H.header;
  stores : (string, component_store) Hashtbl.t;
  by_id : (int, Conode.t) Hashtbl.t;
  mutable next_local_id : int; (* negative ids for client-side inserts *)
  mutable pending : pending_op list; (* reverse order *)
  mutable conn_count : int;
}

let find_store ws comp =
  match Hashtbl.find_opt ws.stores comp with
  | Some s -> s
  | None -> Errors.semantic_error "unknown CO component %S" comp

let schema ws comp = (find_store ws comp).info.H.comp_schema

let rel_meta ws rel =
  match (find_store ws rel).info.H.comp_kind with
  | `Rel m -> m
  | `Node -> Errors.semantic_error "%S is a node component, not a relationship" rel

(** Build the workspace from a heterogeneous stream: rows become nodes,
    connections become pointers (in both directions). *)
let of_stream (stream : H.t) : t =
  let ws =
    {
      header = stream.H.header;
      stores = Hashtbl.create 16;
      by_id = Hashtbl.create 1024;
      next_local_id = -1;
      pending = [];
      conn_count = 0;
    }
  in
  Array.iter
    (fun (info : H.comp_info) ->
      Hashtbl.replace ws.stores info.H.comp_name
        { info; nodes = []; count = 0 })
    stream.H.header.H.components;
  let comp_name no = stream.H.header.H.components.(no).H.comp_name in
  List.iter
    (fun item ->
      match item with
      | H.Row { comp; id; values } ->
        let store = Hashtbl.find ws.stores (comp_name comp) in
        let node = Conode.make ~id ~comp:(comp_name comp) ~values in
        store.nodes <- node :: store.nodes;
        store.count <- store.count + 1;
        Hashtbl.replace ws.by_id id node
      | H.Conn { rel; id; parent; children; attrs } ->
        let rel_name = comp_name rel in
        let meta =
          match stream.H.header.H.components.(rel).H.comp_kind with
          | `Rel m -> m
          | `Node -> Errors.execution_error "connection from node component"
        in
        (* A partner row may legitimately be absent (its component not in
           TAKE): materialize a value-less stub so the topology stays
           navigable — the paper's piggy-backed connections carry ids,
           not values. *)
        let resolve comp tid =
          match Hashtbl.find_opt ws.by_id tid with
          | Some n -> n
          | None ->
            let stub = Conode.make ~id:tid ~comp ~values:[||] in
            let store = Hashtbl.find ws.stores comp in
            store.nodes <- stub :: store.nodes;
            store.count <- store.count + 1;
            Hashtbl.replace ws.by_id tid stub;
            stub
        in
        let p = resolve meta.H.rm_parent parent in
        let cs =
          Array.mapi
            (fun i tid ->
              let comp =
                match List.nth_opt meta.H.rm_children i with
                | Some c -> c
                | None -> Errors.execution_error "connection arity mismatch"
              in
              resolve comp tid)
            children
        in
        let conn =
          {
            Conode.conn_id = id;
            rel = rel_name;
            role = meta.H.rm_role;
            parent = p;
            children = cs;
            attrs;
          }
        in
        p.Conode.out_conns <- p.Conode.out_conns @ [ conn ];
        Array.iter
          (fun c -> c.Conode.in_conns <- c.Conode.in_conns @ [ conn ])
          cs;
        ws.conn_count <- ws.conn_count + 1)
    stream.H.items;
  (* restore arrival order *)
  Hashtbl.iter (fun _ s -> s.nodes <- List.rev s.nodes) ws.stores;
  ws

(** Live nodes of a component (arrival order, deletions hidden). *)
let nodes ws comp =
  List.filter (fun n -> not (Conode.is_deleted n)) (find_store ws comp).nodes

let node_count ws comp = List.length (nodes ws comp)
let connection_count ws = ws.conn_count
let find_by_id ws id = Hashtbl.find_opt ws.by_id id

(** Is this a value-less stub (partner of a shipped connection whose
    component was not in TAKE)? *)
let is_stub ws (node : Conode.t) =
  Array.length node.Conode.values = 0
  && Schema.arity (schema ws node.Conode.comp) > 0

(** Column access by name. *)
let get ws (node : Conode.t) col : Value.t =
  let s = schema ws node.Conode.comp in
  if is_stub ws node then
    Errors.semantic_error
      "component %S was not shipped (not in TAKE); node %d has no values"
      node.Conode.comp node.Conode.id;
  node.Conode.values.(Schema.find s col)

(** Total number of live nodes. *)
let size ws =
  Hashtbl.fold
    (fun _ s acc ->
      acc
      + List.length (List.filter (fun n -> not (Conode.is_deleted n)) s.nodes))
    ws.stores 0

let node_component_names ws =
  Array.to_list ws.header.H.components
  |> List.filter_map (fun (c : H.comp_info) ->
         match c.H.comp_kind with `Node -> Some c.H.comp_name | `Rel _ -> None)

let rel_component_names ws =
  Array.to_list ws.header.H.components
  |> List.filter_map (fun (c : H.comp_info) ->
         match c.H.comp_kind with `Rel _ -> Some c.H.comp_name | `Node -> None)

(* -- update operators (paper Sect. 2: insert/read/update/delete plus
   connect/disconnect) -------------------------------------------------- *)

let fresh_local_id ws =
  let id = ws.next_local_id in
  ws.next_local_id <- ws.next_local_id - 1;
  id

let insert ws comp (values : Value.t list) : Conode.t =
  let store = find_store ws comp in
  let row = Schema.validate_row store.info.H.comp_schema (Array.of_list values) in
  let node = Conode.make ~id:(fresh_local_id ws) ~comp ~values:row in
  node.Conode.dirty <- Conode.Inserted;
  store.nodes <- store.nodes @ [ node ];
  store.count <- store.count + 1;
  Hashtbl.replace ws.by_id node.Conode.id node;
  ws.pending <- P_insert { comp; values = row } :: ws.pending;
  node

let update ws (node : Conode.t) (sets : (string * Value.t) list) : unit =
  if Conode.is_deleted node then
    Errors.execution_error "update of a deleted node";
  let s = schema ws node.Conode.comp in
  let old_values = Array.copy node.Conode.values in
  List.iter
    (fun (col, v) -> node.Conode.values.(Schema.find s col) <- v)
    sets;
  ignore (Schema.validate_row s node.Conode.values);
  if node.Conode.dirty = Conode.Clean then node.Conode.dirty <- Conode.Updated;
  ws.pending <-
    P_update
      {
        comp = node.Conode.comp;
        old_values;
        new_values = Array.copy node.Conode.values;
      }
    :: ws.pending

let delete ws (node : Conode.t) : unit =
  if Conode.is_deleted node then ()
  else begin
    node.Conode.dirty <- Conode.Deleted;
    (* drop its connections from partners *)
    List.iter
      (fun (c : Conode.conn) ->
        Array.iter
          (fun (ch : Conode.t) ->
            ch.Conode.in_conns <-
              List.filter (fun x -> x.Conode.conn_id <> c.Conode.conn_id)
                ch.Conode.in_conns)
          c.Conode.children)
      node.Conode.out_conns;
    List.iter
      (fun (c : Conode.conn) ->
        c.Conode.parent.Conode.out_conns <-
          List.filter (fun x -> x.Conode.conn_id <> c.Conode.conn_id)
            c.Conode.parent.Conode.out_conns)
      node.Conode.in_conns;
    ws.pending <-
      P_delete { comp = node.Conode.comp; values = Array.copy node.Conode.values }
      :: ws.pending
  end

(** Connect [parent] and [child] under binary relationship [rel]. *)
let connect ws ~rel (parent : Conode.t) (child : Conode.t) : Conode.conn =
  let meta = rel_meta ws rel in
  if meta.H.rm_parent <> parent.Conode.comp then
    Errors.semantic_error "%S expects parent component %S, got %S" rel
      meta.H.rm_parent parent.Conode.comp;
  (match meta.H.rm_children with
  | [ c ] when c = child.Conode.comp -> ()
  | [ _ ] ->
    Errors.semantic_error "%S expects child component %S, got %S" rel
      (List.hd meta.H.rm_children) child.Conode.comp
  | _ -> Errors.unsupported "connect on n-ary relationships");
  let conn =
    {
      Conode.conn_id = fresh_local_id ws;
      rel;
      role = meta.H.rm_role;
      parent;
      children = [| child |];
      attrs = [||];
    }
  in
  parent.Conode.out_conns <- parent.Conode.out_conns @ [ conn ];
  child.Conode.in_conns <- child.Conode.in_conns @ [ conn ];
  ws.conn_count <- ws.conn_count + 1;
  ws.pending <-
    P_connect
      {
        rel;
        parent = Array.copy parent.Conode.values;
        child = Array.copy child.Conode.values;
      }
    :: ws.pending;
  conn

let disconnect ws ~rel (parent : Conode.t) (child : Conode.t) : unit =
  let existing =
    List.filter
      (fun (c : Conode.conn) ->
        c.Conode.rel = rel
        && Array.exists (fun ch -> ch == child) c.Conode.children)
      parent.Conode.out_conns
  in
  if existing = [] then
    Errors.execution_error "no %S connection between these nodes" rel;
  let ids = List.map (fun c -> c.Conode.conn_id) existing in
  parent.Conode.out_conns <-
    List.filter
      (fun (c : Conode.conn) -> not (List.mem c.Conode.conn_id ids))
      parent.Conode.out_conns;
  child.Conode.in_conns <-
    List.filter
      (fun (c : Conode.conn) -> not (List.mem c.Conode.conn_id ids))
      child.Conode.in_conns;
  ws.conn_count <- ws.conn_count - List.length ids;
  ws.pending <-
    P_disconnect
      {
        rel;
        parent = Array.copy parent.Conode.values;
        child = Array.copy child.Conode.values;
      }
    :: ws.pending

let pending_ops ws = List.rev ws.pending
let clear_pending ws = ws.pending <- []
