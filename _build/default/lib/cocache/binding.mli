(** Seamless host-language binding over the cache (the paper's C++
    interface, Sect. 5.2/6.2): typed OCaml records through a functor. *)

open Relcore

module type RECORD = sig
  type t

  val component : string
  val of_row : Value.t array -> t
  val to_row : t -> Value.t array
end

module Make (R : RECORD) : sig
  type t = R.t

  val all : Workspace.t -> t list
  (** All instances in the cache (the "container class"). *)

  val count : Workspace.t -> int
  val node_of : Workspace.t -> t -> Conode.t option

  val children :
    Workspace.t -> (module RECORD with type t = 'a) -> rel:string -> t -> 'a list
  (** Typed dependent navigation. *)

  val find : Workspace.t -> (t -> bool) -> t option
  val filter : Workspace.t -> (t -> bool) -> t list

  val insert : Workspace.t -> t -> Conode.t
  (** Queued for write-back like {!Workspace.insert}. *)
end
