(** Seamless host-language binding over the cache (paper Sect. 5.2/6.2:
    the C++ interface with generated classes and container/cursor
    templates — here, OCaml records through a functor).

    Instantiate {!Make} with a record mapping for a component; the
    resulting module exposes typed containers and typed navigation while
    the cache remains the single source of truth. *)

open Relcore

module type RECORD = sig
  type t

  val component : string
  (** the CO node-table this record maps *)

  val of_row : Value.t array -> t
  val to_row : t -> Value.t array
end

module Make (R : RECORD) = struct
  type t = R.t

  (** All instances in the cache (the paper's "container class"). *)
  let all (ws : Workspace.t) : t list =
    List.map (fun (n : Conode.t) -> R.of_row n.Conode.values)
      (Workspace.nodes ws R.component)

  let count (ws : Workspace.t) : int = Workspace.node_count ws R.component

  (** The cache node currently holding a record equal to [v]. *)
  let node_of (ws : Workspace.t) (v : t) : Conode.t option =
    let row = R.to_row v in
    List.find_opt
      (fun (n : Conode.t) -> Tuple.equal n.Conode.values row)
      (Workspace.nodes ws R.component)

  (** Typed dependent navigation: children of [v] along [rel] that map
    into component [Target]. *)
  let children (type a) (ws : Workspace.t)
      (module Target : RECORD with type t = a) ~rel (v : t) : a list =
    match node_of ws v with
    | None -> []
    | Some n ->
      List.filter_map
        (fun (c : Conode.t) ->
          if c.Conode.comp = Target.component then
            Some (Target.of_row c.Conode.values)
          else None)
        (Conode.children n ~rel)

  let find (ws : Workspace.t) (p : t -> bool) : t option =
    List.find_opt p (all ws)

  let filter (ws : Workspace.t) (p : t -> bool) : t list =
    List.filter p (all ws)

  (** Insert a typed record into the cache (queued for write-back). *)
  let insert (ws : Workspace.t) (v : t) : Conode.t =
    Workspace.insert ws R.component (Array.to_list (R.to_row v))
end
