(** Updatability analysis and SQL write-back (paper Sect. 2): node
    updates translate to view updates over one base table; connect and
    disconnect translate to foreign-key updates or connect-table
    insert/delete. *)

module Ast = Sqlkit.Ast
module Db = Engine.Database

type node_target = {
  nt_base : string; (* base table name *)
  nt_col_map : (string * string) list; (* component col -> base col *)
  nt_pred : Ast.pred; (* the view's selection predicate *)
}

type rel_target =
  | Foreign_key of {
      fk_child : string;
      fk_pairs : (string * string) list; (* (child col, parent col) *)
    }
  | Connect_table of {
      ct_table : string;
      ct_parent_pairs : (string * string) list; (* (connect col, parent col) *)
      ct_child_pairs : (string * string) list;
    }

val analyze_node : Db.t -> Xnf.Xnf_ast.query -> string -> node_target option
(** [Some _] iff the component's table expression is a select/project
    over one base table. *)

val analyze_rel : Xnf.Xnf_ast.query -> string -> rel_target option
(** [Some _] iff the relationship is binary and its predicate decomposes
    into FK or connect-table column equalities. *)

val translate :
  Db.t -> Xnf.Xnf_ast.query -> Workspace.t -> Workspace.pending_op ->
  Ast.stmt list
(** SQL statements implementing one pending operation; raises
    {!Relcore.Errors.Db_error} when not translatable. *)

val flush : Db.t -> Xnf.Xnf_ast.query -> Workspace.t -> string list
(** Apply all pending operations; returns the SQL executed.  Clears the
    pending list on success. *)

val flush_atomic : Db.t -> Xnf.Xnf_ast.query -> Workspace.t -> string list
(** Like {!flush} but inside one transaction: on failure nothing is
    applied and the pending list is preserved for retry. *)
