(** XNF semantic rewrite (paper Sect. 4.2): compile the XNF operator
    down to plain NF QGM.

    Two steps, as in the paper: (1) remove the XNF operator — each output
    table becomes an ordinary NF query graph — and (2) rewrite the
    reachability predicates.  Reachability rewrite derives every non-root
    component from the {e already-derived} table of its parents joined
    with its own defining expression (Fig. 5b); the derived parent tables
    and the relationship join boxes become common subexpressions shared
    by all consumers (Fig. 5/6, Table 1). *)

open Relcore
module Qgm = Starq.Qgm

type rel_output = {
  ro_name : string;
  ro_role : string;
  ro_parent : string;
  ro_children : string list;
  ro_parent_span : int * int;
  ro_child_spans : (string * (int * int)) list; (* positional *)
  ro_attr_span : int * int;
  ro_attr_schema : Relcore.Schema.t;
  ro_box : Qgm.box;
}

type node_output = {
  no_name : string;
  no_box : Qgm.box; (* full-width derived table *)
  no_take_cols : string list option; (* TAKE projection, applied at delivery *)
}

type result = {
  op : Xnf_semantic.xnf_op;
  node_outputs : node_output list; (* every node, derivation order *)
  rel_outputs : rel_output list;
  take_nodes : string list; (* subset of node names in TAKE *)
  take_rels : string list;
}

(** Topological derivation order of node components: every node after
    the parents of all its incoming relationships.  Fails on cycles
    (recursive COs go through {!Xnf_recursive} instead). *)
let derivation_order (op : Xnf_semantic.xnf_op) : string list =
  let nodes =
    List.map (fun (t : Xnf_ast.table_def) -> t.Xnf_ast.tname)
      op.Xnf_semantic.xquery.Xnf_ast.tables
  in
  (* C depends on P for every relationship P -> C *)
  let deps c =
    (* root components need no reachability derivation, hence no deps *)
    if not (List.assoc c op.Xnf_semantic.reachability) then []
    else
      List.filter_map
        (fun (_, (r : Xnf_semantic.relbox)) ->
          if List.mem c r.Xnf_semantic.rchildren then Some r.Xnf_semantic.rparent
          else None)
        op.Xnf_semantic.rel_boxes
  in
  let state = Hashtbl.create 16 and order = ref [] in
  let rec visit n =
    match Hashtbl.find_opt state n with
    | Some `Done -> ()
    | Some `Active ->
      Errors.semantic_error
        "component %S participates in a cycle: use the recursive evaluator" n
    | None ->
      Hashtbl.replace state n `Active;
      List.iter visit (deps n);
      Hashtbl.replace state n `Done;
      order := n :: !order
  in
  List.iter visit nodes;
  List.rev !order

(** Pass-through projection box over [input], selecting columns [cols]
    (all columns when [None]). *)
let projection_box ~name ?(distinct = false) (input : Qgm.box)
    (cols : int list option) : Qgm.box =
  let q = Qgm.make_quant input in
  let idxs =
    match cols with
    | Some l -> l
    | None -> List.init (Array.length input.Qgm.head) Fun.id
  in
  let head =
    Array.of_list
      (List.map
         (fun i ->
           let h = input.Qgm.head.(i) in
           { h with Qgm.hexpr = Qgm.Qcol (q.Qgm.qid, i) })
         idxs)
  in
  let box = Qgm.make_box ~name ~distinct Qgm.Select ~head in
  box.Qgm.quants <- [ q ];
  box

(** The reachability rewrite. *)
let rewrite (op : Xnf_semantic.xnf_op) : result =
  let order = derivation_order op in
  let derived : (string, Qgm.box) Hashtbl.t = Hashtbl.create 16 in
  (* all (relationship, child-span) pairs deriving component [c]; a
     self- or repeated-child relationship contributes several spans *)
  let incoming c =
    List.concat_map
      (fun (rname, (r : Xnf_semantic.relbox)) ->
        List.filter_map
          (fun (ch, span) -> if ch = c then Some (rname, r, span) else None)
          r.Xnf_semantic.rchild_spans)
      op.Xnf_semantic.rel_boxes
  in
  (* Derive node tables in topological order.  Before a relationship's
     join box is used, its parent quantifier is retargeted from the
     defining expression to the derived (reachable) parent table. *)
  List.iter
    (fun cname ->
      let cbox = Option.get (Xnf_semantic.find_node op cname) in
      let needs_reachability = List.assoc cname op.Xnf_semantic.reachability in
      let dbox =
        if not needs_reachability then cbox
        else begin
          let rels = incoming cname in
          assert (rels <> []);
          let via_projections =
            List.map
              (fun (rname, (r : Xnf_semantic.relbox), (off, w)) ->
                (* retarget parent quantifier to the derived parent *)
                let dparent =
                  match Hashtbl.find_opt derived r.Xnf_semantic.rparent with
                  | Some b -> b
                  | None -> assert false (* topological order guarantees it *)
                in
                r.Xnf_semantic.rparent_quant.Qgm.over <- dparent;
                let proj =
                  projection_box
                    ~name:(cname ^ "_via_" ^ rname)
                    ~distinct:true r.Xnf_semantic.rbox
                    (Some (List.init w (fun i -> off + i)))
                in
                (* restore the node's own column names *)
                proj.Qgm.head <-
                  Array.mapi
                    (fun i (h : Qgm.head_col) ->
                      { h with Qgm.hname = cbox.Qgm.head.(i).Qgm.hname })
                    proj.Qgm.head;
                proj)
              rels
          in
          match via_projections with
          | [ single ] ->
            single.Qgm.name <- cname;
            single
          | several ->
            let union =
              Qgm.make_box ~name:cname ~distinct:true Qgm.Union
                ~head:(Array.map (fun h -> h) (List.hd several).Qgm.head)
            in
            union.Qgm.quants <- List.map (fun b -> Qgm.make_quant b) several;
            (* positional head referencing the first input *)
            union.Qgm.head <-
              Array.mapi
                (fun i (h : Qgm.head_col) ->
                  {
                    h with
                    Qgm.hexpr =
                      Qgm.Qcol ((List.hd union.Qgm.quants).Qgm.qid, i);
                  })
                union.Qgm.head;
            union
        end
      in
      Hashtbl.replace derived cname dbox)
    order;
  (* retarget parent quantifiers of relationships whose children needed no
     reachability pass (their boxes were never touched above) *)
  List.iter
    (fun (_, (r : Xnf_semantic.relbox)) ->
      let dparent = Hashtbl.find derived r.Xnf_semantic.rparent in
      r.Xnf_semantic.rparent_quant.Qgm.over <- dparent)
    op.Xnf_semantic.rel_boxes;
  (* output boxes (the paper's 'output' Select boxes next to Top) *)
  let take_nodes, take_rels =
    match op.Xnf_semantic.take with
    | Xnf_ast.Take_all ->
      ( List.map fst op.Xnf_semantic.node_boxes,
        List.map fst op.Xnf_semantic.rel_boxes )
    | Xnf_ast.Take_items items ->
      let names = List.map (fun (i : Xnf_ast.take_item) -> i.Xnf_ast.take_name) items in
      ( List.filter (fun (n, _) -> List.mem n names) op.Xnf_semantic.node_boxes
        |> List.map fst,
        List.filter (fun (n, _) -> List.mem n names) op.Xnf_semantic.rel_boxes
        |> List.map fst )
  in
  let take_cols_of n =
    match op.Xnf_semantic.take with
    | Xnf_ast.Take_all -> None
    | Xnf_ast.Take_items items ->
      List.find_map
        (fun (i : Xnf_ast.take_item) ->
          if i.Xnf_ast.take_name = n then i.Xnf_ast.take_cols else None)
        items
  in
  let node_outputs =
    List.map
      (fun cname ->
        let dbox = Hashtbl.find derived cname in
        {
          no_name = cname;
          no_box = projection_box ~name:(cname ^ "_out") dbox None;
          no_take_cols = take_cols_of cname;
        })
      order
  in
  let rel_outputs =
    List.map
      (fun (rname, (r : Xnf_semantic.relbox)) ->
        {
          ro_name = rname;
          ro_role = r.Xnf_semantic.rrole;
          ro_parent = r.Xnf_semantic.rparent;
          ro_children = r.Xnf_semantic.rchildren;
          ro_parent_span = r.Xnf_semantic.rparent_span;
          ro_child_spans = r.Xnf_semantic.rchild_spans;
          ro_attr_span = r.Xnf_semantic.rattr_span;
          ro_attr_schema = r.Xnf_semantic.rattr_schema;
          ro_box = projection_box ~name:(rname ^ "_out") r.Xnf_semantic.rbox None;
        })
      op.Xnf_semantic.rel_boxes
  in
  { op; node_outputs; rel_outputs; take_nodes; take_rels }

(** All output boxes, nodes first (derivation order), for multi-plan
    compilation with cross-output sharing. *)
let output_boxes (r : result) : (string * Qgm.box) list =
  List.map (fun n -> (n.no_name, n.no_box)) r.node_outputs
  @ List.map (fun ro -> (ro.ro_name, ro.ro_box)) r.rel_outputs
