(** Abstract syntax of XNF queries (paper Sect. 2): the CO constructor
    [OUT OF <component and relationship definitions> TAKE <projection>]. *)

module Ast = Sqlkit.Ast

type table_def = {
  tname : string;
  texpr : Ast.query; (* the defining SQL table expression *)
  explicit_root : bool; (* [ROOT name AS ...] reachability override *)
}

type using_ref = { utable : string; ualias : string }

type relate_def = {
  rname : string;
  parent : string;
  role : string; (* VIA role; also names the parent in the predicate *)
  children : string list; (* n-ary allowed *)
  using : using_ref list; (* mapping tables, not part of the CO *)
  rattrs : (string * Ast.expr) list;
      (* relationship attributes carried by each connection *)
  rpred : Ast.pred;
}

type take_spec = Take_all | Take_items of take_item list

and take_item = {
  take_name : string;
  take_cols : string list option; (* column projection for node tables *)
}

type query = {
  tables : table_def list;
  relates : relate_def list;
  take : take_spec;
}

val edges : query -> (string * string * string) list
(** (relationship, parent, child) triples of the schema graph. *)

val roots : query -> string list
(** Explicitly marked roots plus components that are no relationship's
    child — reachable by definition. *)

val is_recursive : query -> bool
(** Does the schema graph contain a cycle requiring fixpoint evaluation?
    Edges into root components are ignored. *)
