(** Parser for the XNF surface syntax (paper Sect. 2, Fig. 1).  Reuses
    the SQL lexer/parser for embedded table expressions and predicates —
    XNF is strictly an extension of SQL. *)

val parse_query_at : Sqlkit.Parser.state -> Xnf_ast.query
(** Parse starting at OUT OF from an existing parser state. *)

val parse : string -> Xnf_ast.query

val is_xnf_text : string -> bool
(** Does this view/query text start with OUT OF? *)
