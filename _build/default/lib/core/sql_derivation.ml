(** Baseline: single-component SQL derivation (paper Fig. 6, Table 1).

    Without the XNF multi-table framework, each component of the CO must
    be retrieved by its own standalone SQL query: reachability becomes
    existential subqueries over the parents' (recursively reachable)
    derivations, and every query recomputes the shared subexpressions.
    This module synthesises those queries from the XNF AST, so the same
    CO definition drives both the XNF pipeline and the relational
    baseline. *)

open Relcore
module Ast = Sqlkit.Ast
module Db = Engine.Database

(** Rename table qualifiers in an expression/predicate (component names
    to generated aliases).  Unqualified columns pass through — the
    standalone queries keep one alias per partner, so SQL scoping
    resolves them the same way the XNF frame did. *)
let rec rename_expr (map : (string * string) list) (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Col { tbl = Some t; col } ->
    let t = String.lowercase_ascii t in
    let t' = Option.value (List.assoc_opt t map) ~default:t in
    Ast.Col { tbl = Some t'; col }
  | Ast.Col { tbl = None; _ } | Ast.Lit _ -> e
  | Ast.Binop (op, a, b) -> Ast.Binop (op, rename_expr map a, rename_expr map b)
  | Ast.Neg a -> Ast.Neg (rename_expr map a)
  | Ast.Agg (fn, arg) -> Ast.Agg (fn, Option.map (rename_expr map) arg)
  | Ast.Fn (name, args) -> Ast.Fn (name, List.map (rename_expr map) args)

let rec rename_pred map (p : Ast.pred) : Ast.pred =
  match p with
  | Ast.Ptrue -> p
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, rename_expr map a, rename_expr map b)
  | Ast.And (a, b) -> Ast.And (rename_pred map a, rename_pred map b)
  | Ast.Or (a, b) -> Ast.Or (rename_pred map a, rename_pred map b)
  | Ast.Not a -> Ast.Not (rename_pred map a)
  | Ast.Is_null e -> Ast.Is_null (rename_expr map e)
  | Ast.Is_not_null e -> Ast.Is_not_null (rename_expr map e)
  | Ast.Like (e, pat) -> Ast.Like (rename_expr map e, pat)
  | Ast.Between (e, lo, hi) ->
    Ast.Between (rename_expr map e, rename_expr map lo, rename_expr map hi)
  | Ast.In_list (e, es) ->
    Ast.In_list (rename_expr map e, List.map (rename_expr map) es)
  | Ast.Exists q -> Ast.Exists q (* subqueries keep their own scope *)
  | Ast.In_query (e, q) -> Ast.In_query (rename_expr map e, q)

let find_table_def (ast : Xnf_ast.query) name : Xnf_ast.table_def =
  match
    List.find_opt (fun (t : Xnf_ast.table_def) -> t.Xnf_ast.tname = name)
      ast.Xnf_ast.tables
  with
  | Some t -> t
  | None -> Errors.semantic_error "unknown component %S" name

let incoming (ast : Xnf_ast.query) c =
  List.filter (fun (r : Xnf_ast.relate_def) -> List.mem c r.Xnf_ast.children)
    ast.Xnf_ast.relates

let fresh_alias =
  let n = ref 0 in
  fun base ->
    incr n;
    Printf.sprintf "%s%d" base !n

let using_refs (r : Xnf_ast.relate_def) =
  List.map
    (fun (u : Xnf_ast.using_ref) ->
      Ast.Table_name { name = u.Xnf_ast.utable; alias = Some u.Xnf_ast.ualias })
    r.Xnf_ast.using

(** The reachability predicate for component [c] bound to alias
    [c_alias]: an EXISTS per incoming relationship, recursively requiring
    a reachable parent.  Mirrors Fig. 3a / Sect. 4.2. *)
let rec reach_pred (ast : Xnf_ast.query) (c : string) (c_alias : string) :
    Ast.pred =
  let rels = incoming ast c in
  if rels = [] then Ast.Ptrue (* roots are reachable by definition *)
  else
    let per_rel (r : Xnf_ast.relate_def) =
      let parent_alias = fresh_alias "p" in
      let parent_def = find_table_def ast r.Xnf_ast.parent in
      (* siblings (other children of an n-ary relationship) must also match *)
      let sibling_aliases =
        List.map
          (fun ch -> if ch = c then (ch, c_alias) else (ch, fresh_alias "s"))
          r.Xnf_ast.children
      in
      (* rename: parent name and role -> parent alias; each child -> its alias *)
      let map =
        (String.lowercase_ascii r.Xnf_ast.parent, parent_alias)
        :: (String.lowercase_ascii r.Xnf_ast.role, parent_alias)
        :: List.map
             (fun (ch, a) -> (String.lowercase_ascii ch, a))
             sibling_aliases
      in
      let from =
        Ast.Derived { query = parent_def.Xnf_ast.texpr; alias = parent_alias }
        :: List.filter_map
             (fun (ch, a) ->
               if a = c_alias then None
               else
                 Some
                   (Ast.Derived
                      { query = (find_table_def ast ch).Xnf_ast.texpr; alias = a }))
             sibling_aliases
        @ using_refs r
      in
      let where =
        Ast.conj
          [
            rename_pred map r.Xnf_ast.rpred;
            reach_pred ast r.Xnf_ast.parent parent_alias;
          ]
      in
      Ast.Exists (Ast.simple_query ~where [ Ast.Sel_expr (Ast.int_lit 1, None) ] from)
    in
    match List.map per_rel rels with
    | [] -> Ast.Ptrue
    | [ p ] -> p
    | p :: rest -> List.fold_left (fun acc q -> Ast.Or (acc, q)) p rest

(** Standalone query deriving node component [c]. *)
let node_query (ast : Xnf_ast.query) (c : string) : Ast.query =
  let def = find_table_def ast c in
  let alias = String.lowercase_ascii c in
  let where = reach_pred ast c alias in
  let q =
    Ast.simple_query ~distinct:true ~where [ Ast.Table_star alias ]
      [ Ast.Derived { query = def.Xnf_ast.texpr; alias } ]
  in
  q

(** Standalone query deriving relationship [r]'s connections: the
    reachable parent derivation joined with the children's defining
    expressions (Fig. 6c). *)
let rel_query (ast : Xnf_ast.query) (r : Xnf_ast.relate_def) : Ast.query =
  let parent_alias = fresh_alias "p" in
  let parent_derived =
    (* the full reachable-parent derivation, as in the xdept/xemp views *)
    node_query ast r.Xnf_ast.parent
  in
  let child_aliases = List.map (fun ch -> (ch, fresh_alias "c")) r.Xnf_ast.children in
  let map =
    (String.lowercase_ascii r.Xnf_ast.parent, parent_alias)
    :: (String.lowercase_ascii r.Xnf_ast.role, parent_alias)
    :: List.map (fun (ch, a) -> (String.lowercase_ascii ch, a)) child_aliases
  in
  let from =
    Ast.Derived { query = parent_derived; alias = parent_alias }
    :: List.map
         (fun (ch, a) ->
           Ast.Derived { query = (find_table_def ast ch).Xnf_ast.texpr; alias = a })
         child_aliases
    @ using_refs r
  in
  let select =
    Ast.Table_star parent_alias
    :: List.map (fun (_, a) -> Ast.Table_star a) child_aliases
  in
  Ast.simple_query ~distinct:true ~where:(rename_pred map r.Xnf_ast.rpred) select
    from

(** All standalone component queries, Table-1 style: nodes then
    relationships, in declaration order. *)
let component_queries (ast : Xnf_ast.query) : (string * Ast.query) list =
  if Xnf_ast.is_recursive ast then
    Errors.unsupported
      "single-component SQL derivation cannot express recursive COs";
  List.map
    (fun (t : Xnf_ast.table_def) -> (t.Xnf_ast.tname, node_query ast t.Xnf_ast.tname))
    ast.Xnf_ast.tables
  @ List.map
      (fun (r : Xnf_ast.relate_def) -> (r.Xnf_ast.rname, rel_query ast r))
      ast.Xnf_ast.relates

(** Execute the baseline: one independent query per component, each with
    its own execution context (no cross-query sharing — that is the
    point of the comparison). *)
let extract (db : Db.t) (ast : Xnf_ast.query) : (string * Tuple.t list) list =
  List.map
    (fun (name, q) -> (name, Executor.Exec.run (Db.compile_ast db q)))
    (component_queries ast)

(** Compile each standalone query to its rewritten QGM graph (for
    operation counting à la Table 1). *)
let component_graphs (db : Db.t) (ast : Xnf_ast.query) :
    (string * Starq.Qgm.box list) list =
  List.map
    (fun (name, q) ->
      let g = Starq.Build.build_query (Db.catalog db) q in
      ignore (Starq.Engine.rewrite_graph g);
      (name, [ g.Starq.Qgm.top ]))
    (component_queries ast)
