(** Baseline: navigational ("N+1 queries") extraction (paper Sect. 1).

    "One straightforward way of extracting data with complex structure
    is to follow the parent/child relationships: for each parent
    instance, execute a query to get the children; repeat [...].  This
    style of data extraction leads to numerous queries."

    Two modes:
    - [`Sql_text]: for every parent tuple a fresh SQL statement is
      synthesised, parsed, compiled and executed — the realistic
      application-level loop;
    - [`Prepared]: the per-relationship child query is compiled once and
      re-executed per parent via a one-row parameter table — isolating
      the set-orientation effect from compilation overhead. *)

open Relcore
module Ast = Sqlkit.Ast
module Qgm = Starq.Qgm
module Db = Engine.Database

type stats = {
  queries_executed : int;
  rows_fetched : int;
  counts : (string * int) list; (* component -> distinct tuples/connections *)
}

(** Literal for a value, for query-text synthesis. *)
let lit_of_value (v : Value.t) : Ast.expr = Ast.Lit v

(** Substitute parent column references by literals from the given tuple
    (the application holds the parent row in memory and splices its
    values into the child query). *)
let rec subst_parent_expr ~aliases ~(schema : Schema.t) ~(row : Tuple.t)
    (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Col { tbl = Some t; col } when List.mem (String.lowercase_ascii t) aliases
    ->
    lit_of_value row.(Schema.find schema col)
  | Ast.Col _ | Ast.Lit _ -> e
  | Ast.Binop (op, a, b) ->
    Ast.Binop
      ( op,
        subst_parent_expr ~aliases ~schema ~row a,
        subst_parent_expr ~aliases ~schema ~row b )
  | Ast.Neg a -> Ast.Neg (subst_parent_expr ~aliases ~schema ~row a)
  | Ast.Agg (fn, arg) ->
    Ast.Agg (fn, Option.map (subst_parent_expr ~aliases ~schema ~row) arg)
  | Ast.Fn (name, args) ->
    Ast.Fn (name, List.map (subst_parent_expr ~aliases ~schema ~row) args)

let rec subst_parent_pred ~aliases ~schema ~row (p : Ast.pred) : Ast.pred =
  let se = subst_parent_expr ~aliases ~schema ~row in
  let sp = subst_parent_pred ~aliases ~schema ~row in
  match p with
  | Ast.Ptrue -> p
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, se a, se b)
  | Ast.And (a, b) -> Ast.And (sp a, sp b)
  | Ast.Or (a, b) -> Ast.Or (sp a, sp b)
  | Ast.Not a -> Ast.Not (sp a)
  | Ast.Is_null e -> Ast.Is_null (se e)
  | Ast.Is_not_null e -> Ast.Is_not_null (se e)
  | Ast.Like (e, pat) -> Ast.Like (se e, pat)
  | Ast.Between (e, lo, hi) -> Ast.Between (se e, se lo, se hi)
  | Ast.In_list (e, es) -> Ast.In_list (se e, List.map se es)
  | Ast.Exists q -> Ast.Exists q
  | Ast.In_query (e, q) -> Ast.In_query (se e, q)

(** Per-parent child query (text mode): FROM children + USING tables,
    WHERE rpred with the parent's columns replaced by literals. *)
let child_query (ast : Xnf_ast.query) (r : Xnf_ast.relate_def)
    ~(parent_schema : Schema.t) ~(parent_row : Tuple.t) : Ast.query =
  let aliases =
    [
      String.lowercase_ascii r.Xnf_ast.parent; String.lowercase_ascii r.Xnf_ast.role;
    ]
  in
  let where =
    subst_parent_pred ~aliases ~schema:parent_schema ~row:parent_row
      r.Xnf_ast.rpred
  in
  let from =
    List.map
      (fun ch ->
        let def = Sql_derivation.find_table_def ast ch in
        Ast.Derived
          { query = def.Xnf_ast.texpr; alias = String.lowercase_ascii ch })
      r.Xnf_ast.children
    @ List.map
        (fun (u : Xnf_ast.using_ref) ->
          Ast.Table_name { name = u.Xnf_ast.utable; alias = Some u.Xnf_ast.ualias })
        r.Xnf_ast.using
  in
  let select =
    List.map (fun ch -> Ast.Table_star (String.lowercase_ascii ch)) r.Xnf_ast.children
  in
  Ast.simple_query ~distinct:true ~where select from

(** Navigational extraction.  Follows the relationships breadth-first
    from the roots, issuing one child query per (parent tuple,
    relationship).  Object sharing is respected through per-component
    dedup maps, which also makes the walk terminate on recursive COs. *)
let extract ?(mode = `Sql_text) (db : Db.t) (ast : Xnf_ast.query) : stats =
  let queries = ref 0 and fetched = ref 0 in
  let node_found : (string, unit Tuple.Tbl.t) Hashtbl.t = Hashtbl.create 8 in
  let conn_count : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (t : Xnf_ast.table_def) ->
      Hashtbl.replace node_found t.Xnf_ast.tname (Tuple.Tbl.create 64))
    ast.Xnf_ast.tables;
  List.iter
    (fun (r : Xnf_ast.relate_def) -> Hashtbl.replace conn_count r.Xnf_ast.rname 0)
    ast.Xnf_ast.relates;
  let schemas : (string, Schema.t) Hashtbl.t = Hashtbl.create 8 in
  let queue = Queue.create () in
  let discover comp (row : Tuple.t) =
    let tbl = Hashtbl.find node_found comp in
    if not (Tuple.Tbl.mem tbl row) then begin
      Tuple.Tbl.add tbl row ();
      Queue.add (comp, row) queue
    end
  in
  (* prepared mode: per relationship, a compiled plan over a 1-row
     parameter table standing in for the parent *)
  let prepared : (string, Base_table.t * Optimizer.Plan.compiled) Hashtbl.t =
    Hashtbl.create 8
  in
  let prepare (r : Xnf_ast.relate_def) parent_schema =
    match Hashtbl.find_opt prepared r.Xnf_ast.rname with
    | Some p -> p
    | None ->
      let op = Xnf_semantic.analyze (Db.catalog db) ast in
      let rb = Option.get (Xnf_semantic.find_rel op r.Xnf_ast.rname) in
      let tmp =
        Base_table.create ~name:("__nav_" ^ r.Xnf_ast.rname) parent_schema
      in
      rb.Xnf_semantic.rparent_quant.Qgm.over <- Qgm.base_box tmp;
      let plan =
        Optimizer.Planner.compile ~share:false
          { Qgm.top = rb.Xnf_semantic.rbox; order_by = []; limit = None; strip = None }
      in
      let p = (tmp, plan) in
      Hashtbl.replace prepared r.Xnf_ast.rname p;
      p
  in
  (* 1. root queries *)
  List.iter
    (fun root ->
      let def = Sql_derivation.find_table_def ast root in
      let c = Db.compile_ast db def.Xnf_ast.texpr in
      Hashtbl.replace schemas root c.Optimizer.Plan.out_schema;
      incr queries;
      let rows = Executor.Exec.run c in
      fetched := !fetched + List.length rows;
      List.iter (discover root) rows)
    (Xnf_ast.roots ast);
  (* resolve child schemas lazily from their defining expressions *)
  let schema_of comp =
    match Hashtbl.find_opt schemas comp with
    | Some s -> s
    | None ->
      let def = Sql_derivation.find_table_def ast comp in
      let c = Db.compile_ast db def.Xnf_ast.texpr in
      Hashtbl.replace schemas comp c.Optimizer.Plan.out_schema;
      c.Optimizer.Plan.out_schema
  in
  (* 2. follow relationships per parent tuple *)
  while not (Queue.is_empty queue) do
    let comp, row = Queue.pop queue in
    let parent_schema = schema_of comp in
    List.iter
      (fun (r : Xnf_ast.relate_def) ->
        if r.Xnf_ast.parent = comp then begin
          incr queries;
          let child_rows =
            match mode with
            | `Sql_text ->
              let q = child_query ast r ~parent_schema ~parent_row:row in
              let sql = Sqlkit.Pretty.query_to_string q in
              (* full pipeline: parse, compile, execute *)
              Db.query_rows db sql
            | `Prepared ->
              let tmp, plan = prepare r parent_schema in
              Base_table.truncate tmp;
              ignore (Base_table.insert tmp row);
              (* keep only the child spans: drop the leading parent span
                 and any trailing relationship-attribute columns *)
              let pw = Schema.arity parent_schema in
              let cw =
                List.fold_left
                  (fun acc ch -> acc + Schema.arity (schema_of ch))
                  0 r.Xnf_ast.children
              in
              List.map (fun full -> Array.sub full pw cw)
                (Executor.Exec.run plan)
          in
          fetched := !fetched + List.length child_rows;
          (* connections are set-level facts: duplicate join rows (e.g.
             parallel mapping-table entries) yield one connection *)
          let child_rows =
            let seen = Tuple.Tbl.create 16 in
            List.filter
              (fun row ->
                if Tuple.Tbl.mem seen row then false
                else begin
                  Tuple.Tbl.add seen row ();
                  true
                end)
              child_rows
          in
          Hashtbl.replace conn_count r.Xnf_ast.rname
            (Hashtbl.find conn_count r.Xnf_ast.rname + List.length child_rows);
          (* split multi-child rows into per-child tuples *)
          List.iter
            (fun (crow : Tuple.t) ->
              let off = ref 0 in
              List.iter
                (fun ch ->
                  let w = Schema.arity (schema_of ch) in
                  discover ch (Array.sub crow !off w);
                  off := !off + w)
                r.Xnf_ast.children)
            child_rows
        end)
      ast.Xnf_ast.relates
  done;
  let counts =
    List.map
      (fun (t : Xnf_ast.table_def) ->
        ( t.Xnf_ast.tname,
          Tuple.Tbl.length (Hashtbl.find node_found t.Xnf_ast.tname) ))
      ast.Xnf_ast.tables
    @ List.map
        (fun (r : Xnf_ast.relate_def) ->
          (r.Xnf_ast.rname, Hashtbl.find conn_count r.Xnf_ast.rname))
        ast.Xnf_ast.relates
  in
  { queries_executed = !queries; rows_fetched = !fetched; counts }
