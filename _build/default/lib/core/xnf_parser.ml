(** Parser for the XNF surface syntax (paper Sect. 2, Fig. 1):

    {v
    OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
           xemp  AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno),
           empproperty AS (RELATE xemp VIA POSSESSES, xskills
                           USING EMPSKILLS es
                           WHERE xemp.eno = es.eseno AND es.essno = xskills.sno)
    TAKE *
    v}

    Reuses the SQL lexer and parser for embedded table expressions and
    predicates — XNF is "strictly an extension" to SQL. *)

open Relcore
module P = Sqlkit.Parser
module Token = Sqlkit.Token
module Ast = Sqlkit.Ast

let shorthand_query table_name : Ast.query =
  Ast.simple_query [ Ast.Star ] [ Ast.Table_name { name = table_name; alias = None } ]

(** Parse one OUT OF definition: either a component table or a RELATE. *)
let parse_def st : [ `Table of Xnf_ast.table_def | `Relate of Xnf_ast.relate_def ]
    =
  (* 'ROOT' is a contextual keyword: 'root AS ...' is a component named
     root, 'ROOT xpart AS ...' marks xpart as an explicit root *)
  let explicit_root =
    match P.peek_ahead st 1 with
    | Token.Ident next when next <> "as" -> P.accept_kw st "root"
    | _ -> false
  in
  let name = P.ident st in
  P.expect_kw st "as";
  match P.peek st with
  | Token.Punct "(" -> begin
    P.expect_punct st "(";
    if P.at_kw st "relate" then begin
      P.expect_kw st "relate";
      let parent = P.ident st in
      P.expect_kw st "via";
      let role = P.ident st in
      let children = ref [] in
      while P.accept_punct st "," do
        children := P.ident st :: !children
      done;
      let using = ref [] in
      if P.accept_kw st "using" then begin
        let one () =
          let utable = P.ident st in
          (* dotted: a component of another XNF view as mapping table *)
          let utable =
            if P.accept_punct st "." then utable ^ "." ^ P.ident st else utable
          in
          let ualias =
            match P.peek st with
            | Token.Ident a when not (List.mem a P.reserved_after_table_ref) ->
              P.advance st;
              a
            | _ -> utable
          in
          { Xnf_ast.utable; ualias }
        in
        using := [ one () ];
        while P.accept_punct st "," do
          using := one () :: !using
        done
      end;
      (* relationship attributes: WITH (expr AS name, ...) *)
      let rattrs = ref [] in
      if P.accept_kw st "with" then begin
        P.expect_punct st "(";
        let one () =
          let e = P.parse_expr st in
          P.expect_kw st "as";
          let n = P.ident st in
          (n, e)
        in
        rattrs := [ one () ];
        while P.accept_punct st "," do
          rattrs := one () :: !rattrs
        done;
        P.expect_punct st ")"
      end;
      let rpred =
        if P.accept_kw st "where" then P.parse_pred st else Ast.Ptrue
      in
      P.expect_punct st ")";
      if !children = [] then
        Errors.semantic_error "relationship %S has no child partner" name;
      `Relate
        {
          Xnf_ast.rname = name;
          parent;
          role;
          children = List.rev !children;
          using = List.rev !using;
          rattrs = List.rev !rattrs;
          rpred;
        }
    end
    else begin
      let q = P.parse_query st in
      P.expect_punct st ")";
      `Table { Xnf_ast.tname = name; texpr = q; explicit_root }
    end
  end
  | Token.Ident _ ->
    (* shorthand: xemp AS EMP *)
    let base = P.ident st in
    `Table { Xnf_ast.tname = name; texpr = shorthand_query base; explicit_root }
  | t ->
    P.error st "expected a table expression or RELATE, found %S"
      (Token.to_string t)

let parse_take st : Xnf_ast.take_spec =
  if P.accept_punct st "*" then Xnf_ast.Take_all
  else begin
    let one () =
      let take_name = P.ident st in
      let take_cols =
        if P.peek st = Token.Punct "(" then begin
          P.expect_punct st "(";
          let cols = ref [ P.ident st ] in
          while P.accept_punct st "," do
            cols := P.ident st :: !cols
          done;
          P.expect_punct st ")";
          Some (List.rev !cols)
        end
        else None
      in
      { Xnf_ast.take_name; take_cols }
    in
    let items = ref [ one () ] in
    while P.accept_punct st "," do
      items := one () :: !items
    done;
    Xnf_ast.Take_items (List.rev !items)
  end

(** Parse a full XNF query starting at OUT OF. *)
let parse_query_at st : Xnf_ast.query =
  P.expect_kw st "out";
  P.expect_kw st "of";
  let tables = ref [] and relates = ref [] in
  let add () =
    match parse_def st with
    | `Table t -> tables := t :: !tables
    | `Relate r -> relates := r :: !relates
  in
  add ();
  while P.accept_punct st "," do
    add ()
  done;
  P.expect_kw st "take";
  let take = parse_take st in
  { Xnf_ast.tables = List.rev !tables; relates = List.rev !relates; take }

let parse (src : string) : Xnf_ast.query =
  let st = P.of_string src in
  let q = parse_query_at st in
  P.finish st;
  q

(** Is this view/query text XNF (as opposed to plain SQL)? *)
let is_xnf_text (src : string) : bool =
  let tokens = Sqlkit.Lexer.tokenize src in
  Array.length tokens >= 2
  && tokens.(0).Token.token = Token.Ident "out"
  && tokens.(1).Token.token = Token.Ident "of"
