(** XNF semantic rewrite (paper Sect. 4.2): compile the XNF operator to
    plain NF QGM.  Every non-root component is derived from the already
    derived tables of its parents joined with its own defining
    expression (Fig. 5b); derived parents and relationship join boxes
    become common subexpressions shared by all consumers. *)

module Qgm = Starq.Qgm

type rel_output = {
  ro_name : string;
  ro_role : string;
  ro_parent : string;
  ro_children : string list;
  ro_parent_span : int * int;
  ro_child_spans : (string * (int * int)) list;
  ro_attr_span : int * int; (* relationship attributes *)
  ro_attr_schema : Relcore.Schema.t;
  ro_box : Qgm.box;
}

type node_output = {
  no_name : string;
  no_box : Qgm.box; (* full-width derived table *)
  no_take_cols : string list option; (* TAKE projection, applied at delivery *)
}

type result = {
  op : Xnf_semantic.xnf_op;
  node_outputs : node_output list; (* derivation order *)
  rel_outputs : rel_output list;
  take_nodes : string list;
  take_rels : string list;
}

val derivation_order : Xnf_semantic.xnf_op -> string list
(** Topological order (roots first); raises on cycles — recursive COs go
    through {!Xnf_recursive}. *)

val projection_box :
  name:string -> ?distinct:bool -> Qgm.box -> int list option -> Qgm.box

val rewrite : Xnf_semantic.xnf_op -> result

val output_boxes : result -> (string * Qgm.box) list
(** All output boxes, nodes first, for multi-plan compilation with
    cross-output sharing. *)
