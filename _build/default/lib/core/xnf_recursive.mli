(** Fixpoint evaluation of recursive COs (paper Sect. 2): semi-naive
    iteration along the cycle's relationships until no new tuples
    qualify.  Also correct for acyclic graphs (used as a differential
    reference in the tests). *)

val extract : Engine.Database.t -> Xnf_semantic.xnf_op -> Hetstream.t
