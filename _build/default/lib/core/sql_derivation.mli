(** Baseline: single-component SQL derivation (paper Fig. 6, Table 1).
    Each CO component is retrieved by its own standalone SQL query;
    reachability becomes existential subqueries over the parents'
    recursive derivations, and shared subexpressions are recomputed by
    every query. *)

open Relcore
module Ast = Sqlkit.Ast
module Db = Engine.Database

val find_table_def : Xnf_ast.query -> string -> Xnf_ast.table_def

val reach_pred : Xnf_ast.query -> string -> string -> Ast.pred
(** The reachability predicate for a component bound to an alias: one
    EXISTS per incoming relationship, recursively requiring a reachable
    parent (the Fig. 3a shape). *)

val node_query : Xnf_ast.query -> string -> Ast.query
val rel_query : Xnf_ast.query -> Xnf_ast.relate_def -> Ast.query

val component_queries : Xnf_ast.query -> (string * Ast.query) list
(** All standalone queries, nodes then relationships, declaration
    order.  Raises {!Errors.Db_error} on recursive COs (inexpressible in
    the SQL subset). *)

val extract : Db.t -> Xnf_ast.query -> (string * Tuple.t list) list
(** One independent query per component, each with its own execution
    context (no cross-query sharing — the point of the comparison). *)

val component_graphs : Db.t -> Xnf_ast.query -> (string * Starq.Qgm.box list) list
(** Rewritten QGM graph per standalone query, for Table-1 counting. *)
