(** XNF semantic routines (paper Sect. 4.1): build the XNF QGM.

    Phases, as in the paper:
    - (0) install the XNF operator ({!xnf_op} below: its head is the set
      of output tables, its body the component derivations);
    - (1) derive component tables (via the reused SQL semantic routines)
      and relationship tables (joins of their partner tables and USING
      tables under the relationship predicate);
    - (2) attach reachability annotations to non-root components;
    - (3) record the TAKE projection. *)

open Relcore
module Qgm = Starq.Qgm
module Ast = Sqlkit.Ast

type relbox = {
  rbox : Qgm.box; (* parent × children × using join under rpred *)
  rparent : string;
  rrole : string;
  rchildren : string list;
  rparent_quant : Qgm.quant;
  rchild_quants : (string * Qgm.quant) list;
  (* head spans of rbox (offset, width): parent first, then the children
     positionally (self-relationships make name-based lookup ambiguous) *)
  rparent_span : int * int;
  rchild_spans : (string * (int * int)) list;
  (* relationship attributes, appended to the head after the spans *)
  rattr_span : int * int;
  rattr_schema : Relcore.Schema.t;
}

(** The XNF operator: the paper's multi-output QGM box. *)
type xnf_op = {
  xquery : Xnf_ast.query;
  node_boxes : (string * Qgm.box) list; (* defining table expressions *)
  rel_boxes : (string * relbox) list;
  roots : string list; (* reachable by definition *)
  reachability : (string * bool) list; (* component -> needs 'R' annotation *)
  take : Xnf_ast.take_spec;
}

let find_node op name = List.assoc_opt name op.node_boxes
let find_rel op name = List.assoc_opt name op.rel_boxes

let box_cols (b : Qgm.box) = Array.length b.Qgm.head

(** Phase 1a: derive the component tables. *)
let build_node_boxes cat (q : Xnf_ast.query) : (string * Qgm.box) list =
  List.map
    (fun (t : Xnf_ast.table_def) ->
      let box = Starq.Build.build_select_box cat [] t.Xnf_ast.texpr in
      box.Qgm.name <- t.Xnf_ast.tname;
      (t.Xnf_ast.tname, box))
    q.Xnf_ast.tables

(** Phase 1b: derive a relationship table.  The box's quantifiers range
    over the parent box, the child boxes and the USING base tables; its
    predicate is the RELATE ... WHERE clause; its head concatenates the
    partner columns (the information a connection carries). *)
let build_rel_box cat (nodes : (string * Qgm.box) list) (r : Xnf_ast.relate_def)
    : relbox =
  let lookup name =
    match List.assoc_opt name nodes with
    | Some b -> b
    | None ->
      Errors.semantic_error "relationship %S references unknown component %S"
        r.Xnf_ast.rname name
  in
  let parent_box = lookup r.Xnf_ast.parent in
  let child_boxes = List.map (fun c -> (c, lookup c)) r.Xnf_ast.children in
  let box = Qgm.make_box ~name:r.Xnf_ast.rname Qgm.Select ~head:[||] in
  let parent_quant = Qgm.make_quant parent_box in
  let child_quants = List.map (fun (c, b) -> (c, Qgm.make_quant b)) child_boxes in
  let using_quants =
    List.map
      (fun (u : Xnf_ast.using_ref) ->
        (* resolved like any FROM item: base table, SQL view, or a
           component of another XNF view *)
        let _, quant =
          Starq.Build.build_table_ref cat []
            (Ast.Table_name
               { name = u.Xnf_ast.utable; alias = Some u.Xnf_ast.ualias })
        in
        (u.Xnf_ast.ualias, quant))
      r.Xnf_ast.using
  in
  box.Qgm.quants <-
    (parent_quant :: List.map snd child_quants) @ List.map snd using_quants;
  (* Name resolution frame: partner component names, the role as an
     alias for the parent, and USING aliases.  For self-relationships
     (parent component also among the children) the bare component name
     denotes the child and the role is the only way to address the
     parent — that is what roles are for. *)
  let parent_is_child = List.mem r.Xnf_ast.parent r.Xnf_ast.children in
  let parent_name_entry =
    if parent_is_child then []
    else
      [ { Starq.Build.alias = String.lowercase_ascii r.Xnf_ast.parent;
          quant = parent_quant } ]
  in
  let frame =
    ({ Starq.Build.alias = String.lowercase_ascii r.Xnf_ast.role;
       quant = parent_quant }
     :: parent_name_entry)
    @ List.map
        (fun (c, q) -> { Starq.Build.alias = String.lowercase_ascii c; quant = q })
        child_quants
    @ List.map
        (fun (a, q) -> { Starq.Build.alias = String.lowercase_ascii a; quant = q })
        using_quants
  in
  let pred = Starq.Build.build_pred cat [ frame ] ~owner:box r.Xnf_ast.rpred in
  box.Qgm.preds <- Starq.Build.flatten_pred pred;
  (* head: parent columns then child columns; names carry a positional
     span prefix so self-relationships stay unambiguous *)
  let spans = ref [] and head = ref [] and off = ref 0 and span_no = ref 0 in
  let add_span name (q : Qgm.quant) =
    let w = box_cols q.Qgm.over in
    spans := (name, (!off, w)) :: !spans;
    for i = 0 to w - 1 do
      let h = q.Qgm.over.Qgm.head.(i) in
      head :=
        {
          Qgm.hname = Printf.sprintf "s%d_%s" !span_no h.Qgm.hname;
          htype = h.Qgm.htype;
          hexpr = Qgm.Qcol (q.Qgm.qid, i);
        }
        :: !head
    done;
    off := !off + w;
    incr span_no
  in
  add_span r.Xnf_ast.parent parent_quant;
  List.iter (fun (c, q) -> add_span c q) child_quants;
  (* relationship attributes, after the partner spans *)
  let attr_off = !off in
  let attr_cols =
    List.map
      (fun (aname, aexpr) ->
        let be = Starq.Build.build_expr [ frame ] aexpr in
        let env = Qgm.env_of_boxes [ box ] in
        let ty = Qgm.type_of_bexpr env be in
        head :=
          { Qgm.hname = "attr_" ^ aname; htype = ty; hexpr = be } :: !head;
        incr span_no;
        Relcore.Schema.column aname ty)
      r.Xnf_ast.rattrs
  in
  List.iter (fun _ -> incr off) attr_cols;
  box.Qgm.head <- Array.of_list (List.rev !head);
  let all_spans = List.rev !spans in
  let parent_span = snd (List.hd all_spans) in
  let child_spans = List.tl all_spans in
  {
    rbox = box;
    rparent = r.Xnf_ast.parent;
    rrole = r.Xnf_ast.role;
    rchildren = r.Xnf_ast.children;
    rparent_quant = parent_quant;
    rchild_quants = child_quants;
    rparent_span = parent_span;
    rchild_spans = child_spans;
    rattr_span = (attr_off, List.length attr_cols);
    rattr_schema = Relcore.Schema.make attr_cols;
  }

(** Semantic checks: name uniqueness, partner resolution, TAKE names. *)
let check (q : Xnf_ast.query) : unit =
  let names =
    List.map (fun (t : Xnf_ast.table_def) -> t.Xnf_ast.tname) q.Xnf_ast.tables
    @ List.map (fun (r : Xnf_ast.relate_def) -> r.Xnf_ast.rname) q.Xnf_ast.relates
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        Errors.semantic_error "duplicate component name %S" n;
      Hashtbl.add seen n ())
    names;
  if q.Xnf_ast.tables = [] then
    Errors.semantic_error "an XNF query needs at least one component table";
  (match q.Xnf_ast.take with
  | Xnf_ast.Take_all -> ()
  | Xnf_ast.Take_items items ->
    List.iter
      (fun (i : Xnf_ast.take_item) ->
        if not (Hashtbl.mem seen i.Xnf_ast.take_name) then
          Errors.semantic_error "TAKE references unknown component %S"
            i.Xnf_ast.take_name)
      items);
  if Xnf_ast.roots q = [] && q.Xnf_ast.relates <> [] then
    Errors.semantic_error
      "CO has no root component (every component is some relationship's \
       child); recursive COs still need an anchor"

(** Build the XNF operator for a query — the paper's phases (0)-(3). *)
let analyze cat (q : Xnf_ast.query) : xnf_op =
  check q;
  let node_boxes = build_node_boxes cat q in
  let rel_boxes =
    List.map
      (fun (r : Xnf_ast.relate_def) ->
        (r.Xnf_ast.rname, build_rel_box cat node_boxes r))
      q.Xnf_ast.relates
  in
  let roots = Xnf_ast.roots q in
  let reachability =
    List.map
      (fun (t : Xnf_ast.table_def) ->
        (t.Xnf_ast.tname, not (List.mem t.Xnf_ast.tname roots)))
      q.Xnf_ast.tables
  in
  { xquery = q; node_boxes; rel_boxes; roots; reachability; take = q.Xnf_ast.take }

(** Render the XNF operator (diagnostics; the Fig. 4 shape). *)
let dump (op : xnf_op) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "XNF operator\n";
  List.iter
    (fun (n, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  node %s%s (box %d)\n" n
           (if List.assoc n op.reachability then " [R]" else "")
           b.Qgm.bid))
    op.node_boxes;
  List.iter
    (fun (n, r) ->
      Buffer.add_string buf
        (Printf.sprintf "  rel %s: %s -[%s]-> %s (box %d)\n" n r.rparent r.rrole
           (String.concat ", " r.rchildren)
           r.rbox.Qgm.bid))
    op.rel_boxes;
  Buffer.add_string buf
    (Printf.sprintf "  roots: %s\n" (String.concat ", " op.roots));
  Buffer.contents buf
