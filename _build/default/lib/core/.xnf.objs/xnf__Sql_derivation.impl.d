lib/core/sql_derivation.ml: Engine Errors Executor List Option Printf Relcore Sqlkit Starq String Tuple Xnf_ast
