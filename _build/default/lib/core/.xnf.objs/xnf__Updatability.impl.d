lib/core/updatability.ml: Base_table Catalog Engine Errors List Option Relcore Schema Sql_derivation Sqlkit String Xnf_ast Xnf_parser
