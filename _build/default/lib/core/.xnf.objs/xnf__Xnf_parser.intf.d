lib/core/xnf_parser.mli: Sqlkit Xnf_ast
