lib/core/xnf_ast.ml: Hashtbl List Option Sqlkit
