lib/core/xnf_rewrite.mli: Relcore Starq Xnf_semantic
