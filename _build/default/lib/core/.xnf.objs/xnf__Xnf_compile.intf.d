lib/core/xnf_compile.mli: Catalog Engine Executor Hetstream Optimizer Relcore Starq Tuple Xnf_ast Xnf_rewrite Xnf_semantic
