lib/core/hetstream.ml: Array Buffer Char Dtype Errors Int64 List Relcore Schema String Tuple Value
