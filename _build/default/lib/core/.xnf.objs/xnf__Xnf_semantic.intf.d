lib/core/xnf_semantic.mli: Catalog Relcore Starq Xnf_ast
