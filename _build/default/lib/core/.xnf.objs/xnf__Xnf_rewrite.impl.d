lib/core/xnf_rewrite.ml: Array Errors Fun Hashtbl List Option Relcore Starq Xnf_ast Xnf_semantic
