lib/core/hetstream.mli: Buffer Relcore Schema Tuple Value
