lib/core/xnf_ast.mli: Sqlkit
