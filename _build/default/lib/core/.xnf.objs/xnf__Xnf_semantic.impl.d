lib/core/xnf_semantic.ml: Array Buffer Errors Hashtbl List Printf Relcore Sqlkit Starq String Xnf_ast
