lib/core/xnf_parser.ml: Array Errors List Relcore Sqlkit Xnf_ast
