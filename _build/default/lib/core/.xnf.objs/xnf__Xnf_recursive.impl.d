lib/core/xnf_recursive.ml: Array Base_table Engine Errors Executor Hashtbl Hetstream List Optimizer Option Relcore Schema Starq Tuple Value Xnf_ast Xnf_semantic
