lib/core/navigational.mli: Engine Xnf_ast
