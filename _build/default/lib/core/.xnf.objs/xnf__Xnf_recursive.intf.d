lib/core/xnf_recursive.mli: Engine Hetstream Xnf_semantic
