lib/core/navigational.ml: Array Base_table Engine Executor Hashtbl List Optimizer Option Queue Relcore Schema Sql_derivation Sqlkit Starq String Tuple Value Xnf_ast Xnf_semantic
