lib/core/sql_derivation.mli: Engine Relcore Sqlkit Starq Tuple Xnf_ast
