(** Baseline: navigational N+1-queries extraction (paper Sect. 1) — one
    child query per (parent tuple, relationship), breadth-first from the
    roots, with object sharing through dedup maps (which also makes the
    walk terminate on recursive COs). *)

module Db = Engine.Database

type stats = {
  queries_executed : int;
  rows_fetched : int;
  counts : (string * int) list; (* component -> tuples / connections *)
}

val extract : ?mode:[ `Sql_text | `Prepared ] -> Db.t -> Xnf_ast.query -> stats
(** [`Sql_text] (default): a fresh SQL statement per parent tuple,
    parsed and compiled each time — the realistic application loop.
    [`Prepared]: per-relationship plans compiled once and re-executed
    through a one-row parameter table. *)
