(** Updatability analysis of XNF views (paper Sect. 2): which node
    components translate to view updates over one base table, and which
    relationships translate to foreign-key updates or connect-table
    insert/delete.

    Used by the CO cache's write-back ({!Cocache.Update}) and by the SQL
    surface (UPDATE/DELETE/INSERT on [view.component], registered with
    {!Engine.Database} at link time). *)

open Relcore
module Ast = Sqlkit.Ast

type node_target = {
  nt_base : string; (* base table name *)
  nt_col_map : (string * string) list; (* component col -> base col *)
  nt_pred : Ast.pred; (* the view's selection predicate *)
}

type rel_target =
  | Foreign_key of {
      fk_child : string; (* child component *)
      fk_pairs : (string * string) list; (* (child col, parent col) *)
    }
  | Connect_table of {
      ct_table : string;
      ct_parent_pairs : (string * string) list; (* (connect col, parent col) *)
      ct_child_pairs : (string * string) list;
    }

(** Try to view a node's table expression as select/project over one
    base table. *)
let analyze_node (cat : Catalog.t) (ast : Xnf_ast.query) (comp : string) :
    node_target option =
  let def = Sql_derivation.find_table_def ast comp in
  let q = def.Xnf_ast.texpr in
  match q.Ast.from with
  | [ Ast.Table_name { name; _ } ]
    when (not q.Ast.distinct) && q.Ast.group_by = [] && q.Ast.having = None
         && Catalog.mem_table cat name ->
    let base = Catalog.find_table cat name in
    let base_schema = Base_table.schema base in
    let col_map =
      List.fold_left
        (fun acc item ->
          match acc, item with
          | None, _ -> None
          | Some acc, Ast.Star | Some acc, Ast.Table_star _ ->
            Some (acc @ List.map (fun c -> (c, c)) (Schema.column_names base_schema))
          | Some acc, Ast.Sel_expr (Ast.Col { col; _ }, alias) ->
            let out = Option.value alias ~default:col in
            Some (acc @ [ (String.lowercase_ascii out, String.lowercase_ascii col) ])
          | Some _, Ast.Sel_expr _ -> None (* computed column: not updatable *))
        (Some []) q.Ast.select
    in
    Option.map
      (fun m -> { nt_base = name; nt_col_map = m; nt_pred = q.Ast.where })
      col_map
  | _ -> None

(** Decompose a relationship predicate into column-equality pairs. *)
let eq_pairs (p : Ast.pred) :
    ((string option * string) * (string option * string)) list option =
  let atoms = Ast.conjuncts p in
  let pair = function
    | Ast.Cmp (Ast.Eq, Ast.Col { tbl = ta; col = ca }, Ast.Col { tbl = tb; col = cb })
      ->
      Some
        ( (Option.map String.lowercase_ascii ta, String.lowercase_ascii ca),
          (Option.map String.lowercase_ascii tb, String.lowercase_ascii cb) )
    | _ -> None
  in
  let pairs = List.map pair atoms in
  if List.exists Option.is_none pairs then None
  else Some (List.map Option.get pairs)

let analyze_rel (ast : Xnf_ast.query) (rel : string) : rel_target option =
  match
    List.find_opt (fun (r : Xnf_ast.relate_def) -> r.Xnf_ast.rname = rel)
      ast.Xnf_ast.relates
  with
  | None -> None
  | Some r -> begin
    match r.Xnf_ast.children with
    | [ child ] -> begin
      let parent_names =
        [
          String.lowercase_ascii r.Xnf_ast.parent;
          String.lowercase_ascii r.Xnf_ast.role;
        ]
      in
      let child_name = String.lowercase_ascii child in
      let side (t, c) =
        match t with
        | Some t when List.mem t parent_names -> Some (`Parent, c)
        | Some t when t = child_name -> Some (`Child, c)
        | Some t -> Some (`Using t, c)
        | None -> None
      in
      match eq_pairs r.Xnf_ast.rpred, r.Xnf_ast.using with
      | None, _ -> None
      | Some pairs, [] ->
        (* foreign key: every equality must be parent-col = child-col *)
        let fk =
          List.fold_left
            (fun acc (a, b) ->
              match acc with
              | None -> None
              | Some acc -> begin
                match side a, side b with
                | Some (`Parent, pc), Some (`Child, cc)
                | Some (`Child, cc), Some (`Parent, pc) ->
                  Some (acc @ [ (cc, pc) ])
                | _ -> None
              end)
            (Some []) pairs
        in
        Option.map (fun fk_pairs -> Foreign_key { fk_child = child; fk_pairs }) fk
      | Some pairs, [ u ] ->
        (* connect table: parent-col = u-col and u-col = child-col pairs *)
        let ualias = String.lowercase_ascii u.Xnf_ast.ualias in
        let classify (a, b) =
          match side a, side b with
          | Some (`Parent, pc), Some (`Using t, uc) when t = ualias ->
            Some (`P (uc, pc))
          | Some (`Using t, uc), Some (`Parent, pc) when t = ualias ->
            Some (`P (uc, pc))
          | Some (`Child, cc), Some (`Using t, uc) when t = ualias ->
            Some (`C (uc, cc))
          | Some (`Using t, uc), Some (`Child, cc) when t = ualias ->
            Some (`C (uc, cc))
          | _ -> None
        in
        let classified = List.map classify pairs in
        if List.exists Option.is_none classified then None
        else begin
          let classified = List.map Option.get classified in
          let ppairs =
            List.filter_map (function `P x -> Some x | `C _ -> None) classified
          in
          let cpairs =
            List.filter_map (function `C x -> Some x | `P _ -> None) classified
          in
          if ppairs = [] || cpairs = [] then None
          else
            Some
              (Connect_table
                 {
                   ct_table = u.Xnf_ast.utable;
                   ct_parent_pairs = ppairs;
                   ct_child_pairs = cpairs;
                 })
        end
      | Some _, _ :: _ :: _ -> None
    end
    | _ -> None (* n-ary relationships are not updatable *)
  end

(* -- SQL surface: UPDATE/DELETE/INSERT on view.component ----------------- *)

(** Rename component-column references (qualified by the component alias
    or unqualified) to base-table columns. *)
let rec rename_expr map (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Col { tbl = _; col } -> begin
    match List.assoc_opt (String.lowercase_ascii col) map with
    | Some base_col -> Ast.Col { tbl = None; col = base_col }
    | None ->
      Errors.semantic_error "column %S does not map onto the base table" col
  end
  | Ast.Lit _ -> e
  | Ast.Binop (op, a, b) -> Ast.Binop (op, rename_expr map a, rename_expr map b)
  | Ast.Neg a -> Ast.Neg (rename_expr map a)
  | Ast.Agg (fn, arg) -> Ast.Agg (fn, Option.map (rename_expr map) arg)
  | Ast.Fn (name, args) -> Ast.Fn (name, List.map (rename_expr map) args)

let rec rename_pred map (p : Ast.pred) : Ast.pred =
  match p with
  | Ast.Ptrue -> p
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, rename_expr map a, rename_expr map b)
  | Ast.And (a, b) -> Ast.And (rename_pred map a, rename_pred map b)
  | Ast.Or (a, b) -> Ast.Or (rename_pred map a, rename_pred map b)
  | Ast.Not a -> Ast.Not (rename_pred map a)
  | Ast.Is_null e -> Ast.Is_null (rename_expr map e)
  | Ast.Is_not_null e -> Ast.Is_not_null (rename_expr map e)
  | Ast.Like (e, pat) -> Ast.Like (rename_expr map e, pat)
  | Ast.Between (e, lo, hi) ->
    Ast.Between (rename_expr map e, rename_expr map lo, rename_expr map hi)
  | Ast.In_list (e, es) ->
    Ast.In_list (rename_expr map e, List.map (rename_expr map) es)
  | Ast.Exists _ | Ast.In_query _ ->
    Errors.unsupported "subqueries in DML against a view component"

(** Resolve a [view.component] DML target: the base table, the renamed
    SET list, and the WHERE with the view's selection predicate
    conjoined — classic updatable-view translation. *)
let dml_target (cat : Catalog.t) ~view ~component :
    (Xnf_ast.query * node_target) option =
  match Catalog.find_view_opt cat view with
  | Some { Catalog.language = `Xnf; text; _ } -> begin
    let ast = Xnf_parser.parse text in
    match analyze_node cat ast component with
    | Some nt -> Some (ast, nt)
    | None ->
      Errors.semantic_error
        "component %S of view %S is not updatable (not a select/project of \
         one base table)"
        component view
  end
  | Some { Catalog.language = `Sql; _ } | None -> None

(** Registered with {!Engine.Database.component_dml_translator}: rewrite
    a DML statement on [view.component] to one on the base table. *)
let translate_dml (cat : Catalog.t) ~view ~component (stmt : Ast.stmt) :
    Ast.stmt option =
  match dml_target cat ~view ~component with
  | None -> None
  | Some (_ast, nt) ->
    let map = nt.nt_col_map in
    Some
      (match stmt with
      | Ast.Update { sets; where; _ } ->
        Ast.Update
          {
            table_name = nt.nt_base;
            sets =
              List.map
                (fun (c, e) ->
                  match List.assoc_opt (String.lowercase_ascii c) map with
                  | Some base_col -> (base_col, rename_expr map e)
                  | None ->
                    Errors.semantic_error
                      "column %S does not map onto the base table" c)
                sets;
            where = Ast.conj [ rename_pred map where; nt.nt_pred ];
          }
      | Ast.Delete { where; _ } ->
        Ast.Delete
          {
            table_name = nt.nt_base;
            where = Ast.conj [ rename_pred map where; nt.nt_pred ];
          }
      | Ast.Insert { columns; rows; _ } ->
        let columns =
          match columns with
          | Some cols ->
            Some
              (List.map
                 (fun c ->
                   match List.assoc_opt (String.lowercase_ascii c) map with
                   | Some base_col -> base_col
                   | None ->
                     Errors.semantic_error
                       "column %S does not map onto the base table" c)
                 cols)
          | None -> Some (List.map snd map)
        in
        Ast.Insert { table_name = nt.nt_base; columns; rows }
      | _ -> Errors.unsupported "statement kind on a view component")

let () =
  Engine.Database.component_dml_translator :=
    Some (fun cat ~view ~component stmt -> translate_dml cat ~view ~component stmt)
