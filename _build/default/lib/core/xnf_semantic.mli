(** XNF semantic routines (paper Sect. 4.1): build the XNF operator
    ("XNF QGM") — component table derivations, relationship join boxes,
    reachability annotations and the TAKE projection. *)

open Relcore
module Qgm = Starq.Qgm

type relbox = {
  rbox : Qgm.box; (* parent x children x using join under the predicate *)
  rparent : string;
  rrole : string;
  rchildren : string list;
  rparent_quant : Qgm.quant; (* retargeted by the reachability rewrite *)
  rchild_quants : (string * Qgm.quant) list;
  rparent_span : int * int; (* (offset, width) in the rbox head *)
  rchild_spans : (string * (int * int)) list; (* positional *)
  rattr_span : int * int; (* relationship attributes, after the spans *)
  rattr_schema : Relcore.Schema.t;
}

type xnf_op = {
  xquery : Xnf_ast.query;
  node_boxes : (string * Qgm.box) list;
  rel_boxes : (string * relbox) list;
  roots : string list;
  reachability : (string * bool) list; (* component -> needs 'R' *)
  take : Xnf_ast.take_spec;
}

val find_node : xnf_op -> string -> Qgm.box option
val find_rel : xnf_op -> string -> relbox option

val check : Xnf_ast.query -> unit
(** Name uniqueness, partner resolution, TAKE names, root existence. *)

val analyze : Catalog.t -> Xnf_ast.query -> xnf_op
(** The paper's phases (0)-(3). *)

val dump : xnf_op -> string
(** Render the XNF operator (the Fig. 4 shape) for diagnostics. *)
