(** Abstract syntax of XNF queries (paper Sect. 2).

    An XNF query is the CO constructor [OUT OF <defs> TAKE <spec>] where
    the definitions are component tables (SQL table expressions) and
    relationships ([RELATE parent VIA role, child... USING ... WHERE p]). *)

module Ast = Sqlkit.Ast

(** A component (node) table: a named SQL table expression.
    [xemp AS EMP] is shorthand for [xemp AS (SELECT * FROM EMP)].
    [explicit_root] marks a component as reachable by definition even
    when it appears as a relationship child (the paper's fine-grained
    reachability specification, Sect. 4.1 phase 2) — written
    [ROOT name AS ...]. *)
type table_def = { tname : string; texpr : Ast.query; explicit_root : bool }

(** Auxiliary tables of a relationship ([USING] clause): mapping tables
    used for derivation but not part of the CO abstraction. *)
type using_ref = { utable : string; ualias : string }

type relate_def = {
  rname : string;
  parent : string; (* parent component name *)
  role : string; (* VIA role name *)
  children : string list; (* child component names (n-ary allowed) *)
  using : using_ref list;
  rattrs : (string * Ast.expr) list;
      (* relationship attributes carried by each connection,
         [WITH (expr AS name, ...)] *)
  rpred : Ast.pred;
}

type take_spec =
  | Take_all
  | Take_items of take_item list

and take_item = {
  take_name : string; (* component or relationship name *)
  take_cols : string list option; (* column projection for node tables *)
}

type query = {
  tables : table_def list;
  relates : relate_def list;
  take : take_spec;
}

(** Schema-graph edge list: (relationship, parent, child) triples. *)
let edges (q : query) : (string * string * string) list =
  List.concat_map
    (fun r -> List.map (fun c -> (r.rname, r.parent, c)) r.children)
    q.relates

(** Root components: explicitly marked ones plus those that are no
    relationship's child. *)
let roots (q : query) : string list =
  let child_names = List.concat_map (fun r -> r.children) q.relates in
  List.filter_map
    (fun t ->
      if t.explicit_root || not (List.mem t.tname child_names) then
        Some t.tname
      else None)
    q.tables

(** Does the schema graph contain a cycle requiring fixpoint evaluation?
    Edges into root components do not require derivation and are ignored. *)
let is_recursive (q : query) : bool =
  let rs = roots q in
  let es = List.filter (fun (_, _, c) -> not (List.mem c rs)) (edges q) in
  let nodes = List.map (fun t -> t.tname) q.tables in
  let state = Hashtbl.create 16 in
  (* 0 = unvisited, 1 = in progress, 2 = done *)
  let get n = Option.value (Hashtbl.find_opt state n) ~default:0 in
  let rec visit n =
    match get n with
    | 1 -> true
    | 2 -> false
    | _ ->
      Hashtbl.replace state n 1;
      let children =
        List.filter_map (fun (_, p, c) -> if p = n then Some c else None) es
      in
      let cyc = List.exists visit children in
      Hashtbl.replace state n 2;
      cyc
  in
  List.exists visit nodes
