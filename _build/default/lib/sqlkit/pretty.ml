(** Render the SQL AST back to source text.

    Round-tripping through {!Parser} is exercised by property tests; the
    navigational baseline also uses this to synthesise per-parent
    queries. *)

open Relcore

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"

let cmpop_str = function
  | Ast.Eq -> "="
  | Ast.Ne -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let agg_str = function
  | Ast.Count_star | Ast.Count -> "COUNT"
  | Ast.Sum -> "SUM"
  | Ast.Avg -> "AVG"
  | Ast.Min -> "MIN"
  | Ast.Max -> "MAX"

let rec expr_to_string = function
  | Ast.Col { tbl = Some t; col } -> t ^ "." ^ col
  | Ast.Col { tbl = None; col } -> col
  | Ast.Lit v -> Value.to_literal v
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op)
      (expr_to_string b)
  | Ast.Neg e -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Ast.Agg (Ast.Count_star, _) -> "COUNT(*)"
  | Ast.Agg (fn, Some e) -> Printf.sprintf "%s(%s)" (agg_str fn) (expr_to_string e)
  | Ast.Agg (fn, None) -> Printf.sprintf "%s(*)" (agg_str fn)
  | Ast.Fn (name, args) ->
    Printf.sprintf "%s(%s)" (String.uppercase_ascii name)
      (String.concat ", " (List.map expr_to_string args))

let rec pred_to_string = function
  | Ast.Ptrue -> "TRUE = TRUE"
  | Ast.Cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (expr_to_string a) (cmpop_str op)
      (expr_to_string b)
  | Ast.And (a, b) ->
    Printf.sprintf "(%s AND %s)" (pred_to_string a) (pred_to_string b)
  | Ast.Or (a, b) ->
    Printf.sprintf "(%s OR %s)" (pred_to_string a) (pred_to_string b)
  | Ast.Not p -> Printf.sprintf "(NOT %s)" (pred_to_string p)
  | Ast.Is_null e -> Printf.sprintf "%s IS NULL" (expr_to_string e)
  | Ast.Is_not_null e -> Printf.sprintf "%s IS NOT NULL" (expr_to_string e)
  | Ast.Exists q -> Printf.sprintf "EXISTS (%s)" (query_to_string q)
  | Ast.In_list (e, es) ->
    Printf.sprintf "%s IN (%s)" (expr_to_string e)
      (String.concat ", " (List.map expr_to_string es))
  | Ast.In_query (e, q) ->
    Printf.sprintf "%s IN (%s)" (expr_to_string e) (query_to_string q)
  | Ast.Between (e, lo, hi) ->
    Printf.sprintf "%s BETWEEN %s AND %s" (expr_to_string e)
      (expr_to_string lo) (expr_to_string hi)
  | Ast.Like (e, pat) ->
    Printf.sprintf "%s LIKE %s" (expr_to_string e) (Value.to_literal (Value.Str pat))

and select_item_to_string = function
  | Ast.Star -> "*"
  | Ast.Table_star t -> t ^ ".*"
  | Ast.Sel_expr (e, Some alias) -> expr_to_string e ^ " AS " ^ alias
  | Ast.Sel_expr (e, None) -> expr_to_string e

and table_ref_to_string = function
  | Ast.Table_name { name; alias = Some a } -> name ^ " " ^ a
  | Ast.Table_name { name; alias = None } -> name
  | Ast.Derived { query; alias } ->
    Printf.sprintf "(%s) AS %s" (query_to_string query) alias

and query_to_string (q : Ast.query) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if q.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map select_item_to_string q.select));
  if q.from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf
      (String.concat ", " (List.map table_ref_to_string q.from))
  end;
  (match q.where with
  | Ast.Ptrue -> ()
  | p ->
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (pred_to_string p));
  if q.group_by <> [] then begin
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf
      (String.concat ", " (List.map expr_to_string q.group_by))
  end;
  (match q.having with
  | Some p ->
    Buffer.add_string buf " HAVING ";
    Buffer.add_string buf (pred_to_string p)
  | None -> ());
  if q.order_by <> [] then begin
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              expr_to_string e ^ match dir with `Asc -> "" | `Desc -> " DESC")
            q.order_by))
  end;
  (match q.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  Buffer.contents buf

let stmt_to_string = function
  | Ast.Select_stmt q -> query_to_string q
  | Ast.Create_table { table_name; columns; primary_key } ->
    let cols =
      List.map
        (fun { Ast.col_name; col_type; col_nullable } ->
          Printf.sprintf "%s %s%s" col_name
            (Dtype.to_string col_type)
            (if col_nullable then "" else " NOT NULL"))
        columns
    in
    let pk =
      match primary_key with
      | Some keys -> [ "PRIMARY KEY (" ^ String.concat ", " keys ^ ")" ]
      | None -> []
    in
    Printf.sprintf "CREATE TABLE %s (%s)" table_name
      (String.concat ", " (cols @ pk))
  | Ast.Create_index { index_name; on_table; columns; unique } ->
    Printf.sprintf "CREATE %sINDEX %s ON %s (%s)"
      (if unique then "UNIQUE " else "")
      index_name on_table
      (String.concat ", " columns)
  | Ast.Create_view { view_name; body_text } ->
    Printf.sprintf "CREATE VIEW %s AS %s" view_name body_text
  | Ast.Insert { table_name; columns; rows } ->
    let cols =
      match columns with
      | Some cs -> " (" ^ String.concat ", " cs ^ ")"
      | None -> ""
    in
    let row vs = "(" ^ String.concat ", " (List.map expr_to_string vs) ^ ")" in
    Printf.sprintf "INSERT INTO %s%s VALUES %s" table_name cols
      (String.concat ", " (List.map row rows))
  | Ast.Update { table_name; sets; where } ->
    let set_str =
      String.concat ", "
        (List.map (fun (c, e) -> c ^ " = " ^ expr_to_string e) sets)
    in
    let where_str =
      match where with Ast.Ptrue -> "" | p -> " WHERE " ^ pred_to_string p
    in
    Printf.sprintf "UPDATE %s SET %s%s" table_name set_str where_str
  | Ast.Delete { table_name; where } ->
    let where_str =
      match where with Ast.Ptrue -> "" | p -> " WHERE " ^ pred_to_string p
    in
    Printf.sprintf "DELETE FROM %s%s" table_name where_str
  | Ast.Drop_table name -> "DROP TABLE " ^ name
  | Ast.Drop_view name -> "DROP VIEW " ^ name
  | Ast.Begin_txn -> "BEGIN"
  | Ast.Commit_txn -> "COMMIT"
  | Ast.Rollback_txn -> "ROLLBACK"
