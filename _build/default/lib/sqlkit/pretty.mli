(** Render the SQL AST back to source text (round-trips through
    {!Parser}; also used to synthesise queries for the navigational
    baseline and cache write-back). *)

val binop_str : Ast.binop -> string
val cmpop_str : Ast.cmpop -> string
val agg_str : Ast.agg_fn -> string

val expr_to_string : Ast.expr -> string
val pred_to_string : Ast.pred -> string
val select_item_to_string : Ast.select_item -> string
val table_ref_to_string : Ast.table_ref -> string
val query_to_string : Ast.query -> string
val stmt_to_string : Ast.stmt -> string
