(** Recursive-descent parser for the SQL subset.

    The parser state and the query-level entry points are exposed so the
    XNF front end (lib/core) can embed SQL table expressions inside XNF
    queries without re-lexing. *)

open Relcore

type state = { tokens : Token.located array; mutable pos : int }

let of_tokens tokens = { tokens; pos = 0 }
let of_string src = of_tokens (Lexer.tokenize src)

let cur st = st.tokens.(st.pos)
let peek st = (cur st).Token.token

let peek_ahead st n =
  let i = st.pos + n in
  if i >= Array.length st.tokens then Token.Eof else st.tokens.(i).Token.token

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let error st fmt =
  let { Token.line; col; _ } = cur st in
  Errors.parse_error ~line ~col fmt

let expect_punct st p =
  match peek st with
  | Token.Punct q when String.equal p q -> advance st
  | t -> error st "expected %S, found %S" p (Token.to_string t)

let accept_punct st p =
  match peek st with
  | Token.Punct q when String.equal p q ->
    advance st;
    true
  | _ -> false

(** Keyword tests: keywords are plain identifiers matched positionally. *)
let at_kw st kw = match peek st with Token.Ident s -> String.equal s kw | _ -> false

let accept_kw st kw =
  if at_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (accept_kw st kw) then
    error st "expected keyword %S, found %S" kw (Token.to_string (peek st))

let at_kw2 st kw1 kw2 =
  at_kw st kw1
  && match peek_ahead st 1 with Token.Ident s -> String.equal s kw2 | _ -> false

(* Words that terminate a table alias / cannot begin one. *)
let reserved_after_table_ref =
  [
    "where"; "group"; "having"; "order"; "limit"; "on"; "inner"; "join";
    "left"; "right"; "union"; "take"; "relate"; "out"; "via"; "using"; "as";
    "from"; "and"; "or"; "not"; "in"; "like"; "between"; "is"; "asc"; "desc";
    "set"; "values"; "exists";
  ]

let ident st =
  match peek st with
  | Token.Ident s ->
    advance st;
    s
  | t -> error st "expected identifier, found %S" (Token.to_string t)

(* -- expressions ---------------------------------------------------- *)

let agg_of_name = function
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Punct "+" ->
      advance st;
      lhs := Ast.Binop (Ast.Add, !lhs, parse_multiplicative st)
    | Token.Punct "-" ->
      advance st;
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_multiplicative st)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Punct "*" ->
      advance st;
      lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st)
    | Token.Punct "/" ->
      advance st;
      lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st)
    | Token.Punct "%" ->
      advance st;
      lhs := Ast.Binop (Ast.Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  if accept_punct st "-" then Ast.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Token.Int_lit i ->
    advance st;
    Ast.Lit (Value.Int i)
  | Token.Float_lit f ->
    advance st;
    Ast.Lit (Value.Float f)
  | Token.Str_lit s ->
    advance st;
    Ast.Lit (Value.Str s)
  | Token.Punct "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | Token.Ident "null" ->
    advance st;
    Ast.Lit Value.Null
  | Token.Ident "true" ->
    advance st;
    Ast.Lit (Value.Bool true)
  | Token.Ident "false" ->
    advance st;
    Ast.Lit (Value.Bool false)
  | Token.Ident name -> begin
    match agg_of_name name, peek_ahead st 1 with
    | Some fn, Token.Punct "(" ->
      advance st;
      advance st;
      if accept_punct st "*" then begin
        if fn <> Ast.Count then error st "only COUNT accepts *";
        expect_punct st ")";
        Ast.Agg (Ast.Count_star, None)
      end
      else begin
        let arg = parse_expr st in
        expect_punct st ")";
        Ast.Agg (fn, Some arg)
      end
    | None, Token.Punct "("
      when not (List.mem name reserved_after_table_ref) ->
      (* scalar function call *)
      advance st;
      advance st;
      let args = ref [] in
      if peek st <> Token.Punct ")" then begin
        args := [ parse_expr st ];
        while accept_punct st "," do
          args := parse_expr st :: !args
        done
      end;
      expect_punct st ")";
      Ast.Fn (name, List.rev !args)
    | _ ->
      advance st;
      if accept_punct st "." then
        let colname = ident st in
        Ast.Col { tbl = Some name; col = colname }
      else Ast.Col { tbl = None; col = name }
  end
  | t -> error st "expected expression, found %S" (Token.to_string t)

(* -- predicates ------------------------------------------------------ *)

and parse_pred st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept_kw st "or" do
    lhs := Ast.Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while accept_kw st "and" do
    lhs := Ast.And (!lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  if accept_kw st "not" then Ast.Not (parse_not st) else parse_atom_pred st

and parse_atom_pred st =
  if at_kw st "exists" then begin
    advance st;
    expect_punct st "(";
    let q = parse_query st in
    expect_punct st ")";
    Ast.Exists q
  end
  else if
    (* a parenthesized predicate, disambiguated from a parenthesized
       expression by lookahead for a predicate continuation *)
    peek st = Token.Punct "(" && pred_follows st
  then begin
    advance st;
    let p = parse_pred st in
    expect_punct st ")";
    p
  end
  else begin
    let lhs = parse_expr st in
    parse_pred_tail st lhs
  end

(* Decide whether '(' opens a nested predicate: scan for AND/OR/NOT or a
   comparison at depth 1 before the matching ')'. *)
and pred_follows st =
  let depth = ref 0 and i = ref st.pos and decided = ref None in
  while !decided = None do
    (match peek_ahead st (!i - st.pos) with
    | Token.Punct "(" -> incr depth
    | Token.Punct ")" ->
      decr depth;
      if !depth = 0 then decided := Some false
    | Token.Ident ("and" | "or" | "not" | "in" | "like" | "between" | "is")
      when !depth = 1 ->
      decided := Some true
    | Token.Punct ("=" | "<" | "<=" | ">" | ">=" | "<>") when !depth = 1 ->
      decided := Some true
    | Token.Eof -> decided := Some false
    | _ -> ());
    incr i
  done;
  Option.value !decided ~default:false

and parse_pred_tail st lhs =
  let negated = accept_kw st "not" in
  let wrap p = if negated then Ast.Not p else p in
  if accept_kw st "is" then begin
    let inner_neg = accept_kw st "not" in
    expect_kw st "null";
    wrap (if inner_neg then Ast.Is_not_null lhs else Ast.Is_null lhs)
  end
  else if accept_kw st "in" then begin
    expect_punct st "(";
    if at_kw st "select" then begin
      let q = parse_query st in
      expect_punct st ")";
      wrap (Ast.In_query (lhs, q))
    end
    else begin
      let items = ref [ parse_expr st ] in
      while accept_punct st "," do
        items := parse_expr st :: !items
      done;
      expect_punct st ")";
      wrap (Ast.In_list (lhs, List.rev !items))
    end
  end
  else if accept_kw st "between" then begin
    let lo = parse_expr st in
    expect_kw st "and";
    let hi = parse_expr st in
    wrap (Ast.Between (lhs, lo, hi))
  end
  else if accept_kw st "like" then begin
    match peek st with
    | Token.Str_lit pat ->
      advance st;
      wrap (Ast.Like (lhs, pat))
    | t -> error st "LIKE expects a string literal, found %S" (Token.to_string t)
  end
  else begin
    if negated then error st "expected IN/BETWEEN/LIKE/IS after NOT";
    let op =
      match peek st with
      | Token.Punct "=" -> Ast.Eq
      | Token.Punct "<>" -> Ast.Ne
      | Token.Punct "<" -> Ast.Lt
      | Token.Punct "<=" -> Ast.Le
      | Token.Punct ">" -> Ast.Gt
      | Token.Punct ">=" -> Ast.Ge
      | t -> error st "expected comparison operator, found %S" (Token.to_string t)
    in
    advance st;
    let rhs = parse_expr st in
    Ast.Cmp (op, lhs, rhs)
  end

(* -- queries --------------------------------------------------------- *)

and parse_select_item st =
  if accept_punct st "*" then Ast.Star
  else
    match peek st, peek_ahead st 1, peek_ahead st 2 with
    | Token.Ident t, Token.Punct ".", Token.Punct "*" ->
      advance st;
      advance st;
      advance st;
      Ast.Table_star t
    | _ ->
      let e = parse_expr st in
      let alias =
        if accept_kw st "as" then Some (ident st)
        else
          match peek st with
          | Token.Ident name when not (List.mem name reserved_after_table_ref) ->
            advance st;
            Some name
          | _ -> None
      in
      Ast.Sel_expr (e, alias)

and parse_table_ref st =
  if accept_punct st "(" then begin
    let q = parse_query st in
    expect_punct st ")";
    let _ = accept_kw st "as" in
    let alias = ident st in
    Ast.Derived { query = q; alias }
  end
  else begin
    let name = ident st in
    (* dotted names reference a component of a named (XNF) view *)
    let name = if accept_punct st "." then name ^ "." ^ ident st else name in
    let alias =
      if accept_kw st "as" then Some (ident st)
      else
        match peek st with
        | Token.Ident a when not (List.mem a reserved_after_table_ref) ->
          advance st;
          Some a
        | _ -> None
    in
    Ast.Table_name { name; alias }
  end

and parse_query st =
  expect_kw st "select";
  let distinct = accept_kw st "distinct" in
  let select = ref [ parse_select_item st ] in
  while accept_punct st "," do
    select := parse_select_item st :: !select
  done;
  let from =
    if accept_kw st "from" then begin
      let refs = ref [ parse_table_ref st ] in
      while accept_punct st "," do
        refs := parse_table_ref st :: !refs
      done;
      List.rev !refs
    end
    else []
  in
  let where = if accept_kw st "where" then parse_pred st else Ast.Ptrue in
  let group_by =
    if at_kw2 st "group" "by" then begin
      advance st;
      advance st;
      let es = ref [ parse_expr st ] in
      while accept_punct st "," do
        es := parse_expr st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let having = if accept_kw st "having" then Some (parse_pred st) else None in
  let order_by =
    if at_kw2 st "order" "by" then begin
      advance st;
      advance st;
      let one () =
        let e = parse_expr st in
        let dir =
          if accept_kw st "desc" then `Desc
          else begin
            let _ = accept_kw st "asc" in
            `Asc
          end
        in
        (e, dir)
      in
      let es = ref [ one () ] in
      while accept_punct st "," do
        es := one () :: !es
      done;
      List.rev !es
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then begin
      match peek st with
      | Token.Int_lit i ->
        advance st;
        Some i
      | t -> error st "LIMIT expects an integer, found %S" (Token.to_string t)
    end
    else None
  in
  {
    Ast.distinct;
    select = List.rev !select;
    from;
    where;
    group_by;
    having;
    order_by;
    limit;
  }

(* -- statements ------------------------------------------------------ *)

(* a possibly dotted table name (view.component) *)
let table_ident st =
  let name = ident st in
  if accept_punct st "." then name ^ "." ^ ident st else name

let parse_column_def st =
  let col_name = ident st in
  let tyname = ident st in
  let col_type = Dtype.of_string tyname in
  let col_nullable =
    if at_kw2 st "not" "null" then begin
      advance st;
      advance st;
      false
    end
    else true
  in
  { Ast.col_name; col_type; col_nullable }

let parse_ident_list st =
  expect_punct st "(";
  let items = ref [ ident st ] in
  while accept_punct st "," do
    items := ident st :: !items
  done;
  expect_punct st ")";
  List.rev !items

let parse_create_table st =
  let table_name = ident st in
  expect_punct st "(";
  let columns = ref [] and primary_key = ref None in
  let parse_element () =
    if at_kw2 st "primary" "key" then begin
      advance st;
      advance st;
      primary_key := Some (parse_ident_list st)
    end
    else columns := parse_column_def st :: !columns
  in
  parse_element ();
  while accept_punct st "," do
    parse_element ()
  done;
  expect_punct st ")";
  Ast.Create_table
    { table_name; columns = List.rev !columns; primary_key = !primary_key }

let parse_insert st =
  expect_kw st "into";
  let table_name = table_ident st in
  let columns =
    if peek st = Token.Punct "(" then Some (parse_ident_list st) else None
  in
  expect_kw st "values";
  let parse_row () =
    expect_punct st "(";
    let vals = ref [ parse_expr st ] in
    while accept_punct st "," do
      vals := parse_expr st :: !vals
    done;
    expect_punct st ")";
    List.rev !vals
  in
  let rows = ref [ parse_row () ] in
  while accept_punct st "," do
    rows := parse_row () :: !rows
  done;
  Ast.Insert { table_name; columns; rows = List.rev !rows }

let parse_update st =
  let table_name = table_ident st in
  expect_kw st "set";
  let parse_set () =
    let c = ident st in
    expect_punct st "=";
    (c, parse_expr st)
  in
  let sets = ref [ parse_set () ] in
  while accept_punct st "," do
    sets := parse_set () :: !sets
  done;
  let where = if accept_kw st "where" then parse_pred st else Ast.Ptrue in
  Ast.Update { table_name; sets = List.rev !sets; where }

let parse_delete st =
  expect_kw st "from";
  let table_name = table_ident st in
  let where = if accept_kw st "where" then parse_pred st else Ast.Ptrue in
  Ast.Delete { table_name; where }

let parse_stmt_at st =
  if accept_kw st "select" then begin
    (* rewind: parse_query expects to consume SELECT itself *)
    st.pos <- st.pos - 1;
    Ast.Select_stmt (parse_query st)
  end
  else if accept_kw st "create" then begin
    if accept_kw st "table" then parse_create_table st
    else if accept_kw st "unique" then begin
      expect_kw st "index";
      let index_name = ident st in
      expect_kw st "on";
      let on_table = ident st in
      let columns = parse_ident_list st in
      Ast.Create_index { index_name; on_table; columns; unique = true }
    end
    else if accept_kw st "index" then begin
      let index_name = ident st in
      expect_kw st "on";
      let on_table = ident st in
      let columns = parse_ident_list st in
      Ast.Create_index { index_name; on_table; columns; unique = false }
    end
    else error st "expected TABLE, INDEX or VIEW after CREATE"
  end
  else if accept_kw st "insert" then parse_insert st
  else if accept_kw st "update" then parse_update st
  else if accept_kw st "delete" then parse_delete st
  else if accept_kw st "drop" then begin
    if accept_kw st "table" then Ast.Drop_table (ident st)
    else if accept_kw st "view" then Ast.Drop_view (ident st)
    else error st "expected TABLE or VIEW after DROP"
  end
  else if accept_kw st "begin" then begin
    let _ = accept_kw st "transaction" in
    Ast.Begin_txn
  end
  else if accept_kw st "commit" then Ast.Commit_txn
  else if accept_kw st "rollback" then Ast.Rollback_txn
  else error st "expected a statement, found %S" (Token.to_string (peek st))

let finish st =
  let _ = accept_punct st ";" in
  match peek st with
  | Token.Eof -> ()
  | t -> error st "trailing input: %S" (Token.to_string t)

(** Recover the raw source text starting at (line, col). *)
let body_text_from src ~line ~col =
  let pos = ref 0 and l = ref 1 and c = ref 1 in
  while (!l, !c) < (line, col) && !pos < String.length src do
    if src.[!pos] = '\n' then begin
      incr l;
      c := 1
    end
    else incr c;
    incr pos
  done;
  String.sub src !pos (String.length src - !pos)

(** Parse one complete statement from source text.

    [CREATE VIEW name AS <body>] is special-cased here (not in
    [parse_stmt_at]) because the body is stored as raw text: it may be
    SQL or XNF, and the XNF compiler re-parses it. *)
let parse_stmt src =
  let tokens = Lexer.tokenize src in
  let st = of_tokens tokens in
  if at_kw st "create" && peek_ahead st 1 = Token.Ident "view" then begin
    advance st;
    advance st;
    let view_name = ident st in
    expect_kw st "as";
    (* Body text = original source from the current token's offset. *)
    let { Token.line; col; _ } = cur st in
    let body_text = body_text_from src ~line ~col in
    Ast.Create_view { view_name; body_text }
  end
  else begin
    let stmt = parse_stmt_at st in
    finish st;
    stmt
  end

(** Parse a complete query (SELECT) from source text. *)
let parse_query_string src =
  let st = of_string src in
  let q = parse_query st in
  finish st;
  q

(** Parse a predicate from source text (used in tests and by XNF). *)
let parse_pred_string src =
  let st = of_string src in
  let p = parse_pred st in
  finish st;
  p
