(** Hand-rolled lexer for the SQL/XNF surface syntax. *)

open Relcore

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; pos = 0; line = 1; col = 1 }

let peek_char st =
  if st.pos >= String.length st.src then None else Some st.src.[st.pos]

let advance st =
  (match peek_char st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '-' ->
    (* line comment *)
    while peek_char st <> None && peek_char st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.lowercase_ascii (String.sub st.src start (st.pos - start))

let lex_number st ~line ~col =
  let start = st.pos in
  while (match peek_char st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match peek_char st with
    | Some '.'
      when st.pos + 1 < String.length st.src && is_digit st.src.[st.pos + 1] ->
      advance st;
      while (match peek_char st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    | _ -> false
  in
  let text = String.sub st.src start (st.pos - start) in
  if is_float then Token.Float_lit (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Token.Int_lit i
    | None -> Errors.parse_error ~line ~col "bad numeric literal %S" text

let lex_string st ~line ~col =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> Errors.parse_error ~line ~col "unterminated string literal"
    | Some '\'' ->
      advance st;
      (* '' is an escaped quote *)
      if peek_char st = Some '\'' then begin
        Buffer.add_char buf '\'';
        advance st;
        go ()
      end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.Str_lit (Buffer.contents buf)

let next_token st : Token.located =
  skip_trivia st;
  let line = st.line and col = st.col in
  let mk token = { Token.token; line; col } in
  match peek_char st with
  | None -> mk Token.Eof
  | Some c when is_ident_start c -> mk (Token.Ident (lex_ident st))
  | Some c when is_digit c -> mk (lex_number st ~line ~col)
  | Some '\'' -> mk (lex_string st ~line ~col)
  | Some '<' ->
    advance st;
    (match peek_char st with
    | Some '=' ->
      advance st;
      mk (Token.Punct "<=")
    | Some '>' ->
      advance st;
      mk (Token.Punct "<>")
    | _ -> mk (Token.Punct "<"))
  | Some '>' ->
    advance st;
    (match peek_char st with
    | Some '=' ->
      advance st;
      mk (Token.Punct ">=")
    | _ -> mk (Token.Punct ">"))
  | Some '!' ->
    advance st;
    (match peek_char st with
    | Some '=' ->
      advance st;
      mk (Token.Punct "<>")
    | _ -> Errors.parse_error ~line ~col "unexpected character '!'")
  | Some (('(' | ')' | ',' | '.' | ';' | '*' | '=' | '+' | '-' | '/' | '%') as c) ->
    advance st;
    mk (Token.Punct (String.make 1 c))
  | Some c -> Errors.parse_error ~line ~col "unexpected character %C" c

(** Tokenize a whole input string. *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let tok = next_token st in
    match tok.Token.token with
    | Token.Eof -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  Array.of_list (go [])
