(** Hand-rolled lexer for the SQL/XNF surface syntax: identifiers
    (lowercased), numeric and string literals (['' ] escapes), operators,
    [--] line comments. *)

type state

val make : string -> state
val next_token : state -> Token.located

val tokenize : string -> Token.located array
(** The whole input, ending with an [Eof] token. *)
