(** Recursive-descent parser for the SQL subset.

    The parser state and the query-level entry points are exposed so the
    XNF front end embeds SQL table expressions and predicates inside XNF
    queries without re-lexing. *)

type state

val of_tokens : Token.located array -> state
val of_string : string -> state

(** {2 Low-level state access (used by the XNF parser)} *)

val peek : state -> Token.t
val peek_ahead : state -> int -> Token.t
val advance : state -> unit
val error : state -> ('a, unit, string, 'b) format4 -> 'a
val expect_punct : state -> string -> unit
val accept_punct : state -> string -> bool
val at_kw : state -> string -> bool
val accept_kw : state -> string -> bool
val expect_kw : state -> string -> unit
val ident : state -> string
val table_ident : state -> string
(** A possibly dotted name ([view.component]). *)

val reserved_after_table_ref : string list
(** Contextual keywords that terminate an implicit alias. *)

val finish : state -> unit
(** Consume an optional [;] and require end of input. *)

(** {2 Grammar entry points} *)

val parse_expr : state -> Ast.expr
val parse_pred : state -> Ast.pred
val parse_query : state -> Ast.query
val parse_stmt_at : state -> Ast.stmt

val parse_stmt : string -> Ast.stmt
(** One complete statement; [CREATE VIEW name AS <body>] keeps the body
    as raw text (it may be SQL or XNF). *)

val parse_query_string : string -> Ast.query
val parse_pred_string : string -> Ast.pred
