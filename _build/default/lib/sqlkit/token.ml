(** Lexical tokens shared by the SQL and XNF parsers.

    Keywords are not distinguished from identifiers at the lexical level;
    the parser decides by position (classic SQL style, which also lets
    XNF add keywords like OUT/RELATE/TAKE without reserving them). *)

type t =
  | Ident of string (* already lowercased *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Punct of string (* one of ( ) , . ; * = <> < <= > >= + - / % *)
  | Eof

type located = { token : t; line : int; col : int }

let to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Punct p -> p
  | Eof -> "<eof>"
