(** Abstract syntax of the SQL subset understood by the engine.

    The subset covers what the paper's examples and the XNF compiler
    need: select/project/join queries with existential and IN
    subqueries, grouping and aggregation, ordering, DDL and DML. *)

open Relcore

type binop = Add | Sub | Mul | Div | Mod
type cmpop = Eq | Ne | Lt | Le | Gt | Ge
type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Col of { tbl : string option; col : string }
  | Lit of Value.t
  | Binop of binop * expr * expr
  | Neg of expr
  | Agg of agg_fn * expr option (* None only for Count_star *)
  | Fn of string * expr list (* scalar function call, name lowercased *)

type pred =
  | Ptrue
  | Cmp of cmpop * expr * expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Is_null of expr
  | Is_not_null of expr
  | Exists of query
  | In_list of expr * expr list
  | In_query of expr * query
  | Between of expr * expr * expr
  | Like of expr * string

and select_item =
  | Star
  | Table_star of string
  | Sel_expr of expr * string option (* optional AS alias *)

and table_ref =
  | Table_name of { name : string; alias : string option }
  | Derived of { query : query; alias : string }

and query = {
  distinct : bool;
  select : select_item list;
  from : table_ref list;
  where : pred;
  group_by : expr list;
  having : pred option;
  order_by : (expr * [ `Asc | `Desc ]) list;
  limit : int option;
}

type column_def = { col_name : string; col_type : Dtype.t; col_nullable : bool }

type stmt =
  | Select_stmt of query
  | Create_table of {
      table_name : string;
      columns : column_def list;
      primary_key : string list option;
    }
  | Create_index of {
      index_name : string;
      on_table : string;
      columns : string list;
      unique : bool;
    }
  | Create_view of { view_name : string; body_text : string }
  | Insert of {
      table_name : string;
      columns : string list option;
      rows : expr list list;
    }
  | Update of { table_name : string; sets : (string * expr) list; where : pred }
  | Delete of { table_name : string; where : pred }
  | Drop_table of string
  | Drop_view of string
  | Begin_txn
  | Commit_txn
  | Rollback_txn

(* -- constructors and helpers -------------------------------------- *)

let col ?tbl name = Col { tbl; col = String.lowercase_ascii name }

let qcol tbl name =
  Col { tbl = Some (String.lowercase_ascii tbl); col = String.lowercase_ascii name }

let int_lit i = Lit (Value.Int i)
let str_lit s = Lit (Value.Str s)
let eq a b = Cmp (Eq, a, b)

let conj preds =
  List.fold_left
    (fun acc p ->
      match acc, p with
      | _, Ptrue -> acc
      | Ptrue, _ -> p
      | _ -> And (acc, p))
    Ptrue preds

(** Flatten a conjunction into its atoms (dropping Ptrue). *)
let rec conjuncts = function
  | Ptrue -> []
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let simple_query ?(distinct = false) ?(where = Ptrue) select from =
  {
    distinct;
    select;
    from;
    where;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
  }

(** All queries in which aggregation appears? Detect aggregate use in an
    expression (needed for semantic checks and QGM construction). *)
let rec expr_has_agg = function
  | Agg _ -> true
  | Binop (_, a, b) -> expr_has_agg a || expr_has_agg b
  | Neg e -> expr_has_agg e
  | Fn (_, args) -> List.exists expr_has_agg args
  | Col _ | Lit _ -> false

let select_has_agg items =
  List.exists
    (function Sel_expr (e, _) -> expr_has_agg e | Star | Table_star _ -> false)
    items

(* -- traversal ------------------------------------------------------ *)

let rec iter_expr_cols f = function
  | Col { tbl; col } -> f tbl col
  | Lit _ -> ()
  | Binop (_, a, b) ->
    iter_expr_cols f a;
    iter_expr_cols f b
  | Neg e -> iter_expr_cols f e
  | Agg (_, Some e) -> iter_expr_cols f e
  | Agg (_, None) -> ()
  | Fn (_, args) -> List.iter (iter_expr_cols f) args

let rec iter_pred_cols ?(into_subqueries = false) f = function
  | Ptrue -> ()
  | Cmp (_, a, b) ->
    iter_expr_cols f a;
    iter_expr_cols f b
  | And (a, b) | Or (a, b) ->
    iter_pred_cols ~into_subqueries f a;
    iter_pred_cols ~into_subqueries f b
  | Not p -> iter_pred_cols ~into_subqueries f p
  | Is_null e | Is_not_null e -> iter_expr_cols f e
  | Exists q -> if into_subqueries then iter_query_cols f q
  | In_list (e, es) ->
    iter_expr_cols f e;
    List.iter (iter_expr_cols f) es
  | In_query (e, q) ->
    iter_expr_cols f e;
    if into_subqueries then iter_query_cols f q
  | Between (e, lo, hi) ->
    iter_expr_cols f e;
    iter_expr_cols f lo;
    iter_expr_cols f hi
  | Like (e, _) -> iter_expr_cols f e

and iter_query_cols f q =
  List.iter
    (function Sel_expr (e, _) -> iter_expr_cols f e | Star | Table_star _ -> ())
    q.select;
  iter_pred_cols ~into_subqueries:true f q.where;
  List.iter (iter_expr_cols f) q.group_by;
  Option.iter (iter_pred_cols ~into_subqueries:true f) q.having;
  List.iter (fun (e, _) -> iter_expr_cols f e) q.order_by
