lib/sqlkit/parser.ml: Array Ast Dtype Errors Lexer List Option Relcore String Token Value
