lib/sqlkit/pretty.ml: Ast Buffer Dtype List Printf Relcore String Value
