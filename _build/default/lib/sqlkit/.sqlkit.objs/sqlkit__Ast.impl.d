lib/sqlkit/ast.ml: Dtype List Option Relcore String Value
