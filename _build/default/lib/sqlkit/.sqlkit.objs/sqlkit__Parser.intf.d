lib/sqlkit/parser.mli: Ast Token
