lib/sqlkit/pretty.mli: Ast
