lib/sqlkit/token.ml: Printf
