lib/sqlkit/lexer.mli: Token
