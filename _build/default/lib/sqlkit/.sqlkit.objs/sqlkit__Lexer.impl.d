lib/sqlkit/lexer.ml: Array Buffer Errors List Relcore String Token
