(** Query execution plans (QEPs) — the output of plan optimization and
    refinement (Fig. 2), interpreted by the query evaluation system.

    Tuples flow bottom-up through demand-driven iterators ("table
    queues").  Scalars reference columns positionally; [P_param] reaches
    into enclosing tuples for correlated subplans (the naive existential
    evaluation strategy of Sect. 3.2). *)

open Relcore
module Ast = Sqlkit.Ast

type scalar =
  | P_col of int (* column of the current tuple *)
  | P_param of int * int (* (frames up, column): correlated reference *)
  | P_const of Value.t
  | P_bop of Ast.binop * scalar * scalar
  | P_neg of scalar
  | P_fn of string * scalar list (* scalar function *)

type ppred =
  | P_true
  | P_false
  | P_cmp of Ast.cmpop * scalar * scalar
  | P_and of ppred * ppred
  | P_or of ppred * ppred
  | P_not of ppred
  | P_is_null of scalar
  | P_is_not_null of scalar
  | P_like of scalar * string
  | P_exists of t (* correlated subplan probe *)
  | P_in of scalar * t

and agg_spec = { agg_fn : Ast.agg_fn; agg_arg : scalar option }

and t =
  | Scan of Base_table.t
  | Values of Tuple.t list
  | Filter of t * ppred
  | Project of t * scalar array
  | Nl_join of { outer : t; inner : t; cond : ppred }
  | Hash_join of {
      build : t; (* right side, materialized into a hash table *)
      probe : t; (* left side, streamed *)
      build_keys : scalar list; (* over build tuples *)
      probe_keys : scalar list; (* over probe tuples *)
      residual : ppred; (* over concat (probe, build) *)
    }
  | Index_join of {
      outer : t;
      table : Base_table.t;
      index : Index.t;
      keys : scalar list; (* over outer tuples *)
      residual : ppred; (* over concat (outer, inner row) *)
    }
  | Merge_join of {
      left : t;
      right : t;
      left_keys : scalar list;
      right_keys : scalar list;
      residual : ppred; (* over concat (left, right) *)
    }
      (** sort-merge equi-join; the operator sorts both inputs itself *)
  | Distinct of t
  | Aggregate of { input : t; keys : scalar list; aggs : agg_spec list }
      (** output layout: keys then aggregates *)
  | Sort of t * (int * [ `Asc | `Desc ]) list
  | Limit of t * int
  | Union_all of t list
  | Shared of int * t
      (** materialize-once common subexpression, keyed by QGM box id *)

(** A compiled query: plan plus output schema for presentation. *)
type compiled = { plan : t; out_schema : Schema.t }

(* -- pretty-printing (EXPLAIN) ---------------------------------------- *)

let rec scalar_to_string = function
  | P_col i -> Printf.sprintf "$%d" i
  | P_param (lvl, i) -> Printf.sprintf "outer[%d].$%d" lvl i
  | P_const v -> Value.to_literal v
  | P_bop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (scalar_to_string a)
      (Sqlkit.Pretty.binop_str op) (scalar_to_string b)
  | P_neg a -> "(-" ^ scalar_to_string a ^ ")"
  | P_fn (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map scalar_to_string args))

let rec ppred_to_string = function
  | P_true -> "true"
  | P_false -> "false"
  | P_cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (scalar_to_string a)
      (Sqlkit.Pretty.cmpop_str op) (scalar_to_string b)
  | P_and (a, b) ->
    Printf.sprintf "(%s AND %s)" (ppred_to_string a) (ppred_to_string b)
  | P_or (a, b) ->
    Printf.sprintf "(%s OR %s)" (ppred_to_string a) (ppred_to_string b)
  | P_not p -> "NOT " ^ ppred_to_string p
  | P_is_null s -> scalar_to_string s ^ " IS NULL"
  | P_is_not_null s -> scalar_to_string s ^ " IS NOT NULL"
  | P_like (s, pat) -> scalar_to_string s ^ " LIKE '" ^ pat ^ "'"
  | P_exists _ -> "EXISTS(<subplan>)"
  | P_in (s, _) -> scalar_to_string s ^ " IN (<subplan>)"

let explain (plan : t) : string =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pad = String.make (indent * 2) ' ' in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
    match p with
    | Scan t -> line "Scan %s (card=%d)" (Base_table.name t) (Base_table.cardinality t)
    | Values rows -> line "Values (%d rows)" (List.length rows)
    | Filter (input, pred) ->
      line "Filter %s" (ppred_to_string pred);
      go (indent + 1) input;
      List.iter (go (indent + 1)) (subplans_of_pred pred)
    | Project (input, cols) ->
      line "Project [%s]"
        (String.concat ", " (Array.to_list (Array.map scalar_to_string cols)));
      go (indent + 1) input
    | Nl_join { outer; inner; cond } ->
      line "NestedLoopJoin on %s" (ppred_to_string cond);
      go (indent + 1) outer;
      go (indent + 1) inner
    | Hash_join { build; probe; build_keys; probe_keys; residual } ->
      line "HashJoin probe[%s] = build[%s]%s"
        (String.concat ", " (List.map scalar_to_string probe_keys))
        (String.concat ", " (List.map scalar_to_string build_keys))
        (match residual with
        | P_true -> ""
        | r -> " residual " ^ ppred_to_string r);
      go (indent + 1) probe;
      go (indent + 1) build
    | Index_join { outer; table; index; keys; residual } ->
      line "IndexJoin %s via %s keys [%s]%s" (Base_table.name table)
        index.Index.name
        (String.concat ", " (List.map scalar_to_string keys))
        (match residual with
        | P_true -> ""
        | r -> " residual " ^ ppred_to_string r);
      go (indent + 1) outer
    | Merge_join { left; right; left_keys; right_keys; residual } ->
      line "MergeJoin left[%s] = right[%s]%s"
        (String.concat ", " (List.map scalar_to_string left_keys))
        (String.concat ", " (List.map scalar_to_string right_keys))
        (match residual with
        | P_true -> ""
        | r -> " residual " ^ ppred_to_string r);
      go (indent + 1) left;
      go (indent + 1) right
    | Distinct input ->
      line "Distinct";
      go (indent + 1) input
    | Aggregate { input; keys; aggs } ->
      line "Aggregate keys=[%s] aggs=[%s]"
        (String.concat ", " (List.map scalar_to_string keys))
        (String.concat ", "
           (List.map
              (fun a ->
                Sqlkit.Pretty.agg_str a.agg_fn
                ^ match a.agg_arg with
                  | Some s -> "(" ^ scalar_to_string s ^ ")"
                  | None -> "(*)")
              aggs));
      go (indent + 1) input
    | Sort (input, specs) ->
      line "Sort [%s]"
        (String.concat ", "
           (List.map
              (fun (i, d) ->
                Printf.sprintf "$%d%s" i
                  (match d with `Asc -> "" | `Desc -> " DESC"))
              specs));
      go (indent + 1) input
    | Limit (input, n) ->
      line "Limit %d" n;
      go (indent + 1) input
    | Union_all inputs ->
      line "UnionAll (%d inputs)" (List.length inputs);
      List.iter (go (indent + 1)) inputs
    | Shared (bid, input) ->
      line "Shared (cse box %d)" bid;
      go (indent + 1) input
  and subplans_of_pred = function
    | P_exists p | P_in (_, p) -> [ p ]
    | P_and (a, b) | P_or (a, b) -> subplans_of_pred a @ subplans_of_pred b
    | P_not p -> subplans_of_pred p
    | P_true | P_false | P_cmp _ | P_is_null _ | P_is_not_null _ | P_like _ ->
      []
  in
  go 0 plan;
  Buffer.contents buf

(** Structural statistics used by tests. *)
let rec count_nodes p =
  match p with
  | Scan _ | Values _ -> 1
  | Filter (i, _) | Project (i, _) | Distinct i | Sort (i, _) | Limit (i, _)
  | Shared (_, i) ->
    1 + count_nodes i
  | Nl_join { outer; inner; _ } -> 1 + count_nodes outer + count_nodes inner
  | Hash_join { build; probe; _ } -> 1 + count_nodes build + count_nodes probe
  | Index_join { outer; _ } -> 1 + count_nodes outer
  | Merge_join { left; right; _ } -> 1 + count_nodes left + count_nodes right
  | Aggregate { input; _ } -> 1 + count_nodes input
  | Union_all inputs -> List.fold_left (fun a i -> a + count_nodes i) 1 inputs
