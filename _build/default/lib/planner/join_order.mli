(** Join-order selection: dynamic programming over quantifier subsets
    (System-R style) with a connectivity-aware greedy fallback for very
    wide joins.  Cost = sum of intermediate-result cardinalities. *)

module Qgm = Starq.Qgm

type input = {
  quants : Qgm.quant array;
  cards : float array; (* estimated cardinality per quantifier *)
  preds : (Qgm.bpred * int list) list;
      (* predicates with the local quantifier indexes they touch *)
}

val subset_card : input -> int -> float
(** Estimated cardinality of joining the quantifiers in bitmask. *)

val connected : input -> int -> int -> bool

val choose : input -> int list
(** The chosen order, as indexes into [quants]: DP for up to 12
    quantifiers, greedy beyond. *)
