lib/planner/cost.mli: Relcore Starq
