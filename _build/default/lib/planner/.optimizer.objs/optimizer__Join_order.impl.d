lib/planner/join_order.ml: Array Cost List Starq
