lib/planner/cost.ml: Array Float List Option Relcore Sqlkit Starq Stats
