lib/planner/join_order.mli: Starq
