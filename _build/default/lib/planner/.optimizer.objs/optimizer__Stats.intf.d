lib/planner/stats.mli: Base_table Relcore
