lib/planner/planner.ml: Array Base_table Cost Errors Hashtbl Join_order List Option Plan Relcore Schema Sqlkit Starq
