lib/planner/planner.mli: Hashtbl Plan Relcore Schema Starq
