lib/planner/stats.ml: Array Base_table Hashtbl Relcore Value
