lib/planner/plan.ml: Array Base_table Buffer Index List Printf Relcore Schema Sqlkit String Tuple Value
