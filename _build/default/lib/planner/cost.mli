(** Cardinality and selectivity estimation (System-R style): exact base
    cardinalities, NDV statistics for equalities, fixed heuristics
    elsewhere. *)

module Qgm = Starq.Qgm

val eq_selectivity : float
val range_selectivity : float
val default_selectivity : float

val base_column_of :
  (int -> Qgm.box option) -> Qgm.bexpr -> (Relcore.Base_table.t * int) option
(** Trace a bare column reference to a base-table column through
    identity projections. *)

val pred_selectivity : ?resolve:(int -> Qgm.box option) -> Qgm.bpred -> float
(** With [resolve] (quantifier id -> input box), equality predicates
    consult per-column NDV statistics. *)

val box_cardinality : Qgm.box -> float
(** Estimated output cardinality of a box. *)

val join_cardinality :
  ?resolve:(int -> Qgm.box option) -> float list -> Qgm.bpred list -> float
