(** Plan optimization: QGM → QEP (the "Plan Optimization and Plan
    Refinement" stage of Fig. 2).  Join orders from {!Join_order};
    access methods: index > hash > merge > nested loop; boxes with
    multiple consumers and no correlated references become [Shared]
    (CSE) nodes — the mechanism behind XNF's cross-output sharing. *)

open Relcore
module Qgm = Starq.Qgm

type layout = (int * (int * int)) list
(** qid -> (offset, width) within the current tuple. *)

type join_method = [ `Auto | `Hash | `Merge ]

type ctx = {
  consumers : (int, (Qgm.box * Qgm.quant) list) Hashtbl.t;
  outer : layout list; (* correlation frames, innermost first *)
  share : bool;
  join_method : join_method;
}

val resolver : layout list -> int -> int -> Plan.scalar
(** Resolve a quantifier column against the frame stack: frame 0 is the
    current tuple, deeper frames become correlated parameters. *)

val compile_scalar : (int -> int -> Plan.scalar) -> Qgm.bexpr -> Plan.scalar
val compile_pred : ctx -> layout list -> Qgm.bpred -> Plan.ppred
val compile_box : ctx -> Qgm.box -> Plan.t

val schema_of_box : Qgm.box -> Schema.t

val compile : ?share:bool -> ?join_method:join_method -> Qgm.graph -> Plan.compiled

val compile_many :
  ?share:bool ->
  ?join_method:join_method ->
  (string * Qgm.box) list ->
  (string * Plan.compiled) list
(** Compile several graphs that may physically share boxes (XNF
    multi-table queries): consumers are computed across all roots so
    shared derivations become [Shared] nodes materialized once per
    execution context. *)
