lib/engine/txn.mli: Base_table Heap Relcore Tuple
