lib/engine/txn.ml: Base_table Errors Heap List Relcore Tuple
