lib/engine/database.mli: Base_table Catalog Executor Optimizer Relcore Schema Sqlkit Tuple Txn
