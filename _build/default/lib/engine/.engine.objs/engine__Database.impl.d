lib/engine/database.ml: Array Base_table Buffer Catalog Errors Executor Fun Hashtbl List Logs Optimizer Printf Relcore Schema Sqlkit Starq String Tuple Txn Value
