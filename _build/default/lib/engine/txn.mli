(** Transactions over the storage layer: an in-memory undo log (the
    substrate the paper keeps "totally unchanged" underneath XNF). *)

open Relcore

type undo =
  | U_insert of Base_table.t * Heap.rid (* undo: delete the row *)
  | U_update of Base_table.t * Heap.rid * Tuple.t (* undo: restore old row *)
  | U_delete of Base_table.t * Tuple.t (* undo: reinsert the row *)

type t

val create : unit -> t
val is_active : t -> bool

val begin_txn : t -> unit
(** Raises when a transaction is already in progress. *)

val record : t -> undo -> unit
(** Record an undo entry (no-op outside a transaction). *)

val commit : t -> unit
val rollback : t -> unit

val atomically : t -> (unit -> 'a) -> 'a
(** Begin, run, commit; roll back and re-raise on any exception. *)
