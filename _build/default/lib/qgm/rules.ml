(** Rewrite rules over QGM graphs (paper Sect. 3.2, 4.3; rules from
    Pirahesh/Hellerstein/Hasan SIGMOD'92).

    Implemented rules:
    - {b E-to-F quantifier conversion}: an existential quantifier over a
      subquery whose correlation predicates are all equalities becomes a
      regular join against the DISTINCT projection of the subquery on
      the correlated columns (sound without duplicate-sensitivity
      analysis: each outer row matches at most one distinct key row).
    - {b SELECT merge}: a Select box ranged over by a single F
      quantifier of another Select box is merged into its consumer when
      duplicate semantics allow (Fig. 3c).
    - {b constant folding / trivial-pred elimination}. *)

open Relcore
module Ast = Sqlkit.Ast

(* -- small helpers ---------------------------------------------------- *)

let is_select (b : Qgm.box) = b.Qgm.kind = Qgm.Select

(** Split a predicate list of a subquery box into (local, correlated)
    with respect to the subquery's own quantifiers. *)
let split_correlated (sub : Qgm.box) =
  List.partition (fun p -> Qgm.pred_is_local sub p) sub.Qgm.preds

(** Is [e] local to box [b] (references only b's quantifiers)? *)
let expr_local_to b e =
  List.for_all (fun q -> List.mem q (Qgm.local_qids b)) (Qgm.bexpr_quants e)

(** Is [e] fully outer w.r.t. box [b] (references no quantifier of b)? *)
let expr_outer_to b e =
  List.for_all (fun q -> not (List.mem q (Qgm.local_qids b))) (Qgm.bexpr_quants e)

(* -- rule: E-to-F conversion ------------------------------------------ *)

(** For an E quantifier [equant] of [box] over subquery [sub], attempt
    the conversion.  Returns [true] if the graph changed. *)
let try_e_to_f (box : Qgm.box) (equant : Qgm.quant) : bool =
  let sub = equant.Qgm.over in
  if not (is_select sub) || sub.Qgm.group_by <> [] then false
  else begin
    let local_preds, correlated = split_correlated sub in
    (* Each correlated predicate must be an equality between a sub-local
       expression and a sub-outer expression. *)
    let classify p =
      match p with
      | Qgm.Bcmp (Ast.Eq, a, b) ->
        if expr_local_to sub a && expr_outer_to sub b then Some (a, b)
        else if expr_local_to sub b && expr_outer_to sub a then Some (b, a)
        else None
      | _ -> None
    in
    let pairs = List.map classify correlated in
    if List.exists Option.is_none pairs then false
    else begin
      let pairs = List.map Option.get pairs in
      (* Columns of the E quantifier referenced by the outer box's own
         predicates or head (the IN-subquery case). *)
      let referenced_cols = ref [] in
      let note = function
        | Qgm.Qcol (q, i) when q = equant.Qgm.qid ->
          if not (List.mem i !referenced_cols) then
            referenced_cols := i :: !referenced_cols
        | _ -> ()
      in
      List.iter (fun p -> Qgm.iter_bpred_exprs note p) box.Qgm.preds;
      Array.iter (fun (h : Qgm.head_col) -> Qgm.iter_bexpr note h.Qgm.hexpr) box.Qgm.head;
      let referenced_cols = List.sort compare !referenced_cols in
      (* Build the distinct key box S': head = correlated local exprs +
         referenced original head columns. *)
      let env = Qgm.env_of_boxes [ sub ] in
      let key_head =
        List.mapi
          (fun i (local_e, _) ->
            (* keep the source column name where possible: it makes the
               rewritten graph read naturally (and keeps structural
               signatures stable for Table-1 accounting) *)
            let hname =
              match local_e with
              | Qgm.Qcol (q, j) -> begin
                match Qgm.find_quant sub q with
                | Some quant when j < Array.length quant.Qgm.over.Qgm.head ->
                  quant.Qgm.over.Qgm.head.(j).Qgm.hname
                | _ -> Printf.sprintf "k%d" i
              end
              | _ -> Printf.sprintf "k%d" i
            in
            { Qgm.hname; htype = Qgm.type_of_bexpr env local_e; hexpr = local_e })
          pairs
      in
      let passthru_head =
        List.map
          (fun i ->
            let h = sub.Qgm.head.(i) in
            { h with Qgm.hname = Printf.sprintf "c%d" i })
          referenced_cols
      in
      let keybox =
        Qgm.make_box ~name:(sub.Qgm.name ^ "_keys") ~distinct:true Qgm.Select
          ~head:(Array.of_list (key_head @ passthru_head))
      in
      keybox.Qgm.quants <- sub.Qgm.quants;
      keybox.Qgm.preds <- local_preds;
      (* Swap the quantifier to F over the key box. *)
      equant.Qgm.qkind <- Qgm.F;
      equant.Qgm.over <- keybox;
      (* Join predicates: keybox.k_i = outer_expr_i. *)
      let join_preds =
        List.mapi
          (fun i (_, outer_e) ->
            Qgm.Bcmp (Ast.Eq, Qgm.Qcol (equant.Qgm.qid, i), outer_e))
          pairs
      in
      (* Remap outer references to the E quantifier's original columns
         onto the pass-through positions in the key box. *)
      let base = List.length pairs in
      let remap qid i =
        if qid = equant.Qgm.qid then begin
          let rec index_of k = function
            | [] -> None
            | x :: rest -> if x = i then Some k else index_of (k + 1) rest
          in
          match index_of 0 referenced_cols with
          | Some k -> Some (Qgm.Qcol (equant.Qgm.qid, base + k))
          | None -> None
        end
        else None
      in
      box.Qgm.preds <-
        List.map (Qgm.subst_bpred remap) box.Qgm.preds @ join_preds;
      box.Qgm.head <-
        Array.map
          (fun (h : Qgm.head_col) ->
            { h with Qgm.hexpr = Qgm.subst_bexpr remap h.Qgm.hexpr })
          box.Qgm.head;
      true
    end
  end

let e_to_f_conversion (roots : Qgm.box list) : bool =
  let changed = ref false in
  List.iter
    (fun box ->
      if is_select box || box.Qgm.kind = Qgm.Group then
        List.iter
          (fun q ->
            if q.Qgm.qkind = Qgm.E then
              if try_e_to_f box q then changed := true)
          box.Qgm.quants)
    (Qgm.reachable_boxes roots);
  !changed

(* -- rule: SELECT merge ------------------------------------------------ *)

(** Merge child select boxes into their consuming select box.  Safe when
    the child is a plain Select (no grouping), is referenced by exactly
    one quantifier in the whole graph, that quantifier is F, and
    duplicate semantics are compatible:
    - child not distinct: always safe;
    - child distinct: safe only if the parent enforces distinct itself. *)
let try_select_merge (_roots : Qgm.box list) (box : Qgm.box) consumers : bool =
  let mergeable q =
    let sub = q.Qgm.over in
    q.Qgm.qkind = Qgm.F && is_select sub
    && sub.Qgm.group_by = []
    && (match Hashtbl.find_opt consumers sub.Qgm.bid with
       | Some [ _ ] -> true
       | _ -> false)
    && ((not sub.Qgm.distinct) || box.Qgm.distinct)
    && (* no correlated references from elsewhere into sub's quantifiers *)
    List.for_all (fun p -> Qgm.pred_is_local sub p || true) sub.Qgm.preds
  in
  match List.find_opt mergeable box.Qgm.quants with
  | None -> false
  | Some q ->
    let sub = q.Qgm.over in
    (* Substitution: references to q's columns become the child head
       expressions. *)
    let remap qid i =
      if qid = q.Qgm.qid then Some sub.Qgm.head.(i).Qgm.hexpr else None
    in
    box.Qgm.quants <-
      List.concat_map
        (fun q' -> if q'.Qgm.qid = q.Qgm.qid then sub.Qgm.quants else [ q' ])
        box.Qgm.quants;
    box.Qgm.preds <-
      List.map (Qgm.subst_bpred remap) box.Qgm.preds @ sub.Qgm.preds;
    box.Qgm.head <-
      Array.map
        (fun (h : Qgm.head_col) ->
          { h with Qgm.hexpr = Qgm.subst_bexpr remap h.Qgm.hexpr })
        box.Qgm.head;
    box.Qgm.group_by <- List.map (Qgm.subst_bexpr remap) box.Qgm.group_by;
    true

let select_merge (roots : Qgm.box list) : bool =
  let consumers = Qgm.consumers roots in
  let changed = ref false in
  List.iter
    (fun box ->
      if is_select box || box.Qgm.kind = Qgm.Group then
        if try_select_merge roots box consumers then changed := true)
    (Qgm.reachable_boxes roots);
  !changed

(* -- rule: constant folding / trivial predicates ----------------------- *)

let rec fold_expr (e : Qgm.bexpr) : Qgm.bexpr =
  match e with
  | Qgm.Bop (op, a, b) -> begin
    let a = fold_expr a and b = fold_expr b in
    match a, b with
    | Qgm.Const (Value.Int x), Qgm.Const (Value.Int y) -> begin
      match op with
      | Ast.Add -> Qgm.Const (Value.Int (x + y))
      | Ast.Sub -> Qgm.Const (Value.Int (x - y))
      | Ast.Mul -> Qgm.Const (Value.Int (x * y))
      | Ast.Div when y <> 0 -> Qgm.Const (Value.Int (x / y))
      | Ast.Mod when y <> 0 -> Qgm.Const (Value.Int (x mod y))
      | _ -> Qgm.Bop (op, a, b)
    end
    | _ -> Qgm.Bop (op, a, b)
  end
  | Qgm.Bneg a -> begin
    match fold_expr a with
    | Qgm.Const (Value.Int x) -> Qgm.Const (Value.Int (-x))
    | Qgm.Const (Value.Float x) -> Qgm.Const (Value.Float (-.x))
    | a -> Qgm.Bneg a
  end
  | Qgm.Bagg (fn, arg) -> Qgm.Bagg (fn, Option.map fold_expr arg)
  | Qgm.Bfn (name, args) -> Qgm.Bfn (name, List.map fold_expr args)
  | Qgm.Qcol _ | Qgm.Const _ -> e

let rec fold_pred (p : Qgm.bpred) : Qgm.bpred =
  match p with
  | Qgm.Bcmp (op, a, b) -> begin
    let a = fold_expr a and b = fold_expr b in
    match a, b with
    | Qgm.Const x, Qgm.Const y when not (Value.is_null x || Value.is_null y) ->
      let c = Value.compare x y in
      let r =
        match op with
        | Ast.Eq -> c = 0
        | Ast.Ne -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0
      in
      if r then Qgm.Btrue else Qgm.Bnot Qgm.Btrue
    | _ -> Qgm.Bcmp (op, a, b)
  end
  | Qgm.Band (a, b) -> begin
    match fold_pred a, fold_pred b with
    | Qgm.Btrue, p | p, Qgm.Btrue -> p
    | a, b -> Qgm.Band (a, b)
  end
  | Qgm.Bor (a, b) -> begin
    match fold_pred a, fold_pred b with
    | Qgm.Btrue, _ | _, Qgm.Btrue -> Qgm.Btrue
    | a, b -> Qgm.Bor (a, b)
  end
  | Qgm.Bnot p -> begin
    match fold_pred p with Qgm.Bnot q -> q | p -> Qgm.Bnot p
  end
  | Qgm.Btrue -> Qgm.Btrue
  | Qgm.Bis_null (Qgm.Const v) ->
    if Value.is_null v then Qgm.Btrue else Qgm.Bnot Qgm.Btrue
  | Qgm.Bis_not_null (Qgm.Const v) ->
    if Value.is_null v then Qgm.Bnot Qgm.Btrue else Qgm.Btrue
  | Qgm.Bis_null _ | Qgm.Bis_not_null _ | Qgm.Blike _ -> p
  | Qgm.Bexists _ | Qgm.Bin_sub _ -> p

let constant_folding (roots : Qgm.box list) : bool =
  let changed = ref false in
  List.iter
    (fun box ->
      let preds' =
        List.filter_map
          (fun p ->
            let p' = fold_pred p in
            if p' <> p then changed := true;
            match p' with Qgm.Btrue -> None | p' -> Some p')
          box.Qgm.preds
      in
      if List.length preds' <> List.length box.Qgm.preds then changed := true;
      box.Qgm.preds <- preds';
      let head' =
        Array.map
          (fun (h : Qgm.head_col) ->
            let e' = fold_expr h.Qgm.hexpr in
            if e' <> h.Qgm.hexpr then changed := true;
            { h with Qgm.hexpr = e' })
          box.Qgm.head
      in
      box.Qgm.head <- head')
    (Qgm.reachable_boxes roots);
  !changed
