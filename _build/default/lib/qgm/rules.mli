(** Core NF rewrite rules (Pirahesh/Hellerstein/Hasan SIGMOD'92 style):
    E-to-F quantifier conversion, SELECT merge, constant folding.
    Each returns [true] when the graph changed. *)

val e_to_f_conversion : Qgm.box list -> bool
(** Convert existential quantifiers with equality correlation into joins
    against the DISTINCT projection of the subquery on the correlated
    columns — sound without duplicate-sensitivity analysis (Fig. 3b). *)

val select_merge : Qgm.box list -> bool
(** Merge single-consumer plain Select boxes into their consumer when
    duplicate semantics allow (Fig. 3c). *)

val constant_folding : Qgm.box list -> bool

val fold_expr : Qgm.bexpr -> Qgm.bexpr
val fold_pred : Qgm.bpred -> Qgm.bpred
