(** Additional NF rewrite rules: predicate pushdown and dead-column
    pruning.  Like the core rules they are pure QGM-to-QGM transforms
    registered with the shared rule engine (paper Sect. 4.4). *)

module Ast = Sqlkit.Ast

(* -- predicate pushdown --------------------------------------------------- *)

(** Push a predicate of [box] that references only quantifier [q] down
    into [q]'s input box, rewriting head references.  Sound when the
    input is a plain Select with a single consumer. *)
let try_pushdown (consumers : (int, (Qgm.box * Qgm.quant) list) Hashtbl.t)
    (box : Qgm.box) : bool =
  let changed = ref false in
  let pushable_quant q =
    let c = q.Qgm.over in
    q.Qgm.qkind = Qgm.F && c.Qgm.kind = Qgm.Select
    && c.Qgm.group_by = []
    && (match Hashtbl.find_opt consumers c.Qgm.bid with
       | Some [ _ ] -> true
       | _ -> false)
  in
  let keep =
    List.filter
      (fun p ->
        match Qgm.bpred_quants p with
        | [ qid ] -> begin
          match Qgm.find_quant box qid with
          | Some q when pushable_quant q ->
            let c = q.Qgm.over in
            (* rewrite outer refs Qcol(q, i) to the child's head exprs *)
            let remap qid' i =
              if qid' = qid then Some c.Qgm.head.(i).Qgm.hexpr else None
            in
            let p' = Qgm.subst_bpred remap p in
            (* only push if fully resolvable inside the child *)
            if
              List.for_all
                (fun r -> List.mem r (Qgm.local_qids c))
                (Qgm.bpred_quants p')
            then begin
              c.Qgm.preds <- c.Qgm.preds @ [ p' ];
              changed := true;
              false (* drop from parent *)
            end
            else true
          | _ -> true
        end
        | _ -> true)
      box.Qgm.preds
  in
  box.Qgm.preds <- keep;
  !changed

let predicate_pushdown (roots : Qgm.box list) : bool =
  let consumers = Qgm.consumers roots in
  let changed = ref false in
  List.iter
    (fun box ->
      match box.Qgm.kind with
      | Qgm.Select | Qgm.Group ->
        if try_pushdown consumers box then changed := true
      | Qgm.Base _ | Qgm.Union -> ())
    (Qgm.reachable_boxes roots);
  !changed

(* -- dead column pruning --------------------------------------------------- *)

(** Column positions of [box]'s head that some consumer actually uses. *)
let used_columns (consumers : (int, (Qgm.box * Qgm.quant) list) Hashtbl.t)
    (box : Qgm.box) : int list =
  let used = Hashtbl.create 8 in
  let note qid = function
    | Qgm.Qcol (q, i) when q = qid -> Hashtbl.replace used i ()
    | _ -> ()
  in
  List.iter
    (fun (consumer, quant) ->
      let qid = quant.Qgm.qid in
      List.iter (fun p -> Qgm.iter_bpred_exprs (note qid) p) consumer.Qgm.preds;
      Array.iter
        (fun (h : Qgm.head_col) -> Qgm.iter_bexpr (note qid) h.Qgm.hexpr)
        consumer.Qgm.head;
      List.iter (Qgm.iter_bexpr (note qid)) consumer.Qgm.group_by;
      (* predicate-level subqueries may reference the quantifier too *)
      List.iter
        (fun p ->
          List.iter
            (fun sub ->
              let seen = Hashtbl.create 8 in
              let rec walk b =
                if not (Hashtbl.mem seen b.Qgm.bid) then begin
                  Hashtbl.add seen b.Qgm.bid ();
                  List.iter (fun p -> Qgm.iter_bpred_exprs (note qid) p) b.Qgm.preds;
                  Array.iter
                    (fun (h : Qgm.head_col) -> Qgm.iter_bexpr (note qid) h.Qgm.hexpr)
                    b.Qgm.head;
                  List.iter (fun q -> walk q.Qgm.over) b.Qgm.quants
                end
              in
              walk sub)
            (Qgm.pred_subqueries p))
        consumer.Qgm.preds)
    (Option.value (Hashtbl.find_opt consumers box.Qgm.bid) ~default:[]);
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) used [])

(** Prune unused head columns of non-root Select boxes; consumers'
    references are renumbered.  Left alone: roots (no consumers), boxes
    feeding a Union (positional semantics), and DISTINCT boxes (their
    duplicate elimination is defined over the full head — narrowing it
    would collapse rows). *)
let prune_columns (roots : Qgm.box list) : bool =
  let consumers = Qgm.consumers roots in
  let changed = ref false in
  let feeds_union box =
    List.exists
      (fun (consumer, _) -> consumer.Qgm.kind = Qgm.Union)
      (Option.value (Hashtbl.find_opt consumers box.Qgm.bid) ~default:[])
  in
  let root_ids = List.map (fun b -> b.Qgm.bid) roots in
  List.iter
    (fun box ->
      match box.Qgm.kind with
      | Qgm.Select
        when (not box.Qgm.distinct)
             && (not (List.mem box.Qgm.bid root_ids))
             && (not (feeds_union box))
             && Hashtbl.mem consumers box.Qgm.bid ->
        let used = used_columns consumers box in
        let width = Array.length box.Qgm.head in
        if List.length used < width && used <> [] then begin
          (* position map old -> new *)
          let map = Hashtbl.create 8 in
          List.iteri (fun new_i old_i -> Hashtbl.replace map old_i new_i) used;
          box.Qgm.head <-
            Array.of_list (List.map (fun i -> box.Qgm.head.(i)) used);
          (* renumber references in consumers *)
          List.iter
            (fun (consumer, quant) ->
              let qid = quant.Qgm.qid in
              let remap q i =
                if q = qid then
                  match Hashtbl.find_opt map i with
                  | Some j -> Some (Qgm.Qcol (qid, j))
                  | None -> None (* dead: unreachable by construction *)
                else None
              in
              consumer.Qgm.preds <-
                List.map (Qgm.subst_bpred remap) consumer.Qgm.preds;
              consumer.Qgm.head <-
                Array.map
                  (fun (h : Qgm.head_col) ->
                    { h with Qgm.hexpr = Qgm.subst_bexpr remap h.Qgm.hexpr })
                  consumer.Qgm.head;
              consumer.Qgm.group_by <-
                List.map (Qgm.subst_bexpr remap) consumer.Qgm.group_by)
            (Hashtbl.find consumers box.Qgm.bid);
          changed := true
        end
      | _ -> ())
    (Qgm.reachable_boxes roots);
  !changed
