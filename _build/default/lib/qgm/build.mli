(** AST → QGM translation with name resolution (the parser/semantics
    stage of Fig. 2).  Conjunctive subqueries become [E] quantifiers;
    correlated column references resolve through the scope stack. *)

open Relcore
module Ast = Sqlkit.Ast

type scope_entry = { alias : string; quant : Qgm.quant }
type scope = scope_entry list

val box_schema : Qgm.box -> Schema.t

val xnf_component_expander :
  (Catalog.t -> view:string -> component:string -> Qgm.box) option ref
(** Hook through which the XNF library teaches the NF query builder to
    expand [view.component] table references (Starburst "attachment"
    style); registered by [Xnf.Xnf_compile] at link time. *)

val resolve_col : scope list -> tbl:string option -> col:string -> Qgm.quant * int

val build_expr : scope list -> Ast.expr -> Qgm.bexpr

val build_pred :
  ?conjunctive:bool -> Catalog.t -> scope list -> owner:Qgm.box -> Ast.pred ->
  Qgm.bpred
(** In conjunctive position (the default), subqueries attach E
    quantifiers to [owner]; under OR/NOT they stay predicate-level. *)

val build_table_ref : Catalog.t -> scope list -> Ast.table_ref -> string * Qgm.quant

val build_select_box :
  ?frame_out:scope ref -> Catalog.t -> scope list -> Ast.query -> Qgm.box

val flatten_pred : Qgm.bpred -> Qgm.bpred list

val build_query : Catalog.t -> Ast.query -> Qgm.graph
