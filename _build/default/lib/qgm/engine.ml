(** The rule engine driving QGM rewrite to fixpoint (paper Sect. 4.4:
    both the NF and the XNF rewrite components share this engine and the
    rule representation). *)

type rule = { rule_name : string; apply : Qgm.box list -> bool }

type stats = (string * int) list (* rule name -> number of firings *)

let nf_rules : rule list =
  [
    { rule_name = "constant_folding"; apply = Rules.constant_folding };
    { rule_name = "e_to_f_conversion"; apply = Rules.e_to_f_conversion };
    { rule_name = "select_merge"; apply = Rules.select_merge };
    { rule_name = "predicate_pushdown"; apply = Rules2.predicate_pushdown };
    { rule_name = "prune_columns"; apply = Rules2.prune_columns };
  ]

(** Apply [rules] to the boxes reachable from [roots] until no rule
    fires, with an iteration budget to guarantee termination even in the
    presence of a misbehaving rule. *)
let run ?(rules = nf_rules) ?(budget = 64) (roots : Qgm.box list) : stats =
  let stats = Hashtbl.create 8 in
  let bump name =
    Hashtbl.replace stats name (1 + Option.value (Hashtbl.find_opt stats name) ~default:0)
  in
  let rec go budget =
    if budget > 0 then begin
      let fired = ref false in
      List.iter
        (fun r ->
          if r.apply roots then begin
            fired := true;
            bump r.rule_name
          end)
        rules;
      if !fired then go (budget - 1)
    end
  in
  go budget;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats []

(** Rewrite a full graph in place; returns firing statistics. *)
let rewrite_graph ?rules ?budget (g : Qgm.graph) : stats =
  run ?rules ?budget [ g.Qgm.top ]
