(** The rule engine driving QGM rewrite to fixpoint (paper Sect. 4.4:
    the NF and XNF rewrite components share this engine and the rule
    representation). *)

type rule = { rule_name : string; apply : Qgm.box list -> bool }

type stats = (string * int) list
(** rule name -> number of firings *)

val nf_rules : rule list
(** constant folding, E-to-F conversion, SELECT merge, predicate
    pushdown, dead-column pruning. *)

val run : ?rules:rule list -> ?budget:int -> Qgm.box list -> stats
(** Apply [rules] to the boxes reachable from the roots until no rule
    fires (budget-bounded). *)

val rewrite_graph : ?rules:rule list -> ?budget:int -> Qgm.graph -> stats
