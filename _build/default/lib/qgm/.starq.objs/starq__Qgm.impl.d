lib/qgm/qgm.ml: Array Base_table Buffer Dtype Errors Hashtbl List Option Printf Relcore Schema Sqlkit String Value
