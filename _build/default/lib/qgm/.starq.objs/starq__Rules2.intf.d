lib/qgm/rules2.mli: Qgm
