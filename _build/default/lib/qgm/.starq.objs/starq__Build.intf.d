lib/qgm/build.mli: Catalog Qgm Relcore Schema Sqlkit
