lib/qgm/opcount.mli: Qgm
