lib/qgm/rules2.ml: Array Hashtbl List Option Qgm Sqlkit
