lib/qgm/rules.mli: Qgm
