lib/qgm/build.ml: Array Catalog Errors Hashtbl List Option Printf Qgm Relcore Schema Sqlkit String Value
