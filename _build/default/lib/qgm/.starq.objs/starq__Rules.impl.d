lib/qgm/rules.ml: Array Hashtbl List Option Printf Qgm Relcore Sqlkit Value
