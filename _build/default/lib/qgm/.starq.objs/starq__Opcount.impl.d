lib/qgm/opcount.ml: Array Hashtbl List Printf Qgm Relcore Sqlkit String
