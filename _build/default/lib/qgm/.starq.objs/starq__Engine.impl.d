lib/qgm/engine.ml: Hashtbl List Option Qgm Rules Rules2
