lib/qgm/engine.mli: Qgm
