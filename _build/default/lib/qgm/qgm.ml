(** The Query Graph Model (QGM): Starburst's internal query
    representation (paper Sect. 3.2).

    A query is a graph of {e boxes}; each box has a {e head} (the output
    table it defines) and a {e body} (quantifiers ranging over other
    boxes, plus predicates).  Quantifiers are either [F] ("foreach", the
    usual FROM-clause range variable) or [E] (existential, produced by
    EXISTS / IN subqueries).  Rewrite rules transform the graph in place
    (e.g. E-to-F quantifier conversion, SELECT merge). *)

open Relcore

type quant_kind = F | E

(** Body-level scalar expressions.  [Qcol (qid, i)] refers to column [i]
    of the box that quantifier [qid] ranges over.  A [Qcol] whose
    quantifier does not belong to the enclosing box is a {e correlated}
    reference into an ancestor box. *)
type bexpr =
  | Qcol of int * int
  | Const of Value.t
  | Bop of Sqlkit.Ast.binop * bexpr * bexpr
  | Bneg of bexpr
  | Bagg of Sqlkit.Ast.agg_fn * bexpr option (* meaningful only in Group boxes *)
  | Bfn of string * bexpr list (* scalar function *)

(** Predicates.  [Bexists] and [Bin_sub] are {e predicate-level}
    subqueries: they appear where an existential cannot soundly become an
    E quantifier (under OR or NOT) and are evaluated tuple-at-a-time —
    exactly the naive strategy the paper's Sect. 3.2 contrasts with the
    rewritten join. *)
type bpred =
  | Btrue
  | Bcmp of Sqlkit.Ast.cmpop * bexpr * bexpr
  | Band of bpred * bpred
  | Bor of bpred * bpred
  | Bnot of bpred
  | Bis_null of bexpr
  | Bis_not_null of bexpr
  | Blike of bexpr * string
  | Bexists of box
  | Bin_sub of bexpr * box

and head_col = { hname : string; htype : Dtype.t; hexpr : bexpr }

and box_kind =
  | Base of Base_table.t
  | Select
  | Group (* grouped aggregation; group keys in [group_by] *)
  | Union
      (* positional UNION ALL of the quantifiers' inputs; set [distinct]
         for UNION semantics.  Heads must be arity-compatible. *)

and box = {
  bid : int;
  mutable kind : box_kind;
  mutable name : string; (* diagnostic label, e.g. "xdept" *)
  mutable head : head_col array;
  mutable distinct : bool; (* head enforces duplicate elimination *)
  mutable quants : quant list;
  mutable preds : bpred list; (* implicitly conjoined *)
  mutable group_by : bexpr list; (* Group boxes only *)
}

and quant = { qid : int; mutable qkind : quant_kind; mutable over : box }

type graph = {
  mutable top : box;
  (* ORDER BY / LIMIT apply to the top box's output stream *)
  mutable order_by : (int * [ `Asc | `Desc ]) list; (* head column positions *)
  mutable limit : int option;
  mutable strip : int option;
      (* hidden sort columns: keep only the first [n] output columns *)
}

let counter = ref 0

let fresh_id () =
  incr counter;
  !counter

let make_box ?(name = "") ?(distinct = false) kind ~head =
  {
    bid = fresh_id ();
    kind;
    name;
    head;
    distinct;
    quants = [];
    preds = [];
    group_by = [];
  }

let make_quant ?(kind = F) over = { qid = fresh_id (); qkind = kind; over }

let base_box table =
  let head =
    Array.of_list
      (List.mapi
         (fun i (c : Schema.column) ->
           (* Base-box head exprs are self-referential placeholders;
              position [i] is what matters. *)
           { hname = c.Schema.name; htype = c.Schema.dtype; hexpr = Qcol (-1, i) })
         (Schema.columns (Base_table.schema table)))
  in
  make_box ~name:(Base_table.name table) (Base table) ~head

(* -- traversal ------------------------------------------------------- *)

let rec iter_bexpr f = function
  | Qcol _ as e -> f e
  | Const _ as e -> f e
  | Bop (_, a, b) as e ->
    f e;
    iter_bexpr f a;
    iter_bexpr f b
  | Bneg a as e ->
    f e;
    iter_bexpr f a
  | Bagg (_, Some a) as e ->
    f e;
    iter_bexpr f a
  | Bagg (_, None) as e -> f e
  | Bfn (_, args) as e ->
    f e;
    List.iter (iter_bexpr f) args

let rec iter_bpred_exprs f = function
  | Btrue -> ()
  | Bcmp (_, a, b) ->
    iter_bexpr f a;
    iter_bexpr f b
  | Band (a, b) | Bor (a, b) ->
    iter_bpred_exprs f a;
    iter_bpred_exprs f b
  | Bnot p -> iter_bpred_exprs f p
  | Bis_null e | Bis_not_null e -> iter_bexpr f e
  | Blike (e, _) -> iter_bexpr f e
  | Bexists _ -> ()
  | Bin_sub (e, _) -> iter_bexpr f e

(** Quantifier ids referenced by an expression. *)
let bexpr_quants e =
  let acc = ref [] in
  iter_bexpr (function Qcol (q, _) -> if not (List.mem q !acc) then acc := q :: !acc | _ -> ()) e;
  !acc

(** Quantifier ids referenced by the graph rooted at [box] that no box
    in that graph binds (i.e. correlated/outer references). *)
let free_quants_of_box box =
  let bound = Hashtbl.create 16 and used = ref [] in
  let seen = Hashtbl.create 16 in
  let note = function
    | Qcol (q, _) -> if not (List.mem q !used) then used := q :: !used
    | _ -> ()
  in
  let rec go b =
    if not (Hashtbl.mem seen b.bid) then begin
      Hashtbl.add seen b.bid ();
      List.iter (fun q -> Hashtbl.add bound q.qid ()) b.quants;
      List.iter (iter_bpred_exprs note) b.preds;
      Array.iter (fun h -> iter_bexpr note h.hexpr) b.head;
      List.iter (iter_bexpr note) b.group_by;
      List.iter (fun q -> go q.over) b.quants
    end
  in
  go box;
  (* qid -1 is the base-box self-reference placeholder, never bound *)
  List.filter (fun q -> q >= 0 && not (Hashtbl.mem bound q)) !used

let rec pred_subqueries = function
  | Bexists b -> [ b ]
  | Bin_sub (_, b) -> [ b ]
  | Band (a, b) | Bor (a, b) -> pred_subqueries a @ pred_subqueries b
  | Bnot p -> pred_subqueries p
  | Btrue | Bcmp _ | Bis_null _ | Bis_not_null _ | Blike _ -> []

let bpred_quants p =
  let acc = ref [] in
  let add q = if not (List.mem q !acc) then acc := q :: !acc in
  iter_bpred_exprs (function Qcol (q, _) -> add q | _ -> ()) p;
  (* predicate-level subqueries contribute their correlated references *)
  List.iter (fun b -> List.iter add (free_quants_of_box b)) (pred_subqueries p);
  !acc

(** Substitute quantifier-column references via [lookup]; [lookup q i]
    returns [Some e] to replace [Qcol (q, i)]. *)
let rec subst_bexpr lookup = function
  | Qcol (q, i) as e -> (match lookup q i with Some e' -> e' | None -> e)
  | Const _ as e -> e
  | Bop (op, a, b) -> Bop (op, subst_bexpr lookup a, subst_bexpr lookup b)
  | Bneg a -> Bneg (subst_bexpr lookup a)
  | Bagg (fn, arg) -> Bagg (fn, Option.map (subst_bexpr lookup) arg)
  | Bfn (name, args) -> Bfn (name, List.map (subst_bexpr lookup) args)

let rec subst_bpred lookup = function
  | Btrue -> Btrue
  | Bcmp (op, a, b) -> Bcmp (op, subst_bexpr lookup a, subst_bexpr lookup b)
  | Band (a, b) -> Band (subst_bpred lookup a, subst_bpred lookup b)
  | Bor (a, b) -> Bor (subst_bpred lookup a, subst_bpred lookup b)
  | Bnot p -> Bnot (subst_bpred lookup p)
  | Bis_null e -> Bis_null (subst_bexpr lookup e)
  | Bis_not_null e -> Bis_not_null (subst_bexpr lookup e)
  | Blike (e, pat) -> Blike (subst_bexpr lookup e, pat)
  | Bexists box ->
    subst_box_correlations lookup box;
    Bexists box
  | Bin_sub (e, box) ->
    subst_box_correlations lookup box;
    Bin_sub (subst_bexpr lookup e, box)

(** Apply a substitution to correlated references inside a predicate
    subquery graph (in place; local quantifier references are shielded by
    the subquery's own quantifier ids being distinct). *)
and subst_box_correlations lookup box =
  let seen = Hashtbl.create 8 in
  let rec go b =
    if not (Hashtbl.mem seen b.bid) then begin
      Hashtbl.add seen b.bid ();
      b.preds <- List.map (subst_bpred lookup) b.preds;
      b.head <-
        Array.map (fun h -> { h with hexpr = subst_bexpr lookup h.hexpr }) b.head;
      b.group_by <- List.map (subst_bexpr lookup) b.group_by;
      List.iter (fun q -> go q.over) b.quants
    end
  in
  go box

(** All boxes reachable from [roots], each visited once, parents before
    children (preorder on first visit). *)
let reachable_boxes roots =
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let rec visit box =
    if not (Hashtbl.mem seen box.bid) then begin
      Hashtbl.add seen box.bid ();
      order := box :: !order;
      List.iter (fun q -> visit q.over) box.quants;
      List.iter
        (fun p -> List.iter visit (pred_subqueries p))
        box.preds
    end
  in
  List.iter visit roots;
  List.rev !order

(** Map from box id to the list of (consumer box, quantifier) pairs that
    range over it, computed over the graph reachable from [roots]. *)
let consumers roots =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun box ->
      List.iter
        (fun q ->
          let prev = Option.value (Hashtbl.find_opt tbl q.over.bid) ~default:[] in
          Hashtbl.replace tbl q.over.bid ((box, q) :: prev))
        box.quants)
    (reachable_boxes roots);
  tbl

let find_quant box qid = List.find_opt (fun q -> q.qid = qid) box.quants

(** The local quantifier ids of a box. *)
let local_qids box = List.map (fun q -> q.qid) box.quants

(** Does predicate [p] reference only quantifiers local to [box]? *)
let pred_is_local box p =
  List.for_all (fun q -> List.mem q (local_qids box)) (bpred_quants p)

(* -- typing ---------------------------------------------------------- *)

(** Infer the type of a body expression given an environment resolving
    quantifier ids to their input boxes. *)
let rec type_of_bexpr env = function
  | Qcol (q, i) -> begin
    match env q with
    | Some box when i < Array.length box.head -> box.head.(i).htype
    | Some box ->
      Errors.semantic_error "column %d out of range for box %s" i box.name
    | None -> Errors.semantic_error "unresolved quantifier %d" q
  end
  | Const v -> begin
    match v with
    | Value.Null -> Dtype.Tstr (* arbitrary; nulls admit every type *)
    | Value.Bool _ -> Dtype.Tbool
    | Value.Int _ -> Dtype.Tint
    | Value.Float _ -> Dtype.Tfloat
    | Value.Str _ -> Dtype.Tstr
  end
  | Bop ((Sqlkit.Ast.Add | Sub | Mul | Div | Mod), a, b) ->
    Dtype.join (type_of_bexpr env a) (type_of_bexpr env b)
  | Bneg a -> type_of_bexpr env a
  | Bagg ((Sqlkit.Ast.Count_star | Count), _) -> Dtype.Tint
  | Bagg (Avg, _) -> Dtype.Tfloat
  | Bagg ((Sum | Min | Max), Some a) -> type_of_bexpr env a
  | Bagg ((Sum | Min | Max), None) -> assert false
  | Bfn (name, args) -> begin
    (* the engine's scalar function catalog *)
    match name, args with
    | ("upper" | "lower" | "substr" | "trim"), _ -> Dtype.Tstr
    | "length", _ -> Dtype.Tint
    | "abs", [ a ] -> type_of_bexpr env a
    | "coalesce", a :: _ -> type_of_bexpr env a
    | _ ->
      Errors.semantic_error "unknown scalar function %S/%d" name
        (List.length args)
  end

(** Environment resolving a quantifier id to its box by searching a list
    of scope boxes (innermost first). *)
let env_of_boxes boxes qid =
  let rec find = function
    | [] -> None
    | b :: rest -> (
      match find_quant b qid with Some q -> Some q.over | None -> find rest)
  in
  find boxes

(* -- pretty-printing -------------------------------------------------- *)

let quant_kind_str = function F -> "F" | E -> "E"

let rec bexpr_to_string = function
  | Qcol (q, i) -> Printf.sprintf "q%d.%d" q i
  | Const v -> Value.to_literal v
  | Bop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (bexpr_to_string a)
      (Sqlkit.Pretty.binop_str op) (bexpr_to_string b)
  | Bneg a -> Printf.sprintf "(-%s)" (bexpr_to_string a)
  | Bagg (fn, Some a) ->
    Printf.sprintf "%s(%s)" (Sqlkit.Pretty.agg_str fn) (bexpr_to_string a)
  | Bagg (fn, None) -> Printf.sprintf "%s(*)" (Sqlkit.Pretty.agg_str fn)
  | Bfn (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map bexpr_to_string args))

let rec bpred_to_string = function
  | Btrue -> "true"
  | Bcmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (bexpr_to_string a)
      (Sqlkit.Pretty.cmpop_str op) (bexpr_to_string b)
  | Band (a, b) ->
    Printf.sprintf "(%s AND %s)" (bpred_to_string a) (bpred_to_string b)
  | Bor (a, b) ->
    Printf.sprintf "(%s OR %s)" (bpred_to_string a) (bpred_to_string b)
  | Bnot p -> Printf.sprintf "(NOT %s)" (bpred_to_string p)
  | Bis_null e -> Printf.sprintf "%s IS NULL" (bexpr_to_string e)
  | Bis_not_null e -> Printf.sprintf "%s IS NOT NULL" (bexpr_to_string e)
  | Blike (e, pat) -> Printf.sprintf "%s LIKE '%s'" (bexpr_to_string e) pat
  | Bexists b -> Printf.sprintf "EXISTS(box %d)" b.bid
  | Bin_sub (e, b) ->
    Printf.sprintf "%s IN (box %d)" (bexpr_to_string e) b.bid

let box_kind_str = function
  | Base t -> "Base(" ^ Base_table.name t ^ ")"
  | Select -> "Select"
  | Group -> "Group"
  | Union -> "Union"

let dump_box buf box =
  Buffer.add_string buf
    (Printf.sprintf "box %d [%s]%s%s\n" box.bid (box_kind_str box.kind)
       (if box.name <> "" then " " ^ box.name else "")
       (if box.distinct then " DISTINCT" else ""));
  Array.iteri
    (fun i h ->
      Buffer.add_string buf
        (Printf.sprintf "  head %d: %s %s = %s\n" i h.hname
           (Dtype.to_string h.htype)
           (bexpr_to_string h.hexpr)))
    box.head;
  List.iter
    (fun q ->
      Buffer.add_string buf
        (Printf.sprintf "  quant q%d : %s over box %d (%s)\n" q.qid
           (quant_kind_str q.qkind) q.over.bid q.over.name))
    box.quants;
  List.iter
    (fun p -> Buffer.add_string buf ("  pred " ^ bpred_to_string p ^ "\n"))
    box.preds;
  if box.group_by <> [] then
    Buffer.add_string buf
      ("  group by "
      ^ String.concat ", " (List.map bexpr_to_string box.group_by)
      ^ "\n")

let dump_graph g =
  let buf = Buffer.create 256 in
  List.iter (fun b -> dump_box buf b) (reachable_boxes [ g.top ]);
  Buffer.contents buf
