(** Operation counting over compiled QGM graphs — the measurement behind
    the paper's Table 1.

    One {e selection} per locally restricted quantifier, one {e join}
    per equi-join edge, one {e semijoin} per residual existential;
    descriptors are normalised by base tables + predicates so the same
    logical work in two queries is recognised as {e replicated};
    physically shared boxes are counted once. *)

type row = { component : string; ops : int; replicated : int }

val analyze : (string * Qgm.box list) list -> row list
(** One entry per component (its output boxes), processed in order with
    a shared descriptor set. *)

val total : row list -> int
val total_replicated : row list -> int

val describe : (string * Qgm.box list) list -> (string * string list) list
(** Human-readable operation descriptors per component. *)
