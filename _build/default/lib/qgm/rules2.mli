(** Additional NF rewrite rules registered with the shared engine. *)

val predicate_pushdown : Qgm.box list -> bool
(** Push single-quantifier predicates into single-consumer Select
    inputs (filter-before-join/materialize). *)

val prune_columns : Qgm.box list -> bool
(** Drop unused head columns of non-root Select boxes, renumbering
    consumer references.  DISTINCT boxes and Union inputs are exempt. *)
