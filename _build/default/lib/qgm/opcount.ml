(** Operation counting over compiled QGM graphs — the measurement behind
    the paper's Table 1 (SQL vs XNF derivation w.r.t. common
    subexpressions).

    Counting scheme (documented in EXPERIMENTS.md):
    - every local selection (a quantifier restricted by single-table
      predicates) is one {e selection} operation;
    - every equi-join edge (predicates linking a pair of quantifiers) is
      one {e join} operation;
    - residual existential quantifiers/predicate subqueries count one
      {e semijoin} operation, and their subgraphs are counted too;
    - unions, projections and DISTINCT enforcement are free (they merge
      or reshape already-computed streams).

    Each operation carries a structural {e descriptor} normalised by the
    base tables and predicates it involves — independent of box merging,
    head shape and DISTINCT — so that the same logical work appearing in
    two separate queries is recognised as {e replicated}.  Physically
    shared boxes (XNF common subexpressions) are visited once. *)

module Ast = Sqlkit.Ast

type row = { component : string; ops : int; replicated : int }

(* -- structural signatures --------------------------------------------- *)

(** Sorted base-table names under a box. *)
let rec base_tables (memo : (int, string list) Hashtbl.t) (b : Qgm.box) :
    string list =
  match Hashtbl.find_opt memo b.Qgm.bid with
  | Some ts -> ts
  | None ->
    Hashtbl.add memo b.Qgm.bid []; (* cycle guard *)
    let ts =
      match b.Qgm.kind with
      | Qgm.Base t -> [ Relcore.Base_table.name t ]
      | Qgm.Select | Qgm.Group | Qgm.Union ->
        List.concat_map (fun q -> base_tables memo q.Qgm.over) b.Qgm.quants
        |> List.sort_uniq compare
    in
    Hashtbl.replace memo b.Qgm.bid ts;
    ts

type sigs = {
  tables_memo : (int, string list) Hashtbl.t;
  box_memo : (int, string) Hashtbl.t;
}

let make_sigs () = { tables_memo = Hashtbl.create 64; box_memo = Hashtbl.create 64 }

(** Normalised rendering of an expression within [owner]: quantifier
    references become "[base tables].column". *)
let rec expr_sig sigs (owner : Qgm.box) (e : Qgm.bexpr) : string =
  match e with
  | Qgm.Qcol (qid, i) -> begin
    match Qgm.find_quant owner qid with
    | Some q ->
      let tables = String.concat "+" (base_tables sigs.tables_memo q.Qgm.over) in
      let colname =
        if i < Array.length q.Qgm.over.Qgm.head then
          q.Qgm.over.Qgm.head.(i).Qgm.hname
        else string_of_int i
      in
      Printf.sprintf "[%s].%s" tables colname
    | None -> Printf.sprintf "outer.%d" i
  end
  | Qgm.Const v -> Relcore.Value.to_literal v
  | Qgm.Bop (op, a, b) ->
    Printf.sprintf "(%s%s%s)" (expr_sig sigs owner a)
      (Sqlkit.Pretty.binop_str op) (expr_sig sigs owner b)
  | Qgm.Bneg a -> "(-" ^ expr_sig sigs owner a ^ ")"
  | Qgm.Bagg (fn, Some a) ->
    Sqlkit.Pretty.agg_str fn ^ "(" ^ expr_sig sigs owner a ^ ")"
  | Qgm.Bagg (fn, None) -> Sqlkit.Pretty.agg_str fn ^ "(*)"
  | Qgm.Bfn (name, args) ->
    name ^ "("
    ^ String.concat "," (List.map (expr_sig sigs owner) args)
    ^ ")"

and pred_sig sigs owner (p : Qgm.bpred) : string =
  match p with
  | Qgm.Btrue -> "true"
  | Qgm.Bcmp (op, a, b) ->
    let sa = expr_sig sigs owner a and sb = expr_sig sigs owner b in
    let sa, sb =
      if op = Ast.Eq && compare sb sa < 0 then (sb, sa) else (sa, sb)
    in
    sa ^ Sqlkit.Pretty.cmpop_str op ^ sb
  | Qgm.Band (a, b) -> "(" ^ pred_sig sigs owner a ^ "&" ^ pred_sig sigs owner b ^ ")"
  | Qgm.Bor (a, b) -> "(" ^ pred_sig sigs owner a ^ "|" ^ pred_sig sigs owner b ^ ")"
  | Qgm.Bnot p -> "!(" ^ pred_sig sigs owner p ^ ")"
  | Qgm.Bis_null e -> expr_sig sigs owner e ^ " isnull"
  | Qgm.Bis_not_null e -> expr_sig sigs owner e ^ " notnull"
  | Qgm.Blike (e, pat) -> expr_sig sigs owner e ^ " like " ^ pat
  | Qgm.Bexists b -> "exists{" ^ box_sig sigs b ^ "}"
  | Qgm.Bin_sub (e, b) -> expr_sig sigs owner e ^ " in{" ^ box_sig sigs b ^ "}"

(** Full structural signature of a box (heads/DISTINCT ignored). *)
and box_sig sigs (b : Qgm.box) : string =
  match Hashtbl.find_opt sigs.box_memo b.Qgm.bid with
  | Some s -> s
  | None ->
    Hashtbl.add sigs.box_memo b.Qgm.bid "<cycle>";
    let s =
      match b.Qgm.kind with
      | Qgm.Base t -> "base:" ^ Relcore.Base_table.name t
      | Qgm.Union ->
        let inputs =
          List.map (fun q -> box_sig sigs q.Qgm.over) b.Qgm.quants
          |> List.sort compare
        in
        "union{" ^ String.concat "," inputs ^ "}"
      | Qgm.Select | Qgm.Group ->
        let inputs =
          List.map (fun q -> box_sig sigs q.Qgm.over) b.Qgm.quants
          |> List.sort compare
        in
        let preds = List.map (pred_sig sigs b) b.Qgm.preds |> List.sort compare in
        Printf.sprintf "sel{%s|%s}" (String.concat "," inputs)
          (String.concat "&" preds)
    in
    Hashtbl.replace sigs.box_memo b.Qgm.bid s;
    s

(* -- operation extraction ----------------------------------------------- *)

(** Operation descriptors contributed by one box (children excluded). *)
let box_ops sigs (b : Qgm.box) : string list =
  match b.Qgm.kind with
  | Qgm.Base _ | Qgm.Union -> []
  | Qgm.Select | Qgm.Group ->
    let local_qids = Qgm.local_qids b in
    let fqids =
      List.filter_map
        (fun q -> if q.Qgm.qkind = Qgm.F then Some q.Qgm.qid else None)
        b.Qgm.quants
    in
    (* classify predicates *)
    let local_by_quant : (int, Qgm.bpred list ref) Hashtbl.t = Hashtbl.create 8 in
    let pair_joins : (int * int, Qgm.bpred list ref) Hashtbl.t = Hashtbl.create 8 in
    let complex = ref [] in
    List.iter
      (fun p ->
        if Qgm.pred_subqueries p <> [] then () (* counted via their graphs *)
        else begin
          let refs = Qgm.bpred_quants p in
          let locals = List.filter (fun q -> List.mem q local_qids) refs in
          let has_outer = List.exists (fun q -> not (List.mem q local_qids)) refs in
          match List.sort_uniq compare locals with
          | [ q ] when not has_outer ->
            let r =
              match Hashtbl.find_opt local_by_quant q with
              | Some r -> r
              | None ->
                let r = ref [] in
                Hashtbl.add local_by_quant q r;
                r
            in
            r := p :: !r
          | [ a; q ] when not has_outer ->
            let key = (min a q, max a q) in
            let r =
              match Hashtbl.find_opt pair_joins key with
              | Some r -> r
              | None ->
                let r = ref [] in
                Hashtbl.add pair_joins key r;
                r
            in
            r := p :: !r
          | [] -> () (* pure outer/constant: no derivation work *)
          | _ when has_outer -> () (* correlated: evaluated by the outer op *)
          | qs -> complex := (qs, p) :: !complex
        end)
      b.Qgm.preds;
    let quant_of qid = List.find (fun q -> q.Qgm.qid = qid) b.Qgm.quants in
    (* effective input signature: the input box restricted by its local
       predicates — identical whether the selection was merged or kept
       as a separate box *)
    let eff_sig qid =
      let q = quant_of qid in
      let base = box_sig sigs q.Qgm.over in
      match Hashtbl.find_opt local_by_quant qid with
      | None | Some { contents = [] } -> base
      | Some preds ->
        let ps = List.map (pred_sig sigs b) !preds |> List.sort compare in
        Printf.sprintf "sel{%s|%s}" base (String.concat "&" ps)
    in
    let sel_ops =
      Hashtbl.fold
        (fun qid preds acc ->
          let q = quant_of qid in
          let ps = List.map (pred_sig sigs b) !preds |> List.sort compare in
          Printf.sprintf "sel{%s|%s}"
            (box_sig sigs q.Qgm.over)
            (String.concat "&" ps)
          :: acc)
        local_by_quant []
    in
    let join_ops =
      Hashtbl.fold
        (fun (a, c) preds acc ->
          let sa = eff_sig a and sc = eff_sig c in
          let sa, sc = if compare sc sa < 0 then (sc, sa) else (sa, sc) in
          let ps = List.map (pred_sig sigs b) !preds |> List.sort compare in
          Printf.sprintf "join{%s><%s|%s}" sa sc (String.concat "&" ps) :: acc)
        pair_joins []
    in
    let complex_ops =
      List.map
        (fun (qs, p) ->
          let inputs = List.map eff_sig qs |> List.sort compare in
          Printf.sprintf "join{%s|%s}"
            (String.concat "><" inputs)
            (pred_sig sigs b p))
        !complex
    in
    let semi_ops =
      List.filter_map
        (fun q ->
          if q.Qgm.qkind = Qgm.E then
            Some (Printf.sprintf "semijoin{%s}" (box_sig sigs q.Qgm.over))
          else None)
        b.Qgm.quants
    in
    ignore fqids;
    sel_ops @ join_ops @ complex_ops @ semi_ops

(** Analyze a sequence of named derivations.  Each entry provides the
    output boxes of one component; boxes already visited (physical
    sharing across components, i.e. XNF common subexpressions) are not
    recounted.  Descriptor equality across entries yields the
    "replicated" column. *)
let analyze (outputs : (string * Qgm.box list) list) : row list =
  let sigs = make_sigs () in
  let visited = Hashtbl.create 64 in
  let seen_descriptors = Hashtbl.create 64 in
  List.map
    (fun (component, roots) ->
      let ops = ref 0 and replicated = ref 0 in
      let boxes =
        Qgm.reachable_boxes roots
        |> List.filter (fun b -> not (Hashtbl.mem visited b.Qgm.bid))
      in
      List.iter
        (fun b ->
          Hashtbl.add visited b.Qgm.bid ();
          List.iter
            (fun descr ->
              incr ops;
              if Hashtbl.mem seen_descriptors descr then incr replicated
              else Hashtbl.add seen_descriptors descr ())
            (box_ops sigs b))
        boxes;
      { component; ops = !ops; replicated = !replicated })
    outputs

let total rows = List.fold_left (fun a r -> a + r.ops) 0 rows
let total_replicated rows = List.fold_left (fun a r -> a + r.replicated) 0 rows

(** Human-readable dump of every operation in a derivation (used by the
    Table-1 bench in verbose mode and by tests). *)
let describe (outputs : (string * Qgm.box list) list) : (string * string list) list =
  let sigs = make_sigs () in
  let visited = Hashtbl.create 64 in
  List.map
    (fun (component, roots) ->
      let descrs =
        Qgm.reachable_boxes roots
        |> List.filter (fun b ->
               if Hashtbl.mem visited b.Qgm.bid then false
               else begin
                 Hashtbl.add visited b.Qgm.bid ();
                 true
               end)
        |> List.concat_map (fun b -> box_ops sigs b)
      in
      (component, descrs))
    outputs
