(** AST → QGM translation with name resolution (the parser/semantics
    stage of Fig. 2).

    Subqueries (EXISTS / IN) become [E] quantifiers; correlated column
    references resolve through the scope stack into outer quantifiers,
    exactly the Fig. 3a shape that rewrite later converts to joins. *)

open Relcore
module Ast = Sqlkit.Ast

type scope_entry = { alias : string; quant : Qgm.quant }
type scope = scope_entry list

(** Schema view of a box's head (names + types). *)
let box_schema (box : Qgm.box) =
  Schema.make
    (List.map
       (fun (h : Qgm.head_col) -> Schema.column h.hname h.htype)
       (Array.to_list box.head))

(** Hook through which the XNF library (a higher layer) teaches the NF
    query builder to expand [view.component] table references into the
    component's derived box — the Starburst "attachment" style of
    extension.  Registered by [Xnf.Xnf_compile] at link time. *)
let xnf_component_expander :
    (Catalog.t -> view:string -> component:string -> Qgm.box) option ref =
  ref None

(** Resolve an (optional table qualifier, column) pair against a scope
    stack, innermost first.  Returns the quantifier and column position. *)
let resolve_col (scopes : scope list) ~tbl ~col =
  let col = String.lowercase_ascii col in
  let try_frame frame =
    match tbl with
    | Some t ->
      let t = String.lowercase_ascii t in
      List.find_map
        (fun e ->
          if String.equal e.alias t then
            match Schema.find_opt (box_schema e.quant.Qgm.over) col with
            | Some i -> Some (e.quant, i)
            | None ->
              Errors.semantic_error "table %S has no column %S" t col
          else None)
        frame
    | None ->
      let hits =
        List.filter_map
          (fun e ->
            match Schema.find_opt (box_schema e.quant.Qgm.over) col with
            | Some i -> Some (e.quant, i)
            | None -> None)
          frame
      in
      (match hits with
      | [] -> None
      | [ hit ] -> Some hit
      | _ :: _ :: _ -> Errors.semantic_error "ambiguous column %S" col)
  in
  let rec go = function
    | [] ->
      Errors.semantic_error "unknown column %s%s"
        (match tbl with Some t -> t ^ "." | None -> "")
        col
    | frame :: rest -> (
      match try_frame frame with Some hit -> hit | None -> go rest)
  in
  go scopes

let rec build_expr scopes (e : Ast.expr) : Qgm.bexpr =
  match e with
  | Ast.Col { tbl; col } ->
    let q, i = resolve_col scopes ~tbl ~col in
    Qgm.Qcol (q.Qgm.qid, i)
  | Ast.Lit v -> Qgm.Const v
  | Ast.Binop (op, a, b) -> Qgm.Bop (op, build_expr scopes a, build_expr scopes b)
  | Ast.Neg a -> Qgm.Bneg (build_expr scopes a)
  | Ast.Agg (fn, arg) -> Qgm.Bagg (fn, Option.map (build_expr scopes) arg)
  | Ast.Fn (name, args) -> Qgm.Bfn (name, List.map (build_expr scopes) args)

(** Build predicates.  In conjunctive position, subqueries attach E
    quantifiers to [owner]; under OR/NOT they must remain predicate-level
    subqueries ([Bexists]/[Bin_sub]) evaluated tuple-at-a-time. *)
let rec build_pred ?(conjunctive = true) cat scopes ~(owner : Qgm.box)
    (p : Ast.pred) : Qgm.bpred =
  match p with
  | Ast.Ptrue -> Qgm.Btrue
  | Ast.Cmp (op, a, b) ->
    Qgm.Bcmp (op, build_expr scopes a, build_expr scopes b)
  | Ast.And (a, b) ->
    Qgm.Band
      ( build_pred ~conjunctive cat scopes ~owner a,
        build_pred ~conjunctive cat scopes ~owner b )
  | Ast.Or (a, b) ->
    Qgm.Bor
      ( build_pred ~conjunctive:false cat scopes ~owner a,
        build_pred ~conjunctive:false cat scopes ~owner b )
  | Ast.Not p ->
    Qgm.Bnot (build_pred ~conjunctive:false cat scopes ~owner p)
  | Ast.Is_null e -> Qgm.Bis_null (build_expr scopes e)
  | Ast.Is_not_null e -> Qgm.Bis_not_null (build_expr scopes e)
  | Ast.Like (e, pat) -> Qgm.Blike (build_expr scopes e, pat)
  | Ast.Between (e, lo, hi) ->
    let be = build_expr scopes e in
    Qgm.Band
      ( Qgm.Bcmp (Ast.Ge, be, build_expr scopes lo),
        Qgm.Bcmp (Ast.Le, be, build_expr scopes hi) )
  | Ast.In_list (e, es) ->
    let be = build_expr scopes e in
    List.fold_left
      (fun acc item ->
        let cmp = Qgm.Bcmp (Ast.Eq, be, build_expr scopes item) in
        if acc = Qgm.Btrue then cmp else Qgm.Bor (acc, cmp))
      Qgm.Btrue es
  | Ast.Exists q ->
    let sub = build_select_box cat scopes q in
    if conjunctive then begin
      let quant = Qgm.make_quant ~kind:Qgm.E sub in
      owner.Qgm.quants <- owner.Qgm.quants @ [ quant ];
      Qgm.Btrue
    end
    else Qgm.Bexists sub
  | Ast.In_query (e, q) ->
    let sub = build_select_box cat scopes q in
    if Array.length sub.Qgm.head <> 1 then
      Errors.semantic_error "IN subquery must produce exactly one column";
    if conjunctive then begin
      let quant = Qgm.make_quant ~kind:Qgm.E sub in
      owner.Qgm.quants <- owner.Qgm.quants @ [ quant ];
      Qgm.Bcmp (Ast.Eq, build_expr scopes e, Qgm.Qcol (quant.Qgm.qid, 0))
    end
    else Qgm.Bin_sub (build_expr scopes e, sub)

(** Translate a FROM-clause item to a quantifier over a box. *)
and build_table_ref cat scopes (tr : Ast.table_ref) : string * Qgm.quant =
  match tr with
  | Ast.Table_name { name; alias } ->
    let box =
      match Catalog.find_table_opt cat name with
      | Some t -> Qgm.base_box t
      | None -> (
        (* allow SQL views stored in the catalog *)
        match Catalog.find_view_opt cat name with
        | Some { Catalog.language = `Sql; text; _ } ->
          let q = Sqlkit.Parser.parse_query_string text in
          build_select_box cat scopes q
        | Some { Catalog.language = `Xnf; _ } ->
          Errors.semantic_error
            "XNF view %S cannot be used as a plain table; reference one of \
             its components as %s.<component>"
            name name
        | None -> (
          (* view.component reference *)
          match String.index_opt name '.' with
          | Some i -> begin
            let view = String.sub name 0 i in
            let component =
              String.sub name (i + 1) (String.length name - i - 1)
            in
            match !xnf_component_expander with
            | Some expand -> expand cat ~view ~component
            | None ->
              Errors.semantic_error
                "no XNF layer registered to expand %S" name
          end
          | None -> Errors.catalog_error "unknown table %S" name))
    in
    let default_alias =
      (* for view.component, the component name is the natural alias *)
      match String.rindex_opt name '.' with
      | Some i -> String.sub name (i + 1) (String.length name - i - 1)
      | None -> name
    in
    let a = Option.value alias ~default:(String.lowercase_ascii default_alias) in
    (a, Qgm.make_quant box)
  | Ast.Derived { query; alias } ->
    (alias, Qgm.make_quant (build_select_box cat scopes query))

(** Build the select box for a query within enclosing [scopes].
    [frame_out], when provided, receives the FROM-clause scope frame so
    the caller can resolve ORDER BY expressions. *)
and build_select_box ?frame_out cat (outer_scopes : scope list) (q : Ast.query)
    : Qgm.box =
  let has_agg =
    q.Ast.group_by <> [] || Ast.select_has_agg q.Ast.select
    || Option.fold ~none:false ~some:pred_has_agg q.Ast.having
  in
  let kind = if has_agg then Qgm.Group else Qgm.Select in
  let box = Qgm.make_box ~distinct:q.Ast.distinct kind ~head:[||] in
  let frame =
    List.map
      (fun tr ->
        let alias, quant = build_table_ref cat outer_scopes tr in
        { alias; quant })
      q.Ast.from
  in
  List.iter (fun e -> box.Qgm.quants <- box.Qgm.quants @ [ e.quant ]) frame;
  (match frame_out with Some r -> r := frame | None -> ());
  let scopes = frame :: outer_scopes in
  (* WHERE *)
  let where = build_pred cat scopes ~owner:box q.Ast.where in
  box.Qgm.preds <- flatten_pred where;
  (* GROUP BY *)
  if has_agg then
    box.Qgm.group_by <- List.map (build_expr scopes) q.Ast.group_by;
  (* head *)
  let head_cols = build_head cat scopes frame box q in
  box.Qgm.head <- Array.of_list head_cols;
  (* HAVING: wrap in an outer select over the group box *)
  match q.Ast.having with
  | None -> box
  | Some having ->
    let outer = Qgm.make_box Qgm.Select ~head:[||] in
    let quant = Qgm.make_quant box in
    outer.Qgm.quants <- [ quant ];
    let hframe = [ { alias = "__group"; quant } ] in
    (* resolve HAVING against the group box output: aggregate exprs must
       match head columns *)
    let hp = build_having cat (hframe :: outer_scopes) scopes quant box having in
    outer.Qgm.preds <- flatten_pred hp;
    outer.Qgm.head <-
      Array.of_list
        (List.mapi
           (fun i (h : Qgm.head_col) ->
             { h with Qgm.hexpr = Qgm.Qcol (quant.Qgm.qid, i) })
           (Array.to_list box.Qgm.head));
    outer

and pred_has_agg (p : Ast.pred) =
  let found = ref false in
  let rec walk_pred = function
    | Ast.Ptrue -> ()
    | Ast.Cmp (_, a, b) ->
      walk_expr a;
      walk_expr b
    | Ast.And (a, b) | Ast.Or (a, b) ->
      walk_pred a;
      walk_pred b
    | Ast.Not p -> walk_pred p
    | Ast.Is_null e | Ast.Is_not_null e | Ast.Like (e, _) -> walk_expr e
    | Ast.Exists _ -> ()
    | Ast.In_list (e, es) ->
      walk_expr e;
      List.iter walk_expr es
    | Ast.In_query (e, _) -> walk_expr e
    | Ast.Between (a, b, c) ->
      walk_expr a;
      walk_expr b;
      walk_expr c
  and walk_expr e = if Ast.expr_has_agg e then found := true in
  walk_pred p;
  !found

(** In a HAVING predicate, aggregate expressions refer to the group box:
    find (or add) a matching head column and reference it. *)
and build_having _cat _scopes inner_scopes quant (gbox : Qgm.box) (p : Ast.pred)
    : Qgm.bpred =
  let lookup_or_add_agg (e : Ast.expr) =
    let be = build_expr inner_scopes e in
    let existing = ref None in
    Array.iteri
      (fun i (h : Qgm.head_col) -> if h.Qgm.hexpr = be then existing := Some i)
      gbox.Qgm.head;
    let i =
      match !existing with
      | Some i -> i
      | None ->
        let ty =
          Qgm.type_of_bexpr (Qgm.env_of_boxes [ gbox ]) be
        in
        gbox.Qgm.head <-
          Array.append gbox.Qgm.head
            [| { Qgm.hname = Printf.sprintf "agg%d" (Array.length gbox.Qgm.head);
                 htype = ty;
                 hexpr = be;
               } |];
        Array.length gbox.Qgm.head - 1
    in
    Qgm.Qcol (quant.Qgm.qid, i)
  in
  let rec build_e (e : Ast.expr) : Qgm.bexpr =
    match e with
    | Ast.Agg _ -> lookup_or_add_agg e
    | Ast.Lit v -> Qgm.Const v
    | Ast.Binop (op, a, b) -> Qgm.Bop (op, build_e a, build_e b)
    | Ast.Neg a -> Qgm.Bneg (build_e a)
    | Ast.Fn (name, args) -> Qgm.Bfn (name, List.map build_e args)
    | Ast.Col _ ->
      (* plain column in HAVING: must be a grouping column; find it in
         the group head *)
      let be = build_expr inner_scopes e in
      let pos = ref None in
      Array.iteri
        (fun i (h : Qgm.head_col) -> if h.Qgm.hexpr = be then pos := Some i)
        gbox.Qgm.head;
      (match !pos with
      | Some i -> Qgm.Qcol (quant.Qgm.qid, i)
      | None ->
        Errors.semantic_error
          "HAVING references a column that is neither grouped nor aggregated")
  in
  let rec build_p = function
    | Ast.Ptrue -> Qgm.Btrue
    | Ast.Cmp (op, a, b) -> Qgm.Bcmp (op, build_e a, build_e b)
    | Ast.And (a, b) -> Qgm.Band (build_p a, build_p b)
    | Ast.Or (a, b) -> Qgm.Bor (build_p a, build_p b)
    | Ast.Not p -> Qgm.Bnot (build_p p)
    | Ast.Is_null e -> Qgm.Bis_null (build_e e)
    | Ast.Is_not_null e -> Qgm.Bis_not_null (build_e e)
    | Ast.Like (e, pat) -> Qgm.Blike (build_e e, pat)
    | Ast.Between (e, lo, hi) ->
      Qgm.Band
        ( Qgm.Bcmp (Ast.Ge, build_e e, build_e lo),
          Qgm.Bcmp (Ast.Le, build_e e, build_e hi) )
    | Ast.Exists _ | Ast.In_query _ ->
      Errors.unsupported "subqueries in HAVING"
    | Ast.In_list (e, es) ->
      let be = build_e e in
      List.fold_left
        (fun acc item ->
          let cmp = Qgm.Bcmp (Ast.Eq, be, build_e item) in
          if acc = Qgm.Btrue then cmp else Qgm.Bor (acc, cmp))
        Qgm.Btrue es
  in
  build_p p

(** Expand SELECT items into head columns. *)
and build_head _cat scopes (frame : scope) (box : Qgm.box) (q : Ast.query) :
    Qgm.head_col list =
  let env qid = Qgm.env_of_boxes [ box ] qid in
  (* also resolve correlated types through outer scopes *)
  let env qid =
    match env qid with
    | Some b -> Some b
    | None ->
      List.fold_left
        (fun acc frame ->
          match acc with
          | Some _ -> acc
          | None ->
            List.find_map
              (fun e ->
                if e.quant.Qgm.qid = qid then Some e.quant.Qgm.over else None)
              frame)
        None scopes
  in
  let star_of_quant e =
    let sch = box_schema e.quant.Qgm.over in
    List.mapi
      (fun i (c : Schema.column) ->
        {
          Qgm.hname = c.Schema.name;
          htype = c.Schema.dtype;
          hexpr = Qgm.Qcol (e.quant.Qgm.qid, i);
        })
      (Schema.columns sch)
  in
  let of_item = function
    | Ast.Star -> List.concat_map star_of_quant frame
    | Ast.Table_star t ->
      let t = String.lowercase_ascii t in
      (match List.find_opt (fun e -> String.equal e.alias t) frame with
      | Some e -> star_of_quant e
      | None -> Errors.semantic_error "unknown table alias %S in %s.*" t t)
    | Ast.Sel_expr (e, alias) ->
      let be = build_expr scopes e in
      let name =
        match alias, e with
        | Some a, _ -> String.lowercase_ascii a
        | None, Ast.Col { col; _ } -> String.lowercase_ascii col
        | None, _ -> ""
      in
      [ { Qgm.hname = name; htype = Qgm.type_of_bexpr env be; hexpr = be } ]
  in
  let cols = List.concat_map of_item q.Ast.select in
  (* assign positional names to anonymous/duplicate columns *)
  let seen = Hashtbl.create 8 in
  List.mapi
    (fun i (h : Qgm.head_col) ->
      let name =
        if h.Qgm.hname = "" || Hashtbl.mem seen h.Qgm.hname then
          Printf.sprintf "col%d" i
        else h.Qgm.hname
      in
      Hashtbl.replace seen h.Qgm.hname ();
      { h with Qgm.hname = name })
    cols

and flatten_pred (p : Qgm.bpred) : Qgm.bpred list =
  match p with
  | Qgm.Btrue -> []
  | Qgm.Band (a, b) -> flatten_pred a @ flatten_pred b
  | p -> [ p ]

(** Entry point: build a full QGM graph for a query.

    ORDER BY items resolve in three steps: by output column name, by
    structural match against a head expression, and finally by appending
    a hidden sort column (stripped again after the sort). *)
let build_query cat (q : Ast.query) : Qgm.graph =
  let frame_out = ref [] in
  let box = build_select_box ~frame_out cat [] q in
  let visible = Array.length box.Qgm.head in
  (* expression matching is only sound when the returned box's own
     quantifiers are the FROM-clause ones (not a HAVING wrapper) *)
  let frame_usable =
    List.for_all
      (fun e -> List.mem e.quant.Qgm.qid (Qgm.local_qids box))
      !frame_out
    && !frame_out <> []
  in
  let by_name col =
    let col = String.lowercase_ascii col in
    let pos = ref None in
    Array.iteri
      (fun i (h : Qgm.head_col) ->
        if !pos = None && String.equal h.Qgm.hname col then pos := Some i)
      box.Qgm.head;
    !pos
  in
  let by_expr e =
    if not frame_usable then None
    else
      match build_expr [ !frame_out ] e with
      | be ->
        let pos = ref None in
        Array.iteri
          (fun i (h : Qgm.head_col) ->
            if !pos = None && h.Qgm.hexpr = be then pos := Some i)
          box.Qgm.head;
        (match !pos with
        | Some i -> Some i
        | None ->
          (* hidden sort column *)
          let env = Qgm.env_of_boxes [ box ] in
          let ty = Qgm.type_of_bexpr env be in
          box.Qgm.head <-
            Array.append box.Qgm.head
              [| { Qgm.hname =
                     Printf.sprintf "__sort%d" (Array.length box.Qgm.head);
                   htype = ty;
                   hexpr = be;
                 } |];
          Some (Array.length box.Qgm.head - 1))
      | exception Errors.Db_error _ -> None
  in
  let order_by =
    List.map
      (fun (e, dir) ->
        let pos =
          match e with
          | Ast.Lit (Value.Int i) ->
            if i < 1 || i > visible then
              Errors.semantic_error "ORDER BY: position %d out of range" i;
            Some (i - 1)
          | Ast.Col { tbl = None; col } -> (
            match by_name col with Some i -> Some i | None -> by_expr e)
          | _ -> by_expr e
        in
        match pos with
        | Some i -> (i, dir)
        | None -> Errors.semantic_error "ORDER BY: cannot resolve sort key")
      q.Ast.order_by
  in
  let strip =
    if Array.length box.Qgm.head > visible then Some visible else None
  in
  { Qgm.top = box; order_by; limit = q.Ast.limit; strip }
