(** System catalog: the namespace of base tables and named view texts.

    Views are stored as source text (SQL or XNF) and recompiled on use,
    which matches how Starburst-era systems stored view definitions. *)

type view_def = {
  view_name : string;
  language : [ `Sql | `Xnf ];
  text : string;
}

type t = {
  tables : (string, Base_table.t) Hashtbl.t;
  views : (string, view_def) Hashtbl.t;
}

let create () = { tables = Hashtbl.create 16; views = Hashtbl.create 16 }

let normalize = String.lowercase_ascii

let add_table cat table =
  let key = normalize (Base_table.name table) in
  if Hashtbl.mem cat.tables key || Hashtbl.mem cat.views key then
    Errors.catalog_error "name %S already in use" (Base_table.name table);
  Hashtbl.add cat.tables key table

let find_table_opt cat name = Hashtbl.find_opt cat.tables (normalize name)

let find_table cat name =
  match find_table_opt cat name with
  | Some t -> t
  | None -> Errors.catalog_error "unknown table %S" name

let mem_table cat name = Hashtbl.mem cat.tables (normalize name)

let drop_table cat name =
  let key = normalize name in
  if not (Hashtbl.mem cat.tables key) then
    Errors.catalog_error "unknown table %S" name;
  Hashtbl.remove cat.tables key

let add_view cat view =
  let key = normalize view.view_name in
  if Hashtbl.mem cat.tables key || Hashtbl.mem cat.views key then
    Errors.catalog_error "name %S already in use" view.view_name;
  Hashtbl.add cat.views key view

let find_view_opt cat name = Hashtbl.find_opt cat.views (normalize name)
let mem_view cat name = Hashtbl.mem cat.views (normalize name)

let drop_view cat name =
  let key = normalize name in
  if not (Hashtbl.mem cat.views key) then
    Errors.catalog_error "unknown view %S" name;
  Hashtbl.remove cat.views key

let tables cat =
  Hashtbl.fold (fun _ t acc -> t :: acc) cat.tables []
  |> List.sort (fun a b -> String.compare (Base_table.name a) (Base_table.name b))

let views cat =
  Hashtbl.fold (fun _ v acc -> v :: acc) cat.views []
  |> List.sort (fun a b -> String.compare a.view_name b.view_name)
