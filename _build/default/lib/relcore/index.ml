(** Hash index over a base table.

    Maps a key (the sub-tuple of the indexed columns) to the set of rids
    holding that key.  Supports unique and non-unique variants. *)

type t = {
  name : string;
  key_columns : int array; (* positions within the table schema *)
  unique : bool;
  entries : Heap.rid list ref Tuple.Tbl.t;
}

let create ~name ~key_columns ~unique =
  { name; key_columns; unique; entries = Tuple.Tbl.create 64 }

let key_of idx tuple = Tuple.key tuple idx.key_columns

let lookup idx key =
  match Tuple.Tbl.find_opt idx.entries key with
  | Some rids -> !rids
  | None -> []

let lookup_tuple idx tuple = lookup idx (key_of idx tuple)

let insert idx rid tuple =
  let key = key_of idx tuple in
  match Tuple.Tbl.find_opt idx.entries key with
  | Some rids ->
    if idx.unique && !rids <> [] then
      Errors.constraint_error "unique index %S violated by key %s" idx.name
        (Tuple.to_string key);
    rids := rid :: !rids
  | None -> Tuple.Tbl.add idx.entries key (ref [ rid ])

let remove idx rid tuple =
  let key = key_of idx tuple in
  match Tuple.Tbl.find_opt idx.entries key with
  | Some rids ->
    rids := List.filter (fun r -> r <> rid) !rids;
    if !rids = [] then Tuple.Tbl.remove idx.entries key
  | None -> ()

let cardinality idx = Tuple.Tbl.length idx.entries
