(** Tuples are immutable-by-convention value arrays.

    The executor creates fresh arrays for derived tuples; base-table rows
    are only mutated through {!Heap.update}. *)

type t = Value.t array

let arity = Array.length
let get (t : t) i = t.(i)
let of_list = Array.of_list
let to_list = Array.to_list

let concat (a : t) (b : t) : t = Array.append a b

let project (t : t) idxs : t = Array.map (fun i -> t.(i)) idxs

let equal (a : t) (b : t) =
  arity a = arity b && Array.for_all2 Value.equal a b

let compare (a : t) (b : t) =
  let n = min (arity a) (arity b) in
  let rec go i =
    if i = n then Int.compare (arity a) (arity b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let to_string (t : t) =
  "(" ^ String.concat ", " (List.map Value.to_string (to_list t)) ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Key extraction for hashing/joins: the sub-tuple at [idxs]. *)
let key (t : t) idxs = project t idxs

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Key)
