(** Column data types of the engine's type system. *)

type t = Tbool | Tint | Tfloat | Tstr

val to_string : t -> string

val of_string : string -> t
(** Accepts the usual SQL spellings (INT/INTEGER, VARCHAR/TEXT, ...);
    raises on unknown names. *)

val equal : t -> t -> bool

val admits : t -> Value.t -> bool
(** Does a runtime value inhabit this type?  [Null] inhabits every type. *)

val coerce : t -> Value.t -> Value.t
(** Coerce a value into the column type where a safe conversion exists
    (int to float); raise {!Errors.Db_error} otherwise. *)

val join : t -> t -> t
(** Result type of a binary arithmetic operation; raises on
    incompatible operands. *)
