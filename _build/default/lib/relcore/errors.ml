(** Error conditions shared by all layers of the engine.

    Every user-facing failure of the engine is reported through
    {!exception:Db_error}; internal invariant violations use [assert]. *)

type kind =
  | Parse_error of { line : int; col : int }
  | Semantic_error
  | Type_error
  | Catalog_error
  | Constraint_error
  | Execution_error
  | Unsupported

exception Db_error of kind * string

let kind_to_string = function
  | Parse_error { line; col } -> Printf.sprintf "parse error at %d:%d" line col
  | Semantic_error -> "semantic error"
  | Type_error -> "type error"
  | Catalog_error -> "catalog error"
  | Constraint_error -> "constraint violation"
  | Execution_error -> "execution error"
  | Unsupported -> "unsupported feature"

let () =
  Printexc.register_printer (function
    | Db_error (k, msg) -> Some (Printf.sprintf "%s: %s" (kind_to_string k) msg)
    | _ -> None)

let parse_error ~line ~col fmt =
  Printf.ksprintf (fun msg -> raise (Db_error (Parse_error { line; col }, msg))) fmt

let semantic_error fmt =
  Printf.ksprintf (fun msg -> raise (Db_error (Semantic_error, msg))) fmt

let type_error fmt =
  Printf.ksprintf (fun msg -> raise (Db_error (Type_error, msg))) fmt

let catalog_error fmt =
  Printf.ksprintf (fun msg -> raise (Db_error (Catalog_error, msg))) fmt

let constraint_error fmt =
  Printf.ksprintf (fun msg -> raise (Db_error (Constraint_error, msg))) fmt

let execution_error fmt =
  Printf.ksprintf (fun msg -> raise (Db_error (Execution_error, msg))) fmt

let unsupported fmt =
  Printf.ksprintf (fun msg -> raise (Db_error (Unsupported, msg))) fmt
