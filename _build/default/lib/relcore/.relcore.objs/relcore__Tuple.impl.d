lib/relcore/tuple.ml: Array Format Hashtbl Int List String Value
