lib/relcore/vec.mli:
