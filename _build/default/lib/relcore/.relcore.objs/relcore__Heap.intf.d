lib/relcore/heap.mli: Tuple
