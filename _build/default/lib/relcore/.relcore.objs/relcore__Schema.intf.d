lib/relcore/schema.mli: Dtype Format Value
