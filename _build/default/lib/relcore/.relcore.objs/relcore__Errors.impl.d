lib/relcore/errors.ml: Printexc Printf
