lib/relcore/vec.ml: Array List
