lib/relcore/index.ml: Errors Heap List Tuple
