lib/relcore/dtype.mli: Value
