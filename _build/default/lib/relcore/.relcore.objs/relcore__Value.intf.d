lib/relcore/value.mli: Format
