lib/relcore/heap.ml: Errors List Tuple Vec
