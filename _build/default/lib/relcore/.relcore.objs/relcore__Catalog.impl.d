lib/relcore/catalog.ml: Base_table Errors Hashtbl List String
