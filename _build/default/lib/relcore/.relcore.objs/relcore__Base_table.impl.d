lib/relcore/base_table.ml: Array Errors Heap Index List Option Schema String Tuple
