lib/relcore/errors.mli:
