lib/relcore/catalog.mli: Base_table
