lib/relcore/base_table.mli: Heap Index Schema Tuple Value
