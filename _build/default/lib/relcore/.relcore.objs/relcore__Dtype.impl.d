lib/relcore/dtype.ml: Errors String Value
