lib/relcore/schema.ml: Array Bool Dtype Errors Format Hashtbl List Printf String Value
