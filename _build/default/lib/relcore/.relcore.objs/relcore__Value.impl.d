lib/relcore/value.ml: Bool Buffer Errors Float Format Hashtbl Int Printf String
