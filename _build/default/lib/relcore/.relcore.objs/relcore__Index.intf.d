lib/relcore/index.mli: Heap Tuple
