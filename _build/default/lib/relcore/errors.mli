(** Error conditions shared by all layers of the engine. *)

type kind =
  | Parse_error of { line : int; col : int }
  | Semantic_error
  | Type_error
  | Catalog_error
  | Constraint_error
  | Execution_error
  | Unsupported

exception Db_error of kind * string

val kind_to_string : kind -> string

(** The raisers below format their message and raise {!Db_error}. *)

val parse_error : line:int -> col:int -> ('a, unit, string, 'b) format4 -> 'a
val semantic_error : ('a, unit, string, 'b) format4 -> 'a
val type_error : ('a, unit, string, 'b) format4 -> 'a
val catalog_error : ('a, unit, string, 'b) format4 -> 'a
val constraint_error : ('a, unit, string, 'b) format4 -> 'a
val execution_error : ('a, unit, string, 'b) format4 -> 'a
val unsupported : ('a, unit, string, 'b) format4 -> 'a
