(** Table schemas: ordered, named, typed columns.  Column names are
    case-insensitive (normalised to lowercase). *)

type column = {
  name : string;
  dtype : Dtype.t;
  nullable : bool;
}

type t

val normalize : string -> string

val column : ?nullable:bool -> string -> Dtype.t -> column
(** [nullable] defaults to [true]. *)

val make : column list -> t
(** Raises on duplicate column names. *)

val arity : t -> int
val columns : t -> column list
val column_at : t -> int -> column
val column_names : t -> string list

val find_opt : t -> string -> int option
val find : t -> string -> int
(** Raises {!Errors.Db_error} when the column does not exist. *)

val mem : t -> string -> bool

val concat : ?rename_dups_with:string -> t -> t -> t
(** Concatenate two schemas (join outputs); duplicate right-hand names
    are prefixed (default ["r_"]). *)

val of_pairs : (string * Dtype.t) list -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val validate_row : t -> Value.t array -> Value.t array
(** Validate a raw row against the schema, coercing where safe; raises
    on arity mismatch, type mismatch, or null in a NOT NULL column. *)
