(** Hash index over a base table: key (sub-tuple of the indexed
    columns) to the rids holding that key. *)

type t = {
  name : string;
  key_columns : int array; (* positions within the table schema *)
  unique : bool;
  entries : Heap.rid list ref Tuple.Tbl.t;
}

val create : name:string -> key_columns:int array -> unique:bool -> t
val key_of : t -> Tuple.t -> Tuple.t
val lookup : t -> Tuple.t -> Heap.rid list
val lookup_tuple : t -> Tuple.t -> Heap.rid list

val insert : t -> Heap.rid -> Tuple.t -> unit
(** Raises on unique violation. *)

val remove : t -> Heap.rid -> Tuple.t -> unit

val cardinality : t -> int
(** Number of distinct keys. *)
