(** System catalog: the namespace of base tables and named view texts.
    Views are stored as source text (SQL or XNF) and recompiled on use. *)

type view_def = {
  view_name : string;
  language : [ `Sql | `Xnf ];
  text : string;
}

type t

val create : unit -> t

val add_table : t -> Base_table.t -> unit
(** Raises when the name (table or view) is taken. *)

val find_table_opt : t -> string -> Base_table.t option
val find_table : t -> string -> Base_table.t
val mem_table : t -> string -> bool
val drop_table : t -> string -> unit

val add_view : t -> view_def -> unit
val find_view_opt : t -> string -> view_def option
val mem_view : t -> string -> bool
val drop_view : t -> string -> unit

val tables : t -> Base_table.t list
(** Sorted by name. *)

val views : t -> view_def list
