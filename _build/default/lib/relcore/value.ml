(** Runtime values of the relational engine.

    SQL three-valued logic is handled at the predicate-evaluation layer;
    here [Null] is just a distinguished value that compares below all
    non-null values (for sorting) and is never equal to anything under
    SQL equality (see {!sql_eq}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false

(** Total order used for sorting and index organisation (not SQL
    comparison): Null < Bool < Int/Float (numeric order) < Str. *)
let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | Str _ -> 3
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(** SQL equality: [None] when either side is null (unknown). *)
let sql_eq a b =
  if is_null a || is_null b then None else Some (compare a b = 0)

(** SQL comparison: [None] when either side is null. *)
let sql_compare a b =
  if is_null a || is_null b then None else Some (compare a b)

let hash = function
  | Null -> 0
  | Bool b -> Bool.to_int b + 11
  | Int i -> Hashtbl.hash i
  | Float f ->
    (* Hash integral floats like the equal int so Int 3 and Float 3.0,
       which compare equal, also hash equal. *)
    if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (int_of_float f)
    else Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "TRUE" else "FALSE"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

(** SQL-literal rendering: strings get quoted and escaped. *)
let to_literal = function
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | v -> to_string v

let pp fmt v = Format.pp_print_string fmt (to_string v)

let as_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | v -> Errors.type_error "expected INT, got %s" (to_string v)

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> Errors.type_error "expected FLOAT, got %s" (to_string v)

let as_string = function
  | Str s -> s
  | v -> Errors.type_error "expected STRING, got %s" (to_string v)

let as_bool = function
  | Bool b -> b
  | v -> Errors.type_error "expected BOOL, got %s" (to_string v)
