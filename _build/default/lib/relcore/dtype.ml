(** Column data types of the engine's type system. *)

type t = Tbool | Tint | Tfloat | Tstr

let to_string = function
  | Tbool -> "BOOL"
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Tstr -> "STRING"

let of_string s =
  match String.uppercase_ascii s with
  | "BOOL" | "BOOLEAN" -> Tbool
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Tint
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> Tfloat
  | "STRING" | "TEXT" | "CHAR" | "VARCHAR" -> Tstr
  | _ -> Errors.type_error "unknown type name %S" s

let equal = ( = )

(** Does a runtime value inhabit this type?  [Null] inhabits every type. *)
let admits ty (v : Value.t) =
  match ty, v with
  | _, Value.Null -> true
  | Tbool, Value.Bool _ -> true
  | Tint, Value.Int _ -> true
  | Tfloat, Value.(Float _ | Int _) -> true
  | Tstr, Value.Str _ -> true
  | (Tbool | Tint | Tfloat | Tstr), _ -> false

(** Coerce a value into the column type where a safe conversion exists
    (int→float); raise otherwise. *)
let coerce ty (v : Value.t) =
  match ty, v with
  | _, Value.Null -> Value.Null
  | Tfloat, Value.Int i -> Value.Float (float_of_int i)
  | _ ->
    if admits ty v then v
    else
      Errors.type_error "value %s does not fit type %s" (Value.to_string v)
        (to_string ty)

(** Result type of a binary arithmetic operation. *)
let join a b =
  match a, b with
  | Tint, Tint -> Tint
  | (Tint | Tfloat), (Tint | Tfloat) -> Tfloat
  | Tstr, Tstr -> Tstr
  | Tbool, Tbool -> Tbool
  | _ ->
    Errors.type_error "incompatible types %s and %s" (to_string a) (to_string b)
