(** Tuples are immutable-by-convention value arrays. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val of_list : Value.t list -> t
val to_list : t -> Value.t list
val concat : t -> t -> t
val project : t -> int array -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** Consistent with {!equal}. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val key : t -> int array -> t
(** Sub-tuple extraction for hashing/joins. *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by tuple value. *)
