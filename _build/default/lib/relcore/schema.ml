(** Table schemas: ordered, named, typed columns.

    Column names are case-insensitive (normalised to lowercase), matching
    classic SQL catalogs. *)

type column = {
  name : string;
  dtype : Dtype.t;
  nullable : bool;
}

type t = {
  columns : column array;
  by_name : (string, int) Hashtbl.t;
}

let normalize = String.lowercase_ascii

let column ?(nullable = true) name dtype = { name = normalize name; dtype; nullable }

let make columns =
  let columns = Array.of_list columns in
  let by_name = Hashtbl.create (Array.length columns * 2) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        Errors.catalog_error "duplicate column name %S" c.name;
      Hashtbl.add by_name c.name i)
    columns;
  { columns; by_name }

let arity s = Array.length s.columns
let columns s = Array.to_list s.columns
let column_at s i = s.columns.(i)
let column_names s = Array.to_list (Array.map (fun c -> c.name) s.columns)

let find_opt s name = Hashtbl.find_opt s.by_name (normalize name)

let find s name =
  match find_opt s name with
  | Some i -> i
  | None -> Errors.semantic_error "unknown column %S" name

let mem s name = Hashtbl.mem s.by_name (normalize name)

(** Concatenate two schemas (used for join outputs); on a duplicate name
    the right-hand column is renamed with the given prefix. *)
let concat ?(rename_dups_with = "r_") a b =
  let cols_b =
    List.map
      (fun c ->
        if mem a c.name then { c with name = rename_dups_with ^ c.name } else c)
      (columns b)
  in
  make (columns a @ cols_b)

(** Schema for a projection given (name, type) pairs. *)
let of_pairs pairs =
  make (List.map (fun (n, ty) -> column n ty) pairs)

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun c1 c2 ->
         String.equal c1.name c2.name
         && Dtype.equal c1.dtype c2.dtype
         && Bool.equal c1.nullable c2.nullable)
       a.columns b.columns

let pp fmt s =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s %s%s" c.name
              (Dtype.to_string c.dtype)
              (if c.nullable then "" else " NOT NULL"))
          (columns s)))

let to_string s = Format.asprintf "%a" pp s

(** Validate a tuple of raw values against the schema, coercing where
    safe.  Raises on arity mismatch, type mismatch, or null in a
    non-nullable column. *)
let validate_row s (row : Value.t array) =
  if Array.length row <> arity s then
    Errors.constraint_error "row arity %d does not match schema arity %d"
      (Array.length row) (arity s);
  Array.mapi
    (fun i v ->
      let c = s.columns.(i) in
      if (not c.nullable) && Value.is_null v then
        Errors.constraint_error "null value in NOT NULL column %S" c.name;
      Dtype.coerce c.dtype v)
    row
