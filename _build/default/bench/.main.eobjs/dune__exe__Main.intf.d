bench/main.mli:
