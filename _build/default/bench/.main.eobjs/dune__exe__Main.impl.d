bench/main.ml: Bench_util Cocache Engine Executor Hashtbl List Printf Relcore Starq String Workloads Xnf
