(* xnfdb — command-line front end to the XNF composite-object DBMS.

   Subcommands:
     repl            interactive SQL/XNF shell (default)
     run FILE...     execute ';'-separated SQL/XNF scripts
                     (--connect ADDR runs them against a daemon)
     demo            preload the paper's Fig. 1 org database, then repl
     serve [FILE..]  run the socket daemon (scripts preload the db)
     calibrate       measure host cost constants, save a profile

   Inside the shell: SQL statements and XNF queries (starting with
   OUT OF) end with ';'.  Meta commands start with '.':
     .tables .views .schema T .explain Q .extract V .save V FILE .help .quit *)

module Db = Engine.Database
module H = Xnf.Hetstream
module Ws = Cocache.Workspace

let print_result = function
  | Db.Rows (schema, rows) ->
    print_endline (Db.render schema rows);
    Printf.printf "(%d rows)\n" (List.length rows)
  | Db.Affected n -> Printf.printf "(%d rows affected)\n" n
  | Db.Done msg -> Printf.printf "%s\n" msg

let print_stream (stream : H.t) =
  List.iter
    (fun (comp, n) -> Printf.printf "  %-16s %6d tuples\n" comp n)
    (H.counts stream);
  Printf.printf "(%d stream items, %d bytes serialized)\n"
    (H.total_items stream)
    (String.length (H.serialize stream))

(** Strip a leading keyword (case-insensitive) plus the whitespace after
    it; [None] when the text does not start with it. *)
let strip_keyword (s : string) (kw : string) : string option =
  let n = String.length kw in
  if
    String.length s > n
    && String.lowercase_ascii (String.sub s 0 n) = String.lowercase_ascii kw
    && (s.[n] = ' ' || s.[n] = '\t' || s.[n] = '\n' || s.[n] = '\r')
  then Some (String.trim (String.sub s n (String.length s - n)))
  else None

(** [EXPLAIN ANALYZE OUT OF ...] / [EXPLAIN OUT OF ...] — the XNF
    analogue of the SQL affordance [Db.exec] provides. *)
let xnf_explain_target (input : string) : [ `Analyze of string | `Plain of string ] option
    =
  match strip_keyword input "EXPLAIN" with
  | None -> None
  | Some rest -> (
    match strip_keyword rest "ANALYZE" with
    | Some q when Xnf.Xnf_parser.is_xnf_text q -> Some (`Analyze q)
    | None when Xnf.Xnf_parser.is_xnf_text rest -> Some (`Plain rest)
    | _ -> None)

let execute db (input : string) =
  let trimmed = String.trim input in
  if trimmed = "" then ()
  else
    match xnf_explain_target trimmed with
    | Some (`Analyze q) -> print_endline (Xnf.Xnf_compile.explain_analyze db q)
    | Some (`Plain q) -> print_endline (Xnf.Xnf_compile.explain db q)
    | None ->
      if Xnf.Xnf_parser.is_xnf_text trimmed then
        print_stream (Xnf.Xnf_compile.run db trimmed)
      else print_result (Db.exec db trimmed)

let meta db (line : string) : bool (* continue? *) =
  let parts =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  (match parts with
  | [ ".quit" ] | [ ".exit" ] -> raise Exit
  | [ ".help" ] ->
    print_endline
      "statements end with ';'. XNF queries start with OUT OF.\n\
       meta commands:\n\
      \  .tables            list base tables\n\
      \  .views             list views\n\
      \  .schema TABLE      show a table's schema\n\
      \  .explain QUERY;    show QGM + plan (SQL) or XNF pipeline\n\
      \  .analyze QUERY;    execute and show per-operator actuals\n\
      \  .extract VIEW      extract an XNF view, show component counts\n\
      \  .save VIEW FILE    extract VIEW and persist its CO cache to FILE\n\
      \  .quit"
  | [ ".tables" ] ->
    List.iter
      (fun t ->
        Printf.printf "  %-20s %6d rows %s\n" (Relcore.Base_table.name t)
          (Relcore.Base_table.cardinality t)
          (Relcore.Schema.to_string (Relcore.Base_table.schema t)))
      (Relcore.Catalog.tables (Db.catalog db))
  | [ ".views" ] ->
    List.iter
      (fun (v : Relcore.Catalog.view_def) ->
        Printf.printf "  %-20s [%s]\n" v.Relcore.Catalog.view_name
          (match v.Relcore.Catalog.language with `Sql -> "SQL" | `Xnf -> "XNF"))
      (Relcore.Catalog.views (Db.catalog db))
  | [ ".schema"; t ] ->
    let table = Relcore.Catalog.find_table (Db.catalog db) t in
    Printf.printf "%s %s\n" t
      (Relcore.Schema.to_string (Relcore.Base_table.schema table))
  | [ ".extract"; v ] -> print_stream (Xnf.Xnf_compile.run_view db v)
  | [ ".save"; v; file ] ->
    let ws = Ws.of_stream (Xnf.Xnf_compile.run_view db v) in
    Cocache.Persist.save ws file;
    Printf.printf "cache of %s saved to %s (%d nodes, %d connections)\n" v file
      (Ws.size ws) (Ws.connection_count ws)
  | ".explain" :: rest ->
    let q = String.concat " " rest in
    let q =
      if String.length q > 0 && q.[String.length q - 1] = ';' then
        String.sub q 0 (String.length q - 1)
      else q
    in
    if Xnf.Xnf_parser.is_xnf_text q then
      print_endline (Xnf.Xnf_compile.explain db q)
    else print_endline (Db.explain db q)
  | ".analyze" :: rest ->
    let q = String.concat " " rest in
    let q =
      if String.length q > 0 && q.[String.length q - 1] = ';' then
        String.sub q 0 (String.length q - 1)
      else q
    in
    (* a bare XNF view name analyzes the stored view, mirroring .extract *)
    let q =
      if
        (not (Xnf.Xnf_parser.is_xnf_text q))
        && List.exists
             (fun (v : Relcore.Catalog.view_def) ->
               v.Relcore.Catalog.view_name = q
               && v.Relcore.Catalog.language = `Xnf)
             (Relcore.Catalog.views (Db.catalog db))
      then Xnf.Xnf_compile.view_text db q
      else q
    in
    if Xnf.Xnf_parser.is_xnf_text q then
      print_endline (Xnf.Xnf_compile.explain_analyze db q)
    else print_endline (Db.explain_analyze db q)
  | _ -> Printf.printf "unknown meta command; try .help\n");
  true

let repl db =
  print_endline
    "xnfdb — composite-object views over relational data (XNF, 1994).";
  print_endline "statements end with ';'; .help for meta commands.";
  let buf = Buffer.create 256 in
  (try
     while true do
       print_string (if Buffer.length buf = 0 then "xnfdb> " else "   ... ");
       flush stdout;
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line ->
         let t = String.trim line in
         if Buffer.length buf = 0 && String.length t > 0 && t.[0] = '.' then (
           (* meta commands share the statement path's error contract:
              print and keep the session alive *)
           try ignore (meta db t) with
           | Relcore.Errors.Db_error (k, msg) ->
             Printf.printf "error: %s: %s\n" (Relcore.Errors.kind_to_string k)
               msg)
         else begin
           Buffer.add_string buf line;
           Buffer.add_char buf '\n';
           if String.length t > 0 && t.[String.length t - 1] = ';' then begin
             let stmt = Buffer.contents buf in
             Buffer.clear buf;
             let stmt = String.trim stmt in
             let stmt = String.sub stmt 0 (String.length stmt - 1) in
             try execute db stmt with
             | Relcore.Errors.Db_error (k, msg) ->
               Printf.printf "error: %s: %s\n" (Relcore.Errors.kind_to_string k)
                 msg
           end
         end
     done
   with Exit -> ());
  print_endline "bye."

let run_scripts db files =
  List.iter
    (fun file ->
      let text = In_channel.with_open_text file In_channel.input_all in
      List.iter
        (fun stmt ->
          try execute db stmt with
          | Relcore.Errors.Db_error (k, msg) ->
            Printf.printf "error: %s: %s\n" (Relcore.Errors.kind_to_string k)
              msg)
        (Db.split_script text))
    files

let load_demo db =
  let src = Workloads.Org.generate { Workloads.Org.default with n_depts = 8 } in
  (* copy the generated tables into this session's catalog *)
  List.iter
    (fun t -> Relcore.Catalog.add_table (Db.catalog db) t)
    (Relcore.Catalog.tables (Db.catalog src));
  ignore
    (Db.exec db ("CREATE VIEW deps_arc AS " ^ Workloads.Org.deps_arc_query));
  print_endline
    "demo database loaded: dept, emp, proj, skills, empskills, projskills; \
     XNF view deps_arc defined."

(* -- client mode --------------------------------------------------------- *)

(** Parse a connection spec: [PATH] (unix socket), [:PORT] or
    [HOST:PORT] (TCP). *)
let parse_addr (spec : string) : Unix.sockaddr =
  match String.rindex_opt spec ':' with
  | Some i when int_of_string_opt
                  (String.sub spec (i + 1) (String.length spec - i - 1))
                <> None ->
    let port =
      int_of_string (String.sub spec (i + 1) (String.length spec - i - 1))
    in
    let host = String.sub spec 0 i in
    let inet =
      if host = "" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.ADDR_INET (inet, port)
  | _ -> Unix.ADDR_UNIX spec

let print_client_result = function
  | Net.Client.Rows (schema, rows) ->
    print_endline (Db.render schema rows);
    Printf.printf "(%d rows)\n" (List.length rows)
  | Net.Client.Affected n -> Printf.printf "(%d rows affected)\n" n
  | Net.Client.Done msg -> Printf.printf "%s\n" msg

let execute_remote cl (input : string) =
  let trimmed = String.trim input in
  if trimmed = "" then ()
  else
    match xnf_explain_target trimmed with
    | Some (`Analyze q) -> print_endline (Net.Client.extract_analyze cl q)
    | Some (`Plain _) ->
      print_endline "error: plain EXPLAIN of XNF is local-only; use EXPLAIN \
                     ANALYZE or run without --connect"
    | None -> (
      (* SQL EXPLAIN ANALYZE rides the dedicated analyze flag (read
         path, no memo clearing) instead of the statement path *)
      match
        Option.bind (strip_keyword trimmed "EXPLAIN") (fun r ->
            strip_keyword r "ANALYZE")
      with
      | Some q -> print_endline (Net.Client.query_analyze cl q)
      | None ->
        if Xnf.Xnf_parser.is_xnf_text trimmed then
          print_stream (Net.Client.extract cl trimmed)
        else print_client_result (Net.Client.exec cl trimmed))

let run_scripts_remote (addr : Unix.sockaddr) files =
  let cl = Net.Client.connect ~client_name:"xnfdb-cli" addr in
  Fun.protect
    ~finally:(fun () -> Net.Client.close cl)
    (fun () ->
      List.iter
        (fun file ->
          let text = In_channel.with_open_text file In_channel.input_all in
          List.iter
            (fun stmt ->
              try execute_remote cl stmt with
              | Relcore.Errors.Db_error (k, msg) ->
                Printf.printf "error: %s: %s\n"
                  (Relcore.Errors.kind_to_string k) msg
              | Net.Client.Server_error { kind; msg } ->
                Printf.printf "server error: %s: %s\n" kind msg)
            (Db.split_script text))
        files)

(* -- daemon mode --------------------------------------------------------- *)

let serve_daemon ~addr ~demo files =
  let db = Db.create () in
  if demo then load_demo db;
  run_scripts db files;
  let config =
    Net.Server.default_config
      ?addr:(Option.map parse_addr addr)
      ~release_on_stop:true ()
  in
  let t = Net.Server.create ~config db in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> Net.Server.stop t));
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Net.Server.stop t));
  (match Net.Server.sockaddr t with
  | Unix.ADDR_UNIX path -> Printf.printf "xnfdb: serving on unix:%s\n%!" path
  | Unix.ADDR_INET (h, p) ->
    Printf.printf "xnfdb: serving on tcp:%s:%d\n%!"
      (Unix.string_of_inet_addr h) p);
  Net.Server.serve t;
  print_endline "xnfdb: drained, all sessions closed; bye."

(* -- cmdliner ----------------------------------------------------------- *)

open Cmdliner

let setup_verbose verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"trace rewrites and plans")

let repl_cmd =
  let doc = "interactive SQL/XNF shell" in
  Cmd.v (Cmd.info "repl" ~doc)
    Term.(
      const (fun verbose ->
          setup_verbose verbose;
          repl (Db.create ()))
      $ verbose_flag)

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "run against a daemon instead of in-process.  ADDR is a unix \
           socket path, :PORT, or HOST:PORT.")

let run_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let doc = "execute ';'-separated SQL/XNF script files" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun verbose connect files ->
          setup_verbose verbose;
          match connect with
          | Some spec -> run_scripts_remote (parse_addr spec) files
          | None -> run_scripts (Db.create ()) files)
      $ verbose_flag $ connect_arg $ files)

let serve_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  let addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "listen address: a unix socket path, :PORT, or HOST:PORT \
             (default $(b,XNFDB_PORT) / $(b,XNFDB_SOCKET) / \
             /tmp/xnfdb.sock).")
  in
  let demo =
    Arg.(value & flag & info [ "demo" ] ~doc:"preload the Fig. 1 demo database")
  in
  let doc =
    "run the socket daemon (SIGINT drains sessions and shuts down cleanly)"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const (fun verbose addr demo files ->
          setup_verbose verbose;
          serve_daemon ~addr ~demo files)
      $ verbose_flag $ addr $ demo $ files)

let calibrate_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "where to save the profile (default $(b,XNFDB_COST_PROFILE), \
             else ./xnfdb-cost-profile.txt).")
  in
  let doc =
    "measure this host's cost constants (scan, batch dispatch, hash \
     build/probe, Bloom test, decode fault, domain fan-out) and save a \
     profile for $(b,XNFDB_COST_PROFILE)"
  in
  Cmd.v (Cmd.info "calibrate" ~doc)
    Term.(
      const (fun verbose out ->
          setup_verbose verbose;
          let module C = Optimizer.Cost.Calibrate in
          let prof = C.measure () in
          print_string (C.render prof);
          let path =
            match out with
            | Some p -> p
            | None -> (
              match C.profile_path () with
              | Some p -> p
              | None -> "xnfdb-cost-profile.txt")
          in
          C.save path prof;
          Printf.printf "profile saved to %s\n" path;
          match C.profile_path () with
          | Some p when p = path ->
            print_endline "XNFDB_COST_PROFILE already points here; active."
          | _ ->
            Printf.printf "activate with: export XNFDB_COST_PROFILE=%s\n" path)
      $ verbose_flag $ out)

let demo_cmd =
  let doc = "preload the paper's Fig. 1 example database and open the shell" in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(
      const (fun verbose ->
          setup_verbose verbose;
          let db = Db.create () in
          load_demo db;
          repl db)
      $ verbose_flag)

let main_cmd =
  let doc = "composite-object views over relational data (XNF reproduction)" in
  let info = Cmd.info "xnfdb" ~version:"1.0.0" ~doc in
  Cmd.group ~default:Term.(const (fun () -> repl (Db.create ())) $ const ()) info
    [ repl_cmd; run_cmd; demo_cmd; serve_cmd; calibrate_cmd ]

let () = exit (Cmd.eval main_cmd)
