(** Parallel execution layer: pool/channel units, the ordered
    parallel==sequential equivalence property across all four workloads,
    join methods and domain counts, byte-identical CO extraction, and a
    randomized morsel-size stress run. *)

open Helpers
open Relcore
module Db = Engine.Database
module Exec = Executor.Exec
module Exec_par = Executor.Exec_par

(* ------------------------------------------------------------- units -- *)

let test_pool () =
  (* every participant index runs exactly once *)
  let hits = Array.make 4 0 in
  Pool.run ~domains:4 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (list int)) "each participant ran once" [ 1; 1; 1; 1 ]
    (Array.to_list hits);
  (* morsel scheduling covers every index exactly once *)
  let seen = Array.make 100 0 in
  let lock = Mutex.create () in
  Pool.for_morsels ~domains:4 ~morsels:100 (fun m ->
      Mutex.lock lock;
      seen.(m) <- seen.(m) + 1;
      Mutex.unlock lock);
  Alcotest.(check bool) "all morsels visited once" true
    (Array.for_all (( = ) 1) seen);
  (* nested run degrades to inline instead of deadlocking the pool *)
  let total = Atomic.make 0 in
  Pool.run ~domains:2 (fun _ ->
      Pool.run ~domains:2 (fun _ -> ignore (Atomic.fetch_and_add total 1)));
  Alcotest.(check int) "nested run executed 2x2 tasks" 4 (Atomic.get total);
  (* task exceptions surface at await *)
  let h = Pool.launch ~n:3 (fun i -> if i = 1 then failwith "boom") in
  (match Pool.await h with
  | () -> Alcotest.fail "expected failure to propagate"
  | exception Failure m -> Alcotest.(check string) "task error" "boom" m)

let test_chan () =
  let c = Chan.create ~capacity:4 in
  (* fits within capacity: same-thread round trip preserves order *)
  List.iter (Chan.push c) [ 1; 2; 3 ];
  Chan.close c;
  let rec drain c acc =
    match Chan.pop c with None -> List.rev acc | Some x -> drain c (x :: acc)
  in
  Alcotest.(check (list int)) "fifo order, then end of stream" [ 1; 2; 3 ]
    (drain c []);
  Alcotest.(check bool) "pop after drain stays None" true (Chan.pop c = None);
  (match Chan.push c 4 with
  | () -> Alcotest.fail "push on closed channel must raise"
  | exception Chan.Closed -> ());
  (match Chan.create ~capacity:0 with
  | _ -> Alcotest.fail "zero capacity must be rejected"
  | exception Invalid_argument _ -> ());
  (* cross-domain: producers on the pool, consumer here, with a buffer
     smaller than the element count so producers actually block *)
  let c = Chan.create ~capacity:2 in
  let n_producers = 3 and per_producer = 50 in
  let active = Atomic.make n_producers in
  let h =
    Pool.launch ~n:n_producers (fun w ->
        for i = 0 to per_producer - 1 do
          Chan.push c ((w * per_producer) + i)
        done;
        if Atomic.fetch_and_add active (-1) = 1 then Chan.close c)
  in
  let got = drain c [] in
  Pool.await h;
  Alcotest.(check int) "every element arrived"
    (n_producers * per_producer)
    (List.length got);
  Alcotest.(check (list int)) "no element lost or duplicated"
    (List.init (n_producers * per_producer) Fun.id)
    (List.sort compare got)

(* ----------------------------------- parallel == sequential (ordered) -- *)

(* tiny threshold + tiny morsels force the parallel machinery even on
   test-sized tables *)
let par_run ~domains c = Exec_par.run ~domains ~threshold:1 ~morsel_rows:17 c

let check_equiv ?(join_method = `Auto) name db sql =
  let c = Db.compile_query ~join_method db sql in
  let expected = Exec.run c in
  List.iter
    (fun domains ->
      check_rows
        (Printf.sprintf "%s @ %d domains" name domains)
        expected
        (par_run ~domains c))
    [ 1; 2; 4 ]

let test_equiv_oo1 () =
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 500 } in
  check_equiv "index-join traversal" db
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_equiv ~join_method:`Hash "hash-join traversal" db
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_equiv "scan + filter" db
    "SELECT cto, clength FROM conns WHERE clength < 500";
  check_equiv "mergeable aggregate" db
    "SELECT cfrom, COUNT(*), MIN(clength) FROM conns GROUP BY cfrom";
  check_equiv "string-keyed group" db
    "SELECT ptype, COUNT(*) FROM parts GROUP BY ptype";
  check_equiv "distinct" db "SELECT DISTINCT ptype FROM parts";
  check_equiv "sort + limit" db
    "SELECT pid, build FROM parts ORDER BY build DESC, pid LIMIT 10"

let test_equiv_bom () =
  let db = Workloads.Bom.generate Workloads.Bom.default in
  check_equiv "parent/child join" db
    "SELECT p.pid, c.child FROM part p, contains c WHERE p.pid = c.parent \
     AND p.level < 2";
  check_equiv "sum rollup (splice fallback)" db
    "SELECT parent, COUNT(*), SUM(qty) FROM contains GROUP BY parent";
  check_equiv ~join_method:`Hash "two-column hash key" db
    "SELECT a.pid, b.pid FROM part a, part b WHERE a.level = b.level AND \
     a.pname = b.pname";
  check_equiv "projection arithmetic" db
    "SELECT child, qty * 2 + 1 FROM contains WHERE qty > 1"

let test_equiv_org () =
  let db = Workloads.Org.generate Workloads.Org.default in
  check_equiv "equi-join ordered" db
    "SELECT d.dno, e.eno FROM dept d, emp e WHERE d.dno = e.edno ORDER BY \
     d.dno, e.eno";
  check_equiv ~join_method:`Merge "merge join" db
    "SELECT d.dno, e.eno FROM dept d, emp e WHERE d.dno = e.edno";
  check_equiv "correlated exists (sequential fallback)" db
    "SELECT d.dno FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE \
     e.edno = d.dno AND e.sal > 3000)";
  check_equiv "in subquery (sequential fallback)" db
    "SELECT eno FROM emp WHERE edno IN (SELECT dno FROM dept WHERE loc = \
     'ARC')";
  check_equiv "non-equi nested loop" db
    "SELECT e.eno, d.dno FROM emp e, dept d WHERE e.sal > d.dno * 2000"

let test_equiv_shop () =
  let db = Workloads.Shop.generate Workloads.Shop.default in
  check_equiv "region join" db
    "SELECT c.cid, o.oid FROM customer c, orders o WHERE c.cid = o.ocid AND \
     c.region = 'EMEA'";
  check_equiv "float projection join" db
    "SELECT l.lioid, p.pname, l.qty * l.price FROM lineitem l, product p \
     WHERE l.lipid = p.pid AND l.qty > 2";
  check_equiv "float sum rollup (splice fallback)" db
    "SELECT status, COUNT(*), SUM(total) FROM orders GROUP BY status";
  check_equiv "empty result" db "SELECT cid FROM customer WHERE cid < 0"

(* ------------------------------------- CO extraction, byte-identical -- *)

let hetstream_testable : Xnf.Hetstream.t Alcotest.testable =
  Alcotest.testable
    (fun fmt s ->
      Format.fprintf fmt "stream of %d items" (Xnf.Hetstream.total_items s))
    Xnf.Hetstream.equal

(* ~cache:false: the point is comparing the two executors, so the
   parallel run must not be served from the stream cached by the
   sequential one *)
let check_extraction name db query =
  let c = Xnf.Xnf_compile.compile db query in
  let seq = Xnf.Xnf_compile.extract ~cache:false c in
  List.iter
    (fun domains ->
      let par =
        Xnf.Xnf_compile.extract_parallel ~domains ~threshold:1 ~morsel_rows:17
          ~cache:false c
      in
      Alcotest.check hetstream_testable
        (Printf.sprintf "%s @ %d domains" name domains)
        seq par)
    [ 1; 2; 4 ]

let test_extraction_equiv () =
  check_extraction "org deps"
    (Workloads.Org.generate Workloads.Org.default)
    Workloads.Org.deps_arc_query;
  check_extraction "oo1 parts graph"
    (Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 })
    Workloads.Oo1.parts_graph_query;
  check_extraction "bom assembly"
    (Workloads.Bom.generate Workloads.Bom.default)
    Workloads.Bom.assembly_query;
  check_extraction "shop region"
    (Workloads.Shop.generate Workloads.Shop.default)
    (Workloads.Shop.region_query "EMEA")

(* --------------------------------------- randomized morsel-size stress -- *)

let test_morsel_stress () =
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 400 } in
  let queries =
    [
      "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build \
       < 50000";
      "SELECT cfrom, COUNT(*), MAX(clength) FROM conns GROUP BY cfrom";
      "SELECT pid, ptype FROM parts WHERE build < 60000";
    ]
  in
  let rng = Workloads.Rng.create 0xC0FFEE in
  List.iter
    (fun sql ->
      let c = Db.compile_query db sql in
      let expected = Exec.run c in
      for _ = 1 to 8 do
        let morsel_rows = 1 + Workloads.Rng.int rng 97 in
        let domains = 1 + Workloads.Rng.int rng 6 in
        check_rows
          (Printf.sprintf "morsel=%d domains=%d: %s" morsel_rows domains sql)
          expected
          (Exec_par.run ~domains ~threshold:1 ~morsel_rows c)
      done)
    queries

(* ------------------------------------------- scheduling / cost model -- *)

let test_dop_choice () =
  let dop = Optimizer.Cost.choose_dop ~domains:8 ~rows:100 () in
  Alcotest.(check int) "small inputs stay serial" 1 dop;
  let dop = Optimizer.Cost.choose_dop ~domains:8 ~rows:1_000_000 () in
  Alcotest.(check int) "large inputs use all domains" 8 dop;
  let dop = Optimizer.Cost.choose_dop ~domains:8 ~rows:3 ~threshold:1 () in
  Alcotest.(check int) "never more workers than chunks" 3 dop;
  Alcotest.(check bool) "parallel cost beats serial on big streams" true
    (Optimizer.Cost.parallel_stream_cost ~domains:4 1.0e6
    < Optimizer.Cost.stream_cost 1.0e6);
  Alcotest.(check bool) "tiny streams do not pay the fan-out" true
    (Optimizer.Cost.parallel_stream_cost ~domains:4 10.0
    = Optimizer.Cost.stream_cost 10.0)

let test_parallelizable () =
  let db = org_db () in
  let pure = Db.compile_query db "SELECT eno FROM emp WHERE sal > 100" in
  Alcotest.(check bool) "pure scan+filter is parallelizable" true
    (Exec_par.parallelizable pure.Optimizer.Plan.plan);
  let correlated =
    Db.compile_query ~rewrite:false db
      "SELECT d.dno FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE \
       e.edno = d.dno)"
  in
  Alcotest.(check bool) "correlated probe is not" false
    (Exec_par.parallelizable correlated.Optimizer.Plan.plan);
  let limited = Db.compile_query db "SELECT eno FROM emp LIMIT 2" in
  Alcotest.(check bool) "limit is not" false
    (Exec_par.parallelizable limited.Optimizer.Plan.plan)

let suite =
  [
    Alcotest.test_case "domain pool" `Quick test_pool;
    Alcotest.test_case "bounded channel" `Quick test_chan;
    Alcotest.test_case "parallel = sequential (oo1)" `Quick test_equiv_oo1;
    Alcotest.test_case "parallel = sequential (bom)" `Quick test_equiv_bom;
    Alcotest.test_case "parallel = sequential (org)" `Quick test_equiv_org;
    Alcotest.test_case "parallel = sequential (shop)" `Quick test_equiv_shop;
    Alcotest.test_case "extraction byte-identical" `Quick
      test_extraction_equiv;
    Alcotest.test_case "randomized morsel stress" `Quick test_morsel_stress;
    Alcotest.test_case "dop choice + parallel cost" `Quick test_dop_choice;
    Alcotest.test_case "parallelizable predicate" `Quick test_parallelizable;
  ]
