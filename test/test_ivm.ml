(** Incremental CO-view maintenance: the per-table row delta log,
    transactional publish/discard, the [XNFDB_IVM] knob, and a
    randomized DML soak over every workload generator.  Correctness bar
    throughout: a maintained cached stream must be byte-identical
    ([Hetstream.equal]) to a cold recomputation, whatever interleaving
    of inserts, updates, deletes, and rolled-back transactions came
    before it. *)

open Helpers
module Db = Engine.Database
module RC = Executor.Result_cache
module H = Xnf.Hetstream
module XC = Xnf.Xnf_compile
module Ivm = Xnf.Xnf_ivm
module BT = Relcore.Base_table
module Schema = Relcore.Schema
module Dtype = Relcore.Dtype
module Value = Relcore.Value

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

(* ---- delta log -------------------------------------------------------- *)

let two_int_table () =
  BT.create ~name:"t"
    (Schema.make
       [
         Schema.column ~nullable:false "id" Dtype.Tint;
         Schema.column "v" Dtype.Tint;
       ])

let test_delta_log_records () =
  let t = two_int_table () in
  let v0 = BT.version t in
  let rid = BT.insert t [| Value.Int 1; Value.Int 10 |] in
  let n_since v =
    match BT.deltas_since t v with
    | None -> Alcotest.fail "delta log unexpectedly overflowed"
    | Some ops -> List.length ops
  in
  Alcotest.(check int) "insert logs one op" 1 (n_since v0);
  BT.update t rid [| Value.Int 1; Value.Int 11 |];
  (* an update is a retire + a re-insert at the same version *)
  Alcotest.(check int) "update logs two ops" 3 (n_since v0);
  BT.delete t rid;
  Alcotest.(check int) "delete logs one op" 4 (n_since v0);
  Alcotest.(check int) "current version has no pending deltas" 0
    (n_since (BT.version t));
  (* ops replay in version order *)
  let versions =
    match BT.deltas_since t v0 with
    | None -> []
    | Some ops -> List.map fst ops
  in
  Alcotest.(check bool) "ops sorted by version" true
    (versions = List.sort compare versions)

let test_delta_log_overflow () =
  with_env "XNFDB_DELTA_LOG" "4" @@ fun () ->
  let t = two_int_table () in
  let v0 = BT.version t in
  for i = 1 to 10 do
    ignore (BT.insert t [| Value.Int i; Value.Int i |])
  done;
  Alcotest.(check bool) "overflow forgets old snapshots" true
    (BT.deltas_since t v0 = None);
  (* the log recovers for snapshots taken after the overflow *)
  let v1 = BT.version t in
  ignore (BT.insert t [| Value.Int 99; Value.Int 99 |]);
  Alcotest.(check bool) "post-overflow snapshot is maintainable" true
    (match BT.deltas_since t v1 with Some [ _ ] -> true | _ -> false)

let test_truncate_floors_log () =
  let t = two_int_table () in
  ignore (BT.insert t [| Value.Int 1; Value.Int 1 |]);
  let v0 = BT.version t in
  BT.truncate t;
  Alcotest.(check bool) "pre-truncate snapshots are beyond repair" true
    (BT.deltas_since t v0 = None)

let test_rewind_hole () =
  let t = two_int_table () in
  ignore (BT.insert t [| Value.Int 1; Value.Int 1 |]);
  let v_keep = BT.version t in
  let mark = BT.delta_mark t in
  ignore (BT.insert t [| Value.Int 2; Value.Int 2 |]);
  let v_inside = BT.version t in
  BT.delta_rewind t mark;
  Alcotest.(check bool) "snapshot at the mark stays maintainable" true
    (BT.deltas_since t v_keep = Some []);
  Alcotest.(check bool) "snapshot inside the rewound range is refused" true
    (BT.deltas_since t v_inside = None)

let test_rollback_discards_deltas () =
  (* pin the log capacity: the assertions below expect the txn's entries
     to fit without overflow *)
  with_env "XNFDB_DELTA_LOG" "4096" @@ fun () ->
  let db = org_db () in
  let emp = Relcore.Catalog.find_table (Db.catalog db) "emp" in
  let v0 = BT.version emp in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO emp VALUES (99, 'zed', 50, 1)");
  ignore (Db.exec db "UPDATE emp SET sal = 51 WHERE eno = 99");
  ignore (Db.exec db "ROLLBACK");
  (* versions advance past the txn, but the published delta is empty *)
  Alcotest.(check bool) "rollback bumps the version" true
    (BT.version emp > v0);
  Alcotest.(check bool) "rollback publishes no deltas" true
    (BT.deltas_since emp v0 = Some []);
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO emp VALUES (99, 'zed', 50, 1)");
  ignore (Db.exec db "COMMIT");
  Alcotest.(check bool) "commit publishes the txn's deltas" true
    (match BT.deltas_since emp v0 with
    | Some (_ :: _) -> true
    | _ -> false)

(* A transaction whose first write lands exactly on the log-overflow
   boundary records a stale (even negative) rewind mark; ROLLBACK must
   survive it and readers of pre-overflow snapshots must be refused,
   not crashed or served wrong deltas.  The parity loop makes sure some
   iteration hits the boundary whatever the post-generation log fill. *)
let test_rollback_overflow_boundary () =
  with_env "XNFDB_DELTA_LOG" "4" @@ fun () ->
  let db = org_db () in
  let emp = Relcore.Catalog.find_table (Db.catalog db) "emp" in
  let salaries () =
    Db.query db "SELECT eno, sal FROM emp ORDER BY eno"
  in
  let before = salaries () in
  for i = 0 to 5 do
    if i mod 2 = 1 then begin
      ignore (Db.exec db (Printf.sprintf
        "INSERT INTO emp VALUES (%d, 'tmp', 1, 1)" (900 + i)));
      ignore (Db.exec db (Printf.sprintf
        "DELETE FROM emp WHERE eno = %d" (900 + i)))
    end;
    ignore (Db.exec db "BEGIN");
    ignore (Db.exec db "UPDATE emp SET sal = sal + 7 WHERE eno = 1");
    ignore (Db.exec db "ROLLBACK")
  done;
  Alcotest.(check bool) "rolled-back txns left no trace" true
    (salaries () = before);
  (* a snapshot at the current version is always answerable *)
  Alcotest.(check bool) "current snapshot still answerable" true
    (BT.deltas_since emp (BT.version emp) = Some [])

(* ---- randomized DML soak ---------------------------------------------- *)

(* Render a fresh SQL row literal for [sch]; int and string values come
   from a monotonic counter so generated keys never collide. *)
let fresh = ref 5_000_000

let fresh_row sch =
  Schema.columns sch
  |> List.map (fun (c : Schema.column) ->
         incr fresh;
         match c.Schema.dtype with
         | Dtype.Tint -> string_of_int !fresh
         | Dtype.Tstr -> Printf.sprintf "'zz%d'" !fresh
         | Dtype.Tfloat -> Printf.sprintf "%d.5" (!fresh mod 1000)
         | Dtype.Tbool -> "TRUE")
  |> String.concat ", "

let value_lit = function
  | Value.Int i -> string_of_int i
  | Value.Str s ->
    "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Value.Float f -> Printf.sprintf "%.6f" f
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Null -> "NULL"

(* One random DML statement against [t]: an insert of a fresh row, or
   an update/delete keyed on the first column of an existing row (the
   workload schemas all lead with an int key). *)
let random_dml rng (t : BT.t) =
  let sch = BT.schema t in
  let name = BT.name t in
  let pick_row () =
    let rows = BT.to_list t in
    match rows with
    | [] -> None
    | _ -> Some (snd (List.nth rows (Random.State.int rng (List.length rows))))
  in
  match Random.State.int rng 3 with
  | 0 -> Printf.sprintf "INSERT INTO %s VALUES (%s)" name (fresh_row sch)
  | 1 -> (
    (* update a random int column of a random row *)
    match pick_row () with
    | None -> Printf.sprintf "INSERT INTO %s VALUES (%s)" name (fresh_row sch)
    | Some row ->
      let cols = Array.of_list (Schema.columns sch) in
      let ints =
        Array.to_list cols
        |> List.filteri (fun i _ -> i > 0)
        |> List.filter (fun (c : Schema.column) -> c.Schema.dtype = Dtype.Tint)
      in
      (match ints with
      | [] -> Printf.sprintf "INSERT INTO %s VALUES (%s)" name (fresh_row sch)
      | _ ->
        let c = List.nth ints (Random.State.int rng (List.length ints)) in
        Printf.sprintf "UPDATE %s SET %s = %d WHERE %s = %s" name
          c.Schema.name
          (Random.State.int rng 10_000)
          cols.(0).Schema.name (value_lit row.(0))))
  | _ -> (
    match pick_row () with
    | None -> Printf.sprintf "INSERT INTO %s VALUES (%s)" name (fresh_row sch)
    | Some row ->
      Printf.sprintf "DELETE FROM %s WHERE %s = %s" name
        (List.hd (Schema.column_names sch))
        (value_lit row.(0)))

(* [rounds] batches of random DML, each followed by a byte-identity
   check of the maintained cached stream against a cold recomputation.
   Every fourth round wraps its batch in BEGIN..ROLLBACK, so the
   maintained stream must also survive discarded transactions. *)
let soak ?(rounds = 10) ?(domains = 1) ~seed db query table_names =
  RC.set_budget_mb (Some 64);
  RC.clear ();
  Ivm.reset ();
  Fun.protect
    ~finally:(fun () ->
      RC.clear ();
      RC.set_budget_mb None;
      Ivm.reset ())
  @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let tables =
    List.map (Relcore.Catalog.find_table (Db.catalog db)) table_names
  in
  let c = XC.compile db query in
  ignore (XC.extract ~cache:true c);
  for round = 1 to rounds do
    let rollback = round mod 4 = 0 in
    if rollback then ignore (Db.exec db "BEGIN");
    for _ = 1 to 1 + Random.State.int rng 3 do
      let t = List.nth tables (Random.State.int rng (List.length tables)) in
      ignore (Db.exec db (random_dml rng t))
    done;
    if rollback then ignore (Db.exec db "ROLLBACK");
    let cold = XC.extract ~cache:false c in
    let warm =
      if domains > 1 then XC.extract_parallel ~domains ~cache:true c
      else XC.extract ~cache:true c
    in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: maintained stream = cold recomputation"
         round)
      true (H.equal cold warm)
  done;
  Alcotest.(check int) "no verification mismatches" 0
    Ivm.stats.Ivm.mismatches

(* The hard rollback case: an extraction cached *inside* an open
   transaction mirrors uncommitted state; after ROLLBACK rewinds the
   delta log, maintenance must refuse that snapshot (rewind hole) and
   recompute rather than serve the uncommitted mirror. *)
let test_midtxn_snapshot_rollback () =
  RC.set_budget_mb (Some 64);
  RC.clear ();
  Ivm.reset ();
  Fun.protect
    ~finally:(fun () ->
      RC.clear ();
      RC.set_budget_mb None;
      Ivm.reset ())
  @@ fun () ->
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 } in
  let c = XC.compile db Workloads.Oo1.parts_graph_query in
  ignore (XC.extract ~cache:true c);
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE parts SET x = x + 100 WHERE pid < 10");
  (* cache the uncommitted state mid-txn *)
  ignore (XC.extract ~cache:true c);
  ignore (Db.exec db "ROLLBACK");
  let cold = XC.extract ~cache:false c in
  let warm = XC.extract ~cache:true c in
  Alcotest.(check bool) "post-rollback read matches cold recompute" true
    (H.equal cold warm)

let test_soak_oo1 () =
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 } in
  Ivm.reset_stats ();
  soak ~seed:11 db Workloads.Oo1.parts_graph_query [ "parts"; "conns" ];
  (* with the knob on, at least some reads must have been served by
     delta maintenance rather than recompute-and-refill (the ambient
     environment may have disabled it — then equivalence alone counts) *)
  if Ivm.enabled () then
    Alcotest.(check bool) "delta maintenance actually ran" true
      (Ivm.stats.Ivm.maintained > 0)

let test_soak_org () =
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 8 } in
  soak ~seed:23 db Workloads.Org.deps_arc_query
    [ "dept"; "emp"; "empskills"; "skills" ]

let test_soak_shop () =
  let db =
    Workloads.Shop.generate { Workloads.Shop.default with n_customers = 25 }
  in
  soak ~seed:37 db
    (Workloads.Shop.region_query "EMEA")
    [ "customer"; "orders"; "lineitem" ]

(* BOM is recursive: no stream-cache key, so maintenance never engages,
   but the fixpoint's memoized plan skeleton (shared temp delta tables)
   must still reproduce cold results exactly across arbitrary DML. *)
let test_soak_bom_recursive () =
  let db =
    Workloads.Bom.generate
      { Workloads.Bom.default with n_assemblies = 2; levels = 3 }
  in
  let c = XC.compile db Workloads.Bom.assembly_query in
  Alcotest.(check bool) "recursive CO has no cache key" true
    (XC.stream_cache_key c = None);
  soak ~seed:41 db Workloads.Bom.assembly_query [ "part"; "contains" ]

let test_soak_parallel_domains () =
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 } in
  soak ~seed:53 ~domains:4 db Workloads.Oo1.parts_graph_query
    [ "parts"; "conns" ]

let test_soak_ivm_off () =
  with_env "XNFDB_IVM" "0" @@ fun () ->
  Alcotest.(check bool) "knob off" false (Ivm.enabled ());
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 } in
  Ivm.reset_stats ();
  let before = Ivm.stats.Ivm.maintained in
  soak ~seed:11 db Workloads.Oo1.parts_graph_query [ "parts"; "conns" ];
  (* invalidate-on-write semantics: same answers, zero maintenance *)
  Alcotest.(check int) "no maintained reads with the knob off" before
    Ivm.stats.Ivm.maintained

let suite =
  [
    Alcotest.test_case "delta log records row ops" `Quick
      test_delta_log_records;
    Alcotest.test_case "delta log overflow" `Quick test_delta_log_overflow;
    Alcotest.test_case "truncate floors the log" `Quick
      test_truncate_floors_log;
    Alcotest.test_case "rewind hole refuses in-txn snapshots" `Quick
      test_rewind_hole;
    Alcotest.test_case "rollback discards, commit publishes" `Quick
      test_rollback_discards_deltas;
    Alcotest.test_case "rollback across log overflow boundary" `Quick
      test_rollback_overflow_boundary;
    Alcotest.test_case "mid-txn cached snapshot + rollback" `Quick
      test_midtxn_snapshot_rollback;
    Alcotest.test_case "soak: oo1 parts graph" `Quick test_soak_oo1;
    Alcotest.test_case "soak: org deps" `Quick test_soak_org;
    Alcotest.test_case "soak: shop region" `Quick test_soak_shop;
    Alcotest.test_case "soak: bom recursive fixpoint" `Quick
      test_soak_bom_recursive;
    Alcotest.test_case "soak: 4 domains" `Quick test_soak_parallel_domains;
    Alcotest.test_case "soak: XNFDB_IVM=0" `Quick test_soak_ivm_off;
  ]
