let () =
  Alcotest.run "xnfdb"
    [
      ("relcore", Test_relcore.suite);
      ("sqlkit", Test_sqlkit.suite);
      ("qgm", Test_qgm.suite);
      ("planner", Test_planner.suite);
      ("executor", Test_executor.suite);
      ("batch", Test_batch.suite);
      ("colstore", Test_colstore.suite);
      ("spill", Test_spill.suite);
      ("joinfilter", Test_joinfilter.suite);
      ("parallel", Test_parallel.suite);
      ("engine", Test_engine.suite);
      ("cache", Test_cache.suite);
      ("ivm", Test_ivm.suite);
      ("xnf", Test_xnf.suite);
      ("cocache", Test_cocache.suite);
      ("workloads", Test_workloads.suite);
      ("net", Test_net.suite);
      ("analyze", Test_analyze.suite);
      ("writepath", Test_writepath.suite);
      ("properties", Test_props.suite);
    ]
