(** Sideways information passing: the build-side join filter (blocked
    Bloom + exact range + exact small set) is never false-negative — by
    qcheck property up to max_int/min_int and across unions — and the
    [XNFDB_JOINFILTER] knob is output-invariant: on and off produce
    byte-identical results across all four workloads, join methods,
    domain counts and cache modes.  Also covers the filter counters and
    explain section, adaptive disabling on useless filters, and the
    [Cost.pred_selectivity] conjunct-grouping regression (a range pair
    on one column must cost as one interval, not a product). *)

open Helpers
open Relcore
module Db = Engine.Database
module Exec = Executor.Exec
module Exec_par = Executor.Exec_par
module Qgm = Starq.Qgm

(* ------------------------------------------------------ env plumbing -- *)

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

let with_joinfilter flag f =
  with_env "XNFDB_JOINFILTER" (if flag then "1" else "0") f

let with_colstore flag f =
  with_env "XNFDB_COLSTORE" (if flag then "1" else "0") f

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* -------------------------------------------- filter unit properties -- *)

(* int generator biased toward the places a filter can go wrong: the
   extremes of the int range, dense small runs, and power-of-two edges *)
let key_gen =
  QCheck.Gen.(
    oneof
      [
        int;
        oneofl [ max_int; min_int; max_int - 1; min_int + 1; 0; 1; -1 ];
        map (fun i -> 1 lsl (abs i mod 62)) int;
        map (fun i -> abs i mod 1000) int;
      ])

let keys_arb =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_bound 300) key_gen)

let test_never_false_negative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"bloom never false-negative" keys_arb
       (fun keys ->
         let bl = Bloom.create ~expected:(List.length keys) in
         List.iter (Bloom.add bl) keys;
         List.for_all (Bloom.mem bl) keys))

let test_union_never_false_negative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"union keeps every key"
       (QCheck.pair keys_arb keys_arb) (fun (ka, kb) ->
         (* shared [expected] = shared geometry, as in the parallel
            build's per-worker partials *)
         let expected = List.length ka + List.length kb in
         let a = Bloom.create ~expected and b = Bloom.create ~expected in
         List.iter (Bloom.add a) ka;
         List.iter (Bloom.add b) kb;
         Bloom.union_into ~into:a b;
         List.for_all (Bloom.mem a) (ka @ kb)))

let test_filter_unit () =
  let bl = Bloom.create ~expected:16 in
  Alcotest.(check bool) "empty filter rejects" false (Bloom.mem bl 42);
  Alcotest.(check (option (pair int int))) "empty range" None (Bloom.range bl);
  List.iter (Bloom.add bl) [ 5; 900; 17; 5 ];
  Alcotest.(check (option (pair int int)))
    "exact range" (Some (5, 900)) (Bloom.range bl);
  Alcotest.(check bool) "small set stays exact" true (Bloom.is_exact bl);
  (* exact mode: in-range non-members are rejected outright *)
  Alcotest.(check bool) "no false positive in exact mode" false
    (Bloom.mem bl 18);
  Alcotest.(check bool) "member found" true (Bloom.mem bl 900);
  (* overflow the exact set: membership must survive the downgrade *)
  let big = Bloom.create ~expected:400 in
  let keys = List.init 400 (fun i -> (i * 7919) + 3) in
  List.iter (Bloom.add big) keys;
  Alcotest.(check bool) "overflowed set is inexact" false (Bloom.is_exact big);
  Alcotest.(check bool) "all keys survive overflow" true
    (List.for_all (Bloom.mem big) keys);
  (* float probe keys fold through Value.int_key_of_float exactly *)
  let fb = Bloom.create ~expected:8 in
  List.iter (Bloom.add fb) [ 3; 1 lsl 53; min_int ];
  List.iter
    (fun (f, want) ->
      match Value.int_key_of_float f with
      | Some k ->
        Alcotest.(check bool)
          (Printf.sprintf "folded float %h" f)
          want (Bloom.mem fb k)
      | None -> Alcotest.fail (Printf.sprintf "float %h did not fold" f))
    [ (3.0, true); (0x1p53, true); (-0x1p62, true); (4.0, false) ];
  (* geometry mismatch is a programming error, not silent corruption *)
  Alcotest.check_raises "union geometry mismatch"
    (Invalid_argument "Bloom.union_into: mismatched geometry") (fun () ->
      Bloom.union_into ~into:(Bloom.create ~expected:64)
        (Bloom.create ~expected:100_000))

(* ------------------------- Cost.pred_selectivity conjunct grouping -- *)

let test_selectivity_grouping () =
  with_colstore true @@ fun () ->
  let t =
    Base_table.create ~name:"selgrp"
      (Schema.make
         [
           Schema.column ~nullable:true "v" Dtype.Tint;
           Schema.column ~nullable:true "w" Dtype.Tint;
         ])
  in
  for i = 0 to 99 do
    ignore (Base_table.insert t [| vi i; vi (i mod 5) |])
  done;
  let resolve _ = Some (Qgm.base_box t) in
  let sel p = Optimizer.Cost.pred_selectivity ~resolve p in
  let cmp op a b = Qgm.Bcmp (op, a, b) in
  let col c = Qgm.Qcol (0, c) and k v = Qgm.Const (vi v) in
  let band a b = Qgm.Band (a, b) in
  (* [40, 60] over span [0, 99]: one interval (~0.2), not the
     0.6 * 0.6 = 0.36 the old per-conjunct product gave *)
  let s_band = sel (band (cmp Sqlkit.Ast.Ge (col 0) (k 40))
                      (cmp Sqlkit.Ast.Le (col 0) (k 60))) in
  Alcotest.(check bool)
    (Printf.sprintf "closed range costs as one interval (got %.3f)" s_band)
    true
    (s_band > 0.1 && s_band < 0.3);
  (* a contradiction on one column bottoms out at the clamp floor *)
  let s_empty = sel (band (cmp Sqlkit.Ast.Ge (col 0) (k 80))
                       (cmp Sqlkit.Ast.Le (col 0) (k 20))) in
  Alcotest.(check (float 1e-9)) "disjoint range hits the floor" 0.02 s_empty;
  (* Eq dominates any range on the same column: adding a redundant
     bound must not shrink the estimate below the Eq selectivity *)
  let s_eq = sel (cmp Sqlkit.Ast.Eq (col 0) (k 50)) in
  let s_eq_band = sel (band (cmp Sqlkit.Ast.Eq (col 0) (k 50))
                         (cmp Sqlkit.Ast.Ge (col 0) (k 0))) in
  Alcotest.(check (float 1e-9)) "eq + redundant range = eq" s_eq s_eq_band;
  (* distinct columns still multiply *)
  let s_two = sel (band (cmp Sqlkit.Ast.Lt (col 0) (k 50))
                     (cmp Sqlkit.Ast.Lt (col 1) (k 1))) in
  Alcotest.(check bool)
    (Printf.sprintf "independent columns multiply (got %.3f)" s_two)
    true
    (s_two < 0.25)

(* ----------------------------------- counters, explain, adaptivity -- *)

let totals () =
  ( Bloom.totals.Bloom.filters_built,
    Bloom.totals.Bloom.chunks_skipped,
    Bloom.totals.Bloom.rows_skipped,
    Bloom.totals.Bloom.filters_dropped )

(* The join order places the cheaper side first, and the streamed
   prefix is the hash join's PROBE; the build is the newly placed,
   larger side.  A filter therefore pays off when the probe is a big
   clustered scan and the (even bigger) build side covers only a narrow
   key band — which is the shape built here. *)
let clustered_db () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE probe_t (fk INT, payload INT)");
  ignore (Db.exec db "CREATE TABLE build_t (k INT, tag STRING)");
  (* probe: 2000 rows, keys clustered 0..1999 (tight 64-row zones) *)
  let buf = Buffer.create 4096 in
  for base = 0 to 19 do
    Buffer.clear buf;
    Buffer.add_string buf "INSERT INTO probe_t VALUES ";
    for i = 0 to 99 do
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "(%d, %d)" ((base * 100) + i) (i mod 7))
    done;
    ignore (Db.exec db (Buffer.contents buf))
  done;
  (* build: 3000 rows confined to keys 100..107 *)
  for base = 0 to 29 do
    Buffer.clear buf;
    Buffer.add_string buf "INSERT INTO build_t VALUES ";
    for i = 0 to 99 do
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "(%d, 't%d')" (100 + (i mod 8)) ((base * 100) + i))
    done;
    ignore (Db.exec db (Buffer.contents buf))
  done;
  db

let jf_sql =
  "SELECT COUNT(*) FROM probe_t p, build_t b WHERE b.k = p.fk"

let test_counters_and_explain () =
  with_env "XNFDB_CHUNK_ROWS" "64" @@ fun () ->
  with_colstore true @@ fun () ->
  with_joinfilter true @@ fun () ->
  let db = clustered_db () in
  let c = Db.compile_query ~join_method:`Hash db jf_sql in
  let expected = with_joinfilter false (fun () -> Exec.run c) in
  (* 8 probe keys in the build band, each matching 3000/8 build rows *)
  check_rows "oracle count" [ row [ vi 3000 ] ] expected;
  let b0, c0, r0, _ = totals () in
  let ctx = Exec.make_ctx () in
  check_rows "filtered join result" expected (Exec.run ~ctx c);
  Alcotest.(check int) "one filter built" 1 ctx.Exec.jf_built;
  Alcotest.(check bool) "probe chunks pruned by the key range" true
    (ctx.Exec.jf_chunks_skipped > 0);
  Alcotest.(check bool) "probe rows dropped by the filter" true
    (ctx.Exec.jf_rows_skipped > 0);
  Alcotest.(check int) "nothing dropped" 0 ctx.Exec.jf_dropped;
  let b1, c1, r1, _ = totals () in
  Alcotest.(check int) "process totals: built" (b0 + ctx.Exec.jf_built) b1;
  Alcotest.(check int) "process totals: chunks"
    (c0 + ctx.Exec.jf_chunks_skipped) c1;
  Alcotest.(check int) "process totals: rows" (r0 + ctx.Exec.jf_rows_skipped) r1;
  let ex = Db.explain db jf_sql in
  Alcotest.(check bool) "explain has a join-filter section" true
    (contains ~affix:"== join filters (this statement) ==" ex
    && contains ~affix:"filters built" ex
    && contains ~affix:"jfilter(pass~" ex);
  (* knob off: no filter is built and no row/chunk is skipped *)
  with_joinfilter false (fun () ->
      let ctx = Exec.make_ctx () in
      check_rows "knob off result" expected (Exec.run ~ctx c);
      Alcotest.(check int) "no filter built" 0 ctx.Exec.jf_built;
      Alcotest.(check int) "no chunks skipped" 0 ctx.Exec.jf_chunks_skipped;
      Alcotest.(check int) "no rows skipped" 0 ctx.Exec.jf_rows_skipped)

(* Multi-key (tuple) hash joins carry the same sideways filter: one
   Bloom over the hash of the whole key tuple, probed before the table
   lookup.  Zone-map chunk pruning does not apply — there is no single
   probe column to take a range over — so only row-level skips count. *)
let multi_clustered_db () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE probe_t (fk1 INT, fk2 INT, payload INT)");
  ignore (Db.exec db "CREATE TABLE build_t (k1 INT, k2 INT, tag STRING)");
  let buf = Buffer.create 4096 in
  (* probe: 2000 rows, composite keys (k, k mod 16) for k = 0..1999 *)
  for base = 0 to 19 do
    Buffer.clear buf;
    Buffer.add_string buf "INSERT INTO probe_t VALUES ";
    for i = 0 to 99 do
      if i > 0 then Buffer.add_string buf ", ";
      let k = (base * 100) + i in
      Buffer.add_string buf
        (Printf.sprintf "(%d, %d, %d)" k (k mod 16) (i mod 7))
    done;
    ignore (Db.exec db (Buffer.contents buf))
  done;
  (* build: 3000 rows confined to the 8 combos the probe keys 100..107
     carry, so only 8 of the 2000 probe rows survive the filter *)
  for base = 0 to 29 do
    Buffer.clear buf;
    Buffer.add_string buf "INSERT INTO build_t VALUES ";
    for i = 0 to 99 do
      if i > 0 then Buffer.add_string buf ", ";
      let k = 100 + (i mod 8) in
      Buffer.add_string buf
        (Printf.sprintf "(%d, %d, 't%d')" k (k mod 16) ((base * 100) + i))
    done;
    ignore (Db.exec db (Buffer.contents buf))
  done;
  db

let test_multi_key_filter () =
  with_env "XNFDB_CHUNK_ROWS" "64" @@ fun () ->
  with_colstore true @@ fun () ->
  with_joinfilter true @@ fun () ->
  let db = multi_clustered_db () in
  let sql =
    "SELECT COUNT(*) FROM probe_t p, build_t b WHERE b.k1 = p.fk1 AND b.k2 = \
     p.fk2"
  in
  let c = Db.compile_query ~join_method:`Hash db sql in
  let expected = with_joinfilter false (fun () -> Exec.run c) in
  (* 8 surviving probe keys, each matching 3000/8 build rows *)
  check_rows "oracle count" [ row [ vi 3000 ] ] expected;
  let ctx = Exec.make_ctx () in
  check_rows "filtered join result" expected (Exec.run ~ctx c);
  Alcotest.(check int) "one tuple-key filter built" 1 ctx.Exec.jf_built;
  Alcotest.(check bool) "probe rows dropped by the tuple filter" true
    (ctx.Exec.jf_rows_skipped > 0);
  Alcotest.(check int) "no chunk pruning for tuple keys" 0
    ctx.Exec.jf_chunks_skipped;
  Alcotest.(check int) "nothing dropped" 0 ctx.Exec.jf_dropped;
  let ex = Db.explain db sql in
  Alcotest.(check bool) "planner hints the tuple-key filter" true
    (contains ~affix:"jfilter(pass~" ex);
  (* parallel probe: same result, same counters *)
  List.iter
    (fun domains ->
      let ctx = Exec.make_ctx () in
      check_rows
        (Printf.sprintf "parallel @ %d domains" domains)
        expected
        (Exec_par.run ~ctx ~domains ~threshold:1 ~morsel_rows:17 c);
      Alcotest.(check int) "parallel builds one filter" 1 ctx.Exec.jf_built;
      Alcotest.(check bool) "parallel skips rows" true
        (ctx.Exec.jf_rows_skipped > 0))
    [ 1; 4 ];
  (* knob off: no filter, identical rows *)
  with_joinfilter false (fun () ->
      let ctx = Exec.make_ctx () in
      check_rows "knob off result" expected (Exec.run ~ctx c);
      Alcotest.(check int) "no filter built" 0 ctx.Exec.jf_built;
      Alcotest.(check int) "no rows skipped" 0 ctx.Exec.jf_rows_skipped)

(* String join keys ride the probe table's dictionary: build strings
   fold onto probe-side codes, the Bloom works over codes, and a build
   string absent from the probe dictionary is dropped at translation.
   Needs the columnar probe (codes live in the colstore). *)
let test_string_key_filter () =
  with_colstore true @@ fun () ->
  with_joinfilter true @@ fun () ->
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE probe_t (k STRING, payload INT)");
  ignore (Db.exec db "CREATE TABLE build_t (k STRING, w INT)");
  let buf = Buffer.create 4096 in
  let fill tbl n key_of =
    for base = 0 to (n / 100) - 1 do
      Buffer.clear buf;
      Buffer.add_string buf (Printf.sprintf "INSERT INTO %s VALUES " tbl);
      for i = 0 to 99 do
        if i > 0 then Buffer.add_string buf ", ";
        let j = (base * 100) + i in
        Buffer.add_string buf (Printf.sprintf "('%s', %d)" (key_of j) j)
      done;
      ignore (Db.exec db (Buffer.contents buf))
    done
  in
  (* probe: 3000 distinct keys; build: same size, 20 hot keys plus one
     per hundred that the probe table has never seen *)
  fill "probe_t" 3000 (fun i -> Printf.sprintf "key%d" i);
  fill "build_t" 3000 (fun i ->
      if i mod 100 = 99 then Printf.sprintf "stranger%d" i
      else Printf.sprintf "key%d" (i mod 20));
  let sql = "SELECT COUNT(*) FROM probe_t p, build_t b WHERE p.k = b.k" in
  let c = Db.compile_query ~join_method:`Hash db sql in
  let expected = with_joinfilter false (fun () -> Exec.run c) in
  (* 20 hot probe keys, each matching 2970/20 build rows *)
  check_rows "oracle count" [ row [ vi 2970 ] ] expected;
  let ctx = Exec.make_ctx () in
  check_rows "filtered join result" expected (Exec.run ~ctx c);
  Alcotest.(check int) "one filter built" 1 ctx.Exec.jf_built;
  Alcotest.(check bool) "probe rows dropped by the filter" true
    (ctx.Exec.jf_rows_skipped > 0);
  (* row path (no colstore): same rows, no filter for string keys *)
  with_colstore false (fun () ->
      let ctx = Exec.make_ctx () in
      check_rows "row-path result" expected (Exec.run ~ctx c);
      Alcotest.(check int) "row path builds no string filter" 0
        ctx.Exec.jf_built)

let test_adaptive_drop () =
  with_colstore false @@ fun () ->
  with_joinfilter true @@ fun () ->
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE build_t (k INT)");
  ignore (Db.exec db "CREATE TABLE probe_t (k INT)");
  let fill tbl n key_of =
    let buf = Buffer.create 4096 in
    for base = 0 to (n / 100) - 1 do
      Buffer.clear buf;
      Buffer.add_string buf (Printf.sprintf "INSERT INTO %s VALUES " tbl);
      for i = 0 to 99 do
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "(%d)" (key_of ((base * 100) + i)))
      done;
      ignore (Db.exec db (Buffer.contents buf))
    done
  in
  (* build: NDV 100, every key hot.  Probe: 90% of rows carry hot keys
     but 10% are distinct strays, so probe NDV is ~4x the build's — the
     planner predicts a useful filter, while the observed row-level
     pass rate (0.9) exceeds the drop threshold.  The probe must still
     be the placed-first (cheaper) side, hence 3100 < 3200 rows. *)
  let n_probe = Bloom.adaptive_sample + 1052 in
  fill "build_t" 3200 (fun i -> i mod 100);
  fill "probe_t" n_probe (fun i ->
      if i mod 10 = 9 then 1_000_000 + i else i mod 100);
  let c =
    Db.compile_query ~join_method:`Hash db
      "SELECT COUNT(*) FROM build_t b, probe_t p WHERE b.k = p.k"
  in
  let hits = n_probe - (n_probe / 10) in
  let expected = [ row [ vi (hits * (3200 / 100)) ] ] in
  with_joinfilter false (fun () ->
      check_rows "unfiltered oracle" expected (Exec.run c));
  let ctx = Exec.make_ctx () in
  check_rows "filtered = unfiltered" expected (Exec.run ~ctx c);
  Alcotest.(check int) "filter was built" 1 ctx.Exec.jf_built;
  Alcotest.(check int) "useless filter dropped" 1 ctx.Exec.jf_dropped;
  (* strays seen before the verdict were still (correctly) skipped *)
  Alcotest.(check bool) "some strays skipped pre-verdict" true
    (ctx.Exec.jf_rows_skipped > 0)

(* ----------------------- knob equivalence: on = off, everywhere ----- *)

let hetstream_testable : Xnf.Hetstream.t Alcotest.testable =
  Alcotest.testable
    (fun fmt s ->
      Format.fprintf fmt "stream of %d items" (Xnf.Hetstream.total_items s))
    Xnf.Hetstream.equal

let par_run ~domains c = Exec_par.run ~domains ~threshold:1 ~morsel_rows:17 c

(* unfiltered baseline, then the filtered path serial and parallel,
   with the columnar probe path both off and on *)
let check_sql_equiv ?join_method name db sql =
  let c = Db.compile_query ?join_method db sql in
  let expected = with_joinfilter false (fun () -> Exec.run c) in
  List.iter
    (fun colstore ->
      with_colstore colstore @@ fun () ->
      with_joinfilter true @@ fun () ->
      let tag = Printf.sprintf "%s (colstore %b)" name colstore in
      check_rows (tag ^ " serial") expected (Exec.run c);
      List.iter
        (fun domains ->
          check_rows
            (Printf.sprintf "%s @ %d domains" tag domains)
            expected (par_run ~domains c))
        [ 1; 4 ])
    [ false; true ]

let test_sql_equiv_workloads () =
  let oo1 = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 400 } in
  check_sql_equiv ~join_method:`Hash "oo1 hash join" oo1
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_sql_equiv ~join_method:`Hash "oo1 selective build" oo1
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.pid < 40";
  let bom = Workloads.Bom.generate Workloads.Bom.default in
  check_sql_equiv ~join_method:`Hash "bom two-column hash key" bom
    "SELECT a.pid, b.pid FROM part a, part b WHERE a.level = b.level AND \
     a.pname = b.pname";
  check_sql_equiv ~join_method:`Hash "bom filter+join" bom
    "SELECT p.pid, c.child FROM part p, contains c WHERE p.pid = c.parent \
     AND p.level < 2";
  let org = Workloads.Org.generate Workloads.Org.default in
  check_sql_equiv ~join_method:`Merge "org merge join" org
    "SELECT d.dno, e.eno FROM dept d, emp e WHERE d.dno = e.edno";
  check_sql_equiv "org subquery" org
    "SELECT eno FROM emp WHERE edno IN (SELECT dno FROM dept WHERE loc = \
     'ARC')";
  let shop = Workloads.Shop.generate Workloads.Shop.default in
  check_sql_equiv ~join_method:`Hash "shop string filter join" shop
    "SELECT c.cid, o.oid FROM customer c, orders o WHERE c.cid = o.ocid AND \
     c.region = 'EMEA'"

let check_extraction_equiv name db query =
  let c = Xnf.Xnf_compile.compile db query in
  let baseline =
    with_joinfilter false (fun () -> Xnf.Xnf_compile.extract ~cache:false c)
  in
  with_joinfilter true (fun () ->
      Alcotest.check hetstream_testable (name ^ " (serial)") baseline
        (Xnf.Xnf_compile.extract ~cache:false c);
      List.iter
        (fun domains ->
          Alcotest.check hetstream_testable
            (Printf.sprintf "%s (@ %d domains)" name domains)
            baseline
            (Xnf.Xnf_compile.extract_parallel ~domains ~threshold:1
               ~morsel_rows:17 ~cache:false c))
        [ 1; 4 ];
      Alcotest.check hetstream_testable (name ^ " (cache fill)") baseline
        (Xnf.Xnf_compile.extract ~cache:true c);
      Alcotest.check hetstream_testable (name ^ " (cache hit)") baseline
        (Xnf.Xnf_compile.extract ~cache:true c))

let test_extraction_equiv_workloads () =
  check_extraction_equiv "org deps"
    (Workloads.Org.generate Workloads.Org.default)
    Workloads.Org.deps_arc_query;
  check_extraction_equiv "oo1 parts graph"
    (Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 })
    Workloads.Oo1.parts_graph_query;
  check_extraction_equiv "bom assembly"
    (Workloads.Bom.generate Workloads.Bom.default)
    Workloads.Bom.assembly_query;
  check_extraction_equiv "shop region"
    (Workloads.Shop.generate Workloads.Shop.default)
    (Workloads.Shop.region_query "EMEA")

let suite =
  [
    test_never_false_negative;
    test_union_never_false_negative;
    Alcotest.test_case "filter unit behaviour" `Quick test_filter_unit;
    Alcotest.test_case "selectivity conjunct grouping" `Quick
      test_selectivity_grouping;
    Alcotest.test_case "counters + explain" `Quick test_counters_and_explain;
    Alcotest.test_case "multi-key tuple filter" `Quick test_multi_key_filter;
    Alcotest.test_case "string keys via dictionary codes" `Quick
      test_string_key_filter;
    Alcotest.test_case "adaptive drop of useless filters" `Quick
      test_adaptive_drop;
    Alcotest.test_case "knob equivalence: sql workloads" `Quick
      test_sql_equiv_workloads;
    Alcotest.test_case "knob equivalence: CO extraction" `Quick
      test_extraction_equiv_workloads;
  ]
