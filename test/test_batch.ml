(** Batch-layer tests: selection vectors, capacity boundaries, and the
    ordered-equivalence property between the batched executor and the
    tuple-at-a-time reference ([Exec_scalar]) across the workloads. *)

open Helpers
open Relcore
module Db = Engine.Database
module Exec = Executor.Exec
module Exec_scalar = Executor.Exec_scalar

(* ------------------------------------------------------ Batch unit -- *)

let test_selection_vectors () =
  let rows = List.init 10 (fun i -> row [ vi i ]) in
  let b =
    match Batch.of_list rows with [ b ] -> b | _ -> Alcotest.fail "one batch"
  in
  Alcotest.(check int) "dense length" 10 (Batch.length b);
  (* first refinement allocates the selection vector *)
  Batch.refine b (fun r -> match r.(0) with Value.Int i -> i mod 2 = 0 | _ -> false);
  Alcotest.(check int) "evens kept" 5 (Batch.length b);
  check_rows "selection order preserved"
    (rows_of_ints [ [ 0 ]; [ 2 ]; [ 4 ]; [ 6 ]; [ 8 ] ])
    (Batch.to_list b);
  (* second refinement narrows in place *)
  Batch.refine b (fun r -> match r.(0) with Value.Int i -> i > 2 | _ -> false);
  check_rows "narrowed" (rows_of_ints [ [ 4 ]; [ 6 ]; [ 8 ] ]) (Batch.to_list b);
  (* get respects the selection *)
  Alcotest.(check tuple_testable) "get via selection" (row [ vi 6 ]) (Batch.get b 1);
  (* map produces a dense batch (no selection vector) *)
  let doubled =
    Batch.map b (fun r ->
        match r.(0) with Value.Int i -> row [ vi (2 * i) ] | _ -> r)
  in
  check_rows "map over selection" (rows_of_ints [ [ 8 ]; [ 12 ]; [ 16 ] ])
    (Batch.to_list doubled);
  (* truncate applies to the selected view *)
  Batch.truncate b 1;
  check_rows "truncate selected" (rows_of_ints [ [ 4 ] ]) (Batch.to_list b)

let test_capacity_boundary () =
  let cap = Batch.default_capacity () in
  let mk n = List.init n (fun i -> row [ vi i ]) in
  (* exactly one full batch *)
  (match Batch.of_list (mk cap) with
  | [ b ] ->
    Alcotest.(check int) "full batch" cap (Batch.length b);
    Alcotest.(check bool) "is_full" true (Batch.is_full b)
  | bs -> Alcotest.failf "expected 1 batch, got %d" (List.length bs));
  (* one row over the boundary spills into a second batch *)
  (match Batch.of_list (mk (cap + 1)) with
  | [ b1; b2 ] ->
    Alcotest.(check int) "first full" cap (Batch.length b1);
    Alcotest.(check int) "second holds the spill" 1 (Batch.length b2)
  | bs -> Alcotest.failf "expected 2 batches, got %d" (List.length bs));
  (* rows survive the chunking in order *)
  let rows = mk (cap + 3) in
  check_rows "list_to_rows round-trip" rows (Batch.list_to_rows (Batch.of_list rows));
  (* explicit small capacity *)
  let bs = Batch.of_list ~capacity:4 (mk 9) in
  Alcotest.(check (list int)) "4+4+1 chunks" [ 4; 4; 1 ]
    (List.map Batch.length bs)

let test_push_guard () =
  (* push after a selection vector exists must fail loudly even in
     release builds (invalid_arg, not a vanishing assert) *)
  let b = match Batch.of_list ~capacity:8 (rows_of_ints [ [ 1 ]; [ 2 ] ]) with
    | [ b ] -> b | _ -> Alcotest.fail "one batch"
  in
  Batch.refine b (fun _ -> true);
  (match Batch.push b (row [ vi 3 ]) with
  | () -> Alcotest.fail "push past a selection vector must raise"
  | exception Invalid_argument _ -> ());
  (* and so must pushing past capacity *)
  let b = Batch.create ~capacity:1 () in
  Batch.push b (row [ vi 1 ]);
  (match Batch.push b (row [ vi 2 ]) with
  | () -> Alcotest.fail "push past capacity must raise"
  | exception Invalid_argument _ -> ())

let test_ctx_capacity () =
  (* the per-query batch size is a ctx knob, no longer frozen at module
     load: a small-capacity ctx emits proportionally more batches *)
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 } in
  let c = Db.compile_query db "SELECT pid FROM parts WHERE build >= 0" in
  let run cap =
    let ctx = Exec.make_ctx ~batch_capacity:cap () in
    let bs = Exec.run_batches ~ctx c in
    (Batch.list_to_rows bs, List.length bs)
  in
  let rows_small, n_small = run 16 in
  let rows_big, n_big = run 4096 in
  check_rows "capacity does not change results" rows_big rows_small;
  Alcotest.(check bool) "smaller capacity, more batches" true
    (n_small > n_big);
  Alcotest.(check bool) "16-row batches" true (n_small >= 300 / 16)

let test_empty_batch () =
  let b = Batch.create () in
  Alcotest.(check bool) "fresh is empty" true (Batch.is_empty b);
  Alcotest.(check int) "fresh length" 0 (Batch.length b);
  check_rows "fresh to_list" [] (Batch.to_list b);
  Alcotest.(check int) "of_list [] is no batches" 0
    (List.length (Batch.of_list []));
  (* refining to nothing leaves an empty (but allocated) batch *)
  let b = match Batch.of_list (rows_of_ints [ [ 1 ]; [ 2 ] ]) with
    | [ b ] -> b | _ -> Alcotest.fail "one batch"
  in
  Batch.refine b (fun _ -> false);
  Alcotest.(check bool) "refined away" true (Batch.is_empty b);
  check_rows "empty result set" []
    (Batch.list_to_rows (Batch.of_list []))

(* --------------------------------- batched ≡ scalar (ordered) property -- *)

let check_equiv ?(join_method = `Auto) name db sql =
  let c = Db.compile_query ~join_method db sql in
  check_rows name (Exec_scalar.run c) (Exec.run c)

let test_equiv_oo1 () =
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 500 } in
  check_equiv "index-join traversal" db
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_equiv ~join_method:`Hash "hash-join traversal" db
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_equiv "scan + filter" db
    "SELECT cto, clength FROM conns WHERE clength < 500";
  check_equiv "fanout aggregate" db
    "SELECT cfrom, COUNT(*), MIN(clength) FROM conns GROUP BY cfrom";
  check_equiv "string-keyed group" db
    "SELECT ptype, COUNT(*) FROM parts GROUP BY ptype";
  check_equiv "distinct" db "SELECT DISTINCT ptype FROM parts";
  check_equiv "sort + limit" db
    "SELECT pid, build FROM parts ORDER BY build DESC, pid LIMIT 10"

let test_equiv_bom () =
  let db = Workloads.Bom.generate Workloads.Bom.default in
  check_equiv "parent/child join" db
    "SELECT p.pid, c.child FROM part p, contains c WHERE p.pid = c.parent \
     AND p.level < 2";
  check_equiv "qty rollup" db
    "SELECT parent, COUNT(*), SUM(qty) FROM contains GROUP BY parent";
  check_equiv ~join_method:`Hash "two-column hash key" db
    "SELECT a.pid, b.pid FROM part a, part b WHERE a.level = b.level AND \
     a.pname = b.pname";
  check_equiv "projection arithmetic" db
    "SELECT child, qty * 2 + 1 FROM contains WHERE qty > 1"

let test_equiv_org () =
  let db = Workloads.Org.generate Workloads.Org.default in
  check_equiv "equi-join ordered" db
    "SELECT d.dno, e.eno FROM dept d, emp e WHERE d.dno = e.edno ORDER BY \
     d.dno, e.eno";
  check_equiv ~join_method:`Merge "merge join" db
    "SELECT d.dno, e.eno FROM dept d, emp e WHERE d.dno = e.edno";
  check_equiv "correlated exists" db
    "SELECT d.dno FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE \
     e.edno = d.dno AND e.sal > 3000)";
  check_equiv "in subquery" db
    "SELECT eno FROM emp WHERE edno IN (SELECT dno FROM dept WHERE loc = \
     'ARC')";
  check_equiv "non-equi nested loop" db
    "SELECT e.eno, d.dno FROM emp e, dept d WHERE e.sal > d.dno * 2000"

let test_equiv_shop () =
  let db = Workloads.Shop.generate Workloads.Shop.default in
  check_equiv "region join" db
    "SELECT c.cid, o.oid FROM customer c, orders o WHERE c.cid = o.ocid AND \
     c.region = 'EMEA'";
  check_equiv "float projection join" db
    "SELECT l.lioid, p.pname, l.qty * l.price FROM lineitem l, product p \
     WHERE l.lipid = p.pid AND l.qty > 2";
  check_equiv "status rollup" db
    "SELECT status, COUNT(*), SUM(total) FROM orders GROUP BY status";
  check_equiv "empty result" db "SELECT cid FROM customer WHERE cid < 0"

(* ------------------------------------------- runtime sharing & counters -- *)

let test_shared_box_drains_once () =
  let db = org_db () in
  (* the subject is the per-context CSE cache, so keep the global
     result cache out of the loop *)
  let ctx = Exec.make_ctx ~result_cache:false () in
  let compiled = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  ignore (Xnf.Xnf_compile.extract ~ctx ~cache:false compiled);
  Alcotest.(check bool) "sharing exercised" true
    (Hashtbl.length ctx.Exec.shared > 0);
  let m1 = ctx.Exec.materializations in
  Alcotest.(check bool) "boxes drained" true (m1 > 0);
  (* a second extraction over the same context re-reads every cached
     box: no new materialization runs *)
  ignore (Xnf.Xnf_compile.extract ~ctx ~cache:false compiled);
  Alcotest.(check int) "second extract reads the cache" m1
    ctx.Exec.materializations

let test_nl_join_rerun_uses_cache () =
  let db = org_db () in
  let ctx = Exec.make_ctx () in
  (* non-equi condition forces a nested-loop join with a materialized
     inner *)
  let c =
    Db.compile_query db
      "SELECT e.eno, d.dno FROM emp e, dept d WHERE e.sal > d.dno * 2000"
  in
  let r1 = Exec.run ~ctx c in
  let m1 = ctx.Exec.materializations in
  Alcotest.(check bool) "inner materialized" true (m1 > 0);
  (* re-running the same compiled plan in the same context must re-read
     the materialized inner, not re-drain it *)
  let r2 = Exec.run ~ctx c in
  check_rows "re-run identical" r1 r2;
  Alcotest.(check int) "inner not re-drained" m1 ctx.Exec.materializations;
  check_rows "agrees with scalar" (Exec_scalar.run c) r1

let test_ctx_counters () =
  let db = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 } in
  let ctx = Exec.make_ctx () in
  let c = Db.compile_query db "SELECT pid FROM parts WHERE build >= 0" in
  let bs = Exec.drain_batches (Exec.open_batches ~ctx c) in
  Alcotest.(check int) "all parts scanned" 300 ctx.Exec.rows_scanned;
  Alcotest.(check int) "batches counted at the root" (List.length bs)
    ctx.Exec.batches_emitted;
  Alcotest.(check int) "rows survive batching" 300 (Batch.list_length bs);
  let ctx2 = Exec.make_ctx () in
  let c2 =
    (* rewrite off: keep the EXISTS correlated instead of decorrelating *)
    Db.compile_query ~rewrite:false db
      "SELECT p.pid FROM parts p WHERE EXISTS (SELECT 1 FROM conns c WHERE \
       c.cfrom = p.pid AND c.clength < 100)"
  in
  ignore (Exec.run ~ctx:ctx2 c2);
  Alcotest.(check bool) "correlated subqueries counted" true
    (ctx2.Exec.subqueries_run > 0)

let suite =
  [
    Alcotest.test_case "selection vectors" `Quick test_selection_vectors;
    Alcotest.test_case "capacity boundary" `Quick test_capacity_boundary;
    Alcotest.test_case "push guard" `Quick test_push_guard;
    Alcotest.test_case "ctx batch capacity" `Quick test_ctx_capacity;
    Alcotest.test_case "empty batch" `Quick test_empty_batch;
    Alcotest.test_case "batched = scalar (oo1)" `Quick test_equiv_oo1;
    Alcotest.test_case "batched = scalar (bom)" `Quick test_equiv_bom;
    Alcotest.test_case "batched = scalar (org)" `Quick test_equiv_org;
    Alcotest.test_case "batched = scalar (shop)" `Quick test_equiv_shop;
    Alcotest.test_case "shared box drains once" `Quick
      test_shared_box_drains_once;
    Alcotest.test_case "nl-join re-run uses cache" `Quick
      test_nl_join_rerun_uses_cache;
    Alcotest.test_case "ctx counters" `Quick test_ctx_counters;
  ]
