(** Caching and invalidation: per-table version counters, the
    prepared-plan cache, the cross-query result cache, Stats rekeying,
    and index-probe semantics.  Correctness bar throughout: a cached
    extraction must be byte-identical ([Hetstream.equal]) to a fresh
    one, in every DML and rollback scenario. *)

open Helpers
module Db = Engine.Database
module RC = Executor.Result_cache
module H = Xnf.Hetstream
module BT = Relcore.Base_table

(* Run [f] with the result cache forced on at a known budget so these
   tests exercise the cache even in the env-disabled CI leg, and with a
   clean slate either side. *)
let with_cache f =
  RC.set_budget_mb (Some 64);
  RC.clear ();
  Fun.protect
    ~finally:(fun () ->
      RC.clear ();
      RC.set_budget_mb None)
    f

let table db name = Relcore.Catalog.find_table (Db.catalog db) name

(* ---- version counters ------------------------------------------------- *)

let test_version_counters () =
  let db = org_db () in
  let emp = table db "emp" in
  let dept_v = BT.version (table db "dept") in
  let v0 = BT.version emp in
  ignore (Db.exec db "INSERT INTO emp VALUES (99, 'zed', 50, 1)");
  let v1 = BT.version emp in
  Alcotest.(check bool) "insert bumps" true (v1 > v0);
  ignore (Db.exec db "UPDATE emp SET sal = 51 WHERE eno = 99");
  let v2 = BT.version emp in
  Alcotest.(check bool) "update bumps" true (v2 > v1);
  ignore (Db.exec db "DELETE FROM emp WHERE eno = 99");
  let v3 = BT.version emp in
  Alcotest.(check bool) "delete bumps" true (v3 > v2);
  (* DML on emp must not invalidate results that only read dept *)
  Alcotest.(check int) "untouched table keeps its version" dept_v
    (BT.version (table db "dept"))

let test_txn_boundaries_bump () =
  let db = org_db () in
  let emp = table db "emp" in
  ignore (Db.exec db "BEGIN");
  let v0 = BT.version emp in
  ignore (Db.exec db "UPDATE emp SET sal = sal + 1 WHERE eno = 10");
  let v_in = BT.version emp in
  Alcotest.(check bool) "in-txn DML bumps" true (v_in > v0);
  ignore (Db.exec db "ROLLBACK");
  let v_rb = BT.version emp in
  (* monotonic: the rolled-back state must never re-expose the in-txn
     version, so a result cached mid-txn can never be served again *)
  Alcotest.(check bool) "rollback moves past in-txn version" true
    (v_rb > v_in);
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE emp SET sal = sal + 1 WHERE eno = 10");
  let v_in2 = BT.version emp in
  ignore (Db.exec db "COMMIT");
  Alcotest.(check bool) "commit bumps at the boundary" true
    (BT.version emp > v_in2)

(* ---- prepared-plan cache ---------------------------------------------- *)

let test_plan_cache_hits_and_normalization () =
  let db = org_db () in
  let sql = "SELECT eno FROM emp WHERE sal > 85 ORDER BY eno" in
  let c1 = Db.compile_query ~cache:true db sql in
  let before = (Db.cache_stats db).Db.plan_hits in
  let c2 = Db.compile_query ~cache:true db sql in
  Alcotest.(check bool) "repeat compile is the same plan" true (c1 == c2);
  (* whitespace-normalized text shares the entry *)
  let c3 =
    Db.compile_query ~cache:true db
      "SELECT   eno\nFROM emp\n  WHERE sal > 85 ORDER BY eno"
  in
  Alcotest.(check bool) "normalized text hits" true (c1 == c3);
  Alcotest.(check bool) "hits counted" true
    ((Db.cache_stats db).Db.plan_hits >= before + 2);
  (* ablation flags split entries *)
  let c4 = Db.compile_query ~cache:true ~rewrite:false db sql in
  Alcotest.(check bool) "flags key apart" true (not (c1 == c4))

let test_plan_cache_ddl_invalidation () =
  let db = org_db () in
  let q = Workloads.Org.deps_arc_query in
  let c1 = Xnf.Xnf_compile.compile ~cache:true db q in
  let c2 = Xnf.Xnf_compile.compile ~cache:true db q in
  Alcotest.(check bool) "xnf compile cached" true (c1 == c2);
  ignore (Db.exec db "CREATE TABLE scratch (a INT)");
  Alcotest.(check int) "DDL empties the plan caches" 0
    (Db.cache_stats db).Db.plan_entries;
  let c3 = Xnf.Xnf_compile.compile ~cache:true db q in
  Alcotest.(check bool) "post-DDL compile is fresh" true (not (c1 == c3));
  ignore (Xnf.Xnf_compile.extract ~cache:false c3)

(* ---- optimizer statistics rekeying ------------------------------------ *)

let test_stats_rekey_on_version () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE t (k INT, a INT); INSERT INTO t VALUES (1, 1), (2, 1), \
        (3, 2)");
  let t = table db "t" in
  Alcotest.(check int) "initial ndv" 2 (Optimizer.Stats.column_ndv t 1);
  (* same cardinality, different contents: the old cardinality-keyed
     cache returned the stale 2 here *)
  ignore (Db.exec db "UPDATE t SET a = 7 WHERE k = 1");
  Alcotest.(check int) "cardinality unchanged" 3 (BT.cardinality t);
  Alcotest.(check int) "ndv recomputed after update" 3
    (Optimizer.Stats.column_ndv t 1)

(* ---- index postings --------------------------------------------------- *)

let test_index_probe_semantics () =
  let module I = Relcore.Index in
  let idx = I.create ~name:"i" ~key_columns:[| 0 |] ~unique:false in
  let key n = row [ vi n ] in
  (* growth past the initial posting capacity *)
  for rid = 1 to 10 do
    I.insert idx rid (key 7)
  done;
  I.insert idx 11 (key 8);
  Alcotest.(check (list int)) "lookup newest-first"
    [ 10; 9; 8; 7; 6; 5; 4; 3; 2; 1 ]
    (I.lookup idx (key 7));
  let seen = ref [] in
  I.iter idx (key 7) (fun rid -> seen := rid :: !seen);
  Alcotest.(check (list int)) "iter matches lookup order"
    (I.lookup idx (key 7))
    (List.rev !seen);
  I.remove idx 5 (key 7);
  Alcotest.(check (list int)) "remove keeps order"
    [ 10; 9; 8; 7; 6; 4; 3; 2; 1 ]
    (I.lookup idx (key 7));
  Alcotest.(check bool) "mem hit" true (I.mem idx (key 8));
  Alcotest.(check bool) "mem miss" false (I.mem idx (key 9));
  Alcotest.(check int) "distinct keys" 2 (I.cardinality idx);
  I.remove idx 11 (key 8);
  Alcotest.(check bool) "empty posting removed" false (I.mem idx (key 8));
  Alcotest.(check int) "cardinality after drain" 1 (I.cardinality idx);
  (* unique variant still rejects duplicates *)
  let u = I.create ~name:"u" ~key_columns:[| 0 |] ~unique:true in
  I.insert u 1 (key 1);
  Alcotest.(check bool) "unique violation" true
    (try
       I.insert u 2 (key 1);
       false
     with
     | Relcore.Errors.Db_error (Relcore.Errors.Constraint_error, _) -> true)

(* ---- result cache unit behaviour -------------------------------------- *)

exception Probe of int

let test_result_cache_lru () =
  RC.set_budget_mb (Some 1);
  RC.clear ();
  RC.reset_stats ();
  Fun.protect ~finally:(fun () ->
      RC.clear ();
      RC.set_budget_mb None)
  @@ fun () ->
  RC.store "a" ~bytes:400_000 (Probe 1);
  RC.store "b" ~bytes:400_000 (Probe 2);
  Alcotest.(check bool) "a resident" true (RC.find "a" = Some (Probe 1));
  (* a is now most-recently used; storing c overflows the 1 MB budget
     and must evict the stale b *)
  RC.store "c" ~bytes:400_000 (Probe 3);
  Alcotest.(check bool) "lru b evicted" true (RC.find "b" = None);
  Alcotest.(check bool) "a survives" true (RC.find "a" = Some (Probe 1));
  Alcotest.(check bool) "c resident" true (RC.find "c" = Some (Probe 3));
  (* entries over the whole budget are declined *)
  RC.store "huge" ~bytes:5_000_000 (Probe 4);
  Alcotest.(check bool) "oversized declined" true (RC.find "huge" = None);
  let s = RC.stats () in
  Alcotest.(check bool) "evictions counted" true (s.RC.evictions >= 1);
  Alcotest.(check int) "entries" 2 s.RC.entries;
  Alcotest.(check bool) "bytes within budget" true (s.RC.bytes <= 1_048_576)

(* ---- cached extraction == fresh extraction ---------------------------- *)

let check_cached_matches_fresh c msg =
  let fresh = Xnf.Xnf_compile.extract ~cache:false c in
  let cached = Xnf.Xnf_compile.extract ~cache:true c in
  Alcotest.(check bool) (msg ^ ": cached = fresh") true (H.equal fresh cached);
  fresh

let test_extraction_invalidation () =
  with_cache @@ fun () ->
  let db = org_db () in
  let c = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let reference = Xnf.Xnf_compile.extract ~cache:true c in
  let hits0 = (RC.stats ()).RC.hits in
  let warm = Xnf.Xnf_compile.extract ~cache:true c in
  Alcotest.(check bool) "warm repeat identical" true (H.equal reference warm);
  Alcotest.(check bool) "warm repeat was a hit" true
    ((RC.stats ()).RC.hits > hits0);
  (* each DML must drift the key: the cached pre-DML stream is stale *)
  ignore (Db.exec db "INSERT INTO emp VALUES (50, 'eve', 70, 1)");
  let after_insert = check_cached_matches_fresh c "after insert" in
  Alcotest.(check bool) "insert visible in the CO view" true
    (not (H.equal reference after_insert));
  ignore (Db.exec db "UPDATE emp SET sal = 200 WHERE eno = 10");
  ignore (check_cached_matches_fresh c "after update" : H.t);
  ignore (Db.exec db "DELETE FROM emp WHERE eno = 50");
  ignore (check_cached_matches_fresh c "after delete" : H.t)

let test_rollback_never_serves_aborted_state () =
  with_cache @@ fun () ->
  let db = org_db () in
  let c = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let before = Xnf.Xnf_compile.extract ~cache:false c in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE emp SET ename = 'ghost' WHERE eno = 10");
  (* cache the uncommitted state mid-transaction *)
  let in_txn = Xnf.Xnf_compile.extract ~cache:true c in
  Alcotest.(check bool) "in-txn stream differs" true
    (not (H.equal before in_txn));
  ignore (Db.exec db "ROLLBACK");
  (* byte-identity is against a FRESH post-rollback extraction: undoing
     an update reinserts index postings, so row order may legitimately
     differ from the pre-txn stream even though the data is restored *)
  let fresh_after = Xnf.Xnf_compile.extract ~cache:false c in
  let after = Xnf.Xnf_compile.extract ~cache:true c in
  Alcotest.(check bool) "post-rollback cached = fresh" true
    (H.equal fresh_after after);
  Alcotest.(check bool) "aborted state not served" true
    (not (H.equal in_txn after));
  let has_ghost s =
    let hay = H.serialize s and needle = "ghost" in
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ghost row was in the aborted stream" true
    (has_ghost in_txn);
  Alcotest.(check bool) "ghost row gone after rollback" false (has_ghost after)

let test_recursive_not_cached () =
  with_cache @@ fun () ->
  let db = Workloads.Bom.generate Workloads.Bom.default in
  let c = Xnf.Xnf_compile.compile db Workloads.Bom.assembly_query in
  Alcotest.(check bool) "recursive CO has no cache key" true
    (Xnf.Xnf_compile.stream_cache_key c = None);
  let a = Xnf.Xnf_compile.extract ~cache:true c in
  let b = Xnf.Xnf_compile.extract ~cache:false c in
  Alcotest.(check bool) "recursive results agree" true (H.equal a b)

(* ---- domain safety ---------------------------------------------------- *)

let test_concurrent_cached_extraction () =
  with_cache @@ fun () ->
  let db = org_db () in
  let c = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  let reference = Xnf.Xnf_compile.extract ~cache:false c in
  (* several client domains hammer the shared cache (hits, misses and
     stores race through the mutex) while the main domain drives the
     parallel extractor over the same compiled query *)
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for _ = 1 to 5 do
              ok :=
                !ok && H.equal reference (Xnf.Xnf_compile.extract ~cache:true c)
            done;
            !ok))
  in
  let par_ok = ref true in
  for _ = 1 to 3 do
    par_ok :=
      !par_ok
      && H.equal reference
           (Xnf.Xnf_compile.extract_parallel ~domains:4 ~cache:true c)
  done;
  List.iter
    (fun d ->
      Alcotest.(check bool) "worker saw identical streams" true (Domain.join d))
    workers;
  Alcotest.(check bool) "parallel extraction identical" true !par_ok

let suite =
  [
    Alcotest.test_case "version counters" `Quick test_version_counters;
    Alcotest.test_case "txn boundary bumps" `Quick test_txn_boundaries_bump;
    Alcotest.test_case "plan cache hits + normalization" `Quick
      test_plan_cache_hits_and_normalization;
    Alcotest.test_case "plan cache DDL invalidation" `Quick
      test_plan_cache_ddl_invalidation;
    Alcotest.test_case "stats rekey on version" `Quick
      test_stats_rekey_on_version;
    Alcotest.test_case "index probe semantics" `Quick
      test_index_probe_semantics;
    Alcotest.test_case "result cache lru" `Quick test_result_cache_lru;
    Alcotest.test_case "extraction invalidation" `Quick
      test_extraction_invalidation;
    Alcotest.test_case "rollback never serves aborted state" `Quick
      test_rollback_never_serves_aborted_state;
    Alcotest.test_case "recursive CO not cached" `Quick
      test_recursive_not_cached;
    Alcotest.test_case "concurrent cached extraction" `Quick
      test_concurrent_cached_extraction;
  ]
