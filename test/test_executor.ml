(** Executor tests: operator semantics, three-valued logic, aggregation
    corner cases, pipelining, sharing at runtime. *)

open Helpers
module Db = Engine.Database

let q db sql = Db.query_rows db sql

let test_null_semantics () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 10), (2, \
        NULL), (NULL, 30)");
  (* null never equals anything *)
  check_rows "eq null" (rows_of_ints [ [ 1 ] ]) (q db "SELECT a FROM t WHERE b = 10");
  check_rows "is null" [ row [ vnull; vi 30 ] ] (q db "SELECT a, b FROM t WHERE a IS NULL");
  check_rows "is not null filters" (rows_of_ints [ [ 1 ]; [ 2 ] ])
    (q db "SELECT a FROM t WHERE a IS NOT NULL ORDER BY a");
  (* null arithmetic propagates *)
  check_rows "null arith" [ row [ vnull ] ] (q db "SELECT b + 1 FROM t WHERE a = 2");
  (* 3VL: NOT unknown is unknown -> row dropped *)
  check_rows "not unknown" (rows_of_ints [ [ 1 ] ])
    (q db "SELECT a FROM t WHERE NOT b = 99 AND a = 1")

let test_in_subquery_null_semantics () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE s (x INT); CREATE TABLE r (y INT); INSERT INTO s VALUES \
        (1), (NULL); INSERT INTO r VALUES (1), (2)");
  (* 1 IN {1, NULL} -> true; 2 IN {1, NULL} -> unknown -> dropped *)
  check_rows "in with null" (rows_of_ints [ [ 1 ] ])
    (q db "SELECT y FROM r WHERE y IN (SELECT x FROM s) OR y = 0")

let test_like () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE t (s STRING); INSERT INTO t VALUES ('hello'), ('help'), \
        ('world'), ('hel')");
  check_rows "percent" [ row [ vs "hel" ]; row [ vs "hello" ]; row [ vs "help" ] ]
    (q db "SELECT s FROM t WHERE s LIKE 'hel%' ORDER BY s");
  check_rows "underscore" [ row [ vs "help" ] ]
    (q db "SELECT s FROM t WHERE s LIKE 'hel_' AND s <> 'hell'");
  check_rows "inner percent" [ row [ vs "world" ] ]
    (q db "SELECT s FROM t WHERE s LIKE 'w%d'")

let test_aggregates_full () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE t (g INT, v INT); INSERT INTO t VALUES (1, 10), (1, \
        NULL), (1, 30), (2, 5)");
  check_rows "count star vs count col"
    (rows_of_ints [ [ 1; 3; 2 ]; [ 2; 1; 1 ] ])
    (q db "SELECT g, COUNT(*), COUNT(v) FROM t GROUP BY g ORDER BY g");
  check_rows "sum min max"
    (rows_of_ints [ [ 40; 10; 30 ] ])
    (q db "SELECT SUM(v), MIN(v), MAX(v) FROM t WHERE g = 1");
  (match q db "SELECT AVG(v) FROM t WHERE g = 1" with
  | [ [| Relcore.Value.Float avg |] ] ->
    Alcotest.(check (float 0.001)) "avg ignores nulls" 20.0 avg
  | _ -> Alcotest.fail "avg");
  check_rows "empty group aggregate identities"
    [ row [ vi 0; vnull ] ]
    (q db "SELECT COUNT(*), SUM(v) FROM t WHERE g = 99")

let test_group_by_expression_projection () =
  let db = org_db () in
  check_rows "arith over aggregate"
    (rows_of_ints [ [ 1; 380 ]; [ 2; 240 ]; [ 3; 160 ] ])
    (q db "SELECT edno, SUM(sal) * 2 FROM emp GROUP BY edno ORDER BY edno")

let test_distinct_on_expressions () =
  let db = org_db () in
  check_rows "distinct dept of emps" (rows_of_ints [ [ 1 ]; [ 2 ]; [ 3 ] ])
    (q db "SELECT DISTINCT edno FROM emp ORDER BY edno")

let test_union_all_plan_node () =
  (* exercised through an XNF union derivation at the executor level *)
  let db = org_db () in
  let stream =
    Xnf.Xnf_compile.run db
      "OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),\n\
       xemp AS EMP, xproj AS PROJ, xskills AS SKILLS,\n\
       employment AS (RELATE xdept VIA EMPLOYS, xemp WHERE xdept.dno = \
       xemp.edno),\n\
       ownership AS (RELATE xdept VIA HAS, xproj WHERE xdept.dno = \
       xproj.pdno),\n\
       empproperty AS (RELATE xemp VIA POSSESSES, xskills USING EMPSKILLS es \
       WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),\n\
       projproperty AS (RELATE xproj VIA NEEDS, xskills USING PROJSKILLS ps \
       WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)\n\
       TAKE xskills"
  in
  Alcotest.(check int) "union-derived skills" 4
    (List.assoc "xskills" (Xnf.Hetstream.counts stream))

let test_pipelining_is_lazy () =
  (* LIMIT must not force the full scan: use the ctx row counter *)
  let db = Workloads.Org.generate { Workloads.Org.default with n_depts = 100 } in
  let ctx = Executor.Exec.make_ctx () in
  let c = Db.compile_query db "SELECT eno FROM emp LIMIT 5" in
  let rows = Executor.Exec.run ~ctx c in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  Alcotest.(check bool) "scan stopped early" true
    (ctx.Executor.Exec.rows_scanned < 100)

let test_shared_materialized_once () =
  let db = org_db () in
  (* ~cache:false / ~result_cache:false: the row counters must reflect
     real executor work, not cross-query cache hits *)
  let ctx = Executor.Exec.make_ctx ~result_cache:false () in
  let compiled = Xnf.Xnf_compile.compile db Workloads.Org.deps_arc_query in
  ignore (Xnf.Xnf_compile.extract ~ctx ~cache:false compiled);
  let with_cse = ctx.Executor.Exec.rows_scanned in
  let ctx2 = Executor.Exec.make_ctx ~result_cache:false () in
  let compiled2 =
    Xnf.Xnf_compile.compile ~share:false db Workloads.Org.deps_arc_query
  in
  ignore (Xnf.Xnf_compile.extract ~ctx:ctx2 ~cache:false compiled2);
  let without_cse = ctx2.Executor.Exec.rows_scanned in
  Alcotest.(check bool) "sharing reads fewer base rows" true
    (with_cse < without_cse)

let test_correlated_exists_depth2 () =
  let db = org_db () in
  (* two levels of correlation: departments that employ someone who has a
     skill some project of the same department needs *)
  let rows =
    q db
      "SELECT d.dno FROM dept d WHERE EXISTS (SELECT 1 FROM emp e, empskills \
       es WHERE e.edno = d.dno AND es.eseno = e.eno AND EXISTS (SELECT 1 \
       FROM proj p, projskills ps WHERE p.pdno = d.dno AND ps.pspno = p.pno \
       AND ps.pssno = es.essno)) ORDER BY d.dno"
  in
  (* every department qualifies: each has an employee whose skill some
     same-department project needs *)
  check_rows "nested correlation" (rows_of_ints [ [ 1 ]; [ 2 ]; [ 3 ] ]) rows

let test_division_by_zero_raises () =
  let db = org_db () in
  Alcotest.(check bool) "division by zero" true
    (try
       ignore (q db "SELECT sal / 0 FROM emp");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Execution_error, _) -> true)

let test_order_by_nulls_first () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (2), (NULL), (1)");
  check_rows "nulls sort first" [ row [ vnull ]; row [ vi 1 ]; row [ vi 2 ] ]
    (q db "SELECT a FROM t ORDER BY a")

let suite =
  [
    Alcotest.test_case "null 3vl" `Quick test_null_semantics;
    Alcotest.test_case "in-subquery nulls" `Quick test_in_subquery_null_semantics;
    Alcotest.test_case "like matching" `Quick test_like;
    Alcotest.test_case "aggregates" `Quick test_aggregates_full;
    Alcotest.test_case "group-by expression projection" `Quick
      test_group_by_expression_projection;
    Alcotest.test_case "distinct" `Quick test_distinct_on_expressions;
    Alcotest.test_case "union-all node" `Quick test_union_all_plan_node;
    Alcotest.test_case "pipelining laziness" `Quick test_pipelining_is_lazy;
    Alcotest.test_case "shared materialized once" `Quick
      test_shared_materialized_once;
    Alcotest.test_case "correlated exists depth 2" `Quick
      test_correlated_exists_depth2;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_raises;
    Alcotest.test_case "order by nulls" `Quick test_order_by_nulls_first;
  ]

let test_scalar_functions () =
  let db = Db.create () in
  ignore
    (Db.exec_script db
       "CREATE TABLE t (s STRING, n INT); INSERT INTO t VALUES ('Hello', \
        -5), (NULL, 3)");
  check_rows "string functions"
    [ row [ vs "HELLO"; vs "hello"; vi 5; vs "ell" ] ]
    (q db
       "SELECT UPPER(s), LOWER(s), LENGTH(s), SUBSTR(s, 2, 3) FROM t WHERE s \
        IS NOT NULL");
  check_rows "abs" (rows_of_ints [ [ 5 ] ])
    (q db "SELECT ABS(n) FROM t WHERE n < 0");
  check_rows "null propagation" [ row [ vnull ] ]
    (q db "SELECT UPPER(s) FROM t WHERE n = 3");
  check_rows "coalesce" [ row [ vs "fallback" ] ]
    (q db "SELECT COALESCE(s, 'fallback') FROM t WHERE n = 3");
  (* functions compose with predicates and aggregation *)
  check_rows "fn in where" [ row [ vs "Hello" ] ]
    (q db "SELECT s FROM t WHERE LENGTH(s) = 5");
  check_rows "fn of aggregate" (rows_of_ints [ [ 2 ] ])
    (q db "SELECT ABS(MIN(n)) + COUNT(*) - 5 FROM t");
  Alcotest.(check bool) "unknown function rejected" true
    (try
       ignore (q db "SELECT NOSUCHFN(s) FROM t");
       false
     with Relcore.Errors.Db_error (Relcore.Errors.Semantic_error, _) -> true)

let suite =
  suite
  @ [ Alcotest.test_case "scalar functions" `Quick test_scalar_functions ]
