(** EXPLAIN ANALYZE attribution and cost-model calibration.

    Covers the per-operator accumulator (rows-in/out invariants on the
    serial and the 4-domain executor), byte-identity of query results
    with analysis armed vs off across the four workload databases, the
    calibration profile's save/load round trip, and the
    [XNFDB_CALIBRATION=0] escape hatch restoring the hand-set constants
    (and hence today's plans) bit for bit. *)

open Relcore
module Db = Engine.Database
module Plan = Optimizer.Plan
module Cost = Optimizer.Cost
module Calibrate = Optimizer.Cost.Calibrate
module Opstats = Executor.Opstats

let contains (s : string) (affix : string) : bool =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* run [sql] with the per-operator accumulator armed *)
let run_analyzed ?domains db sql =
  let c = Db.compile_query db sql in
  let acc = Opstats.create1 c.Plan.plan in
  let ctx = Executor.Exec.make_ctx () in
  ctx.Executor.Exec.analyze <- Some acc;
  let bs =
    match domains with
    | Some d when d > 1 ->
      (* threshold 1 forces the fan-out even on test-sized tables *)
      Executor.Exec_par.run_batches ~ctx ~domains:d ~threshold:1 c
    | _ -> Executor.Exec.run_batches ~ctx c
  in
  (acc, Batch.list_to_rows bs)

(* The structural invariants every analyzed run must satisfy:
   - the root operator's recorded rows equal the delivered result rows;
   - a Filter/Distinct/Limit never reports more output rows than its
     (opened) input reports — child rows are the parent's input. *)
let check_invariants msg (acc : Opstats.t) (rows : Tuple.t list) =
  Alcotest.(check bool) (msg ^ ": has ops") true (Opstats.count acc > 0);
  let root = acc.Opstats.ops.(0) in
  Alcotest.(check int) (msg ^ ": root rows") (List.length rows) root.Opstats.rows;
  Array.iter
    (fun (op : Opstats.op) ->
      Alcotest.(check bool)
        (msg ^ ": wall >= 0")
        true
        (op.Opstats.wall >= 0.0);
      let narrowing input =
        let iid = Opstats.id_of acc input in
        if iid >= 0 then begin
          let inp = acc.Opstats.ops.(iid) in
          if op.Opstats.opens > 0 && inp.Opstats.opens > 0 then
            Alcotest.(check bool)
              (msg ^ ": narrowing op rows <= input rows")
              true
              (op.Opstats.rows <= inp.Opstats.rows)
        end
      in
      match op.Opstats.node with
      | Plan.Filter (input, _) | Plan.Distinct input | Plan.Limit (input, _) ->
        narrowing input
      | _ -> ())
    acc.Opstats.ops

let org_join_sql =
  "SELECT e.eno, d.dname FROM emp e, dept d WHERE e.edno = d.dno AND d.loc = \
   'ARC' ORDER BY e.eno"

let test_serial_attribution () =
  let db = Helpers.org_db () in
  let plain = Db.query_rows db org_join_sql in
  let acc, rows = run_analyzed db org_join_sql in
  Helpers.check_rows "analyzed rows unchanged" plain rows;
  check_invariants "serial" acc rows;
  let rendered = Opstats.render acc in
  Alcotest.(check bool) "render mentions est=" true (contains rendered "est=")

let test_parallel_attribution () =
  let db =
    Workloads.Org.generate
      { Workloads.Org.default with Workloads.Org.n_depts = 40; seed = 3 }
  in
  let sql =
    "SELECT e.eno, d.dno FROM emp e, dept d WHERE e.edno = d.dno AND d.loc = \
     'ARC'"
  in
  let plain = Db.query_rows db sql in
  let acc, rows = run_analyzed ~domains:4 db sql in
  Helpers.check_rows "parallel analyzed rows unchanged" plain rows;
  check_invariants "parallel" acc rows

let test_parallel_blocking_attribution () =
  (* aggregate + sort exercise the drain-level attribution (blocking
     operators record rows at the drain, not through worker partials) *)
  let db =
    Workloads.Org.generate
      { Workloads.Org.default with Workloads.Org.n_depts = 40; seed = 4 }
  in
  let sql =
    "SELECT edno, COUNT(*) FROM emp GROUP BY edno ORDER BY edno"
  in
  let plain = Db.query_rows db sql in
  let acc, rows = run_analyzed ~domains:4 db sql in
  Helpers.check_rows "parallel agg rows unchanged" plain rows;
  check_invariants "parallel blocking" acc rows

(* the four workload databases with one representative query each *)
let workload_cases () =
  [
    ( "oo1",
      Workloads.Oo1.generate
        { Workloads.Oo1.default with Workloads.Oo1.n_parts = 400 },
      "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
       500" );
    ( "bom",
      Workloads.Bom.generate Workloads.Bom.default,
      "SELECT parent, COUNT(*), SUM(qty) FROM contains GROUP BY parent" );
    ( "org",
      Helpers.org_db (),
      "SELECT ename FROM emp WHERE edno IN (SELECT dno FROM dept WHERE loc = \
       'ARC')" );
    ( "shop",
      Workloads.Shop.generate Workloads.Shop.default,
      "SELECT c.cid, o.oid FROM customer c, orders o WHERE o.ocid = c.cid AND \
       c.region = 'EMEA'" );
  ]

let test_analyze_identity () =
  List.iter
    (fun (name, db, sql) ->
      let baseline = Db.query_rows db sql in
      let _, serial_on = run_analyzed db sql in
      Helpers.check_rows (name ^ ": serial analyze identity") baseline serial_on;
      let par_off = Db.query_rows ~domains:4 db sql in
      Helpers.check_rows (name ^ ": parallel off identity") baseline par_off;
      let _, par_on = run_analyzed ~domains:4 db sql in
      Helpers.check_rows (name ^ ": parallel analyze identity") baseline par_on)
    (workload_cases ())

let test_explain_analyze_text () =
  let db = Helpers.org_db () in
  match Db.exec db ("EXPLAIN ANALYZE " ^ org_join_sql) with
  | Db.Done report ->
    let has affix = contains report affix in
    Alcotest.(check bool) "plan section" true (has "== plan (analyzed) ==");
    Alcotest.(check bool) "actual rows" true (has "act=");
    Alcotest.(check bool) "q-error" true (has "q=");
    Alcotest.(check bool) "rows returned" true (has "rows returned:");
    Alcotest.(check bool) "per-statement counters" true
      (has "== colstore (this statement) ==")
  | _ -> Alcotest.fail "EXPLAIN ANALYZE should return Done"

let test_explain_per_statement_counters () =
  (* process counters accrued by earlier queries must not leak into a
     later statement's EXPLAIN *)
  let db = Helpers.org_db () in
  ignore (Db.query_rows db "SELECT eno FROM emp WHERE sal > 0");
  match Db.exec db "EXPLAIN SELECT dno FROM dept WHERE loc = 'ARC'" with
  | Db.Done report ->
    let has affix = contains report affix in
    Alcotest.(check bool) "delta colstore section" true
      (has "== colstore (this statement) ==");
    (* EXPLAIN compiles but never executes: its own window scans nothing *)
    Alcotest.(check bool) "no scan traffic in window" true
      (has "chunks scanned: 0")
  | _ -> Alcotest.fail "EXPLAIN should return Done"

(* -- calibration --------------------------------------------------------- *)

let weird_profile =
  {
    Calibrate.batch_overhead = 7.53;
    cold_chunk_penalty = 2.25;
    parallel_overhead = 99.5;
    parallel_threshold_rows = 4096;
    jf_drop_threshold = 0.625;
    jf_adaptive_sample = 1024;
    host_cores = 7;
    tuple_ns = 3.14159265358979;
  }

(* the "== plan ==" section of an EXPLAIN report: QGM box ids are fresh
   per compile, so plan-identity comparisons must not include them *)
let plan_section (explain : string) : string =
  let tag = "== plan ==" in
  let n = String.length explain and m = String.length tag in
  let rec find i =
    if i + m > n then Alcotest.fail "no plan section"
    else if String.sub explain i m = tag then i
    else find (i + 1)
  in
  let start = find 0 in
  let stop =
    let rec find2 i =
      if i + 2 > n then n
      else if String.sub explain i 2 = "==" then i
      else find2 (i + 1)
    in
    find2 (start + m)
  in
  String.sub explain start (stop - start)

let with_env pairs f =
  let old = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (k, v) -> Unix.putenv k (Option.value v ~default:""))
        old)
    f

let test_profile_roundtrip () =
  let path = Filename.temp_file "xnfdb-profile" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Calibrate.save path weird_profile;
      match Calibrate.load path with
      | Ok p ->
        Alcotest.(check bool) "round trip exact" true (p = weird_profile)
      | Error e -> Alcotest.fail ("load failed: " ^ e));
  match Calibrate.load "/nonexistent/xnfdb-profile" with
  | Ok _ -> Alcotest.fail "loading a missing file should fail"
  | Error _ -> ()

let test_calibration_knobs () =
  (* baseline: no profile, calibration on — the hand-set constants *)
  with_env [ ("XNFDB_COST_PROFILE", ""); ("XNFDB_CALIBRATION", "1") ]
    (fun () ->
      let db = Helpers.org_db () in
      let baseline_explain = Db.explain db org_join_sql in
      Alcotest.(check (float 0.0)) "default batch_overhead" 4.0
        (Cost.batch_overhead ());
      let path = Filename.temp_file "xnfdb-profile" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Calibrate.save path weird_profile;
          with_env [ ("XNFDB_COST_PROFILE", path) ] (fun () ->
              (* profile in force *)
              Alcotest.(check (float 0.0)) "calibrated batch_overhead" 7.53
                (Cost.batch_overhead ());
              Alcotest.(check int) "calibrated threshold" 4096
                (Cost.parallel_threshold_rows ());
              Alcotest.(check (float 0.0)) "calibrated jf drop" 0.625
                (Cost.jf_drop_threshold ());
              (* the escape hatch restores the defaults bit for bit,
                 profile notwithstanding *)
              with_env [ ("XNFDB_CALIBRATION", "0") ] (fun () ->
                  Alcotest.(check (float 0.0)) "escape batch_overhead" 4.0
                    (Cost.batch_overhead ());
                  Alcotest.(check (float 0.0)) "escape jf drop"
                    Bloom.drop_threshold
                    (Cost.jf_drop_threshold ());
                  Alcotest.(check int) "escape jf sample"
                    Bloom.adaptive_sample
                    (Cost.jf_adaptive_sample ());
                  let off_explain = Db.explain db org_join_sql in
                  Alcotest.(check string) "plans unchanged with \
                                           XNFDB_CALIBRATION=0"
                    (plan_section baseline_explain)
                    (plan_section off_explain)))))

let test_measure_sanity () =
  let p = Calibrate.measure () in
  let in_range lo hi v = v >= lo && v <= hi in
  Alcotest.(check bool) "batch_overhead clamp" true
    (in_range 0.5 64.0 p.Calibrate.batch_overhead);
  Alcotest.(check bool) "cold_chunk_penalty clamp" true
    (in_range 0.1 16.0 p.Calibrate.cold_chunk_penalty);
  Alcotest.(check bool) "parallel_overhead clamp" true
    (in_range 8.0 1e7 p.Calibrate.parallel_overhead);
  Alcotest.(check bool) "parallel_threshold clamp" true
    (p.Calibrate.parallel_threshold_rows >= 512
    && p.Calibrate.parallel_threshold_rows <= 1_000_000);
  Alcotest.(check bool) "jf_drop clamp" true
    (in_range 0.5 0.95 p.Calibrate.jf_drop_threshold);
  Alcotest.(check bool) "tuple_ns positive" true (p.Calibrate.tuple_ns > 0.0);
  Alcotest.(check bool) "cores recorded" true (p.Calibrate.host_cores >= 1)

let suite =
  [
    Alcotest.test_case "serial attribution" `Quick test_serial_attribution;
    Alcotest.test_case "parallel attribution" `Quick test_parallel_attribution;
    Alcotest.test_case "parallel blocking attribution" `Quick
      test_parallel_blocking_attribution;
    Alcotest.test_case "analyze on/off identity" `Quick test_analyze_identity;
    Alcotest.test_case "explain analyze text" `Quick test_explain_analyze_text;
    Alcotest.test_case "per-statement explain counters" `Quick
      test_explain_per_statement_counters;
    Alcotest.test_case "profile round trip" `Quick test_profile_roundtrip;
    Alcotest.test_case "calibration knobs" `Quick test_calibration_knobs;
    Alcotest.test_case "measure sanity" `Quick test_measure_sanity;
  ]
