(** Columnar chunk storage: zone-map maintenance under DML and
    rollback, chunk kernels against a brute-force oracle, dictionary
    strings, zone pruning counters, planner statistics, the exact
    Int/Float compare-hash boundary, and the knob-equivalence property:
    [XNFDB_COLSTORE=1] and [=0] produce byte-identical results across
    all four workloads, join methods, domain counts and cache modes —
    including after INSERT/UPDATE/DELETE and ROLLBACK. *)

open Helpers
open Relcore
module Db = Engine.Database
module Exec = Executor.Exec
module Exec_par = Executor.Exec_par
module Qgm = Starq.Qgm

(* ------------------------------------------------------ env plumbing -- *)

(* OCaml has no unsetenv; restoring to "" is fine for both knobs (not a
   disabling value for XNFDB_COLSTORE, not an integer for
   XNFDB_CHUNK_ROWS, so both fall back to their defaults). *)
let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

let with_colstore flag f =
  with_env "XNFDB_COLSTORE" (if flag then "1" else "0") f

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------- Int/Float boundary (Value.t) -- *)

let test_value_int_float_boundary () =
  let maxi = max_int in
  (* 2^62 as a float is one past max_int = 2^62 - 1 *)
  Alcotest.(check int) "max_int < 2^62" (-1)
    (Value.compare (Value.Int maxi) (Value.Float 0x1p62));
  Alcotest.(check int) "2^62 > max_int" 1
    (Value.compare (Value.Float 0x1p62) (Value.Int maxi));
  Alcotest.(check int) "min_int = -2^62" 0
    (Value.compare (Value.Int min_int) (Value.Float (-0x1p62)));
  (* above 2^53 a lossy float conversion collapses distinct ints: the
     old compare called 2^53 + 1 equal to the float 2^53 *)
  let p53 = 1 lsl 53 in
  Alcotest.(check int) "2^53 + 1 > float 2^53" 1
    (Value.compare (Value.Int (p53 + 1)) (Value.Float 0x1p53));
  Alcotest.(check int) "float 2^53 = int 2^53" 0
    (Value.compare (Value.Float 0x1p53) (Value.Int p53));
  (* transitivity at the scale where float spacing exceeds 1: with
     a < b ints and f between them, Int a < Float f < Int b *)
  let a = maxi - 1024 and b = maxi in
  let f = 0x1p62 -. 512.0 (* representable: spacing at 2^62 is 1024 *) in
  Alcotest.(check int) "a < f" (-1) (Value.compare (Value.Int a) (Value.Float f));
  Alcotest.(check int) "f < b" (-1) (Value.compare (Value.Float f) (Value.Int b));
  Alcotest.(check int) "a < b" (-1) (Value.compare (Value.Int a) (Value.Int b));
  (* fractional tiebreak: floor f < x < f *)
  Alcotest.(check int) "3 < 3.5" (-1)
    (Value.compare (Value.Int 3) (Value.Float 3.5));
  Alcotest.(check int) "nan below ints (Float.compare order)" 1
    (Value.compare (Value.Int min_int) (Value.Float Float.nan));
  (* hash consistency: compare = 0 must imply equal hashes, including
     for integral floats at the top of the int range *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "hash (Int %d) = hash (Float ...)" i)
        (Value.hash (Value.Int i))
        (Value.hash (Value.Float (float_of_int i))))
    [ 0; 4; -17; 1 lsl 53; 1 lsl 60; -(1 lsl 60) ];
  Alcotest.(check (option int)) "int_key_of_float rejects 2^62" None
    (Value.int_key_of_float 0x1p62);
  Alcotest.(check (option int)) "int_key_of_float accepts -2^62"
    (Some min_int)
    (Value.int_key_of_float (-0x1p62))

let test_join_huge_int_keys () =
  let db = Db.create () in
  List.iter
    (fun s -> ignore (Db.exec db s))
    [
      "CREATE TABLE big_a (k INT, tag STRING)";
      "CREATE TABLE big_b (k INT)";
      Printf.sprintf
        "INSERT INTO big_a VALUES (%d, 'top'), (%d, 'next'), (42, 'small')"
        max_int (max_int - 1);
      Printf.sprintf "INSERT INTO big_b VALUES (%d), (42), (7)" max_int;
    ];
  let check_jm jm name =
    let c =
      Db.compile_query ~join_method:jm db
        "SELECT a.tag FROM big_a a, big_b b WHERE a.k = b.k ORDER BY a.tag"
    in
    check_rows name [ row [ vs "small" ]; row [ vs "top" ] ] (Exec.run c)
  in
  check_jm `Hash "hash join at max_int";
  check_jm `Merge "merge join at max_int";
  (* a float key equal to a huge int must probe correctly: 2^60 is
     exactly representable *)
  ignore (Db.exec db "CREATE TABLE big_f (f FLOAT)");
  ignore (Db.exec db "INSERT INTO big_f VALUES (1152921504606846976.0)");
  ignore (Db.exec db (Printf.sprintf "INSERT INTO big_b VALUES (%d)" (1 lsl 60)));
  let c =
    Db.compile_query ~join_method:`Hash db
      "SELECT b.k FROM big_b b, big_f f WHERE b.k = f.f"
  in
  check_rows "int = integral-float probe" [ row [ vi (1 lsl 60) ] ] (Exec.run c)

(* ----------------------------------------------- zone-map maintenance -- *)

let mixed_schema () =
  Schema.make
    [
      Schema.column ~nullable:true "a" Dtype.Tint;
      Schema.column ~nullable:true "b" Dtype.Tfloat;
      Schema.column ~nullable:true "s" Dtype.Tstr;
    ]

let test_zone_maintenance () =
  with_env "XNFDB_CHUNK_ROWS" "16" @@ fun () ->
  let t = Base_table.create ~name:"zones" (mixed_schema ()) in
  let cs = t.Base_table.colstore in
  Alcotest.(check int) "chunk size honoured" 16 (Colstore.chunk_rows cs);
  let rids =
    List.init 40 (fun i ->
        let a = if i mod 10 = 9 then vnull else vi (100 + i) in
        Base_table.insert t [| a; vf (float_of_int i); vs "x" |])
  in
  Alcotest.(check int) "chunks cover all slots" 3 (Colstore.n_chunks cs);
  Alcotest.(check (option (pair value_testable value_testable)))
    "int range after inserts"
    (Some (vi 100, vi 138))
    (Colstore.col_range cs 0);
  Alcotest.(check (option (pair value_testable value_testable)))
    "float range after inserts"
    (Some (vf 0.0, vf 39.0))
    (Colstore.col_range cs 1);
  Alcotest.(check int) "null count" 4 (Colstore.col_null_count cs 0);
  Alcotest.(check bool) "tight before any retire" true (Colstore.col_tight cs 0);
  (* delete the row holding the non-null max (i = 38, a = 138): bounds
     stay a conservative superset and the chunk is no longer tight *)
  Base_table.delete t (List.nth rids 38);
  (match Colstore.col_range cs 0 with
  | Some (lo, hi) ->
    Alcotest.(check bool) "lo still <= data" true (Value.compare lo (vi 100) <= 0);
    Alcotest.(check bool) "hi still >= data" true (Value.compare hi (vi 137) >= 0)
  | None -> Alcotest.fail "range lost after one delete");
  Alcotest.(check bool) "widened after delete" false (Colstore.col_tight cs 0);
  (* update narrows a value: same conservative contract *)
  Base_table.update t (List.nth rids 0) [| vi 110; vf 0.0; vs "x" |];
  (match Colstore.col_range cs 0 with
  | Some (lo, _) ->
    Alcotest.(check bool) "lo <= data min after narrowing update" true
      (Value.compare lo (vi 101) <= 0)
  | None -> Alcotest.fail "range lost after update");
  (* tombstone recycling: empty every chunk, zones fully reset, and new
     inserts rebuild exact bounds *)
  List.iteri
    (fun i rid -> if i <> 38 then Base_table.delete t rid)
    rids;
  Alcotest.(check (option (pair value_testable value_testable)))
    "range of empty table" None (Colstore.col_range cs 0);
  Alcotest.(check int) "no nulls left" 0 (Colstore.col_null_count cs 0);
  ignore (Base_table.insert t [| vi 7; vnull; vnull |]);
  ignore (Base_table.insert t [| vi 9; vnull; vnull |]);
  Alcotest.(check (option (pair value_testable value_testable)))
    "reset zones give exact fresh bounds"
    (Some (vi 7, vi 9))
    (Colstore.col_range cs 0);
  Alcotest.(check bool) "tight again after reset" true (Colstore.col_tight cs 0)

(* ------------------------------------ kernels vs. brute-force oracle -- *)

let atom_passes (tuple : Tuple.t) (a : Colstore.atom) : bool =
  match a with
  | Colstore.A_is_null i -> tuple.(i) = Value.Null
  | Colstore.A_not_null i -> tuple.(i) <> Value.Null
  | Colstore.A_cmp (i, op, v) -> (
    match (tuple.(i), v) with
    | Value.Null, _ | _, Value.Null -> false
    | x, v ->
      let c = Value.compare x v in
      (match op with
      | Colstore.Ceq -> c = 0
      | Colstore.Cne -> c <> 0
      | Colstore.Clt -> c < 0
      | Colstore.Cle -> c <= 0
      | Colstore.Cgt -> c > 0
      | Colstore.Cge -> c >= 0))

let test_kernels_vs_oracle () =
  with_env "XNFDB_CHUNK_ROWS" "16" @@ fun () ->
  let t = Base_table.create ~name:"oracle" (mixed_schema ()) in
  let cs = t.Base_table.colstore in
  let rng = Workloads.Rng.create 0xBEEF in
  let strs = [| "ml"; "db"; "os"; "ui" |] in
  let live = Hashtbl.create 64 in
  let random_tuple () =
    let a = if Workloads.Rng.int rng 8 = 0 then vnull else vi (Workloads.Rng.int rng 50) in
    let b =
      match Workloads.Rng.int rng 10 with
      | 0 -> vnull
      | 1 -> vf Float.nan
      | n -> vf (float_of_int n /. 3.0)
    in
    let s =
      if Workloads.Rng.int rng 8 = 0 then vnull
      else vs strs.(Workloads.Rng.int rng (Array.length strs))
    in
    [| a; b; s |]
  in
  for _ = 1 to 120 do
    let tu = random_tuple () in
    let rid = Base_table.insert t tu in
    Hashtbl.replace live rid tu
  done;
  (* churn: delete a third, reinsert a few (exercises tombstones) *)
  Hashtbl.iter
    (fun rid _ -> if rid mod 3 = 0 then (Base_table.delete t rid; Hashtbl.remove live rid))
    (Hashtbl.copy live);
  for _ = 1 to 20 do
    let tu = random_tuple () in
    let rid = Base_table.insert t tu in
    Hashtbl.replace live rid tu
  done;
  let cases =
    [
      [ Colstore.A_cmp (0, Colstore.Clt, vi 10) ];
      [ Colstore.A_cmp (0, Colstore.Cge, vi 25); Colstore.A_cmp (0, Colstore.Cle, vi 40) ];
      [ Colstore.A_cmp (0, Colstore.Cne, vi 7) ];
      [ Colstore.A_cmp (1, Colstore.Clt, vf 1.0) ];
      [ Colstore.A_cmp (1, Colstore.Cge, vf 0.5); Colstore.A_not_null 0 ];
      (* int const against a float column: exact fold *)
      [ Colstore.A_cmp (1, Colstore.Cle, vi 2) ];
      (* integral float const against an int column: exact fold *)
      [ Colstore.A_cmp (0, Colstore.Cgt, vf 12.0) ];
      [ Colstore.A_cmp (2, Colstore.Ceq, vs "db") ];
      [ Colstore.A_cmp (2, Colstore.Cne, vs "ml") ];
      (* dictionary miss: statically empty / not-null *)
      [ Colstore.A_cmp (2, Colstore.Ceq, vs "absent") ];
      [ Colstore.A_cmp (2, Colstore.Cne, vs "absent") ];
      [ Colstore.A_is_null 0 ];
      [ Colstore.A_not_null 1; Colstore.A_is_null 2 ];
    ]
  in
  let sel = Array.make (Colstore.chunk_rows cs) 0 in
  List.iteri
    (fun ci atoms ->
      match Colstore.compile cs atoms with
      | None -> Alcotest.fail (Printf.sprintf "case %d did not compile" ci)
      | Some katoms ->
        let got = ref [] in
        for chunk = Colstore.n_chunks cs - 1 downto 0 do
          if not (Colstore.prune_chunk cs katoms chunk) then begin
            let n = Colstore.select_chunk cs katoms chunk sel in
            for j = n - 1 downto 0 do
              got := sel.(j) :: !got
            done
          end
        done;
        let expected =
          Hashtbl.fold
            (fun rid tu acc ->
              if List.for_all (atom_passes tu) atoms then rid :: acc else acc)
            live []
          |> List.sort compare
        in
        Alcotest.(check (list int))
          (Printf.sprintf "case %d matches oracle" ci)
          expected
          (List.sort compare !got);
        (* select order within the scan is slot-ascending *)
        Alcotest.(check (list int))
          (Printf.sprintf "case %d ascending" ci)
          (List.sort compare !got) !got)
    cases

let test_dictionary () =
  let t =
    Base_table.create ~name:"dict"
      (Schema.make [ Schema.column ~nullable:true "s" Dtype.Tstr ])
  in
  let cs = t.Base_table.colstore in
  List.iter
    (fun s -> ignore (Base_table.insert t [| vs s |]))
    [ "a"; "b"; "a"; "c"; "b"; "a" ];
  Alcotest.(check int) "dict holds distinct strings" 3 (Colstore.dict_size cs);
  (match Colstore.dict_find cs "b" with
  | Some code -> Alcotest.(check string) "round trip" "b" (Colstore.dict_string cs code)
  | None -> Alcotest.fail "dict_find lost a present string");
  Alcotest.(check (option int)) "absent string" None (Colstore.dict_find cs "zz");
  (* deleting every holder does not shrink the dict (append-only), and
     lookups stay correct *)
  Base_table.iter (fun rid _ -> Base_table.delete t rid) t;
  Alcotest.(check int) "append-only dict" 3 (Colstore.dict_size cs)

(* -------------------------------------------- pruning and counters -- *)

let test_pruning_counters () =
  with_env "XNFDB_CHUNK_ROWS" "64" @@ fun () ->
  with_colstore true @@ fun () ->
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE seq (x INT, y INT)");
  (* clustered values: chunk zones partition [0, 1000) into tight bands *)
  let buf = Buffer.create 4096 in
  for base = 0 to 9 do
    Buffer.clear buf;
    Buffer.add_string buf "INSERT INTO seq VALUES ";
    for i = 0 to 99 do
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "(%d, %d)" ((base * 100) + i) (i mod 7))
    done;
    ignore (Db.exec db (Buffer.contents buf))
  done;
  let before =
    ( Colstore.totals.Colstore.chunks_scanned,
      Colstore.totals.Colstore.chunks_skipped,
      Colstore.totals.Colstore.rows_materialized )
  in
  let rows = Db.query_rows db "SELECT x FROM seq WHERE x < 10 ORDER BY x" in
  check_rows "pruned scan result" (rows_of_ints (List.init 10 (fun i -> [ i ]))) rows;
  let b0, b1, b2 = before in
  let scanned = Colstore.totals.Colstore.chunks_scanned - b0
  and skipped = Colstore.totals.Colstore.chunks_skipped - b1
  and materialized = Colstore.totals.Colstore.rows_materialized - b2 in
  (* 1000 rows / 64-row chunks = 16 chunks; x < 10 lives in chunk 0 *)
  Alcotest.(check int) "only the first chunk scanned" 1 scanned;
  Alcotest.(check int) "the rest zone-pruned" 15 skipped;
  Alcotest.(check int) "only passing rows materialized" 10 materialized;
  let ex = Db.explain db "SELECT x FROM seq WHERE x < 10" in
  Alcotest.(check bool) "explain has a colstore section" true
    (contains ~affix:"== colstore (this statement) ==" ex
    && contains ~affix:"chunks scanned" ex
    && contains ~affix:"rows materialized" ex)

(* --------------------------------------------- planner statistics -- *)

let test_planner_stats () =
  with_colstore true @@ fun () ->
  let t =
    Base_table.create ~name:"stats"
      (Schema.make
         [
           Schema.column ~nullable:true "v" Dtype.Tint;
           Schema.column ~nullable:true "w" Dtype.Tint;
         ])
  in
  for i = 0 to 99 do
    ignore
      (Base_table.insert t [| vi i; (if i < 25 then vnull else vi 1) |])
  done;
  Alcotest.(check (option (pair value_testable value_testable)))
    "column_range from zones"
    (Some (vi 0, vi 99))
    (Optimizer.Stats.column_range t 0);
  (match Optimizer.Stats.null_fraction t 1 with
  | Some f -> Alcotest.(check (float 1e-9)) "null fraction" 0.25 f
  | None -> Alcotest.fail "null_fraction unavailable with colstore on");
  with_colstore false (fun () ->
      Alcotest.(check (option (pair value_testable value_testable)))
        "knob off disables range stats" None
        (Optimizer.Stats.column_range t 0));
  (* selectivity interpolation through the QGM shapes the costing sees *)
  let resolve _ = Some (Qgm.base_box t) in
  let sel k =
    Optimizer.Cost.pred_selectivity ~resolve
      (Qgm.Bcmp (Sqlkit.Ast.Lt, Qgm.Qcol (0, 0), Qgm.Const (vi k)))
  in
  Alcotest.(check bool) "lt low bound is small" true (sel 5 < 0.1);
  Alcotest.(check bool) "lt high bound is large" true (sel 95 > 0.9);
  Alcotest.(check bool) "monotone in the constant" true (sel 30 < sel 70);
  let mirrored =
    Optimizer.Cost.pred_selectivity ~resolve
      (Qgm.Bcmp (Sqlkit.Ast.Gt, Qgm.Const (vi 95), Qgm.Qcol (0, 0)))
  in
  Alcotest.(check (float 1e-9)) "const-first orientation mirrors" (sel 95) mirrored;
  let null_sel =
    Optimizer.Cost.pred_selectivity ~resolve (Qgm.Bis_null (Qgm.Qcol (0, 1)))
  in
  Alcotest.(check (float 1e-9)) "is null from zone null counts" 0.25 null_sel;
  let notnull_sel =
    Optimizer.Cost.pred_selectivity ~resolve
      (Qgm.Bis_not_null (Qgm.Qcol (0, 1)))
  in
  Alcotest.(check (float 1e-9)) "is not null complement" 0.75 notnull_sel

(* -------------------------- knob equivalence: on = off, everywhere -- *)

let hetstream_testable : Xnf.Hetstream.t Alcotest.testable =
  Alcotest.testable
    (fun fmt s ->
      Format.fprintf fmt "stream of %d items" (Xnf.Hetstream.total_items s))
    Xnf.Hetstream.equal

let par_run ~domains c = Exec_par.run ~domains ~threshold:1 ~morsel_rows:17 c

(* row-store baseline with the knob off, then the columnar path serial
   and parallel, all compared ordered *)
let check_sql_equiv ?join_method name db sql =
  let c = Db.compile_query ?join_method db sql in
  let expected = with_colstore false (fun () -> Exec.run c) in
  with_colstore true (fun () ->
      check_rows (name ^ " (serial)") expected (Exec.run c);
      List.iter
        (fun domains ->
          check_rows
            (Printf.sprintf "%s (@ %d domains)" name domains)
            expected (par_run ~domains c))
        [ 1; 4 ])

let test_sql_equiv_workloads () =
  let oo1 = Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 400 } in
  check_sql_equiv "oo1 scan+filter" oo1
    "SELECT cto, clength FROM conns WHERE clength < 500";
  check_sql_equiv ~join_method:`Hash "oo1 hash join" oo1
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_sql_equiv "oo1 aggregate" oo1
    "SELECT cfrom, COUNT(*), MIN(clength) FROM conns GROUP BY cfrom";
  let bom = Workloads.Bom.generate Workloads.Bom.default in
  check_sql_equiv ~join_method:`Hash "bom two-column hash key" bom
    "SELECT a.pid, b.pid FROM part a, part b WHERE a.level = b.level AND \
     a.pname = b.pname";
  check_sql_equiv "bom filter+join" bom
    "SELECT p.pid, c.child FROM part p, contains c WHERE p.pid = c.parent \
     AND p.level < 2";
  let org = Workloads.Org.generate Workloads.Org.default in
  check_sql_equiv ~join_method:`Merge "org merge join" org
    "SELECT d.dno, e.eno FROM dept d, emp e WHERE d.dno = e.edno";
  check_sql_equiv "org subquery" org
    "SELECT eno FROM emp WHERE edno IN (SELECT dno FROM dept WHERE loc = \
     'ARC')";
  let shop = Workloads.Shop.generate Workloads.Shop.default in
  check_sql_equiv "shop string filter join" shop
    "SELECT c.cid, o.oid FROM customer c, orders o WHERE c.cid = o.ocid AND \
     c.region = 'EMEA'";
  check_sql_equiv "shop float filter" shop
    "SELECT oid, total FROM orders WHERE total > 100.5 ORDER BY oid"

let check_extraction_equiv name db query =
  let c = Xnf.Xnf_compile.compile db query in
  let baseline =
    with_colstore false (fun () -> Xnf.Xnf_compile.extract ~cache:false c)
  in
  with_colstore true (fun () ->
      Alcotest.check hetstream_testable (name ^ " (serial)") baseline
        (Xnf.Xnf_compile.extract ~cache:false c);
      List.iter
        (fun domains ->
          Alcotest.check hetstream_testable
            (Printf.sprintf "%s (@ %d domains)" name domains)
            baseline
            (Xnf.Xnf_compile.extract_parallel ~domains ~threshold:1
               ~morsel_rows:17 ~cache:false c))
        [ 1; 4 ];
      (* caches on: first call fills from the columnar path, second is
         served from the cache; both must equal the row-store result *)
      Alcotest.check hetstream_testable (name ^ " (cache fill)") baseline
        (Xnf.Xnf_compile.extract ~cache:true c);
      Alcotest.check hetstream_testable (name ^ " (cache hit)") baseline
        (Xnf.Xnf_compile.extract ~cache:true c))

let test_extraction_equiv_workloads () =
  check_extraction_equiv "org deps"
    (Workloads.Org.generate Workloads.Org.default)
    Workloads.Org.deps_arc_query;
  check_extraction_equiv "oo1 parts graph"
    (Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 300 })
    Workloads.Oo1.parts_graph_query;
  check_extraction_equiv "bom assembly"
    (Workloads.Bom.generate Workloads.Bom.default)
    Workloads.Bom.assembly_query;
  check_extraction_equiv "shop region"
    (Workloads.Shop.generate Workloads.Shop.default)
    (Workloads.Shop.region_query "EMEA")

let test_equiv_after_dml_and_rollback () =
  let db = org_db () in
  let verify tag =
    check_sql_equiv (tag ^ ": join") db
      "SELECT d.dno, e.eno, e.sal FROM dept d, emp e WHERE d.dno = e.edno \
       ORDER BY d.dno, e.eno";
    check_sql_equiv (tag ^ ": filter") db
      "SELECT eno, ename FROM emp WHERE sal > 85 ORDER BY eno";
    check_extraction_equiv (tag ^ ": extraction") db
      Workloads.Org.deps_arc_query
  in
  verify "initial";
  ignore (Db.exec db "INSERT INTO emp VALUES (14, 'eve', 150, 2)");
  ignore (Db.exec db "UPDATE emp SET sal = 95 WHERE eno = 11");
  ignore (Db.exec db "DELETE FROM emp WHERE eno = 13");
  verify "after dml";
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO emp VALUES (15, 'frank', 70, 1)");
  ignore (Db.exec db "UPDATE emp SET sal = 999 WHERE eno = 10");
  ignore (Db.exec db "DELETE FROM emp WHERE eno = 14");
  ignore (Db.exec db "ROLLBACK");
  verify "after rollback"

let suite =
  [
    Alcotest.test_case "int/float compare-hash boundary" `Quick
      test_value_int_float_boundary;
    Alcotest.test_case "joins at max_int-scale keys" `Quick
      test_join_huge_int_keys;
    Alcotest.test_case "zone-map maintenance" `Quick test_zone_maintenance;
    Alcotest.test_case "chunk kernels vs oracle" `Quick test_kernels_vs_oracle;
    Alcotest.test_case "string dictionary" `Quick test_dictionary;
    Alcotest.test_case "zone pruning + counters + explain" `Quick
      test_pruning_counters;
    Alcotest.test_case "planner zone statistics" `Quick test_planner_stats;
    Alcotest.test_case "knob equivalence: sql workloads" `Quick
      test_sql_equiv_workloads;
    Alcotest.test_case "knob equivalence: CO extraction" `Quick
      test_extraction_equiv_workloads;
    Alcotest.test_case "knob equivalence: dml + rollback" `Quick
      test_equiv_after_dml_and_rollback;
  ]
