(** Wire-codec hardening and daemon tests: round-trips for every frame,
    malformed-frame handling, concurrent sessions byte-identical to
    in-process execution, crash isolation, and graceful shutdown. *)

open Helpers
module Db = Engine.Database
module H = Xnf.Hetstream
module Wire = Net.Wire
module Client = Net.Client
module Server = Net.Server

let exec_rows db sql =
  match Db.exec db sql with
  | Db.Rows (schema, rows) -> (schema, rows)
  | _ -> Alcotest.failf "%s: expected rows" sql

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i =
    i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
  in
  go 0

let deps_arc_view = "CREATE VIEW deps_arc AS " ^ Workloads.Org.deps_arc_query

(** [org_db] plus the paper's deps_arc XNF view, for extraction. *)
let deps_db () =
  let db = org_db () in
  ignore (Db.exec db deps_arc_view);
  db

(* -- codec: byte-stable round-trips -------------------------------------- *)

(** A frame survives decode∘encode byte-identically.  Byte stability is
    the oracle (rather than structural equality) so NaN and −0.0 are
    covered without a float-aware comparator. *)
let payload_of frame = String.sub frame 4 (String.length frame - 4)

let check_response_stable msg (r : Wire.response) =
  let enc = Wire.encode_response r in
  let enc' = Wire.encode_response (Wire.decode_response (payload_of enc)) in
  Alcotest.(check string) msg enc enc'

let check_request_stable msg (r : Wire.request) =
  let enc = Wire.encode_request r in
  let enc' = Wire.encode_request (Wire.decode_request (payload_of enc)) in
  Alcotest.(check string) msg enc enc'

let value_gen =
  let open QCheck.Gen in
  frequency
    [
      (4, map (fun i -> vi i) int);
      ( 2,
        oneofl
          [ vi max_int; vi min_int; vi 0; vi (-1); vi 0x7fffffff; vi (1 lsl 62) ]
      );
      (3, map (fun f -> vf f) float);
      ( 2,
        oneofl
          [
            vf Float.nan;
            vf (-0.0);
            vf Float.infinity;
            vf Float.neg_infinity;
            vf (-1.0);
            vf Float.min_float;
          ] );
      (3, map (fun s -> vs s) (string_size (int_bound 40)));
      (1, map (fun b -> vb b) bool);
      (1, return vnull);
    ]

let tuple_gen =
  QCheck.Gen.(map Relcore.Tuple.of_list (list_size (int_bound 6) value_gen))

let batch_response_arb =
  QCheck.make
    ~print:(fun rows -> Printf.sprintf "<batch of %d rows>" (List.length rows))
    QCheck.Gen.(list_size (int_bound 8) tuple_gen)

let prop_row_batch_stable =
  QCheck.Test.make ~count:300 ~name:"Row_batch round-trips byte-identically"
    batch_response_arb (fun rows ->
      let r = Wire.Row_batch rows in
      let enc = Wire.encode_response r in
      Wire.encode_response (Wire.decode_response (payload_of enc)) = enc)

let string_arb = QCheck.make ~print:String.escaped QCheck.Gen.(string_size (int_bound 60))

let prop_requests_stable =
  QCheck.Test.make ~count:200 ~name:"request frames round-trip" string_arb
    (fun s ->
      List.for_all
        (fun (r : Wire.request) ->
          let enc = Wire.encode_request r in
          Wire.encode_request (Wire.decode_request (payload_of enc)) = enc)
        [
          Hello { client = s; version = Wire.version };
          Query { sql = s; analyze = false };
          Query { sql = s; analyze = true };
          Extract { text = s; chunk = String.length s; analyze = false };
          Extract { text = s; chunk = String.length s; analyze = true };
          Stmt { sql = s };
          Stats;
          Bye;
        ])

let prop_scalar_responses_stable =
  QCheck.Test.make ~count:200 ~name:"scalar response frames round-trip"
    string_arb (fun s ->
      let n = String.length s in
      List.for_all
        (fun (r : Wire.response) ->
          let enc = Wire.encode_response r in
          Wire.encode_response (Wire.decode_response (payload_of enc)) = enc)
        [
          Hello_ok { server = s; version = Wire.version; session_id = n };
          Row_end { rows = n };
          Stream_end { items = n };
          Affected n;
          Done s;
          Error { kind = "exec"; msg = s };
          Stats_reply s;
          Bye_ok;
        ])

let test_empty_batch () =
  check_response_stable "empty batch" (Wire.Row_batch []);
  check_response_stable "empty chunk" (Wire.Stream_chunk []);
  check_response_stable "empty header"
    (Wire.Row_header (Relcore.Schema.make []))

let test_schema_frame () =
  let schema, _ = exec_rows (org_db ()) "SELECT * FROM emp" in
  check_response_stable "row header" (Wire.Row_header schema)

(* Regression: Hetstream once encoded floats via [Int64.to_int], losing
   bit 63 — negative floats came back positive.  Pin the sign bit. *)
let test_float_sign_bits () =
  let roundtrip v =
    let enc = Wire.encode_response (Wire.Row_batch [ row [ v ] ]) in
    match Wire.decode_response (payload_of enc) with
    | Wire.Row_batch [ t ] -> Relcore.Tuple.get t 0
    | _ -> Alcotest.fail "unexpected frame"
  in
  List.iter
    (fun f ->
      match roundtrip (vf f) with
      | Relcore.Value.Float f' ->
        Alcotest.(check int64)
          (Printf.sprintf "bits of %h" f)
          (Int64.bits_of_float f) (Int64.bits_of_float f')
      | _ -> Alcotest.fail "not a float")
    [ -1.0; -0.0; 0.0; Float.nan; Float.neg_infinity; -4.25e-300 ]

let test_stream_frames_roundtrip () =
  let stream = Xnf.Xnf_compile.run_view (deps_db ()) "deps_arc" in
  check_response_stable "stream header" (Wire.Stream_header stream.H.header);
  check_response_stable "stream chunk" (Wire.Stream_chunk stream.H.items);
  (* reassembly from single-item chunks equals the original stream *)
  let frames =
    List.map
      (fun item ->
        Wire.encode_response (Wire.Stream_chunk [ item ]))
      stream.H.items
  in
  let items =
    List.concat_map
      (fun f ->
        match Wire.decode_response (payload_of f) with
        | Wire.Stream_chunk items -> items
        | _ -> Alcotest.fail "unexpected frame")
      frames
  in
  Alcotest.(check bool)
    "tuple-at-a-time reassembly is byte-identical" true
    (H.equal stream { stream with H.items })

let expect_malformed msg (f : unit -> unit) =
  match f () with
  | () -> Alcotest.failf "%s: expected Malformed" msg
  | exception Wire.Malformed _ -> ()

let test_malformed_payloads () =
  expect_malformed "empty payload" (fun () ->
      ignore (Wire.decode_request ""));
  expect_malformed "unknown request tag" (fun () ->
      ignore (Wire.decode_request "\xff junk"));
  expect_malformed "unknown response tag" (fun () ->
      ignore (Wire.decode_response "? junk"));
  expect_malformed "truncated body" (fun () ->
      let enc = Wire.encode_request (Wire.Query { sql = "SELECT 1"; analyze = false }) in
      ignore (Wire.decode_request (String.sub enc 4 5)));
  expect_malformed "trailing garbage" (fun () ->
      let enc = Wire.encode_request Wire.Bye in
      ignore (Wire.decode_request (payload_of enc ^ "x")))

(* -- daemon fixtures ------------------------------------------------------ *)

let next_sock =
  let c = Atomic.make 0 in
  fun () ->
    Printf.sprintf "%s/xnfdb_test_%d_%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ()) (Atomic.fetch_and_add c 1)

(** Run [f addr db server] against a live daemon on a fresh unix socket;
    always drains and joins the serve domain. *)
let with_server ?(setup = fun (_ : Db.t) -> ()) ?(tweak = fun c -> c) f =
  let db = Db.create () in
  setup db;
  let path = next_sock () in
  let addr = Unix.ADDR_UNIX path in
  let config = tweak (Server.default_config ~addr ()) in
  let t = Server.create ~config db in
  let d = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f addr db t)

let org_setup db =
  let src = deps_db () in
  List.iter
    (fun tbl -> Relcore.Catalog.add_table (Db.catalog db) tbl)
    (Relcore.Catalog.tables (Db.catalog src));
  ignore (Db.exec db deps_arc_view)

(* -- daemon: basic equivalence ------------------------------------------- *)

let test_query_matches_inprocess () =
  with_server ~setup:org_setup (fun addr _db _t ->
      let reference = deps_db () in
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          List.iter
            (fun sql ->
              let rschema, rrows = exec_rows reference sql in
              let schema, rows = Client.query cl sql in
              Alcotest.(check string)
                (sql ^ ": schema")
                (Relcore.Schema.to_string rschema)
                (Relcore.Schema.to_string schema);
              check_rows (sql ^ ": rows") rrows rows)
            [
              "SELECT * FROM emp ORDER BY eno";
              "SELECT dname, COUNT(*) FROM dept, emp WHERE dno = edno GROUP \
               BY dname ORDER BY dname";
              "SELECT eno FROM emp WHERE sal > 95 ORDER BY eno";
            ]))

let test_extract_matches_inprocess () =
  with_server ~setup:org_setup (fun addr _db _t ->
      let reference = Xnf.Xnf_compile.run_view (deps_db ()) "deps_arc" in
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let bulk = Client.extract cl "deps_arc" in
          Alcotest.(check bool)
            "bulk extraction byte-identical to in-process" true
            (H.equal reference bulk);
          let frames_before = Client.frames_in cl in
          let tuple_at_a_time = Client.extract ~chunk:1 cl "deps_arc" in
          let tat_frames = Client.frames_in cl - frames_before in
          Alcotest.(check bool)
            "tuple-at-a-time byte-identical too" true
            (H.equal reference tuple_at_a_time);
          Alcotest.(check bool)
            "chunk=1 ships one frame per item" true
            (tat_frames >= H.total_items reference)))

let test_dml_and_txn () =
  with_server (fun addr db _t ->
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (match Client.exec cl "CREATE TABLE kv (k INT, v STRING)" with
          | Client.Done _ -> ()
          | _ -> Alcotest.fail "CREATE should report Done");
          (match Client.exec cl "INSERT INTO kv VALUES (1, 'a'), (2, 'b')" with
          | Client.Affected 2 -> ()
          | _ -> Alcotest.fail "INSERT should affect 2 rows");
          ignore (Client.exec cl "BEGIN");
          ignore (Client.exec cl "INSERT INTO kv VALUES (3, 'c')");
          check_rows "uncommitted insert visible in-session"
            (rows_of_ints [ [ 3 ] ])
            (Client.query_rows cl "SELECT COUNT(*) FROM kv");
          ignore (Client.exec cl "ROLLBACK");
          check_rows "rollback undoes it"
            (rows_of_ints [ [ 2 ] ])
            (Client.query_rows cl "SELECT COUNT(*) FROM kv");
          (* server-side error surfaces as Server_error, session survives *)
          (match Client.query cl "SELECT nope FROM kv" with
          | _ -> Alcotest.fail "bad column should raise"
          | exception Client.Server_error _ -> ());
          check_rows "session alive after error"
            (rows_of_ints [ [ 2 ] ])
            (Client.query_rows cl "SELECT COUNT(*) FROM kv");
          let tbl = Relcore.Catalog.find_table (Db.catalog db) "kv" in
          Alcotest.(check int)
            "base table agrees" 2
            (Relcore.Base_table.cardinality tbl)))

(* -- daemon: concurrency -------------------------------------------------- *)

let test_concurrent_sessions () =
  with_server ~setup:org_setup (fun addr _db t ->
      let reference = H.serialize (Xnf.Xnf_compile.run_view (deps_db ()) "deps_arc") in
      let n = 8 and rounds = 4 in
      let worker i () =
        try
          let cl = Client.connect ~client_name:(Printf.sprintf "w%d" i) addr in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              ignore
                (Client.exec cl
                   (Printf.sprintf "CREATE TABLE own_%d (x INT)" i));
              for r = 1 to rounds do
                ignore
                  (Client.exec cl
                     (Printf.sprintf "INSERT INTO own_%d VALUES (%d)" i r));
                let got =
                  Client.query_rows cl
                    (Printf.sprintf "SELECT COUNT(*) FROM own_%d" i)
                in
                if got <> rows_of_ints [ [ r ] ] then
                  failwith (Printf.sprintf "w%d: wrong count at round %d" i r);
                ignore (Client.exec cl "BEGIN");
                ignore
                  (Client.exec cl
                     (Printf.sprintf "INSERT INTO own_%d VALUES (-1)" i));
                ignore (Client.exec cl "ROLLBACK");
                let stream = Client.extract cl "deps_arc" in
                if H.serialize stream <> reference then
                  failwith (Printf.sprintf "w%d: extract diverged" i)
              done;
              Ok i)
        with e -> Stdlib.Error (Printexc.to_string e)
      in
      let domains = List.init n (fun i -> Domain.spawn (worker i)) in
      let results = List.map Domain.join domains in
      List.iter
        (function
          | Ok _ -> () | Stdlib.Error m -> Alcotest.failf "worker failed: %s" m)
        results;
      let c = Server.counters t in
      Alcotest.(check bool)
        "peak sessions saw concurrency" true (c.Server.peak_sessions >= 2);
      Alcotest.(check bool) "no protocol errors" true (c.Server.errors = 0))

let test_crash_isolation () =
  with_server ~setup:org_setup (fun addr _db t ->
      let survivor = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close survivor)
        (fun () ->
          (* crash a client mid-request: queue an extraction, slam the
             socket, never read *)
          let victim = Client.connect addr in
          Client.send_raw victim
            (Wire.encode_request (Wire.Extract { text = "deps_arc"; chunk = 1; analyze = false }));
          Client.abort victim;
          (* the survivor keeps getting correct answers *)
          for _ = 1 to 3 do
            check_rows "survivor unaffected"
              (rows_of_ints [ [ 4 ] ])
              (Client.query_rows survivor "SELECT COUNT(*) FROM emp")
          done;
          (* the daemon reaps the dead session *)
          let rec wait_reaped n =
            let c = Server.counters t in
            if c.Server.active_sessions <= 1 then ()
            else if n = 0 then Alcotest.fail "victim session never reaped"
            else begin
              Unix.sleepf 0.05;
              wait_reaped (n - 1)
            end
          in
          wait_reaped 100))

let test_malformed_frame_closes_session_only () =
  with_server ~setup:org_setup (fun addr _db _t ->
      let cl = Client.connect addr in
      Client.send_raw cl (Wire.frame "\xffgarbage");
      (match Client.recv_any cl with
      | Wire.Error { kind; _ } ->
        Alcotest.(check string) "malformed kind" "malformed" kind
      | _ -> Alcotest.fail "expected an error frame");
      (* ... and the session is gone *)
      (match Client.recv_any cl with
      | _ -> Alcotest.fail "session should be closed"
      | exception Wire.Connection_lost -> ());
      Client.abort cl;
      (* the daemon itself survives and serves new sessions *)
      let cl2 = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl2)
        (fun () ->
          check_rows "daemon survives malformed frame"
            (rows_of_ints [ [ 3 ] ])
            (Client.query_rows cl2 "SELECT COUNT(*) FROM dept")))

let test_oversized_frame () =
  with_server ~setup:org_setup (fun addr _db _t ->
      let cl = Client.connect addr in
      let b = Buffer.create 4 in
      Buffer.add_int32_be b (Int32.of_int (Wire.max_frame + 1));
      Client.send_raw cl (Buffer.contents b);
      (match Client.recv_any cl with
      | Wire.Error _ -> ()
      | _ -> Alcotest.fail "expected an error frame"
      | exception Wire.Connection_lost -> ());
      Client.abort cl;
      let cl2 = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl2)
        (fun () ->
          check_rows "daemon survives oversized frame"
            (rows_of_ints [ [ 3 ] ])
            (Client.query_rows cl2 "SELECT COUNT(*) FROM dept")))

let test_hello_version_mismatch () =
  with_server (fun addr _db _t ->
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      Unix.connect fd addr;
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Wire.send_frame fd
            (Wire.encode_request (Wire.Hello { client = "old"; version = 999 }));
          match Wire.decode_response (Wire.recv_payload fd) with
          | Wire.Error { kind; _ } ->
            Alcotest.(check string) "protocol error" "protocol" kind
          | _ -> Alcotest.fail "expected an error frame"))

let test_stats_and_counters () =
  with_server ~setup:org_setup (fun addr _db t ->
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          ignore (Client.query_rows cl "SELECT COUNT(*) FROM emp");
          ignore (Client.extract cl "deps_arc");
          let text = Client.stats cl in
          List.iter
            (fun needle ->
              Alcotest.(check bool)
                (Printf.sprintf "stats mentions %S" needle)
                true (contains text needle))
            [ "server"; "sessions" ];
          let c = Server.counters t in
          Alcotest.(check int) "one active session" 1 c.Server.active_sessions;
          Alcotest.(check bool) "query counted" true (c.Server.queries >= 1);
          Alcotest.(check bool) "extract counted" true (c.Server.extracts >= 1);
          Alcotest.(check bool)
            "bytes flowed" true
            (c.Server.bytes_in > 0 && c.Server.bytes_out > 0)))

let test_max_sessions () =
  with_server ~setup:org_setup
    ~tweak:(fun c -> { c with Server.max_sessions = 1 })
    (fun addr _db _t ->
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (match Client.connect addr with
          | cl2 ->
            Client.abort cl2;
            Alcotest.fail "second session should be rejected"
          | exception Client.Server_error { kind; _ } ->
            Alcotest.(check string) "busy kind" "busy" kind
          | exception Wire.Connection_lost -> ());
          check_rows "first session unaffected"
            (rows_of_ints [ [ 3 ] ])
            (Client.query_rows cl "SELECT COUNT(*) FROM dept")))

let test_shutdown_rolls_back_check () =
  (* open a transaction, insert, then shut the daemon down: the drain
     must roll the open transaction back, committing nothing *)
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE audit (x INT)");
  ignore (Db.exec db "INSERT INTO audit VALUES (1)");
  let path = next_sock () in
  let config = Server.default_config ~addr:(Unix.ADDR_UNIX path) () in
  let t = Server.create ~config db in
  let d = Domain.spawn (fun () -> Server.serve t) in
  let cl = Client.connect (Unix.ADDR_UNIX path) in
  ignore (Client.exec cl "BEGIN");
  ignore (Client.exec cl "INSERT INTO audit VALUES (2)");
  Server.stop t;
  Domain.join d;
  Client.abort cl;
  (try Sys.remove path with Sys_error _ -> ());
  let tbl = Relcore.Catalog.find_table (Db.catalog db) "audit" in
  Alcotest.(check int) "open txn rolled back on shutdown" 1
    (Relcore.Base_table.cardinality tbl)

(* -- daemon: EXPLAIN ANALYZE over the wire -------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_analyze_over_wire () =
  with_server ~setup:org_setup (fun addr _db _t ->
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let report =
            Client.query_analyze cl "SELECT eno FROM emp WHERE sal > 95"
          in
          List.iter
            (fun affix ->
              Alcotest.(check bool)
                ("query report has " ^ affix)
                true
                (contains report affix))
            [ "== plan (analyzed) =="; "act="; "rows returned:" ];
          let xreport = Client.extract_analyze cl "deps_arc" in
          List.iter
            (fun affix ->
              Alcotest.(check bool)
                ("extract report has " ^ affix)
                true
                (contains xreport affix))
            [ "== plans (analyzed) =="; "act="; "stream items:" ];
          (* the connection still answers plain requests afterwards *)
          check_rows "post-analyze query"
            (rows_of_ints [ [ 4 ] ])
            (Client.query_rows cl "SELECT COUNT(*) FROM emp")))

let suite =
  [
    Alcotest.test_case "codec: empty frames" `Quick test_empty_batch;
    Alcotest.test_case "codec: schema frame" `Quick test_schema_frame;
    Alcotest.test_case "codec: float sign bits" `Quick test_float_sign_bits;
    Alcotest.test_case "codec: stream frames" `Quick test_stream_frames_roundtrip;
    Alcotest.test_case "codec: malformed payloads" `Quick test_malformed_payloads;
    QCheck_alcotest.to_alcotest prop_row_batch_stable;
    QCheck_alcotest.to_alcotest prop_requests_stable;
    QCheck_alcotest.to_alcotest prop_scalar_responses_stable;
    Alcotest.test_case "daemon: query equivalence" `Quick
      test_query_matches_inprocess;
    Alcotest.test_case "daemon: extract equivalence" `Quick
      test_extract_matches_inprocess;
    Alcotest.test_case "daemon: DML and transactions" `Quick test_dml_and_txn;
    Alcotest.test_case "daemon: concurrent sessions" `Quick
      test_concurrent_sessions;
    Alcotest.test_case "daemon: crash isolation" `Quick test_crash_isolation;
    Alcotest.test_case "daemon: malformed frame" `Quick
      test_malformed_frame_closes_session_only;
    Alcotest.test_case "daemon: oversized frame" `Quick test_oversized_frame;
    Alcotest.test_case "daemon: hello version" `Quick
      test_hello_version_mismatch;
    Alcotest.test_case "daemon: stats and counters" `Quick
      test_stats_and_counters;
    Alcotest.test_case "daemon: max sessions" `Quick test_max_sessions;
    Alcotest.test_case "daemon: shutdown rolls back" `Quick
      test_shutdown_rolls_back_check;
    Alcotest.test_case "daemon: analyze over the wire" `Quick
      test_analyze_over_wire;
  ]
