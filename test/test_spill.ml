(** Two-tier colstore: encoding round-trip properties (FOR/bit-pack at
    the int boundaries, RLE, null bitmaps, NaN/±0.0 floats), the
    eviction/spill lifecycle under a byte budget (pins, clock, promote
    on DML, truncate/drop reclaim), the zones-as-block-index zero-fault
    guarantee, and the spill-on/off equivalence property: a database
    whose chunks were evicted under [XNFDB_COLSTORE_MB=1] answers every
    workload query — serial, parallel, joins, CO extraction, after DML
    and ROLLBACK — byte-identically to the row-store path. *)

open Helpers
open Relcore
module Db = Engine.Database
module Exec = Executor.Exec
module Exec_par = Executor.Exec_par
module Enc = Colstore.Encoding

(* restoring to "" is fine for every knob used here: not an integer, so
   XNFDB_COLSTORE_MB / XNFDB_CHUNK_ROWS fall back to their defaults,
   and not a disabling value for XNFDB_COLSTORE / XNFDB_COLSTORE_ENC *)
let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

let with_colstore flag f =
  with_env "XNFDB_COLSTORE" (if flag then "1" else "0") f

(* a database built under these knobs spills during its own inserts *)
let with_spill_env f =
  with_env "XNFDB_COLSTORE_MB" "1" @@ fun () ->
  with_env "XNFDB_CHUNK_ROWS" "16" f

(* ------------------------------------------- encoding round trips -- *)

(* cells: (value, is_null, is_live); dead and null positions are
   don't-care for the data payload, exact for the null bitmap *)
type cell = { v : int; nul : bool; liv : bool }

let cell_gen =
  QCheck.Gen.(
    let boundary = oneofl [ min_int; max_int; min_int + 1; max_int - 1; 0; -1; 1 ] in
    let value =
      frequency
        [ (4, small_signed_int); (2, int); (1, boundary); (3, int_bound 5) ]
    in
    map3 (fun v nul liv -> { v; nul; liv }) value (frequency [ (4, return false); (1, bool) ]) (frequency [ (6, return true); (1, bool) ]))

let cells_arb =
  QCheck.make
    ~print:(fun cs ->
      String.concat ";"
        (List.map (fun c -> Printf.sprintf "(%d,%b,%b)" c.v c.nul c.liv) cs))
    QCheck.Gen.(list_size (int_range 0 200) cell_gen)

let check_int_roundtrip ~raw cells =
  let a = Array.of_list (List.map (fun c -> c.v) cells) in
  let n = Array.length a in
  let cell i = List.nth cells i in
  let null i = (cell i).nul in
  let live i = (cell i).liv in
  let sec = Enc.encode_ints ~raw a ~null ~live in
  let out, nulls = Enc.decode_ints sec ~n in
  let ok = ref true in
  for i = 0 to n - 1 do
    if live i then begin
      if Colstore.bit_get nulls i <> null i then ok := false;
      if (not (null i)) && out.(i) <> a.(i) then ok := false
    end
  done;
  (* the chosen encoding never beats raw64 by losing: payload bound *)
  if (not raw) && Bytes.length sec > (8 * n) + 2 + ((n + 7) / 8) then
    ok := false;
  !ok

let prop_int_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"int sections round-trip (incl. min_int/max_int)"
       cells_arb (check_int_roundtrip ~raw:false))

let prop_int_roundtrip_raw =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"raw (no-encoding) sections round-trip"
       cells_arb (check_int_roundtrip ~raw:true))

let float_cells_arb =
  QCheck.make
    ~print:(fun cs ->
      String.concat ";" (List.map (fun (f, _, _) -> string_of_float f) cs))
    QCheck.Gen.(
      list_size (int_range 0 150)
        (triple
           (frequency
              [
                (4, float);
                (1, oneofl [ Float.nan; 0.0; -0.0; infinity; neg_infinity ]);
                (2, map float_of_int (int_bound 3));
              ])
           (frequency [ (5, return false); (1, bool) ])
           (frequency [ (6, return true); (1, bool) ])))

let prop_float_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"float sections bit-exact (NaN, -0.0)"
       float_cells_arb (fun cells ->
         let a = Array.of_list (List.map (fun (f, _, _) -> f) cells) in
         let n = Array.length a in
         let null i = (fun (_, nu, _) -> nu) (List.nth cells i) in
         let live i = (fun (_, _, li) -> li) (List.nth cells i) in
         let sec = Enc.encode_floats a ~null ~live in
         let out, nulls = Enc.decode_floats sec ~n in
         let ok = ref true in
         for i = 0 to n - 1 do
           if live i then begin
             if Colstore.bit_get nulls i <> null i then ok := false;
             if
               (not (null i))
               && not (Int64.equal (Int64.bits_of_float out.(i)) (Int64.bits_of_float a.(i)))
             then ok := false
           end
         done;
         !ok))

let test_encoding_shapes () =
  let all_live _ = true and no_null _ = false in
  (* a constant column: FOR with width 0 (9-byte payload) *)
  let sec = Enc.encode_ints (Array.make 100 42) ~null:no_null ~live:all_live in
  Alcotest.(check int) "constant column picks FOR" 1 (Enc.data_tag sec);
  Alcotest.(check bool) "constant column is tiny" true (Bytes.length sec <= 11);
  (* long runs: RLE beats bit-packing *)
  let runs = Array.init 128 (fun i -> if i < 64 then 3 else 900000) in
  let sec = Enc.encode_ints runs ~null:no_null ~live:all_live in
  Alcotest.(check int) "two-run column picks RLE" 2 (Enc.data_tag sec);
  let out, _ = Enc.decode_ints sec ~n:128 in
  Alcotest.(check bool) "RLE round-trips" true (out = runs);
  (* sequential data: frame-of-reference bit-packing *)
  let seq = Array.init 256 (fun i -> 1_000_000 + i) in
  let sec = Enc.encode_ints seq ~null:no_null ~live:all_live in
  Alcotest.(check int) "sequential column picks FOR" 1 (Enc.data_tag sec);
  Alcotest.(check bool) "FOR is compact (8 bits/value + header)" true
    (Bytes.length sec <= 2 + 9 + 256);
  (* the full int range in one section: FOR at 63 bits or raw, exact *)
  let extremes = [| min_int; max_int; 0; -1; 1; min_int; max_int |] in
  let sec = Enc.encode_ints extremes ~null:no_null ~live:all_live in
  let out, _ = Enc.decode_ints sec ~n:(Array.length extremes) in
  Alcotest.(check bool) "min_int..max_int exact" true (out = extremes);
  (* all-null column: header + degenerate constant payload, no bitmap *)
  let sec = Enc.encode_ints (Array.make 50 7) ~null:(fun _ -> true) ~live:all_live in
  let _, nulls = Enc.decode_ints sec ~n:50 in
  Alcotest.(check bool) "all-null section is tiny (no bitmap)" true
    (Bytes.length sec <= 11);
  Alcotest.(check bool) "all positions null" true
    (List.for_all (Colstore.bit_get nulls) (List.init 50 Fun.id))

(* ------------------------------------------- eviction lifecycle -- *)

let two_int_schema () =
  Schema.make
    [
      Schema.column ~nullable:true "k" Dtype.Tint;
      Schema.column ~nullable:true "v" Dtype.Tint;
    ]

let test_eviction_lifecycle () =
  with_env "XNFDB_CHUNK_ROWS" "1024" @@ fun () ->
  with_env "XNFDB_COLSTORE_MB" "1" @@ fun () ->
  let t = Base_table.create ~name:"spill_t" (two_int_schema ()) in
  let cs = t.Base_table.colstore in
  let n_rows = 150_000 in
  let enc0 = Colstore.totals.Colstore.chunks_encoded in
  for i = 0 to n_rows - 1 do
    ignore (Base_table.insert t [| vi i; vi (i mod 97) |])
  done;
  let budget = Colstore.budget_bytes () in
  Alcotest.(check bool) "budget parsed (1 MB)" true (budget = 1024 * 1024);
  Alcotest.(check bool) "chunks were evicted" true (Colstore.cold_chunks cs > 0);
  Alcotest.(check bool) "encode counter advanced" true
    (Colstore.totals.Colstore.chunks_encoded > enc0);
  Alcotest.(check bool) "hot tier within budget" true
    (Colstore.resident_bytes cs <= budget);
  Alcotest.(check bool) "raw footprint provably exceeds budget" true
    (Colstore.n_chunks cs * Colstore.hot_chunk_bytes cs > 2 * budget);
  (* encoded footprint: sequential ints FOR-pack far below 0.6x raw *)
  let raw_cold = Colstore.cold_chunks cs * Colstore.hot_chunk_bytes cs in
  Alcotest.(check bool) "encoded <= 0.6x raw column bytes" true
    (float_of_int (Colstore.spilled_bytes cs) <= 0.6 *. float_of_int raw_cold);
  Alcotest.(check bool) "global gauges see this store" true
    (Colstore.global_spilled_bytes () >= Colstore.spilled_bytes cs);
  (* cold scan equals the oracle and counts its faults *)
  (match Colstore.compile cs [ Colstore.A_cmp (0, Colstore.Clt, vi 10) ] with
  | None -> Alcotest.fail "atoms did not compile"
  | Some katoms ->
    let sel = Array.make (Colstore.chunk_rows cs) 0 in
    let sst = Colstore.scan_stats () in
    let got = ref [] in
    for c = Colstore.n_chunks cs - 1 downto 0 do
      if not (Colstore.prune_chunk cs katoms c) then begin
        let n = Colstore.select_chunk ~stats:sst cs katoms c sel in
        for j = n - 1 downto 0 do
          got := sel.(j) :: !got
        done
      end
    done;
    Alcotest.(check (list int)) "cold scan matches oracle"
      (List.init 10 Fun.id) !got;
    (* k < 10 lives in chunk 0 only: at most one chunk faulted, and
       zone pruning kept every other cold chunk untouched *)
    Alcotest.(check bool) "at most one chunk faulted" true (sst.Colstore.faulted <= 1));
  (* a pinned chunk survives the sweep *)
  Colstore.pin cs 0;
  Colstore.unpin cs 0;
  (* DML against a cold region promotes (decode counter) and stays exact *)
  let dec0 = Colstore.totals.Colstore.chunks_decoded in
  Base_table.update t 5 [| vi 5; vi 424242 |];
  Alcotest.(check bool) "update promoted a cold chunk" true
    (Colstore.totals.Colstore.chunks_decoded > dec0);
  (match Base_table.get t 5 with
  | Some tu -> Alcotest.(check value_testable) "promoted row readable" (vi 424242) tu.(1)
  | None -> Alcotest.fail "row lost across promote");
  (* truncate drops every tier and the spill file *)
  Base_table.truncate t;
  Alcotest.(check int) "no cold chunks after truncate" 0 (Colstore.cold_chunks cs);
  Alcotest.(check int) "no spilled bytes after truncate" 0 (Colstore.spilled_bytes cs);
  Alcotest.(check int) "no resident bytes after truncate" 0 (Colstore.resident_bytes cs);
  (* refill works from scratch after the reset *)
  ignore (Base_table.insert t [| vi 1; vi 2 |]);
  Alcotest.(check int) "refill after truncate" 1 (Base_table.cardinality t);
  (* release is idempotent and zeroes this store's gauge share *)
  Base_table.release t;
  Base_table.release t;
  Alcotest.(check int) "released store holds nothing" 0 (Colstore.resident_bytes cs)

let test_budget_off_stays_hot () =
  with_env "XNFDB_CHUNK_ROWS" "64" @@ fun () ->
  with_env "XNFDB_COLSTORE_MB" "0" @@ fun () ->
  let t = Base_table.create ~name:"nospill" (two_int_schema ()) in
  for i = 0 to 9_999 do
    ignore (Base_table.insert t [| vi i; vi i |])
  done;
  let cs = t.Base_table.colstore in
  Alcotest.(check int) "MB=0 never spills" 0 (Colstore.cold_chunks cs);
  Alcotest.(check (float 1e-9)) "cold fraction 0" 0.0 (Colstore.cold_fraction cs);
  Alcotest.(check bool) "access factor neutral" true
    (Optimizer.Cost.scan_access_factor t = 1.0)

(* ------------------------------- zones as block index: zero faults -- *)

let test_pruned_scans_fault_nothing () =
  with_spill_env @@ fun () ->
  (* the budget is per table: parts needs ~40k rows to outgrow 1 MB *)
  let db =
    Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 40_000 }
  in
  let parts_cs =
    (Catalog.find_table (Db.catalog db) "parts").Base_table.colstore
  in
  Alcotest.(check bool) "oo1 at this scale spills" true
    (Colstore.cold_chunks parts_cs > 0);
  with_colstore true @@ fun () ->
  (* pid is sequential: a range beyond the data is prunable everywhere *)
  let f0 = Colstore.totals.Colstore.chunks_faulted in
  let rows =
    Db.query_rows db "SELECT pid FROM parts WHERE pid > 90000000"
  in
  Alcotest.(check int) "prunable query returns nothing" 0 (List.length rows);
  Alcotest.(check int) "and faulted in zero spilled chunks" 0
    (Colstore.totals.Colstore.chunks_faulted - f0);
  (* dict-miss string equality: statically empty, no fault either *)
  let f1 = Colstore.totals.Colstore.chunks_faulted in
  let rows =
    Db.query_rows db "SELECT pid FROM parts WHERE ptype = 'no-such-type'"
  in
  Alcotest.(check int) "dict-miss returns nothing" 0 (List.length rows);
  Alcotest.(check int) "dict-miss faults nothing" 0
    (Colstore.totals.Colstore.chunks_faulted - f1);
  (* a real scan of cold data does fault, and the planner sees the
     cold fraction *)
  let f2 = Colstore.totals.Colstore.chunks_faulted in
  let rows = Db.query_rows db "SELECT pid FROM parts WHERE pid < 50" in
  Alcotest.(check int) "selective cold scan answers" 49 (List.length rows);
  Alcotest.(check bool) "selective cold scan faulted few chunks" true
    (let d = Colstore.totals.Colstore.chunks_faulted - f2 in
     d >= 1 && d <= 4);
  let pt = Catalog.find_table (Db.catalog db) "parts" in
  Alcotest.(check bool) "cost model sees cold chunks" true
    (Optimizer.Cost.scan_access_factor pt > 1.0)

(* ------------------------- spill on = spill off, across workloads -- *)

let hetstream_testable : Xnf.Hetstream.t Alcotest.testable =
  Alcotest.testable
    (fun fmt s ->
      Format.fprintf fmt "stream of %d items" (Xnf.Hetstream.total_items s))
    Xnf.Hetstream.equal

let par_run ~domains c = Exec_par.run ~domains ~threshold:1 ~morsel_rows:17 c

(* row-store baseline (colstore off) vs the columnar path over a store
   whose chunks live partly in the spill file, serial and parallel *)
let check_sql_equiv ?join_method name db sql =
  let c = Db.compile_query ?join_method db sql in
  let expected = with_colstore false (fun () -> Exec.run c) in
  with_colstore true (fun () ->
      check_rows (name ^ " (serial)") expected (Exec.run c);
      List.iter
        (fun domains ->
          check_rows
            (Printf.sprintf "%s (@ %d domains)" name domains)
            expected (par_run ~domains c))
        [ 1; 4 ])

let check_extraction_equiv name db query =
  let c = Xnf.Xnf_compile.compile db query in
  let baseline =
    with_colstore false (fun () -> Xnf.Xnf_compile.extract ~cache:false c)
  in
  with_colstore true (fun () ->
      Alcotest.check hetstream_testable (name ^ " (serial)") baseline
        (Xnf.Xnf_compile.extract ~cache:false c);
      List.iter
        (fun domains ->
          Alcotest.check hetstream_testable
            (Printf.sprintf "%s (@ %d domains)" name domains)
            baseline
            (Xnf.Xnf_compile.extract_parallel ~domains ~threshold:1
               ~morsel_rows:17 ~cache:false c))
        [ 1; 4 ])

let test_equiv_oo1_spilled () =
  with_spill_env @@ fun () ->
  let db =
    Workloads.Oo1.generate { Workloads.Oo1.default with n_parts = 20_000 }
  in
  let conns_cs =
    (Catalog.find_table (Db.catalog db) "conns").Base_table.colstore
  in
  Alcotest.(check bool) "conns spilled" true (Colstore.cold_chunks conns_cs > 0);
  check_sql_equiv "oo1 scan+filter" db
    "SELECT cto, clength FROM conns WHERE clength < 500";
  check_sql_equiv ~join_method:`Hash "oo1 hash join" db
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_sql_equiv ~join_method:`Merge "oo1 merge join" db
    "SELECT c.cto FROM parts p, conns c WHERE p.pid = c.cfrom AND p.build < \
     5000";
  check_sql_equiv "oo1 aggregate" db
    "SELECT cfrom, COUNT(*), MIN(clength) FROM conns GROUP BY cfrom";
  check_extraction_equiv "oo1 parts graph" db Workloads.Oo1.parts_graph_query

let test_equiv_other_workloads () =
  with_spill_env @@ fun () ->
  let bom = Workloads.Bom.generate Workloads.Bom.default in
  check_sql_equiv ~join_method:`Hash "bom two-column hash key" bom
    "SELECT a.pid, b.pid FROM part a, part b WHERE a.level = b.level AND \
     a.pname = b.pname";
  check_sql_equiv "bom filter+join" bom
    "SELECT p.pid, c.child FROM part p, contains c WHERE p.pid = c.parent \
     AND p.level < 2";
  check_extraction_equiv "bom assembly" bom Workloads.Bom.assembly_query;
  let org = Workloads.Org.generate Workloads.Org.default in
  check_sql_equiv ~join_method:`Merge "org merge join" org
    "SELECT d.dno, e.eno FROM dept d, emp e WHERE d.dno = e.edno";
  check_sql_equiv "org subquery" org
    "SELECT eno FROM emp WHERE edno IN (SELECT dno FROM dept WHERE loc = \
     'ARC')";
  check_extraction_equiv "org deps" org Workloads.Org.deps_arc_query;
  let shop = Workloads.Shop.generate Workloads.Shop.default in
  check_sql_equiv "shop string filter join" shop
    "SELECT c.cid, o.oid FROM customer c, orders o WHERE c.cid = o.ocid AND \
     c.region = 'EMEA'";
  check_sql_equiv "shop float filter" shop
    "SELECT oid, total FROM orders WHERE total > 100.5 ORDER BY oid";
  check_extraction_equiv "shop region" shop (Workloads.Shop.region_query "EMEA")

let test_equiv_after_dml_and_rollback () =
  with_spill_env @@ fun () ->
  let db = org_db () in
  let verify tag =
    check_sql_equiv (tag ^ ": join") db
      "SELECT d.dno, e.eno, e.sal FROM dept d, emp e WHERE d.dno = e.edno \
       ORDER BY d.dno, e.eno";
    check_sql_equiv (tag ^ ": filter") db
      "SELECT eno, ename FROM emp WHERE sal > 85 ORDER BY eno";
    check_extraction_equiv (tag ^ ": extraction") db
      Workloads.Org.deps_arc_query
  in
  verify "initial";
  ignore (Db.exec db "INSERT INTO emp VALUES (14, 'eve', 150, 2)");
  ignore (Db.exec db "UPDATE emp SET sal = 95 WHERE eno = 11");
  ignore (Db.exec db "DELETE FROM emp WHERE eno = 13");
  verify "after dml";
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO emp VALUES (15, 'frank', 70, 1)");
  ignore (Db.exec db "UPDATE emp SET sal = 999 WHERE eno = 10");
  ignore (Db.exec db "DELETE FROM emp WHERE eno = 14");
  ignore (Db.exec db "ROLLBACK");
  verify "after rollback"

let test_drop_table_releases_spill () =
  with_spill_env @@ fun () ->
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE victim (a INT, b INT)");
  let buf = Buffer.create 4096 in
  for base = 0 to 49 do
    Buffer.clear buf;
    Buffer.add_string buf "INSERT INTO victim VALUES ";
    for i = 0 to 99 do
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "(%d, %d)" ((base * 100) + i) i)
    done;
    ignore (Db.exec db (Buffer.contents buf))
  done;
  let cs = (Catalog.find_table (Db.catalog db) "victim").Base_table.colstore in
  let mine = Colstore.resident_bytes cs + Colstore.spilled_bytes cs in
  let before = Colstore.global_resident_bytes () + Colstore.global_spilled_bytes () in
  ignore (Db.exec db "DROP TABLE victim");
  let after = Colstore.global_resident_bytes () + Colstore.global_spilled_bytes () in
  Alcotest.(check int) "drop reclaims the table's tier bytes" (before - mine) after;
  Alcotest.(check int) "store empty after drop" 0
    (Colstore.resident_bytes cs + Colstore.spilled_bytes cs)

let suite =
  [
    prop_int_roundtrip;
    prop_int_roundtrip_raw;
    prop_float_roundtrip;
    Alcotest.test_case "encoding shapes (FOR/RLE/raw, nulls)" `Quick
      test_encoding_shapes;
    Alcotest.test_case "eviction lifecycle under a 1 MB budget" `Quick
      test_eviction_lifecycle;
    Alcotest.test_case "MB=0 keeps everything hot" `Quick
      test_budget_off_stays_hot;
    Alcotest.test_case "pruned scans fault in zero chunks" `Quick
      test_pruned_scans_fault_nothing;
    Alcotest.test_case "spill equivalence: oo1 at spilling scale" `Quick
      test_equiv_oo1_spilled;
    Alcotest.test_case "spill equivalence: bom/org/shop" `Quick
      test_equiv_other_workloads;
    Alcotest.test_case "spill equivalence: dml + rollback" `Quick
      test_equiv_after_dml_and_rollback;
    Alcotest.test_case "drop table releases the spill file" `Quick
      test_drop_table_releases_spill;
  ]
