(** Write-path tests: batched DML victim scans, MVCC-lite snapshot
    reconstruction ([Heap.frozen_at] / [Snapshot]), snapshot-isolated
    reads through the daemon (committed pre-images while a writer's
    transaction is open), group commit, merge-join skip-scan
    knob-invariance, and cocache flush coalescing of adjacent DELETEs
    and UPDATEs. *)

open Helpers
open Relcore
module Db = Engine.Database
module Exec = Executor.Exec
module Exec_scalar = Executor.Exec_scalar
module H = Xnf.Hetstream
module Client = Net.Client
module Server = Net.Server
module Ws = Cocache.Workspace

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

let deps_arc_view = "CREATE VIEW deps_arc AS " ^ Workloads.Org.deps_arc_query

let deps_db () =
  let db = org_db () in
  ignore (Db.exec db deps_arc_view);
  db

let serialize_view db = H.serialize (Xnf.Xnf_compile.run_view db "deps_arc")

(* ------------------------------------------------- batched DML ---------- *)

let test_batched_dml () =
  let db = org_db () in
  let tbl = Catalog.find_table (Db.catalog db) "emp" in
  (match Db.exec db "UPDATE emp SET sal = sal + 1 WHERE sal >= 90" with
  | Db.Affected 3 -> ()
  | _ -> Alcotest.fail "batched UPDATE should affect 3 rows");
  check_rows "update applied"
    (rows_of_ints [ [ 101 ]; [ 91 ]; [ 121 ]; [ 80 ] ])
    (Db.query_rows db "SELECT sal FROM emp ORDER BY eno");
  (* autocommit published the new version *)
  Alcotest.(check int) "version published" (Base_table.version tbl)
    (Base_table.committed_version tbl);
  (match Db.exec db "DELETE FROM emp WHERE edno = 3" with
  | Db.Affected 1 -> ()
  | _ -> Alcotest.fail "batched DELETE should affect 1 row");
  check_rows "delete applied" (rows_of_ints [ [ 10 ]; [ 11 ]; [ 12 ] ])
    (Db.query_rows db "SELECT eno FROM emp ORDER BY eno");
  Alcotest.(check int) "version published after delete"
    (Base_table.version tbl)
    (Base_table.committed_version tbl)

(* The victim scan visits rows in descending rid order; [SET k = k + 1]
   on a dense unique column then frees each key before the next row
   claims it, so the statement succeeds end to end.  Pins the historical
   fold order the batch layer must preserve. *)
let test_dml_victim_order () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE u (k INT NOT NULL, PRIMARY KEY (k))");
  ignore (Db.exec db "INSERT INTO u VALUES (1), (2), (3), (4), (5)");
  (match Db.exec db "UPDATE u SET k = k + 1" with
  | Db.Affected 5 -> ()
  | _ -> Alcotest.fail "shift should affect all 5 rows");
  check_rows "keys shifted"
    (rows_of_ints [ [ 2 ]; [ 3 ]; [ 4 ]; [ 5 ]; [ 6 ] ])
    (Db.query_rows db "SELECT k FROM u ORDER BY k")

(* ------------------------------------------- frozen_at / Snapshot ------- *)

let test_frozen_at () =
  with_env "XNFDB_DELTA_LOG" "4096" @@ fun () ->
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (k INT, v INT)");
  ignore (Db.exec db "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  let tbl = Catalog.find_table (Db.catalog db) "t" in
  let v0 = Base_table.committed_version tbl in
  (* churn: overwrite, tombstone, append *)
  ignore (Db.exec db "UPDATE t SET v = 99 WHERE k = 2");
  ignore (Db.exec db "DELETE FROM t WHERE k = 3");
  ignore (Db.exec db "INSERT INTO t VALUES (4, 40)");
  let rows_of arr =
    Array.to_list arr
    |> List.filter_map Fun.id
    |> List.sort Tuple.compare
  in
  (match Base_table.frozen_at tbl v0 with
  | Some arr ->
    check_rows "pre-image reconstructed"
      (List.map (fun (k, v) -> row [ vi k; vi v ]) [ (1, 10); (2, 20); (3, 30) ])
      (rows_of arr)
  | None -> Alcotest.fail "undo window should answer for v0");
  (match Base_table.frozen_at tbl (Base_table.committed_version tbl) with
  | Some arr ->
    check_rows "current version = live rows"
      (List.map (fun (k, v) -> row [ vi k; vi v ]) [ (1, 10); (2, 99); (4, 40) ])
      (rows_of arr)
  | None -> Alcotest.fail "current version must be answerable");
  (* a version pinned inside a rolled-back txn lands in the rewind hole *)
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE t SET v = 0 WHERE k = 1");
  let v_dirty = Base_table.version tbl in
  ignore (Db.exec db "ROLLBACK");
  Alcotest.(check bool) "rewind hole refused" true
    (Base_table.frozen_at tbl v_dirty = None);
  (* ... while the pre-txn snapshot stays maintainable *)
  Alcotest.(check bool) "pre-txn snapshot survives rollback" true
    (Base_table.frozen_at tbl v0 <> None)

let test_snapshot_extract_quiesced () =
  with_env "XNFDB_DELTA_LOG" "4096" @@ fun () ->
  let db = deps_db () in
  (* churn, all autocommitted *)
  ignore (Db.exec db "UPDATE emp SET sal = sal + 5 WHERE edno = 1");
  ignore (Db.exec db "DELETE FROM projskills WHERE pssno = 34");
  ignore (Db.exec db "INSERT INTO emp VALUES (14, 'eve', 70, 2)");
  let reference = serialize_view db in
  let s = Snapshot.pin (Db.catalog db) in
  Fun.protect
    ~finally:(fun () -> Snapshot.release s)
    (fun () ->
      let ctx =
        Exec.make_ctx ~result_cache:false ~snapshot:(Snapshot.rows s) ()
      in
      let snap =
        H.serialize (Xnf.Xnf_compile.run ~ctx db Workloads.Org.deps_arc_query)
      in
      Alcotest.(check string)
        "snapshot extraction byte-identical on a quiesced db" reference snap;
      let sql = "SELECT eno, sal FROM emp ORDER BY eno" in
      check_rows "snapshot SQL query identical"
        (Db.query_rows db sql)
        (Db.query_rows ~ctx db sql))

let test_snapshot_sees_committed_only () =
  with_env "XNFDB_DELTA_LOG" "4096" @@ fun () ->
  let db = deps_db () in
  let before = Db.query_rows db "SELECT sal FROM emp WHERE eno = 10" in
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "UPDATE emp SET sal = sal * 2 WHERE eno = 10");
  (* pin while the txn is open: only published state is visible *)
  let s = Snapshot.pin (Db.catalog db) in
  Fun.protect
    ~finally:(fun () -> Snapshot.release s)
    (fun () ->
      let ctx =
        Exec.make_ctx ~result_cache:false ~snapshot:(Snapshot.rows s) ()
      in
      check_rows "snapshot hides uncommitted update" before
        (Db.query_rows ~ctx db "SELECT sal FROM emp WHERE eno = 10"));
  ignore (Db.exec db "ROLLBACK");
  check_rows "rollback restores" before
    (Db.query_rows db "SELECT sal FROM emp WHERE eno = 10")

(* ------------------------------------------------- group commit --------- *)

let test_group_commit_unit () =
  let gc = Engine.Group_commit.create () in
  let m = Mutex.create () in
  let inside = ref 0 and peak = ref 0 and total = ref 0 in
  let exclusive f =
    Mutex.protect m (fun () ->
        incr inside;
        if !inside > !peak then peak := !inside;
        f ();
        decr inside)
  in
  let n = 6 in
  let domains =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Engine.Group_commit.submit gc ~exclusive (fun () -> incr total)))
  in
  let batches_seen = List.map Domain.join domains in
  Alcotest.(check int) "every job ran exactly once" n !total;
  Alcotest.(check int) "exclusive sections never overlap" 1 !peak;
  List.iter
    (fun b -> Alcotest.(check bool) "batch size sane" true (b >= 1 && b <= n))
    batches_seen;
  let batches, committed, max_batch = Engine.Group_commit.stats gc in
  Alcotest.(check int) "all jobs committed" n committed;
  Alcotest.(check bool) "batches cover jobs" true (batches >= 1 && batches <= n);
  Alcotest.(check bool) "max batch sane" true (max_batch >= 1 && max_batch <= n);
  (* a job's own exception re-raises on its submitter, nobody else *)
  (match
     Engine.Group_commit.submit gc ~exclusive (fun () -> failwith "boom")
   with
  | _ -> Alcotest.fail "job exception must re-raise"
  | exception Failure m -> Alcotest.(check string) "same exn" "boom" m);
  Alcotest.(check int) "failed job still drained" (n + 1)
    (let _, c, _ = Engine.Group_commit.stats gc in
     c)

(* ------------------------------------------- flush coalescing ----------- *)

let deps_arc_text = Workloads.Org.deps_arc_query

let load_workspace db = Ws.of_stream (Xnf.Xnf_compile.run db deps_arc_text)

let node_named ws comp col name =
  List.find
    (fun n -> Value.to_string (Ws.get ws n col) = name)
    (Ws.nodes ws comp)

let test_flush_coalesces_deletes () =
  let db = org_db () in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  let ws = load_workspace db in
  Ws.delete ws (node_named ws "xemp" "ename" "ben");
  Ws.delete ws (node_named ws "xemp" "ename" "carol");
  let sqls = Cocache.Update.flush db ast ws in
  Alcotest.(check int) "two deletes ride one statement" 1 (List.length sqls);
  check_rows "both rows gone, others intact" (rows_of_ints [ [ 10 ]; [ 13 ] ])
    (Db.query_rows db "SELECT eno FROM emp ORDER BY eno")

let test_flush_coalesces_updates () =
  let db = org_db () in
  let ast = Xnf.Xnf_parser.parse deps_arc_text in
  let ws = load_workspace db in
  (* identical constant SET on two nodes: guarded OR-merge *)
  Ws.update ws (node_named ws "xemp" "ename" "anna") [ ("sal", vi 200) ];
  Ws.update ws (node_named ws "xemp" "ename" "ben") [ ("sal", vi 200) ];
  let sqls = Cocache.Update.flush db ast ws in
  Alcotest.(check int) "two updates ride one statement" 1 (List.length sqls);
  check_rows "both updated"
    (rows_of_ints [ [ 200 ]; [ 200 ]; [ 120 ]; [ 80 ] ])
    (Db.query_rows db "SELECT sal FROM emp ORDER BY eno");
  (* different SET values must NOT merge *)
  let ws = load_workspace db in
  Ws.update ws (node_named ws "xemp" "ename" "anna") [ ("sal", vi 300) ];
  Ws.update ws (node_named ws "xemp" "ename" "ben") [ ("sal", vi 301) ];
  let sqls = Cocache.Update.flush db ast ws in
  Alcotest.(check int) "distinct sets stay separate" 2 (List.length sqls);
  check_rows "applied independently"
    (rows_of_ints [ [ 300 ]; [ 301 ] ])
    (Db.query_rows db "SELECT sal FROM emp WHERE eno <= 11 ORDER BY eno")

(* ------------------------------------------- merge-join skip-scan ------- *)

let test_merge_join_skipscan () =
  with_env "XNFDB_JOINFILTER" "1" @@ fun () ->
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE lhs (k INT, a INT)");
  ignore (Db.exec db "CREATE TABLE rhs (k INT, b INT)");
  (* duplicate keys and mostly-disjoint ranges: the band filter prunes
     both sides, and tied keys must keep their input order *)
  let ins tbl lo hi =
    for k = lo to hi do
      ignore
        (Db.exec db
           (Printf.sprintf "INSERT INTO %s VALUES (%d, %d), (%d, %d)" tbl k
              (k * 10) k ((k * 10) + 1)))
    done
  in
  ins "lhs" 1 40;
  ins "rhs" 35 80;
  let sql = "SELECT l.k, l.a, r.b FROM lhs l, rhs r WHERE l.k = r.k" in
  let c = Db.compile_query ~join_method:`Merge db sql in
  let ctx = Exec.make_ctx () in
  let on_rows = Exec.run ~ctx c in
  Alcotest.(check bool) "band filter pruned rows" true
    (ctx.Exec.jf_rows_skipped > 0);
  check_rows "batched = scalar with skip-scan on" (Exec_scalar.run c) on_rows;
  (* knob off: byte-identical rows *)
  with_env "XNFDB_JOINFILTER" "0" (fun () ->
      check_rows "knob-off rows identical" on_rows (Exec.run c);
      check_rows "knob-off scalar identical" on_rows (Exec_scalar.run c))

(* ------------------------------------------- daemon: snapshot reads ----- *)

let test_server_snapshot_read () =
  with_env "XNFDB_DELTA_LOG" "4096" @@ fun () ->
  with_env "XNFDB_SNAPSHOT" "1" @@ fun () ->
  Test_net.with_server ~setup:Test_net.org_setup (fun addr _db t ->
      let reference = serialize_view (deps_db ()) in
      let writer = Client.connect addr in
      let reader = Client.connect addr in
      Fun.protect
        ~finally:(fun () ->
          Client.close writer;
          Client.close reader)
        (fun () ->
          ignore (Client.exec writer "BEGIN");
          ignore (Client.exec writer "UPDATE emp SET sal = sal * 2 WHERE eno = 10");
          (* another session's open txn: the reader must see committed
             pre-images, served lock-free off a snapshot *)
          check_rows "reader sees committed value"
            (rows_of_ints [ [ 100 ] ])
            (Client.query_rows reader "SELECT sal FROM emp WHERE eno = 10");
          Alcotest.(check bool) "stream byte-identical to pre-txn state" true
            (H.serialize (Client.extract reader "deps_arc") = reference);
          let c = Server.counters t in
          Alcotest.(check bool) "snapshot path engaged" true
            (c.Server.snap_reads >= 1);
          (* knob off mid-flight: the legacy locked read shows the dirty
             uncommitted value — pins that [XNFDB_SNAPSHOT=0] is exactly
             the historical behavior *)
          with_env "XNFDB_SNAPSHOT" "0" (fun () ->
              check_rows "knob off reads the legacy dirty state"
                (rows_of_ints [ [ 200 ] ])
                (Client.query_rows reader "SELECT sal FROM emp WHERE eno = 10"));
          ignore (Client.exec writer "ROLLBACK");
          check_rows "after rollback everyone agrees"
            (rows_of_ints [ [ 100 ] ])
            (Client.query_rows reader "SELECT sal FROM emp WHERE eno = 10");
          Alcotest.(check bool) "stream back to reference" true
            (H.serialize (Client.extract reader "deps_arc") = reference);
          let text = Client.stats reader in
          Alcotest.(check bool) "stats mention snapshot" true
            (Test_net.contains text "snapshot");
          Alcotest.(check bool) "stats mention group commit" true
            (Test_net.contains text "group commit")))

(* Randomized soak: one writer races DML (committed and rolled back)
   against extracting readers; every stream a reader ever observes must
   be byte-identical to SOME committed state — never a torn or dirty
   cut.  The committed states are generated on a reference database
   BEFORE the server applies them, so the server can only lag the
   reference list. *)
let test_server_soak () =
  with_env "XNFDB_DELTA_LOG" "4096" @@ fun () ->
  with_env "XNFDB_SNAPSHOT" "1" @@ fun () ->
  with_env "XNFDB_GROUP_COMMIT" "1" @@ fun () ->
  Test_net.with_server ~setup:Test_net.org_setup (fun addr _db t ->
      let refdb = deps_db () in
      let refs_mu = Mutex.create () in
      let refs = ref [ serialize_view refdb ] in
      let stop = Atomic.make false in
      let writer () =
        let cl = Client.connect addr in
        Fun.protect
          ~finally:(fun () ->
            Atomic.set stop true;
            Client.close cl)
          (fun () ->
            for r = 1 to 12 do
              if r mod 3 = 0 then begin
                (* rolled back: must never be observed *)
                ignore (Client.exec cl "BEGIN");
                ignore
                  (Client.exec cl
                     "UPDATE emp SET sal = sal + 1000 WHERE edno = 1");
                ignore (Client.exec cl "ROLLBACK")
              end
              else begin
                let sql =
                  Printf.sprintf
                    "UPDATE emp SET sal = sal + 7 WHERE edno = %d"
                    ((r mod 2) + 1)
                in
                (* reference first: server state always lags [refs] *)
                ignore (Db.exec refdb sql);
                let snap = serialize_view refdb in
                Mutex.protect refs_mu (fun () -> refs := snap :: !refs);
                ignore (Client.exec cl "BEGIN");
                ignore (Client.exec cl sql);
                ignore (Client.exec cl "COMMIT")
              end
            done;
            Ok 0)
      in
      let reader i () =
        try
          let cl = Client.connect ~client_name:(Printf.sprintf "r%d" i) addr in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              let n = ref 0 in
              while (not (Atomic.get stop)) && !n < 200 do
                incr n;
                let s = H.serialize (Client.extract cl "deps_arc") in
                let known =
                  Mutex.protect refs_mu (fun () -> List.mem s !refs)
                in
                if not known then
                  failwith
                    (Printf.sprintf "r%d: observed a non-committed state" i)
              done;
              Ok !n)
        with e -> Stdlib.Error (Printexc.to_string e)
      in
      let domains =
        Domain.spawn writer :: List.init 3 (fun i -> Domain.spawn (reader i))
      in
      let results = List.map Domain.join domains in
      List.iter
        (function
          | Ok _ -> ()
          | Stdlib.Error m -> Alcotest.failf "soak worker failed: %s" m)
        results;
      (* quiesced: the server converged on the last committed state *)
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          Alcotest.(check bool) "final state = last reference" true
            (H.serialize (Client.extract cl "deps_arc")
            = List.hd !refs));
      let c = Server.counters t in
      Alcotest.(check bool) "no protocol errors" true (c.Server.errors = 0);
      Alcotest.(check bool) "group commit drained the COMMITs" true
        (c.Server.gc_commits >= 8))

(* Knob-off equivalence: with [XNFDB_SNAPSHOT=0] and
   [XNFDB_GROUP_COMMIT=0] the same autocommit workload produces
   byte-identical results through the daemon. *)
let test_server_knobs_off () =
  with_env "XNFDB_SNAPSHOT" "0" @@ fun () ->
  with_env "XNFDB_GROUP_COMMIT" "0" @@ fun () ->
  Test_net.with_server ~setup:Test_net.org_setup (fun addr _db t ->
      let refdb = deps_db () in
      let cl = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          List.iter
            (fun sql ->
              ignore (Db.exec refdb sql);
              ignore (Client.exec cl sql))
            [
              "UPDATE emp SET sal = sal + 3 WHERE edno = 1";
              "DELETE FROM projskills WHERE pssno = 34";
              "INSERT INTO emp VALUES (15, 'fred', 75, 2)";
            ];
          (* explicit COMMIT takes the plain (non-grouped) path *)
          ignore (Client.exec cl "BEGIN");
          ignore (Client.exec cl "UPDATE emp SET sal = sal - 2 WHERE eno = 15");
          ignore (Client.exec cl "COMMIT");
          ignore (Db.exec refdb "UPDATE emp SET sal = sal - 2 WHERE eno = 15");
          ignore (Client.exec cl "BEGIN");
          ignore (Client.exec cl "UPDATE emp SET sal = 1 WHERE eno = 15");
          ignore (Client.exec cl "ROLLBACK");
          Alcotest.(check bool) "knob-off daemon byte-identical" true
            (H.serialize (Client.extract cl "deps_arc")
            = serialize_view refdb);
          let c = Server.counters t in
          Alcotest.(check int) "no snapshot reads with the knob off" 0
            c.Server.snap_reads;
          Alcotest.(check int) "no group commits with the knob off" 0
            c.Server.gc_commits))

let suite =
  [
    Alcotest.test_case "batched UPDATE/DELETE" `Quick test_batched_dml;
    Alcotest.test_case "victim scan order" `Quick test_dml_victim_order;
    Alcotest.test_case "frozen_at reconstruction" `Quick test_frozen_at;
    Alcotest.test_case "snapshot extract quiesced" `Quick
      test_snapshot_extract_quiesced;
    Alcotest.test_case "snapshot hides uncommitted" `Quick
      test_snapshot_sees_committed_only;
    Alcotest.test_case "group commit unit" `Quick test_group_commit_unit;
    Alcotest.test_case "flush coalesces deletes" `Quick
      test_flush_coalesces_deletes;
    Alcotest.test_case "flush coalesces updates" `Quick
      test_flush_coalesces_updates;
    Alcotest.test_case "merge-join skip-scan" `Quick test_merge_join_skipscan;
    Alcotest.test_case "daemon: snapshot read" `Quick test_server_snapshot_read;
    Alcotest.test_case "daemon: mixed r/w soak" `Quick test_server_soak;
    Alcotest.test_case "daemon: knobs off" `Quick test_server_knobs_off;
  ]
