(** The query evaluation system: demand-driven, pipelined interpretation
    of QEPs ("table queue evaluation", paper Sect. 3.1), executed a
    {e batch} at a time.

    Each plan operator becomes a batch iterator supplying
    {!Relcore.Batch.t} values on demand, so per-tuple closure dispatch
    is amortized over [Batch.default_capacity] rows.  [Filter] and
    [Distinct] mark surviving rows in the batch's selection vector
    instead of copying; [Shared] nodes materialize once into the
    execution context as batch lists re-read by every consumer — the
    runtime half of XNF's common-subexpression sharing.  The one-tuple
    API ({!cursor}, {!to_seq}) is a thin adapter over the batched
    pipeline. *)

open Relcore
module Plan = Optimizer.Plan
module Ast = Sqlkit.Ast

(** An execution context, shared across the (possibly many) plans of one
    multi-output query. *)
type ctx = {
  shared : (int, Batch.t list) Hashtbl.t;
  (* materialized join inners, keyed by physical plan identity: running
     two plans (or one plan twice) that share an inner subplan object
     re-reads the first materialization instead of re-draining it *)
  mutable materialized : (Plan.t * Batch.t list) list;
  batch_capacity : int; (* rows per batch for this query's table queues *)
  result_cache : bool; (* promote CSE materializations to Result_cache *)
  snapshot : (Base_table.t -> Tuple.t option array) option;
  (* MVCC-lite: when set, every base-table access reads through this
     frozen slot-array view instead of the live heap.  Columnar scans,
     live index probes, and cross-query caches are bypassed — they see
     rows newer than the pinned epoch.  [Snapshot.Stale] may escape any
     access once the undo window has been outrun. *)
  mutable rows_scanned : int; (* base-table tuples fetched *)
  mutable subqueries_run : int; (* correlated subplan executions *)
  mutable batches_emitted : int; (* batches delivered at plan roots *)
  mutable materializations : int; (* shared/inner drain runs (cache misses) *)
  mutable chunks_scanned : int; (* colstore chunks whose rows were visited *)
  mutable chunks_skipped : int; (* colstore chunks zone-pruned wholesale *)
  mutable rows_materialized : int; (* heap tuples fetched by columnar scans *)
  mutable chunks_faulted : int; (* cold colstore chunks read from the spill file *)
  mutable bytes_faulted : int; (* encoded bytes copied back by those reads *)
  mutable jf_built : int; (* sideways join filters built *)
  mutable jf_chunks_skipped : int; (* probe chunks pruned by join-filter range *)
  mutable jf_rows_skipped : int; (* probe rows dropped by a join filter *)
  mutable jf_dropped : int; (* join filters adaptively disabled *)
  mutable analyze : Opstats.t option;
  (* EXPLAIN ANALYZE accumulator: when set, [open_plan] wraps every
     numbered operator with wall-time / row attribution.  Only the
     query's main domain may own one — [sibling_ctx] drops it so
     parallel helpers never mutate it concurrently (the parallel
     executor has its own per-worker partials). *)
}

let make_ctx ?batch_capacity ?result_cache ?snapshot () =
  {
    shared = Hashtbl.create 8;
    materialized = [];
    batch_capacity =
      (match batch_capacity with
      | Some c -> max 1 c
      | None -> Batch.default_capacity ());
    result_cache =
      (match result_cache with
      | Some b -> b
      | None -> Result_cache.enabled ());
    snapshot;
    rows_scanned = 0;
    subqueries_run = 0;
    batches_emitted = 0;
    materializations = 0;
    chunks_scanned = 0;
    chunks_skipped = 0;
    rows_materialized = 0;
    chunks_faulted = 0;
    bytes_faulted = 0;
    jf_built = 0;
    jf_chunks_skipped = 0;
    jf_rows_skipped = 0;
    jf_dropped = 0;
    analyze = None;
  }

(* Fold a scan's fault counters into the ctx and the process totals,
   then re-arm the per-scan record.  Scan-side fault accounting flows
   only through caller-owned [scan_stats] (see Colstore), so this is
   the single point where it reaches shared state. *)
let flush_faults (ctx : ctx) (sst : Colstore.scan_stats) =
  if sst.Colstore.faulted > 0 || sst.Colstore.fbytes > 0 then begin
    ctx.chunks_faulted <- ctx.chunks_faulted + sst.Colstore.faulted;
    ctx.bytes_faulted <- ctx.bytes_faulted + sst.Colstore.fbytes;
    Colstore.add_totals ~faulted:sst.Colstore.faulted ~fbytes:sst.Colstore.fbytes
      ~scanned:0 ~skipped:0 ~materialized:0 ();
    sst.Colstore.faulted <- 0;
    sst.Colstore.fbytes <- 0
  end

exception Cached_batches of Batch.t list

type iter = unit -> Tuple.t option
type batch_iter = unit -> Batch.t option

(* hot-loop truth test: avoids the polymorphic [= Some true] compare *)
let[@inline] is_true = function Some true -> true | Some false | None -> false

(* value-keyed hash table for the single-column join fast path (skips
   the per-row key-tuple allocation and array hashing) *)
module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* int-keyed table for the all-integer join-key case: a multiplicative
   hash stays out of the runtime's generic-hash C call, and odd-constant
   multiplication is a bijection mod the (power-of-two) bucket count, so
   sequential keys cannot collide *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash i = (i * 0x9E3779B1) land max_int
end)

(* the single-column build table, specialized by key type after the
   build side is drained *)
type single_key_table =
  | T_int of Tuple.t list Itbl.t (* every build key was a [Value.Int] *)
  | T_val of Tuple.t list Vtbl.t

let iter_of_batches (bs : Batch.t list) : batch_iter =
  let rest = ref bs in
  fun () ->
    match !rest with
    | [] -> None
    | b :: tl ->
      rest := tl;
      Some b

let drain_batches (it : batch_iter) : Batch.t list =
  let rec go acc = match it () with None -> List.rev acc | Some b -> go (b :: acc) in
  go []

(** Pack rows produced by repeated [step] calls into dense batches.
    [step ~emit] advances the producer by one unit of input (typically
    one upstream batch), calling [emit] per output row; it returns
    [false] once the input is exhausted. *)
let pack ?capacity (step : emit:(Tuple.t -> unit) -> bool) : batch_iter =
  let capacity =
    match capacity with Some c -> c | None -> Batch.default_capacity ()
  in
  let ready = Queue.create () in
  let cur = ref (Batch.create ~capacity ()) in
  let finished = ref false in
  let emit row =
    Batch.push !cur row;
    if Batch.is_full !cur then begin
      Queue.push !cur ready;
      cur := Batch.create ~capacity ()
    end
  in
  let rec next () =
    if not (Queue.is_empty ready) then Some (Queue.pop ready)
    else if !finished then begin
      let b = !cur in
      cur := Batch.create ~capacity:1 ();
      if Batch.is_empty b then None else Some b
    end
    else begin
      if not (step ~emit) then finished := true;
      next ()
    end
  in
  next

(** Compiled key extractor: writes key values into [scratch], returns
    false if any is NULL (null keys never join). *)
let make_key_fn (frames : Eval.frames) (keys : Plan.scalar list) =
  let fs = Array.of_list (List.map Eval.compile_scalar_fn keys) in
  let n = Array.length fs in
  let scratch = Array.make n Value.Null in
  let extract row =
    let ok = ref true in
    for k = 0 to n - 1 do
      let v = fs.(k) frames row in
      if Value.is_null v then ok := false;
      scratch.(k) <- v
    done;
    !ok
  in
  (extract, scratch)

(* [open_plan] is the attribution shim: with EXPLAIN ANALYZE armed it
   clocks the open and every pull of each numbered operator (inclusive
   times — the recursion wraps children too) and counts output rows
   {e after} selection vectors, so a child's rows are exactly its
   parent's input.  Nodes outside the numbered tree (id -1, e.g. plans
   synthesized mid-flight) pass through untouched, as does everything
   when [ctx.analyze] is [None]. *)
let rec open_plan (ctx : ctx) (frames : Eval.frames) (p : Plan.t) : batch_iter =
  match ctx.analyze with
  | None -> open_plan_raw ctx frames p
  | Some acc ->
    let id = Opstats.id_of acc p in
    if id < 0 then open_plan_raw ctx frames p
    else begin
      let t0 = Opstats.now () in
      let it = open_plan_raw ctx frames p in
      Opstats.note_open acc id (Opstats.now () -. t0);
      fun () ->
        let t0 = Opstats.now () in
        let r = it () in
        let dt = Opstats.now () -. t0 in
        (match r with
        | Some b -> Opstats.add_batch acc id ~dt ~rows:(Batch.length b)
        | None -> Opstats.add_time acc id dt);
        r
    end

and open_plan_raw (ctx : ctx) (frames : Eval.frames) (p : Plan.t) : batch_iter =
  match p with
  | Plan.Scan t -> (
    match ctx.snapshot with
    | Some frozen ->
      (* snapshot scan: walk the frozen slot array in slot order — the
         same order the live heap scan visits — skipping tombstones *)
      let arr = frozen t in
      let n = Array.length arr in
      let i = ref 0 in
      pack ~capacity:ctx.batch_capacity (fun ~emit ->
          if !i >= n then false
          else begin
            let stop = min n (!i + ctx.batch_capacity) in
            while !i < stop do
              (match Array.unsafe_get arr !i with
              | Some row ->
                ctx.rows_scanned <- ctx.rows_scanned + 1;
                emit row
              | None -> ());
              incr i
            done;
            true
          end)
    | None ->
    (* batches grow geometrically from a small first batch so a Limit
       just above the scan stays nearly as lazy as tuple-at-a-time *)
    let cap = ref (min 64 ctx.batch_capacity) in
    let slot = ref 0 in
    let exhausted = ref false in
    fun () ->
      if !exhausted then None
      else begin
        let b = Batch.create ~capacity:!cap () in
        cap := min ctx.batch_capacity (!cap * 4);
        let next_slot, n =
          Base_table.scan_into t ~from:!slot b.Batch.rows ~start:0
            ~max:(Batch.capacity b)
        in
        slot := next_slot;
        b.Batch.len <- n;
        ctx.rows_scanned <- ctx.rows_scanned + n;
        if n = 0 then begin
          exhausted := true;
          None
        end
        else Some b
      end)
  | Plan.Values rows ->
    iter_of_batches (Batch.of_list ~capacity:ctx.batch_capacity rows)
  | Plan.Filter (input, pred) -> begin
    (* columnar access path: when the subtree is Filter*(Scan) and at
       least one conjunct compiles to an unboxed chunk kernel, evaluate
       against the column arrays — zone-pruned, selection-vectored,
       with heap tuples materialized only for surviving rows.  Bypassed
       under a snapshot: the colstore mirror tracks the live heap, not
       the pinned epoch. *)
    match (if ctx.snapshot = None then Colscan.of_plan p else None) with
    | Some cs -> open_colscan ctx frames cs
    | None ->
      let it = open_plan ctx frames input in
      let test = compile_pred ctx pred in
      let rec next () =
        match it () with
        | None -> None
        | Some b ->
          Eval.select_batch frames b test;
          if Batch.is_empty b then next () else Some b
      in
      next
  end
  | Plan.Project
      ( (( Plan.Hash_join { residual = Plan.P_true; _ }
         | Plan.Index_join { residual = Plan.P_true; _ } ) as join),
        cols )
    when Array.for_all (function Plan.P_col _ -> true | _ -> false) cols ->
    (* late materialization: fuse a pure-column projection into the
       join's emit so only the referenced columns flow through the
       output table queue — the full concatenated tuple is never built *)
    let picks =
      Array.map (function Plan.P_col i -> i | _ -> assert false) cols
    in
    let n = Array.length picks in
    let mk_row row m =
      let w = Array.length row in
      let out = Array.make n Value.Null in
      for k = 0 to n - 1 do
        let i = picks.(k) in
        out.(k) <- (if i < w then row.(i) else m.(i - w))
      done;
      out
    in
    (match join with
    | Plan.Hash_join
        { build; probe; build_keys; probe_keys; residual = _; jfilter } ->
      open_hash_join ctx frames ~mk_row ~build ~probe ~build_keys ~probe_keys
        ~residual:Plan.P_true ~jfilter
    | Plan.Index_join { outer; table; index; keys; residual = _ } ->
      open_index_join ctx frames ~mk_row ~outer ~table ~index ~keys
        ~residual:Plan.P_true
    | _ -> assert false)
  | Plan.Project (input, cols) ->
    let it = open_plan ctx frames input in
    let project = Eval.compile_project cols in
    fun () ->
      (match it () with
      | None -> None
      | Some b -> Some (project frames b))
  | Plan.Nl_join { outer; inner; cond } ->
    let outer_it = open_plan ctx frames outer in
    let inner_bs = lazy (materialize ctx frames inner) in
    let test = compile_pred ctx cond in
    pack ~capacity:ctx.batch_capacity (fun ~emit ->
        match outer_it () with
        | None -> false
        | Some ob ->
          let inner_bs = Lazy.force inner_bs in
          Batch.iter
            (fun o ->
              List.iter
                (Batch.iter (fun i ->
                     let t = Tuple.concat o i in
                     if is_true (test frames t) then emit t))
                inner_bs)
            ob;
          true)
  | Plan.Hash_join { build; probe; build_keys; probe_keys; residual; jfilter }
    ->
    open_hash_join ctx frames ~mk_row:Tuple.concat ~build ~probe ~build_keys
      ~probe_keys ~residual ~jfilter
  | Plan.Index_join { outer; table; index; keys; residual } ->
    open_index_join ctx frames ~mk_row:Tuple.concat ~outer ~table ~index ~keys
      ~residual
  | Plan.Merge_join { left; right; left_keys; right_keys; residual } ->
    (* sort both sides on their key values, then merge equal groups *)
    let keyed plan keys =
      let kfs = List.map Eval.compile_scalar_fn keys in
      let rows = Array.of_list (Batch.list_to_rows (materialize ctx frames plan)) in
      let with_keys =
        Array.map
          (fun row ->
            (Array.of_list (List.map (fun f -> f frames row) kfs), row))
          rows
      in
      (* null keys never join: drop them, as the hash join does *)
      Array.of_list
        (List.filter
           (fun (k, _) -> not (Array.exists Value.is_null k))
           (Array.to_list with_keys))
    in
    (* skip-scan band filter: a row whose key falls outside the other
       side's [min, max] key range can never find a merge partner, so it
       is dropped before paying for the sort.  Exact (no false drops)
       and order-preserving, hence byte-identical output; gated with the
       other sideways join filters. *)
    let band_filter l r =
      if Array.length l = 0 || Array.length r = 0 then (l, r)
      else begin
        let range side =
          let lo = ref (fst side.(0)) and hi = ref (fst side.(0)) in
          Array.iter
            (fun (k, _) ->
              if Tuple.compare k !lo < 0 then lo := k;
              if Tuple.compare k !hi > 0 then hi := k)
            side;
          (!lo, !hi)
        in
        let llo, lhi = range l and rlo, rhi = range r in
        let lo = if Tuple.compare llo rlo > 0 then llo else rlo in
        let hi = if Tuple.compare lhi rhi < 0 then lhi else rhi in
        let keep side =
          let kept =
            Array.of_list
              (List.filter
                 (fun (k, _) ->
                   Tuple.compare k lo >= 0 && Tuple.compare k hi <= 0)
                 (Array.to_list side))
          in
          let dropped = Array.length side - Array.length kept in
          if dropped > 0 then begin
            ctx.jf_rows_skipped <- ctx.jf_rows_skipped + dropped;
            Bloom.add_totals ~built:0 ~chunks:0 ~rows:dropped ~dropped:0
          end;
          kept
        in
        (keep l, keep r)
      end
    in
    (* tied keys sort in input order (an explicit position tiebreaker),
       so the run order — and with it the output — does not depend on
       which out-of-band rows the band filter removed *)
    let sort side =
      let dec = Array.mapi (fun i (k, row) -> (k, i, row)) side in
      Array.sort
        (fun (k1, i1, _) (k2, i2, _) ->
          let c = Tuple.compare k1 k2 in
          if c <> 0 then c else Int.compare i1 i2)
        dec;
      Array.map (fun (k, _, row) -> (k, row)) dec
    in
    let sides =
      lazy
        (let l = keyed left left_keys and r = keyed right right_keys in
         let l, r = if Bloom.enabled () then band_filter l r else (l, r) in
         (sort l, sort r))
    in
    let test = compile_pred ctx residual in
    (* current output group: cross product of equal-key runs *)
    let li = ref 0 and ri = ref 0 in
    let rec refill () =
      let l, r = Lazy.force sides in
      if !li >= Array.length l || !ri >= Array.length r then None
      else begin
        let lk, _ = l.(!li) and rk, _ = r.(!ri) in
        let c = Tuple.compare lk rk in
        if c < 0 then begin
          incr li;
          refill ()
        end
        else if c > 0 then begin
          incr ri;
          refill ()
        end
        else begin
          (* collect both runs *)
          let lstart = !li and rstart = !ri in
          while !li < Array.length l && Tuple.compare (fst l.(!li)) lk = 0 do
            incr li
          done;
          while !ri < Array.length r && Tuple.compare (fst r.(!ri)) rk = 0 do
            incr ri
          done;
          let acc = ref [] in
          for i = lstart to !li - 1 do
            for j = rstart to !ri - 1 do
              acc := Tuple.concat (snd l.(i)) (snd r.(j)) :: !acc
            done
          done;
          Some (List.rev !acc)
        end
      end
    in
    pack ~capacity:ctx.batch_capacity (fun ~emit ->
        match refill () with
        | None -> false
        | Some group ->
          List.iter (fun t -> if is_true (test frames t) then emit t) group;
          true)
  | Plan.Distinct input ->
    let it = open_plan ctx frames input in
    let seen = Tuple.Tbl.create 256 in
    let rec next () =
      match it () with
      | None -> None
      | Some b ->
        Batch.refine b (fun t ->
            if Tuple.Tbl.mem seen t then false
            else begin
              Tuple.Tbl.add seen t ();
              true
            end);
        if Batch.is_empty b then next () else Some b
    in
    next
  | Plan.Aggregate { input; keys; aggs } ->
    let result =
      lazy
        (let it = open_plan ctx frames input in
         let afs =
           Array.of_list
             (List.map
                (fun (a : Plan.agg_spec) ->
                  match a.Plan.agg_arg with
                  | Some s ->
                    let f = Eval.compile_scalar_fn s in
                    fun row -> f frames row
                  | None -> fun _ -> Value.Int 1)
                aggs)
         in
         let new_accs () =
           Array.map (fun a -> Agg_acc.create a.Plan.agg_fn) (Array.of_list aggs)
         in
         let rec fill add_row =
           match it () with
           | None -> ()
           | Some b ->
             Batch.iter add_row b;
             fill add_row
         in
         match keys with
         | [ k ] ->
           (* single grouping column: hash the key value directly *)
           let groups = Vtbl.create 64 in
           let order = ref [] in
           let kf = Eval.compile_scalar_fn k in
           fill (fun row ->
               let v = kf frames row in
               let accs =
                 match Vtbl.find groups v with
                 | accs -> accs
                 | exception Not_found ->
                   let accs = new_accs () in
                   Vtbl.add groups v accs;
                   order := v :: !order;
                   accs
               in
               for i = 0 to Array.length afs - 1 do
                 Agg_acc.add accs.(i) (afs.(i) row)
               done);
           List.rev_map
             (fun v ->
               let accs = Vtbl.find groups v in
               Tuple.concat [| v |] (Array.map Agg_acc.result accs))
             !order
         | _ ->
           let groups = Tuple.Tbl.create 64 in
           let order = ref [] in
           let kfs = Array.of_list (List.map Eval.compile_scalar_fn keys) in
           fill (fun row ->
               let key = Array.map (fun f -> f frames row) kfs in
               let accs =
                 match Tuple.Tbl.find groups key with
                 | accs -> accs
                 | exception Not_found ->
                   let accs = new_accs () in
                   Tuple.Tbl.add groups key accs;
                   order := key :: !order;
                   accs
               in
               for i = 0 to Array.length afs - 1 do
                 Agg_acc.add accs.(i) (afs.(i) row)
               done);
           let emit key =
             let accs = Tuple.Tbl.find groups key in
             Tuple.concat key (Array.map Agg_acc.result accs)
           in
           if Tuple.Tbl.length groups = 0 && keys = [] then
             (* global aggregate over empty input: identity row *)
             [ Array.of_list
                 (List.map (fun a -> Agg_acc.empty_result a.Plan.agg_fn) aggs) ]
           else List.rev_map emit !order)
    in
    let it = ref None in
    fun () ->
      (match !it with
      | Some i -> i ()
      | None ->
        let i =
          iter_of_batches
            (Batch.of_list ~capacity:ctx.batch_capacity (Lazy.force result))
        in
        it := Some i;
        i ())
  | Plan.Sort (input, specs) ->
    let sorted =
      lazy
        (let rows =
           Array.of_list (Batch.list_to_rows (drain_batches (open_plan ctx frames input)))
         in
         (* decorate-sort-undecorate: pull each row's key vector out
            once (an O(n) pass) instead of chasing row.(i) pointers in
            every one of the O(n log n) comparisons *)
         let n = Array.length rows in
         let specs_a = Array.of_list specs in
         let k = Array.length specs_a in
         let dirs =
           Array.map (fun (_, d) -> match d with `Asc -> 1 | `Desc -> -1) specs_a
         in
         let keys = Array.make (max 1 (n * k)) Value.Null in
         for r = 0 to n - 1 do
           let row = rows.(r) in
           for j = 0 to k - 1 do
             keys.((r * k) + j) <- row.(fst specs_a.(j))
           done
         done;
         let idx = Array.init n Fun.id in
         (* single all-int key: sort over an unboxed int array (the
            usual case when the key rode in from a colstore Tint
            column), skipping the polymorphic compare entirely *)
         let int_keys =
           if k = 1 then begin
             let ik = Array.make (max 1 n) 0 in
             let ok = ref true in
             (try
                for r = 0 to n - 1 do
                  match keys.(r) with
                  | Value.Int i -> ik.(r) <- i
                  | _ ->
                    ok := false;
                    raise Exit
                done
              with Exit -> ());
             if !ok then Some ik else None
           end
           else None
         in
         (match int_keys with
         | Some ik ->
           let dir = dirs.(0) in
           Array.stable_sort
             (fun a b -> dir * Int.compare ik.(a) ik.(b))
             idx
         | None ->
           let cmp a b =
             let rec go j =
               if j >= k then 0
               else begin
                 let c =
                   dirs.(j) * Value.compare keys.((a * k) + j) keys.((b * k) + j)
                 in
                 if c <> 0 then c else go (j + 1)
               end
             in
             go 0
           in
           Array.stable_sort cmp idx);
         (* stable_sort over indices keeps equal keys in index (= input)
            order, so the undecorated permutation matches what a stable
            sort of the rows themselves would produce *)
         let out = Array.map (fun i -> rows.(i)) idx in
         Batch.of_array ~capacity:ctx.batch_capacity out)
    in
    let it = ref None in
    fun () ->
      (match !it with
      | Some i -> i ()
      | None ->
        let i = iter_of_batches (Lazy.force sorted) in
        it := Some i;
        i ())
  | Plan.Limit (input, n) ->
    let it = open_plan ctx frames input in
    let remaining = ref n in
    fun () ->
      if !remaining <= 0 then None
      else begin
        match it () with
        | None -> None
        | Some b ->
          Batch.truncate b !remaining;
          remaining := !remaining - Batch.length b;
          Some b
      end
  | Plan.Union_all inputs ->
    let remaining = ref inputs and cur = ref (fun () -> None) in
    let rec next () =
      match !cur () with
      | Some b -> Some b
      | None -> begin
        match !remaining with
        | [] -> None
        | p :: rest ->
          remaining := rest;
          cur := open_plan ctx frames p;
          next ()
      end
    in
    next
  | Plan.Shared (bid, input) -> iter_of_batches (get_shared ctx frames bid input)

(** Open a columnar scan: chunk-at-a-time over the table's colstore.
    Per chunk: zone-map prune, then selection-vector generation by the
    compiled atoms, then deferred materialization — the heap tuple is
    fetched only for rows that survive the atoms — and finally the
    residual predicate (if any) over the materialized row.  Chunks are
    visited in slot order, so emission order is byte-identical to the
    row path. *)
and open_colscan (ctx : ctx) (frames : Eval.frames) (cs : Colscan.t) :
    batch_iter =
  let store = cs.Colscan.store in
  let table = cs.Colscan.table in
  let katoms = cs.Colscan.katoms in
  let test = Option.map (compile_pred ctx) cs.Colscan.residual in
  let sel = Array.make (Colstore.chunk_rows store) 0 in
  let sst = Colstore.scan_stats () in
  (* snapshotted: queries never mutate their own base tables here *)
  let n_chunks = Colstore.n_chunks store in
  let chunk = ref 0 in
  pack ~capacity:ctx.batch_capacity (fun ~emit ->
      if !chunk >= n_chunks then false
      else begin
        let c = !chunk in
        incr chunk;
        if Colstore.prune_chunk store katoms c then begin
          ctx.chunks_skipped <- ctx.chunks_skipped + 1;
          Colstore.add_totals ~scanned:0 ~skipped:1 ~materialized:0 ()
        end
        else begin
          ctx.chunks_scanned <- ctx.chunks_scanned + 1;
          ctx.rows_scanned <- ctx.rows_scanned + Colstore.live_in_chunk store c;
          Colstore.pin store c;
          let n = Colstore.select_chunk ~stats:sst store katoms c sel in
          Colstore.unpin store c;
          ctx.rows_materialized <- ctx.rows_materialized + n;
          Colstore.add_totals ~scanned:1 ~skipped:0 ~materialized:n ();
          flush_faults ctx sst;
          (match test with
          | None ->
            for i = 0 to n - 1 do
              emit (Base_table.get_exn table (Array.unsafe_get sel i))
            done
          | Some t ->
            for i = 0 to n - 1 do
              let row = Base_table.get_exn table (Array.unsafe_get sel i) in
              if is_true (t frames row) then emit row
            done)
        end;
        true
      end)

(** Open an index join.  [mk_row] as in {!open_hash_join}. *)
and open_index_join (ctx : ctx) (frames : Eval.frames)
    ~(mk_row : Tuple.t -> Tuple.t -> Tuple.t) ~outer ~table ~index ~keys
    ~residual : batch_iter =
  let outer_it = open_plan ctx frames outer in
  let extract, scratch = make_key_fn frames keys in
  let emit_match =
    match residual_test ctx residual with
    | None -> fun emit row irow -> emit (mk_row row irow)
    | Some test ->
      fun emit row irow ->
        let t = Tuple.concat row irow in
        if is_true (test frames t) then emit (mk_row row irow)
  in
  match ctx.snapshot with
  | Some frozen ->
    (* snapshot probe: the live index tracks the heap, so reproduce the
       posting layout from the frozen slot array instead.  Matches cons
       on ascending rid, so list iteration presents descending rid —
       exactly the order {!Index.iter} walks (postings are rid-sorted
       ascending and iterated in reverse). *)
    let postings =
      lazy
        (let arr = frozen table in
         let cols = index.Index.key_columns in
         let tbl = Tuple.Tbl.create 256 in
         Array.iter
           (fun slot ->
             match slot with
             | None -> ()
             | Some irow ->
               let key = Array.map (fun c -> irow.(c)) cols in
               (* null keys are never probed: [extract] refuses them *)
               if not (Array.exists Value.is_null key) then begin
                 let prev = try Tuple.Tbl.find tbl key with Not_found -> [] in
                 Tuple.Tbl.replace tbl key (irow :: prev)
               end)
           arr;
         tbl)
    in
    pack ~capacity:ctx.batch_capacity (fun ~emit ->
        match outer_it () with
        | None -> false
        | Some ob ->
          Batch.iter
            (fun row ->
              if extract row then
                match Tuple.Tbl.find (Lazy.force postings) scratch with
                | exception Not_found -> ()
                | matches ->
                  List.iter
                    (fun irow ->
                      ctx.rows_scanned <- ctx.rows_scanned + 1;
                      emit_match emit row irow)
                    matches)
            ob;
          true)
  | None ->
    let emit_rid emit row rid =
      match Base_table.get table rid with
      | None -> ()
      | Some irow ->
        ctx.rows_scanned <- ctx.rows_scanned + 1;
        emit_match emit row irow
    in
    pack ~capacity:ctx.batch_capacity (fun ~emit ->
        match outer_it () with
        | None -> false
        | Some ob ->
          Batch.iter
            (fun row ->
              if extract row then
                (* Index.iter probes without building a rid list. *)
                Index.iter index scratch (emit_rid emit row))
            ob;
          true)

(** Open a hash join.  [mk_row] builds each output row from a probe row
    and a build match — [Tuple.concat] for the plain join, a column
    picker when a projection has been fused into the emit.  The residual
    (if any) is always evaluated over the full concatenation.

    [jfilter] is the planner's sideways-information-passing hint: when
    set (and [XNFDB_JOINFILTER] allows it), the single-int-key build
    also produces a {!Bloom} filter pushed into the probe scan — key
    range atoms prune whole probe chunks, and the Bloom is tested per
    probe key before the heap tuple is materialized.  The filter is
    false-positive-only, so output is byte-identical with it off. *)
and open_hash_join (ctx : ctx) (frames : Eval.frames)
    ~(mk_row : Tuple.t -> Tuple.t -> Tuple.t) ~build ~probe ~build_keys
    ~probe_keys ~residual ~(jfilter : Plan.jfilter option) : batch_iter =
  let emit_match =
    match residual_test ctx residual with
    | None -> fun emit row m -> emit (mk_row row m)
    | Some test ->
      fun emit row m ->
        let t = Tuple.concat row m in
        if is_true (test frames t) then emit (mk_row row m)
  in
  (* full three-argument applications: no per-probe-row partial closure *)
  let rec emit_matches emit row = function
    | [] -> ()
    | m :: tl ->
      emit_match emit row m;
      emit_matches emit row tl
  in
  match build_keys, probe_keys with
  | [ bk ], [ pk ] ->
    (* single-column equi-join fast path: hash the key value directly *)
    let want_jf = jfilter <> None && Bloom.enabled () in
    let table =
      lazy
        (let tbl =
           (* the columnar mirror tracks the live heap: under a snapshot
              the build must drain the (frozen) row pipeline instead *)
           match
             (if ctx.snapshot = None then
                columnar_build ctx frames ~build ~key:bk
              else None)
           with
           | Some tbl -> tbl
           | None ->
             let tbl = Vtbl.create 256 in
             let all_int = ref true in
             let bf = Eval.compile_scalar_fn bk in
             let bit = open_plan ctx frames build in
             let rec drain () =
               match bit () with
               | None -> ()
               | Some b ->
                 Batch.iter
                   (fun row ->
                     let v = bf frames row in
                     if not (Value.is_null v) then begin
                       (match v with Value.Int _ -> () | _ -> all_int := false);
                       let prev = try Vtbl.find tbl v with Not_found -> [] in
                       Vtbl.replace tbl v (row :: prev)
                     end)
                   b;
                 drain ()
             in
             drain ();
             if !all_int then begin
               (* re-key by raw int: the probe loop then skips the generic
                  value hash entirely *)
               let itbl = Itbl.create (2 * Vtbl.length tbl) in
               Vtbl.iter
                 (fun v rows ->
                   match v with
                   | Value.Int i -> Itbl.replace itbl i rows
                   | _ -> assert false)
                 tbl;
               T_int itbl
             end
             else T_val tbl
         in
         (* sideways filter: one pass over the finished table gives the
            exact distinct key set (and so an exactly sized Bloom) *)
         let flt =
           match tbl with
           | T_int itbl when want_jf ->
             let bl = Bloom.create ~expected:(Itbl.length itbl) in
             Itbl.iter (fun k _ -> Bloom.add bl k) itbl;
             ctx.jf_built <- ctx.jf_built + 1;
             Bloom.add_totals ~built:1 ~chunks:0 ~rows:0 ~dropped:0;
             Some bl
           | _ -> None
         in
         (tbl, flt))
    in
    (* adaptive per-row state: observe the first [adaptive_sample] probe
       keys; a filter passing more than [drop_threshold] of them is
       dropped (range chunk pruning stays — it is exact and ~free) *)
    let jf_live = ref true in
    let jf_decided = ref false in
    let jf_tested = ref 0 and jf_passed = ref 0 in
    let jf_sample = Optimizer.Cost.jf_adaptive_sample () in
    let jf_drop = Optimizer.Cost.jf_drop_threshold () in
    let jf_pass bl k =
      if !jf_decided then (not !jf_live) || Bloom.mem bl k
      else begin
        let pass = Bloom.mem bl k in
        incr jf_tested;
        if pass then incr jf_passed;
        if !jf_tested >= jf_sample then begin
          jf_decided := true;
          if float_of_int !jf_passed > jf_drop *. float_of_int !jf_tested
          then begin
            jf_live := false;
            ctx.jf_dropped <- ctx.jf_dropped + 1;
            Bloom.add_totals ~built:0 ~chunks:0 ~rows:0 ~dropped:1
          end
        end;
        pass
      end
    in
    let jf_pass_counted bl k =
      let p = jf_pass bl k in
      if not p then begin
        ctx.jf_rows_skipped <- ctx.jf_rows_skipped + 1;
        Bloom.add_totals ~built:0 ~chunks:0 ~rows:1 ~dropped:0
      end;
      p
    in
    let columnar_probe =
      match
        (if ctx.snapshot = None then Colscan.of_plan ~require_atoms:false probe
         else None)
      with
      | Some cs -> (
        match Colscan.int_key cs pk with
        | Some ki -> Some (cs, ki, `Int)
        | None ->
          (match Colscan.str_key cs pk with
          | Some ki -> Some (cs, ki, `Str)
          | None -> None))
      | None -> None
    in
    (match columnar_probe with
    | Some (cs, ki, `Int) ->
      (* chunk-driven probe: keys come straight off the unboxed column;
         the probe-side heap tuple is materialized only for rows that
         survive the atoms (and, with no residual, only on a match) *)
      let store = cs.Colscan.store in
      let ptable = cs.Colscan.table in
      let katoms = cs.Colscan.katoms in
      let test = Option.map (compile_pred ctx) cs.Colscan.residual in
      let sel = Array.make (Colstore.chunk_rows store) 0 in
      let rdr = Colstore.reader store in
      let sst = Colstore.scan_stats () in
      let n_chunks = Colstore.n_chunks store in
      let chunk = ref 0 in
      (* build-side key range as zone-prunable atoms over the probe's
         key column (forces the build) *)
      let jf_atoms =
        lazy
          (match snd (Lazy.force table), pk with
          | Some bl, Plan.P_col ki -> begin
            match Bloom.range bl with
            | Some (lo, hi) ->
              Colstore.compile store
                [
                  Colstore.A_cmp (ki, Colstore.Cge, Value.Int lo);
                  Colstore.A_cmp (ki, Colstore.Cle, Value.Int hi);
                ]
            | None -> None
          end
          | _ -> None)
      in
      pack ~capacity:ctx.batch_capacity (fun ~emit ->
          if !chunk >= n_chunks then false
          else begin
            let c = !chunk in
            incr chunk;
            if Colstore.prune_chunk store katoms c then begin
              ctx.chunks_skipped <- ctx.chunks_skipped + 1;
              Colstore.add_totals ~scanned:0 ~skipped:1 ~materialized:0 ()
            end
            else begin
              match Lazy.force jf_atoms with
              | Some ja when Colstore.prune_chunk store ja c ->
                (* every key in the chunk is outside the build's range —
                   pruned before the chunk is decoded or faulted in *)
                ctx.jf_chunks_skipped <- ctx.jf_chunks_skipped + 1;
                Bloom.add_totals ~built:0 ~chunks:1 ~rows:0 ~dropped:0
              | _ ->
                ctx.chunks_scanned <- ctx.chunks_scanned + 1;
                ctx.rows_scanned <-
                  ctx.rows_scanned + Colstore.live_in_chunk store c;
                Colstore.pin store c;
                let n = Colstore.select_chunk ~stats:sst store katoms c sel in
                let mat = ref 0 in
                let tbl, flt = Lazy.force table in
                let jfb =
                  match flt with Some bl when !jf_live -> Some bl | _ -> None
                in
                (if n > 0 then begin
                   let data, knulls, kbase =
                     Colstore.key_chunk ~stats:sst store rdr ki c
                   in
                   match tbl, test with
                   | T_int itbl, None ->
                     for j = 0 to n - 1 do
                       let s = Array.unsafe_get sel j in
                       let l = s - kbase in
                       if not (Colstore.bit_get knulls l) then begin
                         let k = Array.unsafe_get data l in
                         if
                           match jfb with
                           | None -> true
                           | Some bl -> jf_pass_counted bl k
                         then begin
                           match Itbl.find itbl k with
                           | exception Not_found -> ()
                           | matches ->
                             incr mat;
                             emit_matches emit (Base_table.get_exn ptable s)
                               matches
                         end
                       end
                     done
                   | T_int itbl, Some t ->
                     for j = 0 to n - 1 do
                       let s = Array.unsafe_get sel j in
                       let l = s - kbase in
                       if not (Colstore.bit_get knulls l) then begin
                         let k = Array.unsafe_get data l in
                         (* the Bloom runs before materialization: a key
                            absent from the build can't survive the join
                            whatever the residual says *)
                         if
                           match jfb with
                           | None -> true
                           | Some bl -> jf_pass_counted bl k
                         then begin
                           let row = Base_table.get_exn ptable s in
                           incr mat;
                           if is_true (t frames row) then begin
                             match Itbl.find itbl k with
                             | exception Not_found -> ()
                             | matches -> emit_matches emit row matches
                           end
                         end
                       end
                     done
                   | T_val vtbl, test ->
                     (* build side fell back to value keys (possible when it
                        was empty of ints only in theory — keys here are
                        ints, so this probes with boxed Int values) *)
                     for j = 0 to n - 1 do
                       let s = Array.unsafe_get sel j in
                       let l = s - kbase in
                       if not (Colstore.bit_get knulls l) then begin
                         let row = Base_table.get_exn ptable s in
                         incr mat;
                         let keep =
                           match test with
                           | None -> true
                           | Some t -> is_true (t frames row)
                         in
                         if keep then begin
                           match
                             Vtbl.find vtbl (Value.Int (Array.unsafe_get data l))
                           with
                           | exception Not_found -> ()
                           | matches -> emit_matches emit row matches
                         end
                       end
                     done
                 end);
                Colstore.unpin store c;
                ctx.rows_materialized <- ctx.rows_materialized + !mat;
                Colstore.add_totals ~scanned:1 ~skipped:0 ~materialized:!mat ();
                flush_faults ctx sst
            end;
            true
          end)
    | Some (cs, ki, `Str) ->
      (* string-keyed chunk-driven probe: keys come off the
         dictionary-code column; build strings fold onto probe-side
         codes once, so the probe loop compares ints and never touches
         a string.  A build string absent from the probe dictionary
         cannot match any probe row and is dropped at translation.
         Codes are unordered, so there is no range-atom chunk pruning —
         the Bloom over codes is the whole sideways filter. *)
      let store = cs.Colscan.store in
      let ptable = cs.Colscan.table in
      let katoms = cs.Colscan.katoms in
      let test = Option.map (compile_pred ctx) cs.Colscan.residual in
      let sel = Array.make (Colstore.chunk_rows store) 0 in
      let rdr = Colstore.reader store in
      let sst = Colstore.scan_stats () in
      let n_chunks = Colstore.n_chunks store in
      let chunk = ref 0 in
      let ctable =
        lazy
          (let tbl, _ = Lazy.force table in
           let itbl = Itbl.create 256 in
           (match tbl with
           | T_val vtbl ->
             Vtbl.iter
               (fun v rows ->
                 match v with
                 | Value.Str s -> (
                   match Colstore.dict_find store s with
                   | Some code -> Itbl.replace itbl code rows
                   | None -> ())
                 | _ -> () (* non-string keys never equal a string key *))
               vtbl
           | T_int _ -> () (* int build keys never equal a string key *));
           let flt =
             if want_jf then begin
               let bl = Bloom.create ~expected:(max 1 (Itbl.length itbl)) in
               Itbl.iter (fun k _ -> Bloom.add bl k) itbl;
               ctx.jf_built <- ctx.jf_built + 1;
               Bloom.add_totals ~built:1 ~chunks:0 ~rows:0 ~dropped:0;
               Some bl
             end
             else None
           in
           (itbl, flt))
      in
      pack ~capacity:ctx.batch_capacity (fun ~emit ->
          if !chunk >= n_chunks then false
          else begin
            let c = !chunk in
            incr chunk;
            if Colstore.prune_chunk store katoms c then begin
              ctx.chunks_skipped <- ctx.chunks_skipped + 1;
              Colstore.add_totals ~scanned:0 ~skipped:1 ~materialized:0 ()
            end
            else begin
              ctx.chunks_scanned <- ctx.chunks_scanned + 1;
              ctx.rows_scanned <-
                ctx.rows_scanned + Colstore.live_in_chunk store c;
              Colstore.pin store c;
              let n = Colstore.select_chunk ~stats:sst store katoms c sel in
              let mat = ref 0 in
              let itbl, flt = Lazy.force ctable in
              let jfb =
                match flt with Some bl when !jf_live -> Some bl | _ -> None
              in
              (if n > 0 then begin
                 let data, knulls, kbase =
                   Colstore.key_chunk ~stats:sst store rdr ki c
                 in
                 match test with
                 | None ->
                   for j = 0 to n - 1 do
                     let s = Array.unsafe_get sel j in
                     let l = s - kbase in
                     if not (Colstore.bit_get knulls l) then begin
                       let k = Array.unsafe_get data l in
                       if
                         match jfb with
                         | None -> true
                         | Some bl -> jf_pass_counted bl k
                       then begin
                         match Itbl.find itbl k with
                         | exception Not_found -> ()
                         | matches ->
                           incr mat;
                           emit_matches emit (Base_table.get_exn ptable s)
                             matches
                       end
                     end
                   done
                 | Some t ->
                   for j = 0 to n - 1 do
                     let s = Array.unsafe_get sel j in
                     let l = s - kbase in
                     if not (Colstore.bit_get knulls l) then begin
                       let k = Array.unsafe_get data l in
                       if
                         match jfb with
                         | None -> true
                         | Some bl -> jf_pass_counted bl k
                       then begin
                         let row = Base_table.get_exn ptable s in
                         incr mat;
                         if is_true (t frames row) then begin
                           match Itbl.find itbl k with
                           | exception Not_found -> ()
                           | matches -> emit_matches emit row matches
                         end
                       end
                     end
                   done
               end);
              Colstore.unpin store c;
              ctx.rows_materialized <- ctx.rows_materialized + !mat;
              Colstore.add_totals ~scanned:1 ~skipped:0 ~materialized:!mat ();
              flush_faults ctx sst
            end;
            true
          end)
    | None ->
      let pf = Eval.compile_scalar_fn pk in
      (* the probe source is chosen once the build table (and so the
         filter) exists: a bare base-table probe with an int-keyed build
         applies the join filter inside [scan_into] itself, so dropped
         rows never enter a batch *)
      let state =
        lazy
          (let tbl, flt = Lazy.force table in
           (* [loop_flt] is the filter still owed by the probe loop: None
              once the scan itself already applied it *)
           let probe_it, loop_flt =
             match probe, pk, tbl, flt with
             | Plan.Scan pt, Plan.P_col ki, T_int _, Some bl
               when ctx.snapshot = None ->
               let keep row =
                 ctx.rows_scanned <- ctx.rows_scanned + 1;
                 let pass_int i =
                   let p = jf_pass bl i in
                   if not p then begin
                     ctx.jf_rows_skipped <- ctx.jf_rows_skipped + 1;
                     Bloom.add_totals ~built:0 ~chunks:0 ~rows:1 ~dropped:0
                   end;
                   p
                 in
                 (* rows whose key cannot equal any int build key (NULL,
                    strings, fractional floats) never join and are safe
                    to drop here too, exactly as the probe loop below
                    ignores them *)
                 match Array.unsafe_get row ki with
                 | Value.Int i -> pass_int i
                 | Value.Float f -> (
                   match Value.int_key_of_float f with
                   | Some i -> pass_int i
                   | None -> false)
                 | _ -> false
               in
               let cap = ref (min 64 ctx.batch_capacity) in
               let slot = ref 0 in
               let exhausted = ref false in
               let it () =
                 if !exhausted then None
                 else begin
                   let b = Batch.create ~capacity:!cap () in
                   cap := min ctx.batch_capacity (!cap * 4);
                   let next_slot, n =
                     Base_table.scan_into ~filter:keep pt ~from:!slot
                       b.Batch.rows ~start:0 ~max:(Batch.capacity b)
                   in
                   slot := next_slot;
                   b.Batch.len <- n;
                   (* [scan_into] only under-fills at the end of the
                      heap, so an empty batch means exhaustion even with
                      the filter dropping rows *)
                   if n = 0 then begin
                     exhausted := true;
                     None
                   end
                   else Some b
                 end
               in
               (it, None)
             | _ -> (open_plan ctx frames probe, flt)
           in
           (tbl, probe_it, loop_flt))
      in
      pack ~capacity:ctx.batch_capacity (fun ~emit ->
          let tbl, probe_it, loop_flt = Lazy.force state in
          match probe_it () with
          | None -> false
          | Some pb ->
            (match tbl with
            | T_int itbl ->
              let may =
                match loop_flt with
                | Some bl when !jf_live -> fun i -> jf_pass_counted bl i
                | _ -> fun _ -> true
              in
              Batch.iter
                (fun row ->
                  (* Ints and integral Floats compare equal under SQL
                     numeric equality, so integral Float probes fold onto
                     the int key; other types never equal an Int key.
                     [int_key_of_float] bounds the fold to floats that
                     really carry an int key — exact at 2^53 and beyond,
                     where the old [abs f < 1e18] test was lossy. *)
                  let probe_int i =
                    if may i then
                      match Itbl.find itbl i with
                      | exception Not_found -> ()
                      | matches -> emit_matches emit row matches
                  in
                  match pf frames row with
                  | Value.Int i -> probe_int i
                  | Value.Float f -> (
                    match Value.int_key_of_float f with
                    | Some i -> probe_int i
                    | None -> ())
                  | _ -> ())
                pb
            | T_val tbl ->
              Batch.iter
                (fun row ->
                  let v = pf frames row in
                  if not (Value.is_null v) then
                    match Vtbl.find tbl v with
                    | exception Not_found -> ()
                    | matches -> emit_matches emit row matches)
                pb);
            true))
  | _ ->
    (* multi-key (tuple) join: the sideways filter works over
       [Tuple.hash] of the whole key tuple — consistent with
       [Tuple.Tbl]'s own hashing, so a key the table would find always
       passes (false-positive-only, as required for byte-identity).
       The Bloom membership test is a single cache-line probe, cheaper
       than the table's bucket walk + tuple equality on misses. *)
    let want_jf = jfilter <> None && Bloom.enabled () in
    let table =
      lazy
        (let tbl = Tuple.Tbl.create 256 in
         let bfs = List.map Eval.compile_scalar_fn build_keys in
         let bit = open_plan ctx frames build in
         let rec drain () =
           match bit () with
           | None -> ()
           | Some b ->
             Batch.iter
               (fun row ->
                 let key =
                   Array.of_list (List.map (fun f -> f frames row) bfs)
                 in
                 if not (Array.exists Value.is_null key) then begin
                   let prev =
                     try Tuple.Tbl.find tbl key with Not_found -> []
                   in
                   Tuple.Tbl.replace tbl key (row :: prev)
                 end)
               b;
             drain ()
         in
         drain ();
         let flt =
           if want_jf then begin
             (* one pass over the finished table: exactly sized, one
                entry per distinct key tuple *)
             let bl = Bloom.create ~expected:(Tuple.Tbl.length tbl) in
             Tuple.Tbl.iter (fun k _ -> Bloom.add bl (Tuple.hash k)) tbl;
             ctx.jf_built <- ctx.jf_built + 1;
             Bloom.add_totals ~built:1 ~chunks:0 ~rows:0 ~dropped:0;
             Some bl
           end
           else None
         in
         (tbl, flt))
    in
    (* same adaptive policy as the single-key path: observe the first
       [adaptive_sample] probe keys, drop a filter that passes more
       than [drop_threshold] of them *)
    let jf_live = ref true in
    let jf_decided = ref false in
    let jf_tested = ref 0 and jf_passed = ref 0 in
    let jf_sample = Optimizer.Cost.jf_adaptive_sample () in
    let jf_drop = Optimizer.Cost.jf_drop_threshold () in
    let jf_pass bl k =
      if !jf_decided then (not !jf_live) || Bloom.mem bl k
      else begin
        let pass = Bloom.mem bl k in
        incr jf_tested;
        if pass then incr jf_passed;
        if !jf_tested >= jf_sample then begin
          jf_decided := true;
          if float_of_int !jf_passed > jf_drop *. float_of_int !jf_tested
          then begin
            jf_live := false;
            ctx.jf_dropped <- ctx.jf_dropped + 1;
            Bloom.add_totals ~built:0 ~chunks:0 ~rows:0 ~dropped:1
          end
        end;
        pass
      end
    in
    let probe_it = open_plan ctx frames probe in
    let extract, scratch = make_key_fn frames probe_keys in
    pack ~capacity:ctx.batch_capacity (fun ~emit ->
        match probe_it () with
        | None -> false
        | Some pb ->
          let tbl, flt = Lazy.force table in
          let lookup row =
            match Tuple.Tbl.find tbl scratch with
            | exception Not_found -> ()
            | matches -> emit_matches emit row matches
          in
          let probe_row =
            match flt with
            | None -> fun row -> if extract row then lookup row
            | Some bl ->
              fun row ->
                if extract row then
                  if jf_pass bl (Tuple.hash scratch) then lookup row
                  else begin
                    ctx.jf_rows_skipped <- ctx.jf_rows_skipped + 1;
                    Bloom.add_totals ~built:0 ~chunks:0 ~rows:1 ~dropped:0
                  end
          in
          Batch.iter probe_row pb;
          true)

(** Columnar build for a single-[Tint]-column hash-join key: drain the
    build side chunk-at-a-time and fill the int-keyed table straight
    from the unboxed key column — no per-row key closure, no [Value]
    match.  [None] when the build side is not a columnar scan or the
    key is not a bare [Tint] column. *)
and columnar_build (ctx : ctx) (frames : Eval.frames) ~build ~key :
    single_key_table option =
  match Colscan.of_plan ~require_atoms:false build with
  | None -> None
  | Some cs ->
    (match Colscan.int_key cs key with
    | None -> None
    | Some ki ->
      let store = cs.Colscan.store in
      let katoms = cs.Colscan.katoms in
      let test = Option.map (compile_pred ctx) cs.Colscan.residual in
      let sel = Array.make (Colstore.chunk_rows store) 0 in
      let rdr = Colstore.reader store in
      let sst = Colstore.scan_stats () in
      let itbl = Itbl.create 256 in
      for c = 0 to Colstore.n_chunks store - 1 do
        if Colstore.prune_chunk store katoms c then begin
          ctx.chunks_skipped <- ctx.chunks_skipped + 1;
          Colstore.add_totals ~scanned:0 ~skipped:1 ~materialized:0 ()
        end
        else begin
          ctx.chunks_scanned <- ctx.chunks_scanned + 1;
          ctx.rows_scanned <- ctx.rows_scanned + Colstore.live_in_chunk store c;
          Colstore.pin store c;
          let n = Colstore.select_chunk ~stats:sst store katoms c sel in
          let mat = ref 0 in
          (if n > 0 then begin
             let data, knulls, kbase =
               Colstore.key_chunk ~stats:sst store rdr ki c
             in
             for j = 0 to n - 1 do
               let s = Array.unsafe_get sel j in
               let l = s - kbase in
               (* null keys never join: skip before materializing *)
               if not (Colstore.bit_get knulls l) then begin
                 let row = Base_table.get_exn cs.Colscan.table s in
                 incr mat;
                 let keep =
                   match test with
                   | None -> true
                   | Some t -> is_true (t frames row)
                 in
                 if keep then begin
                   let k = Array.unsafe_get data l in
                   let prev = try Itbl.find itbl k with Not_found -> [] in
                   Itbl.replace itbl k (row :: prev)
                 end
               end
             done
           end);
          Colstore.unpin store c;
          ctx.rows_materialized <- ctx.rows_materialized + !mat;
          Colstore.add_totals ~scanned:1 ~skipped:0 ~materialized:!mat ();
          flush_faults ctx sst
        end
      done;
      Some (T_int itbl))

(** Materialize a subplan into a batch list.  Uncorrelated subplans
    ([frames = []]) are cached by physical plan identity in the context,
    so every consumer of the same subplan object — a [Shared] box, a
    join inner re-opened by a second output plan of a multi-output
    query, or a re-run of the same compiled plan — drains it exactly
    once and re-reads the batches without copying. *)
and materialize (ctx : ctx) (frames : Eval.frames) (p : Plan.t) : Batch.t list =
  match p with
  | Plan.Shared (bid, inner) -> get_shared ctx frames bid inner
  | _ when frames = [] -> begin
    match List.find_opt (fun (q, _) -> q == p) ctx.materialized with
    | Some (_, bs) -> bs
    | None ->
      let bs = drain_batches (open_plan ctx frames p) in
      ctx.materialized <- (p, bs) :: ctx.materialized;
      ctx.materializations <- ctx.materializations + 1;
      bs
  end
  | _ -> drain_batches (open_plan ctx frames p)

and get_shared (ctx : ctx) (frames : Eval.frames) (bid : int) (inner : Plan.t) :
    Batch.t list =
  match Hashtbl.find_opt ctx.shared bid with
  | Some bs -> bs
  | None ->
    (* Cross-query promotion: an uncorrelated CSE materialization is a
       pure function of (plan structure, table versions), so consult the
       process-wide cache before draining.  Batches are handed out (and
       stored) through [Batch.share_list]: consumers mutate selection
       vectors on their own records, never on the cached ones. *)
    let global_key =
      (* snapshot contexts neither read nor fill the cross-query cache:
         their batches reflect the pinned epoch, not the live versions
         the cache key names *)
      if ctx.result_cache && ctx.snapshot = None && frames = [] then
        Some
          ("cse|" ^ Plan.fingerprint inner ^ "|" ^ Plan.version_key inner)
      else None
    in
    let cached =
      match global_key with
      | Some key -> (
        match Result_cache.find key with
        | Some (Cached_batches bs) -> Some (Batch.share_list bs)
        | Some _ | None -> None)
      | None -> None
    in
    let bs =
      match cached with
      | Some bs -> bs
      | None ->
        let bs = drain_batches (open_plan ctx frames inner) in
        ctx.materializations <- ctx.materializations + 1;
        (match global_key with
        | Some key ->
          let snapshot = Batch.share_list bs in
          Result_cache.store key
            ~bytes:(Result_cache.batch_list_bytes snapshot)
            (Cached_batches snapshot)
        | None -> ());
        bs
    in
    Hashtbl.replace ctx.shared bid bs;
    bs

(** Compile a predicate for per-row use inside a batch loop: pure
    predicates become one closure built at open time; predicates with
    subplan probes fall back to the interpreting [eval_pred]. *)
and compile_pred (ctx : ctx) (p : Plan.ppred) :
    Eval.frames -> Tuple.t -> bool option =
  match Eval.compile_pred_pure p with
  | Some f -> f
  | None -> fun frames tuple -> eval_pred ctx frames tuple p

(** [None] when the join residual is trivially true (the common case
    after predicate pushdown), so the match loop skips the per-row
    test call entirely. *)
and residual_test (ctx : ctx) (p : Plan.ppred) :
    (Eval.frames -> Tuple.t -> bool option) option =
  match p with Plan.P_true -> None | _ -> Some (compile_pred ctx p)

and eval_pred ctx (frames : Eval.frames) (tuple : Tuple.t) (p : Plan.ppred) :
    bool option =
  match p with
  | Plan.P_true -> Some true
  | Plan.P_false -> Some false
  | Plan.P_cmp (op, a, b) ->
    Eval.compare3 op (Eval.scalar frames tuple a) (Eval.scalar frames tuple b)
  | Plan.P_and (a, b) ->
    Eval.and3 (eval_pred ctx frames tuple a) (eval_pred ctx frames tuple b)
  | Plan.P_or (a, b) ->
    Eval.or3 (eval_pred ctx frames tuple a) (eval_pred ctx frames tuple b)
  | Plan.P_not a -> Eval.not3 (eval_pred ctx frames tuple a)
  | Plan.P_is_null s -> Some (Value.is_null (Eval.scalar frames tuple s))
  | Plan.P_is_not_null s -> Some (not (Value.is_null (Eval.scalar frames tuple s)))
  | Plan.P_like (s, pat) -> begin
    match Eval.scalar frames tuple s with
    | Value.Null -> None
    | Value.Str str -> Some (Eval.like_match ~pattern:pat str)
    | v -> Errors.type_error "LIKE on non-string %s" (Value.to_string v)
  end
  | Plan.P_exists sub ->
    ctx.subqueries_run <- ctx.subqueries_run + 1;
    let it = open_plan ctx (tuple :: frames) sub in
    let rec nonempty () =
      match it () with
      | None -> false
      | Some b -> (not (Batch.is_empty b)) || nonempty ()
    in
    Some (nonempty ())
  | Plan.P_in (s, sub) -> begin
    let v = Eval.scalar frames tuple s in
    ctx.subqueries_run <- ctx.subqueries_run + 1;
    let it = open_plan ctx (tuple :: frames) sub in
    let saw_null = ref false in
    let rec go () =
      match it () with
      | None -> if Value.is_null v || !saw_null then None else Some false
      | Some b ->
        let n = Batch.length b in
        let rec scan i =
          if i >= n then go ()
          else begin
            let w = (Batch.get b i).(0) in
            if Value.is_null w || Value.is_null v then begin
              saw_null := true;
              scan (i + 1)
            end
            else if Value.compare v w = 0 then Some true
            else scan (i + 1)
          end
        in
        scan 0
    in
    go ()
  end

(** Materialize every [Shared] node reachable in [p] into the context
    (bottom-up).  After this, executing [p] — even from several domains
    sharing the context — only {e reads} the shared cache, making
    parallel evaluation of multi-output queries safe. *)
let force_shared (ctx : ctx) (p : Plan.t) : unit =
  let rec walk p =
    (match p with
    | Plan.Shared (bid, inner) ->
      walk inner;
      ignore (get_shared ctx [] bid inner)
    | _ -> ());
    match p with
    | Plan.Scan _ | Plan.Values _ -> ()
    | Plan.Filter (i, pred) ->
      walk i;
      walk_pred pred
    | Plan.Project (i, _) | Plan.Distinct i | Plan.Sort (i, _) | Plan.Limit (i, _)
      ->
      walk i
    | Plan.Shared (_, i) -> walk i
    | Plan.Nl_join { outer; inner; cond } ->
      walk outer;
      walk inner;
      walk_pred cond
    | Plan.Hash_join { build; probe; residual; _ } ->
      walk build;
      walk probe;
      walk_pred residual
    | Plan.Index_join { outer; residual; _ } ->
      walk outer;
      walk_pred residual
    | Plan.Merge_join { left; right; residual; _ } ->
      walk left;
      walk right;
      walk_pred residual
    | Plan.Aggregate { input; _ } -> walk input
    | Plan.Union_all is -> List.iter walk is
  and walk_pred = function
    | Plan.P_exists sub | Plan.P_in (_, sub) -> walk sub
    | Plan.P_and (a, b) | Plan.P_or (a, b) ->
      walk_pred a;
      walk_pred b
    | Plan.P_not a -> walk_pred a
    | Plan.P_true | Plan.P_false | Plan.P_cmp _ | Plan.P_is_null _
    | Plan.P_is_not_null _ | Plan.P_like _ ->
      ()
  in
  walk p

(** Every [Shared] node reachable in [p] as [(bid, inner, deps)] where
    [deps] are the box ids of [Shared] nodes reachable {e inside}
    [inner] — the derivations that must be materialized first.
    Deduplicated by box id, bottom-up discovery order (dependencies
    precede their dependents), predicate subplans included. *)
let shared_nodes (p : Plan.t) : (int * Plan.t * int list) list =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  (* [Plan.children] covers [Filter] predicate subplans but not join
     condition/residual subplans — visit those like {!force_shared} *)
  let join_pred_subs q k =
    let rec pred = function
      | Plan.P_exists sub | Plan.P_in (_, sub) -> k sub
      | Plan.P_and (a, b) | Plan.P_or (a, b) ->
        pred a;
        pred b
      | Plan.P_not a -> pred a
      | Plan.P_true | Plan.P_false | Plan.P_cmp _ | Plan.P_is_null _
      | Plan.P_is_not_null _ | Plan.P_like _ ->
        ()
    in
    match q with
    | Plan.Nl_join { cond; _ } -> pred cond
    | Plan.Hash_join { residual; _ } | Plan.Index_join { residual; _ }
    | Plan.Merge_join { residual; _ } ->
      pred residual
    | _ -> ()
  in
  let rec walk p =
    match p with
    | Plan.Shared (bid, inner) ->
      walk inner;
      if not (Hashtbl.mem seen bid) then begin
        Hashtbl.add seen bid ();
        (* direct dependencies only: a nested [Shared] reads its own
           cache entry, so transitive ones are covered by ordering *)
        let deps = Hashtbl.create 4 in
        let rec dep q =
          match q with
          | Plan.Shared (b, _) -> Hashtbl.replace deps b ()
          | _ ->
            List.iter dep (Plan.children q);
            join_pred_subs q dep
        in
        List.iter dep (Plan.children inner);
        join_pred_subs inner dep;
        acc := (bid, inner, Hashtbl.fold (fun b () l -> b :: l) deps []) :: !acc
      end
    | _ ->
      List.iter walk (Plan.children p);
      join_pred_subs p walk
  in
  walk p;
  List.rev !acc

(** A context for another domain sharing this one's CSE cache (safe once
    {!force_shared} ran for every plan about to execute). *)
let sibling_ctx (ctx : ctx) : ctx =
  {
    shared = ctx.shared;
    materialized = [];
    batch_capacity = ctx.batch_capacity;
    result_cache = ctx.result_cache;
    snapshot = ctx.snapshot;
    rows_scanned = 0;
    subqueries_run = 0;
    batches_emitted = 0;
    materializations = 0;
    chunks_scanned = 0;
    chunks_skipped = 0;
    rows_materialized = 0;
    chunks_faulted = 0;
    bytes_faulted = 0;
    jf_built = 0;
    jf_chunks_skipped = 0;
    jf_rows_skipped = 0;
    jf_dropped = 0;
    analyze = None;
  }

(* -- public surface ------------------------------------------------------ *)

(** Victim finding for UPDATE/DELETE: every live row of [table]
    satisfying [pp], returned {e descending} by rid — the order the
    engine's historical per-row fold applied mutations in, which
    unique-violation timing (e.g. [SET k = k + 1] on a unique column)
    observably depends on.

    The predicate runs through the executor's batch layer instead of a
    per-row interpreter pass: when a conjunct compiles to a columnar
    kernel the colstore path zone-prunes whole chunks and evaluates
    against the column arrays; otherwise rows flow through
    {!Eval.select_batch} selection vectors a batch at a time. *)
let scan_victims (ctx : ctx) (table : Base_table.t) (pp : Plan.ppred) :
    (Heap.rid * Tuple.t) list =
  let acc = ref [] in
  (match Colscan.of_plan (Plan.Filter (Plan.Scan table, pp)) with
  | Some cs ->
    let store = cs.Colscan.store in
    let katoms = cs.Colscan.katoms in
    let test = Option.map (compile_pred ctx) cs.Colscan.residual in
    let sel = Array.make (Colstore.chunk_rows store) 0 in
    let sst = Colstore.scan_stats () in
    for c = 0 to Colstore.n_chunks store - 1 do
      if Colstore.prune_chunk store katoms c then begin
        ctx.chunks_skipped <- ctx.chunks_skipped + 1;
        Colstore.add_totals ~scanned:0 ~skipped:1 ~materialized:0 ()
      end
      else begin
        ctx.chunks_scanned <- ctx.chunks_scanned + 1;
        ctx.rows_scanned <- ctx.rows_scanned + Colstore.live_in_chunk store c;
        Colstore.pin store c;
        let n = Colstore.select_chunk ~stats:sst store katoms c sel in
        Colstore.unpin store c;
        ctx.rows_materialized <- ctx.rows_materialized + n;
        Colstore.add_totals ~scanned:1 ~skipped:0 ~materialized:n ();
        flush_faults ctx sst;
        (* slots ascend within and across chunks, so consing yields the
           descending-rid victim list directly *)
        for i = 0 to n - 1 do
          let s = Array.unsafe_get sel i in
          let row = Base_table.get_exn cs.Colscan.table s in
          match test with
          | None -> acc := (s, row) :: !acc
          | Some t -> if is_true (t [] row) then acc := (s, row) :: !acc
        done
      end
    done
  | None ->
    let test = compile_pred ctx pp in
    let cap = max 1 ctx.batch_capacity in
    let b = Batch.create ~capacity:cap () in
    let rids = Array.make cap 0 in
    let flush () =
      if b.Batch.len > 0 then begin
        Eval.select_batch [] b test;
        (match b.Batch.sel with
        | Some sel ->
          for i = 0 to b.Batch.sel_len - 1 do
            let j = Array.unsafe_get sel i in
            acc := (rids.(j), b.Batch.rows.(j)) :: !acc
          done
        | None ->
          for j = 0 to b.Batch.len - 1 do
            acc := (rids.(j), b.Batch.rows.(j)) :: !acc
          done);
        b.Batch.len <- 0;
        b.Batch.sel <- None;
        b.Batch.sel_len <- 0
      end
    in
    for rid = 0 to Base_table.slot_count table - 1 do
      match Base_table.get table rid with
      | None -> ()
      | Some row ->
        ctx.rows_scanned <- ctx.rows_scanned + 1;
        rids.(b.Batch.len) <- rid;
        Batch.push b row;
        if Batch.is_full b then flush ()
    done;
    flush ());
  !acc

(** Open a compiled plan as a demand-driven batch cursor (the table
    queue itself).  Batches delivered here bump [ctx.batches_emitted]. *)
let open_batches ?(ctx = make_ctx ()) (c : Plan.compiled) : batch_iter =
  let it = open_plan ctx [] c.Plan.plan in
  fun () ->
    match it () with
    | Some b ->
      ctx.batches_emitted <- ctx.batches_emitted + 1;
      Some b
    | None -> None

(** Run a compiled plan to completion, returning its batches. *)
let run_batches ?ctx (c : Plan.compiled) : Batch.t list =
  drain_batches (open_batches ?ctx c)

(** Run a compiled plan to completion. *)
let run ?ctx (c : Plan.compiled) : Tuple.t list =
  Batch.list_to_rows (run_batches ?ctx c)

(** One-tuple-at-a-time adapter over a batch cursor. *)
let to_seq (it : batch_iter) : Tuple.t Seq.t =
  let rec batches () =
    match it () with None -> Seq.Nil | Some b -> rows b 0 ()
  and rows b i () =
    if i >= Batch.length b then batches ()
    else Seq.Cons (Batch.get b i, rows b (i + 1))
  in
  batches

(** Open a compiled plan as a demand-driven one-tuple cursor (compat
    shim for cursors and examples). *)
let cursor ?(ctx = make_ctx ()) (c : Plan.compiled) : iter =
  let state = ref (to_seq (open_batches ~ctx c)) in
  fun () ->
    match !state () with
    | Seq.Nil -> None
    | Seq.Cons (x, tl) ->
      state := tl;
      Some x
