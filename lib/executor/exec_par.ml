(** Parallel table-queue execution on OCaml 5 domains.

    The sequential executor ({!Exec}) drains a plan one batch at a time
    on one domain.  This module runs the same plans across the shared
    domain pool ({!Relcore.Pool}) with {e morsel-style} scheduling:

    - the base-table scan at the bottom of a pipeline is partitioned
      into row-range morsels handed out by an atomic counter;
    - each worker pushes the streamable part of the pipeline
      (scan/filter/project/join probe) over its morsels, packing output
      rows into batches;
    - per-morsel batch lists travel to the consumer over a bounded
      {!Relcore.Chan} — a real inter-domain table queue — and are
      re-merged {e by morsel index}, so the output row order is exactly
      the sequential order and results are bit-identical to {!Exec};
    - hash-join builds run partitioned too: per-morsel local tables are
      merged in ascending morsel order, reproducing the sequential
      build's match-list ordering;
    - aggregates over the order-insensitive functions
      (COUNT/MIN/MAX) merge partition-local group tables in morsel
      order; float SUM/AVG instead drain their input in parallel and
      splice the rows into the sequential operator, keeping float
      accumulation order — and hence every bit of the result — intact.

    Anything that cannot run this way (correlated subplan probes,
    LIMIT's early-out) raises {!Not_parallel}, and {!run_batches} falls
    back to {!Exec} on the whole plan.  Small inputs are detected via
    [Cost.choose_dop] and run inline on the calling domain. *)

open Relcore
module Plan = Optimizer.Plan
module Ast = Sqlkit.Ast
module Cost = Optimizer.Cost

exception Not_parallel

let[@inline] is_true = function Some true -> true | Some false | None -> false

(** Compile a pure predicate or refuse to parallelize: subplan probes
    (EXISTS/IN) need the sequential executor's context. *)
let compile_pure (p : Plan.ppred) =
  match Eval.compile_pred_pure p with
  | Some f -> f
  | None -> raise Not_parallel

(** [None] when the residual is trivially true (skip the per-row test). *)
let residual_opt (p : Plan.ppred) =
  match p with Plan.P_true -> None | _ -> Some (compile_pure p)

(* per-worker counters, folded into the shared ctx once the fan-out is
   over (workers never touch ctx concurrently) *)
type stats = {
  mutable s_scanned : int;
  mutable s_chunks_scanned : int; (* colstore chunks visited *)
  mutable s_chunks_skipped : int; (* colstore chunks zone-pruned *)
  mutable s_materialized : int; (* heap tuples fetched by columnar scans *)
  mutable s_faulted : int; (* cold chunks read from the spill file *)
  mutable s_fbytes : int; (* encoded bytes copied back by those reads *)
  mutable s_jf_chunks_skipped : int; (* probe chunks pruned by join-filter range *)
  mutable s_jf_rows_skipped : int; (* probe rows dropped by a join filter *)
  mutable s_jf_dropped : int; (* per-worker adaptive join-filter disables *)
  s_ops : int array;
      (* EXPLAIN ANALYZE row partials, one slot per numbered plan
         operator ([||] when analyze is off): workers tally privately,
         [fold_stats] merges after the fan-out like every counter above *)
}

let new_stats (ctx : Exec.ctx) =
  {
    s_scanned = 0;
    s_chunks_scanned = 0;
    s_chunks_skipped = 0;
    s_materialized = 0;
    s_faulted = 0;
    s_fbytes = 0;
    s_jf_chunks_skipped = 0;
    s_jf_rows_skipped = 0;
    s_jf_dropped = 0;
    s_ops =
      (match ctx.Exec.analyze with
      | Some acc -> Opstats.new_partial acc
      | None -> [||]);
  }

(* single-threaded fold of per-worker counters into the shared ctx and
   the process-wide colstore totals (runs after Pool.await) *)
let fold_stats (ctx : Exec.ctx) (stats : stats array) =
  Array.iter
    (fun st ->
      ctx.Exec.rows_scanned <- ctx.Exec.rows_scanned + st.s_scanned;
      ctx.Exec.chunks_scanned <- ctx.Exec.chunks_scanned + st.s_chunks_scanned;
      ctx.Exec.chunks_skipped <- ctx.Exec.chunks_skipped + st.s_chunks_skipped;
      ctx.Exec.rows_materialized <-
        ctx.Exec.rows_materialized + st.s_materialized;
      ctx.Exec.chunks_faulted <- ctx.Exec.chunks_faulted + st.s_faulted;
      ctx.Exec.bytes_faulted <- ctx.Exec.bytes_faulted + st.s_fbytes;
      ctx.Exec.jf_chunks_skipped <-
        ctx.Exec.jf_chunks_skipped + st.s_jf_chunks_skipped;
      ctx.Exec.jf_rows_skipped <- ctx.Exec.jf_rows_skipped + st.s_jf_rows_skipped;
      ctx.Exec.jf_dropped <- ctx.Exec.jf_dropped + st.s_jf_dropped;
      Colstore.add_totals ~faulted:st.s_faulted ~fbytes:st.s_fbytes
        ~scanned:st.s_chunks_scanned ~skipped:st.s_chunks_skipped
        ~materialized:st.s_materialized ();
      Bloom.add_totals ~built:0 ~chunks:st.s_jf_chunks_skipped
        ~rows:st.s_jf_rows_skipped ~dropped:st.s_jf_dropped;
      match ctx.Exec.analyze with
      | Some acc -> Opstats.merge_partial acc st.s_ops
      | None -> ())
    stats

(** Where a pipeline's morsels come from: a slot-range-partitioned base
    table, an already-materialized batch list (one batch per morsel), or
    a columnar scan whose morsels are whole chunk ranges.  A columnar
    source additionally carries the sideways join-filter key-range atoms
    — if a hash join above it produced any — tried as a second-chance
    zone prune after the scan's own atoms. *)
type source =
  | Src_table of Base_table.t
  | Src_batches of Batch.t array
  | Src_colscan of Colscan.t * Colstore.catom array option

(** A streamable pipeline: a morsel source plus a per-worker row
    transformer.  [make_feed] is called once per worker so compiled
    scalar closures and key scratch buffers are never shared across
    domains; the function it returns consumes one {e source} row and
    emits the pipeline's output rows. *)
type pipe = {
  src : source;
  src_rows : int; (* source cardinality estimate, for the DOP choice *)
  make_feed : stats -> emit:(Tuple.t -> unit) -> Tuple.t -> unit;
}

type opts = {
  domains : int;
  morsel : int option; (* forced morsel size; None = adaptive *)
  threshold : int; (* serial below this many source rows *)
}

(** Morsel geometry of a source: [(n_morsels, rows_per_morsel)].  Batch
    sources use one batch per morsel (their unit of production). *)
let morsels_of ~opts (src : source) =
  match src with
  | Src_table t ->
    let slots = Base_table.slot_count t in
    let msz =
      match opts.morsel with
      | Some n -> max 1 n
      | None ->
        (* enough morsels for dynamic load balancing (~8 per worker),
           large enough that scheduling is noise *)
        min 16384 (max 256 (slots / max 1 (opts.domains * 8)))
    in
    (((slots + msz - 1) / msz), msz)
  | Src_batches arr -> (Array.length arr, 0)
  | Src_colscan (cs, _) ->
    (* morsels aligned to chunk boundaries: a chunk is never split, so
       zone pruning and selection run whole-chunk inside one worker *)
    let store = cs.Colscan.store in
    let ch = Colstore.chunk_rows store in
    let n_chunks = Colstore.n_chunks store in
    let target =
      match opts.morsel with
      | Some n -> max 1 n
      | None ->
        let slots = n_chunks * ch in
        min 16384 (max 256 (slots / max 1 (opts.domains * 8)))
    in
    let cpm = max 1 ((target + ch - 1) / ch) in
    (((n_chunks + cpm - 1) / cpm), cpm)

(** Drive [feed] over morsel [m]; returns base-table rows scanned.
    For columnar sources [msz] counts chunks, and [st] additionally
    collects per-worker chunk/materialization counters. *)
let iter_morsel (src : source) ~msz (st : stats) m feed =
  match src with
  | Src_table t -> Base_table.iter_range t ~lo:(m * msz) ~hi:((m + 1) * msz) feed
  | Src_batches arr ->
    Batch.iter feed arr.(m);
    0
  | Src_colscan (cs, jf) ->
    let store = cs.Colscan.store in
    let katoms = cs.Colscan.katoms in
    let table = cs.Colscan.table in
    let n_chunks = Colstore.n_chunks store in
    let sel = Array.make (Colstore.chunk_rows store) 0 in
    let lo = m * msz
    and hi = min ((m + 1) * msz) n_chunks in
    let visited = ref 0 in
    let sst = Colstore.scan_stats () in
    for c = lo to hi - 1 do
      if Colstore.prune_chunk store katoms c then
        st.s_chunks_skipped <- st.s_chunks_skipped + 1
      else
        match jf with
        | Some ja when Colstore.prune_chunk store ja c ->
          (* every key in the chunk is outside the build side's range —
             pruned before the chunk is decoded or faulted in *)
          st.s_jf_chunks_skipped <- st.s_jf_chunks_skipped + 1
        | _ ->
          st.s_chunks_scanned <- st.s_chunks_scanned + 1;
          visited := !visited + Colstore.live_in_chunk store c;
          Colstore.pin store c;
          let n = Colstore.select_chunk ~stats:sst store katoms c sel in
          Colstore.unpin store c;
          st.s_materialized <- st.s_materialized + n;
          for i = 0 to n - 1 do
            feed (Base_table.get_exn table (Array.unsafe_get sel i))
          done
    done;
    st.s_faulted <- st.s_faulted + sst.Colstore.faulted;
    st.s_fbytes <- st.s_fbytes + sst.Colstore.fbytes;
    !visited

let choose_dop ~opts ~rows ~n_morsels =
  if Pool.in_worker () || n_morsels <= 1 then 1
  else
    min n_morsels
      (Cost.choose_dop ~threshold:opts.threshold ~domains:opts.domains ~rows ())

(* build-side hash tables, mirroring Exec's specializations *)
type join_table =
  | J_int of Tuple.t list Exec.Itbl.t
  | J_val of Tuple.t list Exec.Vtbl.t
  | J_multi of Tuple.t list Tuple.Tbl.t

(** Per-worker multi-column key extractor (fresh scratch per worker). *)
let make_key_fn (keys : Plan.scalar list) =
  let fs = Array.of_list (List.map Eval.compile_scalar_fn keys) in
  let n = Array.length fs in
  let scratch = Array.make n Value.Null in
  let extract row =
    let ok = ref true in
    for k = 0 to n - 1 do
      let v = fs.(k) [] row in
      if Value.is_null v then ok := false;
      scratch.(k) <- v
    done;
    !ok
  in
  (extract, scratch)

(* -- pipeline construction ----------------------------------------------- *)

(* Effective source rows for the DOP choice: cold chunks cost extra to
   read (section copy + decode), so a partially spilled table warrants
   an earlier fan-out.  Identity when spilling is off. *)
(** Sideways filter over a finished multi-key join table: one Bloom
    entry per distinct key tuple, keyed on {!Tuple.hash} — the same hash
    the table's own lookup uses, so a findable key always passes
    (false-positive-only).  Built after the per-morsel merge, which
    makes the serial and parallel builds counter-identical. *)
let multi_key_bloom (ctx : Exec.ctx) ~want_jf
    (tbl : Tuple.t list Tuple.Tbl.t) : Bloom.t option =
  if not want_jf then None
  else begin
    let bl = Bloom.create ~expected:(Tuple.Tbl.length tbl) in
    Tuple.Tbl.iter (fun k _ -> Bloom.add bl (Tuple.hash k)) tbl;
    ctx.Exec.jf_built <- ctx.Exec.jf_built + 1;
    Bloom.add_totals ~built:1 ~chunks:0 ~rows:0 ~dropped:0;
    Some bl
  end

let scan_rows_est (t : Base_table.t) =
  int_of_float
    (float_of_int (Base_table.cardinality t) *. Cost.scan_access_factor t)

(* [pipe_of] is the parallel path's attribution shim: with EXPLAIN
   ANALYZE armed, each numbered operator's feed is wrapped so workers
   tally its output rows into their private [s_ops] partial (merged by
   [fold_stats] after the fan-out).  The node is marked opened here, on
   the calling domain, at pipeline-construction time; wall time is
   attributed to pipeline roots by [drain], since a fused worker feed
   has no meaningful per-operator clock. *)
let rec pipe_of (ctx : Exec.ctx) ~opts (p : Plan.t) : pipe =
  match ctx.Exec.analyze with
  | None -> pipe_of_raw ctx ~opts p
  | Some acc ->
    let id = Opstats.id_of acc p in
    if id < 0 then pipe_of_raw ctx ~opts p
    else begin
      let pipe = pipe_of_raw ctx ~opts p in
      Opstats.note_open acc id 0.0;
      {
        pipe with
        make_feed =
          (fun st ~emit ->
            if Array.length st.s_ops = 0 then pipe.make_feed st ~emit
            else
              pipe.make_feed st ~emit:(fun row ->
                  st.s_ops.(id) <- st.s_ops.(id) + 1;
                  emit row));
      }
    end

and pipe_of_raw (ctx : Exec.ctx) ~opts (p : Plan.t) : pipe =
  match p with
  | Plan.Scan t -> (
    match ctx.Exec.snapshot with
    | Some frozen ->
      (* MVCC-lite reader: materialize the frozen slot array (slot
         order, tombstones dropped) and morsel over the batches — the
         live heap is never touched *)
      let arr = frozen t in
      let rows = ref [] in
      for i = Array.length arr - 1 downto 0 do
        match arr.(i) with Some row -> rows := row :: !rows | None -> ()
      done;
      let bs =
        Array.of_list (Batch.of_list ~capacity:ctx.Exec.batch_capacity !rows)
      in
      {
        src = Src_batches bs;
        src_rows = List.length !rows;
        make_feed = (fun _ ~emit -> emit);
      }
    | None ->
      {
        src = Src_table t;
        src_rows = scan_rows_est t;
        make_feed = (fun _ ~emit -> emit);
      })
  | Plan.Values rows ->
    let bs =
      Array.of_list (Batch.of_list ~capacity:ctx.Exec.batch_capacity rows)
    in
    {
      src = Src_batches bs;
      src_rows = List.length rows;
      make_feed = (fun _ ~emit -> emit);
    }
  | Plan.Shared _ ->
    (* materialized once on the calling domain; workers only read *)
    let bs = Exec.materialize ctx [] p in
    {
      src = Src_batches (Array.of_list bs);
      src_rows = Batch.list_length bs;
      make_feed = (fun _ ~emit -> emit);
    }
  | Plan.Filter (input, pred) -> begin
    (* the columnar mirror tracks the live heap: bypassed under a
       snapshot, where the row path reads the frozen scan source *)
    match (if ctx.Exec.snapshot = None then Colscan.of_plan p else None) with
    | Some cs ->
      (* columnar access path: the source itself prunes chunks and runs
         the unboxed atoms, feeding only surviving (materialized) heap
         tuples; the residual — if any — filters per worker exactly
         like a plain Filter feed *)
      let residual =
        match cs.Colscan.residual with None -> Plan.P_true | Some r -> r
      in
      (* force Not_parallel now, not at feed time *)
      ignore (residual_opt residual);
      {
        src = Src_colscan (cs, None);
        src_rows = scan_rows_est cs.Colscan.table;
        make_feed =
          (fun _ ~emit ->
            match residual_opt residual with
            | None -> emit
            | Some test -> fun row -> if is_true (test [] row) then emit row);
      }
    | None ->
      let pipe = pipe_of ctx ~opts input in
      (* force Not_parallel now, not at feed time *)
      ignore (compile_pure pred : Eval.frames -> Tuple.t -> bool option);
      {
        pipe with
        make_feed =
          (fun st ~emit ->
            let test = compile_pure pred in
            pipe.make_feed st ~emit:(fun row ->
                if is_true (test [] row) then emit row));
      }
  end
  | Plan.Project (input, cols) ->
    let pipe = pipe_of ctx ~opts input in
    {
      pipe with
      make_feed =
        (fun st ~emit ->
          let fs = Array.map Eval.compile_scalar_fn cols in
          let n = Array.length fs in
          pipe.make_feed st ~emit:(fun row ->
              let out = Array.make n Value.Null in
              for k = 0 to n - 1 do
                out.(k) <- fs.(k) [] row
              done;
              emit out));
    }
  | Plan.Nl_join { outer; inner; cond } ->
    ignore (compile_pure cond : Eval.frames -> Tuple.t -> bool option);
    let pipe = pipe_of ctx ~opts outer in
    let inner_bs = Exec.materialize ctx [] inner in
    {
      pipe with
      make_feed =
        (fun st ~emit ->
          let test = compile_pure cond in
          pipe.make_feed st ~emit:(fun o ->
              List.iter
                (Batch.iter (fun i ->
                     let t = Tuple.concat o i in
                     if is_true (test [] t) then emit t))
                inner_bs));
    }
  | Plan.Hash_join { build; probe; build_keys; probe_keys; residual; jfilter }
    ->
    ignore (residual_opt residual);
    let table, bloom = build_join_table ctx ~opts ~jfilter build build_keys in
    let pipe = pipe_of ctx ~opts probe in
    (* sideways information passing: when the probe source's rows ARE
       the probe rows (a bare — possibly filtered — scan, no Project in
       between) the build side's exact key range becomes a second-chance
       zone prune on the probe's chunks.  A bare [Scan] probe is
       upgraded to a columnar source for this, as in [Exec]. *)
    let range_atoms (cs : Colscan.t) ki =
      match bloom with
      | None -> None
      | Some bl -> (
        match Bloom.range bl with
        | Some (lo, hi) ->
          Colstore.compile cs.Colscan.store
            [
              Colstore.A_cmp (ki, Colstore.Cge, Value.Int lo);
              Colstore.A_cmp (ki, Colstore.Cle, Value.Int hi);
            ]
        | None -> None)
    in
    let pipe =
      match (pipe.src, probe, probe_keys) with
      | Src_colscan (cs, None), Plan.Filter (Plan.Scan _, _), [ Plan.P_col ki ]
        -> begin
        match range_atoms cs ki with
        | Some ja -> { pipe with src = Src_colscan (cs, Some ja) }
        | None -> pipe
      end
      | Src_table _, Plan.Scan _, [ Plan.P_col ki ] when bloom <> None -> begin
        match Colscan.of_plan ~require_atoms:false probe with
        | Some cs -> begin
          match range_atoms cs ki with
          | Some ja -> { pipe with src = Src_colscan (cs, Some ja) }
          | None -> pipe
        end
        | None -> pipe
      end
      | _ -> pipe
    in
    {
      pipe with
      make_feed =
        (fun st ~emit ->
          let res = residual_opt residual in
          let emit_match row m =
            match res with
            | None -> emit (Tuple.concat row m)
            | Some test ->
              let t = Tuple.concat row m in
              if is_true (test [] t) then emit t
          in
          let rec emit_matches row = function
            | [] -> ()
            | m :: tl ->
              emit_match row m;
              emit_matches row tl
          in
          match table with
          | J_int itbl ->
            let pf =
              Eval.compile_scalar_fn
                (match probe_keys with [ pk ] -> pk | _ -> assert false)
            in
            (* per-worker adaptive filter state: [make_feed] runs once
               per worker, so nothing here is shared across domains *)
            let jf_test =
              match bloom with
              | None -> None
              | Some bl ->
                let live = ref true and decided = ref false in
                let tested = ref 0 and passed = ref 0 in
                let jf_sample = Cost.jf_adaptive_sample () in
                let jf_drop = Cost.jf_drop_threshold () in
                Some
                  (fun k ->
                    if !decided then (not !live) || Bloom.mem bl k
                    else begin
                      let pass = Bloom.mem bl k in
                      incr tested;
                      if pass then incr passed;
                      if !tested >= jf_sample then begin
                        decided := true;
                        if float_of_int !passed > jf_drop *. float_of_int !tested
                        then begin
                          live := false;
                          st.s_jf_dropped <- st.s_jf_dropped + 1
                        end
                      end;
                      pass
                    end)
            in
            let probe_int row i =
              match Exec.Itbl.find itbl i with
              | exception Not_found -> ()
              | matches -> emit_matches row matches
            in
            let probe_int =
              match jf_test with
              | None -> probe_int
              | Some test ->
                fun row i ->
                  if test i then probe_int row i
                  else st.s_jf_rows_skipped <- st.s_jf_rows_skipped + 1
            in
            pipe.make_feed st ~emit:(fun row ->
                (* Ints and integral Floats compare equal under SQL
                   numeric equality, exactly as in [Exec]; the fold is
                   bounded by [int_key_of_float] so it stays exact at
                   2^53 and beyond *)
                match pf [] row with
                | Value.Int i -> probe_int row i
                | Value.Float f -> (
                  match Value.int_key_of_float f with
                  | Some i -> probe_int row i
                  | None -> ())
                | _ -> ())
          | J_val vtbl ->
            let pf =
              Eval.compile_scalar_fn
                (match probe_keys with [ pk ] -> pk | _ -> assert false)
            in
            pipe.make_feed st ~emit:(fun row ->
                let v = pf [] row in
                if not (Value.is_null v) then
                  match Exec.Vtbl.find vtbl v with
                  | exception Not_found -> ()
                  | matches -> emit_matches row matches)
          | J_multi ttbl ->
            let extract, scratch = make_key_fn probe_keys in
            (* per-worker adaptive filter state, as in the J_int arm *)
            let jf_test =
              match bloom with
              | None -> None
              | Some bl ->
                let live = ref true and decided = ref false in
                let tested = ref 0 and passed = ref 0 in
                let jf_sample = Cost.jf_adaptive_sample () in
                let jf_drop = Cost.jf_drop_threshold () in
                Some
                  (fun k ->
                    if !decided then (not !live) || Bloom.mem bl k
                    else begin
                      let pass = Bloom.mem bl k in
                      incr tested;
                      if pass then incr passed;
                      if !tested >= jf_sample then begin
                        decided := true;
                        if float_of_int !passed > jf_drop *. float_of_int !tested
                        then begin
                          live := false;
                          st.s_jf_dropped <- st.s_jf_dropped + 1
                        end
                      end;
                      pass
                    end)
            in
            let lookup row =
              match Tuple.Tbl.find ttbl scratch with
              | exception Not_found -> ()
              | matches -> emit_matches row matches
            in
            let probe_row =
              match jf_test with
              | None -> fun row -> if extract row then lookup row
              | Some test ->
                fun row ->
                  if extract row then
                    if test (Tuple.hash scratch) then lookup row
                    else st.s_jf_rows_skipped <- st.s_jf_rows_skipped + 1
            in
            pipe.make_feed st ~emit:probe_row);
    }
  | Plan.Index_join { outer; table; index; keys; residual } ->
    (* the live index tracks the heap; the serial executor knows how to
       emulate the posting layout from frozen slots — fall back to it *)
    if ctx.Exec.snapshot <> None then raise Not_parallel;
    ignore (residual_opt residual);
    let pipe = pipe_of ctx ~opts outer in
    {
      pipe with
      make_feed =
        (fun st ~emit ->
          let res = residual_opt residual in
          let extract, scratch = make_key_fn keys in
          pipe.make_feed st ~emit:(fun row ->
              if extract row then
                (* Index.iter probes without building a rid list. *)
                Index.iter index scratch (fun rid ->
                    match Base_table.get table rid with
                    | None -> ()
                    | Some irow ->
                      st.s_scanned <- st.s_scanned + 1;
                      (match res with
                      | None -> emit (Tuple.concat row irow)
                      | Some test ->
                        let t = Tuple.concat row irow in
                        if is_true (test [] t) then emit t))));
    }
  | Plan.Aggregate _ | Plan.Sort _ | Plan.Distinct _ | Plan.Merge_join _
  | Plan.Union_all _ | Plan.Limit _ ->
    (* blocking operators are handled at the drain level; LIMIT's
       early-out is inherently serial *)
    raise Not_parallel

(* -- parallel hash-join build -------------------------------------------- *)

(** Build the join hash table.  When the build side is itself streamable
    and large enough, workers fill {e per-morsel} local tables which are
    then merged in ascending morsel order: since the sequential build
    prepends each row to its key's match list (lists end up in reverse
    scan order), [merged(k) = local_m(k) @ ... @ local_0(k)] reproduces
    the sequential list for every key exactly. *)
and build_join_table ctx ~opts ~(jfilter : Plan.jfilter option)
    (build : Plan.t) (build_keys : Plan.scalar list) :
    join_table * Bloom.t option =
  let want_jf = jfilter <> None && Bloom.enabled () in
  let promote_all_int tbl =
    (* re-key by raw int so probes skip the generic value hash *)
    let itbl = Exec.Itbl.create (2 * Exec.Vtbl.length tbl) in
    Exec.Vtbl.iter
      (fun v rows ->
        match v with
        | Value.Int i -> Exec.Itbl.replace itbl i rows
        | _ -> assert false)
      tbl;
    J_int itbl
  in
  match pipe_of ctx ~opts build with
  | exception Not_parallel -> build_sequential ctx ~want_jf build build_keys
  | bpipe -> (
    let n_morsels, msz = morsels_of ~opts bpipe.src in
    let dop = choose_dop ~opts ~rows:bpipe.src_rows ~n_morsels in
    if dop <= 1 then build_sequential ctx ~want_jf build build_keys
    else
      let stats = Array.init dop (fun _ -> new_stats ctx) in
      let next = Atomic.make 0 in
      match build_keys with
      | [ bk ] ->
        let all_int = Atomic.make true in
        let locals = Array.init n_morsels (fun _ -> Exec.Vtbl.create 16) in
        (* per-worker partial join filters: one shared [expected] means
           one shared geometry, so the OR-merge below is exact — the
           mirror of the per-morsel table merge *)
        let partials =
          if want_jf then
            Some (Array.init dop (fun _ -> Bloom.create ~expected:bpipe.src_rows))
          else None
        in
        Pool.run ~domains:dop (fun w ->
            let st = stats.(w) in
            let bf = Eval.compile_scalar_fn bk in
            let cur = ref locals.(0) in
            let emit row =
              let v = bf [] row in
              if not (Value.is_null v) then begin
                (match v, partials with
                | Value.Int i, Some bs -> Bloom.add bs.(w) i
                | Value.Int _, None -> ()
                | _ -> Atomic.set all_int false);
                let prev =
                  try Exec.Vtbl.find !cur v with Not_found -> []
                in
                Exec.Vtbl.replace !cur v (row :: prev)
              end
            in
            let feed = bpipe.make_feed st ~emit in
            let rec loop () =
              let m = Atomic.fetch_and_add next 1 in
              if m < n_morsels then begin
                cur := locals.(m);
                st.s_scanned <-
                  st.s_scanned + iter_morsel bpipe.src ~msz st m feed;
                loop ()
              end
            in
            loop ());
        fold_stats ctx stats;
        let g = Exec.Vtbl.create 256 in
        for m = 0 to n_morsels - 1 do
          Exec.Vtbl.iter
            (fun k l ->
              let old = try Exec.Vtbl.find g k with Not_found -> [] in
              Exec.Vtbl.replace g k (l @ old))
            locals.(m)
        done;
        if Atomic.get all_int then begin
          let bloom =
            match partials with
            | Some bs ->
              let b0 = bs.(0) in
              for w = 1 to dop - 1 do
                Bloom.union_into ~into:b0 bs.(w)
              done;
              ctx.Exec.jf_built <- ctx.Exec.jf_built + 1;
              Bloom.add_totals ~built:1 ~chunks:0 ~rows:0 ~dropped:0;
              Some b0
            | None -> None
          in
          (promote_all_int g, bloom)
        end
        else (J_val g, None)
      | _ ->
        let locals = Array.init n_morsels (fun _ -> Tuple.Tbl.create 16) in
        Pool.run ~domains:dop (fun w ->
            let st = stats.(w) in
            let bfs = List.map Eval.compile_scalar_fn build_keys in
            let cur = ref locals.(0) in
            let emit row =
              let key = Array.of_list (List.map (fun f -> f [] row) bfs) in
              if not (Array.exists Value.is_null key) then begin
                let prev = try Tuple.Tbl.find !cur key with Not_found -> [] in
                Tuple.Tbl.replace !cur key (row :: prev)
              end
            in
            let feed = bpipe.make_feed st ~emit in
            let rec loop () =
              let m = Atomic.fetch_and_add next 1 in
              if m < n_morsels then begin
                cur := locals.(m);
                st.s_scanned <-
                  st.s_scanned + iter_morsel bpipe.src ~msz st m feed;
                loop ()
              end
            in
            loop ());
        fold_stats ctx stats;
        let g = Tuple.Tbl.create 256 in
        for m = 0 to n_morsels - 1 do
          Tuple.Tbl.iter
            (fun k l ->
              let old = try Tuple.Tbl.find g k with Not_found -> [] in
              Tuple.Tbl.replace g k (l @ old))
            locals.(m)
        done;
        (J_multi g, multi_key_bloom ctx ~want_jf g))

(** Sequential build through {!Exec.open_plan}: handles any build-side
    plan (including ones with subplan probes) and is, by construction,
    the ordering oracle the parallel build reproduces. *)
and build_sequential (ctx : Exec.ctx) ~want_jf (build : Plan.t)
    (build_keys : Plan.scalar list) : join_table * Bloom.t option =
  let it = Exec.open_plan ctx [] build in
  match build_keys with
  | [ bk ] ->
    let tbl = Exec.Vtbl.create 256 in
    let all_int = ref true in
    let bf = Eval.compile_scalar_fn bk in
    let rec drain () =
      match it () with
      | None -> ()
      | Some b ->
        Batch.iter
          (fun row ->
            let v = bf [] row in
            if not (Value.is_null v) then begin
              (match v with Value.Int _ -> () | _ -> all_int := false);
              let prev = try Exec.Vtbl.find tbl v with Not_found -> [] in
              Exec.Vtbl.replace tbl v (row :: prev)
            end)
          b;
        drain ()
    in
    drain ();
    if !all_int then begin
      let itbl = Exec.Itbl.create (2 * Exec.Vtbl.length tbl) in
      Exec.Vtbl.iter
        (fun v rows ->
          match v with
          | Value.Int i -> Exec.Itbl.replace itbl i rows
          | _ -> assert false)
        tbl;
      let bloom =
        if want_jf then begin
          (* the finished table holds the exact distinct key set, so the
             filter is sized exactly *)
          let bl = Bloom.create ~expected:(Exec.Itbl.length itbl) in
          Exec.Itbl.iter (fun k _ -> Bloom.add bl k) itbl;
          ctx.Exec.jf_built <- ctx.Exec.jf_built + 1;
          Bloom.add_totals ~built:1 ~chunks:0 ~rows:0 ~dropped:0;
          Some bl
        end
        else None
      in
      (J_int itbl, bloom)
    end
    else (J_val tbl, None)
  | _ ->
    let tbl = Tuple.Tbl.create 256 in
    let bfs = List.map Eval.compile_scalar_fn build_keys in
    let rec drain () =
      match it () with
      | None -> ()
      | Some b ->
        Batch.iter
          (fun row ->
            let key = Array.of_list (List.map (fun f -> f [] row) bfs) in
            if not (Array.exists Value.is_null key) then begin
              let prev = try Tuple.Tbl.find tbl key with Not_found -> [] in
              Tuple.Tbl.replace tbl key (row :: prev)
            end)
          b;
        drain ()
    in
    drain ();
    (J_multi tbl, multi_key_bloom ctx ~want_jf tbl)

(* -- streaming a pipe over the pool -------------------------------------- *)

(** Run a pipe over its morsels and return its output batches in
    sequential row order.  Parallel mode sends per-morsel batch lists
    over a bounded channel and the consumer re-merges them by morsel
    index — the deterministic-merge half of the table queue. *)
and stream (ctx : Exec.ctx) ~opts (pipe : pipe) : Batch.t list =
  let n_morsels, msz = morsels_of ~opts pipe.src in
  let dop = choose_dop ~opts ~rows:pipe.src_rows ~n_morsels in
  let capacity = ctx.Exec.batch_capacity in
  if dop <= 1 then begin
    (* serial inline: same morsel walk, no channel *)
    let st = new_stats ctx in
    let out = ref [] in
    let buf = ref (Batch.create ~capacity ()) in
    let emit row =
      Batch.push !buf row;
      if Batch.is_full !buf then begin
        out := !buf :: !out;
        buf := Batch.create ~capacity ()
      end
    in
    let feed = pipe.make_feed st ~emit in
    for m = 0 to n_morsels - 1 do
      st.s_scanned <- st.s_scanned + iter_morsel pipe.src ~msz st m feed
    done;
    if not (Batch.is_empty !buf) then out := !buf :: !out;
    fold_stats ctx [| st |];
    List.rev !out
  end
  else begin
    let chan = Chan.create ~capacity:(2 * dop) in
    let next = Atomic.make 0 in
    let active = Atomic.make dop in
    let stats = Array.init dop (fun _ -> new_stats ctx) in
    let worker w =
      (* the last worker out closes the queue, even on error, so the
         consumer below can never block forever *)
      Fun.protect
        ~finally:(fun () ->
          if Atomic.fetch_and_add active (-1) = 1 then Chan.close chan)
        (fun () ->
          let st = stats.(w) in
          let out = ref [] in
          let buf = ref (Batch.create ~capacity ()) in
          let emit row =
            Batch.push !buf row;
            if Batch.is_full !buf then begin
              out := !buf :: !out;
              buf := Batch.create ~capacity ()
            end
          in
          let feed = pipe.make_feed st ~emit in
          let rec loop () =
            let m = Atomic.fetch_and_add next 1 in
            if m < n_morsels then begin
              out := [];
              buf := Batch.create ~capacity ();
              st.s_scanned <- st.s_scanned + iter_morsel pipe.src ~msz st m feed;
              if not (Batch.is_empty !buf) then out := !buf :: !out;
              Chan.push chan (m, List.rev !out);
              loop ()
            end
          in
          loop ())
    in
    let h = Pool.launch ~n:dop worker in
    (* consumer: re-merge by morsel index *)
    let pending = Hashtbl.create 32 in
    let next_m = ref 0 in
    let acc = ref [] in
    let rec flush () =
      match Hashtbl.find_opt pending !next_m with
      | Some bs ->
        Hashtbl.remove pending !next_m;
        acc := bs :: !acc;
        incr next_m;
        flush ()
      | None -> ()
    in
    let rec pump () =
      match Chan.pop chan with
      | None -> ()
      | Some (m, bs) ->
        if m = !next_m then begin
          acc := bs :: !acc;
          incr next_m;
          flush ()
        end
        else Hashtbl.replace pending m bs;
        pump ()
    in
    pump ();
    Pool.await h;
    fold_stats ctx stats;
    List.concat (List.rev !acc)
  end

(* -- blocking operators at the drain level ------------------------------- *)

(** Drain [input] in parallel and splice the resulting rows — already in
    sequential order — into the {e sequential} operator as a [Values]
    leaf.  Blocking operators thus parallelize their input while the
    order-sensitive part (float accumulation, sorting, distinct's
    first-occurrence scan) stays bit-exact. *)
and splice ctx ~opts (input : Plan.t) (rebuild : Plan.t -> Plan.t) :
    Batch.t list =
  let rows = Batch.list_to_rows (drain ctx ~opts input) in
  Exec.drain_batches (Exec.open_plan ctx [] (rebuild (Plan.Values rows)))

and drain_aggregate ctx ~opts ~input ~(keys : Plan.scalar list)
    ~(aggs : Plan.agg_spec list) : Batch.t list =
  let rebuild v = Plan.Aggregate { input = v; keys; aggs } in
  let mergeable =
    List.for_all
      (fun (a : Plan.agg_spec) ->
        match a.Plan.agg_fn with
        | Ast.Count_star | Ast.Count | Ast.Min | Ast.Max -> true
        | Ast.Sum | Ast.Avg -> false (* float addition is not associative *))
      aggs
  in
  if not mergeable then splice ctx ~opts input rebuild
  else
    match pipe_of ctx ~opts input with
    | exception Not_parallel -> splice ctx ~opts input rebuild
    | pipe -> (
      let n_morsels, msz = morsels_of ~opts pipe.src in
      let dop = choose_dop ~opts ~rows:pipe.src_rows ~n_morsels in
      if dop <= 1 then splice ctx ~opts input rebuild
      else begin
        (* per-morsel group tables, merged in morsel order so group
           first-appearance order matches the sequential scan *)
        let stats = Array.init dop (fun _ -> new_stats ctx) in
        let next = Atomic.make 0 in
        let aggs_a = Array.of_list aggs in
        let new_accs () =
          Array.map (fun (a : Plan.agg_spec) -> Agg_acc.create a.Plan.agg_fn) aggs_a
        in
        let locals =
          Array.init n_morsels (fun _ -> (Tuple.Tbl.create 16, ref []))
        in
        Pool.run ~domains:dop (fun w ->
            let st = stats.(w) in
            let kfs = Array.of_list (List.map Eval.compile_scalar_fn keys) in
            let afs =
              Array.map
                (fun (a : Plan.agg_spec) ->
                  match a.Plan.agg_arg with
                  | Some s ->
                    let f = Eval.compile_scalar_fn s in
                    fun row -> f [] row
                  | None -> fun _ -> Value.Int 1)
                aggs_a
            in
            let cur = ref locals.(0) in
            let emit row =
              let groups, order = !cur in
              let key = Array.map (fun f -> f [] row) kfs in
              let accs =
                match Tuple.Tbl.find groups key with
                | accs -> accs
                | exception Not_found ->
                  let accs = new_accs () in
                  Tuple.Tbl.add groups key accs;
                  order := key :: !order;
                  accs
              in
              for i = 0 to Array.length afs - 1 do
                Agg_acc.add accs.(i) (afs.(i) row)
              done
            in
            let feed = pipe.make_feed st ~emit in
            let rec loop () =
              let m = Atomic.fetch_and_add next 1 in
              if m < n_morsels then begin
                cur := locals.(m);
                st.s_scanned <- st.s_scanned + iter_morsel pipe.src ~msz st m feed;
                loop ()
              end
            in
            loop ());
        fold_stats ctx stats;
        let groups = Tuple.Tbl.create 64 in
        let order = ref [] in
        for m = 0 to n_morsels - 1 do
          let ltbl, lorder = locals.(m) in
          List.iter
            (fun key ->
              let laccs = Tuple.Tbl.find ltbl key in
              match Tuple.Tbl.find groups key with
              | accs ->
                for i = 0 to Array.length accs - 1 do
                  Agg_acc.merge accs.(i) laccs.(i)
                done
              | exception Not_found ->
                Tuple.Tbl.add groups key laccs;
                order := key :: !order)
            (List.rev !lorder)
        done;
        let rows =
          if Tuple.Tbl.length groups = 0 && keys = [] then
            (* global aggregate over empty input: identity row *)
            [
              Array.of_list
                (List.map
                   (fun (a : Plan.agg_spec) -> Agg_acc.empty_result a.Plan.agg_fn)
                   aggs);
            ]
          else
            List.rev_map
              (fun key ->
                let accs = Tuple.Tbl.find groups key in
                Tuple.concat key (Array.map Agg_acc.result accs))
              !order
        in
        Batch.of_list ~capacity:ctx.Exec.batch_capacity rows
      end)

(** Drain a plan to its batch list with sequential-identical row order.
    @raise Not_parallel if the plan cannot run on this path.

    With EXPLAIN ANALYZE armed this is also where parallel wall time
    lands: elapsed drain time is recorded against the plan node — as
    the {e open} of a blocking operator (whose output rows are counted
    here too, since the splice path rebuilds fresh unnumbered nodes),
    and as extra inclusive time on a streamed pipeline root (already
    marked opened by [pipe_of], its rows tallied by the workers). *)
and drain (ctx : Exec.ctx) ~opts (p : Plan.t) : Batch.t list =
  match ctx.Exec.analyze with
  | None -> drain_raw ctx ~opts p
  | Some acc ->
    let id = Opstats.id_of acc p in
    if id < 0 then drain_raw ctx ~opts p
    else begin
      let t0 = Opstats.now () in
      let bs = drain_raw ctx ~opts p in
      let dt = Opstats.now () -. t0 in
      (match p with
      | Plan.Aggregate _ | Plan.Sort _ | Plan.Distinct _ | Plan.Merge_join _
      | Plan.Union_all _ | Plan.Shared _ | Plan.Limit _ ->
        Opstats.note_open acc id dt;
        Opstats.add_rows acc id (Batch.list_length bs)
      | _ -> Opstats.add_time acc id dt);
      bs
    end

and drain_raw (ctx : Exec.ctx) ~opts (p : Plan.t) : Batch.t list =
  match p with
  | Plan.Aggregate { input; keys; aggs } ->
    drain_aggregate ctx ~opts ~input ~keys ~aggs
  | Plan.Sort (input, specs) ->
    splice ctx ~opts input (fun v -> Plan.Sort (v, specs))
  | Plan.Distinct input -> splice ctx ~opts input (fun v -> Plan.Distinct v)
  | Plan.Merge_join { left; right; left_keys; right_keys; residual } ->
    let l = Batch.list_to_rows (drain ctx ~opts left) in
    let r = Batch.list_to_rows (drain ctx ~opts right) in
    Exec.drain_batches
      (Exec.open_plan ctx []
         (Plan.Merge_join
            {
              left = Plan.Values l;
              right = Plan.Values r;
              left_keys;
              right_keys;
              residual;
            }))
  | Plan.Union_all inputs -> List.concat_map (drain ctx ~opts) inputs
  | Plan.Shared _ -> Exec.materialize ctx [] p
  | Plan.Limit _ -> raise Not_parallel
  | _ -> stream ctx ~opts (pipe_of ctx ~opts p)

(* -- public surface ------------------------------------------------------ *)

(** Cheap syntactic check: will {!run_batches} take the parallel path
    for this plan (as opposed to falling back to {!Exec})?  Used by
    schedulers to decide which plans to fan out; a mispredict only
    affects scheduling, never results. *)
let parallelizable (p : Plan.t) : bool =
  let pure pred = Eval.compile_pred_pure pred <> None in
  let rec go = function
    | Plan.Scan _ | Plan.Values _ | Plan.Shared _ -> true
    | Plan.Filter (i, pred) -> pure pred && go i
    | Plan.Project (i, _) -> go i
    | Plan.Nl_join { outer; cond; _ } -> pure cond && go outer
    | Plan.Hash_join { probe; residual; _ } -> pure residual && go probe
    | Plan.Index_join { outer; residual; _ } -> pure residual && go outer
    | Plan.Merge_join { left; right; _ } -> go left && go right
    | Plan.Aggregate { input; _ } -> go input
    | Plan.Sort (i, _) | Plan.Distinct i -> go i
    | Plan.Union_all is -> List.for_all go is
    | Plan.Limit _ -> false
  in
  go p

let default_morsel_rows () =
  Option.bind (Sys.getenv_opt "XNFDB_MORSEL_ROWS") int_of_string_opt

let make_opts ?domains ?morsel_rows ?threshold () =
  {
    domains = (match domains with Some d -> d | None -> Pool.default_domains ());
    morsel = (match morsel_rows with Some _ -> morsel_rows | None -> default_morsel_rows ());
    threshold =
      (match threshold with
      | Some t -> t
      | None -> Cost.parallel_threshold_rows ());
  }

(** Run a compiled plan across the domain pool; falls back to the
    sequential executor when the plan (or its size) does not warrant the
    parallel path.  Row order — and hence the result — is always
    identical to {!Exec.run_batches}. *)
let run_batches ?ctx ?domains ?morsel_rows ?threshold (c : Plan.compiled) :
    Batch.t list =
  let ctx = match ctx with Some c -> c | None -> Exec.make_ctx () in
  let opts = make_opts ?domains ?morsel_rows ?threshold () in
  match drain ctx ~opts c.Plan.plan with
  | bs ->
    ctx.Exec.batches_emitted <- ctx.Exec.batches_emitted + List.length bs;
    bs
  | exception Not_parallel -> Exec.run_batches ~ctx c

let run ?ctx ?domains ?morsel_rows ?threshold (c : Plan.compiled) :
    Tuple.t list =
  Batch.list_to_rows (run_batches ?ctx ?domains ?morsel_rows ?threshold c)

(** Materialize every [Shared] node reachable in [plans] into [ctx]'s
    CSE cache, fanning independent derivations out across the pool.
    Derivations are scheduled in waves over {!Exec.shared_nodes}'s
    dependency edges: a wave holds nodes whose dependencies are already
    installed, each running on its own domain against a frozen copy of
    the cache; results are installed into [ctx.shared] single-threaded
    between waves.  The final cache state — and each materialized batch
    list — is identical to running {!Exec.force_shared} over [plans]
    sequentially. *)
let force_shared_parallel (ctx : Exec.ctx) ?domains (plans : Plan.t list) :
    unit =
  let domains =
    match domains with Some d -> d | None -> Pool.default_domains ()
  in
  (* dedup across plans (first occurrence wins); skip already-installed *)
  let seen = Hashtbl.create 8 in
  let nodes =
    List.filter
      (fun ((bid, _, _) : int * Plan.t * int list) ->
        let fresh =
          (not (Hashtbl.mem seen bid))
          && not (Hashtbl.mem ctx.Exec.shared bid)
        in
        Hashtbl.replace seen bid ();
        fresh)
      (List.concat_map Exec.shared_nodes plans)
  in
  (* worker contexts are private; fold their counters back so EXPLAIN
     and cache accounting see the same totals as the serial path *)
  let absorb (w : Exec.ctx) =
    ctx.Exec.rows_scanned <- ctx.Exec.rows_scanned + w.Exec.rows_scanned;
    ctx.Exec.subqueries_run <- ctx.Exec.subqueries_run + w.Exec.subqueries_run;
    ctx.Exec.batches_emitted <-
      ctx.Exec.batches_emitted + w.Exec.batches_emitted;
    ctx.Exec.materializations <-
      ctx.Exec.materializations + w.Exec.materializations;
    ctx.Exec.chunks_scanned <- ctx.Exec.chunks_scanned + w.Exec.chunks_scanned;
    ctx.Exec.chunks_skipped <- ctx.Exec.chunks_skipped + w.Exec.chunks_skipped;
    ctx.Exec.rows_materialized <-
      ctx.Exec.rows_materialized + w.Exec.rows_materialized;
    ctx.Exec.chunks_faulted <- ctx.Exec.chunks_faulted + w.Exec.chunks_faulted;
    ctx.Exec.bytes_faulted <- ctx.Exec.bytes_faulted + w.Exec.bytes_faulted;
    ctx.Exec.jf_built <- ctx.Exec.jf_built + w.Exec.jf_built;
    ctx.Exec.jf_chunks_skipped <-
      ctx.Exec.jf_chunks_skipped + w.Exec.jf_chunks_skipped;
    ctx.Exec.jf_rows_skipped <-
      ctx.Exec.jf_rows_skipped + w.Exec.jf_rows_skipped;
    ctx.Exec.jf_dropped <- ctx.Exec.jf_dropped + w.Exec.jf_dropped
  in
  (* the serial route is always safe: [get_shared] materializes nested
     dependencies on demand, in the exact sequential order *)
  let serial (bid, inner, _) =
    ignore (Exec.materialize ctx [] (Plan.Shared (bid, inner)))
  in
  if domains <= 1 then List.iter serial nodes
  else begin
    let rec waves remaining =
      match remaining with
      | [] -> ()
      | _ -> (
        let ready, later =
          List.partition
            (fun ((_, _, deps) : int * Plan.t * int list) ->
              List.for_all (Hashtbl.mem ctx.Exec.shared) deps)
            remaining
        in
        match ready with
        | [] ->
          (* unsatisfiable edge (never for DAG plans): degrade serially *)
          List.iter serial remaining
        | [ one ] ->
          serial one;
          waves later
        | _ ->
          let arr = Array.of_list ready in
          let out = Array.make (Array.length arr) None in
          let next = Atomic.make 0 in
          Pool.run ~domains:(min domains (Array.length arr)) (fun _ ->
              let rec loop () =
                let i = Atomic.fetch_and_add next 1 in
                if i < Array.length arr then begin
                  let bid, inner, _ = arr.(i) in
                  let my_ctx =
                    {
                      (Exec.sibling_ctx ctx) with
                      Exec.shared = Hashtbl.copy ctx.Exec.shared;
                    }
                  in
                  let bs =
                    Exec.materialize my_ctx [] (Plan.Shared (bid, inner))
                  in
                  out.(i) <- Some (bs, my_ctx);
                  loop ()
                end
              in
              loop ());
          Array.iteri
            (fun i ((bid, _, _) : int * Plan.t * int list) ->
              match out.(i) with
              | Some (bs, w) ->
                Hashtbl.replace ctx.Exec.shared bid bs;
                absorb w
              | None -> ())
            arr;
          waves later)
    in
    waves nodes
  end
