(** Aggregate accumulators for hash aggregation. *)

open Relcore
module Ast = Sqlkit.Ast

type t = {
  fn : Ast.agg_fn;
  mutable count : int; (* non-null inputs seen *)
  mutable total : int; (* all inputs seen, for COUNT star *)
  mutable sum_i : int;
  mutable sum_f : float;
  mutable is_float : bool;
  mutable best : Value.t; (* MIN/MAX running value *)
}

let create fn =
  {
    fn;
    count = 0;
    total = 0;
    sum_i = 0;
    sum_f = 0.0;
    is_float = false;
    best = Value.Null;
  }

let add acc (v : Value.t) =
  acc.total <- acc.total + 1;
  if not (Value.is_null v) then begin
    acc.count <- acc.count + 1;
    match acc.fn with
    | Ast.Count_star | Ast.Count -> ()
    | Ast.Sum | Ast.Avg -> begin
      match v with
      | Value.Int i ->
        acc.sum_i <- acc.sum_i + i;
        acc.sum_f <- acc.sum_f +. float_of_int i
      | Value.Float f ->
        acc.is_float <- true;
        acc.sum_f <- acc.sum_f +. f
      | _ -> Errors.type_error "SUM/AVG on %s" (Value.to_string v)
    end
    | Ast.Min ->
      if Value.is_null acc.best || Value.compare v acc.best < 0 then acc.best <- v
    | Ast.Max ->
      if Value.is_null acc.best || Value.compare v acc.best > 0 then acc.best <- v
  end

(** Fold [src] into [dst] — used to combine partition-local aggregation
    tables after a parallel scan.  Only order-insensitive functions
    (COUNT/MIN/MAX) merge exactly; float SUM/AVG merge in partition
    order, which the parallel executor avoids by falling back to serial
    accumulation for those functions. *)
let merge dst src =
  assert (dst.fn = src.fn);
  dst.total <- dst.total + src.total;
  dst.count <- dst.count + src.count;
  dst.sum_i <- dst.sum_i + src.sum_i;
  dst.sum_f <- dst.sum_f +. src.sum_f;
  dst.is_float <- dst.is_float || src.is_float;
  if not (Value.is_null src.best) then
    match dst.fn with
    | Ast.Min ->
      if Value.is_null dst.best || Value.compare src.best dst.best < 0 then
        dst.best <- src.best
    | Ast.Max ->
      if Value.is_null dst.best || Value.compare src.best dst.best > 0 then
        dst.best <- src.best
    | _ -> ()

let result acc : Value.t =
  match acc.fn with
  | Ast.Count_star -> Value.Int acc.total
  | Ast.Count -> Value.Int acc.count
  | Ast.Sum ->
    if acc.count = 0 then Value.Null
    else if acc.is_float then Value.Float acc.sum_f
    else Value.Int acc.sum_i
  | Ast.Avg ->
    if acc.count = 0 then Value.Null
    else Value.Float (acc.sum_f /. float_of_int acc.count)
  | Ast.Min | Ast.Max -> acc.best

(** Result over an empty input (global aggregates). *)
let empty_result fn : Value.t =
  match fn with
  | Ast.Count_star | Ast.Count -> Value.Int 0
  | Ast.Sum | Ast.Avg | Ast.Min | Ast.Max -> Value.Null
