(** Process-wide, mutex-guarded LRU cache for materialized results
    (shared-subexpression batch lists, assembled CO-view streams).

    Payloads are [exn] — the universal-type trick — so layers above the
    executor can cache their own types here without dependency cycles;
    each caller matches only on its own constructor.  Keys must embed a
    version fragment ({!Optimizer.Plan.version_key}) so DML invalidates
    by key drift rather than explicit purging.

    Budget: [XNFDB_RESULT_CACHE_MB] megabytes (default 64; 0 disables). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

val enabled : unit -> bool
(** True when the byte budget is positive. *)

val set_budget_mb : int option -> unit
(** Test hook: override (or [None] to restore) the env-derived budget. *)

val find : string -> exn option
(** Counts a hit or miss; refreshes the entry's LRU stamp. *)

val store : string -> bytes:int -> exn -> unit
(** Insert and evict least-recently-used entries over budget.  Entries
    larger than the whole budget are not stored. *)

val clear : unit -> unit
(** Drop every entry (DDL, tests).  Stats survive; see {!reset_stats}. *)

val reset_stats : unit -> unit
val stats : unit -> stats

val batch_list_bytes : Relcore.Batch.t list -> int
(** Rough heap footprint of a materialized table queue. *)
