(** Scalar and predicate evaluation with SQL three-valued logic. *)

open Relcore
module Ast = Sqlkit.Ast
module Plan = Optimizer.Plan

type frames = Tuple.t list
(** Correlation frames: enclosing tuples, innermost first. *)

val frame_get : frames -> int -> int -> Value.t

val arith : Ast.binop -> Value.t -> Value.t -> Value.t
(** Null-propagating arithmetic; [+] concatenates strings. *)

val negate : Value.t -> Value.t

val apply_fn : string -> Value.t list -> Value.t
(** Scalar function dispatch (UPPER, LOWER, LENGTH, SUBSTR, TRIM, ABS,
    COALESCE); null-propagating except COALESCE. *)

val scalar : frames -> Tuple.t -> Plan.scalar -> Value.t

val compile_scalar_fn : Plan.scalar -> frames -> Tuple.t -> Value.t
(** Compile a scalar once into a closure so per-row evaluation pays no
    AST dispatch — the amortization batch-at-a-time execution buys. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_]. *)

val compare3 : Ast.cmpop -> Value.t -> Value.t -> bool option
(** Three-valued comparison: [None] when either side is null. *)

val and3 : bool option -> bool option -> bool option
val or3 : bool option -> bool option -> bool option
val not3 : bool option -> bool option

val compile_pred_pure : Plan.ppred -> (frames -> Tuple.t -> bool option) option
(** Compile a predicate with no subplan probes into a closure; [None]
    when it contains [P_exists]/[P_in] (those need the executor). *)

(** {2 Batch entry points} *)

val scalar_batch : frames -> Batch.t -> Plan.scalar -> Value.t array
(** Evaluate a scalar over every selected row into a dense array. *)

val select_batch :
  frames -> Batch.t -> (frames -> Tuple.t -> bool option) -> unit
(** Refine the batch's selection vector in place, keeping rows where the
    test yields [Some true] (SQL semantics: unknown drops the row). *)

val compile_project : Plan.scalar array -> frames -> Batch.t -> Batch.t
(** Compile a projection once; apply the result per batch. *)

val project_batch : frames -> Batch.t -> Plan.scalar array -> Batch.t
(** Project every selected row through the columns into a fresh dense
    batch (the vectorized [Project] operator body). *)
