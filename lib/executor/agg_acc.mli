(** Aggregate accumulators for hash aggregation. *)

open Relcore
module Ast = Sqlkit.Ast

type t

val create : Ast.agg_fn -> t
val add : t -> Value.t -> unit

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst] (combining partition-local
    accumulators).  Exact for COUNT/MIN/MAX; float SUM/AVG pick up
    partition-order rounding, so parallel plans only use it for the
    order-insensitive functions. *)

val result : t -> Value.t

val empty_result : Ast.agg_fn -> Value.t
(** Result over an empty input: COUNT is 0, the others NULL. *)
