(** The query evaluation system: demand-driven pipelined interpretation
    of QEPs ("table queue evaluation", paper Sect. 3.1), executed a
    {e batch} at a time.  The one-tuple API ({!cursor}, {!to_seq}) is a
    thin adapter over the batched pipeline. *)

open Relcore
module Plan = Optimizer.Plan

(** Execution context shared across the (possibly many) plans of one
    multi-output query: the CSE cache, the inner-materialization cache,
    and instrumentation counters. *)
type ctx = {
  shared : (int, Batch.t list) Hashtbl.t;
  mutable materialized : (Plan.t * Batch.t list) list;
      (* join inners materialized once per physical plan object *)
  batch_capacity : int; (* rows per batch for this query's table queues *)
  result_cache : bool; (* promote CSE materializations to Result_cache *)
  snapshot : (Base_table.t -> Tuple.t option array) option;
      (* MVCC-lite frozen view: all base-table access reads through it *)
  mutable rows_scanned : int; (* base-table tuples fetched *)
  mutable subqueries_run : int; (* correlated subplan executions *)
  mutable batches_emitted : int; (* batches delivered at plan roots *)
  mutable materializations : int; (* shared/inner drain runs (cache misses) *)
  mutable chunks_scanned : int; (* colstore chunks whose rows were visited *)
  mutable chunks_skipped : int; (* colstore chunks zone-pruned wholesale *)
  mutable rows_materialized : int; (* heap tuples fetched by columnar scans *)
  mutable chunks_faulted : int; (* cold colstore chunks read from the spill file *)
  mutable bytes_faulted : int; (* encoded bytes copied back by those reads *)
  mutable jf_built : int; (* sideways join filters built *)
  mutable jf_chunks_skipped : int; (* probe chunks pruned by join-filter range *)
  mutable jf_rows_skipped : int; (* probe rows dropped by a join filter *)
  mutable jf_dropped : int; (* join filters adaptively disabled *)
  mutable analyze : Opstats.t option;
      (* EXPLAIN ANALYZE accumulator; owned by the query's main domain
         ([sibling_ctx] drops it) *)
}

exception Cached_batches of Batch.t list
(** {!Result_cache} payload constructor for materialized table queues
    (the executor's slice of the universal-type cache). *)

val make_ctx :
  ?batch_capacity:int ->
  ?result_cache:bool ->
  ?snapshot:(Base_table.t -> Tuple.t option array) ->
  unit ->
  ctx
(** [batch_capacity] defaults to [Batch.default_capacity ()] (the
    [XNFDB_BATCH_SIZE] knob), snapshotted at context creation so one
    query sees one stable batch size.  [result_cache] (default
    [Result_cache.enabled ()]) controls cross-query promotion of
    uncorrelated CSE materializations.

    [snapshot] makes the context an MVCC-lite reader: base-table scans
    and index-join probes read the given frozen slot-array view (see
    {!Relcore.Snapshot.rows}) instead of the live heap.  Columnar access
    paths and the cross-query result cache — both of which track live
    state — are bypassed.  Pass [result_cache:false] alongside so CSE
    promotion stays off.  Any access may raise {!Relcore.Snapshot.Stale}
    once the undo window has been outrun. *)

module Vtbl : Hashtbl.S with type key = Value.t
(** Value-keyed table used by the single-column join fast path (shared
    with the parallel executor's build-side mirror). *)

module Itbl : Hashtbl.S with type key = int
(** Raw-int-keyed table for the all-integer join-key case. *)

type iter = unit -> Tuple.t option
type batch_iter = unit -> Batch.t option

val iter_of_batches : Batch.t list -> batch_iter
val drain_batches : batch_iter -> Batch.t list

val open_plan : ctx -> Eval.frames -> Plan.t -> batch_iter
val eval_pred : ctx -> Eval.frames -> Tuple.t -> Plan.ppred -> bool option

val materialize : ctx -> Eval.frames -> Plan.t -> Batch.t list
(** Materialize a subplan into a batch list.  Uncorrelated subplans are
    cached by physical plan identity in the context, so every consumer
    of the same subplan object drains it exactly once. *)

val force_shared : ctx -> Plan.t -> unit
(** Materialize every [Shared] node reachable in the plan (bottom-up);
    afterwards executing it — even from several domains sharing the
    context — only reads the CSE cache. *)

val shared_nodes : Plan.t -> (int * Plan.t * int list) list
(** Every [Shared] node reachable in the plan (predicate subplans
    included) as [(bid, inner, deps)], where [deps] are the box ids of
    the [Shared] nodes [inner] reads directly.  Deduplicated by box id,
    bottom-up discovery order — dependencies precede dependents.  The
    dependency structure drives {!Exec_par.force_shared_parallel}'s
    wave schedule. *)

val sibling_ctx : ctx -> ctx
(** A context for another domain sharing this one's CSE cache. *)

val scan_victims : ctx -> Base_table.t -> Plan.ppred -> (Heap.rid * Tuple.t) list
(** UPDATE/DELETE victim finding through the executor's batch layer:
    every live row satisfying the predicate, descending by rid (the
    order mutation application historically used, which unique-violation
    timing observably depends on).  Uses the columnar path — zone-map
    chunk pruning included — when a conjunct compiles to a chunk kernel,
    and batched selection vectors otherwise. *)

val open_batches : ?ctx:ctx -> Plan.compiled -> batch_iter
(** Open a compiled plan as a demand-driven batch cursor (the table
    queue itself); counts delivered batches in [ctx.batches_emitted]. *)

val run_batches : ?ctx:ctx -> Plan.compiled -> Batch.t list
val run : ?ctx:ctx -> Plan.compiled -> Tuple.t list

val to_seq : batch_iter -> Tuple.t Seq.t
(** One-tuple-at-a-time adapter over a batch cursor. *)

val cursor : ?ctx:ctx -> Plan.compiled -> iter
(** Demand-driven one-tuple cursor (compat shim over {!open_batches}). *)
