(** Reference tuple-at-a-time interpreter — the pre-batching evaluation
    strategy, kept verbatim as (a) the differential-testing oracle for
    the batched executor in {!Exec} and (b) the baseline of the
    rows/sec benchmark.  Every operator passes one [Tuple.t option] per
    closure call.

    It shares {!Exec.ctx} (and therefore the [Shared]-node cache, stored
    as batch lists) so both executors can be pointed at the same
    context. *)

open Relcore
module Plan = Optimizer.Plan

type ctx = Exec.ctx

let make_ctx = Exec.make_ctx

type iter = unit -> Tuple.t option

let iter_of_list (rows : Tuple.t list) : iter =
  let rest = ref rows in
  fun () ->
    match !rest with
    | [] -> None
    | r :: tl ->
      rest := tl;
      Some r

let iter_of_array (rows : Tuple.t array) : iter =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length rows then None
    else begin
      let r = rows.(!i) in
      incr i;
      Some r
    end

let drain (it : iter) : Tuple.t list =
  let rec go acc = match it () with None -> List.rev acc | Some t -> go (t :: acc) in
  go []

let rec open_plan (ctx : ctx) (frames : Eval.frames) (p : Plan.t) : iter =
  match p with
  | Plan.Scan t ->
    let scan = Base_table.scan t in
    fun () ->
      (match scan () with
      | Some (_rid, tuple) ->
        ctx.Exec.rows_scanned <- ctx.Exec.rows_scanned + 1;
        Some tuple
      | None -> None)
  | Plan.Values rows -> iter_of_list rows
  | Plan.Filter (input, pred) ->
    let it = open_plan ctx frames input in
    let rec next () =
      match it () with
      | None -> None
      | Some t ->
        if eval_pred ctx frames t pred = Some true then Some t else next ()
    in
    next
  | Plan.Project (input, cols) ->
    let it = open_plan ctx frames input in
    fun () ->
      (match it () with
      | None -> None
      | Some t -> Some (Array.map (Eval.scalar frames t) cols))
  | Plan.Nl_join { outer; inner; cond } ->
    let outer_it = open_plan ctx frames outer in
    let inner_rows = lazy (Array.of_list (drain (open_plan ctx frames inner))) in
    let cur_outer = ref None and inner_pos = ref 0 in
    let rec next () =
      match !cur_outer with
      | None -> begin
        match outer_it () with
        | None -> None
        | Some o ->
          cur_outer := Some o;
          inner_pos := 0;
          next ()
      end
      | Some o ->
        let rows = Lazy.force inner_rows in
        if !inner_pos >= Array.length rows then begin
          cur_outer := None;
          next ()
        end
        else begin
          let i = rows.(!inner_pos) in
          incr inner_pos;
          let t = Tuple.concat o i in
          if eval_pred ctx frames t cond = Some true then Some t else next ()
        end
    in
    next
  | Plan.Hash_join { build; probe; build_keys; probe_keys; residual; jfilter = _ }
    ->
    let table =
      lazy
        (let tbl = Tuple.Tbl.create 256 in
         let it = open_plan ctx frames build in
         let rec fill () =
           match it () with
           | None -> ()
           | Some row ->
             let key =
               Array.of_list (List.map (Eval.scalar frames row) build_keys)
             in
             if not (Array.exists Value.is_null key) then begin
               let prev =
                 Option.value (Tuple.Tbl.find_opt tbl key) ~default:[]
               in
               Tuple.Tbl.replace tbl key (row :: prev)
             end;
             fill ()
         in
         fill ();
         tbl)
    in
    let probe_it = open_plan ctx frames probe in
    let matches = ref [] and cur_probe = ref [||] in
    let rec next () =
      match !matches with
      | m :: rest ->
        matches := rest;
        let t = Tuple.concat !cur_probe m in
        if eval_pred ctx frames t residual = Some true then Some t else next ()
      | [] -> begin
        match probe_it () with
        | None -> None
        | Some row ->
          let key =
            Array.of_list (List.map (Eval.scalar frames row) probe_keys)
          in
          if Array.exists Value.is_null key then next ()
          else begin
            cur_probe := row;
            matches :=
              Option.value (Tuple.Tbl.find_opt (Lazy.force table) key) ~default:[];
            next ()
          end
      end
    in
    next
  | Plan.Index_join { outer; table; index; keys; residual } ->
    let outer_it = open_plan ctx frames outer in
    let matches = ref [] and cur_outer = ref [||] in
    let rec next () =
      match !matches with
      | rid :: rest -> begin
        matches := rest;
        match Base_table.get table rid with
        | None -> next ()
        | Some row ->
          ctx.Exec.rows_scanned <- ctx.Exec.rows_scanned + 1;
          let t = Tuple.concat !cur_outer row in
          if eval_pred ctx frames t residual = Some true then Some t else next ()
      end
      | [] -> begin
        match outer_it () with
        | None -> None
        | Some row ->
          let key = Array.of_list (List.map (Eval.scalar frames row) keys) in
          if Array.exists Value.is_null key then next ()
          else begin
            cur_outer := row;
            matches := Index.lookup index key;
            next ()
          end
      end
    in
    next
  | Plan.Merge_join { left; right; left_keys; right_keys; residual } ->
    let keyed plan keys =
      lazy
        (let rows = Array.of_list (drain (open_plan ctx frames plan)) in
         let with_keys =
           Array.map
             (fun row ->
               (Array.of_list (List.map (Eval.scalar frames row) keys), row))
             rows
         in
         let with_keys =
           Array.of_list
             (List.filter
                (fun (k, _) -> not (Array.exists Value.is_null k))
                (Array.to_list with_keys))
         in
         (* tied keys stay in input order (position tiebreaker), matching
            the batched executor's run order *)
         let dec = Array.mapi (fun i (k, row) -> (k, i, row)) with_keys in
         Array.sort
           (fun (k1, i1, _) (k2, i2, _) ->
             let c = Tuple.compare k1 k2 in
             if c <> 0 then c else Int.compare i1 i2)
           dec;
         Array.map (fun (k, _, row) -> (k, row)) dec)
    in
    let ls = keyed left left_keys and rs = keyed right right_keys in
    let li = ref 0 and ri = ref 0 in
    let group = ref [] in
    let rec refill () =
      let l = Lazy.force ls and r = Lazy.force rs in
      if !li >= Array.length l || !ri >= Array.length r then false
      else begin
        let lk, _ = l.(!li) and rk, _ = r.(!ri) in
        let c = Tuple.compare lk rk in
        if c < 0 then begin
          incr li;
          refill ()
        end
        else if c > 0 then begin
          incr ri;
          refill ()
        end
        else begin
          let lstart = !li and rstart = !ri in
          while !li < Array.length l && Tuple.compare (fst l.(!li)) lk = 0 do
            incr li
          done;
          while !ri < Array.length r && Tuple.compare (fst r.(!ri)) rk = 0 do
            incr ri
          done;
          let acc = ref [] in
          for i = lstart to !li - 1 do
            for j = rstart to !ri - 1 do
              acc := Tuple.concat (snd l.(i)) (snd r.(j)) :: !acc
            done
          done;
          group := List.rev !acc;
          true
        end
      end
    in
    let rec next () =
      match !group with
      | t :: rest ->
        group := rest;
        if eval_pred ctx frames t residual = Some true then Some t else next ()
      | [] -> if refill () then next () else None
    in
    next
  | Plan.Distinct input ->
    let it = open_plan ctx frames input in
    let seen = Tuple.Tbl.create 256 in
    let rec next () =
      match it () with
      | None -> None
      | Some t ->
        if Tuple.Tbl.mem seen t then next ()
        else begin
          Tuple.Tbl.add seen t ();
          Some t
        end
    in
    next
  | Plan.Aggregate { input; keys; aggs } ->
    let result =
      lazy
        (let it = open_plan ctx frames input in
         let groups = Tuple.Tbl.create 64 in
         let order = ref [] in
         let rec fill () =
           match it () with
           | None -> ()
           | Some row ->
             let key = Array.of_list (List.map (Eval.scalar frames row) keys) in
             let accs =
               match Tuple.Tbl.find_opt groups key with
               | Some accs -> accs
               | None ->
                 let accs = Array.map (fun a -> Agg_acc.create a.Plan.agg_fn) (Array.of_list aggs) in
                 Tuple.Tbl.add groups key accs;
                 order := key :: !order;
                 accs
             in
             List.iteri
               (fun i (a : Plan.agg_spec) ->
                 let v =
                   match a.Plan.agg_arg with
                   | Some s -> Eval.scalar frames row s
                   | None -> Value.Int 1
                 in
                 Agg_acc.add accs.(i) v)
               aggs;
             fill ()
         in
         fill ();
         let emit key =
           let accs = Tuple.Tbl.find groups key in
           Tuple.concat key (Array.map Agg_acc.result accs)
         in
         if Tuple.Tbl.length groups = 0 && keys = [] then
           [ Array.of_list
               (List.map (fun a -> Agg_acc.empty_result a.Plan.agg_fn) aggs) ]
         else List.rev_map emit !order)
    in
    let it = ref None in
    fun () ->
      (match !it with
      | Some i -> i ()
      | None ->
        let i = iter_of_list (Lazy.force result) in
        it := Some i;
        i ())
  | Plan.Sort (input, specs) ->
    let sorted =
      lazy
        (let rows = Array.of_list (drain (open_plan ctx frames input)) in
         let cmp a b =
           let rec go = function
             | [] -> 0
             | (i, dir) :: rest ->
               let c = Value.compare a.(i) b.(i) in
               let c = match dir with `Asc -> c | `Desc -> -c in
               if c <> 0 then c else go rest
           in
           go specs
         in
         Array.stable_sort cmp rows;
         rows)
    in
    let pos = ref 0 in
    fun () ->
      let rows = Lazy.force sorted in
      if !pos >= Array.length rows then None
      else begin
        let r = rows.(!pos) in
        incr pos;
        Some r
      end
  | Plan.Limit (input, n) ->
    let it = open_plan ctx frames input in
    let count = ref 0 in
    fun () ->
      if !count >= n then None
      else begin
        incr count;
        it ()
      end
  | Plan.Union_all inputs ->
    let remaining = ref inputs and cur = ref (fun () -> None) in
    let rec next () =
      match !cur () with
      | Some t -> Some t
      | None -> begin
        match !remaining with
        | [] -> None
        | p :: rest ->
          remaining := rest;
          cur := open_plan ctx frames p;
          next ()
      end
    in
    next
  | Plan.Shared (bid, input) -> begin
    match Hashtbl.find_opt ctx.Exec.shared bid with
    | Some bs -> iter_of_list (Batch.list_to_rows bs)
    | None ->
      let rows = drain (open_plan ctx frames input) in
      ctx.Exec.materializations <- ctx.Exec.materializations + 1;
      Hashtbl.replace ctx.Exec.shared bid (Batch.of_list rows);
      iter_of_list rows
  end

and eval_pred ctx (frames : Eval.frames) (tuple : Tuple.t) (p : Plan.ppred) :
    bool option =
  match p with
  | Plan.P_true -> Some true
  | Plan.P_false -> Some false
  | Plan.P_cmp (op, a, b) ->
    Eval.compare3 op (Eval.scalar frames tuple a) (Eval.scalar frames tuple b)
  | Plan.P_and (a, b) ->
    Eval.and3 (eval_pred ctx frames tuple a) (eval_pred ctx frames tuple b)
  | Plan.P_or (a, b) ->
    Eval.or3 (eval_pred ctx frames tuple a) (eval_pred ctx frames tuple b)
  | Plan.P_not a -> Eval.not3 (eval_pred ctx frames tuple a)
  | Plan.P_is_null s -> Some (Value.is_null (Eval.scalar frames tuple s))
  | Plan.P_is_not_null s -> Some (not (Value.is_null (Eval.scalar frames tuple s)))
  | Plan.P_like (s, pat) -> begin
    match Eval.scalar frames tuple s with
    | Value.Null -> None
    | Value.Str str -> Some (Eval.like_match ~pattern:pat str)
    | v -> Errors.type_error "LIKE on non-string %s" (Value.to_string v)
  end
  | Plan.P_exists sub ->
    ctx.Exec.subqueries_run <- ctx.Exec.subqueries_run + 1;
    let it = open_plan ctx (tuple :: frames) sub in
    Some (it () <> None)
  | Plan.P_in (s, sub) -> begin
    let v = Eval.scalar frames tuple s in
    ctx.Exec.subqueries_run <- ctx.Exec.subqueries_run + 1;
    let it = open_plan ctx (tuple :: frames) sub in
    let saw_null = ref false in
    let rec go () =
      match it () with
      | None -> if Value.is_null v || !saw_null then None else Some false
      | Some row ->
        let w = row.(0) in
        if Value.is_null w || Value.is_null v then begin
          saw_null := true;
          go ()
        end
        else if Value.compare v w = 0 then Some true
        else go ()
    in
    go ()
  end

(** Run a compiled plan to completion, one tuple at a time. *)
let run ?(ctx = make_ctx ()) (c : Plan.compiled) : Tuple.t list =
  drain (open_plan ctx [] c.Plan.plan)

(** Open a compiled plan as a demand-driven cursor. *)
let cursor ?(ctx = make_ctx ()) (c : Plan.compiled) : iter =
  open_plan ctx [] c.Plan.plan
