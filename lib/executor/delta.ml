(** Incremental view maintenance: push base-table row deltas through
    compiled plan operators instead of recomputing from scratch.

    Every maintained operator output is modelled as a set of
    [(prov, row)] pairs where [prov] — the provenance order key — is a
    lexicographically ordered vector that reproduces the executor's
    emission order exactly:

    - [Scan]: [S_int rid] (heap scans visit slots ascending; the
      columnar path is positional with slots, so byte-identical);
    - [Hash_join]: probe prov ++ negate(build prov) — the build side
      conses per key in scan order and the probe emits newest-first,
      i.e. {e descending} build prov;
    - [Index_join]: outer prov ++ [S_int (-rid)] — postings are kept
      rid-sorted and {!Relcore.Index.iter} walks them descending, so
      the inner order is a pure function of the row set;
    - [Sort]: one [S_val (key, dir)] segment per sort key, then the
      input prov as the stable tie-break;
    - [Union_all]: [S_int branch] ++ input prov.

    Sorting an output by prov therefore yields the batch order
    [Exec.run_batches] would produce, which is what CO-view assembly
    (and hence [Hetstream] byte identity) depends on.  Deltas are
    signed multisets of such pairs; joins use the exact bilinear rule
    dOut = dP ⋈ B_old ∪ P_new ⋈ dB, applied via in-operator mirrors of
    both sides, which is correct for simultaneous batch deltas no
    matter how the underlying DML interleaved across tables.

    Shapes outside {!Optimizer.Plan.maintainable} (aggregation,
    DISTINCT, merge/nested-loop joins, LIMIT, correlated subplans)
    raise {!Unmaintainable}; callers fall back to invalidate +
    recompute, so maintenance is never load-bearing for correctness. *)

open Relcore
module Plan = Optimizer.Plan

exception Unmaintainable of string

let unmaintainable fmt =
  Printf.ksprintf (fun s -> raise (Unmaintainable s)) fmt

(* -- provenance order keys ---------------------------------------------- *)

type seg = S_int of int | S_val of Value.t * int (* dir: 1 asc, -1 desc *)
type prov = seg array

let compare_seg a b =
  match a, b with
  | S_int x, S_int y -> Int.compare x y
  | S_val (x, dx), S_val (y, _) -> dx * Value.compare x y
  | S_int _, S_val _ -> -1
  | S_val _, S_int _ -> 1

let compare_prov (a : prov) (b : prov) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Int.compare (Array.length a) (Array.length b)
    else
      let c = compare_seg a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Order-reversing bijection on segments: prepending negated build provs
   makes "newest build row first" the ascending order. *)
let negate (p : prov) : prov =
  Array.map
    (function S_int i -> S_int (-1 - i) | S_val (v, d) -> S_val (v, -d))
    p

(* -- maintainer nodes --------------------------------------------------- *)

type drow = int * prov * Tuple.t (* sign (+1/-1), prov, row *)

type window = {
  wgen : int; (* maintenance generation, for shared-subtree memoization *)
  wdeltas : (int, (int * Heap.delta_op) list) Hashtbl.t; (* by tid *)
}

type bucket = (prov * Tuple.t) list ref

type node =
  | N_scan of Base_table.t
  | N_values of Tuple.t list
  | N_filter of node * (Tuple.t -> bool)
  | N_project of node * (Tuple.t -> Tuple.t)
  | N_hash_join of hj
  | N_index_join of ij
  | N_sort of node * (Tuple.t -> seg) array
  | N_union of node array
  | N_shared of shared_cell

and hj = {
  hbuild : node;
  hprobe : node;
  bkey : Tuple.t -> Tuple.t option; (* None: some key NULL, never joins *)
  pkey : Tuple.t -> Tuple.t option;
  hres : (Tuple.t -> bool) option; (* over concat (probe, build) *)
  btbl : bucket Tuple.Tbl.t;
  ptbl : bucket Tuple.Tbl.t;
}

and ij = {
  iouter : node;
  itable : Base_table.t;
  iindex : Index.t;
  okey : Tuple.t -> Tuple.t option; (* over outer rows *)
  ires : (Tuple.t -> bool) option; (* over concat (outer, inner) *)
  imirror : (Heap.rid * Tuple.t) list ref Tuple.Tbl.t;
      (* inner rows by key: postings are rid-sorted in the index, so the
         rid alone reproduces the probe order — no age counter needed *)
  iotbl : bucket Tuple.Tbl.t; (* outer rows, by key *)
}

and shared_cell = {
  scell : node;
  mutable sfill : (prov * Tuple.t) list option;
  mutable sgen : int;
  mutable sdelta : drow list;
}

(* -- compilation -------------------------------------------------------- *)

type ctx = { cells : (int, node) Hashtbl.t }

let make_ctx () = { cells = Hashtbl.create 8 }

let key_fn (keys : Plan.scalar list) : Tuple.t -> Tuple.t option =
  let fs = Array.of_list (List.map Eval.compile_scalar_fn keys) in
  fun row ->
    let n = Array.length fs in
    let out = Array.make n Value.Null in
    let ok = ref true in
    for k = 0 to n - 1 do
      let v = fs.(k) [] row in
      if Value.is_null v then ok := false;
      out.(k) <- v
    done;
    if !ok then Some out else None

let res_fn (p : Plan.ppred) : (Tuple.t -> bool) option =
  match p with
  | Plan.P_true -> None
  | _ -> (
    match Eval.compile_pred_pure p with
    | Some f -> Some (fun t -> f [] t = Some true)
    | None -> unmaintainable "impure predicate")

let rec compile (ctx : ctx) (p : Plan.t) : node =
  match p with
  | Plan.Scan t -> N_scan t
  | Plan.Values rows -> N_values rows
  | Plan.Filter (input, pred) -> (
    match res_fn pred with
    | Some f -> N_filter (compile ctx input, f)
    | None -> compile ctx input)
  | Plan.Project (input, cols) ->
    let fs = Array.map Eval.compile_scalar_fn cols in
    N_project (compile ctx input, fun row -> Array.map (fun f -> f [] row) fs)
  | Plan.Hash_join { build; probe; build_keys; probe_keys; residual; _ } ->
    N_hash_join
      {
        hbuild = compile ctx build;
        hprobe = compile ctx probe;
        bkey = key_fn build_keys;
        pkey = key_fn probe_keys;
        hres = res_fn residual;
        btbl = Tuple.Tbl.create 256;
        ptbl = Tuple.Tbl.create 256;
      }
  | Plan.Index_join { outer; table; index; keys; residual } ->
    N_index_join
      {
        iouter = compile ctx outer;
        itable = table;
        iindex = index;
        okey = key_fn keys;
        ires = res_fn residual;
        imirror = Tuple.Tbl.create 256;
        iotbl = Tuple.Tbl.create 256;
      }
  | Plan.Sort (input, specs) ->
    let segs =
      Array.of_list
        (List.map
           (fun (i, dir) ->
             let d = match dir with `Asc -> 1 | `Desc -> -1 in
             fun (row : Tuple.t) -> S_val (row.(i), d))
           specs)
    in
    N_sort (compile ctx input, segs)
  | Plan.Union_all inputs ->
    N_union (Array.of_list (List.map (compile ctx) inputs))
  | Plan.Shared (bid, inner) -> (
    match Hashtbl.find_opt ctx.cells bid with
    | Some n -> n
    | None ->
      let n =
        N_shared
          { scell = compile ctx inner; sfill = None; sgen = -1; sdelta = [] }
      in
      Hashtbl.add ctx.cells bid n;
      n)
  | Plan.Nl_join _ | Plan.Merge_join _ | Plan.Distinct _ | Plan.Aggregate _
  | Plan.Limit _ ->
    unmaintainable "unsupported operator"

(* -- mirrors ------------------------------------------------------------ *)

let bucket_add tbl key prov row =
  match Tuple.Tbl.find_opt tbl key with
  | Some b -> b := (prov, row) :: !b
  | None -> Tuple.Tbl.add tbl key (ref [ (prov, row) ])

let bucket_remove tbl key prov =
  match Tuple.Tbl.find_opt tbl key with
  | Some b ->
    let found = ref false in
    b :=
      List.filter
        (fun (p, _) ->
          if (not !found) && compare_prov p prov = 0 then begin
            found := true;
            false
          end
          else true)
        !b;
    if not !found then unmaintainable "mirror missing a deleted row";
    if !b = [] then Tuple.Tbl.remove tbl key
  | None -> unmaintainable "mirror missing a deleted key"

let bucket_iter tbl key f =
  match Tuple.Tbl.find_opt tbl key with
  | Some b -> List.iter f !b
  | None -> ()

(* -- initial fill ------------------------------------------------------- *)

(* Unordered [(prov, row)] stream of the node's current contents, with
   every mirror populated as a side effect.  Callers sort by prov once
   per component (provs are unique by construction, so any sort works). *)
let rec fill (n : node) : (prov * Tuple.t) list =
  match n with
  | N_scan t ->
    List.rev
      (Base_table.fold
         (fun acc rid row -> ([| S_int rid |], row) :: acc)
         [] t)
  | N_values rows -> List.mapi (fun i row -> ([| S_int i |], row)) rows
  | N_filter (input, f) -> List.filter (fun (_, row) -> f row) (fill input)
  | N_project (input, f) ->
    List.map (fun (p, row) -> (p, f row)) (fill input)
  | N_sort (input, segs) ->
    List.map
      (fun (p, row) ->
        (Array.append (Array.map (fun g -> g row) segs) p, row))
      (fill input)
  | N_union inputs ->
    List.concat
      (Array.to_list
         (Array.mapi
            (fun k input ->
              List.map
                (fun (p, row) -> (Array.append [| S_int k |] p, row))
                (fill input))
            inputs))
  | N_hash_join j ->
    List.iter
      (fun (bp, brow) ->
        match j.bkey brow with
        | Some k -> bucket_add j.btbl k bp brow
        | None -> ())
      (fill j.hbuild);
    let out = ref [] in
    List.iter
      (fun (pp, prow) ->
        match j.pkey prow with
        | None -> ()
        | Some k ->
          bucket_add j.ptbl k pp prow;
          bucket_iter j.btbl k (fun (bp, brow) ->
              let row = Tuple.concat prow brow in
              if match j.hres with None -> true | Some f -> f row then
                out := (Array.append pp (negate bp), row) :: !out))
      (fill j.hprobe);
    !out
  | N_index_join j ->
    Index.iter_postings j.iindex (fun key _pos rid ->
        let row = Base_table.get_exn j.itable rid in
        match Tuple.Tbl.find_opt j.imirror key with
        | Some p -> p := (rid, row) :: !p
        | None -> Tuple.Tbl.add j.imirror key (ref [ (rid, row) ]));
    let out = ref [] in
    List.iter
      (fun (op, orow) ->
        match j.okey orow with
        | None -> ()
        | Some k ->
          bucket_add j.iotbl k op orow;
          (match Tuple.Tbl.find_opt j.imirror k with
          | Some p ->
            List.iter
              (fun (rid, irow) ->
                let row = Tuple.concat orow irow in
                if match j.ires with None -> true | Some f -> f row then
                  out := (Array.append op [| S_int (-rid) |], row) :: !out)
              !p
          | None -> ()))
      (fill j.iouter);
    !out
  | N_shared c -> (
    match c.sfill with
    | Some rows -> rows
    | None ->
      let rows = fill c.scell in
      c.sfill <- Some rows;
      rows)

(* Drop fill memos once every component is filled (they are only there
   so shared subtrees fill once). *)
let rec clear_fill_memo (n : node) =
  match n with
  | N_scan _ | N_values _ -> ()
  | N_filter (i, _) | N_project (i, _) | N_sort (i, _) -> clear_fill_memo i
  | N_union inputs -> Array.iter clear_fill_memo inputs
  | N_hash_join j ->
    clear_fill_memo j.hbuild;
    clear_fill_memo j.hprobe
  | N_index_join j -> clear_fill_memo j.iouter
  | N_shared c ->
    if c.sfill <> None then begin
      c.sfill <- None;
      clear_fill_memo c.scell
    end

(* -- delta propagation -------------------------------------------------- *)

let table_delta (w : window) (t : Base_table.t) : (int * Heap.delta_op) list =
  match Hashtbl.find_opt w.wdeltas (Base_table.tid t) with
  | Some ops -> ops
  | None -> []

(* Signed delta stream of the node under [w], advancing every mirror.
   Shared cells propagate once per generation, so a subtree referenced
   from several components neither double-applies nor double-mutates. *)
let rec apply (n : node) (w : window) : drow list =
  match n with
  | N_scan t ->
    List.map
      (fun (_, op) ->
        match op with
        | Heap.D_ins (rid, row) -> (1, [| S_int rid |], row)
        | Heap.D_del (rid, row) -> (-1, [| S_int rid |], row))
      (table_delta w t)
  | N_values _ -> []
  | N_filter (input, f) ->
    List.filter (fun (_, _, row) -> f row) (apply input w)
  | N_project (input, f) ->
    List.map (fun (s, p, row) -> (s, p, f row)) (apply input w)
  | N_sort (input, segs) ->
    List.map
      (fun (s, p, row) ->
        (s, Array.append (Array.map (fun g -> g row) segs) p, row))
      (apply input w)
  | N_union inputs ->
    List.concat
      (Array.to_list
         (Array.mapi
            (fun k input ->
              List.map
                (fun (s, p, row) -> (s, Array.append [| S_int k |] p, row))
                (apply input w))
            inputs))
  | N_hash_join j ->
    (* dOut = dP ⋈ B_old  ∪  P_new ⋈ dB *)
    let dp = apply j.hprobe w in
    let out = ref [] in
    let emit sign pp pr bp br =
      let row = Tuple.concat pr br in
      if match j.hres with None -> true | Some f -> f row then
        out := (sign, Array.append pp (negate bp), row) :: !out
    in
    List.iter
      (fun (sign, pp, pr) ->
        match j.pkey pr with
        | None -> ()
        | Some k -> bucket_iter j.btbl k (fun (bp, br) -> emit sign pp pr bp br))
      dp;
    List.iter
      (fun (sign, pp, pr) ->
        match j.pkey pr with
        | None -> ()
        | Some k ->
          if sign > 0 then bucket_add j.ptbl k pp pr
          else bucket_remove j.ptbl k pp)
      dp;
    let db = apply j.hbuild w in
    List.iter
      (fun (sign, bp, br) ->
        match j.bkey br with
        | None -> ()
        | Some k -> bucket_iter j.ptbl k (fun (pp, pr) -> emit sign pp pr bp br))
      db;
    List.iter
      (fun (sign, bp, br) ->
        match j.bkey br with
        | None -> ()
        | Some k ->
          if sign > 0 then bucket_add j.btbl k bp br
          else bucket_remove j.btbl k bp)
      db;
    List.rev !out
  | N_index_join j ->
    let dout = apply j.iouter w in
    let out = ref [] in
    let emit sign op orow rid irow =
      let row = Tuple.concat orow irow in
      if match j.ires with None -> true | Some f -> f row then
        out := (sign, Array.append op [| S_int (-rid) |], row) :: !out
    in
    (* d_outer against the inner mirror as of the window start *)
    List.iter
      (fun (sign, op, orow) ->
        match j.okey orow with
        | None -> ()
        | Some k -> (
          match Tuple.Tbl.find_opt j.imirror k with
          | Some p ->
            List.iter (fun (rid, irow) -> emit sign op orow rid irow) !p
          | None -> ()))
      dout;
    List.iter
      (fun (sign, op, orow) ->
        match j.okey orow with
        | None -> ()
        | Some k ->
          if sign > 0 then bucket_add j.iotbl k op orow
          else bucket_remove j.iotbl k op)
      dout;
    (* inner deltas in log order: same-key entries must see each other's
       mirror effects (an UPDATE deletes then re-inserts at the same rid) *)
    List.iter
      (fun (_, dop) ->
        match dop with
        | Heap.D_ins (rid, irow) ->
          let key = Index.key_of j.iindex irow in
          (match Tuple.Tbl.find_opt j.imirror key with
          | Some p -> p := (rid, irow) :: !p
          | None -> Tuple.Tbl.add j.imirror key (ref [ (rid, irow) ]));
          bucket_iter j.iotbl key (fun (op, orow) -> emit 1 op orow rid irow)
        | Heap.D_del (rid, irow) ->
          let key = Index.key_of j.iindex irow in
          (match Tuple.Tbl.find_opt j.imirror key with
          | Some p -> (
            match List.find_opt (fun (r, _) -> r = rid) !p with
            | Some (_, mrow) ->
              bucket_iter j.iotbl key (fun (op, orow) ->
                  emit (-1) op orow rid mrow);
              p := List.filter (fun (r, _) -> r <> rid) !p;
              if !p = [] then Tuple.Tbl.remove j.imirror key
            | None -> unmaintainable "index mirror missing rid %d" rid)
          | None -> unmaintainable "index mirror missing a deleted key"))
      (table_delta w j.itable);
    List.rev !out
  | N_shared c ->
    if c.sgen <> w.wgen then begin
      c.sgen <- w.wgen;
      c.sdelta <- apply c.scell w
    end;
    c.sdelta

(* -- net-change merge --------------------------------------------------- *)

type change =
  | C_add of Tuple.t
  | C_rem of Tuple.t
  | C_rep of Tuple.t * Tuple.t (* old, new *)

module Pmap = Map.Make (struct
  type t = prov

  let compare = compare_prov
end)

(* Collapse a raw signed delta stream into at most one surviving row per
   prov.  Transient pairs (insert then delete of the same derived row
   within the window) cancel; anything that nets to more than one row at
   a prov means the prov algebra was violated — bail out. *)
let net_changes (drows : drow list) : (Tuple.t * int) list Pmap.t =
  List.fold_left
    (fun acc (sign, prov, row) ->
      let cur = try Pmap.find prov acc with Not_found -> [] in
      let rec add = function
        | [] -> [ (row, sign) ]
        | (r, c) :: tl when Tuple.equal r row -> (r, c + sign) :: tl
        | hd :: tl -> hd :: add tl
      in
      Pmap.add prov (add cur) acc)
    Pmap.empty drows

(** Merge a sorted [(prov, row)] array with a window's signed delta
    stream: the updated sorted array plus the per-prov change list (in
    prov order) the assembly layer patches from.  The new array shares
    every untouched [(prov, row)] pair element with [base] (physical
    equality), so patchers can detect kept rows with [==]; touched provs
    are located by binary search and the survivors spliced in with
    [Array.blit] — the window cost is O(deltas · log n) plus one pointer
    copy of the array, not an allocation per row. *)
let merge (base : (prov * Tuple.t) array) (drows : drow list) :
    (prov * Tuple.t) array * (prov * change) list =
  let net = net_changes drows in
  if Pmap.is_empty net then (base, [])
  else begin
    let n = Array.length base in
    (* leftmost index with base prov >= p (= n when p is past the end) *)
    let bsearch p =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if compare_prov (fst base.(mid)) p < 0 then lo := mid + 1
        else hi := mid
      done;
      !lo
    in
    let resolve (p, counts) =
      let idx = bsearch p in
      let old =
        if idx < n && compare_prov (fst base.(idx)) p = 0 then
          Some (snd base.(idx))
        else None
      in
      let counts =
        match old with
        | Some row ->
          let rec add = function
            | [] -> [ (row, 1) ]
            | (r, c) :: tl when Tuple.equal r row -> (r, c + 1) :: tl
            | hd :: tl -> hd :: add tl
          in
          add counts
        | None -> counts
      in
      let survivors =
        List.filter_map
          (fun (r, c) ->
            if c = 0 then None
            else if c = 1 then Some r
            else unmaintainable "net delta count %d at one prov" c)
          counts
      in
      match survivors, old with
      | [], None -> None
      | [], Some o -> Some (idx, p, C_rem o)
      | [ r ], None -> Some (idx, p, C_add r)
      | [ r ], Some o ->
        if Tuple.equal r o then None else Some (idx, p, C_rep (o, r))
      | _ -> unmaintainable "several rows net out at one prov"
    in
    (* bindings are prov-sorted, so resolved indices are non-decreasing *)
    let ops = List.filter_map resolve (Pmap.bindings net) in
    if ops = [] then (base, [])
    else begin
      let n_add =
        List.length (List.filter (fun (_, _, c) -> match c with C_add _ -> true | _ -> false) ops)
      and n_rem =
        List.length (List.filter (fun (_, _, c) -> match c with C_rem _ -> true | _ -> false) ops)
      in
      let out = Array.make (n + n_add - n_rem) ([||], [||]) in
      let src = ref 0 and dst = ref 0 in
      List.iter
        (fun (idx, p, op) ->
          let len = idx - !src in
          Array.blit base !src out !dst len;
          src := !src + len;
          dst := !dst + len;
          match op with
          | C_add r ->
            out.(!dst) <- (p, r);
            incr dst
          | C_rem _ -> incr src
          | C_rep (_, r) ->
            out.(!dst) <- (p, r);
            incr src;
            incr dst)
        ops;
      Array.blit base !src out !dst (n - !src);
      (out, List.map (fun (_, p, op) -> (p, op)) ops)
    end
  end

(** Initial contents of a freshly compiled node, sorted into executor
    emission order. *)
let fill_sorted (n : node) : (prov * Tuple.t) array =
  let arr = Array.of_list (fill n) in
  Array.sort (fun (a, _) (b, _) -> compare_prov a b) arr;
  arr
