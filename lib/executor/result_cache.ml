(** Cross-query materialized result cache.

    One process-wide, mutex-guarded LRU store shared by every database
    and both executors.  Entries hold materialized table queues (batch
    lists for shared subexpressions) or assembled CO-view streams;
    payloads travel as [exn] — the classic universal-type trick — so
    this module stays below the layers that define those types (the
    executor caches batches, the XNF layer caches [Hetstream.t]s)
    without circular dependencies.

    Keys embed a per-table version fragment ([Plan.version_key]): every
    DML bumps the touched table's monotonic counter, so a stale entry is
    simply never looked up again and ages out by LRU.  Versions never
    repeat, which is what makes rollback safe — entries filled from
    in-transaction state are keyed to versions that no post-rollback
    lookup can reproduce.

    Budget comes from [XNFDB_RESULT_CACHE_MB] (default 64; 0 disables
    caching entirely).  Eviction is least-recently-used by access
    stamp.  Domain-safe: a single mutex guards the table; payloads are
    immutable once published (callers hand out fresh batch records via
    [Batch.share_list], never the cached ones). *)

type entry = { payload : exn; bytes : int; mutable stamp : int }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

let mutex = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let total_bytes = ref 0
let clock = ref 0
let hits = ref 0
let misses = ref 0
let evictions = ref 0

(* Test hook: overrides the environment knob when set. *)
let budget_override : int option ref = ref None
let set_budget_mb mb = budget_override := mb

let budget_bytes () =
  let mb =
    match !budget_override with
    | Some mb -> mb
    | None -> (
      match
        Option.bind (Sys.getenv_opt "XNFDB_RESULT_CACHE_MB") int_of_string_opt
      with
      | Some mb when mb >= 0 -> mb
      | _ -> 64)
  in
  mb * 1024 * 1024

let enabled () = budget_bytes () > 0

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let find key =
  with_lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some e ->
        incr clock;
        e.stamp <- !clock;
        incr hits;
        Some e.payload
      | None ->
        incr misses;
        None)

(* O(entries) min-stamp scan; the cache holds few, large entries, so a
   heap would be overkill. *)
let evict_until_fits budget =
  while !total_bytes > budget && Hashtbl.length table > 0 do
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match !victim with
        | Some (_, oldest) when oldest.stamp <= e.stamp -> ()
        | _ -> victim := Some (key, e))
      table;
    match !victim with
    | Some (key, e) ->
      Hashtbl.remove table key;
      total_bytes := !total_bytes - e.bytes;
      incr evictions
    | None -> ()
  done

let store key ~bytes payload =
  let budget = budget_bytes () in
  if budget > 0 && bytes <= budget then
    with_lock (fun () ->
        (match Hashtbl.find_opt table key with
        | Some old ->
          Hashtbl.remove table key;
          total_bytes := !total_bytes - old.bytes
        | None -> ());
        incr clock;
        Hashtbl.replace table key { payload; bytes; stamp = !clock };
        total_bytes := !total_bytes + bytes;
        evict_until_fits budget)

let clear () =
  with_lock (fun () ->
      Hashtbl.reset table;
      total_bytes := 0)

let reset_stats () =
  with_lock (fun () ->
      hits := 0;
      misses := 0;
      evictions := 0)

let stats () =
  with_lock (fun () ->
      {
        hits = !hits;
        misses = !misses;
        evictions = !evictions;
        entries = Hashtbl.length table;
        bytes = !total_bytes;
      })

(* -- byte estimators ----------------------------------------------------- *)

open Relcore

let value_bytes = function
  | Value.Str s -> 24 + String.length s
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ -> 16

let row_bytes row =
  Array.fold_left (fun acc v -> acc + value_bytes v) 16 row

(** Rough heap footprint of a materialized table queue. *)
let batch_list_bytes (bs : Batch.t list) : int =
  List.fold_left
    (fun acc b -> Batch.fold (fun acc row -> acc + row_bytes row) (acc + 64) b)
    0 bs
