(** Scalar and predicate evaluation with SQL three-valued logic. *)

open Relcore
module Ast = Sqlkit.Ast
module Plan = Optimizer.Plan

(** Correlation frames: enclosing tuples, innermost first. *)
type frames = Tuple.t list

let frame_get (frames : frames) lvl i =
  match List.nth_opt frames lvl with
  | Some t when i < Array.length t -> t.(i)
  | _ -> Errors.execution_error "dangling correlated reference (%d, %d)" lvl i

let arith op (a : Value.t) (b : Value.t) : Value.t =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    match a, b with
    | Value.Int x, Value.Int y -> begin
      match op with
      | Ast.Add -> Value.Int (x + y)
      | Ast.Sub -> Value.Int (x - y)
      | Ast.Mul -> Value.Int (x * y)
      | Ast.Div ->
        if y = 0 then Errors.execution_error "division by zero"
        else Value.Int (x / y)
      | Ast.Mod ->
        if y = 0 then Errors.execution_error "modulo by zero"
        else Value.Int (x mod y)
    end
    | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> begin
      let x = Value.as_float a and y = Value.as_float b in
      match op with
      | Ast.Add -> Value.Float (x +. y)
      | Ast.Sub -> Value.Float (x -. y)
      | Ast.Mul -> Value.Float (x *. y)
      | Ast.Div ->
        if y = 0.0 then Errors.execution_error "division by zero"
        else Value.Float (x /. y)
      | Ast.Mod -> Errors.type_error "MOD requires integers"
    end
    | Value.Str x, Value.Str y when op = Ast.Add ->
      (* string concatenation via + *)
      Value.Str (x ^ y)
    | _ ->
      Errors.type_error "arithmetic on %s and %s" (Value.to_string a)
        (Value.to_string b)

let negate = function
  | Value.Null -> Value.Null
  | Value.Int x -> Value.Int (-x)
  | Value.Float x -> Value.Float (-.x)
  | v -> Errors.type_error "cannot negate %s" (Value.to_string v)

(** Scalar function dispatch (null-propagating except COALESCE). *)
let apply_fn name (args : Value.t list) : Value.t =
  match name, args with
  | "coalesce", args ->
    (try List.find (fun v -> not (Value.is_null v)) args
     with Not_found -> Value.Null)
  | _, args when List.exists Value.is_null args -> Value.Null
  | "upper", [ Value.Str s ] -> Value.Str (String.uppercase_ascii s)
  | "lower", [ Value.Str s ] -> Value.Str (String.lowercase_ascii s)
  | "trim", [ Value.Str s ] -> Value.Str (String.trim s)
  | "length", [ Value.Str s ] -> Value.Int (String.length s)
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "substr", [ Value.Str s; Value.Int start ] ->
    (* 1-based start, to end of string *)
    let off = max 0 (start - 1) in
    Value.Str
      (if off >= String.length s then ""
       else String.sub s off (String.length s - off))
  | "substr", [ Value.Str s; Value.Int start; Value.Int len ] ->
    let off = max 0 (start - 1) in
    let len = max 0 (min len (String.length s - off)) in
    Value.Str (if off >= String.length s then "" else String.sub s off len)
  | _ ->
    Errors.type_error "bad arguments to %s(%s)" name
      (String.concat ", " (List.map Value.to_string args))

let rec scalar (frames : frames) (tuple : Tuple.t) (s : Plan.scalar) : Value.t =
  match s with
  | Plan.P_col i ->
    if i < Array.length tuple then tuple.(i)
    else Errors.execution_error "column %d out of range (width %d)" i (Array.length tuple)
  | Plan.P_param (lvl, i) -> frame_get frames lvl i
  | Plan.P_const v -> v
  | Plan.P_bop (op, a, b) -> arith op (scalar frames tuple a) (scalar frames tuple b)
  | Plan.P_neg a -> negate (scalar frames tuple a)
  | Plan.P_fn (name, args) ->
    apply_fn name (List.map (scalar frames tuple) args)

(* -- compiled (closure-specialized) evaluation --------------------------- *)

(** Compile a scalar once into a closure so the per-row loop pays no AST
    dispatch — the amortization that batch-at-a-time execution buys. *)
let rec compile_scalar_fn (s : Plan.scalar) : frames -> Tuple.t -> Value.t =
  match s with
  | Plan.P_col i ->
    fun _ tuple ->
      if i < Array.length tuple then tuple.(i)
      else
        Errors.execution_error "column %d out of range (width %d)" i
          (Array.length tuple)
  | Plan.P_param (lvl, i) -> fun frames _ -> frame_get frames lvl i
  | Plan.P_const v -> fun _ _ -> v
  | Plan.P_bop (op, a, b) ->
    let fa = compile_scalar_fn a and fb = compile_scalar_fn b in
    fun frames tuple -> arith op (fa frames tuple) (fb frames tuple)
  | Plan.P_neg a ->
    let fa = compile_scalar_fn a in
    fun frames tuple -> negate (fa frames tuple)
  | Plan.P_fn (name, args) ->
    let fs = List.map compile_scalar_fn args in
    fun frames tuple -> apply_fn name (List.map (fun f -> f frames tuple) fs)

(** SQL LIKE with [%] and [_] wildcards. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pattern index, string index) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then si = ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

let compare3 op (a : Value.t) (b : Value.t) : bool option =
  match Value.sql_compare a b with
  | None -> None
  | Some c ->
    Some
      (match op with
      | Ast.Eq -> c = 0
      | Ast.Ne -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0)

let and3 a b =
  match a, b with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | _ -> None

let or3 a b =
  match a, b with
  | Some true, _ | _, Some true -> Some true
  | Some false, Some false -> Some false
  | _ -> None

let not3 = Option.map not

(** Compile a predicate with no subplan probes into a closure.  Returns
    [None] when the predicate contains [P_exists]/[P_in] (those need the
    executor's plan opener and stay tuple-at-a-time). *)
let compile_pred_pure (p : Plan.ppred) :
    (frames -> Tuple.t -> bool option) option =
  let exception Has_subplan in
  let rec go (p : Plan.ppred) : frames -> Tuple.t -> bool option =
    match p with
    | Plan.P_true -> fun _ _ -> Some true
    | Plan.P_false -> fun _ _ -> Some false
    | Plan.P_cmp (op, a, b) ->
      let fa = compile_scalar_fn a and fb = compile_scalar_fn b in
      fun frames t -> compare3 op (fa frames t) (fb frames t)
    | Plan.P_and (a, b) ->
      let fa = go a and fb = go b in
      fun frames t -> and3 (fa frames t) (fb frames t)
    | Plan.P_or (a, b) ->
      let fa = go a and fb = go b in
      fun frames t -> or3 (fa frames t) (fb frames t)
    | Plan.P_not a ->
      let fa = go a in
      fun frames t -> not3 (fa frames t)
    | Plan.P_is_null s ->
      let fs = compile_scalar_fn s in
      fun frames t -> Some (Value.is_null (fs frames t))
    | Plan.P_is_not_null s ->
      let fs = compile_scalar_fn s in
      fun frames t -> Some (not (Value.is_null (fs frames t)))
    | Plan.P_like (s, pat) ->
      let fs = compile_scalar_fn s in
      fun frames t -> begin
        match fs frames t with
        | Value.Null -> None
        | Value.Str str -> Some (like_match ~pattern:pat str)
        | v -> Errors.type_error "LIKE on non-string %s" (Value.to_string v)
      end
    | Plan.P_exists _ | Plan.P_in _ -> raise Has_subplan
  in
  match go p with f -> Some f | exception Has_subplan -> None

(* -- batch entry points -------------------------------------------------- *)

(** Evaluate [s] over every selected row of [b] into a dense array. *)
let scalar_batch (frames : frames) (b : Batch.t) (s : Plan.scalar) :
    Value.t array =
  let f = compile_scalar_fn s in
  Array.init (Batch.length b) (fun i -> f frames (Batch.get b i))

(** Refine [b]'s selection in place, keeping rows where [test] yields
    [Some true] (SQL semantics: unknown drops the row). *)
let select_batch (frames : frames) (b : Batch.t)
    (test : frames -> Tuple.t -> bool option) : unit =
  Batch.refine b (fun row ->
      match test frames row with Some true -> true | Some false | None -> false)

(** Compile a projection once (operator open time); the returned closure
    maps each batch through it — the vectorized [Project] body. *)
let compile_project (cols : Plan.scalar array) : frames -> Batch.t -> Batch.t =
  let fs = Array.map compile_scalar_fn cols in
  let n = Array.length fs in
  fun frames b ->
    Batch.map b (fun row ->
        let out = Array.make n Value.Null in
        for k = 0 to n - 1 do
          out.(k) <- fs.(k) frames row
        done;
        out)

(** Project every selected row of [b] through [cols] into a fresh dense
    batch. *)
let project_batch (frames : frames) (b : Batch.t) (cols : Plan.scalar array) :
    Batch.t =
  compile_project cols frames b
