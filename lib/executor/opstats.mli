(** Per-operator execution statistics for EXPLAIN ANALYZE: stable
    preorder ids over one or more plans, inclusive wall time, output
    rows/batches, a plan-level row estimator and the q-error report.

    Recording discipline: the serial executor mutates ops directly (one
    domain); parallel workers accumulate into {!new_partial} arrays
    that {!merge_partial} folds in single-threaded after [Pool.await]. *)

module Plan = Optimizer.Plan

type op = {
  id : int;
  node : Plan.t;
  depth : int;
  section : int;
  est : float;  (** estimated output rows *)
  mutable opens : int;
  mutable rows : int;  (** actual output rows (selection applied) *)
  mutable batches : int;
  mutable wall : float;  (** inclusive wall seconds *)
}

type t = {
  sections : (string * Plan.t) array;
  ops : op array;
  mutable total_wall : float;
}

val now : unit -> float
(** Wall clock used for all attribution ([Unix.gettimeofday]). *)

val est_rows : Plan.t -> float
(** Plan-level output-row estimate (textbook constants, aligned with
    [Cost]'s). *)

val create : (string * Plan.t) list -> t
(** Number every node (children in EXPLAIN order, including predicate
    subplans) of each named root. *)

val create1 : Plan.t -> t
(** {!create} with one anonymous section. *)

val count : t -> int

val id_of : t -> Plan.t -> int
(** Physical-identity lookup; [-1] when the node is not numbered. *)

val note_open : t -> int -> float -> unit
val add_batch : t -> int -> dt:float -> rows:int -> unit
val add_time : t -> int -> float -> unit
val add_rows : t -> int -> int -> unit

val new_partial : t -> int array
(** A per-worker row-count partial, one slot per op. *)

val merge_partial : t -> int array -> unit
(** Fold a worker partial in; caller must be single-threaded. *)

val q_error : op -> float
(** max(est/act, act/est), both floored at one row. *)

val worst_estimate : t -> op option
(** The opened op with the worst q-error, when that error exceeds 2x. *)

val render : t -> string
(** The EXPLAIN ANALYZE tree: every operator line annotated with
    est/act/q-error/time, the worst estimator flagged. *)
