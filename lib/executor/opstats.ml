(** Per-operator execution statistics for EXPLAIN ANALYZE.

    Every node of a plan (including correlated predicate subplans) gets
    a stable id by preorder numbering; the executors record wall time,
    rows and batches against those ids while the query runs.  Times are
    {e inclusive} (an operator's clock includes its children, as in
    PostgreSQL's EXPLAIN ANALYZE); rows are the operator's {e output}
    rows, counted after selection vectors are applied, so the child
    row count of a pipeline is exactly its parent's input.

    The serial executor ({!Exec}) mutates the accumulator directly — it
    runs on one domain.  The parallel executor ({!Exec_par}) gives each
    worker a private row-count partial (an [int array] indexed by op
    id, carried in its per-worker [stats]) and merges them
    single-threaded after [Pool.await], exactly like its scan
    counters; wall time there is attributed to pipeline roots, since a
    fused worker feed has no meaningful per-operator clock. *)

module Plan = Optimizer.Plan
module Cost = Optimizer.Cost

type op = {
  id : int;
  node : Plan.t;  (** the physical plan node (identity is the key) *)
  depth : int;  (** indentation level under its section root *)
  section : int;  (** which [create] root this op belongs to *)
  est : float;  (** estimated output rows (plan-level estimator) *)
  mutable opens : int;  (** times the operator was opened (loops) *)
  mutable rows : int;  (** output rows across all opens *)
  mutable batches : int;  (** output batches across all opens *)
  mutable wall : float;  (** inclusive wall seconds across all opens *)
}

type t = {
  sections : (string * Plan.t) array;  (** named roots, render order *)
  ops : op array;  (** preorder over all sections *)
  mutable total_wall : float;  (** whole-statement wall seconds *)
}

let now = Unix.gettimeofday

(* -- plan-level row estimator -------------------------------------------- *)

(* Selectivity of a compiled predicate, textbook constants only: the
   QGM-level estimator (Cost.pred_selectivity) has zone/NDV statistics,
   but by plan time the quantifier context is gone.  Kept deliberately
   aligned with Cost's constants so EXPLAIN and EXPLAIN ANALYZE read
   consistently. *)
let rec pred_sel : Plan.ppred -> float = function
  | Plan.P_true -> 1.0
  | Plan.P_false -> 0.0
  | Plan.P_cmp (Sqlkit.Ast.Eq, _, _) -> Cost.eq_selectivity
  | Plan.P_cmp (Sqlkit.Ast.Ne, _, _) -> 1.0 -. Cost.eq_selectivity
  | Plan.P_cmp (_, _, _) -> Cost.range_selectivity
  | Plan.P_and (a, b) -> pred_sel a *. pred_sel b
  | Plan.P_or (a, b) -> Float.min 1.0 (pred_sel a +. pred_sel b)
  | Plan.P_not a -> 1.0 -. pred_sel a
  | Plan.P_is_null _ -> 0.1
  | Plan.P_is_not_null _ -> 0.9
  | Plan.P_like _ -> 0.25
  | Plan.P_exists _ | Plan.P_in _ -> Cost.default_selectivity

let rec est_rows (p : Plan.t) : float =
  let eq_keys n = Float.pow Cost.eq_selectivity (float_of_int (max 1 n)) in
  match p with
  | Plan.Scan t ->
    float_of_int (max 1 (Relcore.Base_table.cardinality t))
  | Plan.Values rows -> float_of_int (List.length rows)
  | Plan.Filter (i, pred) -> Float.max 1.0 (est_rows i *. pred_sel pred)
  | Plan.Project (i, _) -> est_rows i
  | Plan.Nl_join { outer; inner; cond } ->
    Float.max 1.0 (est_rows outer *. est_rows inner *. pred_sel cond)
  | Plan.Hash_join { build; probe; probe_keys; residual; _ } ->
    Float.max 1.0
      (est_rows probe *. est_rows build
      *. eq_keys (List.length probe_keys)
      *. pred_sel residual)
  | Plan.Index_join { outer; table; keys; residual; _ } ->
    let inner =
      Float.max 1.0
        (float_of_int (max 1 (Relcore.Base_table.cardinality table))
        *. eq_keys (List.length keys))
    in
    Float.max 1.0 (est_rows outer *. inner *. pred_sel residual)
  | Plan.Merge_join { left; right; left_keys; residual; _ } ->
    Float.max 1.0
      (est_rows left *. est_rows right
      *. eq_keys (List.length left_keys)
      *. pred_sel residual)
  | Plan.Distinct i -> Float.max 1.0 (est_rows i *. 0.8)
  | Plan.Aggregate { input; keys; _ } ->
    if keys = [] then 1.0 else Float.max 1.0 (Float.sqrt (est_rows input))
  | Plan.Sort (i, _) -> est_rows i
  | Plan.Limit (i, n) -> Float.min (est_rows i) (float_of_int n)
  | Plan.Union_all is -> List.fold_left (fun a i -> a +. est_rows i) 0.0 is
  | Plan.Shared (_, i) -> est_rows i

(* -- construction --------------------------------------------------------- *)

let create (sections : (string * Plan.t) list) : t =
  let acc = ref [] in
  let n = ref 0 in
  let rec number section depth p =
    let op =
      {
        id = !n;
        node = p;
        depth;
        section;
        est = est_rows p;
        opens = 0;
        rows = 0;
        batches = 0;
        wall = 0.0;
      }
    in
    incr n;
    acc := op :: !acc;
    List.iter (number section (depth + 1)) (Plan.children p)
  in
  List.iteri (fun s (_, root) -> number s 0 root) sections;
  {
    sections = Array.of_list sections;
    ops = Array.of_list (List.rev !acc);
    total_wall = 0.0;
  }

let create1 (p : Plan.t) : t = create [ ("", p) ]
let count (t : t) = Array.length t.ops

(** Id of a physical plan node; [-1] for nodes outside the numbered
    tree (e.g. [Values] leaves synthesized by the parallel splice).
    Linear scan on physical identity — plans are tens of nodes. *)
let id_of (t : t) (p : Plan.t) : int =
  let n = Array.length t.ops in
  let rec go i =
    if i >= n then -1 else if t.ops.(i).node == p then i else go (i + 1)
  in
  go 0

(* -- recording (serial executor: single-domain mutation) ------------------ *)

let note_open (t : t) id dt =
  let op = t.ops.(id) in
  op.opens <- op.opens + 1;
  op.wall <- op.wall +. dt

let add_batch (t : t) id ~dt ~rows =
  let op = t.ops.(id) in
  op.rows <- op.rows + rows;
  op.batches <- op.batches + 1;
  op.wall <- op.wall +. dt

let add_time (t : t) id dt =
  let op = t.ops.(id) in
  op.wall <- op.wall +. dt

let add_rows (t : t) id rows =
  let op = t.ops.(id) in
  op.rows <- op.rows + rows

(* -- parallel partials (merged single-threaded after Pool.await) ---------- *)

let new_partial (t : t) : int array = Array.make (Array.length t.ops) 0

let merge_partial (t : t) (rows : int array) =
  let n = min (Array.length rows) (Array.length t.ops) in
  for i = 0 to n - 1 do
    if rows.(i) <> 0 then begin
      let op = t.ops.(i) in
      op.rows <- op.rows + rows.(i)
    end
  done

(* -- reporting ------------------------------------------------------------ *)

(** q-error of an operator's row estimate: max(est/act, act/est), both
    sides floored at one row so empty results stay finite. *)
let q_error (op : op) : float =
  let e = Float.max 1.0 op.est and a = Float.max 1.0 (float_of_int op.rows) in
  Float.max (e /. a) (a /. e)

(** The opened operator with the worst q-error, if any estimate was off
    by more than 2x. *)
let worst_estimate (t : t) : op option =
  Array.fold_left
    (fun acc op ->
      if op.opens = 0 then acc
      else
        match acc with
        | Some best when q_error best >= q_error op -> acc
        | _ -> Some op)
    None t.ops
  |> function
  | Some op when q_error op > 2.0 -> Some op
  | _ -> None

let fmt_ms s =
  if s < 0.000_1 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let render (t : t) : string =
  let buf = Buffer.create 512 in
  let worst = worst_estimate t in
  Array.iteri
    (fun s (name, _) ->
      if name <> "" then Buffer.add_string buf (Printf.sprintf "-- %s --\n" name);
      Array.iter
        (fun op ->
          if op.section = s then begin
            Buffer.add_string buf (String.make (op.depth * 2) ' ');
            Buffer.add_string buf (Plan.node_line op.node);
            if op.opens = 0 then
              Buffer.add_string buf
                (Printf.sprintf "  (est=%.0f never opened: fused or cached)"
                   op.est)
            else begin
              Buffer.add_string buf
                (Printf.sprintf "  (est=%.0f act=%d q=%.2f time=%s" op.est
                   op.rows (q_error op) (fmt_ms op.wall));
              if op.batches > 0 then
                Buffer.add_string buf (Printf.sprintf " batches=%d" op.batches);
              if op.opens > 1 then
                Buffer.add_string buf (Printf.sprintf " loops=%d" op.opens);
              Buffer.add_string buf ")";
              match worst with
              | Some w when w == op -> Buffer.add_string buf "  <- worst estimate"
              | _ -> ()
            end;
            Buffer.add_char buf '\n'
          end)
        t.ops)
    t.sections;
  (match worst with
  | Some w ->
    Buffer.add_string buf
      (Printf.sprintf "worst estimate: %s (est=%.0f act=%d q-error=%.1f)\n"
         (Plan.node_line w.node) w.est w.rows (q_error w))
  | None -> Buffer.add_string buf "estimates within 2x of actuals\n");
  if t.total_wall > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf "total time: %s\n" (fmt_ms t.total_wall));
  Buffer.contents buf
