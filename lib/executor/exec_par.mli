(** Parallel table-queue execution on OCaml 5 domains: morsel-partitioned
    scans, partitioned hash-join builds, and a deterministic
    merge-by-morsel-index over bounded inter-domain channels, so results
    are bit-identical to the sequential executor ({!Exec}).  Plans the
    parallel path cannot run (correlated subplan probes, LIMIT) fall
    back to {!Exec} wholesale. *)

open Relcore
module Plan = Optimizer.Plan

exception Not_parallel
(** Raised internally when a plan fragment cannot take the parallel
    path; {!run_batches} catches it and falls back to {!Exec}. *)

val parallelizable : Plan.t -> bool
(** Will {!run_batches} take the parallel path for this plan?  A cheap
    syntactic check for schedulers; a mispredict only affects
    scheduling, never results. *)

val run_batches :
  ?ctx:Exec.ctx ->
  ?domains:int ->
  ?morsel_rows:int ->
  ?threshold:int ->
  Plan.compiled ->
  Batch.t list
(** Drain a compiled plan across the shared domain pool.  [domains]
    defaults to [Pool.default_domains ()] (the [XNFDB_DOMAINS] knob);
    [morsel_rows] defaults to [XNFDB_MORSEL_ROWS] or an adaptive size;
    [threshold] (default [Cost.parallel_threshold_rows]) is the
    source-row count below which the fragment runs inline.  Row order is
    identical to {!Exec.run_batches}. *)

val run :
  ?ctx:Exec.ctx ->
  ?domains:int ->
  ?morsel_rows:int ->
  ?threshold:int ->
  Plan.compiled ->
  Tuple.t list

val force_shared_parallel : Exec.ctx -> ?domains:int -> Plan.t list -> unit
(** Materialize every [Shared] node reachable in the plans into the
    context's CSE cache, fanning independent derivations out across the
    domain pool in dependency waves (each wave's tasks read a frozen
    cache copy; results install single-threaded between waves).  Ends
    with exactly the cache state — and batch contents — of sequential
    {!Exec.force_shared} over the same plans.  [domains] defaults to
    [Pool.default_domains ()]; [domains <= 1] runs serially. *)
