(** Columnar access path recognition: map a [Scan] / [Filter(Scan)]
    plan subtree onto {!Relcore.Colstore} predicate atoms plus a
    residual row predicate.

    A filter's conjunction is flattened; every conjunct of
    column-vs-constant shape that the chunk kernels can evaluate with
    exact row-path semantics becomes an unboxed atom, and everything
    else (correlated params, subquery probes, expressions, constants
    the kernels cannot fold exactly) stays in the residual, evaluated
    over materialized heap tuples.  Dropping a conjunct to the residual
    never changes results — a row passes the filter iff every conjunct
    is true, regardless of evaluation order. *)

open Relcore
module Plan = Optimizer.Plan
module Ast = Sqlkit.Ast

type t = {
  table : Base_table.t;
  store : Colstore.t;
  katoms : Colstore.catom array; (* compiled against [store]'s dictionary *)
  residual : Plan.ppred option;
}

let cmp_of_ast : Ast.cmpop -> Colstore.cmp = function
  | Ast.Eq -> Colstore.Ceq
  | Ast.Ne -> Colstore.Cne
  | Ast.Lt -> Colstore.Clt
  | Ast.Le -> Colstore.Cle
  | Ast.Gt -> Colstore.Cgt
  | Ast.Ge -> Colstore.Cge

(* [const op col] reads as [col (mirror op) const] *)
let mirror : Ast.cmpop -> Ast.cmpop = function
  | Ast.Eq -> Ast.Eq
  | Ast.Ne -> Ast.Ne
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le

let atom_of (p : Plan.ppred) : Colstore.atom option =
  match p with
  | Plan.P_cmp (op, Plan.P_col i, Plan.P_const v) ->
    Some (Colstore.A_cmp (i, cmp_of_ast op, v))
  | Plan.P_cmp (op, Plan.P_const v, Plan.P_col i) ->
    Some (Colstore.A_cmp (i, cmp_of_ast (mirror op), v))
  | Plan.P_is_null (Plan.P_col i) -> Some (Colstore.A_is_null i)
  | Plan.P_is_not_null (Plan.P_col i) -> Some (Colstore.A_not_null i)
  | _ -> None

let rec flatten (p : Plan.ppred) acc =
  match p with
  | Plan.P_and (a, b) -> flatten a (flatten b acc)
  | Plan.P_true -> acc
  | _ -> p :: acc

(* Scan with zero or more stacked filters over it; conjuncts in
   original application order. *)
let rec split (p : Plan.t) : (Base_table.t * Plan.ppred list) option =
  match p with
  | Plan.Scan t -> Some (t, [])
  | Plan.Filter (inner, pred) ->
    (match split inner with
    | Some (t, cs) -> Some (t, cs @ flatten pred [])
    | None -> None)
  | _ -> None

(** Recognize a columnar scan under the current [XNFDB_COLSTORE] knob.
    With [require_atoms] (the default), at least one conjunct must
    compile to an unboxed atom — otherwise the row path does the same
    work with no benefit.  Join build/probe sides pass
    [~require_atoms:false]: there the payoff is direct key extraction,
    which needs no atoms at all. *)
let of_plan ?(require_atoms = true) (p : Plan.t) : t option =
  if not (Colstore.enabled ()) then None
  else
    match split p with
    | None -> None
    | Some (table, conjuncts) ->
      let store = table.Base_table.colstore in
      let katoms = ref [] in
      let resid = ref [] in
      let n = ref 0 in
      List.iter
        (fun c ->
          match atom_of c with
          | Some a ->
            (match Colstore.compile_atom store a with
            | Some k ->
              katoms := k :: !katoms;
              incr n
            | None -> resid := c :: !resid)
          | None -> resid := c :: !resid)
        conjuncts;
      if !n = 0 && require_atoms then None
      else
        let residual =
          match List.rev !resid with
          | [] -> None
          | c :: rest ->
            Some (List.fold_left (fun a b -> Plan.P_and (a, b)) c rest)
        in
        Some
          {
            table;
            store;
            katoms = Array.of_list (List.rev !katoms);
            residual;
          }

(** The column position behind a single-column [Tint] join key, if the
    key is a bare column of one.  Per-chunk data comes from
    {!Relcore.Colstore.key_chunk} (tier-aware: hot arrays or a decoded
    cold section). *)
let int_key (cs : t) (key : Plan.scalar) : int option =
  match key with
  | Plan.P_col i when Colstore.int_key_col cs.store i -> Some i
  | _ -> None

(** The column position behind a single-column [Tstr] join key, if the
    key is a bare column of one.  {!Relcore.Colstore.key_chunk} then
    yields dictionary codes private to this table: build-side strings
    must be translated through {!Relcore.Colstore.dict_find} before
    probing. *)
let str_key (cs : t) (key : Plan.scalar) : int option =
  match key with
  | Plan.P_col i when Colstore.str_key_col cs.store i -> Some i
  | _ -> None
