(** Query execution plans (QEPs) — the output of plan optimization and
    refinement (Fig. 2), interpreted by the query evaluation system.

    Tuples flow bottom-up through demand-driven iterators ("table
    queues").  Scalars reference columns positionally; [P_param] reaches
    into enclosing tuples for correlated subplans (the naive existential
    evaluation strategy of Sect. 3.2). *)

open Relcore
module Ast = Sqlkit.Ast

type scalar =
  | P_col of int (* column of the current tuple *)
  | P_param of int * int (* (frames up, column): correlated reference *)
  | P_const of Value.t
  | P_bop of Ast.binop * scalar * scalar
  | P_neg of scalar
  | P_fn of string * scalar list (* scalar function *)

type ppred =
  | P_true
  | P_false
  | P_cmp of Ast.cmpop * scalar * scalar
  | P_and of ppred * ppred
  | P_or of ppred * ppred
  | P_not of ppred
  | P_is_null of scalar
  | P_is_not_null of scalar
  | P_like of scalar * string
  | P_exists of t (* correlated subplan probe *)
  | P_in of scalar * t

and agg_spec = { agg_fn : Ast.agg_fn; agg_arg : scalar option }

(** Planner hint for sideways information passing: attach a build-side
    join filter (Bloom + key range) to the probe scan.  [None] means the
    cost model predicts the filter would pass nearly everything and the
    executor should not bother.  Purely advisory — the relation computed
    is identical either way, so it is excluded from {!fingerprint}. *)
and jfilter = { jf_pass_est : float  (** estimated probe-key pass rate *) }

and t =
  | Scan of Base_table.t
  | Values of Tuple.t list
  | Filter of t * ppred
  | Project of t * scalar array
  | Nl_join of { outer : t; inner : t; cond : ppred }
  | Hash_join of {
      build : t; (* right side, materialized into a hash table *)
      probe : t; (* left side, streamed *)
      build_keys : scalar list; (* over build tuples *)
      probe_keys : scalar list; (* over probe tuples *)
      residual : ppred; (* over concat (probe, build) *)
      jfilter : jfilter option; (* sideways-information-passing hint *)
    }
  | Index_join of {
      outer : t;
      table : Base_table.t;
      index : Index.t;
      keys : scalar list; (* over outer tuples *)
      residual : ppred; (* over concat (outer, inner row) *)
    }
  | Merge_join of {
      left : t;
      right : t;
      left_keys : scalar list;
      right_keys : scalar list;
      residual : ppred; (* over concat (left, right) *)
    }
      (** sort-merge equi-join; the operator sorts both inputs itself *)
  | Distinct of t
  | Aggregate of { input : t; keys : scalar list; aggs : agg_spec list }
      (** output layout: keys then aggregates *)
  | Sort of t * (int * [ `Asc | `Desc ]) list
  | Limit of t * int
  | Union_all of t list
  | Shared of int * t
      (** materialize-once common subexpression, keyed by QGM box id *)

(** A compiled query: plan plus output schema for presentation. *)
type compiled = { plan : t; out_schema : Schema.t }

(* -- pretty-printing (EXPLAIN) ---------------------------------------- *)

let rec scalar_to_string = function
  | P_col i -> Printf.sprintf "$%d" i
  | P_param (lvl, i) -> Printf.sprintf "outer[%d].$%d" lvl i
  | P_const v -> Value.to_literal v
  | P_bop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (scalar_to_string a)
      (Sqlkit.Pretty.binop_str op) (scalar_to_string b)
  | P_neg a -> "(-" ^ scalar_to_string a ^ ")"
  | P_fn (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map scalar_to_string args))

let rec ppred_to_string = function
  | P_true -> "true"
  | P_false -> "false"
  | P_cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (scalar_to_string a)
      (Sqlkit.Pretty.cmpop_str op) (scalar_to_string b)
  | P_and (a, b) ->
    Printf.sprintf "(%s AND %s)" (ppred_to_string a) (ppred_to_string b)
  | P_or (a, b) ->
    Printf.sprintf "(%s OR %s)" (ppred_to_string a) (ppred_to_string b)
  | P_not p -> "NOT " ^ ppred_to_string p
  | P_is_null s -> scalar_to_string s ^ " IS NULL"
  | P_is_not_null s -> scalar_to_string s ^ " IS NOT NULL"
  | P_like (s, pat) -> scalar_to_string s ^ " LIKE '" ^ pat ^ "'"
  | P_exists _ -> "EXISTS(<subplan>)"
  | P_in (s, _) -> scalar_to_string s ^ " IN (<subplan>)"

(** Subplans reachable through a predicate ([EXISTS]/[IN] probes). *)
let rec pred_subplans = function
  | P_exists p | P_in (_, p) -> [ p ]
  | P_and (a, b) | P_or (a, b) -> pred_subplans a @ pred_subplans b
  | P_not p -> pred_subplans p
  | P_true | P_false | P_cmp _ | P_is_null _ | P_is_not_null _ | P_like _ -> []

(** The one-line head of a node in EXPLAIN output (no children, no
    indentation) — shared by {!explain} and the EXPLAIN ANALYZE
    renderer, so both always print the same operator labels. *)
let node_line = function
  | Scan t ->
    Printf.sprintf "Scan %s (card=%d)" (Base_table.name t)
      (Base_table.cardinality t)
  | Values rows -> Printf.sprintf "Values (%d rows)" (List.length rows)
  | Filter (_, pred) -> "Filter " ^ ppred_to_string pred
  | Project (_, cols) ->
    Printf.sprintf "Project [%s]"
      (String.concat ", " (Array.to_list (Array.map scalar_to_string cols)))
  | Nl_join { cond; _ } -> "NestedLoopJoin on " ^ ppred_to_string cond
  | Hash_join { build_keys; probe_keys; residual; jfilter; _ } ->
    Printf.sprintf "HashJoin probe[%s] = build[%s]%s%s"
      (String.concat ", " (List.map scalar_to_string probe_keys))
      (String.concat ", " (List.map scalar_to_string build_keys))
      (match residual with
      | P_true -> ""
      | r -> " residual " ^ ppred_to_string r)
      (match jfilter with
      | Some { jf_pass_est } -> Printf.sprintf " jfilter(pass~%.2f)" jf_pass_est
      | None -> "")
  | Index_join { table; index; keys; residual; _ } ->
    Printf.sprintf "IndexJoin %s via %s keys [%s]%s" (Base_table.name table)
      index.Index.name
      (String.concat ", " (List.map scalar_to_string keys))
      (match residual with
      | P_true -> ""
      | r -> " residual " ^ ppred_to_string r)
  | Merge_join { left_keys; right_keys; residual; _ } ->
    Printf.sprintf "MergeJoin left[%s] = right[%s]%s"
      (String.concat ", " (List.map scalar_to_string left_keys))
      (String.concat ", " (List.map scalar_to_string right_keys))
      (match residual with
      | P_true -> ""
      | r -> " residual " ^ ppred_to_string r)
  | Distinct _ -> "Distinct"
  | Aggregate { keys; aggs; _ } ->
    Printf.sprintf "Aggregate keys=[%s] aggs=[%s]"
      (String.concat ", " (List.map scalar_to_string keys))
      (String.concat ", "
         (List.map
            (fun a ->
              Sqlkit.Pretty.agg_str a.agg_fn
              ^
              match a.agg_arg with
              | Some s -> "(" ^ scalar_to_string s ^ ")"
              | None -> "(*)")
            aggs))
  | Sort (_, specs) ->
    Printf.sprintf "Sort [%s]"
      (String.concat ", "
         (List.map
            (fun (i, d) ->
              Printf.sprintf "$%d%s" i
                (match d with `Asc -> "" | `Desc -> " DESC"))
            specs))
  | Limit (_, n) -> Printf.sprintf "Limit %d" n
  | Union_all inputs -> Printf.sprintf "UnionAll (%d inputs)" (List.length inputs)
  | Shared (bid, _) -> Printf.sprintf "Shared (cse box %d)" bid

(** Direct children in EXPLAIN rendering order (including predicate
    subplans, which execute as correlated probes). *)
let children = function
  | Scan _ | Values _ -> []
  | Filter (input, pred) -> input :: pred_subplans pred
  | Project (input, _) | Distinct input | Sort (input, _) | Limit (input, _)
  | Shared (_, input) ->
    [ input ]
  | Nl_join { outer; inner; _ } -> [ outer; inner ]
  | Hash_join { build; probe; _ } -> [ probe; build ]
  | Index_join { outer; _ } -> [ outer ]
  | Merge_join { left; right; _ } -> [ left; right ]
  | Aggregate { input; _ } -> [ input ]
  | Union_all inputs -> inputs

let explain (plan : t) : string =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pad = String.make (indent * 2) ' ' in
    Buffer.add_string buf (pad ^ node_line p ^ "\n");
    List.iter (go (indent + 1)) (children p)
  in
  go 0 plan;
  Buffer.contents buf

(* -- structural fingerprint (cache keys) -------------------------------- *)

(** Structural fingerprint of a plan, suitable as a cache key: two plans
    with the same fingerprint compute the same relation over the same
    base tables.  Tables are identified by {!Base_table.tid} (names can
    collide across databases); predicate subplans ([P_exists]/[P_in])
    are fingerprinted recursively; [Shared] nodes are fingerprinted by
    structure only — QGM box ids differ across compilations of the same
    query, so including them would defeat cross-query matching. *)
let fingerprint (plan : t) : string =
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  let addf fmt = Printf.ksprintf add fmt in
  let scalars ss = add (String.concat "," (List.map scalar_to_string ss)) in
  let rec pred = function
    | P_true -> add "T"
    | P_false -> add "F"
    | P_cmp (op, a, b) ->
      addf "cmp(%s %s %s)" (scalar_to_string a) (Sqlkit.Pretty.cmpop_str op)
        (scalar_to_string b)
    | P_and (a, b) ->
      add "and(";
      pred a;
      add ",";
      pred b;
      add ")"
    | P_or (a, b) ->
      add "or(";
      pred a;
      add ",";
      pred b;
      add ")"
    | P_not p ->
      add "not(";
      pred p;
      add ")"
    | P_is_null s -> addf "isnull(%s)" (scalar_to_string s)
    | P_is_not_null s -> addf "notnull(%s)" (scalar_to_string s)
    | P_like (s, pat) -> addf "like(%s,%s)" (scalar_to_string s) pat
    | P_exists sub ->
      add "exists(";
      plan_fp sub;
      add ")"
    | P_in (s, sub) ->
      addf "in(%s," (scalar_to_string s);
      plan_fp sub;
      add ")"
  and plan_fp = function
    | Scan t -> addf "scan#%d" (Base_table.tid t)
    | Values rows ->
      add "values[";
      List.iter (fun r -> addf "%s;" (Tuple.to_string r)) rows;
      add "]"
    | Filter (input, p) ->
      add "filter(";
      pred p;
      add ")(";
      plan_fp input;
      add ")"
    | Project (input, cols) ->
      add "project[";
      scalars (Array.to_list cols);
      add "](";
      plan_fp input;
      add ")"
    | Nl_join { outer; inner; cond } ->
      add "nlj(";
      pred cond;
      add ")(";
      plan_fp outer;
      add ",";
      plan_fp inner;
      add ")"
    (* [jfilter] is advisory (same relation either way), so it is
       deliberately excluded from the fingerprint *)
    | Hash_join { build; probe; build_keys; probe_keys; residual; jfilter = _ }
      ->
      add "hj[";
      scalars probe_keys;
      add "=";
      scalars build_keys;
      add "](";
      pred residual;
      add ")(";
      plan_fp probe;
      add ",";
      plan_fp build;
      add ")"
    | Index_join { outer; table; index; keys; residual } ->
      addf "ij#%d/%s[" (Base_table.tid table) index.Index.name;
      scalars keys;
      add "](";
      pred residual;
      add ")(";
      plan_fp outer;
      add ")"
    | Merge_join { left; right; left_keys; right_keys; residual } ->
      add "mj[";
      scalars left_keys;
      add "=";
      scalars right_keys;
      add "](";
      pred residual;
      add ")(";
      plan_fp left;
      add ",";
      plan_fp right;
      add ")"
    | Distinct input ->
      add "distinct(";
      plan_fp input;
      add ")"
    | Aggregate { input; keys; aggs } ->
      add "agg[";
      scalars keys;
      add "|";
      List.iter
        (fun a ->
          add (Sqlkit.Pretty.agg_str a.agg_fn);
          (match a.agg_arg with
          | Some s -> addf "(%s)" (scalar_to_string s)
          | None -> add "(*)");
          add ";")
        aggs;
      add "](";
      plan_fp input;
      add ")"
    | Sort (input, specs) ->
      add "sort[";
      List.iter
        (fun (i, d) ->
          addf "%d%s;" i (match d with `Asc -> "a" | `Desc -> "d"))
        specs;
      add "](";
      plan_fp input;
      add ")"
    | Limit (input, n) ->
      addf "limit%d(" n;
      plan_fp input;
      add ")"
    | Union_all inputs ->
      add "union(";
      List.iter
        (fun i ->
          plan_fp i;
          add ";")
        inputs;
      add ")"
    | Shared (_bid, input) ->
      add "shared(";
      plan_fp input;
      add ")"
  in
  plan_fp plan;
  Buffer.contents buf

(** Every base table the plan (including predicate subplans) reads,
    deduplicated by tid. *)
let tables (plan : t) : Base_table.t list =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let visit t =
    let tid = Base_table.tid t in
    if not (Hashtbl.mem seen tid) then begin
      Hashtbl.add seen tid ();
      acc := t :: !acc
    end
  in
  let rec pred = function
    | P_exists sub | P_in (_, sub) -> plan_t sub
    | P_and (a, b) | P_or (a, b) ->
      pred a;
      pred b
    | P_not p -> pred p
    | P_true | P_false | P_cmp _ | P_is_null _ | P_is_not_null _ | P_like _ ->
      ()
  and plan_t = function
    | Scan t -> visit t
    | Values _ -> ()
    | Filter (input, p) ->
      plan_t input;
      pred p
    | Project (input, _) | Distinct input | Sort (input, _) | Limit (input, _)
    | Shared (_, input) ->
      plan_t input
    | Nl_join { outer; inner; cond } ->
      plan_t outer;
      plan_t inner;
      pred cond
    | Hash_join { build; probe; residual; _ } ->
      plan_t probe;
      plan_t build;
      pred residual
    | Index_join { outer; table; residual; _ } ->
      visit table;
      plan_t outer;
      pred residual
    | Merge_join { left; right; residual; _ } ->
      plan_t left;
      plan_t right;
      pred residual
    | Aggregate { input; _ } -> plan_t input
    | Union_all inputs -> List.iter plan_t inputs
  in
  plan_t plan;
  List.rev !acc

(** Version fragment for result-cache keys: the (tid, version) pair of
    every table the plan reads.  Any DML against any of them changes the
    fragment, so stale entries simply stop being found. *)
let version_key (plan : t) : string =
  tables plan
  |> List.map (fun t ->
         Printf.sprintf "t%d:v%d" (Base_table.tid t) (Base_table.version t))
  |> String.concat ","

(** Structural statistics used by tests. *)
let rec count_nodes p =
  match p with
  | Scan _ | Values _ -> 1
  | Filter (i, _) | Project (i, _) | Distinct i | Sort (i, _) | Limit (i, _)
  | Shared (_, i) ->
    1 + count_nodes i
  | Nl_join { outer; inner; _ } -> 1 + count_nodes outer + count_nodes inner
  | Hash_join { build; probe; _ } -> 1 + count_nodes build + count_nodes probe
  | Index_join { outer; _ } -> 1 + count_nodes outer
  | Merge_join { left; right; _ } -> 1 + count_nodes left + count_nodes right
  | Aggregate { input; _ } -> 1 + count_nodes input
  | Union_all inputs -> List.fold_left (fun a i -> a + count_nodes i) 1 inputs

(* -- maintainability (incremental view maintenance) --------------------- *)

(** Whether [Executor.Delta] can push base-table row deltas through this
    plan.  Structural only: the supported shape is scans, pure
    filters/projections, hash/index equi-joins, sorts, unions and shared
    subtrees.  Operators whose incremental semantics we do not carry
    (nested-loop and merge joins, aggregation, DISTINCT, LIMIT),
    correlated predicate subplans ([P_exists]/[P_in]) and parameter
    references force the caller back to invalidate + recompute. *)
let maintainable (plan : t) : bool =
  let rec scalar_ok = function
    | P_col _ | P_const _ -> true
    | P_param _ -> false
    | P_bop (_, a, b) -> scalar_ok a && scalar_ok b
    | P_neg a -> scalar_ok a
    | P_fn (_, args) -> List.for_all scalar_ok args
  in
  let rec pred_ok = function
    | P_true | P_false -> true
    | P_cmp (_, a, b) -> scalar_ok a && scalar_ok b
    | P_and (a, b) | P_or (a, b) -> pred_ok a && pred_ok b
    | P_not p -> pred_ok p
    | P_is_null s | P_is_not_null s | P_like (s, _) -> scalar_ok s
    | P_exists _ | P_in _ -> false
  in
  let rec go = function
    | Scan _ | Values _ -> true
    | Filter (input, p) -> pred_ok p && go input
    | Project (input, cols) ->
      Array.for_all scalar_ok cols && go input
    | Hash_join { build; probe; build_keys; probe_keys; residual; _ } ->
      List.for_all scalar_ok build_keys
      && List.for_all scalar_ok probe_keys
      && pred_ok residual && go build && go probe
    | Index_join { outer; keys; residual; _ } ->
      List.for_all scalar_ok keys && pred_ok residual && go outer
    | Sort (input, _) -> go input
    | Union_all inputs -> List.for_all go inputs
    | Shared (_, input) -> go input
    | Nl_join _ | Merge_join _ | Distinct _ | Aggregate _ | Limit _ -> false
  in
  go plan
