(** Cardinality and selectivity estimation for plan optimization.

    Deliberately simple, System-R-style: base cardinalities are exact
    (in-memory tables), predicate selectivities use fixed heuristics,
    equi-join selectivity assumes a key/foreign-key shape. *)

module Qgm = Starq.Qgm

let eq_selectivity = 0.05
let range_selectivity = 0.3
let default_selectivity = 0.5

(* -- host calibration ----------------------------------------------------- *)

(** Micro-probe calibration of the cost constants.  Every constant below
    is expressed in {e tuple units} — multiples of the time one tuple
    takes through a batch scan loop on this host — so [tuple_cost] stays
    the numeraire (1.0) and calibration only reshapes the ratios.

    A profile is produced by {!measure} (run via [xnfdb calibrate]),
    persisted with {!save} as [key value] lines, and picked up when
    [XNFDB_COST_PROFILE] names the file.  [XNFDB_CALIBRATION=0] (or an
    unset/unreadable profile) restores the hand-set defaults bit for
    bit, so existing plans and tests are unchanged unless a profile is
    explicitly activated. *)
module Calibrate = struct
  type profile = {
    batch_overhead : float;  (** per-batch boundary cost, tuple units *)
    cold_chunk_penalty : float;
        (** extra per-row cost of a cold (encoded) chunk, tuple units *)
    parallel_overhead : float;  (** one pool fan-out, tuple units *)
    parallel_threshold_rows : int;  (** serial below this many rows *)
    jf_drop_threshold : float;
        (** observed join-filter pass rate above which the test is
            dropped *)
    jf_adaptive_sample : int;  (** probe rows observed before judging *)
    host_cores : int;  (** cores seen at calibration time (diagnostic) *)
    tuple_ns : float;  (** absolute ns per scanned tuple (diagnostic) *)
  }

  let defaults =
    {
      batch_overhead = 4.0;
      cold_chunk_penalty = 1.5;
      parallel_overhead = 64.0;
      parallel_threshold_rows = 2048;
      jf_drop_threshold = Relcore.Bloom.drop_threshold;
      jf_adaptive_sample = Relcore.Bloom.adaptive_sample;
      host_cores = 0;
      tuple_ns = 0.0;
    }

  let clamp lo hi v = Float.max lo (Float.min hi v)

  (* best-of-[reps] wall time per element for [f ()] covering [n]
     elements; min over repetitions rejects scheduler noise *)
  let time_per ?(reps = 3) n f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1e9 /. float_of_int (max 1 n)

  let sink = ref 0

  (* scan probe: per-tuple cost of a batch scan loop over a real heap
     table — the numeraire every other probe is divided by *)
  let probe_tuple_ns () =
    let schema =
      Relcore.Schema.make
        [
          Relcore.Schema.column "k" Relcore.Dtype.Tint;
          Relcore.Schema.column "v" Relcore.Dtype.Tint;
        ]
    in
    let t = Relcore.Base_table.create ~name:"__calib" schema in
    let n = 32_768 in
    for i = 0 to n - 1 do
      ignore
        (Relcore.Base_table.insert t
           [| Relcore.Value.Int i; Relcore.Value.Int (i * 7) |])
    done;
    let cap = 256 in
    let arr = Array.make cap [||] in
    let ns =
      time_per n (fun () ->
          let from = ref 0 in
          let continue = ref true in
          while !continue do
            let next, filled =
              Relcore.Base_table.scan_into t ~from:!from arr ~start:0 ~max:cap
            in
            for i = 0 to filled - 1 do
              match arr.(i).(0) with
              | Relcore.Value.Int k -> sink := !sink + k
              | _ -> ()
            done;
            from := next;
            if filled = 0 then continue := false
          done)
    in
    Relcore.Base_table.release t;
    Float.max 0.1 ns

  (* batch-dispatch probe: cost of allocating one batch and crossing one
     iterator boundary, amortized over nothing (pure per-batch term) *)
  let probe_batch_ns () =
    let k = 20_000 in
    let cap = 256 in
    time_per k (fun () ->
        for _ = 1 to k do
          let b = Relcore.Batch.create ~capacity:cap () in
          let it = fun () -> if Relcore.Batch.is_empty b then None else Some b in
          (match it () with Some _ -> sink := !sink + 1 | None -> ());
          ignore (Relcore.Batch.length b)
        done)

  (* hash probe: per-row cost of an int hash-table lookup (the join
     probe a join filter short-circuits) *)
  let probe_hash_ns () =
    let build = 16_384 and probes = 65_536 in
    let h = Hashtbl.create build in
    for i = 0 to build - 1 do
      Hashtbl.replace h (i * 17) i
    done;
    time_per probes (fun () ->
        for i = 0 to probes - 1 do
          match Hashtbl.find_opt h (i land 0xFFFF) with
          | Some v -> sink := !sink + v
          | None -> ()
        done)

  (* bloom probe: per-row cost of testing a join-filter key *)
  let probe_bloom_ns () =
    let n = 16_384 in
    let f = Relcore.Bloom.create ~expected:n in
    for i = 0 to n - 1 do
      Relcore.Bloom.add f (i * 31)
    done;
    let probes = 65_536 in
    time_per probes (fun () ->
        for i = 0 to probes - 1 do
          if Relcore.Bloom.mem f i then incr sink
        done)

  (* decode-fault probe: per-row cost of decoding an encoded cold
     chunk-column section (what a non-pruned cold chunk pays) *)
  let probe_decode_ns () =
    let n = 4096 in
    let data = Array.init n (fun i -> (i / 7 * 3) + (i land 15)) in
    let enc =
      Relcore.Colstore.Encoding.encode_ints data
        ~null:(fun _ -> false)
        ~live:(fun _ -> true)
    in
    let rounds = 64 in
    time_per (n * rounds) (fun () ->
        for _ = 1 to rounds do
          let vals, _nulls = Relcore.Colstore.Encoding.decode_ints enc ~n in
          sink := !sink + vals.(n - 1)
        done)

  (* domain-spawn probe: wall cost of one empty fan-out over the shared
     pool (task enqueue + wake + await) *)
  let probe_fanout_ns () =
    let cores = Domain.recommended_domain_count () in
    let d = min 2 (max 1 cores) in
    if d <= 1 then 0.0
    else begin
      (* warm the pool so the first-spawn cost is not billed to every
         fan-out *)
      Relcore.Pool.run ~domains:d (fun _ -> ());
      let k = 50 in
      time_per k (fun () ->
          for _ = 1 to k do
            Relcore.Pool.run ~domains:d (fun _ -> ())
          done)
    end

  let measure () =
    let tuple_ns = probe_tuple_ns () in
    let batch_ns = probe_batch_ns () in
    let hash_ns = probe_hash_ns () in
    let bloom_ns = probe_bloom_ns () in
    let decode_ns = probe_decode_ns () in
    let fanout_ns = probe_fanout_ns () in
    let batch_overhead = clamp 0.5 64.0 (batch_ns /. tuple_ns) in
    let cold_chunk_penalty = clamp 0.1 16.0 (decode_ns /. tuple_ns) in
    let parallel_overhead =
      if fanout_ns <= 0.0 then defaults.parallel_overhead
      else clamp 8.0 1.0e7 (fanout_ns /. tuple_ns)
    in
    (* fan out once the divisible per-tuple work at dop 2 repays the
       fan-out cost twice over *)
    let parallel_threshold_rows =
      int_of_float (clamp 512.0 1.0e6 (4.0 *. parallel_overhead))
    in
    (* a filter earns its keep while the expected savings of a dropped
       row — skipping materialization (~1 tuple) and the hash probe —
       outweigh the per-row test: pass_rate < 1 - test/save *)
    let jf_drop_threshold =
      clamp 0.5 0.95 (1.0 -. (bloom_ns /. Float.max bloom_ns (tuple_ns +. hash_ns)))
    in
    {
      batch_overhead;
      cold_chunk_penalty;
      parallel_overhead;
      parallel_threshold_rows;
      jf_drop_threshold;
      jf_adaptive_sample = defaults.jf_adaptive_sample;
      host_cores = Domain.recommended_domain_count ();
      tuple_ns;
    }

  (* -- persistence: one [key value] pair per line, '#' comments -------- *)

  let render (p : profile) : string =
    let b = Buffer.create 256 in
    Buffer.add_string b "# xnfdb cost profile (tuple units; see Cost.Calibrate)\n";
    let f k v = Buffer.add_string b (Printf.sprintf "%s %.17g\n" k v) in
    let i k v = Buffer.add_string b (Printf.sprintf "%s %d\n" k v) in
    f "batch_overhead" p.batch_overhead;
    f "cold_chunk_penalty" p.cold_chunk_penalty;
    f "parallel_overhead" p.parallel_overhead;
    i "parallel_threshold_rows" p.parallel_threshold_rows;
    f "jf_drop_threshold" p.jf_drop_threshold;
    i "jf_adaptive_sample" p.jf_adaptive_sample;
    i "host_cores" p.host_cores;
    f "tuple_ns" p.tuple_ns;
    Buffer.contents b

  let save path (p : profile) =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (render p))

  let parse (text : string) : profile =
    let p = ref defaults in
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then
             match String.index_opt line ' ' with
             | None -> ()
             | Some sp ->
               let key = String.sub line 0 sp in
               let v = String.trim (String.sub line sp (String.length line - sp)) in
               let ff dflt = Option.value (float_of_string_opt v) ~default:dflt in
               let ii dflt = Option.value (int_of_string_opt v) ~default:dflt in
               let c = !p in
               p :=
                 (match key with
                 | "batch_overhead" -> { c with batch_overhead = ff c.batch_overhead }
                 | "cold_chunk_penalty" ->
                   { c with cold_chunk_penalty = ff c.cold_chunk_penalty }
                 | "parallel_overhead" ->
                   { c with parallel_overhead = ff c.parallel_overhead }
                 | "parallel_threshold_rows" ->
                   { c with parallel_threshold_rows = ii c.parallel_threshold_rows }
                 | "jf_drop_threshold" ->
                   { c with jf_drop_threshold = ff c.jf_drop_threshold }
                 | "jf_adaptive_sample" ->
                   { c with jf_adaptive_sample = ii c.jf_adaptive_sample }
                 | "host_cores" -> { c with host_cores = ii c.host_cores }
                 | "tuple_ns" -> { c with tuple_ns = ff c.tuple_ns }
                 | _ -> c));
    !p

  let load path : (profile, string) result =
    match
      In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
    with
    | text -> Ok (parse text)
    | exception Sys_error e -> Error e

  (* -- activation ------------------------------------------------------ *)

  let enabled () =
    match Sys.getenv_opt "XNFDB_CALIBRATION" with
    | Some ("0" | "false" | "off" | "no") -> false
    | _ -> true

  (* empty value = unset: putenv cannot remove a variable, so tests
     (and users) clear the knob by setting it to "" *)
  let profile_path () =
    match Sys.getenv_opt "XNFDB_COST_PROFILE" with
    | Some "" | None -> None
    | Some p -> Some p

  (* memoized on the pair of env knobs so tests can flip them
     mid-process; a missing/unreadable profile warns once and falls
     back to the defaults *)
  let cache :
      ((string option * string option) * profile) option Atomic.t =
    Atomic.make None

  let warned : (string, unit) Hashtbl.t = Hashtbl.create 4

  let active () : profile =
    let key =
      (Sys.getenv_opt "XNFDB_CALIBRATION", profile_path ())
    in
    match Atomic.get cache with
    | Some (k, p) when k = key -> p
    | _ ->
      let p =
        if not (enabled ()) then defaults
        else
          match profile_path () with
          | None -> defaults
          | Some path -> begin
            match load path with
            | Ok p -> p
            | Error e ->
              if not (Hashtbl.mem warned path) then begin
                Hashtbl.replace warned path ();
                Printf.eprintf
                  "xnfdb: cost profile %s unreadable (%s); using defaults\n%!"
                  path e
              end;
              defaults
          end
      in
      Atomic.set cache (Some (key, p));
      p
end

(* -- batched streaming cost ---------------------------------------------- *)

(** Cost of evaluating one tuple inside a batch loop — the normalized
    unit every calibrated constant is expressed in. *)
let tuple_cost = 1.0

(** Fixed cost of moving one batch across an operator boundary: batch
    allocation, iterator dispatch, selection-vector setup.  With
    tuple-at-a-time execution this was paid {e per row}; batching
    amortizes it over [Relcore.Batch.default_capacity] rows.
    Calibrated per host (see {!Calibrate}). *)
let batch_overhead () = (Calibrate.active ()).Calibrate.batch_overhead

(** Cost of streaming [rows] tuples through one operator hop under
    batch-at-a-time execution: a per-tuple term plus a per-batch term
    for however many batches the rows occupy. *)
let stream_cost (rows : float) : float =
  let batch_overhead = batch_overhead () in
  if rows <= 0.0 then batch_overhead
  else
    let batches =
      Float.of_int (Relcore.Batch.default_capacity ())
      |> fun cap -> Float.ceil (rows /. cap)
    in
    (rows *. tuple_cost) +. (batches *. batch_overhead)

(* -- cold-chunk access cost ---------------------------------------------- *)

(** Extra per-row cost of scanning a spilled (cold) colstore chunk
    relative to a hot one: the section copy out of the mmap plus the
    decode-on-the-fly predicate kernels. *)
let cold_chunk_penalty () = (Calibrate.active ()).Calibrate.cold_chunk_penalty

(** Multiplier on the cost of scanning [t]'s rows, reflecting how much
    of the table currently sits in encoded cold chunks.  1.0 whenever
    the colstore (or spilling) is off, so default plans are
    unchanged. *)
let scan_access_factor (t : Relcore.Base_table.t) : float =
  if not (Relcore.Colstore.enabled ()) then 1.0
  else
    1.0
    +. (cold_chunk_penalty ()
       *. Relcore.Colstore.cold_fraction t.Relcore.Base_table.colstore)

(* -- parallel streaming cost --------------------------------------------- *)

(** Below this many input rows a parallel plan fragment is not worth its
    scheduling overhead (channel traffic, morsel dispatch, worker
    wake-up): the executor falls back to the serial path. *)
let parallel_threshold_rows () =
  (Calibrate.active ()).Calibrate.parallel_threshold_rows

(** Fixed cost of fanning a fragment out over the domain pool: task
    enqueue, channel setup, deterministic re-merge.  Calibrated from
    the measured empty fan-out round-trip. *)
let parallel_overhead () = (Calibrate.active ()).Calibrate.parallel_overhead

(* -- sideways join-filter economics (shared by both executors) ----------- *)

(** Probe rows to observe before judging a filter's usefulness. *)
let jf_adaptive_sample () = (Calibrate.active ()).Calibrate.jf_adaptive_sample

(** Observed pass-rate above which the per-row join-filter test is
    disabled; calibrated from the measured Bloom-test vs hash-probe
    cost ratio. *)
let jf_drop_threshold () = (Calibrate.active ()).Calibrate.jf_drop_threshold

(** Degree of parallelism for a fragment of [rows] input rows given
    [domains] available workers: serial under the threshold, and never
    more workers than there are threshold-sized chunks of work. *)
let choose_dop ?threshold ~domains ~rows () =
  let threshold =
    match threshold with Some t -> t | None -> parallel_threshold_rows ()
  in
  if domains <= 1 || rows < threshold then 1
  else min domains (max 1 (rows / threshold))

(** {!stream_cost} under a degree of parallelism: per-tuple work divides
    across workers, per-batch overhead does not (every batch still
    crosses the merge queue), plus the fan-out fixed cost. *)
let parallel_stream_cost ~domains (rows : float) : float =
  let dop = choose_dop ~domains ~rows:(int_of_float rows) () in
  if dop <= 1 then stream_cost rows
  else
    let batches =
      Float.ceil (rows /. Float.of_int (Relcore.Batch.default_capacity ()))
    in
    (rows *. tuple_cost /. Float.of_int dop)
    +. (batches *. batch_overhead ())
    +. parallel_overhead ()

(** Trace a body expression to a base-table column when the expression
    is a bare column reference whose quantifier (resolved by [resolve])
    ranges directly over a base table, or over a pass-through projection
    of one. *)
let rec base_column_of resolve (e : Qgm.bexpr) :
    (Relcore.Base_table.t * int) option =
  match e with
  | Qgm.Qcol (qid, i) -> begin
    match resolve qid with
    | Some (box : Qgm.box) -> begin
      match box.Qgm.kind with
      | Qgm.Base t -> Some (t, i)
      | Qgm.Select when i < Array.length box.Qgm.head ->
        (* follow identity projections one level *)
        base_column_of
          (fun q -> Option.map (fun qu -> qu.Qgm.over) (Qgm.find_quant box q))
          box.Qgm.head.(i).Qgm.hexpr
      | _ -> None
    end
    | None -> None
  end
  | _ -> None

let value_as_float : Relcore.Value.t -> float option = function
  | Relcore.Value.Int i -> Some (float_of_int i)
  | Relcore.Value.Float f when not (Float.is_nan f) -> Some f
  | _ -> None

(* [k op col] reads as [col (mirrored op) k] *)
let mirror_cmp : Sqlkit.Ast.cmpop -> Sqlkit.Ast.cmpop = function
  | Sqlkit.Ast.Lt -> Sqlkit.Ast.Gt
  | Sqlkit.Ast.Le -> Sqlkit.Ast.Ge
  | Sqlkit.Ast.Gt -> Sqlkit.Ast.Lt
  | Sqlkit.Ast.Ge -> Sqlkit.Ast.Le
  | o -> o

(** Interpolated selectivity of [col op k] against the zone-derived
    column range [lo, hi]: the fraction (k - lo) / (hi - lo) of the
    span falls below [k], clamped away from 0 and 1 (zone bounds may be
    conservative, and a zero estimate would hide the row-visit cost).
    [None] when either side is not a numeric base column vs. constant,
    or no range is known — the caller keeps its textbook constant. *)
let range_const_selectivity resolve (op : Sqlkit.Ast.cmpop) (a : Qgm.bexpr)
    (b : Qgm.bexpr) : float option =
  let attempt col_e k_v (op : Sqlkit.Ast.cmpop) =
    match base_column_of resolve col_e with
    | None -> None
    | Some (t, c) -> begin
      match Stats.column_range t c, value_as_float k_v with
      | Some (lo_v, hi_v), Some k -> begin
        match value_as_float lo_v, value_as_float hi_v with
        | Some lo, Some hi when hi > lo ->
          let below = Float.max 0.0 (Float.min 1.0 ((k -. lo) /. (hi -. lo))) in
          let s =
            match op with
            | Sqlkit.Ast.Lt | Sqlkit.Ast.Le -> below
            | Sqlkit.Ast.Gt | Sqlkit.Ast.Ge -> 1.0 -. below
            | _ -> range_selectivity
          in
          Some (Float.max 0.02 (Float.min 0.98 s))
        | _ -> None
      end
      | _ -> None
    end
  in
  match a, b with
  | _, Qgm.Const k -> attempt a k op
  | Qgm.Const k, _ -> attempt b k (mirror_cmp op)
  | _ -> None

(** Predicate selectivity.  With [resolve] (quantifier id -> input box),
    equality predicates consult per-column NDV statistics, range
    predicates against constants interpolate over zone-map column
    bounds, and NULL tests use zone null counts; without it (or with
    the colstore off), fixed textbook constants are used. *)
let pred_selectivity ?resolve (p : Qgm.bpred) =
  let resolve = Option.value resolve ~default:(fun _ -> None) in
  (* one [col op const] conjunct, normalized so the column is on the
     left; these are the shapes where treating conjuncts as independent
     double-counts (e.g. [col >= a AND col <= b] multiplies two range
     fractions where the truth is the intersection of one interval) *)
  let atom_of = function
    | Qgm.Bcmp (((Sqlkit.Ast.Eq | Lt | Le | Gt | Ge) as op), a, Qgm.Const k)
      -> begin
      match base_column_of resolve a, value_as_float k with
      | Some (t, c), Some kf -> Some (t, c, op, kf)
      | _ -> None
    end
    | Qgm.Bcmp
        (((Sqlkit.Ast.Eq | Lt | Le | Gt | Ge) as op), (Qgm.Const k), b) -> begin
      match base_column_of resolve b, value_as_float k with
      | Some (t, c), Some kf -> Some (t, c, mirror_cmp op, kf)
      | _ -> None
    end
    | _ -> None
  in
  let rec flatten acc = function
    | Qgm.Band (a, b) -> flatten (flatten acc a) b
    | p -> p :: acc
  in
  (* combined selectivity of every column-vs-constant conjunct on one
     column: an equality dominates (the interval can only shrink it
     further), range bounds intersect into a single interval measured
     against the zone-derived column span *)
  let group_sel (t, c) atoms =
    let has_eq = List.exists (fun (op, _) -> op = Sqlkit.Ast.Eq) atoms in
    let has_range = List.exists (fun (op, _) -> op <> Sqlkit.Ast.Eq) atoms in
    let interval =
      if not has_range then None
      else
        match Stats.column_range t c with
        | Some (lo_v, hi_v) -> begin
          match value_as_float lo_v, value_as_float hi_v with
          | Some lo, Some hi when hi > lo ->
            let glo = ref lo and ghi = ref hi in
            List.iter
              (fun ((op : Sqlkit.Ast.cmpop), k) ->
                match op with
                | Sqlkit.Ast.Lt | Sqlkit.Ast.Le -> if k < !ghi then ghi := k
                | Sqlkit.Ast.Gt | Sqlkit.Ast.Ge -> if k > !glo then glo := k
                | _ -> ())
              atoms;
            Some
              (Float.max 0.02
                 (Float.min 0.98 ((!ghi -. !glo) /. (hi -. lo))))
          | _ -> None
        end
        | None -> None
    in
    match has_eq, interval with
    | true, Some f -> Float.min (Stats.eq_const_selectivity t c) f
    | true, None -> Stats.eq_const_selectivity t c
    | false, Some f -> f
    | false, None ->
      (* no zone statistics: one textbook constant for the whole
         interval, not one per bound *)
      range_selectivity
  in
  let rec go = function
    | Qgm.Btrue -> 1.0
    | Qgm.Bcmp (Sqlkit.Ast.Eq, a, b) -> begin
      match base_column_of resolve a, base_column_of resolve b with
      | Some (t1, c1), Some (t2, c2) -> Stats.eq_join_selectivity t1 c1 t2 c2
      | Some (t, c), None | None, Some (t, c) -> Stats.eq_const_selectivity t c
      | None, None -> eq_selectivity
    end
    | Qgm.Bcmp ((Sqlkit.Ast.Lt | Le | Gt | Ge) as op, a, b) -> begin
      match range_const_selectivity resolve op a b with
      | Some s -> s
      | None -> range_selectivity
    end
    | Qgm.Bcmp (Sqlkit.Ast.Ne, _, _) -> 1.0 -. eq_selectivity
    | Qgm.Band _ as band ->
      let conjuncts = List.rev (flatten [] band) in
      let groups = Hashtbl.create 4 in
      let rest_sel =
        List.fold_left
          (fun acc p ->
            match atom_of p with
            | Some (t, c, op, k) ->
              let key = (Relcore.Base_table.tid t, c) in
              let prev =
                match Hashtbl.find_opt groups key with
                | Some (_, atoms) -> atoms
                | None -> []
              in
              Hashtbl.replace groups key ((t, c), (op, k) :: prev);
              acc
            | None -> acc *. go p)
          1.0 conjuncts
      in
      Hashtbl.fold
        (fun _ (col, atoms) acc -> acc *. group_sel col atoms)
        groups rest_sel
    | Qgm.Bor (a, b) -> min 1.0 (go a +. go b)
    | Qgm.Bnot a -> 1.0 -. go a
    | Qgm.Bis_null e -> begin
      match base_column_of resolve e with
      | Some (t, c) -> begin
        match Stats.null_fraction t c with
        | Some f -> Float.max 0.001 (Float.min 0.999 f)
        | None -> 0.1
      end
      | None -> 0.1
    end
    | Qgm.Bis_not_null e -> begin
      match base_column_of resolve e with
      | Some (t, c) -> begin
        match Stats.null_fraction t c with
        | Some f -> Float.max 0.001 (Float.min 0.999 (1.0 -. f))
        | None -> 0.9
      end
      | None -> 0.9
    end
    | Qgm.Blike _ -> 0.25
    | Qgm.Bexists _ | Qgm.Bin_sub _ -> default_selectivity
  in
  go p

(* -- sideways information passing ---------------------------------------- *)

(** Estimated fraction of probe rows whose join key survives a filter
    built from the build side's key set (range check + Bloom): the
    overlap of the two zone-derived key ranges, capped by how many of
    the probe's distinct keys the build side can possibly contain
    (ndv containment).  [build_card] bounds the build-side NDV when the
    build input is itself filtered.  Falls back to
    {!default_selectivity} when statistics are unavailable — cheap
    insurance, since the executor adaptively drops useless filters. *)
let join_filter_pass_est resolve ~(probe : Qgm.bexpr) ~(build : Qgm.bexpr)
    ~(build_card : float) : float =
  match base_column_of resolve probe, base_column_of resolve build with
  | Some (tp, cp), Some (tb, cb) ->
    let overlap =
      match Stats.column_range tp cp, Stats.column_range tb cb with
      | Some (plo_v, phi_v), Some (blo_v, bhi_v) -> begin
        match
          ( value_as_float plo_v,
            value_as_float phi_v,
            value_as_float blo_v,
            value_as_float bhi_v )
        with
        | Some plo, Some phi, Some blo, Some bhi when phi > plo ->
          let lo = Float.max plo blo and hi = Float.min phi bhi in
          Float.max 0.0 (Float.min 1.0 ((hi -. lo) /. (phi -. plo)))
        | _ -> 1.0
      end
      | _ -> 1.0
    in
    let probe_ndv = float_of_int (max 1 (Stats.column_ndv tp cp)) in
    let build_ndv =
      Float.min (float_of_int (max 1 (Stats.column_ndv tb cb))) build_card
    in
    Float.min overlap (build_ndv /. probe_ndv) |> Float.max 0.0 |> Float.min 1.0
  | _ -> default_selectivity

(** Estimated output cardinality of a box (memoized per call tree). *)
let rec box_cardinality (b : Qgm.box) : float =
  match b.Qgm.kind with
  | Qgm.Base t -> float_of_int (max 1 (Relcore.Base_table.cardinality t))
  | Qgm.Union ->
    List.fold_left
      (fun acc q -> acc +. box_cardinality q.Qgm.over)
      0.0 b.Qgm.quants
  | Qgm.Select | Qgm.Group ->
    let inputs =
      List.filter (fun q -> q.Qgm.qkind = Qgm.F) b.Qgm.quants
      |> List.map (fun q -> box_cardinality q.Qgm.over)
    in
    let cross = List.fold_left ( *. ) 1.0 inputs in
    let resolve qid =
      Option.map (fun q -> q.Qgm.over) (Qgm.find_quant b qid)
    in
    let sel =
      List.fold_left
        (fun acc p -> acc *. pred_selectivity ~resolve p)
        1.0 b.Qgm.preds
    in
    (* each equi-join predicate scales roughly by 1/max-side *)
    let card = max 1.0 (cross *. sel) in
    let card =
      if b.Qgm.kind = Qgm.Group then
        (* groups: assume square-root shrinkage *)
        max 1.0 (Float.sqrt card)
      else card
    in
    if b.Qgm.distinct then max 1.0 (card *. 0.8) else card

(** Estimated cardinality of joining a set of quantifiers with the given
    applicable predicates. *)
let join_cardinality ?resolve (cards : float list) (preds : Qgm.bpred list) :
    float =
  let cross = List.fold_left ( *. ) 1.0 cards in
  let sel =
    List.fold_left (fun acc p -> acc *. pred_selectivity ?resolve p) 1.0 preds
  in
  max 1.0 (cross *. sel)
