(** Cardinality and selectivity estimation for plan optimization.

    Deliberately simple, System-R-style: base cardinalities are exact
    (in-memory tables), predicate selectivities use fixed heuristics,
    equi-join selectivity assumes a key/foreign-key shape. *)

module Qgm = Starq.Qgm

let eq_selectivity = 0.05
let range_selectivity = 0.3
let default_selectivity = 0.5

(* -- batched streaming cost ---------------------------------------------- *)

(** Cost of evaluating one tuple inside a batch loop (normalized unit). *)
let tuple_cost = 1.0

(** Fixed cost of moving one batch across an operator boundary: batch
    allocation, iterator dispatch, selection-vector setup.  With
    tuple-at-a-time execution this was paid {e per row}; batching
    amortizes it over [Relcore.Batch.default_capacity] rows. *)
let batch_overhead = 4.0

(** Cost of streaming [rows] tuples through one operator hop under
    batch-at-a-time execution: a per-tuple term plus a per-batch term
    for however many batches the rows occupy. *)
let stream_cost (rows : float) : float =
  if rows <= 0.0 then batch_overhead
  else
    let batches =
      Float.of_int (Relcore.Batch.default_capacity ())
      |> fun cap -> Float.ceil (rows /. cap)
    in
    (rows *. tuple_cost) +. (batches *. batch_overhead)

(* -- cold-chunk access cost ---------------------------------------------- *)

(** Extra per-row cost of scanning a spilled (cold) colstore chunk
    relative to a hot one: the section copy out of the mmap plus the
    decode-on-the-fly predicate kernels. *)
let cold_chunk_penalty = 1.5

(** Multiplier on the cost of scanning [t]'s rows, reflecting how much
    of the table currently sits in encoded cold chunks.  1.0 whenever
    the colstore (or spilling) is off, so default plans are
    unchanged. *)
let scan_access_factor (t : Relcore.Base_table.t) : float =
  if not (Relcore.Colstore.enabled ()) then 1.0
  else
    1.0
    +. (cold_chunk_penalty
       *. Relcore.Colstore.cold_fraction t.Relcore.Base_table.colstore)

(* -- parallel streaming cost --------------------------------------------- *)

(** Below this many input rows a parallel plan fragment is not worth its
    scheduling overhead (channel traffic, morsel dispatch, worker
    wake-up): the executor falls back to the serial path. *)
let parallel_threshold_rows = 2048

(** Fixed cost of fanning a fragment out over the domain pool: task
    enqueue, channel setup, deterministic re-merge. *)
let parallel_overhead = 64.0

(** Degree of parallelism for a fragment of [rows] input rows given
    [domains] available workers: serial under the threshold, and never
    more workers than there are threshold-sized chunks of work. *)
let choose_dop ?(threshold = parallel_threshold_rows) ~domains ~rows () =
  if domains <= 1 || rows < threshold then 1
  else min domains (max 1 (rows / threshold))

(** {!stream_cost} under a degree of parallelism: per-tuple work divides
    across workers, per-batch overhead does not (every batch still
    crosses the merge queue), plus the fan-out fixed cost. *)
let parallel_stream_cost ~domains (rows : float) : float =
  let dop = choose_dop ~domains ~rows:(int_of_float rows) () in
  if dop <= 1 then stream_cost rows
  else
    let batches =
      Float.ceil (rows /. Float.of_int (Relcore.Batch.default_capacity ()))
    in
    (rows *. tuple_cost /. Float.of_int dop)
    +. (batches *. batch_overhead) +. parallel_overhead

(** Trace a body expression to a base-table column when the expression
    is a bare column reference whose quantifier (resolved by [resolve])
    ranges directly over a base table, or over a pass-through projection
    of one. *)
let rec base_column_of resolve (e : Qgm.bexpr) :
    (Relcore.Base_table.t * int) option =
  match e with
  | Qgm.Qcol (qid, i) -> begin
    match resolve qid with
    | Some (box : Qgm.box) -> begin
      match box.Qgm.kind with
      | Qgm.Base t -> Some (t, i)
      | Qgm.Select when i < Array.length box.Qgm.head ->
        (* follow identity projections one level *)
        base_column_of
          (fun q -> Option.map (fun qu -> qu.Qgm.over) (Qgm.find_quant box q))
          box.Qgm.head.(i).Qgm.hexpr
      | _ -> None
    end
    | None -> None
  end
  | _ -> None

let value_as_float : Relcore.Value.t -> float option = function
  | Relcore.Value.Int i -> Some (float_of_int i)
  | Relcore.Value.Float f when not (Float.is_nan f) -> Some f
  | _ -> None

(* [k op col] reads as [col (mirrored op) k] *)
let mirror_cmp : Sqlkit.Ast.cmpop -> Sqlkit.Ast.cmpop = function
  | Sqlkit.Ast.Lt -> Sqlkit.Ast.Gt
  | Sqlkit.Ast.Le -> Sqlkit.Ast.Ge
  | Sqlkit.Ast.Gt -> Sqlkit.Ast.Lt
  | Sqlkit.Ast.Ge -> Sqlkit.Ast.Le
  | o -> o

(** Interpolated selectivity of [col op k] against the zone-derived
    column range [lo, hi]: the fraction (k - lo) / (hi - lo) of the
    span falls below [k], clamped away from 0 and 1 (zone bounds may be
    conservative, and a zero estimate would hide the row-visit cost).
    [None] when either side is not a numeric base column vs. constant,
    or no range is known — the caller keeps its textbook constant. *)
let range_const_selectivity resolve (op : Sqlkit.Ast.cmpop) (a : Qgm.bexpr)
    (b : Qgm.bexpr) : float option =
  let attempt col_e k_v (op : Sqlkit.Ast.cmpop) =
    match base_column_of resolve col_e with
    | None -> None
    | Some (t, c) -> begin
      match Stats.column_range t c, value_as_float k_v with
      | Some (lo_v, hi_v), Some k -> begin
        match value_as_float lo_v, value_as_float hi_v with
        | Some lo, Some hi when hi > lo ->
          let below = Float.max 0.0 (Float.min 1.0 ((k -. lo) /. (hi -. lo))) in
          let s =
            match op with
            | Sqlkit.Ast.Lt | Sqlkit.Ast.Le -> below
            | Sqlkit.Ast.Gt | Sqlkit.Ast.Ge -> 1.0 -. below
            | _ -> range_selectivity
          in
          Some (Float.max 0.02 (Float.min 0.98 s))
        | _ -> None
      end
      | _ -> None
    end
  in
  match a, b with
  | _, Qgm.Const k -> attempt a k op
  | Qgm.Const k, _ -> attempt b k (mirror_cmp op)
  | _ -> None

(** Predicate selectivity.  With [resolve] (quantifier id -> input box),
    equality predicates consult per-column NDV statistics, range
    predicates against constants interpolate over zone-map column
    bounds, and NULL tests use zone null counts; without it (or with
    the colstore off), fixed textbook constants are used. *)
let pred_selectivity ?resolve (p : Qgm.bpred) =
  let resolve = Option.value resolve ~default:(fun _ -> None) in
  (* one [col op const] conjunct, normalized so the column is on the
     left; these are the shapes where treating conjuncts as independent
     double-counts (e.g. [col >= a AND col <= b] multiplies two range
     fractions where the truth is the intersection of one interval) *)
  let atom_of = function
    | Qgm.Bcmp (((Sqlkit.Ast.Eq | Lt | Le | Gt | Ge) as op), a, Qgm.Const k)
      -> begin
      match base_column_of resolve a, value_as_float k with
      | Some (t, c), Some kf -> Some (t, c, op, kf)
      | _ -> None
    end
    | Qgm.Bcmp
        (((Sqlkit.Ast.Eq | Lt | Le | Gt | Ge) as op), (Qgm.Const k), b) -> begin
      match base_column_of resolve b, value_as_float k with
      | Some (t, c), Some kf -> Some (t, c, mirror_cmp op, kf)
      | _ -> None
    end
    | _ -> None
  in
  let rec flatten acc = function
    | Qgm.Band (a, b) -> flatten (flatten acc a) b
    | p -> p :: acc
  in
  (* combined selectivity of every column-vs-constant conjunct on one
     column: an equality dominates (the interval can only shrink it
     further), range bounds intersect into a single interval measured
     against the zone-derived column span *)
  let group_sel (t, c) atoms =
    let has_eq = List.exists (fun (op, _) -> op = Sqlkit.Ast.Eq) atoms in
    let has_range = List.exists (fun (op, _) -> op <> Sqlkit.Ast.Eq) atoms in
    let interval =
      if not has_range then None
      else
        match Stats.column_range t c with
        | Some (lo_v, hi_v) -> begin
          match value_as_float lo_v, value_as_float hi_v with
          | Some lo, Some hi when hi > lo ->
            let glo = ref lo and ghi = ref hi in
            List.iter
              (fun ((op : Sqlkit.Ast.cmpop), k) ->
                match op with
                | Sqlkit.Ast.Lt | Sqlkit.Ast.Le -> if k < !ghi then ghi := k
                | Sqlkit.Ast.Gt | Sqlkit.Ast.Ge -> if k > !glo then glo := k
                | _ -> ())
              atoms;
            Some
              (Float.max 0.02
                 (Float.min 0.98 ((!ghi -. !glo) /. (hi -. lo))))
          | _ -> None
        end
        | None -> None
    in
    match has_eq, interval with
    | true, Some f -> Float.min (Stats.eq_const_selectivity t c) f
    | true, None -> Stats.eq_const_selectivity t c
    | false, Some f -> f
    | false, None ->
      (* no zone statistics: one textbook constant for the whole
         interval, not one per bound *)
      range_selectivity
  in
  let rec go = function
    | Qgm.Btrue -> 1.0
    | Qgm.Bcmp (Sqlkit.Ast.Eq, a, b) -> begin
      match base_column_of resolve a, base_column_of resolve b with
      | Some (t1, c1), Some (t2, c2) -> Stats.eq_join_selectivity t1 c1 t2 c2
      | Some (t, c), None | None, Some (t, c) -> Stats.eq_const_selectivity t c
      | None, None -> eq_selectivity
    end
    | Qgm.Bcmp ((Sqlkit.Ast.Lt | Le | Gt | Ge) as op, a, b) -> begin
      match range_const_selectivity resolve op a b with
      | Some s -> s
      | None -> range_selectivity
    end
    | Qgm.Bcmp (Sqlkit.Ast.Ne, _, _) -> 1.0 -. eq_selectivity
    | Qgm.Band _ as band ->
      let conjuncts = List.rev (flatten [] band) in
      let groups = Hashtbl.create 4 in
      let rest_sel =
        List.fold_left
          (fun acc p ->
            match atom_of p with
            | Some (t, c, op, k) ->
              let key = (Relcore.Base_table.tid t, c) in
              let prev =
                match Hashtbl.find_opt groups key with
                | Some (_, atoms) -> atoms
                | None -> []
              in
              Hashtbl.replace groups key ((t, c), (op, k) :: prev);
              acc
            | None -> acc *. go p)
          1.0 conjuncts
      in
      Hashtbl.fold
        (fun _ (col, atoms) acc -> acc *. group_sel col atoms)
        groups rest_sel
    | Qgm.Bor (a, b) -> min 1.0 (go a +. go b)
    | Qgm.Bnot a -> 1.0 -. go a
    | Qgm.Bis_null e -> begin
      match base_column_of resolve e with
      | Some (t, c) -> begin
        match Stats.null_fraction t c with
        | Some f -> Float.max 0.001 (Float.min 0.999 f)
        | None -> 0.1
      end
      | None -> 0.1
    end
    | Qgm.Bis_not_null e -> begin
      match base_column_of resolve e with
      | Some (t, c) -> begin
        match Stats.null_fraction t c with
        | Some f -> Float.max 0.001 (Float.min 0.999 (1.0 -. f))
        | None -> 0.9
      end
      | None -> 0.9
    end
    | Qgm.Blike _ -> 0.25
    | Qgm.Bexists _ | Qgm.Bin_sub _ -> default_selectivity
  in
  go p

(* -- sideways information passing ---------------------------------------- *)

(** Estimated fraction of probe rows whose join key survives a filter
    built from the build side's key set (range check + Bloom): the
    overlap of the two zone-derived key ranges, capped by how many of
    the probe's distinct keys the build side can possibly contain
    (ndv containment).  [build_card] bounds the build-side NDV when the
    build input is itself filtered.  Falls back to
    {!default_selectivity} when statistics are unavailable — cheap
    insurance, since the executor adaptively drops useless filters. *)
let join_filter_pass_est resolve ~(probe : Qgm.bexpr) ~(build : Qgm.bexpr)
    ~(build_card : float) : float =
  match base_column_of resolve probe, base_column_of resolve build with
  | Some (tp, cp), Some (tb, cb) ->
    let overlap =
      match Stats.column_range tp cp, Stats.column_range tb cb with
      | Some (plo_v, phi_v), Some (blo_v, bhi_v) -> begin
        match
          ( value_as_float plo_v,
            value_as_float phi_v,
            value_as_float blo_v,
            value_as_float bhi_v )
        with
        | Some plo, Some phi, Some blo, Some bhi when phi > plo ->
          let lo = Float.max plo blo and hi = Float.min phi bhi in
          Float.max 0.0 (Float.min 1.0 ((hi -. lo) /. (phi -. plo)))
        | _ -> 1.0
      end
      | _ -> 1.0
    in
    let probe_ndv = float_of_int (max 1 (Stats.column_ndv tp cp)) in
    let build_ndv =
      Float.min (float_of_int (max 1 (Stats.column_ndv tb cb))) build_card
    in
    Float.min overlap (build_ndv /. probe_ndv) |> Float.max 0.0 |> Float.min 1.0
  | _ -> default_selectivity

(** Estimated output cardinality of a box (memoized per call tree). *)
let rec box_cardinality (b : Qgm.box) : float =
  match b.Qgm.kind with
  | Qgm.Base t -> float_of_int (max 1 (Relcore.Base_table.cardinality t))
  | Qgm.Union ->
    List.fold_left
      (fun acc q -> acc +. box_cardinality q.Qgm.over)
      0.0 b.Qgm.quants
  | Qgm.Select | Qgm.Group ->
    let inputs =
      List.filter (fun q -> q.Qgm.qkind = Qgm.F) b.Qgm.quants
      |> List.map (fun q -> box_cardinality q.Qgm.over)
    in
    let cross = List.fold_left ( *. ) 1.0 inputs in
    let resolve qid =
      Option.map (fun q -> q.Qgm.over) (Qgm.find_quant b qid)
    in
    let sel =
      List.fold_left
        (fun acc p -> acc *. pred_selectivity ~resolve p)
        1.0 b.Qgm.preds
    in
    (* each equi-join predicate scales roughly by 1/max-side *)
    let card = max 1.0 (cross *. sel) in
    let card =
      if b.Qgm.kind = Qgm.Group then
        (* groups: assume square-root shrinkage *)
        max 1.0 (Float.sqrt card)
      else card
    in
    if b.Qgm.distinct then max 1.0 (card *. 0.8) else card

(** Estimated cardinality of joining a set of quantifiers with the given
    applicable predicates. *)
let join_cardinality ?resolve (cards : float list) (preds : Qgm.bpred list) :
    float =
  let cross = List.fold_left ( *. ) 1.0 cards in
  let sel =
    List.fold_left (fun acc p -> acc *. pred_selectivity ?resolve p) 1.0 preds
  in
  max 1.0 (cross *. sel)
