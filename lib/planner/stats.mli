(** Table statistics for the cost model: per-column distinct-value
    counts (NDV), computed on demand and cached until the table's
    version counter moves (any DML invalidates, including UPDATEs that
    keep the row count). *)

open Relcore

val column_ndv : Base_table.t -> int -> int
val eq_const_selectivity : Base_table.t -> int -> float

val eq_join_selectivity : Base_table.t -> int -> Base_table.t -> int -> float
(** The classic 1 / max(ndv_left, ndv_right). *)

val column_range : Base_table.t -> int -> (Value.t * Value.t) option
(** Zone-derived [lo, hi] of a numeric column over live rows (possibly
    conservative).  [None] when [XNFDB_COLSTORE] is off or the column
    has no numeric bounds. *)

val null_fraction : Base_table.t -> int -> float option
(** Fraction of live rows with NULL in the column, from zone null
    counts.  [None] when [XNFDB_COLSTORE] is off or the table is
    empty. *)

val reset : unit -> unit
