(** Table statistics for the cost model: per-column distinct-value
    counts (NDV), computed on demand and cached until the table's
    version counter moves (any DML — an UPDATE that rewrites values
    without changing the row count still invalidates, which a
    cardinality-keyed cache would miss).  Keys use {!Base_table.tid}, so
    same-named tables in different databases never collide. *)

open Relcore

type entry = { at_version : int; ndv : int }

let cache : (int * int, entry) Hashtbl.t = Hashtbl.create 64

(* the cache is process-global and plan compilation now runs from
   concurrent server sessions (snapshot readers plan outside the big
   lock), so every access goes through this mutex *)
let cache_mu = Mutex.create ()

(** Number of distinct values in column [col] of [table]. *)
let column_ndv (table : Base_table.t) (col : int) : int =
  let key = (Base_table.tid table, col) in
  let version = Base_table.version table in
  let hit =
    Mutex.protect cache_mu (fun () ->
        match Hashtbl.find_opt cache key with
        | Some e when e.at_version = version -> Some e.ndv
        | _ -> None)
  in
  match hit with
  | Some ndv -> ndv
  | None ->
    let card = Base_table.cardinality table in
    let seen = Hashtbl.create (max 16 card) in
    Base_table.iter
      (fun _rid tuple -> Hashtbl.replace seen (Value.hash tuple.(col), tuple.(col)) ())
      table;
    let ndv = Hashtbl.length seen in
    Mutex.protect cache_mu (fun () ->
        Hashtbl.replace cache key { at_version = version; ndv });
    ndv

(** Selectivity of an equality against a constant on this column. *)
let eq_const_selectivity table col =
  let ndv = max 1 (column_ndv table col) in
  1.0 /. float_of_int ndv

(** Selectivity of an equi-join between two base columns: the classic
    1 / max(ndv_left, ndv_right). *)
let eq_join_selectivity t1 c1 t2 c2 =
  let n1 = max 1 (column_ndv t1 c1) and n2 = max 1 (column_ndv t2 c2) in
  1.0 /. float_of_int (max n1 n2)

(** Zone-derived [lo, hi] of a numeric column over live rows, possibly
    conservative (never narrower than the data).  Reads the columnar
    store's aggregated chunk zone maps — O(chunks), no table scan — so
    it needs no version cache.  [None] when the colstore knob is off or
    the column is non-numeric / all-NULL / empty. *)
let column_range (table : Base_table.t) (col : int) :
    (Value.t * Value.t) option =
  if not (Colstore.enabled ()) then None
  else Colstore.col_range table.Base_table.colstore col

(** Fraction of live rows holding NULL in the column, from zone null
    counts.  [None] when the colstore knob is off or the table is
    empty. *)
let null_fraction (table : Base_table.t) (col : int) : float option =
  if not (Colstore.enabled ()) then None
  else
    let card = Base_table.cardinality table in
    if card <= 0 then None
    else
      Some
        (float_of_int (Colstore.col_null_count table.Base_table.colstore col)
        /. float_of_int card)

let reset () = Mutex.protect cache_mu (fun () -> Hashtbl.reset cache)
