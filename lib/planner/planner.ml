(** Plan optimization: QGM → QEP (the "Plan Optimization and Plan
    Refinement" stage of Fig. 2).

    Join orders come from {!Join_order} (cost-based DP); access methods
    prefer index joins over hash joins over nested loops.  Boxes with
    multiple consumers and no correlated references compile to [Shared]
    nodes, materialized once per execution — the engine-level mechanism
    behind XNF's common-subexpression sharing (Sect. 4.2, Fig. 5b). *)

open Relcore
module Qgm = Starq.Qgm
module Ast = Sqlkit.Ast

type layout = (int * (int * int)) list (* qid -> (offset, width) *)

type join_method = [ `Auto | `Hash | `Merge ]

type ctx = {
  consumers : (int, (Qgm.box * Qgm.quant) list) Hashtbl.t;
  outer : layout list; (* correlation frames, innermost first *)
  share : bool; (* enable common-subexpression sharing *)
  join_method : join_method; (* equi-join operator preference *)
}

let box_width (b : Qgm.box) = Array.length b.Qgm.head

let layout_find (layout : layout) qid = List.assoc_opt qid layout

(** Resolve a quantifier column against the frame stack: frame 0 is the
    current tuple, frame k>0 becomes a correlated parameter. *)
let resolver (frames : layout list) (qid : int) (i : int) : Plan.scalar =
  let rec go level = function
    | [] -> Errors.execution_error "planner: unresolved quantifier %d" qid
    | frame :: rest -> (
      match layout_find frame qid with
      | Some (off, _w) ->
        if level = 0 then Plan.P_col (off + i) else Plan.P_param (level - 1, off + i)
      | None -> go (level + 1) rest)
  in
  go 0 frames

let rec compile_scalar resolve (e : Qgm.bexpr) : Plan.scalar =
  match e with
  | Qgm.Qcol (q, i) -> resolve q i
  | Qgm.Const v -> Plan.P_const v
  | Qgm.Bop (op, a, b) ->
    Plan.P_bop (op, compile_scalar resolve a, compile_scalar resolve b)
  | Qgm.Bneg a -> Plan.P_neg (compile_scalar resolve a)
  | Qgm.Bfn (name, args) ->
    Plan.P_fn (name, List.map (compile_scalar resolve) args)
  | Qgm.Bagg _ ->
    Errors.execution_error "planner: aggregate outside a Group context"

let rec compile_pred ctx (frames : layout list) (p : Qgm.bpred) : Plan.ppred =
  let resolve = resolver frames in
  match p with
  | Qgm.Btrue -> Plan.P_true
  | Qgm.Bcmp (op, a, b) ->
    Plan.P_cmp (op, compile_scalar resolve a, compile_scalar resolve b)
  | Qgm.Band (a, b) -> Plan.P_and (compile_pred ctx frames a, compile_pred ctx frames b)
  | Qgm.Bor (a, b) -> Plan.P_or (compile_pred ctx frames a, compile_pred ctx frames b)
  | Qgm.Bnot a -> Plan.P_not (compile_pred ctx frames a)
  | Qgm.Bis_null e -> Plan.P_is_null (compile_scalar resolve e)
  | Qgm.Bis_not_null e -> Plan.P_is_not_null (compile_scalar resolve e)
  | Qgm.Blike (e, pat) -> Plan.P_like (compile_scalar resolve e, pat)
  | Qgm.Bexists sub ->
    let subctx = { ctx with outer = frames } in
    Plan.P_exists (compile_box subctx sub)
  | Qgm.Bin_sub (e, sub) ->
    let subctx = { ctx with outer = frames } in
    Plan.P_in (compile_scalar resolve e, compile_box subctx sub)

(* -- select-like boxes -------------------------------------------------- *)

(** Compile the join/filter part of a Select or Group box.  Returns the
    input plan and the resulting layout of box-local quantifiers. *)
and compile_joins ctx (box : Qgm.box) : Plan.t * layout =
  let fquants =
    Array.of_list (List.filter (fun q -> q.Qgm.qkind = Qgm.F) box.Qgm.quants)
  in
  let equants = List.filter (fun q -> q.Qgm.qkind = Qgm.E) box.Qgm.quants in
  let eqids = List.map (fun q -> q.Qgm.qid) equants in
  let local_qids = Qgm.local_qids box in
  (* preds referencing an E quantifier are folded into that quantifier's
     existential probe; others participate in join planning *)
  let epreds, join_preds =
    List.partition
      (fun p -> List.exists (fun q -> List.mem q eqids) (Qgm.bpred_quants p))
      box.Qgm.preds
  in
  if Array.length fquants = 0 then begin
    (* no FROM clause: a single empty tuple, filtered by the preds *)
    let layout = [] in
    let base = Plan.Values [ [||] ] in
    let plan =
      List.fold_left
        (fun acc p -> Plan.Filter (acc, compile_pred ctx (layout :: ctx.outer) p))
        base join_preds
    in
    (attach_equants ctx box plan layout equants epreds, layout)
  end
  else begin
    (* cost-based join order *)
    let cards = Array.map (fun q -> Cost.box_cardinality q.Qgm.over) fquants in
    let qid_index qid =
      let idx = ref None in
      Array.iteri (fun i q -> if q.Qgm.qid = qid then idx := Some i) fquants;
      !idx
    in
    let pred_inputs =
      List.map
        (fun p ->
          let idxs =
            Qgm.bpred_quants p
            |> List.filter_map qid_index
            |> List.sort_uniq compare
          in
          (p, idxs))
        join_preds
    in
    let order =
      Join_order.choose { Join_order.quants = fquants; cards; preds = pred_inputs }
    in
    (* place quantifiers one at a time *)
    let placed = Hashtbl.create 8 in
    let layout = ref [] and width = ref 0 in
    let pending = ref join_preds in
    let applicable_now () =
      let can p =
        List.for_all
          (fun qid ->
            (not (List.mem qid local_qids)) || Hashtbl.mem placed qid)
          (Qgm.bpred_quants p)
      in
      let yes, no = List.partition can !pending in
      pending := no;
      yes
    in
    let place_first idx =
      let q = fquants.(idx) in
      Hashtbl.replace placed q.Qgm.qid ();
      layout := [ (q.Qgm.qid, (0, box_width q.Qgm.over)) ];
      width := box_width q.Qgm.over;
      let plan = compile_box ctx q.Qgm.over in
      List.fold_left
        (fun acc p -> Plan.Filter (acc, compile_pred ctx (!layout :: ctx.outer) p))
        plan (applicable_now ())
    in
    let place_next acc idx =
      let q = fquants.(idx) in
      Hashtbl.replace placed q.Qgm.qid ();
      let next_off = !width in
      let next_w = box_width q.Qgm.over in
      (* classify the now-applicable predicates *)
      let preds_now = applicable_now () in
      let is_probe_side e =
        List.for_all
          (fun qid -> qid <> q.Qgm.qid)
          (Qgm.bexpr_quants e |> List.filter (fun qid -> List.mem qid local_qids))
      in
      let is_build_side e =
        List.for_all
          (fun qid -> qid = q.Qgm.qid || not (List.mem qid local_qids))
          (Qgm.bexpr_quants e)
      in
      let eq_pairs, residual =
        List.partition_map
          (fun p ->
            match p with
            | Qgm.Bcmp (Ast.Eq, a, b) when is_probe_side a && is_build_side b ->
              Left (a, b)
            | Qgm.Bcmp (Ast.Eq, b, a) when is_probe_side a && is_build_side b ->
              Left (a, b)
            | p -> Right p)
          preds_now
      in
      (* subquery-free conjuncts over the newly placed quantifier alone
         become a Filter under the inner input instead of join residual:
         the hash table (and any sideways join filter derived from it)
         then holds only rows that could contribute to output.  Rows
         removed would have failed the residual anyway, and survivor
         order is unchanged, so results are identical. *)
      let rec has_subquery = function
        | Qgm.Bexists _ | Qgm.Bin_sub _ -> true
        | Qgm.Band (a, b) | Qgm.Bor (a, b) ->
          has_subquery a || has_subquery b
        | Qgm.Bnot a -> has_subquery a
        | _ -> false
      in
      let inner_only, residual =
        List.partition
          (fun p ->
            (not (has_subquery p))
            && Qgm.bpred_quants p <> []
            && List.for_all (fun qid -> qid = q.Qgm.qid) (Qgm.bpred_quants p))
          residual
      in
      let probe_frames = !layout :: ctx.outer in
      (* build-side scalars are evaluated on the inner row alone *)
      let build_layout = [ (q.Qgm.qid, (0, next_w)) ] in
      let build_frames = build_layout :: probe_frames in
      let concat_layout = (q.Qgm.qid, (next_off, next_w)) :: !layout in
      let concat_frames = concat_layout :: ctx.outer in
      let conj frames ps =
        List.fold_left
          (fun acc p ->
            let cp = compile_pred ctx frames p in
            if acc = Plan.P_true then cp else Plan.P_and (acc, cp))
          Plan.P_true ps
      in
      let residual_pred = conj concat_frames residual in
      let with_inner_filter inner =
        match inner_only with
        | [] -> inner
        | ps -> Plan.Filter (inner, conj build_frames ps)
      in
      (* quantifier id -> input box, for statistics lookups *)
      let stats_resolve qid =
        Option.map (fun qu -> qu.Qgm.over) (Qgm.find_quant box qid)
      in
      let jfilter_hint () =
        match eq_pairs with
        | [] -> None
        | pairs ->
          let build_card =
            Cost.box_cardinality q.Qgm.over
            *. List.fold_left
                 (fun acc p ->
                   acc *. Cost.pred_selectivity ~resolve:stats_resolve p)
                 1.0 inner_only
          in
          (* multi-key joins filter on the whole key tuple: a probe row
             must match on {e every} pair, so the tightest single-pair
             estimate is a (conservative) upper bound on the combined
             pass rate *)
          let est =
            List.fold_left
              (fun acc (a, b) ->
                min acc
                  (Cost.join_filter_pass_est stats_resolve ~probe:a ~build:b
                     ~build_card))
              infinity pairs
          in
          if est < Cost.jf_drop_threshold () then Some { Plan.jf_pass_est = est }
          else None
      in
      let plan =
        match eq_pairs with
        | [] ->
          let inner = with_inner_filter (compile_box ctx q.Qgm.over) in
          Plan.Nl_join { outer = acc; inner; cond = residual_pred }
        | _ -> begin
          (* try an index join when the inner is a plain base table and
             the build-side expressions are bare columns with an index *)
          let index_candidate =
            match q.Qgm.over.Qgm.kind with
            | Qgm.Base t ->
              let cols =
                List.map
                  (fun (_, b) ->
                    match b with
                    | Qgm.Qcol (qid, i) when qid = q.Qgm.qid -> Some i
                    | _ -> None)
                  eq_pairs
              in
              if List.for_all Option.is_some cols then begin
                let cols = List.map Option.get cols in
                match Base_table.index_on t (Array.of_list cols) with
                | Some idx -> Some (t, idx, cols)
                | None -> None
              end
              else None
            | _ -> None
          in
          match index_candidate with
          | Some (t, idx, _cols) when ctx.join_method <> `Merge ->
            let keys =
              List.map
                (fun (a, _) -> compile_scalar (resolver probe_frames) a)
                eq_pairs
            in
            (* no inner plan to filter: single-quantifier conjuncts stay
               in the index join's residual *)
            Plan.Index_join
              {
                outer = acc;
                table = t;
                index = idx;
                keys;
                residual = conj concat_frames (inner_only @ residual);
              }
          | _ ->
            let inner = with_inner_filter (compile_box ctx q.Qgm.over) in
            let probe_keys =
              List.map
                (fun (a, _) -> compile_scalar (resolver probe_frames) a)
                eq_pairs
            in
            let build_keys =
              List.map
                (fun (_, b) -> compile_scalar (resolver build_frames) b)
                eq_pairs
            in
            if ctx.join_method = `Merge then
              Plan.Merge_join
                {
                  left = acc;
                  right = inner;
                  left_keys = probe_keys;
                  right_keys = build_keys;
                  residual = residual_pred;
                }
            else
              Plan.Hash_join
                {
                  build = inner;
                  probe = acc;
                  build_keys;
                  probe_keys;
                  residual = residual_pred;
                  jfilter = jfilter_hint ();
                }
        end
      in
      layout := concat_layout;
      width := next_off + next_w;
      plan
    in
    let plan =
      match order with
      | [] -> assert false
      | first :: rest ->
        List.fold_left place_next (place_first first) rest
    in
    (* anything still pending references outer scopes only *)
    let plan =
      List.fold_left
        (fun acc p -> Plan.Filter (acc, compile_pred ctx (!layout :: ctx.outer) p))
        plan !pending
    in
    (attach_equants ctx box plan !layout equants epreds, !layout)
  end

(** Attach residual existential quantifiers as correlated EXISTS probes. *)
and attach_equants ctx (box : Qgm.box) plan (layout : layout) equants epreds =
  ignore box;
  match equants with
  | [] -> plan
  | _ ->
    let frames = layout :: ctx.outer in
    let probe_of q =
      let qid = q.Qgm.qid in
      let my_preds =
        List.filter (fun p -> List.mem qid (Qgm.bpred_quants p)) epreds
      in
      let sub_w = box_width q.Qgm.over in
      let subctx = { ctx with outer = frames } in
      let sub_plan = compile_box subctx q.Qgm.over in
      (* inside the probe, the E quantifier's columns are the subplan's
         own output columns *)
      let sub_frames = [ (qid, (0, sub_w)) ] :: frames in
      let filter =
        List.fold_left
          (fun acc p ->
            let cp = compile_pred subctx sub_frames p in
            if acc = Plan.P_true then cp else Plan.P_and (acc, cp))
          Plan.P_true my_preds
      in
      match filter with
      | Plan.P_true -> Plan.P_exists sub_plan
      | f -> Plan.P_exists (Plan.Filter (sub_plan, f))
    in
    let pred =
      List.fold_left
        (fun acc q ->
          let p = probe_of q in
          if acc = Plan.P_true then p else Plan.P_and (acc, p))
        Plan.P_true equants
    in
    Plan.Filter (plan, pred)

(** Compile a whole box to a plan producing its head layout. *)
and compile_box ctx (box : Qgm.box) : Plan.t =
  match box.Qgm.kind with
  | Qgm.Base t -> Plan.Scan t
  | Qgm.Select ->
    let plan = compile_select_body ctx box in
    maybe_share ctx box plan
  | Qgm.Group ->
    let plan = compile_group_body ctx box in
    maybe_share ctx box plan
  | Qgm.Union ->
    let inputs = List.map (fun q -> compile_box ctx q.Qgm.over) box.Qgm.quants in
    let plan = Plan.Union_all inputs in
    let plan = if box.Qgm.distinct then Plan.Distinct plan else plan in
    maybe_share ctx box plan

and maybe_share ctx box plan =
  let n_consumers =
    match Hashtbl.find_opt ctx.consumers box.Qgm.bid with
    | Some l -> List.length l
    | None -> 0
  in
  if ctx.share && n_consumers > 1 && Qgm.free_quants_of_box box = [] then
    Plan.Shared (box.Qgm.bid, plan)
  else plan

and compile_select_body ctx box =
  let input, layout = compile_joins ctx box in
  let frames = layout :: ctx.outer in
  let head =
    Array.map
      (fun (h : Qgm.head_col) -> compile_scalar (resolver frames) h.Qgm.hexpr)
      box.Qgm.head
  in
  let plan = Plan.Project (input, head) in
  if box.Qgm.distinct then Plan.Distinct plan else plan

and compile_group_body ctx box =
  let input, layout = compile_joins ctx box in
  let frames = layout :: ctx.outer in
  let resolve = resolver frames in
  let keys = List.map (compile_scalar resolve) box.Qgm.group_by in
  (* collect distinct aggregate expressions from the head *)
  let aggs : (Qgm.bexpr * Plan.agg_spec) list ref = ref [] in
  let note_agg e =
    match e with
    | Qgm.Bagg (fn, arg) ->
      if not (List.mem_assoc e !aggs) then
        aggs :=
          !aggs
          @ [ (e, { Plan.agg_fn = fn; agg_arg = Option.map (compile_scalar resolve) arg }) ]
    | _ -> ()
  in
  Array.iter (fun (h : Qgm.head_col) -> Qgm.iter_bexpr note_agg h.Qgm.hexpr) box.Qgm.head;
  let agg_list = List.map snd !aggs in
  let agg_index e =
    let rec find i = function
      | [] -> None
      | (e', _) :: rest -> if e' = e then Some i else find (i + 1) rest
    in
    find 0 !aggs
  in
  let nkeys = List.length keys in
  let key_index e =
    let rec find i = function
      | [] -> None
      | k :: rest -> if k = e then Some i else find (i + 1) rest
    in
    find 0 box.Qgm.group_by
  in
  (* head expressions over the aggregate output (keys then aggs) *)
  let rec head_scalar (e : Qgm.bexpr) : Plan.scalar =
    match key_index e with
    | Some i -> Plan.P_col i
    | None -> begin
      match e with
      | Qgm.Bagg _ -> begin
        match agg_index e with
        | Some i -> Plan.P_col (nkeys + i)
        | None -> assert false
      end
      | Qgm.Const v -> Plan.P_const v
      | Qgm.Bop (op, a, b) -> Plan.P_bop (op, head_scalar a, head_scalar b)
      | Qgm.Bneg a -> Plan.P_neg (head_scalar a)
      | Qgm.Bfn (name, args) -> Plan.P_fn (name, List.map head_scalar args)
      | Qgm.Qcol _ ->
        Errors.semantic_error
          "column in SELECT must appear in GROUP BY or inside an aggregate"
    end
  in
  let agg_plan = Plan.Aggregate { input; keys; aggs = agg_list } in
  let head = Array.map (fun (h : Qgm.head_col) -> head_scalar h.Qgm.hexpr) box.Qgm.head in
  let plan = Plan.Project (agg_plan, head) in
  if box.Qgm.distinct then Plan.Distinct plan else plan

(* -- entry points -------------------------------------------------------- *)

let schema_of_box (box : Qgm.box) : Schema.t =
  Schema.make
    (List.map
       (fun (h : Qgm.head_col) -> Schema.column h.Qgm.hname h.Qgm.htype)
       (Array.to_list box.Qgm.head))

(** Compile a rewritten QGM graph into an executable plan. *)
let compile ?(share = true) ?(join_method = `Auto) (g : Qgm.graph) :
    Plan.compiled =
  let ctx =
    { consumers = Qgm.consumers [ g.Qgm.top ]; outer = []; share; join_method }
  in
  let plan = compile_box ctx g.Qgm.top in
  let plan =
    match g.Qgm.order_by with [] -> plan | specs -> Plan.Sort (plan, specs)
  in
  let plan =
    (* strip hidden sort columns *)
    match g.Qgm.strip with
    | None -> plan
    | Some n -> Plan.Project (plan, Array.init n (fun i -> Plan.P_col i))
  in
  let plan =
    match g.Qgm.limit with None -> plan | Some n -> Plan.Limit (plan, n)
  in
  let schema =
    let full = schema_of_box g.Qgm.top in
    match g.Qgm.strip with
    | None -> full
    | Some n ->
      Schema.make
        (List.filteri (fun i _ -> i < n) (Schema.columns full)
        |> List.map (fun (c : Schema.column) ->
               Schema.column ~nullable:c.Schema.nullable c.Schema.name
                 c.Schema.dtype))
  in
  { Plan.plan; out_schema = schema }

(** Compile several graphs that may physically share boxes (XNF
    multi-table queries): consumers are computed across all roots so
    shared derivations become [Shared] nodes materialized once per
    execution context. *)
let compile_many ?(share = true) ?(join_method = `Auto)
    (roots : (string * Qgm.box) list) : (string * Plan.compiled) list =
  let consumers = Qgm.consumers (List.map snd roots) in
  (* an output box referenced by several roots is also shared *)
  let ctx = { consumers; outer = []; share; join_method } in
  List.map
    (fun (name, box) ->
      (name, { Plan.plan = compile_box ctx box; out_schema = schema_of_box box }))
    roots
