(** Cardinality and selectivity estimation (System-R style): exact base
    cardinalities, NDV statistics for equalities, fixed heuristics
    elsewhere. *)

module Qgm = Starq.Qgm

val eq_selectivity : float
val range_selectivity : float
val default_selectivity : float

(** Host calibration of the cost constants (see [xnfdb calibrate]).
    Constants are ratios over the per-tuple scan cost; a persisted
    profile is activated by [XNFDB_COST_PROFILE] and disabled bit for
    bit by [XNFDB_CALIBRATION=0]. *)
module Calibrate : sig
  type profile = {
    batch_overhead : float;
    cold_chunk_penalty : float;
    parallel_overhead : float;
    parallel_threshold_rows : int;
    jf_drop_threshold : float;
    jf_adaptive_sample : int;
    host_cores : int;
    tuple_ns : float;
  }

  val defaults : profile
  (** The hand-set constants, bit for bit. *)

  val measure : unit -> profile
  (** Run the micro-probe suite (scan, batch dispatch, hash
      build/probe, Bloom test, decode fault, domain fan-out) on this
      host; takes well under a second. *)

  val render : profile -> string
  (** The persisted [key value] text form. *)

  val save : string -> profile -> unit

  val load : string -> (profile, string) result
  (** Missing keys keep their defaults; unknown keys are ignored. *)

  val enabled : unit -> bool
  (** The [XNFDB_CALIBRATION] knob (default on; "0" restores
      defaults). *)

  val profile_path : unit -> string option
  (** The [XNFDB_COST_PROFILE] knob. *)

  val active : unit -> profile
  (** The profile in force: the file named by [XNFDB_COST_PROFILE] when
      calibration is enabled and the file loads, else {!defaults}.
      Memoized on the two knob values, so flipping them mid-process
      takes effect immediately. *)
end

val tuple_cost : float
(** Cost of evaluating one tuple inside a batch loop — the normalized
    unit (always 1.0; calibration reshapes the other constants around
    it). *)

val batch_overhead : unit -> float
(** Fixed cost of moving one batch across an operator boundary
    (calibrated). *)

val stream_cost : float -> float
(** [stream_cost rows] is the cost of streaming that many tuples through
    one operator hop under batch-at-a-time execution: a per-tuple term
    plus a per-batch term for however many [Relcore.Batch] units the
    rows occupy. *)

val cold_chunk_penalty : unit -> float
(** Extra per-row cost of scanning a spilled (cold) colstore chunk
    relative to a hot one (calibrated). *)

val scan_access_factor : Relcore.Base_table.t -> float
(** Multiplier on the cost of scanning the table's rows:
    [1 + cold_chunk_penalty * cold_fraction].  1.0 when the colstore or
    spilling is off, so default plans are unchanged. *)

val parallel_threshold_rows : unit -> int
(** Input-row count below which a fragment runs serially (scheduling a
    parallel fan-out would cost more than it saves; calibrated). *)

val parallel_overhead : unit -> float
(** Fixed cost of one parallel fan-out (pool dispatch, channel setup,
    deterministic re-merge; calibrated). *)

val jf_adaptive_sample : unit -> int
(** Probe rows both executors observe before judging a join filter's
    usefulness (calibrated). *)

val jf_drop_threshold : unit -> float
(** Observed pass-rate above which the per-row join-filter test is
    disabled (calibrated from the Bloom-test vs hash-probe cost
    ratio). *)

val choose_dop : ?threshold:int -> domains:int -> rows:int -> unit -> int
(** Degree of parallelism for a fragment: 1 under [threshold] rows,
    otherwise at most one worker per threshold-sized chunk, capped at
    [domains]. *)

val parallel_stream_cost : domains:int -> float -> float
(** {!stream_cost} with per-tuple work divided across the chosen degree
    of parallelism; per-batch merge overhead and the fan-out fixed cost
    are not divided. *)

val base_column_of :
  (int -> Qgm.box option) -> Qgm.bexpr -> (Relcore.Base_table.t * int) option
(** Trace a bare column reference to a base-table column through
    identity projections. *)

val range_const_selectivity :
  (int -> Qgm.box option) ->
  Sqlkit.Ast.cmpop ->
  Qgm.bexpr ->
  Qgm.bexpr ->
  float option
(** Interpolated selectivity of a column-vs-constant range comparison
    over the zone-derived column bounds ((k - lo) / (hi - lo), clamped);
    [None] when the shape or the statistics don't apply. *)

val pred_selectivity : ?resolve:(int -> Qgm.box option) -> Qgm.bpred -> float
(** With [resolve] (quantifier id -> input box), equality predicates
    consult per-column NDV statistics, range predicates against
    constants interpolate over zone-map bounds, and NULL tests use zone
    null counts.  Conjunctions group column-vs-constant comparisons per
    base column and combine each group by interval intersection over the
    zone span (an equality dominating its group) instead of multiplying
    them as if independent. *)

val join_filter_pass_est :
  (int -> Qgm.box option) ->
  probe:Qgm.bexpr ->
  build:Qgm.bexpr ->
  build_card:float ->
  float
(** Estimated fraction of probe rows whose join key passes a build-side
    join filter (range + Bloom): zone-range overlap capped by NDV
    containment, with [build_card] bounding the build-side NDV.
    {!default_selectivity} when statistics are unavailable. *)

val box_cardinality : Qgm.box -> float
(** Estimated output cardinality of a box. *)

val join_cardinality :
  ?resolve:(int -> Qgm.box option) -> float list -> Qgm.bpred list -> float
