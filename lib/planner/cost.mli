(** Cardinality and selectivity estimation (System-R style): exact base
    cardinalities, NDV statistics for equalities, fixed heuristics
    elsewhere. *)

module Qgm = Starq.Qgm

val eq_selectivity : float
val range_selectivity : float
val default_selectivity : float

val tuple_cost : float
(** Cost of evaluating one tuple inside a batch loop (normalized). *)

val batch_overhead : float
(** Fixed cost of moving one batch across an operator boundary. *)

val stream_cost : float -> float
(** [stream_cost rows] is the cost of streaming that many tuples through
    one operator hop under batch-at-a-time execution: a per-tuple term
    plus a per-batch term for however many [Relcore.Batch] units the
    rows occupy. *)

val cold_chunk_penalty : float
(** Extra per-row cost of scanning a spilled (cold) colstore chunk
    relative to a hot one. *)

val scan_access_factor : Relcore.Base_table.t -> float
(** Multiplier on the cost of scanning the table's rows:
    [1 + cold_chunk_penalty * cold_fraction].  1.0 when the colstore or
    spilling is off, so default plans are unchanged. *)

val parallel_threshold_rows : int
(** Input-row count below which a fragment runs serially (scheduling a
    parallel fan-out would cost more than it saves). *)

val parallel_overhead : float
(** Fixed cost of one parallel fan-out (pool dispatch, channel setup,
    deterministic re-merge). *)

val choose_dop : ?threshold:int -> domains:int -> rows:int -> unit -> int
(** Degree of parallelism for a fragment: 1 under [threshold] rows,
    otherwise at most one worker per threshold-sized chunk, capped at
    [domains]. *)

val parallel_stream_cost : domains:int -> float -> float
(** {!stream_cost} with per-tuple work divided across the chosen degree
    of parallelism; per-batch merge overhead and the fan-out fixed cost
    are not divided. *)

val base_column_of :
  (int -> Qgm.box option) -> Qgm.bexpr -> (Relcore.Base_table.t * int) option
(** Trace a bare column reference to a base-table column through
    identity projections. *)

val range_const_selectivity :
  (int -> Qgm.box option) ->
  Sqlkit.Ast.cmpop ->
  Qgm.bexpr ->
  Qgm.bexpr ->
  float option
(** Interpolated selectivity of a column-vs-constant range comparison
    over the zone-derived column bounds ((k - lo) / (hi - lo), clamped);
    [None] when the shape or the statistics don't apply. *)

val pred_selectivity : ?resolve:(int -> Qgm.box option) -> Qgm.bpred -> float
(** With [resolve] (quantifier id -> input box), equality predicates
    consult per-column NDV statistics, range predicates against
    constants interpolate over zone-map bounds, and NULL tests use zone
    null counts.  Conjunctions group column-vs-constant comparisons per
    base column and combine each group by interval intersection over the
    zone span (an equality dominating its group) instead of multiplying
    them as if independent. *)

val join_filter_pass_est :
  (int -> Qgm.box option) ->
  probe:Qgm.bexpr ->
  build:Qgm.bexpr ->
  build_card:float ->
  float
(** Estimated fraction of probe rows whose join key passes a build-side
    join filter (range + Bloom): zone-range overlap capped by NDV
    containment, with [build_card] bounding the build-side NDV.
    {!default_selectivity} when statistics are unavailable. *)

val box_cardinality : Qgm.box -> float
(** Estimated output cardinality of a box. *)

val join_cardinality :
  ?resolve:(int -> Qgm.box option) -> float list -> Qgm.bpred list -> float
