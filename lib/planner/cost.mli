(** Cardinality and selectivity estimation (System-R style): exact base
    cardinalities, NDV statistics for equalities, fixed heuristics
    elsewhere. *)

module Qgm = Starq.Qgm

val eq_selectivity : float
val range_selectivity : float
val default_selectivity : float

val tuple_cost : float
(** Cost of evaluating one tuple inside a batch loop (normalized). *)

val batch_overhead : float
(** Fixed cost of moving one batch across an operator boundary. *)

val stream_cost : float -> float
(** [stream_cost rows] is the cost of streaming that many tuples through
    one operator hop under batch-at-a-time execution: a per-tuple term
    plus a per-batch term for however many [Relcore.Batch] units the
    rows occupy. *)

val base_column_of :
  (int -> Qgm.box option) -> Qgm.bexpr -> (Relcore.Base_table.t * int) option
(** Trace a bare column reference to a base-table column through
    identity projections. *)

val pred_selectivity : ?resolve:(int -> Qgm.box option) -> Qgm.bpred -> float
(** With [resolve] (quantifier id -> input box), equality predicates
    consult per-column NDV statistics. *)

val box_cardinality : Qgm.box -> float
(** Estimated output cardinality of a box. *)

val join_cardinality :
  ?resolve:(int -> Qgm.box option) -> float list -> Qgm.bpred list -> float
